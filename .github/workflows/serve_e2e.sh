#!/usr/bin/env bash
# Networked end-to-end check for the concurrent serving layer, shared by
# the Debug/Release, ASan+UBSan, and TSan CI jobs:
#
#   1. start `pgtool serve --listen` on the golden snapshot (ephemeral
#      port 0 would be cleaner, but a fixed port keeps the script dumb;
#      the value is unregistered and the runners are single-tenant);
#   2. wait until a protocol-free probe connects (client with empty stdin);
#   3. drive 4 concurrent scripted clients from tests/data/serve_session.txt
#      and diff every transcript byte-for-byte against the checked-in
#      expectation (--threads 1 pins the dynamic-schedule reductions);
#   4. SIGTERM the server and require a graceful exit (status 0) — under
#      ASan that is also when the leak check runs.
#
# Usage: serve_e2e.sh <path-to-pgtool> [port]
set -euo pipefail

PGTOOL="${1:?usage: serve_e2e.sh <path-to-pgtool> [port]}"
PORT="${2:-19777}"
CLIENTS=4

"$PGTOOL" serve tests/data/golden.pgs --threads 1 --listen "$PORT" --max-conns 8 &
SERVE_PID=$!

ready=0
for _ in $(seq 1 150); do
  if "$PGTOOL" client 127.0.0.1 "$PORT" </dev/null >/dev/null 2>&1; then
    ready=1
    break
  fi
  sleep 0.2
done
if [ "$ready" != 1 ]; then
  echo "server never became ready on port $PORT" >&2
  kill -KILL "$SERVE_PID" 2>/dev/null || true
  exit 1
fi

pids=""
for i in $(seq 1 "$CLIENTS"); do
  "$PGTOOL" client 127.0.0.1 "$PORT" \
    < tests/data/serve_session.txt > "net_replies_$i.txt" &
  pids="$pids $!"
done
for p in $pids; do
  wait "$p"
done

for i in $(seq 1 "$CLIENTS"); do
  diff -u tests/data/serve_session.expected "net_replies_$i.txt"
done
echo "all $CLIENTS concurrent transcripts byte-identical"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "server stopped gracefully"
