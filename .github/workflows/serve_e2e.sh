#!/usr/bin/env bash
# Networked end-to-end check for the concurrent serving layer, shared by
# the Debug/Release, ASan+UBSan, and TSan CI jobs. Four phases:
#
# Phase 1 — single-substrate (the v1 golden snapshot):
#   1. start `pgtool serve --listen` on the golden snapshot (ephemeral
#      port 0 would be cleaner, but a fixed port keeps the script dumb;
#      the value is unregistered and the runners are single-tenant);
#   2. wait until a protocol-free probe connects (client with empty stdin);
#   3. drive 4 concurrent scripted clients from tests/data/serve_session.txt
#      and diff every transcript byte-for-byte against the checked-in
#      expectation (--threads 1 pins the dynamic-schedule reductions);
#   4. SIGTERM the server and require a graceful exit (status 0) — under
#      ASan that is also when the leak check runs.
#
# Phase 2 — multi-substrate (the v2 golden snapshot): one server maps
# golden_v2.pgs (BF/sym + BF/dag + KMV/sym + KMV/dag), then two concurrent
# clients query DIFFERENT substrates of the one mapping — one runs the
# counting script (DAG substrates, kind= switching BF/KMV), the other the
# neighborhood script (symmetric substrates) — and each transcript must
# match its checked-in expectation byte for byte.
#
# Phase 3 — live updates over the wire (`serve --live`): a live server on
# a scratch copy of golden_v2.pgs must (a) serve generation 1 transcripts
# byte-identical to the static expectations, (b) accept update
# insert/delete + seal from a scripted client, and (c) serve post-swap
# transcripts byte-identical to a COLD `pgtool build` of the edited edge
# list — the end-to-end form of the incremental-maintenance invariant
# (live/apply.hpp: patched sketches are bit-identical to a cold rebuild).
# The delta log the server wrote is then replayed offline with
# `pgtool update --apply-log` and must reproduce the same transcripts.
#
# Phase 4 — transport parity (`--transport epoll`): the event-driven
# reactor transport reruns the static, multi-substrate, and live flows
# and every transcript is byte-diffed BOTH against the checked-in
# expectations AND against the thread-per-connection outputs captured in
# phases 1–3 — the two transports must be observationally identical down
# to the last byte, including the live update/seal/epoch-swap path.
#
# Phase 1 also exercises the observability surface: the server runs with
# --metrics-port, and WHILE the 4 clients are in flight the script scrapes
# GET /metrics (bash /dev/tcp — no curl dependency on minimal runners) and
# requires a Prometheus exposition carrying the query counters. The
# transcript diffs then double as proof that scraping never perturbs reply
# bytes.
#
# Usage: serve_e2e.sh <path-to-pgtool> [port]
set -euo pipefail

PGTOOL="${1:?usage: serve_e2e.sh <path-to-pgtool> [port]}"
PORT="${2:-19777}"
METRICS_PORT=$((PORT + 2))
CLIENTS=4

# One HTTP/1.0 GET against the scrape endpoint via bash's /dev/tcp.
scrape_metrics() {
  local port="$1" out="$2"
  exec 9<>"/dev/tcp/127.0.0.1/$port"
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&9
  cat <&9 > "$out"
  exec 9>&- 9<&-
}

wait_ready() {
  local port="$1" pid="$2"
  local ready=0
  for _ in $(seq 1 150); do
    if "$PGTOOL" client 127.0.0.1 "$port" </dev/null >/dev/null 2>&1; then
      ready=1
      break
    fi
    sleep 0.2
  done
  if [ "$ready" != 1 ]; then
    echo "server never became ready on port $port" >&2
    kill -KILL "$pid" 2>/dev/null || true
    exit 1
  fi
}

# --- Phase 1: v1 snapshot, 4 identical concurrent sessions, scraped
# --- mid-flight. ---

"$PGTOOL" serve tests/data/golden.pgs --threads 1 --listen "$PORT" \
  --max-conns 8 --metrics-port "$METRICS_PORT" &
SERVE_PID=$!
wait_ready "$PORT" "$SERVE_PID"

pids=""
for i in $(seq 1 "$CLIENTS"); do
  "$PGTOOL" client 127.0.0.1 "$PORT" \
    < tests/data/serve_session.txt > "net_replies_$i.txt" &
  pids="$pids $!"
done

# Scrape while the clients race. Only the always-present families are
# asserted here — the query families register lazily on the first query,
# which this scrape may legitimately beat; the post-session scrape below
# pins those.
scrape_metrics "$METRICS_PORT" metrics_scrape.txt
grep -q '^HTTP/1.0 200 OK' metrics_scrape.txt
grep -q 'probgraph_kernel_dispatch_level' metrics_scrape.txt
echo "mid-flight /metrics scrape is valid Prometheus text"

for p in $pids; do
  wait "$p"
done

for i in $(seq 1 "$CLIENTS"); do
  diff -u tests/data/serve_session.expected "net_replies_$i.txt"
done
echo "all $CLIENTS concurrent transcripts byte-identical (while scraped)"

# One more scrape after the sessions finished: their queries must now be
# visible — per-type counters, latency quantiles, and substrate routing
# (a tc query ran in every transcript).
scrape_metrics "$METRICS_PORT" metrics_final.txt
grep -q '# TYPE probgraph_queries_total counter' metrics_final.txt
grep -q 'probgraph_queries_total{type="tc",mode="sketch"}' metrics_final.txt
grep -q 'probgraph_query_latency_seconds{type="tc",quantile="0.99"}' metrics_final.txt
grep -q 'probgraph_query_substrate_total' metrics_final.txt
echo "post-session scrape carries the query counters, quantiles, and routing"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "server stopped gracefully"

# --- Phase 2: v2 multi-substrate snapshot, two clients on different
# --- substrate families over ONE mapping. ---

MULTI_PORT=$((PORT + 1))
"$PGTOOL" serve tests/data/golden_v2.pgs --threads 1 --listen "$MULTI_PORT" --max-conns 8 &
MULTI_PID=$!
wait_ready "$MULTI_PORT" "$MULTI_PID"

"$PGTOOL" client 127.0.0.1 "$MULTI_PORT" \
  < tests/data/serve_multi_tc.txt > multi_replies_tc.txt &
TC_PID=$!
"$PGTOOL" client 127.0.0.1 "$MULTI_PORT" \
  < tests/data/serve_multi_pair.txt > multi_replies_pair.txt &
PAIR_PID=$!
wait "$TC_PID"
wait "$PAIR_PID"

diff -u tests/data/serve_multi_tc.expected multi_replies_tc.txt
diff -u tests/data/serve_multi_pair.expected multi_replies_pair.txt
echo "multi-substrate transcripts byte-identical (counting + neighborhood clients)"

kill -TERM "$MULTI_PID"
wait "$MULTI_PID"
echo "multi-substrate server stopped gracefully"

# --- Phase 3: live updates over the wire, byte-diffed against a cold
# --- rebuild of the edited graph. ---

LIVE_PORT=$((PORT + 3))
WORK="live_e2e.tmp"
rm -rf "$WORK" && mkdir "$WORK"
# Scratch copy: seals write .genN siblings next to the snapshot and the
# delta log lives beside it, so the checked-in fixture stays untouched.
cp tests/data/golden_v2.pgs "$WORK/live.pgs"

"$PGTOOL" serve "$WORK/live.pgs" --threads 1 --live \
  --delta-log "$WORK/live.pgd" --listen "$LIVE_PORT" --max-conns 8 &
LIVE_PID=$!
wait_ready "$LIVE_PORT" "$LIVE_PID"

# (a) Generation 1 must serve the SAME bytes as the static server.
"$PGTOOL" client 127.0.0.1 "$LIVE_PORT" \
  < tests/data/serve_multi_tc.txt > live_pre_tc.txt
"$PGTOOL" client 127.0.0.1 "$LIVE_PORT" \
  < tests/data/serve_multi_pair.txt > live_pre_pair.txt
diff -u tests/data/serve_multi_tc.expected live_pre_tc.txt
diff -u tests/data/serve_multi_pair.expected live_pre_pair.txt
echo "live server generation 1 transcripts match the static expectations"

# (b) Stage two inserts and one delete, then seal. (0,9) and (3,17) are
# absent from the golden circulant, (0,1) is a chord-1 edge; all ids stay
# inside the existing 32-vertex range so n is unchanged and the cold
# rebuild below sees the identical graph.
printf 'update insert 0 9 3 17\nupdate delete 0 1\nupdate seal\nepoch\nquit\n' |
  "$PGTOOL" client 127.0.0.1 "$LIVE_PORT" > live_update_replies.txt
grep -q $'^ok\tupdate\tsealed\tgeneration=2\t' live_update_replies.txt
grep -q $'^ok\tepoch\tgeneration=2\tpending_inserts=0\tpending_deletes=0$' \
  live_update_replies.txt
echo "update verbs staged and sealed generation 2 over the wire"

# (c) Post-swap transcripts vs a cold build of the edited edge list.
grep -v '^0 1$' tests/data/golden.el > "$WORK/updated.el"
printf '0 9\n3 17\n' >> "$WORK/updated.el"
"$PGTOOL" build "$WORK/updated.el" --kinds bf,kmv --orient both \
  -o "$WORK/cold.pgs"

"$PGTOOL" client 127.0.0.1 "$LIVE_PORT" \
  < tests/data/serve_multi_tc.txt > live_post_tc.txt
"$PGTOOL" client 127.0.0.1 "$LIVE_PORT" \
  < tests/data/serve_multi_pair.txt > live_post_pair.txt
"$PGTOOL" serve "$WORK/cold.pgs" --threads 1 \
  < tests/data/serve_multi_tc.txt > cold_tc.txt
"$PGTOOL" serve "$WORK/cold.pgs" --threads 1 \
  < tests/data/serve_multi_pair.txt > cold_pair.txt
diff -u cold_tc.txt live_post_tc.txt
diff -u cold_pair.txt live_post_pair.txt
# The estimates must actually have moved — equal pre/post transcripts
# would make the cold diff above vacuous.
! diff -q live_pre_tc.txt live_post_tc.txt > /dev/null
echo "post-swap transcripts byte-identical to the cold rebuild"

kill -TERM "$LIVE_PID"
wait "$LIVE_PID"
echo "live server stopped gracefully"

# The delta log must replay to the same serving state offline.
"$PGTOOL" update tests/data/golden_v2.pgs --apply-log "$WORK/live.pgd" \
  -o "$WORK/replay.pgs"
"$PGTOOL" serve "$WORK/replay.pgs" --threads 1 \
  < tests/data/serve_multi_tc.txt > replay_tc.txt
diff -u cold_tc.txt replay_tc.txt
echo "delta-log replay reproduces the sealed generation"

# --- Phase 4: the epoll reactor transport must be byte-identical to the
# --- thread-per-connection transport on every flow above. ---

# 4a: static v1 snapshot, 4 concurrent scripted clients.
EPOLL_PORT=$((PORT + 4))
"$PGTOOL" serve tests/data/golden.pgs --threads 1 --listen "$EPOLL_PORT" \
  --transport epoll --max-conns 8 &
EPOLL_PID=$!
wait_ready "$EPOLL_PORT" "$EPOLL_PID"

pids=""
for i in $(seq 1 "$CLIENTS"); do
  "$PGTOOL" client 127.0.0.1 "$EPOLL_PORT" \
    < tests/data/serve_session.txt > "epoll_replies_$i.txt" &
  pids="$pids $!"
done
for p in $pids; do
  wait "$p"
done
for i in $(seq 1 "$CLIENTS"); do
  diff -u tests/data/serve_session.expected "epoll_replies_$i.txt"
  diff -u "net_replies_$i.txt" "epoll_replies_$i.txt"
done
echo "epoll transport: all $CLIENTS transcripts byte-identical to threads"

kill -TERM "$EPOLL_PID"
wait "$EPOLL_PID"
echo "epoll server stopped gracefully"

# 4b: multi-substrate snapshot, two concurrent substrate-family clients.
EPOLL_MULTI_PORT=$((PORT + 5))
"$PGTOOL" serve tests/data/golden_v2.pgs --threads 1 \
  --listen "$EPOLL_MULTI_PORT" --transport epoll --max-conns 8 &
EPOLL_MULTI_PID=$!
wait_ready "$EPOLL_MULTI_PORT" "$EPOLL_MULTI_PID"

"$PGTOOL" client 127.0.0.1 "$EPOLL_MULTI_PORT" \
  < tests/data/serve_multi_tc.txt > epoll_multi_tc.txt &
TC_PID=$!
"$PGTOOL" client 127.0.0.1 "$EPOLL_MULTI_PORT" \
  < tests/data/serve_multi_pair.txt > epoll_multi_pair.txt &
PAIR_PID=$!
wait "$TC_PID"
wait "$PAIR_PID"

diff -u tests/data/serve_multi_tc.expected epoll_multi_tc.txt
diff -u multi_replies_tc.txt epoll_multi_tc.txt
diff -u tests/data/serve_multi_pair.expected epoll_multi_pair.txt
diff -u multi_replies_pair.txt epoll_multi_pair.txt
echo "epoll transport: multi-substrate transcripts byte-identical to threads"

kill -TERM "$EPOLL_MULTI_PID"
wait "$EPOLL_MULTI_PID"
echo "epoll multi-substrate server stopped gracefully"

# 4c: live updates over the reactor — fresh scratch copy, same staged
# edit, post-swap transcripts vs the SAME cold rebuild phase 3 produced.
EPOLL_LIVE_PORT=$((PORT + 6))
cp tests/data/golden_v2.pgs "$WORK/live_epoll.pgs"
"$PGTOOL" serve "$WORK/live_epoll.pgs" --threads 1 --live \
  --delta-log "$WORK/live_epoll.pgd" --listen "$EPOLL_LIVE_PORT" \
  --transport epoll --max-conns 8 &
EPOLL_LIVE_PID=$!
wait_ready "$EPOLL_LIVE_PORT" "$EPOLL_LIVE_PID"

"$PGTOOL" client 127.0.0.1 "$EPOLL_LIVE_PORT" \
  < tests/data/serve_multi_tc.txt > epoll_live_pre_tc.txt
diff -u tests/data/serve_multi_tc.expected epoll_live_pre_tc.txt

printf 'update insert 0 9 3 17\nupdate delete 0 1\nupdate seal\nepoch\nquit\n' |
  "$PGTOOL" client 127.0.0.1 "$EPOLL_LIVE_PORT" > epoll_update_replies.txt
diff -u live_update_replies.txt epoll_update_replies.txt
echo "epoll transport: update verbs answer the same bytes as threads"

"$PGTOOL" client 127.0.0.1 "$EPOLL_LIVE_PORT" \
  < tests/data/serve_multi_tc.txt > epoll_live_post_tc.txt
"$PGTOOL" client 127.0.0.1 "$EPOLL_LIVE_PORT" \
  < tests/data/serve_multi_pair.txt > epoll_live_post_pair.txt
diff -u cold_tc.txt epoll_live_post_tc.txt
diff -u live_post_tc.txt epoll_live_post_tc.txt
diff -u cold_pair.txt epoll_live_post_pair.txt
diff -u live_post_pair.txt epoll_live_post_pair.txt
echo "epoll transport: post-swap transcripts byte-identical to threads + cold"

kill -TERM "$EPOLL_LIVE_PID"
wait "$EPOLL_LIVE_PID"
echo "epoll live server stopped gracefully"

rm -rf "$WORK"
