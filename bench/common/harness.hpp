// Shared measurement protocol and table emitters for the paper benches.
//
// Methodology follows §VIII-A / [109]: repeated timed runs with the first
// run discarded as warmup, means with nonparametric 95% CIs on request, and
// CSV-style rows that can be fed straight to a plotting script.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/timer.hpp"

namespace probgraph::bench {

struct Measurement {
  double mean_seconds = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  int repetitions = 0;
};

/// Time `fn` `reps` times (plus one discarded warmup run); returns mean and
/// bootstrap 95% CI.
template <typename Fn>
Measurement measure(Fn&& fn, int reps = 3) {
  fn();  // warmup (the paper discards the first 1% of measurements)
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    util::Timer t;
    fn();
    times.push_back(t.seconds());
  }
  const util::MeanCi ci = util::bootstrap_mean_ci(times);
  return {ci.mean, ci.lo, ci.hi, reps};
}

/// Print a header + aligned row helper for paper-shaped tables.
inline void print_header(const std::string& title, const std::string& columns) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
}

/// Relative count in the paper's sense: approximate / exact (Fig. 4 y-axis).
inline double relative_count(double approx, double exact) {
  return exact == 0.0 ? (approx == 0.0 ? 1.0 : 0.0) : approx / exact;
}

/// Accuracy in the |cnt_PG − cnt_EX| / cnt_EX sense of §VIII-A, reported as
/// 1 − error so that "0.93" reads as "93% accurate".
inline double accuracy(double approx, double exact) {
  if (exact == 0.0) return approx == 0.0 ? 1.0 : 0.0;
  return 1.0 - std::abs(approx - exact) / exact;
}

}  // namespace probgraph::bench
