#include "common/workloads.hpp"

#include "graph/generators.hpp"

namespace probgraph::bench {

// Sizes follow Table VIII; dense graphs are scaled down slightly where the
// exact baselines would dominate total bench time without adding signal.

std::vector<Workload> real_world_suite() {
  using namespace probgraph::gen;
  return {
      // Biological: gene-association graphs are small and locally dense.
      {"bio-CE-PG*", "bio", [] { return watts_strogatz(1900, 25, 0.3, 101); }},
      {"bio-SC-GT*", "bio", [] { return watts_strogatz(1700, 20, 0.3, 102); }},
      {"bio-DM-CX*", "bio", [] { return watts_strogatz(4000, 19, 0.25, 103); }},
      {"bio-HS-LC*", "bio", [] { return watts_strogatz(4200, 9, 0.25, 104); }},
      // Economic: small, extremely dense matrices.
      {"econ-beacxc*", "econ", [] { return erdos_renyi(498, 0.41, 105); }},
      {"econ-orani678*", "econ", [] { return erdos_renyi(2500, 0.029, 106); }},
      // Brain: near-complete local connectivity.
      {"bn-mouse-brain1*", "brain", [] { return erdos_renyi(213, 0.95, 107); }},
      // Interaction / collaboration: citation networks have m/n ≈ 11 and
      // high local clustering (BA would underrepresent triangles badly).
      {"int-citAsPh*", "int", [] { return watts_strogatz(8000, 11, 0.4, 108); }},
      // Chemistry: lattice-like with high clustering.
      {"ch-Si10H16*", "chem", [] { return watts_strogatz(8500, 26, 0.1, 109); }},
      // Discrete math: dense random.
      {"dimacs-hat1500*", "dimacs", [] { return erdos_renyi(1000, 0.5, 110); }},
      // Social: power-law.
      {"soc-fbMsg*", "soc", [] { return kronecker(11, 8.0, 111); }},
      // Scientific computing: regular-ish meshes.
      {"sc-ThermAB*", "sc", [] { return watts_strogatz(10600, 25, 0.05, 112); }},
  };
}

std::vector<Workload> fig3_suite() {
  using namespace probgraph::gen;
  return {
      {"ch-Si10H16*", "chem", [] { return watts_strogatz(8500, 26, 0.1, 109); }},
      {"bio-CE-PG*", "bio", [] { return watts_strogatz(1900, 25, 0.3, 101); }},
      {"dimacs-hat1500*", "dimacs", [] { return erdos_renyi(1000, 0.5, 110); }},
      {"bn-mouse-brain1*", "brain", [] { return erdos_renyi(213, 0.95, 107); }},
      {"econ-beacxc*", "econ", [] { return erdos_renyi(498, 0.41, 105); }},
  };
}

std::vector<Workload> kronecker_suite() {
  using namespace probgraph::gen;
  return {
      {"kron-s12-e8", "kron", [] { return kronecker(12, 8.0, 201); }},
      {"kron-s12-e16", "kron", [] { return kronecker(12, 16.0, 202); }},
      {"kron-s13-e16", "kron", [] { return kronecker(13, 16.0, 203); }},
      {"kron-s14-e8", "kron", [] { return kronecker(14, 8.0, 204); }},
      {"kron-s14-e16", "kron", [] { return kronecker(14, 16.0, 205); }},
  };
}

Workload scaling_workload() {
  return {"kron-s15-e16", "kron", [] { return gen::kronecker(15, 16.0, 301); }};
}

}  // namespace probgraph::bench
