// Workload registry for the benchmark harness.
//
// The paper evaluates on SNAP/KONECT/DIMACS/NetworkRepository graphs
// (Table VIII) plus Kronecker graphs. Offline, the real datasets are
// unavailable, so each Table VIII *category* gets a generator-backed proxy
// matched in scale (n, m) and density regime — see DESIGN.md §2 for the
// substitution rationale. Kronecker workloads are generated exactly as in
// the paper ([119]).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace probgraph::bench {

struct Workload {
  std::string name;      ///< proxy name, keyed to the Table VIII original
  std::string category;  ///< bio / econ / brain / interaction / chem / social / kron
  std::function<CsrGraph()> make;
};

/// Proxies for the real-world graphs used in Figs. 3–7.
std::vector<Workload> real_world_suite();

/// The five graphs Fig. 3 reports (ch-Si10H16, bio-CE-PG, dimacs-hat1500-3,
/// bn-mouse-brain-1, econ-beacxc) as proxies.
std::vector<Workload> fig3_suite();

/// Kronecker sweep used by the bottom panels of Figs. 4–5.
std::vector<Workload> kronecker_suite();

/// A single mid-size Kronecker graph for scaling studies (Figs. 8–9).
Workload scaling_workload();

}  // namespace probgraph::bench
