// §VIII-F: distributed-memory communication analysis.
//
// Simulates the point-to-point sketch-shipping scheme of the paper's
// distributed execution on 2–16 ranks and reports the communication volume
// and modeled transfer time of ProbGraph sketches vs shipping exact CSR
// neighborhoods.
//
// Paper-shape expectation: "significant reductions in overall communication
// times ... of up to 4× for different graphs" — the reduction factor grows
// with the average degree (sketches are fixed-size, neighborhoods are not).
#include <cstdio>

#include "common/harness.hpp"
#include "common/workloads.hpp"
#include "distributed/dist_engine.hpp"
#include "graph/orientation.hpp"

namespace pb = probgraph;

int main() {
  std::printf("§VIII-F reproduction: distributed communication volume (simulated)\n");
  pb::bench::print_header(
      "TC neighborhood traffic, block partition",
      "graph              ranks | exact MB   BF MB    MH MB | comm red. BF  comm red. MH");

  std::vector<pb::bench::Workload> suite = pb::bench::kronecker_suite();
  for (auto& w : pb::bench::real_world_suite()) {
    if (w.name == "econ-beacxc*" || w.name == "ch-Si10H16*" || w.name == "int-citAsPh*") {
      suite.push_back(w);
    }
  }

  for (const auto& workload : suite) {
    const pb::CsrGraph g = workload.make();
    const pb::CsrGraph dag = pb::degree_orient(g);
    // Sketch parameters at a 25% budget relative to the input CSR.
    const auto bits = static_cast<std::uint64_t>(
        0.25 * static_cast<double>(g.memory_bytes()) * 8.0 / g.num_vertices());
    const auto k = std::max<std::uint64_t>(
        4, static_cast<std::uint64_t>(0.25 * static_cast<double>(g.memory_bytes()) /
                                      (8.0 * g.num_vertices())));
    for (const std::uint32_t ranks : {4u, 16u}) {
      const auto exact =
          pb::dist::simulate_tc_traffic(dag, ranks, pb::dist::exact_representation());
      const auto bf =
          pb::dist::simulate_tc_traffic(dag, ranks, pb::dist::bloom_representation(bits));
      const auto mh = pb::dist::simulate_tc_traffic(dag, ranks,
                                                    pb::dist::minhash_representation(k, 8));
      // Real implementations aggregate all fetches destined for one peer
      // into a single bulk exchange, so transfer time is bandwidth-bound:
      // compare the critical-path (heaviest-rank) byte loads.
      const auto bw_reduction = [&](const pb::dist::TrafficReport& r) {
        return static_cast<double>(exact.max_rank_bytes) /
               static_cast<double>(std::max<std::uint64_t>(1, r.max_rank_bytes));
      };
      std::printf("%-18s %5u | %8.2f %8.2f %8.2f |     %6.2fx       %6.2fx\n",
                  workload.name.c_str(), ranks,
                  static_cast<double>(exact.total_bytes) / 1e6,
                  static_cast<double>(bf.total_bytes) / 1e6,
                  static_cast<double>(mh.total_bytes) / 1e6, bw_reduction(bf),
                  bw_reduction(mh));
    }
  }
  std::printf("\nExpected shape (paper): sketch traffic a small fraction of exact CSR\n"
              "traffic; bandwidth-bound communication reductions in the ~2-8x range,\n"
              "growing with average degree (the paper reports up to 4x end to end,\n"
              "which includes latency components that sketches do not change).\n");
  return 0;
}
