// Fig. 3: accuracy of the |X ∩ Y| estimators.
//
// For every edge (u, v) of each graph, compute the relative difference
// |est − |Nu∩Nv|| / |Nu∩Nv| under four ProbGraph estimators (BF AND with
// b ∈ {1, 4}, plus 1-Hash and k-Hash) at storage budgets s = 33% and
// s = 10%, and report the boxplot statistics the paper plots.
//
// Paper-shape expectations: medians below ≈25% for most graph/estimator
// pairs; wide outliers (some pairs are always hard); BF AND degrades on the
// densest graphs; b = 1 beats b = 4 at equal storage.
#include <cstdio>
#include <vector>

#include "common/harness.hpp"
#include "common/workloads.hpp"
#include "core/intersect.hpp"
#include "core/prob_graph.hpp"
#include "util/stats.hpp"

namespace pb = probgraph;
using pb::CsrGraph;
using pb::ProbGraph;
using pb::ProbGraphConfig;
using pb::SketchKind;
using pb::VertexId;

namespace {

struct Scheme {
  const char* label;
  ProbGraphConfig config;
};

pb::util::BoxStats edge_errors(const CsrGraph& g, const ProbGraph& pg) {
  std::vector<double> errors;
  errors.reserve(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u <= v) continue;
      const auto exact = static_cast<double>(
          pb::intersect_size_merge(g.neighbors(v), g.neighbors(u)));
      if (exact == 0.0) continue;  // relative difference undefined
      const double est = pg.est_intersection(v, u);
      errors.push_back(std::abs(est - exact) / exact);
    }
  }
  return pb::util::box_stats(std::move(errors));
}

}  // namespace

int main() {
  std::printf("Fig. 3 reproduction: relative difference of |N_u ∩ N_v| estimators\n");
  std::printf("(boxplot stats over all adjacent pairs; values are fractions, 0.25 = 25%%)\n");

  for (const double budget : {0.33, 0.10}) {
    std::vector<Scheme> schemes;
    {
      ProbGraphConfig c;
      c.kind = SketchKind::kBloomFilter;
      c.bf_hashes = 1;
      c.storage_budget = budget;
      schemes.push_back({"BF-AND b=1", c});
      c.bf_hashes = 4;
      schemes.push_back({"BF-AND b=4", c});
      ProbGraphConfig l = c;
      l.bf_hashes = 1;
      l.bf_estimator = pb::BfEstimator::kLimit;
      schemes.push_back({"BF-L   b=1", l});
      ProbGraphConfig oh;
      oh.kind = SketchKind::kOneHash;
      oh.storage_budget = budget;
      schemes.push_back({"1-Hash    ", oh});
      ProbGraphConfig kh;
      kh.kind = SketchKind::kKHash;
      kh.storage_budget = budget;
      schemes.push_back({"k-Hash    ", kh});
    }

    pb::bench::print_header(
        "Fig. 3, s = " + std::to_string(static_cast<int>(budget * 100)) + "%",
        "graph                estimator    |   min     q1    med     q3    max   mean");
    for (const auto& workload : pb::bench::fig3_suite()) {
      const CsrGraph g = workload.make();
      for (auto& scheme : schemes) {
        scheme.config.seed = 42;
        const ProbGraph pg(g, scheme.config);
        const auto s = edge_errors(g, pg);
        std::printf("%-20s %-12s | %5.2f  %5.2f  %5.2f  %5.2f  %6.2f  %5.2f\n",
                    workload.name.c_str(), scheme.label, s.min, s.q1, s.median, s.q3,
                    s.max, s.mean);
      }
    }
  }
  std::printf("\nExpected shape (paper): medians < ~0.25 for most pairs; BF-AND\n"
              "worse on the densest graphs (bn-mouse-brain1, dimacs-hat1500);\n"
              "b=1 no worse than b=4 at equal storage; s=10%% worse than s=33%%.\n");
  return 0;
}
