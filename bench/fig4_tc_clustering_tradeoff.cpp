// Fig. 4: performance / accuracy / memory tradeoffs of ProbGraph for
// Triangle Counting and Clustering (Jaccard, Overlap, Common Neighbors),
// on real-world proxies (top panel) and Kronecker graphs (bottom panel).
//
// Every data point reports: speedup over the exact tuned baseline (x-axis),
// relative pattern count (y-axis), and relative additional memory (shade).
// Schemes: PG(BF) = AND estimator b = 2, PG(MH) = 1-Hash; TC additionally
// compares the Doulion (sampling) and Colorful baselines, as in the figure.
//
// Paper-shape expectations: both PG schemes sit right of 1× with relative
// counts near 1.0; MH faster but less accurate than BF; relative memory
// well below 0.25 for almost all points.
#include <cstdio>

#include "algorithms/clustering.hpp"
#include "algorithms/triangle_count.hpp"
#include "baselines/colorful.hpp"
#include "baselines/doulion.hpp"
#include "common/harness.hpp"
#include "common/workloads.hpp"
#include "graph/orientation.hpp"

namespace pb = probgraph;
using pb::algo::SimilarityMeasure;

namespace {

constexpr double kBudget = 0.25;
constexpr std::uint64_t kSeed = 42;

void tc_rows(const pb::bench::Workload& workload) {
  const pb::CsrGraph g = workload.make();
  const pb::CsrGraph dag = pb::degree_orient(g);

  double exact_count = 0.0;
  const auto exact = pb::bench::measure(
      [&] { exact_count = static_cast<double>(pb::algo::triangle_count_exact_oriented(dag)); });

  auto report = [&](const char* scheme, double seconds, double count, double rel_mem) {
    std::printf("%-18s %-12s | %8.2fx  %6.3f  %5.2f | %9.4fs\n", workload.name.c_str(),
                scheme, exact.mean_seconds / seconds, pb::bench::relative_count(count, exact_count),
                rel_mem, seconds);
  };
  report("Exact", exact.mean_seconds, exact_count, 0.0);

  for (const auto kind : {pb::SketchKind::kBloomFilter, pb::SketchKind::kOneHash}) {
    pb::ProbGraphConfig cfg;
    cfg.kind = kind;
    cfg.storage_budget = kBudget;
    cfg.budget_reference_bytes = g.memory_bytes();
    cfg.bf_hashes = 2;
    cfg.seed = kSeed;
    const pb::ProbGraph pg(dag, cfg);
    double count = 0.0;
    const auto timing = pb::bench::measure(
        [&] { count = pb::algo::triangle_count_probgraph(pg, pb::algo::TcMode::kOriented); });
    report(kind == pb::SketchKind::kBloomFilter ? "ProbGraph(BF)" : "ProbGraph(MH)",
           timing.mean_seconds, count, pg.relative_memory());
  }

  {
    double count = 0.0;
    const auto timing =
        pb::bench::measure([&] { count = pb::baselines::doulion_tc(g, 0.1, kSeed).estimate; });
    report("Doulion p=.1", timing.mean_seconds, count, 0.1);
  }
  {
    double count = 0.0;
    const auto timing =
        pb::bench::measure([&] { count = pb::baselines::colorful_tc(g, 3, kSeed).estimate; });
    report("Colorful N=3", timing.mean_seconds, count, 1.0 / 9.0);
  }
}

void clustering_rows(const pb::bench::Workload& workload, SimilarityMeasure measure,
                     double tau) {
  const pb::CsrGraph g = workload.make();

  std::size_t exact_clusters = 0;
  const auto exact = pb::bench::measure([&] {
    exact_clusters = pb::algo::jarvis_patrick_exact(g, measure, tau).num_clusters;
  });

  std::printf("%-18s %-12s | %8.2fx  %6.3f  %5.2f | %9.4fs\n", workload.name.c_str(),
              "Exact", 1.0, 1.0, 0.0, exact.mean_seconds);

  for (const auto kind : {pb::SketchKind::kBloomFilter, pb::SketchKind::kOneHash}) {
    pb::ProbGraphConfig cfg;
    cfg.kind = kind;
    cfg.storage_budget = kBudget;
    cfg.bf_hashes = 2;
    cfg.seed = kSeed;
    const pb::ProbGraph pg(g, cfg);
    std::size_t clusters = 0;
    const auto timing = pb::bench::measure([&] {
      clusters = pb::algo::jarvis_patrick_probgraph(pg, measure, tau).num_clusters;
    });
    std::printf("%-18s %-12s | %8.2fx  %6.3f  %5.2f | %9.4fs\n", workload.name.c_str(),
                kind == pb::SketchKind::kBloomFilter ? "ProbGraph(BF)" : "ProbGraph(MH)",
                exact.mean_seconds / timing.mean_seconds,
                pb::bench::relative_count(static_cast<double>(clusters),
                                          static_cast<double>(exact_clusters)),
                pg.relative_memory(), timing.mean_seconds);
  }
}

void run_panel(const char* title, const std::vector<pb::bench::Workload>& suite) {
  pb::bench::print_header(
      std::string("Fig. 4 (") + title + "): Triangle Counting",
      "graph              scheme       |  speedup  relcnt  relmem |      time");
  for (const auto& w : suite) tc_rows(w);

  const struct {
    const char* name;
    SimilarityMeasure measure;
    double tau;
  } variants[] = {
      {"Clustering (Jaccard)", SimilarityMeasure::kJaccard, 0.10},
      {"Clustering (Overlap)", SimilarityMeasure::kOverlap, 0.30},
      {"Clustering (Common Neigh.)", SimilarityMeasure::kCommonNeighbors, 3.0},
  };
  for (const auto& variant : variants) {
    pb::bench::print_header(
        std::string("Fig. 4 (") + title + "): " + variant.name,
        "graph              scheme       |  speedup  relcnt  relmem |      time");
    for (const auto& w : suite) clustering_rows(w, variant.measure, variant.tau);
  }
}

}  // namespace

int main() {
  std::printf("Fig. 4 reproduction: speedup / relative count / relative memory\n");
  // A compact sub-suite keeps the full bench sweep under control while
  // covering every density regime of the figure.
  std::vector<pb::bench::Workload> real;
  for (auto& w : pb::bench::real_world_suite()) {
    if (w.name == "bio-CE-PG*" || w.name == "econ-beacxc*" || w.name == "int-citAsPh*" ||
        w.name == "ch-Si10H16*" || w.name == "dimacs-hat1500*" || w.name == "sc-ThermAB*") {
      real.push_back(w);
    }
  }
  run_panel("real-world proxies", real);

  std::vector<pb::bench::Workload> kron;
  for (auto& w : pb::bench::kronecker_suite()) {
    if (w.name == "kron-s12-e16" || w.name == "kron-s13-e16" || w.name == "kron-s14-e16") {
      kron.push_back(w);
    }
  }
  run_panel("Kronecker", kron);

  std::printf("\nExpected shape (paper): PG speedups up to tens of x with relcnt near 1;\n"
              "MH rows faster / less accurate than BF rows; relmem <= ~0.25.\n");
  return 0;
}
