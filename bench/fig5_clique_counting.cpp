// Fig. 5: 4-clique counting tradeoffs on real-world proxies and Kronecker
// graphs. Same axes as Fig. 4: speedup vs the exact reformulated Listing-2
// algorithm, relative 4-clique count, and relative additional memory.
//
// Paper-shape expectations: PG speedups grow with graph density (up to the
// 50× regime on Kronecker inputs at 32 cores); accuracy stays around 90%;
// relative memory close to the configured budget.
#include <cstdio>

#include "algorithms/clique_count.hpp"
#include "common/harness.hpp"
#include "common/workloads.hpp"
#include "graph/orientation.hpp"

namespace pb = probgraph;

namespace {

void rows(const pb::bench::Workload& workload) {
  const pb::CsrGraph g = workload.make();
  const pb::CsrGraph dag = pb::degree_orient(g);

  double exact_count = 0.0;
  const auto exact = pb::bench::measure([&] {
    exact_count = static_cast<double>(pb::algo::four_clique_count_exact_oriented(dag));
  });
  std::printf("%-18s %-14s | %8.2fx  %6.3f  %5.2f | %9.4fs\n", workload.name.c_str(),
              "Exact", 1.0, 1.0, 0.0, exact.mean_seconds);

  for (const auto kind : {pb::SketchKind::kBloomFilter, pb::SketchKind::kOneHash}) {
    pb::ProbGraphConfig cfg;
    cfg.kind = kind;
    // Fig. 5's caption: "Relative memory: all data points are close to 1.0"
    // — 4CC compounds three approximations, so the paper provisions the
    // sketches at parity with the CSR itself.
    cfg.storage_budget = 1.0;
    cfg.budget_reference_bytes = g.memory_bytes();
    cfg.bf_hashes = 2;
    cfg.seed = 42;
    const pb::ProbGraph pg(dag, cfg);
    double count = 0.0;
    const auto timing =
        pb::bench::measure([&] { count = pb::algo::four_clique_count_probgraph(pg); });
    std::printf("%-18s %-14s | %8.2fx  %6.3f  %5.2f | %9.4fs\n", workload.name.c_str(),
                kind == pb::SketchKind::kBloomFilter ? "ProbGraph(BF)" : "ProbGraph(MH)",
                exact.mean_seconds / timing.mean_seconds,
                pb::bench::relative_count(count, exact_count), pg.relative_memory(),
                timing.mean_seconds);
  }
}

}  // namespace

int main() {
  std::printf("Fig. 5 reproduction: 4-clique counting\n");
  pb::bench::print_header(
      "Fig. 5 (real-world proxies)",
      "graph              scheme         |  speedup  relcnt  relmem |      time");
  for (const auto& w : pb::bench::real_world_suite()) {
    // The densest proxies make the exact 4CC baseline dominate bench time.
    if (w.name == "dimacs-hat1500*" || w.name == "bn-mouse-brain1*" ||
        w.name == "econ-beacxc*") {
      continue;
    }
    rows(w);
  }
  pb::bench::print_header(
      "Fig. 5 (Kronecker)",
      "graph              scheme         |  speedup  relcnt  relmem |      time");
  for (const auto& w : pb::bench::kronecker_suite()) {
    if (w.name == "kron-s12-e16" || w.name == "kron-s13-e16") rows(w);
  }
  std::printf("\nExpected shape (paper): PG right of 1x with relcnt near 1.0;\n"
              "MH faster than BF; accuracy around 0.9 for most points.\n");
  return 0;
}
