// Fig. 6: per-graph bar plots for Triangle Counting — speedup, relative
// count, and relative memory of every compared scheme: ProbGraph (BF, MH),
// the guarantee-backed baselines (Doulion, Colorful), the heuristics
// without guarantees (Reduced Execution, Partial Graph Processing,
// AutoApprox1/2), and the exact baseline.
//
// Paper-shape expectations: PG bars dominate the heuristics on accuracy by
// 25–75 percentage points; the AutoApprox schemes are slower than exact
// (vertex-centric message materialization); heuristics need no extra
// memory; PG stays within the storage budget.
#include <cstdio>

#include "algorithms/triangle_count.hpp"
#include "baselines/colorful.hpp"
#include "baselines/doulion.hpp"
#include "baselines/heuristics.hpp"
#include "common/harness.hpp"
#include "common/workloads.hpp"
#include "graph/orientation.hpp"

namespace pb = probgraph;

namespace {

constexpr std::uint64_t kSeed = 42;

void bench_graph(const pb::bench::Workload& workload) {
  const pb::CsrGraph g = workload.make();
  const pb::CsrGraph dag = pb::degree_orient(g);

  double exact_count = 0.0;
  const auto exact = pb::bench::measure([&] {
    exact_count = static_cast<double>(pb::algo::triangle_count_exact_oriented(dag));
  });

  auto row = [&](const char* scheme, double seconds, double count, double rel_mem) {
    std::printf("  %-18s | speedup %7.2fx | relcnt %6.3f | accuracy %6.1f%% | relmem %5.2f\n",
                scheme, exact.mean_seconds / seconds,
                pb::bench::relative_count(count, exact_count),
                100.0 * pb::bench::accuracy(count, exact_count), rel_mem);
  };

  std::printf("%s  (n=%u, m=%llu, TC=%.0f)\n", workload.name.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), exact_count);
  row("Exact", exact.mean_seconds, exact_count, 0.0);

  // The paper recommends b ∈ {1, 2} (§VIII-G); report both BF settings.
  const struct {
    const char* label;
    pb::SketchKind kind;
    std::uint32_t b;
  } pg_schemes[] = {{"ProbGraph(BF b=1)", pb::SketchKind::kBloomFilter, 1},
                    {"ProbGraph(BF b=2)", pb::SketchKind::kBloomFilter, 2},
                    {"ProbGraph(MH)", pb::SketchKind::kOneHash, 1}};
  for (const auto& scheme : pg_schemes) {
    pb::ProbGraphConfig cfg;
    cfg.kind = scheme.kind;
    cfg.storage_budget = 0.25;
    cfg.budget_reference_bytes = g.memory_bytes();
    cfg.bf_hashes = scheme.b;
    cfg.seed = kSeed;
    const pb::ProbGraph pg(dag, cfg);
    double count = 0.0;
    const auto timing = pb::bench::measure(
        [&] { count = pb::algo::triangle_count_probgraph(pg, pb::algo::TcMode::kOriented); });
    row(scheme.label, timing.mean_seconds, count, pg.relative_memory());
  }

  {
    double count = 0.0;
    const auto timing = pb::bench::measure(
        [&] { count = pb::baselines::reduced_execution_tc(g, 4); });
    row("ReducedExec 1/4", timing.mean_seconds, count, 0.0);
  }
  {
    double count = 0.0;
    const auto timing = pb::bench::measure(
        [&] { count = pb::baselines::partial_processing_tc(g, 0.5, kSeed); });
    row("PartialProc .5", timing.mean_seconds, count, 0.0);
  }
  {
    double count = 0.0;
    const auto timing =
        pb::bench::measure([&] { count = pb::baselines::auto_approx1_tc(g, kSeed); });
    row("AutoApprox1", timing.mean_seconds, count, 0.0);
  }
  {
    double count = 0.0;
    const auto timing =
        pb::bench::measure([&] { count = pb::baselines::auto_approx2_tc(g, kSeed); });
    row("AutoApprox2", timing.mean_seconds, count, 0.0);
  }
  {
    double count = 0.0;
    const auto timing = pb::bench::measure(
        [&] { count = pb::baselines::doulion_tc(g, 0.25, kSeed).estimate; });
    row("Doulion p=.25", timing.mean_seconds, count, 0.25);
  }
  {
    double count = 0.0;
    const auto timing =
        pb::bench::measure([&] { count = pb::baselines::colorful_tc(g, 2, kSeed).estimate; });
    row("Colorful N=2", timing.mean_seconds, count, 0.25);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Fig. 6 reproduction: Triangle Counting, all schemes, per graph\n\n");
  for (const auto& w : pb::bench::real_world_suite()) bench_graph(w);
  std::printf("Expected shape (paper): PG accuracy above every heuristic (by 25-75 pts\n"
              "on hard graphs); AutoApprox slower than Exact; heuristics relmem = 0.\n");
  return 0;
}
