// Fig. 7: per-graph bars for Clustering based on the Jaccard coefficient —
// speedup, relative cluster count (cut off at 10 for readability, as in the
// paper), and relative memory for PG(BF), PG(MH), and the exact baseline.
//
// Paper-shape expectations: BF relative counts hug 1.0; MH can inflate the
// cluster count (dropped edges split clusters — the paper reports values
// far above 1 for some inputs, hence the cutoff); both PG schemes are
// faster than exact.
#include <algorithm>
#include <cstdio>

#include "algorithms/clustering.hpp"
#include "common/harness.hpp"
#include "common/workloads.hpp"

namespace pb = probgraph;

int main() {
  std::printf("Fig. 7 reproduction: Clustering (Jaccard vertex similarity), tau = 0.10\n");
  pb::bench::print_header(
      "Fig. 7", "graph              scheme        |  speedup  relcnt(cut@10)  relmem |      time");
  constexpr double kTau = 0.10;

  for (const auto& workload : pb::bench::real_world_suite()) {
    const pb::CsrGraph g = workload.make();
    std::size_t exact_clusters = 0;
    const auto exact = pb::bench::measure([&] {
      exact_clusters = pb::algo::jarvis_patrick_exact(
                           g, pb::algo::SimilarityMeasure::kJaccard, kTau)
                           .num_clusters;
    });
    std::printf("%-18s %-13s | %8.2fx  %14.3f  %6.2f | %9.4fs\n", workload.name.c_str(),
                "Exact", 1.0, 1.0, 0.0, exact.mean_seconds);

    for (const auto kind : {pb::SketchKind::kBloomFilter, pb::SketchKind::kOneHash}) {
      pb::ProbGraphConfig cfg;
      cfg.kind = kind;
      cfg.storage_budget = 0.25;
      cfg.bf_hashes = 2;
      cfg.seed = 42;
      const pb::ProbGraph pg(g, cfg);
      std::size_t clusters = 0;
      const auto timing = pb::bench::measure([&] {
        clusters = pb::algo::jarvis_patrick_probgraph(
                       pg, pb::algo::SimilarityMeasure::kJaccard, kTau)
                       .num_clusters;
      });
      const double rel = pb::bench::relative_count(static_cast<double>(clusters),
                                                   static_cast<double>(exact_clusters));
      std::printf("%-18s %-13s | %8.2fx  %14.3f  %6.2f | %9.4fs\n", workload.name.c_str(),
                  kind == pb::SketchKind::kBloomFilter ? "ProbGraph(BF)" : "ProbGraph(MH)",
                  exact.mean_seconds / timing.mean_seconds, std::min(rel, 10.0),
                  pg.relative_memory(), timing.mean_seconds);
    }
  }
  std::printf("\nExpected shape (paper): BF relcnt near 1.0; MH may exceed 1 (cluster\n"
              "splitting when sketch noise drops edges); both faster than Exact.\n");
  return 0;
}
