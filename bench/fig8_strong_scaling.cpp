// Fig. 8a–d and Fig. 9a: strong scaling — runtime vs thread count at a
// fixed input for Triangle Counting (vs Doulion/Colorful) and the three
// Clustering variants (Common Neighbors, Jaccard, Overlap).
//
// Paper-shape expectations: near-ideal strong scaling for every scheme;
// PG curves sit well below the exact baseline at every thread count; for
// Clustering (CN), BF catches up with (or passes) MH at high thread counts
// because bitwise-AND intersections dominate.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algorithms/clustering.hpp"
#include "algorithms/triangle_count.hpp"
#include "baselines/colorful.hpp"
#include "baselines/doulion.hpp"
#include "common/harness.hpp"
#include "common/workloads.hpp"
#include "graph/orientation.hpp"
#include "util/threading.hpp"

namespace pb = probgraph;
using pb::algo::SimilarityMeasure;

namespace {

std::vector<int> thread_sweep() {
  std::vector<int> threads;
  for (int t = 1; t <= pb::util::max_threads() && t <= 32; t *= 2) threads.push_back(t);
  return threads;
}

template <typename Fn>
double timed_at(int threads, Fn&& fn) {
  pb::util::ThreadScope scope(threads);
  return pb::bench::measure(fn, 2).mean_seconds;
}

}  // namespace

int main() {
  const auto workload = pb::bench::scaling_workload();
  const pb::CsrGraph g = workload.make();
  const pb::CsrGraph dag = pb::degree_orient(g);
  std::printf("Fig. 8a-d / 9a reproduction: strong scaling on %s (n=%u, m=%llu)\n",
              workload.name.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  pb::ProbGraphConfig bf_cfg;
  bf_cfg.storage_budget = 0.25;
  bf_cfg.budget_reference_bytes = g.memory_bytes();
  bf_cfg.bf_hashes = 2;
  pb::ProbGraphConfig oh_cfg = bf_cfg;
  oh_cfg.kind = pb::SketchKind::kOneHash;

  const pb::ProbGraph pg_bf_dag(dag, bf_cfg), pg_oh_dag(dag, oh_cfg);
  const pb::ProbGraph pg_bf(g, bf_cfg), pg_oh(g, oh_cfg);

  pb::bench::print_header("Fig. 8a: Triangle Counting [seconds]",
                          "threads |     Exact   Doulion  Colorful    PG(BF)    PG(1H)");
  for (const int t : thread_sweep()) {
    const double exact =
        timed_at(t, [&] { (void)pb::algo::triangle_count_exact_oriented(dag); });
    const double doulion = timed_at(t, [&] { (void)pb::baselines::doulion_tc(g, 0.25, 1); });
    const double colorful = timed_at(t, [&] { (void)pb::baselines::colorful_tc(g, 2, 1); });
    const double bf = timed_at(t, [&] { (void)pb::algo::triangle_count_probgraph(pg_bf_dag); });
    const double oh = timed_at(t, [&] { (void)pb::algo::triangle_count_probgraph(pg_oh_dag); });
    std::printf("%7d | %9.4f %9.4f %9.4f %9.4f %9.4f\n", t, exact, doulion, colorful, bf, oh);
  }

  const struct {
    const char* title;
    SimilarityMeasure measure;
    double tau;
  } variants[] = {
      {"Fig. 8b/9a: Clustering (Common Neighbors) [seconds]",
       SimilarityMeasure::kCommonNeighbors, 3.0},
      {"Fig. 8c: Clustering (Jaccard) [seconds]", SimilarityMeasure::kJaccard, 0.10},
      {"Fig. 8d: Clustering (Overlap) [seconds]", SimilarityMeasure::kOverlap, 0.30},
  };
  for (const auto& variant : variants) {
    pb::bench::print_header(variant.title,
                            "threads |     Exact    PG(BF)    PG(1H)");
    for (const int t : thread_sweep()) {
      const double exact = timed_at(t, [&] {
        (void)pb::algo::jarvis_patrick_exact(g, variant.measure, variant.tau);
      });
      const double bf = timed_at(t, [&] {
        (void)pb::algo::jarvis_patrick_probgraph(pg_bf, variant.measure, variant.tau);
      });
      const double oh = timed_at(t, [&] {
        (void)pb::algo::jarvis_patrick_probgraph(pg_oh, variant.measure, variant.tau);
      });
      std::printf("%7d | %9.4f %9.4f %9.4f\n", t, exact, bf, oh);
    }
  }
  std::printf("\nExpected shape (paper): every column shrinks ~linearly with threads;\n"
              "PG columns below Exact throughout; BF competitive with 1H on CN\n"
              "clustering at high thread counts.\n");
  return 0;
}
