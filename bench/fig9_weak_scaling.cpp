// Fig. 8e–h and Fig. 9b: weak scaling — the edge count doubles with the
// thread count (n fixed), stressing the load balancing of set
// intersections: Kronecker hubs grow with m/n, so exact merge intersections
// get increasingly imbalanced while PG intersections stay fixed-size.
//
// Paper protocol: n = 1M fixed, m from 4M to 1.8B on a 1 TiB machine. We
// keep the doubling schedule but truncate the endpoint to fit this host
// (DESIGN.md §2); the diagnostic shape — PG curves flattening while exact
// curves keep climbing — is preserved.
#include <cstdio>
#include <vector>

#include "algorithms/clustering.hpp"
#include "algorithms/triangle_count.hpp"
#include "common/harness.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"
#include "util/threading.hpp"

namespace pb = probgraph;
using pb::algo::SimilarityMeasure;

namespace {

template <typename Fn>
double timed_at(int threads, Fn&& fn) {
  pb::util::ThreadScope scope(threads);
  return pb::bench::measure(fn, 2).mean_seconds;
}

}  // namespace

int main() {
  std::printf("Fig. 8e-h / 9b reproduction: weak scaling (m doubles with threads, n fixed)\n");
  constexpr unsigned kScale = 13;  // n = 8192 fixed
  const int max_threads = std::min(pb::util::max_threads(), 16);

  struct Step {
    int threads;
    double edge_factor;
  };
  std::vector<Step> steps;
  double ef = 4.0;
  for (int t = 1; t <= max_threads; t *= 2, ef *= 2.0) steps.push_back({t, ef});

  pb::bench::print_header(
      "Fig. 8e (TC) + 8f (Clustering CN) + 8g (Jaccard) [seconds]",
      "threads   m/n |   TC-Exact   TC-BF     TC-1H  | CN-BF     CN-1H   | Jac-Exact Jac-BF");
  for (const auto& step : steps) {
    const pb::CsrGraph g = pb::gen::kronecker(kScale, step.edge_factor, 400 + step.threads);
    const pb::CsrGraph dag = pb::degree_orient(g);

    pb::ProbGraphConfig bf_cfg;
    bf_cfg.storage_budget = 0.25;
    bf_cfg.budget_reference_bytes = g.memory_bytes();
    bf_cfg.bf_hashes = 2;
    pb::ProbGraphConfig oh_cfg = bf_cfg;
    oh_cfg.kind = pb::SketchKind::kOneHash;
    const pb::ProbGraph pg_bf_dag(dag, bf_cfg), pg_oh_dag(dag, oh_cfg);
    const pb::ProbGraph pg_bf(g, bf_cfg), pg_oh(g, oh_cfg);

    const double tc_exact =
        timed_at(step.threads, [&] { (void)pb::algo::triangle_count_exact_oriented(dag); });
    const double tc_bf =
        timed_at(step.threads, [&] { (void)pb::algo::triangle_count_probgraph(pg_bf_dag); });
    const double tc_oh =
        timed_at(step.threads, [&] { (void)pb::algo::triangle_count_probgraph(pg_oh_dag); });
    const double cn_bf = timed_at(step.threads, [&] {
      (void)pb::algo::jarvis_patrick_probgraph(pg_bf, SimilarityMeasure::kCommonNeighbors, 3.0);
    });
    const double cn_oh = timed_at(step.threads, [&] {
      (void)pb::algo::jarvis_patrick_probgraph(pg_oh, SimilarityMeasure::kCommonNeighbors, 3.0);
    });
    const double jac_exact = timed_at(step.threads, [&] {
      (void)pb::algo::jarvis_patrick_exact(g, SimilarityMeasure::kJaccard, 0.10);
    });
    const double jac_bf = timed_at(step.threads, [&] {
      (void)pb::algo::jarvis_patrick_probgraph(pg_bf, SimilarityMeasure::kJaccard, 0.10);
    });
    std::printf("%7d %5.0f | %9.4f %9.4f %9.4f | %9.4f %9.4f | %9.4f %9.4f\n",
                step.threads, static_cast<double>(g.num_directed_edges()) / g.num_vertices(),
                tc_exact, tc_bf, tc_oh, cn_bf, cn_oh, jac_exact, jac_bf);
  }
  std::printf("\nExpected shape (paper): exact columns climb steeply as m/n grows\n"
              "(hub neighborhoods imbalance merge intersections); PG columns grow\n"
              "much flatter thanks to fixed-size sketch intersections.\n");
  return 0;
}
