// Table IV: work/depth of the |N_u ∩ N_v| primitives, validated
// empirically — latency of CSR merge (O(du + dv)), CSR galloping
// (O(du log dv)), BF bitwise AND (O(B/W)), and MinHash intersections (O(k))
// across neighborhood-size shapes.
//
// Paper-shape expectations: merge scales with du + dv and galloping wins
// when dv >> du; the BF/MinHash kernels are size-independent (fixed B or
// k), which is exactly the load-balancing argument of Fig. 1 panel 5.
// A second mode compares the two ProbGraph estimator entry points over a
// full edge sweep: the legacy per-call path (est_intersection re-resolves
// the SketchKind × BfEstimator switch on every edge) against the hoisted
// backend path (visit_backend resolves once, the loop calls the concrete
// backend directly). The delta is the dispatch overhead this refactor
// removed from every mining algorithm's inner loop.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/backends.hpp"
#include "core/bloom_filter.hpp"
#include "core/intersect.hpp"
#include "core/minhash.hpp"
#include "graph/generators.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace pb = probgraph;

namespace {

std::vector<pb::VertexId> random_sorted_set(std::size_t size, pb::VertexId universe,
                                            std::uint64_t seed) {
  pb::util::Xoshiro256 rng(seed);
  std::vector<pb::VertexId> out;
  out.reserve(size);
  std::vector<bool> used(universe, false);
  while (out.size() < size) {
    const auto v = static_cast<pb::VertexId>(rng.bounded(universe));
    if (!used[v]) {
      used[v] = true;
      out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void BM_CsrMerge(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  const auto x = random_sorted_set(du, 1 << 20, 1);
  const auto y = random_sorted_set(dv, 1 << 20, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pb::intersect_size_merge(x, y));
  }
}

void BM_CsrGallop(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  const auto x = random_sorted_set(du, 1 << 20, 1);
  const auto y = random_sorted_set(dv, 1 << 20, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pb::intersect_size_gallop(x, y));
  }
}

void BM_BloomAnd(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  const std::uint64_t bits = 4096;  // fixed B regardless of du, dv
  pb::BloomFilter bx(bits, 2, 1), by(bits, 2, 1);
  bx.insert(random_sorted_set(du, 1 << 20, 1));
  by.insert(random_sorted_set(dv, 1 << 20, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pb::util::and_popcount(bx.view().words(), by.view().words()));
  }
}

void BM_OneHash(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  pb::OneHashSketch sx(64, 1), sy(64, 1);
  sx.build(random_sorted_set(du, 1 << 20, 1));
  sy.build(random_sorted_set(dv, 1 << 20, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pb::OneHashSketch::intersection_size(sx.entries(), sy.entries(), 64));
  }
}

void BM_KHash(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  pb::KHashSketch sx(64, 1), sy(64, 1);
  sx.build(random_sorted_set(du, 1 << 20, 1));
  sy.build(random_sorted_set(dv, 1 << 20, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pb::KHashSketch::matching_slots(sx.slots(), sy.slots()));
  }
}

void shapes(benchmark::internal::Benchmark* b) {
  // Balanced, skewed, and very skewed neighborhood pairs.
  b->Args({64, 64})->Args({512, 512})->Args({4096, 4096});
  b->Args({64, 4096})->Args({64, 65536})->Args({512, 65536});
}

BENCHMARK(BM_CsrMerge)->Apply(shapes);
BENCHMARK(BM_CsrGallop)->Apply(shapes);
BENCHMARK(BM_BloomAnd)->Apply(shapes);
BENCHMARK(BM_OneHash)->Apply(shapes);
BENCHMARK(BM_KHash)->Apply(shapes);

// --- Per-call dispatch vs. hoisted-backend dispatch over an edge sweep. ---

const pb::CsrGraph& dispatch_graph() {
  static const pb::CsrGraph g = pb::gen::kronecker(13, 16.0, 42);
  return g;
}

const pb::ProbGraph& dispatch_pg(pb::SketchKind kind) {
  static std::vector<std::unique_ptr<pb::ProbGraph>> cache(4);
  const auto idx = static_cast<std::size_t>(kind);
  if (!cache[idx]) {
    pb::ProbGraphConfig cfg;
    cfg.kind = kind;
    cfg.storage_budget = 0.25;
    cache[idx] = std::make_unique<pb::ProbGraph>(dispatch_graph(), cfg);
  }
  return *cache[idx];
}

/// Legacy path: the kind/estimator switch re-runs on every edge.
void BM_PgEdgeSweepPerCallDispatch(benchmark::State& state) {
  const auto kind = static_cast<pb::SketchKind>(state.range(0));
  const pb::CsrGraph& g = dispatch_graph();
  const pb::ProbGraph& pg = dispatch_pg(kind);
  for (auto _ : state) {
    double total = 0.0;
    for (pb::VertexId v = 0; v < g.num_vertices(); ++v) {
      for (const pb::VertexId u : g.neighbors(v)) {
        if (u > v) total += pg.est_intersection(v, u);
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}

/// Refactored path: dispatch once, monomorphic estimator in the loop.
void BM_PgEdgeSweepHoistedBackend(benchmark::State& state) {
  const auto kind = static_cast<pb::SketchKind>(state.range(0));
  const pb::CsrGraph& g = dispatch_graph();
  const pb::ProbGraph& pg = dispatch_pg(kind);
  for (auto _ : state) {
    const double total = pg.visit_backend([&](const auto be) {
      double acc = 0.0;
      for (pb::VertexId v = 0; v < g.num_vertices(); ++v) {
        for (const pb::VertexId u : g.neighbors(v)) {
          if (u > v) acc += be.est_intersection(v, u);
        }
      }
      return acc;
    });
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}

void dispatch_kinds(benchmark::internal::Benchmark* b) {
  b->Arg(static_cast<int>(pb::SketchKind::kBloomFilter))
      ->Arg(static_cast<int>(pb::SketchKind::kKHash))
      ->Arg(static_cast<int>(pb::SketchKind::kOneHash))
      ->Arg(static_cast<int>(pb::SketchKind::kKmv));
}

BENCHMARK(BM_PgEdgeSweepPerCallDispatch)->Apply(dispatch_kinds)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PgEdgeSweepHoistedBackend)->Apply(dispatch_kinds)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
