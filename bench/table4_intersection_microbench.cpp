// Table IV: work/depth of the |N_u ∩ N_v| primitives, validated
// empirically — latency of CSR merge (O(du + dv)), CSR galloping
// (O(du log dv)), BF bitwise AND (O(B/W)), and MinHash intersections (O(k))
// across neighborhood-size shapes.
//
// Paper-shape expectations: merge scales with du + dv and galloping wins
// when dv >> du; the BF/MinHash kernels are size-independent (fixed B or
// k), which is exactly the load-balancing argument of Fig. 1 panel 5.
//
// Kernel-level columns: every primitive with a SIMD implementation in
// src/core/kernels/ runs three ways — `Scalar` (the portable reference,
// called explicitly), the bare name (runtime-dispatched: AVX2/AVX512/NEON
// when cpuid allows, otherwise the same scalar code), and `Batch` where a
// batched entry point exists (one base row vs a candidate arena). Each
// reports intersections/sec plus cycles/op and cycles/edge (TSC on x86,
// the generic counter-timer on AArch64); the Scalar-vs-dispatched ratio
// is the single-core SIMD speedup claimed in the PR.
//
// A second mode compares the ProbGraph estimator entry points over a full
// edge sweep of a Kronecker graph: the legacy per-call path (the
// SketchKind × BfEstimator switch re-resolves on every edge), the hoisted
// backend path (dispatch once, monomorphic loop), and the batched backend
// path (est_intersection_batch per vertex — what triangle counting and
// link prediction now run).
//
// `--json` (stdout) or `--json=FILE` dump the full report as JSON; they
// are shorthand for the corresponding --benchmark_* flags.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

#include "core/backends.hpp"
#include "core/bloom_filter.hpp"
#include "core/intersect.hpp"
#include "core/kernels/kernels.hpp"
#include "core/minhash.hpp"
#include "graph/generators.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace pb = probgraph;
namespace pk = probgraph::kernels;

namespace {

/// Monotonic cycle counter: TSC on x86-64, the virtual counter-timer on
/// AArch64 (fixed frequency, not core cycles, but stable for ratios), 0
/// elsewhere (the cycle columns then read 0 and the time columns remain).
inline std::uint64_t read_cycles() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return 0;
#endif
}

/// Shared counter block: `ops` intersections per iteration, `edges`
/// elements/words the kernel touches per operation (the denominator of
/// cycles/edge), `cycles` measured across the whole timing loop.
void set_kernel_counters(benchmark::State& state, std::uint64_t cycles, double ops_per_iter,
                         double edges_per_op) {
  const double total_ops = static_cast<double>(state.iterations()) * ops_per_iter;
  state.counters["intersections/sec"] =
      benchmark::Counter(total_ops, benchmark::Counter::kIsRate);
  if (cycles > 0 && total_ops > 0) {
    state.counters["cycles/op"] = static_cast<double>(cycles) / total_ops;
    state.counters["cycles/edge"] =
        static_cast<double>(cycles) / (total_ops * edges_per_op);
  }
}

std::vector<pb::VertexId> random_sorted_set(std::size_t size, pb::VertexId universe,
                                            std::uint64_t seed) {
  pb::util::Xoshiro256 rng(seed);
  std::vector<pb::VertexId> out;
  out.reserve(size);
  std::vector<bool> used(universe, false);
  while (out.size() < size) {
    const auto v = static_cast<pb::VertexId>(rng.bounded(universe));
    if (!used[v]) {
      used[v] = true;
      out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- Sorted CSR intersection: scalar reference vs dispatched kernel. ---

template <typename Fn>
void csr_pair_bench(benchmark::State& state, Fn&& fn) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  const auto x = random_sorted_set(du, 1 << 20, 1);
  const auto y = random_sorted_set(dv, 1 << 20, 2);
  const std::uint64_t c0 = read_cycles();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn(x, y));
  }
  const std::uint64_t c1 = read_cycles();
  set_kernel_counters(state, c1 - c0, 1.0, static_cast<double>(du + dv));
}

void BM_CsrMergeScalar(benchmark::State& state) {
  csr_pair_bench(state, [](const auto& x, const auto& y) {
    return pk::scalar::intersect_count_merge(x, y);
  });
}

void BM_CsrMerge(benchmark::State& state) {
  csr_pair_bench(state, [](const auto& x, const auto& y) {
    return pb::intersect_size_merge(x, y);  // dispatched kernel
  });
}

void BM_CsrGallopScalar(benchmark::State& state) {
  csr_pair_bench(state, [](const auto& x, const auto& y) {
    return pk::scalar::intersect_count_gallop(x, y);
  });
}

void BM_CsrGallop(benchmark::State& state) {
  csr_pair_bench(state, [](const auto& x, const auto& y) {
    return pb::intersect_size_gallop(x, y);  // dispatched kernel
  });
}

// --- BF bitwise AND + popcount: scalar vs dispatched vs batched. ---

constexpr std::uint64_t kBfBits = 4096;  // fixed B regardless of du, dv

template <typename Fn>
void bloom_pair_bench(benchmark::State& state, Fn&& fn) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  pb::BloomFilter bx(kBfBits, 2, 1), by(kBfBits, 2, 1);
  bx.insert(random_sorted_set(du, 1 << 20, 1));
  by.insert(random_sorted_set(dv, 1 << 20, 2));
  const auto wx = bx.view().words();
  const auto wy = by.view().words();
  const std::uint64_t c0 = read_cycles();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn(wx, wy));
  }
  const std::uint64_t c1 = read_cycles();
  set_kernel_counters(state, c1 - c0, 1.0, static_cast<double>(wx.size()));
}

void BM_BloomAndScalar(benchmark::State& state) {
  bloom_pair_bench(state, [](auto wx, auto wy) {
    return pk::scalar::and_popcount(wx.data(), wy.data(), wx.size());
  });
}

void BM_BloomAnd(benchmark::State& state) {
  bloom_pair_bench(state, [](auto wx, auto wy) {
    return pb::util::and_popcount(wx, wy);  // dispatched kernel
  });
}

/// Batched sweep shape: one hot base filter against a 64-row candidate
/// arena — the memory access pattern of the batched estimators in
/// core/backends.hpp. Reports per-candidate-pair rates.
void BM_BloomAndBatch(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kCands = 64;
  pb::BloomFilter base(kBfBits, 2, 1);
  base.insert(random_sorted_set(du, 1 << 20, 1));
  const std::size_t wpv = base.view().words().size();
  std::vector<std::uint64_t> arena(kCands * wpv);
  std::vector<pb::VertexId> cands(kCands);
  for (std::size_t c = 0; c < kCands; ++c) {
    pb::BloomFilter f(kBfBits, 2, 1);
    f.insert(random_sorted_set(dv, 1 << 20, 100 + c));
    const auto w = f.view().words();
    std::copy(w.begin(), w.end(), arena.begin() + static_cast<std::ptrdiff_t>(c * wpv));
    cands[c] = static_cast<pb::VertexId>(c);
  }
  std::vector<std::uint64_t> counts(kCands);
  const auto base_words = base.view().words();
  const std::uint64_t c0 = read_cycles();
  for (auto _ : state) {
    pk::and_popcount_batch(base_words, arena.data(), wpv, cands, counts.data());
    benchmark::DoNotOptimize(counts.data());
  }
  const std::uint64_t c1 = read_cycles();
  set_kernel_counters(state, c1 - c0, static_cast<double>(kCands),
                      static_cast<double>(wpv));
}

// --- MinHash intersections: O(k) regardless of shape. ---

void BM_OneHash(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  pb::OneHashSketch sx(64, 1), sy(64, 1);
  sx.build(random_sorted_set(du, 1 << 20, 1));
  sy.build(random_sorted_set(dv, 1 << 20, 2));
  const std::uint64_t c0 = read_cycles();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pb::OneHashSketch::intersection_size(sx.entries(), sy.entries(), 64));
  }
  const std::uint64_t c1 = read_cycles();
  set_kernel_counters(state, c1 - c0, 1.0, 64.0);
}

template <typename Fn>
void khash_pair_bench(benchmark::State& state, Fn&& fn) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  pb::KHashSketch sx(64, 1), sy(64, 1);
  sx.build(random_sorted_set(du, 1 << 20, 1));
  sy.build(random_sorted_set(dv, 1 << 20, 2));
  const std::uint64_t c0 = read_cycles();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn(sx.slots(), sy.slots()));
  }
  const std::uint64_t c1 = read_cycles();
  set_kernel_counters(state, c1 - c0, 1.0, 64.0);
}

void BM_KHashScalar(benchmark::State& state) {
  khash_pair_bench(state, [](auto a, auto b) {
    return pk::scalar::match_count_u64(a.data(), b.data(), a.size(), pb::kEmptySlot);
  });
}

void BM_KHash(benchmark::State& state) {
  khash_pair_bench(state, [](auto a, auto b) {
    return pb::KHashSketch::matching_slots(a, b);  // dispatched kernel
  });
}

void shapes(benchmark::internal::Benchmark* b) {
  // Balanced, skewed, and very skewed neighborhood pairs.
  b->Args({64, 64})->Args({512, 512})->Args({4096, 4096});
  b->Args({64, 4096})->Args({64, 65536})->Args({512, 65536});
}

BENCHMARK(BM_CsrMergeScalar)->Apply(shapes);
BENCHMARK(BM_CsrMerge)->Apply(shapes);
BENCHMARK(BM_CsrGallopScalar)->Apply(shapes);
BENCHMARK(BM_CsrGallop)->Apply(shapes);
BENCHMARK(BM_BloomAndScalar)->Apply(shapes);
BENCHMARK(BM_BloomAnd)->Apply(shapes);
BENCHMARK(BM_BloomAndBatch)->Apply(shapes);
BENCHMARK(BM_OneHash)->Apply(shapes);
BENCHMARK(BM_KHashScalar)->Apply(shapes);
BENCHMARK(BM_KHash)->Apply(shapes);

// --- Estimator entry points over an edge sweep: per-call dispatch vs.
// --- hoisted backend vs. batched backend. ---

const pb::CsrGraph& dispatch_graph() {
  static const pb::CsrGraph g = pb::gen::kronecker(13, 16.0, 42);
  return g;
}

const pb::ProbGraph& dispatch_pg(pb::SketchKind kind) {
  static std::vector<std::unique_ptr<pb::ProbGraph>> cache(4);
  const auto idx = static_cast<std::size_t>(kind);
  if (!cache[idx]) {
    pb::ProbGraphConfig cfg;
    cfg.kind = kind;
    cfg.storage_budget = 0.25;
    cache[idx] = std::make_unique<pb::ProbGraph>(dispatch_graph(), cfg);
  }
  return *cache[idx];
}

void set_sweep_counters(benchmark::State& state, std::uint64_t cycles) {
  const auto edges = static_cast<double>(dispatch_graph().num_edges());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges));
  state.counters["intersections/sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * edges, benchmark::Counter::kIsRate);
  if (cycles > 0) {
    state.counters["cycles/edge"] =
        static_cast<double>(cycles) / (static_cast<double>(state.iterations()) * edges);
  }
}

/// Legacy path: the kind/estimator switch re-runs on every edge.
void BM_PgEdgeSweepPerCallDispatch(benchmark::State& state) {
  const auto kind = static_cast<pb::SketchKind>(state.range(0));
  const pb::CsrGraph& g = dispatch_graph();
  const pb::ProbGraph& pg = dispatch_pg(kind);
  const std::uint64_t c0 = read_cycles();
  for (auto _ : state) {
    double total = 0.0;
    for (pb::VertexId v = 0; v < g.num_vertices(); ++v) {
      for (const pb::VertexId u : g.neighbors(v)) {
        if (u > v) total += pg.est_intersection(v, u);
      }
    }
    benchmark::DoNotOptimize(total);
  }
  const std::uint64_t c1 = read_cycles();
  set_sweep_counters(state, c1 - c0);
}

/// Refactored path: dispatch once, monomorphic estimator in the loop.
void BM_PgEdgeSweepHoistedBackend(benchmark::State& state) {
  const auto kind = static_cast<pb::SketchKind>(state.range(0));
  const pb::CsrGraph& g = dispatch_graph();
  const pb::ProbGraph& pg = dispatch_pg(kind);
  const std::uint64_t c0 = read_cycles();
  for (auto _ : state) {
    const double total = pg.visit_backend([&](const auto be) {
      double acc = 0.0;
      for (pb::VertexId v = 0; v < g.num_vertices(); ++v) {
        for (const pb::VertexId u : g.neighbors(v)) {
          if (u > v) acc += be.est_intersection(v, u);
        }
      }
      return acc;
    });
    benchmark::DoNotOptimize(total);
  }
  const std::uint64_t c1 = read_cycles();
  set_sweep_counters(state, c1 - c0);
}

/// Batched path: one est_intersection_batch per vertex over the u > v
/// suffix — the sweep triangle counting and link prediction now issue.
void BM_PgEdgeSweepBatchedBackend(benchmark::State& state) {
  const auto kind = static_cast<pb::SketchKind>(state.range(0));
  const pb::CsrGraph& g = dispatch_graph();
  const pb::ProbGraph& pg = dispatch_pg(kind);
  std::vector<double> scores;
  const std::uint64_t c0 = read_cycles();
  for (auto _ : state) {
    const double total = pg.visit_backend([&](const auto be) {
      double acc = 0.0;
      for (pb::VertexId v = 0; v < g.num_vertices(); ++v) {
        auto cands = g.neighbors(v);
        const auto first = std::upper_bound(cands.begin(), cands.end(), v);
        cands = cands.subspan(static_cast<std::size_t>(first - cands.begin()));
        if (cands.empty()) continue;
        scores.resize(cands.size());
        be.est_intersection_batch(v, cands, scores.data());
        for (const double s : scores) acc += s;
      }
      return acc;
    });
    benchmark::DoNotOptimize(total);
  }
  const std::uint64_t c1 = read_cycles();
  set_sweep_counters(state, c1 - c0);
}

void dispatch_kinds(benchmark::internal::Benchmark* b) {
  b->Arg(static_cast<int>(pb::SketchKind::kBloomFilter))
      ->Arg(static_cast<int>(pb::SketchKind::kKHash))
      ->Arg(static_cast<int>(pb::SketchKind::kOneHash))
      ->Arg(static_cast<int>(pb::SketchKind::kKmv));
}

BENCHMARK(BM_PgEdgeSweepPerCallDispatch)->Apply(dispatch_kinds)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PgEdgeSweepHoistedBackend)->Apply(dispatch_kinds)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PgEdgeSweepBatchedBackend)->Apply(dispatch_kinds)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: translate the `--json[=FILE]` shorthand into the underlying
// google-benchmark flags, pass everything else through untouched.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      args.emplace_back("--benchmark_format=json");
    } else if (a.rfind("--json=", 0) == 0) {
      args.emplace_back("--benchmark_out_format=json");
      args.emplace_back("--benchmark_out=" + a.substr(7));
    } else {
      args.push_back(a);
    }
  }
  std::vector<char*> cargv;
  cargv.reserve(args.size());
  for (auto& s : args) cargv.push_back(s.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
