// Table IV: work/depth of the |N_u ∩ N_v| primitives, validated
// empirically — latency of CSR merge (O(du + dv)), CSR galloping
// (O(du log dv)), BF bitwise AND (O(B/W)), and MinHash intersections (O(k))
// across neighborhood-size shapes.
//
// Paper-shape expectations: merge scales with du + dv and galloping wins
// when dv >> du; the BF/MinHash kernels are size-independent (fixed B or
// k), which is exactly the load-balancing argument of Fig. 1 panel 5.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/bloom_filter.hpp"
#include "core/intersect.hpp"
#include "core/minhash.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace pb = probgraph;

namespace {

std::vector<pb::VertexId> random_sorted_set(std::size_t size, pb::VertexId universe,
                                            std::uint64_t seed) {
  pb::util::Xoshiro256 rng(seed);
  std::vector<pb::VertexId> out;
  out.reserve(size);
  std::vector<bool> used(universe, false);
  while (out.size() < size) {
    const auto v = static_cast<pb::VertexId>(rng.bounded(universe));
    if (!used[v]) {
      used[v] = true;
      out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void BM_CsrMerge(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  const auto x = random_sorted_set(du, 1 << 20, 1);
  const auto y = random_sorted_set(dv, 1 << 20, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pb::intersect_size_merge(x, y));
  }
}

void BM_CsrGallop(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  const auto x = random_sorted_set(du, 1 << 20, 1);
  const auto y = random_sorted_set(dv, 1 << 20, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pb::intersect_size_gallop(x, y));
  }
}

void BM_BloomAnd(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  const std::uint64_t bits = 4096;  // fixed B regardless of du, dv
  pb::BloomFilter bx(bits, 2, 1), by(bits, 2, 1);
  bx.insert(random_sorted_set(du, 1 << 20, 1));
  by.insert(random_sorted_set(dv, 1 << 20, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pb::util::and_popcount(bx.view().words(), by.view().words()));
  }
}

void BM_OneHash(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  pb::OneHashSketch sx(64, 1), sy(64, 1);
  sx.build(random_sorted_set(du, 1 << 20, 1));
  sy.build(random_sorted_set(dv, 1 << 20, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pb::OneHashSketch::intersection_size(sx.entries(), sy.entries(), 64));
  }
}

void BM_KHash(benchmark::State& state) {
  const auto du = static_cast<std::size_t>(state.range(0));
  const auto dv = static_cast<std::size_t>(state.range(1));
  pb::KHashSketch sx(64, 1), sy(64, 1);
  sx.build(random_sorted_set(du, 1 << 20, 1));
  sy.build(random_sorted_set(dv, 1 << 20, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pb::KHashSketch::matching_slots(sx.slots(), sy.slots()));
  }
}

void shapes(benchmark::internal::Benchmark* b) {
  // Balanced, skewed, and very skewed neighborhood pairs.
  b->Args({64, 64})->Args({512, 512})->Args({4096, 4096});
  b->Args({64, 4096})->Args({64, 65536})->Args({512, 65536});
}

BENCHMARK(BM_CsrMerge)->Apply(shapes);
BENCHMARK(BM_CsrGallop)->Apply(shapes);
BENCHMARK(BM_BloomAnd)->Apply(shapes);
BENCHMARK(BM_OneHash)->Apply(shapes);
BENCHMARK(BM_KHash)->Apply(shapes);

}  // namespace

BENCHMARK_MAIN();
