// Table V + §VIII-G: cost of constructing the ProbGraph representations.
//
// Measures whole-graph sketch-construction time for each representation as
// a function of its parameters (b for BF, k for MinHash/KMV), and reports
// the §VIII-G sanity claim: construction time stays below the runtime of a
// single exact algorithm execution for the practical parameter range
// (b ∈ {1, 2}, moderate k).
// The trailing snapshot section quantifies the build-once / map-many win of
// the src/io/ persistence layer: loading a .pgs snapshot (mmap + checksum
// scan) versus re-running sketch construction on kron:18:16.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "algorithms/triangle_count.hpp"
#include "common/workloads.hpp"
#include "core/prob_graph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/orientation.hpp"
#include "io/snapshot.hpp"
#include "util/timer.hpp"

namespace pb = probgraph;

namespace {

const pb::CsrGraph& bench_graph() {
  static const pb::CsrGraph g = pb::gen::kronecker(14, 16.0, 7);
  return g;
}

void BM_ConstructBloom(benchmark::State& state) {
  const auto& g = bench_graph();
  pb::ProbGraphConfig cfg;
  cfg.storage_budget = 0.25;
  cfg.bf_hashes = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    pb::ProbGraph pg(g, cfg);
    benchmark::DoNotOptimize(pg.memory_bytes());
  }
}

void BM_ConstructKHash(benchmark::State& state) {
  const auto& g = bench_graph();
  pb::ProbGraphConfig cfg;
  cfg.kind = pb::SketchKind::kKHash;
  cfg.minhash_k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    pb::ProbGraph pg(g, cfg);
    benchmark::DoNotOptimize(pg.memory_bytes());
  }
}

void BM_ConstructOneHash(benchmark::State& state) {
  const auto& g = bench_graph();
  pb::ProbGraphConfig cfg;
  cfg.kind = pb::SketchKind::kOneHash;
  cfg.minhash_k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    pb::ProbGraph pg(g, cfg);
    benchmark::DoNotOptimize(pg.memory_bytes());
  }
}

void BM_ConstructKmv(benchmark::State& state) {
  const auto& g = bench_graph();
  pb::ProbGraphConfig cfg;
  cfg.kind = pb::SketchKind::kKmv;
  cfg.minhash_k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    pb::ProbGraph pg(g, cfg);
    benchmark::DoNotOptimize(pg.memory_bytes());
  }
}

BENCHMARK(BM_ConstructBloom)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConstructKHash)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConstructOneHash)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConstructKmv)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // §VIII-G claim: construction ≤ ~50% of one algorithm execution for the
  // practical b ∈ {1, 2}.
  const auto& g = bench_graph();
  const pb::CsrGraph dag = pb::degree_orient(g);
  pb::util::Timer timer;
  const auto tc = pb::algo::triangle_count_exact_oriented(dag);
  const double exact_seconds = timer.seconds();
  std::printf("\n--- §VIII-G check: construction vs one exact TC run (TC=%llu) ---\n",
              static_cast<unsigned long long>(tc));
  for (const std::uint32_t b : {1u, 2u, 4u, 8u}) {
    pb::ProbGraphConfig cfg;
    cfg.storage_budget = 0.25;
    cfg.bf_hashes = b;
    const pb::ProbGraph pg(dag, cfg);
    std::printf("BF b=%u: construction %.4fs = %5.1f%% of exact TC (%.4fs)\n", b,
                pg.construction_seconds(), 100.0 * pg.construction_seconds() / exact_seconds,
                exact_seconds);
  }
  std::printf("Expected shape (paper): well below 100%% for b in {1, 2}; only large b\n"
              "pushes preprocessing beyond one algorithm execution.\n");

  // --- Snapshot persistence: load-from-.pgs vs reconstruction. ---
  // What a cold serving process used to pay on kron:18:16 is the full
  // rebuild: parse the text edge list, build the CSR, hash every
  // neighborhood into sketches (Table V). A .pgs load replaces all of that
  // with one mmap plus a bandwidth-bound checksum scan. The sketch-only
  // column isolates Table V's construction cost from the edge-list parse.
  std::printf("\n--- snapshot load vs reconstruction (kron:18:16) ---\n");
  const pb::CsrGraph big = pb::gen::kronecker(18, 16.0, 7);
  const char* el_path = "table5_snapshot.tmp.el";
  const char* pgs_path = "table5_snapshot.tmp.pgs";
  pb::io::write_edge_list(big, el_path);
  for (const pb::SketchKind kind :
       {pb::SketchKind::kBloomFilter, pb::SketchKind::kKHash, pb::SketchKind::kOneHash,
        pb::SketchKind::kKmv}) {
    pb::ProbGraphConfig cfg;
    cfg.kind = kind;
    cfg.storage_budget = 0.25;

    pb::util::Timer rebuild_timer;
    const pb::CsrGraph reread = pb::io::read_edge_list(el_path);
    const pb::ProbGraph pg(reread, cfg);
    const double rebuild_seconds = rebuild_timer.seconds();

    pb::io::save_snapshot(pgs_path, pg);
    pb::util::Timer load_timer;
    const pb::io::Snapshot snap = pb::io::load_snapshot(pgs_path);
    const double load_seconds = load_timer.seconds();
    std::printf("%-4s rebuild %.4fs (sketches alone %.4fs) | %.1f MB file | "
                "load %.4fs | %6.1fx faster than rebuild, %5.1fx than sketches alone\n",
                pb::to_string(kind), rebuild_seconds, pg.construction_seconds(),
                static_cast<double>(snap.info().file_bytes) / 1e6, load_seconds,
                rebuild_seconds / load_seconds,
                pg.construction_seconds() / load_seconds);
  }
  std::remove(el_path);
  std::remove(pgs_path);
  return 0;
}
