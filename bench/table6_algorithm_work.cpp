// Table VI: work advantages of ProbGraph-enhanced algorithms, validated
// empirically — exact TC work is O(n·d̄²) while PG(BF) is O(n·d̄·B/W) and
// PG(MH) is O(n·d̄·k), so when the average degree doubles at fixed n, the
// exact runtime should grow ~4x while the PG runtimes grow ~2x.
#include <cstdio>

#include "algorithms/triangle_count.hpp"
#include "common/harness.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"

namespace pb = probgraph;

int main() {
  std::printf("Table VI reproduction: runtime scaling in average degree (n = 2^13 fixed)\n");
  pb::bench::print_header(
      "Triangle Counting runtime vs d̄",
      "   m/n |     Exact    growth |    PG(BF)    growth |    PG(1H)    growth");

  double prev_exact = 0.0, prev_bf = 0.0, prev_oh = 0.0;
  for (const double ef : {8.0, 16.0, 32.0, 64.0}) {
    const pb::CsrGraph g = pb::gen::kronecker(13, ef, 11);
    const pb::CsrGraph dag = pb::degree_orient(g);

    const auto exact = pb::bench::measure(
        [&] { (void)pb::algo::triangle_count_exact_oriented(dag); });

    pb::ProbGraphConfig bf_cfg;
    bf_cfg.bf_bits = 1024;  // fixed sketch size across the sweep
    bf_cfg.bf_hashes = 2;
    const pb::ProbGraph pg_bf(dag, bf_cfg);
    const auto bf = pb::bench::measure(
        [&] { (void)pb::algo::triangle_count_probgraph(pg_bf); });

    pb::ProbGraphConfig oh_cfg;
    oh_cfg.kind = pb::SketchKind::kOneHash;
    oh_cfg.minhash_k = 32;
    const pb::ProbGraph pg_oh(dag, oh_cfg);
    const auto oh = pb::bench::measure(
        [&] { (void)pb::algo::triangle_count_probgraph(pg_oh); });

    auto growth = [](double cur, double prev) { return prev == 0.0 ? 0.0 : cur / prev; };
    std::printf("%6.0f | %9.4f  %6.2fx | %9.4f  %6.2fx | %9.4f  %6.2fx\n",
                static_cast<double>(g.num_directed_edges()) / g.num_vertices(),
                exact.mean_seconds, growth(exact.mean_seconds, prev_exact), bf.mean_seconds,
                growth(bf.mean_seconds, prev_bf), oh.mean_seconds,
                growth(oh.mean_seconds, prev_oh));
    prev_exact = exact.mean_seconds;
    prev_bf = bf.mean_seconds;
    prev_oh = oh.mean_seconds;
  }
  std::printf("\nExpected shape (paper): the Exact growth column approaches ~4x per\n"
              "degree doubling (work n·d̄²); the PG columns approach ~2x (work n·d̄·B/W\n"
              "and n·d̄·k with B, k fixed).\n");
  return 0;
}
