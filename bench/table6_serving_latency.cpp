// Serving latency: `pgtool serve` sessions vs one-shot invocations.
//
// The engine layer (src/engine/) exists so that a query pays neither
// process start nor snapshot map + checksum: `pgtool serve` maps the .pgs
// once and answers arbitrarily many queries over the live mapping. This
// bench quantifies the per-query win on the golden snapshot, reported like
// the table5 snapshot column:
//
//   * cold one-shot  — Engine::from_snapshot + one query per request, the
//     per-invocation floor of the old CLI (a real process one-shot adds
//     exec + dynamic-loader time on top, so the reported speedup is a
//     lower bound);
//   * warm session   — one Engine, many queries (the serve mode), split by
//     query type;
//   * protocol loop  — full serve_session round trips (parse + execute +
//     format) driven through in-memory streams, i.e. what a scripted
//     `pgtool serve` session measures minus the pipe itself;
//   * concurrent sessions — 1/2/4 ping-pong TCP clients against ONE
//     threads-transport server sharing the same mapping (the
//     `pgtool serve --listen` mode), measuring the per-query round trip
//     including loopback and the thread-per-connection machinery;
//   * reactor capacity — 1/64/1k/10k simultaneous sessions against ONE
//     epoll-transport server (`--transport epoll`), send-all-then-read-all,
//     showing a fixed worker pool holding five orders of magnitude more
//     sessions than threads could;
//   * pipelining — one connection sending bursts of depth 1/8/64 requests
//     per write against the epoll server; depth amortizes the loopback
//     round trip, so deep bursts must beat ping-pong by a wide margin.
//
// Usage: table6_serving_latency [snapshot.pgs] [--json[=FILE]]
// Without a snapshot argument it looks for tests/data/golden.pgs (cwd or
// parent) and falls back to building a kron:12:8 snapshot in a temp file.
// --json additionally emits every row as a machine-readable report (to
// stdout, or to FILE with --json=FILE) in the same spirit as table4's
// google-benchmark JSON — the CI bench-smoke job archives these.
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/prob_graph.hpp"
#include "engine/engine.hpp"
#include "engine/protocol.hpp"
#include "engine/query.hpp"
#include "graph/generators.hpp"
#include "io/snapshot.hpp"
#include "net/line_reader.hpp"
#include "net/line_scanner.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "util/timer.hpp"

namespace pb = probgraph;

namespace {

std::string locate_snapshot(const std::vector<std::string>& positional,
                            std::optional<std::string>& temp) {
  if (!positional.empty()) return positional.front();
  for (const char* candidate : {"tests/data/golden.pgs", "../tests/data/golden.pgs"}) {
    if (std::filesystem::exists(candidate)) return candidate;
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "table6_serving.tmp.pgs").string();
  std::printf("golden.pgs not found; building a kron:12:8 snapshot at %s\n", path.c_str());
  const pb::CsrGraph g = pb::gen::kronecker(12, 8.0, 7);
  const pb::ProbGraph pg(g, pb::ProbGraphConfig{});
  pb::io::save_snapshot(path, pg);
  temp = path;
  return path;
}

/// Buffered reply reader for the sweep clients: bulk recv into a
/// LineScanner so reading 10k (or 64-deep pipelined) replies costs a few
/// syscalls, not one per byte — the bench must time the server, not a
/// naive client.
struct ReplyReader {
  explicit ReplyReader(pb::net::Socket& s) : sock(&s) {}
  pb::net::Socket* sock;
  pb::net::LineScanner scanner{1 << 16};

  bool next(std::string& line) {
    for (;;) {
      if (scanner.next(line) == pb::net::LineScanner::Next::kLine) return true;
      char buf[16384];
      const long got = sock->read_some(buf, sizeof buf);
      if (got <= 0) return false;
      scanner.feed(buf, static_cast<std::size_t>(got));
    }
  }
};

/// Client half of the concurrent-sessions sweep, run in a FORKED child
/// process: K live sessions cost K fds on EACH end and RLIMIT_NOFILE is
/// per process, so one process holding both ends halves the reachable K
/// (a 20000-fd limit tops out at ~9950 sessions). The child is forked
/// while the bench is still single-threaded (fork + threads don't mix),
/// then driven over a socketpair with "K port" command lines; it answers
/// "answered seconds" after holding K simultaneous sessions.
class SweepClient {
 public:
  SweepClient() = default;
  SweepClient(const SweepClient&) = delete;
  SweepClient& operator=(const SweepClient&) = delete;
  SweepClient(SweepClient&& other) noexcept
      : cmd_fd_(other.cmd_fd_), pid_(other.pid_) {
    other.cmd_fd_ = -1;
    other.pid_ = -1;
  }
  ~SweepClient() { stop(); }

  static SweepClient spawn() {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return {};
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      return {};
    }
    if (pid == 0) {
      ::close(sv[0]);
      client_main(sv[1]);  // never returns
    }
    ::close(sv[1]);
    SweepClient c;
    c.cmd_fd_ = sv[0];
    c.pid_ = pid;
    return c;
  }

  [[nodiscard]] bool valid() const { return pid_ > 0; }

  /// One sweep: the child connects `sessions` sockets, sends a pair query
  /// on every one, then collects every reply. Reports the reply count and
  /// the send-all-then-read-all wall time (connect setup excluded).
  bool run(int sessions, std::uint16_t port, long& answered, double& secs) {
    if (!valid()) return false;
    char cmd[64];
    const int len = std::snprintf(cmd, sizeof cmd, "%d %u\n", sessions,
                                  static_cast<unsigned>(port));
    if (::write(cmd_fd_, cmd, static_cast<std::size_t>(len)) != len) return false;
    std::string reply;
    if (!read_line(cmd_fd_, reply)) return false;
    return std::sscanf(reply.c_str(), "%ld %lf", &answered, &secs) == 2;
  }

  void stop() {
    if (cmd_fd_ >= 0) ::close(cmd_fd_);
    cmd_fd_ = -1;
    if (pid_ > 0) ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

 private:
  static bool read_line(int fd, std::string& line) {
    line.clear();
    char c = 0;
    for (;;) {
      const ssize_t r = ::read(fd, &c, 1);
      if (r <= 0) return false;
      if (c == '\n') return true;
      line.push_back(c);
    }
  }

  [[noreturn]] static void client_main(int fd) {
    for (;;) {
      std::string cmd;
      if (!read_line(fd, cmd)) ::_exit(0);  // parent closed: done
      int sessions = 0;
      unsigned port = 0;
      if (std::sscanf(cmd.c_str(), "%d %u", &sessions, &port) != 2) ::_exit(1);
      long answered = 0;
      double secs = 0.0;
      {
        std::vector<pb::net::Socket> socks;
        socks.reserve(static_cast<std::size_t>(sessions));
        bool ok = true;
        for (int i = 0; i < sessions && ok; ++i) {
          try {
            socks.push_back(
                pb::net::connect_to("127.0.0.1", static_cast<std::uint16_t>(port)));
          } catch (const std::exception&) {
            ok = false;
          }
        }
        if (ok) {
          pb::util::Timer timer;
          for (auto& s : socks) {
            if (!s.write_all("pair intersection 0 1\n")) ok = false;
          }
          std::string reply;
          for (auto& s : socks) {
            ReplyReader reader(s);
            if (reader.next(reply) && reply.rfind("ok", 0) == 0) ++answered;
          }
          secs = timer.seconds();
        }
        for (auto& s : socks) (void)s.write_all("quit\n");
      }
      char out[64];
      const int len = std::snprintf(out, sizeof out, "%ld %.9f\n", answered, secs);
      if (::write(fd, out, static_cast<std::size_t>(len)) != len) ::_exit(1);
    }
  }

  int cmd_fd_ = -1;
  pid_t pid_ = -1;
};

double seconds_per_iter(int iters, const auto& body) {
  pb::util::Timer timer;
  for (int i = 0; i < iters; ++i) body();
  return timer.seconds() / iters;
}

/// Machine-readable mirror of the printed rows, emitted only under
/// --json[=FILE]. Shape follows google-benchmark's report (a context
/// object + a benchmarks array) so the CI artifacts parse uniformly.
struct JsonReport {
  bool enabled = false;
  std::string file;  // empty = stdout
  std::vector<std::pair<std::string, double>> rows;  // name -> us/query

  void add(const std::string& name, double us_per_query) {
    if (enabled) rows.emplace_back(name, us_per_query);
  }

  void emit(const std::string& snapshot, pb::VertexId n) const {
    if (!enabled) return;
    std::FILE* out = file.empty() ? stdout : std::fopen(file.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for the JSON report\n", file.c_str());
      return;
    }
    const bool obs =
#if defined(PROBGRAPH_OBS) && PROBGRAPH_OBS
        true;
#else
        false;
#endif
    std::fprintf(out,
                 "{\n  \"context\": {\n    \"snapshot\": \"%s\",\n"
                 "    \"num_vertices\": %u,\n    \"obs_enabled\": %s\n  },\n"
                 "  \"benchmarks\": [\n",
                 snapshot.c_str(), n, obs ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"us_per_query\": %.4f}%s\n",
                   rows[i].first.c_str(), rows[i].second,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (!file.empty()) std::fclose(out);
  }
};

}  // namespace

int main(int argc, char** argv) {
  JsonReport json;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json.enabled = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json.enabled = true;
      json.file = arg.substr(7);
    } else {
      positional.push_back(arg);
    }
  }
  std::optional<std::string> temp;
  const std::string path = locate_snapshot(positional, temp);

  namespace eng = pb::engine;
  eng::Engine warm = eng::Engine::from_snapshot(path);
  const pb::VertexId n = warm.graph().num_vertices();
  std::printf("snapshot: %s — n=%u, %s sketches, %.2f MB file\n", path.c_str(), n,
              pb::to_string(warm.snapshot_info()->kind),
              static_cast<double>(warm.snapshot_info()->file_bytes) / 1e6);

  const eng::Query pair_query =
      eng::PairEstimate{eng::EstimateKind::kIntersection, {{0, 1 % n}, {2 % n, 3 % n}}, false};

  constexpr int kCold = 200;
  constexpr int kWarmPair = 20000;
  constexpr int kWarmScan = 50;

  // Cold one-shot: map + checksum + query, every time — what each CLI
  // invocation used to pay after process start.
  const double cold = seconds_per_iter(kCold, [&] {
    eng::Engine e = eng::Engine::from_snapshot(path);
    (void)e.run(pair_query);
  });

  // Warm session: the mapping is live, a query is just the algorithm.
  const double warm_pair = seconds_per_iter(kWarmPair, [&] { (void)warm.run(pair_query); });
  const double warm_stats = seconds_per_iter(kWarmPair, [&] { (void)warm.run(eng::GraphStats{}); });
  const double warm_tc =
      seconds_per_iter(kWarmScan, [&] { (void)warm.run(eng::TriangleCount{}); });

  // Protocol round trips: parse one request line, execute, format a reply.
  std::string script;
  for (int i = 0; i < kWarmPair; ++i) script += "pair intersection 0 1\n";
  script += "quit\n";
  std::istringstream in(script);
  std::ostringstream out;
  pb::util::Timer proto_timer;
  const std::size_t answered = eng::serve_session(warm, in, out);
  const double proto = proto_timer.seconds() / static_cast<double>(answered);

  json.add("cold_one_shot_pair", cold * 1e6);
  json.add("warm_session_pair", warm_pair * 1e6);
  json.add("warm_session_stats", warm_stats * 1e6);
  json.add("warm_session_tc", warm_tc * 1e6);
  json.add("protocol_round_trip_pair", proto * 1e6);

  std::printf("\n--- per-query latency: serve session vs one-shot (cold map) ---\n");
  std::printf("cold one-shot (map+checksum+pair) %10.1f us/query\n", cold * 1e6);
  std::printf("warm session, pair estimate       %10.3f us/query | %8.1fx vs cold\n",
              warm_pair * 1e6, cold / warm_pair);
  std::printf("warm session, stats               %10.3f us/query | %8.1fx vs cold\n",
              warm_stats * 1e6, cold / warm_stats);
  std::printf("warm session, tc (full scan)      %10.1f us/query\n", warm_tc * 1e6);
  std::printf("serve protocol round trip (pair)  %10.3f us/query (parse+execute+format)\n",
              proto * 1e6);
  std::printf("\nA real one-shot also pays process start (exec + loader), so the\n"
              "session speedup is a lower bound; scan-type queries (tc) amortize the\n"
              "map less since the algorithm dominates.\n");

  // Multi-substrate routing: one v2 snapshot carrying BF+KMV in both
  // orientations. The substrate lookup is a handful of pointer compares
  // hoisted once per query, so a routed (kind=) query must cost the same
  // as a primary-substrate one — this section proves the routing layer
  // adds nothing to the hot path.
  if (!warm.source_oriented()) {
    const std::string multi_path =
        (std::filesystem::temp_directory_path() / "table6_multi.tmp.pgs").string();
    const pb::CsrGraph& g = warm.graph();
    const pb::SketchKind kinds[] = {pb::SketchKind::kBloomFilter, pb::SketchKind::kKmv};
    const pb::io::SubstrateSet set =
        pb::io::build_substrates(g, kinds, /*symmetric=*/true, /*degree_oriented=*/true);
    pb::io::save_snapshot(multi_path, set.substrates);
    eng::Engine multi = eng::Engine::from_snapshot(multi_path);

    eng::PairEstimate routed_bf{eng::EstimateKind::kIntersection,
                                {{0, 1 % n}, {2 % n, 3 % n}}, false};
    routed_bf.sketch = pb::SketchKind::kBloomFilter;
    eng::PairEstimate routed_kmv = routed_bf;
    routed_kmv.sketch = pb::SketchKind::kKmv;
    // Routing cost in isolation: the SAME substrate answers both the
    // default route and an explicit kind=bf route, so any delta IS the
    // kind= lookup. The KMV rows then show the portfolio view (a
    // different estimator, so a different cost by design).
    const double multi_pair =
        seconds_per_iter(kWarmPair, [&] { (void)multi.run(pair_query); });
    const double multi_pair_bf =
        seconds_per_iter(kWarmPair, [&] { (void)multi.run(eng::Query{routed_bf}); });
    const double multi_pair_kmv =
        seconds_per_iter(kWarmPair, [&] { (void)multi.run(eng::Query{routed_kmv}); });
    const double multi_tc =
        seconds_per_iter(kWarmScan, [&] { (void)multi.run(eng::TriangleCount{}); });
    const double multi_tc_kmv = seconds_per_iter(
        kWarmScan, [&] { (void)multi.run(eng::TriangleCount{.sketch = pb::SketchKind::kKmv}); });

    json.add("multi_pair_default_route", multi_pair * 1e6);
    json.add("multi_pair_kind_bf", multi_pair_bf * 1e6);
    json.add("multi_pair_kind_kmv", multi_pair_kmv * 1e6);
    json.add("multi_tc_dag_route", multi_tc * 1e6);
    json.add("multi_tc_kind_kmv", multi_tc_kmv * 1e6);

    std::printf("\n--- multi-substrate snapshot (BF+KMV x sym+dag, one mapping) ---\n");
    std::printf("pair, default route (BF/sym)      %10.3f us/query\n", multi_pair * 1e6);
    std::printf("pair, kind=bf (same substrate)    %10.3f us/query | routing delta %+.3f us\n",
                multi_pair_bf * 1e6, (multi_pair_bf - multi_pair) * 1e6);
    std::printf("pair, kind=kmv (KMV/sym)          %10.3f us/query (different estimator)\n",
                multi_pair_kmv * 1e6);
    std::printf("tc, routed to the DAG substrate   %10.1f us/query (oriented estimator)\n",
                multi_tc * 1e6);
    std::printf("tc, kind=kmv (KMV/dag)            %10.1f us/query\n", multi_tc_kmv * 1e6);
    std::printf("One file now answers every query class; the default-vs-kind=bf rows\n"
                "time the SAME substrate, isolating the per-query routing lookup.\n");
    std::error_code ec;
    std::filesystem::remove(multi_path, ec);
  }

  // Concurrent sessions over ONE shared mapping: the thread-per-connection
  // transport (the `pgtool serve --listen` default), C ping-pong clients
  // each sending a pair request and waiting for its reply — per-query wire
  // latency.
  {
    pb::net::ServeOptions sopts;
    sopts.engine = &warm;
    const std::unique_ptr<pb::net::Transport> server =
        pb::net::make_transport(pb::net::TransportKind::kThreads, sopts);
    std::thread runner([&] { server->run(); });
    constexpr int kPerClient = 2000;

    std::printf("\n--- concurrent sessions against one mapping (loopback TCP) ---\n");
    for (const int clients : {1, 2, 4}) {
      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(clients));
      std::atomic<long long> completed{0};
      pb::util::Timer timer;
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&server, &completed] {
          try {
            pb::net::Socket sock = pb::net::connect_to("127.0.0.1", server->port());
            pb::net::LineReader reader(sock, 1 << 16);
            std::string reply;
            for (int i = 0; i < kPerClient; ++i) {
              if (!sock.write_all("pair intersection 0 1\n")) return;
              if (reader.next(reply) != pb::net::LineReader::Status::kLine) return;
              completed.fetch_add(1, std::memory_order_relaxed);
            }
            (void)sock.write_all("quit\n");
            (void)reader.next(reply);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "bench client error: %s\n", e.what());
          }
        });
      }
      for (auto& w : workers) w.join();
      const double secs = timer.seconds();
      const double total = static_cast<double>(completed.load());
      const double expected = static_cast<double>(clients) * kPerClient;
      if (total < expected) {
        std::printf("%d client%s: only %.0f/%.0f queries completed — skipping the row\n",
                    clients, clients == 1 ? " " : "s", total, expected);
        continue;
      }
      std::printf("%d client%s x %d queries   %10.3f us/query round trip | %9.0f q/s aggregate\n",
                  clients, clients == 1 ? " " : "s", kPerClient,
                  secs / (total / clients) * 1e6, total / secs);
      json.add("tcp_round_trip_" + std::to_string(clients) + "_clients",
               secs / (total / clients) * 1e6);
    }
    server->request_stop();
    runner.join();
    std::printf("Round trips include loopback TCP and the per-connection session\n"
                "thread; aggregate q/s shows how sessions scale on one mapping\n"
                "(bounded by cores — this is the serving story, not a kernel bench).\n");
  }

  // Reactor capacity + pipelining: one epoll-transport server, a fixed
  // worker pool, ONE mapping. The sessions sweep holds K live connections
  // at once (thread-per-connection would need K threads; the reactor needs
  // K fds and a Session each), sends one query on every connection, then
  // collects every reply. The depth sweep pipelines bursts on a single
  // connection — N requests in one write, N replies in one gathered write
  // back — so the loopback round trip amortizes across the burst.
  {
    // 10k sessions need 10k client fds AND 10k server fds; RLIMIT_NOFILE
    // is per process, so the client half runs in a forked helper. Raise
    // the limit first if the environment allows it (the fork inherits the
    // bump); otherwise cap the sweep at what one process can hold.
    rlimit lim{65536, 65536};
    if (setrlimit(RLIMIT_NOFILE, &lim) != 0) {
      if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
        rlimit bumped{lim.rlim_max, lim.rlim_max};
        if (setrlimit(RLIMIT_NOFILE, &bumped) == 0) lim = bumped;
      }
    }
    const auto fd_budget = static_cast<std::size_t>(lim.rlim_cur);
    const int max_sessions =
        static_cast<int>(std::min<std::size_t>(10000, fd_budget - 64));

    // Fork BEFORE the server's threads exist.
    SweepClient sweep = SweepClient::spawn();

    pb::net::ServeOptions sopts;
    sopts.engine = &warm;
    sopts.max_conns = 20000;
    sopts.backlog = 4096;  // a 10k connect storm outruns the default 64
    const std::unique_ptr<pb::net::Transport> server =
        pb::net::make_transport(pb::net::TransportKind::kEpoll, sopts);
    std::thread runner([&] { server->run(); });

    std::printf("\n--- epoll reactor: concurrent sessions on one mapping ---\n");
    for (const int sessions : {1, 64, 1000, 10000}) {
      if (sessions > max_sessions) {
        std::printf("%5d sessions: skipped — RLIMIT_NOFILE=%zu allows only %d\n",
                    sessions, fd_budget, max_sessions);
        continue;
      }
      long answered = 0;
      double secs = 0.0;
      if (!sweep.run(sessions, server->port(), answered, secs) ||
          answered != sessions) {
        std::printf("%5d sessions: only %ld replies — skipping the row\n",
                    sessions, answered);
        continue;
      }
      std::printf("%5d concurrent sessions   %10.3f us/query aggregate | %9.0f q/s\n",
                  sessions, secs / sessions * 1e6,
                  static_cast<double>(sessions) / secs);
      json.add("epoll_sessions_" + std::to_string(sessions), secs / sessions * 1e6);
    }
    sweep.stop();

    std::printf("\n--- epoll reactor: pipelined bursts on one connection ---\n");
    double depth1_us = 0.0;
    for (const int depth : {1, 8, 64}) {
      constexpr int kTotal = 8192;
      const int iters = kTotal / depth;
      std::string burst;
      for (int i = 0; i < depth; ++i) burst += "pair intersection 0 1\n";
      try {
        pb::net::Socket sock = pb::net::connect_to("127.0.0.1", server->port());
        ReplyReader reader(sock);
        std::string reply;
        bool ok = true;
        pb::util::Timer timer;
        for (int it = 0; it < iters && ok; ++it) {
          if (!sock.write_all(burst)) ok = false;
          for (int i = 0; i < depth && ok; ++i) {
            if (!reader.next(reply) || reply.rfind("ok", 0) != 0) ok = false;
          }
        }
        const double secs = timer.seconds();
        (void)sock.write_all("quit\n");
        if (!ok) {
          std::printf("depth %2d: session failed — skipping the row\n", depth);
          continue;
        }
        const double us = secs / (static_cast<double>(iters) * depth) * 1e6;
        if (depth == 1) depth1_us = us;
        std::printf("depth %2d x %4d bursts   %10.3f us/query | %9.0f q/s",
                    depth, iters, us, static_cast<double>(iters) * depth / secs);
        if (depth > 1 && depth1_us > 0.0) {
          std::printf(" | %5.1fx vs depth 1", depth1_us / us);
        }
        std::printf("\n");
        json.add("epoll_pipeline_depth_" + std::to_string(depth), us);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "pipelining client error: %s\n", e.what());
      }
    }

    server->request_stop();
    runner.join();
    std::printf("The sessions sweep is send-all-then-read-all: every connection is\n"
                "live at once, a fixed worker pool drains them, and us/query is the\n"
                "aggregate drain rate. Pipelined depth amortizes the round trip —\n"
                "deep bursts approach the protocol-loop floor above.\n");
  }

  json.emit(path, n);

  if (temp) {
    std::error_code ec;
    std::filesystem::remove(*temp, ec);
  }
  return 0;
}
