// Table VII (and Table II/III): empirical verification of the estimator
// properties the paper proves.
//
//  * AU/CN (asymptotically unbiased, consistent): bias and variance of each
//    |X∩Y| estimator shrink as the sketch grows.
//  * Concentration bounds: the empirical violation rate
//    P(|est − truth| ≥ t) never exceeds the theoretical RHS — polynomial
//    for BF (Eq. 3), exponential for MinHash (Props. IV.2/IV.3), beta-exact
//    for KMV (Props. A.7/A.9).
//  * TC bounds (Thm. VII.1): the 1-Hash TC estimate respects its
//    exponential bound on a Kronecker graph.
#include <cmath>
#include <cstdio>
#include <vector>

#include "algorithms/triangle_count.hpp"
#include "core/bounds.hpp"
#include "core/estimators.hpp"
#include "core/kmv.hpp"
#include "core/prob_graph.hpp"
#include "common/harness.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace pb = probgraph;

namespace {

std::vector<pb::VertexId> range_set(pb::VertexId lo, pb::VertexId hi) {
  std::vector<pb::VertexId> v;
  for (pb::VertexId x = lo; x < hi; ++x) v.push_back(x);
  return v;
}

// |X| = |Y| = 600, |X∩Y| = 300: the shared fixture of this bench.
const auto kX = range_set(0, 600);
const auto kY = range_set(300, 900);
constexpr double kTruth = 300.0;
constexpr int kTrials = 300;

struct Moments {
  double bias;
  double variance;
  double violation_rate;  // at distance t
};

template <typename EstimateFn>
Moments sample(EstimateFn&& estimate, double t) {
  std::vector<double> values;
  values.reserve(kTrials);
  int violations = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const double est = estimate(1000 + trial);
    values.push_back(est);
    if (std::abs(est - kTruth) >= t) ++violations;
  }
  return {pb::util::mean(values) - kTruth, pb::util::variance(values),
          static_cast<double>(violations) / kTrials};
}

}  // namespace

int main() {
  std::printf("Table VII / II / III reproduction: estimator properties, measured\n");
  const double t = 75.0;  // deviation distance for the violation columns

  pb::bench::print_header(
      "AU + CN: bias and variance vs sketch size (|X∩Y| = 300)",
      "estimator        size |      bias   variance | P(dev>=75)  bound(75)");

  for (const std::uint64_t bits : {1u << 12, 1u << 14, 1u << 16}) {
    const auto m = sample(
        [&](std::uint64_t seed) {
          pb::BloomFilter x(bits, 1, seed), y(bits, 1, seed);
          x.insert(kX);
          y.insert(kY);
          return pb::est::bf_intersection_and(x.view().and_ones(y.view()), bits, 1);
        },
        t);
    const double bound = pb::bounds::bf_and_deviation_bound(kTruth, static_cast<double>(bits), 1, t);
    std::printf("BF-AND  %9llu | %9.2f  %9.1f |   %7.3f    %7.3f%s\n",
                static_cast<unsigned long long>(bits), m.bias, m.variance, m.violation_rate,
                bound, m.violation_rate <= bound ? "  OK" : "  VIOLATED");
  }

  for (const std::uint32_t k : {32u, 128u, 512u}) {
    const auto m = sample(
        [&](std::uint64_t seed) {
          pb::OneHashSketch x(k, seed), y(k, seed);
          x.build(kX);
          y.build(kY);
          return pb::est::mh_intersection(x.jaccard(y), 600, 600);
        },
        t);
    const double bound = pb::bounds::mh_deviation_bound(600, 600, k, t);
    std::printf("1-Hash  %9u | %9.2f  %9.1f |   %7.3f    %7.3f%s\n", k, m.bias, m.variance,
                m.violation_rate, bound, m.violation_rate <= bound ? "  OK" : "  VIOLATED");
  }

  for (const std::uint32_t k : {32u, 128u, 512u}) {
    const auto m = sample(
        [&](std::uint64_t seed) {
          pb::KHashSketch x(k, seed), y(k, seed);
          x.build(kX);
          y.build(kY);
          return pb::est::mh_intersection(x.jaccard(y), 600, 600);
        },
        t);
    const double bound = pb::bounds::mh_deviation_bound(600, 600, k, t);
    std::printf("k-Hash  %9u | %9.2f  %9.1f |   %7.3f    %7.3f%s\n", k, m.bias, m.variance,
                m.violation_rate, bound, m.violation_rate <= bound ? "  OK" : "  VIOLATED");
  }

  for (const std::uint32_t k : {32u, 128u, 512u}) {
    const auto m = sample(
        [&](std::uint64_t seed) {
          pb::KmvSketch x(k, seed), y(k, seed);
          x.build(kX);
          y.build(kY);
          return pb::KmvSketch::estimate_intersection(x, y, 600, 600);
        },
        t);
    // Prop. A.9 is an exact probability (not an upper bound), so the
    // empirical rate fluctuates both ways; allow two Monte-Carlo standard
    // errors before flagging.
    const double bound = pb::bounds::kmv_intersection_deviation_exact(900, k, t);
    const double mc_noise = 2.0 * std::sqrt(bound * (1.0 - bound) / kTrials) + 1.0 / kTrials;
    std::printf("KMV     %9u | %9.2f  %9.1f |   %7.3f    %7.3f%s\n", k, m.bias, m.variance,
                m.violation_rate, bound,
                m.violation_rate <= bound + mc_noise ? "  OK(exact,±MC)" : "  VIOLATED");
  }

  // Thm. VII.1: TC concentration for the 1-Hash estimator.
  pb::bench::print_header("Thm. VII.1: TC (1-Hash, full mode) concentration",
                          "k    |  empirical P(dev >= 0.3·TC)   bound");
  const pb::CsrGraph g = pb::gen::kronecker(10, 12.0, 5);
  const auto exact_tc = static_cast<double>(pb::algo::triangle_count_exact(g));
  const double tc_t = 0.3 * exact_tc;
  for (const std::uint32_t k : {16u, 64u}) {
    int violations = 0;
    constexpr int kTcTrials = 20;
    for (int trial = 0; trial < kTcTrials; ++trial) {
      pb::ProbGraphConfig cfg;
      cfg.kind = pb::SketchKind::kOneHash;
      cfg.minhash_k = k;
      cfg.seed = 3000 + trial;
      const pb::ProbGraph pg(g, cfg);
      const double est = pb::algo::triangle_count_probgraph(pg, pb::algo::TcMode::kFull);
      if (std::abs(est - exact_tc) >= tc_t) ++violations;
    }
    const double bound = pb::bounds::tc_mh_deviation_bound(g.degree_moment(2), k, tc_t);
    std::printf("%-4u |  %10.3f                   %7.3f\n", k,
                static_cast<double>(violations) / kTcTrials, bound);
  }

  std::printf("\nExpected shape (paper): |bias| and variance shrink monotonically with\n"
              "sketch size (AU + CN); every violation column is at most its bound\n"
              "column; MinHash bounds (exponential) are far tighter than BF's\n"
              "(polynomial) at equal storage.\n");
  return 0;
}
