// Live-update serving: reseal latency and query latency during reseals.
//
// The live layer (src/live/ + engine/generation.hpp) promises two things:
// a reseal is cheap enough to run while serving (incremental sketch
// patches, not a cold rebuild), and the query hot path stays lock-free
// through the generation swap (readers pin via atomics, never a mutex).
// This bench quantifies both on a kron:12:8 snapshot:
//
//   * pin overhead      — the same pair estimate through a Reader::Pin vs
//     straight at the Engine; the delta IS the per-query cost of living
//     behind the epoch-swap protocol;
//   * reseal latency    — stage a batch of B edge inserts, seal, then
//     stage the same B as deletes and seal back, for B in {1, 64, 1024}.
//     Each seal applies the batch to a shadow copy, saves a .pgs
//     generation, maps it, swaps, and drains readers — the full write
//     path a `update seal` client waits on;
//   * queries vs reseals — one session runs pair estimates while a writer
//     loops stage+seal; per-query latencies are sampled and reported as
//     p50/p99 next to the same session on a quiescent engine. The p99 gap
//     is what a reseal costs the readers (swap-fence stalls, cache churn
//     from the new mapping), which the epoch-swap design keeps bounded —
//     readers never block on the writer's apply/save/load work.
//
// Usage: table8_live_update [--json[=FILE]]
// --json emits the rows in the table6-style report shape (context +
// benchmarks[{name, us_per_query}]) that the CI bench-smoke job archives.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/prob_graph.hpp"
#include "engine/engine.hpp"
#include "engine/generation.hpp"
#include "engine/query.hpp"
#include "graph/generators.hpp"
#include "io/snapshot.hpp"
#include "util/threading.hpp"
#include "util/timer.hpp"

namespace pb = probgraph;
namespace eng = pb::engine;

namespace {

/// Machine-readable mirror of the printed rows (table6's report shape).
struct JsonReport {
  bool enabled = false;
  std::string file;  // empty = stdout
  std::vector<std::pair<std::string, double>> rows;  // name -> us

  void add(const std::string& name, double us) {
    if (enabled) rows.emplace_back(name, us);
  }

  void emit(const std::string& snapshot, pb::VertexId n) const {
    if (!enabled) return;
    std::FILE* out = file.empty() ? stdout : std::fopen(file.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for the JSON report\n", file.c_str());
      return;
    }
    std::fprintf(out,
                 "{\n  \"context\": {\n    \"snapshot\": \"%s\",\n"
                 "    \"num_vertices\": %u\n  },\n  \"benchmarks\": [\n",
                 snapshot.c_str(), n);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(out, "    {\"name\": \"%s\", \"us_per_query\": %.4f}%s\n",
                   rows[i].first.c_str(), rows[i].second,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (!file.empty()) std::fclose(out);
  }
};

/// Deterministic edge batches that are almost surely absent from the kron
/// graph (random pairs in a 4096-vertex graph of ~16 avg degree), so an
/// insert batch does real sketch-patch work and the paired delete batch
/// restores the edge set for the next round.
std::vector<pb::Edge> make_batch(std::size_t count, pb::VertexId n,
                                 std::uint64_t salt) {
  std::vector<pb::Edge> edges;
  edges.reserve(count);
  std::uint64_t x = 0x9e3779b97f4a7c15ull ^ salt;
  while (edges.size() < count) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const auto u = static_cast<pb::VertexId>((x >> 33) % n);
    const auto v = static_cast<pb::VertexId>((x >> 13) % n);
    if (u != v) edges.push_back({u, v});
  }
  return edges;
}

double percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

/// Run `count` pair estimates through a pinned reader, sampling each
/// query's latency. This is exactly the live serve_session hot path minus
/// the protocol parse/format.
std::vector<double> sample_pinned_queries(eng::LiveEngine& live,
                                          const eng::Query& query, int count) {
  eng::LiveEngine::Reader reader(live);
  std::vector<double> us;
  us.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    pb::util::Timer t;
    {
      eng::LiveEngine::Reader::Pin pin(reader);
      (void)pin.engine().run(query);
    }
    us.push_back(t.seconds() * 1e6);
  }
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport json;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json.enabled = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json.enabled = true;
      json.file = arg.substr(7);
    }
  }

  // The reseal path writes sibling .genN files and unlinks them as
  // generations retire, so the base snapshot lives in the temp dir.
  const std::string path =
      (std::filesystem::temp_directory_path() / "table8_live.tmp.pgs").string();
  pb::util::set_threads(1);  // reseals and queries race; keep kernels serial
  const pb::CsrGraph g = pb::gen::kronecker(12, 8.0, 7);
  {
    const pb::ProbGraph pg(g, pb::ProbGraphConfig{});
    pb::io::save_snapshot(path, pg);
  }

  eng::LiveEngine live(path);
  const pb::VertexId n = live.current_engine_unsynchronized().graph().num_vertices();
  std::printf("snapshot: %s — n=%u, serving as generation %llu\n", path.c_str(), n,
              static_cast<unsigned long long>(live.generation()));

  const eng::Query pair_query =
      eng::PairEstimate{eng::EstimateKind::kIntersection, {{0, 1}, {2, 3}}, false};

  // --- Pin overhead: the same query with and without the epoch protocol.
  constexpr int kPinIters = 20000;
  double direct_us, pinned_us;
  {
    eng::Engine& e = const_cast<eng::Engine&>(live.current_engine_unsynchronized());
    pb::util::Timer t;
    for (int i = 0; i < kPinIters; ++i) (void)e.run(pair_query);
    direct_us = t.seconds() / kPinIters * 1e6;
  }
  {
    eng::LiveEngine::Reader reader(live);
    pb::util::Timer t;
    for (int i = 0; i < kPinIters; ++i) {
      eng::LiveEngine::Reader::Pin pin(reader);
      (void)pin.engine().run(pair_query);
    }
    pinned_us = t.seconds() / kPinIters * 1e6;
  }
  json.add("pair_direct", direct_us);
  json.add("pair_pinned", pinned_us);

  std::printf("\n--- query hot path: generation pin overhead ---\n");
  std::printf("pair, straight at the Engine      %10.3f us/query\n", direct_us);
  std::printf("pair, through Reader::Pin         %10.3f us/query | pin delta %+.3f us\n",
              pinned_us, pinned_us - direct_us);

  // --- Reseal latency by batch size: insert B, seal; delete B, seal back.
  std::printf("\n--- reseal latency (stage + apply + save + map + swap + drain) ---\n");
  std::uint64_t salt = 1;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{64}, std::size_t{1024}}) {
    constexpr int kRounds = 4;
    double total_s = 0.0;
    pb::VertexId patched = 0;
    for (int r = 0; r < kRounds; ++r) {
      const std::vector<pb::Edge> edges = make_batch(batch, n, salt++);
      live.stage(/*tombstone=*/false, edges);
      pb::util::Timer t;
      const eng::LiveEngine::SealResult in = live.seal();
      total_s += t.seconds();
      patched += in.stats.vertices_patched;
      live.stage(/*tombstone=*/true, edges);
      pb::util::Timer t2;
      (void)live.seal();
      total_s += t2.seconds();
    }
    const double ms = total_s / (2 * kRounds) * 1e3;
    json.add("reseal_batch_" + std::to_string(batch), ms * 1e3);
    std::printf("batch of %4zu edges               %10.2f ms/reseal | ~%u vertices patched/insert\n",
                batch, ms, patched / kRounds);
  }

  // --- Query latency while a writer loops reseals, vs quiescent.
  constexpr int kSampled = 4000;
  std::vector<double> quiet = sample_pinned_queries(live, pair_query, kSampled);

  std::atomic<bool> stop{false};
  std::atomic<int> reseals{0};
  std::thread writer([&] {
    std::uint64_t wsalt = 0xbeef;
    while (!stop.load()) {
      const std::vector<pb::Edge> edges = make_batch(64, n, wsalt++);
      live.stage(false, edges);
      if (live.seal().sealed) reseals.fetch_add(1);
      live.stage(true, edges);
      if (live.seal().sealed) reseals.fetch_add(1);
    }
  });
  std::vector<double> busy = sample_pinned_queries(live, pair_query, kSampled);
  stop.store(true);
  writer.join();

  const double quiet_p50 = percentile(quiet, 0.50), quiet_p99 = percentile(quiet, 0.99);
  const double busy_p50 = percentile(busy, 0.50), busy_p99 = percentile(busy, 0.99);
  json.add("pair_quiescent_p50", quiet_p50);
  json.add("pair_quiescent_p99", quiet_p99);
  json.add("pair_during_reseal_p50", busy_p50);
  json.add("pair_during_reseal_p99", busy_p99);

  std::printf("\n--- query latency during reseals (%d swaps raced %d queries) ---\n",
              reseals.load(), kSampled);
  std::printf("quiescent        p50 %10.3f us | p99 %10.3f us\n", quiet_p50, quiet_p99);
  std::printf("during reseals   p50 %10.3f us | p99 %10.3f us\n", busy_p50, busy_p99);
  std::printf("Readers never block on the writer's apply/save/load; the p99 gap is\n"
              "the swap itself (seq_cst fences + first touches of the new mapping).\n"
              "Final generation: %llu.\n",
              static_cast<unsigned long long>(live.generation()));

  json.emit(path, n);

  std::error_code ec;
  std::filesystem::remove(path, ec);
  return 0;
}
