// Chemical database screening (paper §III-A: "screening and generating
// overviews of chemical databases (by computing clusters of related
// molecules)" and the drug-design use case).
//
// Vertices are molecules; edges connect molecules sharing a structural
// fingerprint feature. Screening = for a query molecule, rank the database
// by neighborhood similarity. ProbGraph answers top-k similarity queries
// from sketches without touching the full adjacency lists.
//
//   $ ./example_chemical_similarity
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algorithms/vertex_similarity.hpp"
#include "core/prob_graph.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

using namespace probgraph;

namespace {

struct Hit {
  VertexId molecule;
  double score;
};

template <typename ScoreFn>
std::vector<Hit> top_k(const CsrGraph& g, VertexId query, std::size_t k, ScoreFn&& score) {
  std::vector<Hit> hits;
  hits.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == query) continue;
    hits.push_back({v, score(query, v)});
  }
  std::partial_sort(hits.begin(), hits.begin() + static_cast<std::ptrdiff_t>(k), hits.end(),
                    [](const Hit& a, const Hit& b) { return a.score > b.score; });
  hits.resize(k);
  return hits;
}

}  // namespace

int main() {
  // A molecule-feature co-occurrence graph: lattice-like with rewiring,
  // the same regime as the paper's chemistry graphs (ch-SiO, ch-Si10H16).
  const CsrGraph g = gen::watts_strogatz(20000, 24, 0.1, 21);
  std::printf("chemical database: %u molecules, %llu feature-sharing pairs\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));

  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kKHash;  // k-hash signatures: the classic MinHash
                                  // fingerprint used in chemical retrieval [59]
  cfg.minhash_k = 24;
  const ProbGraph pg(g, cfg);
  std::printf("MinHash fingerprints: k=%u per molecule, relative memory %.2f\n\n",
              pg.minhash_k(), pg.relative_memory());

  const VertexId query = 4242;
  constexpr std::size_t kTop = 8;

  util::Timer exact_timer;
  const auto exact_hits = top_k(g, query, kTop, [&](VertexId a, VertexId b) {
    return algo::similarity_exact(g, a, b, algo::SimilarityMeasure::kJaccard);
  });
  const double exact_seconds = exact_timer.seconds();

  util::Timer pg_timer;
  const auto pg_hits = top_k(g, query, kTop, [&](VertexId a, VertexId b) {
    return pg.est_jaccard(a, b);
  });
  const double pg_seconds = pg_timer.seconds();

  std::printf("top-%zu most similar molecules to #%u (Jaccard over fingerprints):\n", kTop,
              query);
  std::printf("  %-28s %-28s\n", "exact scan", "ProbGraph scan");
  for (std::size_t i = 0; i < kTop; ++i) {
    std::printf("  #%-8u score %.3f        #%-8u score %.3f\n", exact_hits[i].molecule,
                exact_hits[i].score, pg_hits[i].molecule, pg_hits[i].score);
  }

  // Recall of the sketch-based screen against the exact top-k.
  std::size_t recovered = 0;
  for (const Hit& ph : pg_hits) {
    for (const Hit& eh : exact_hits) {
      if (ph.molecule == eh.molecule) {
        ++recovered;
        break;
      }
    }
  }
  std::printf("\nexact scan: %.4fs; ProbGraph scan: %.4fs (%.1fx); top-%zu recall: %zu/%zu\n",
              exact_seconds, pg_seconds, exact_seconds / pg_seconds, kTop, recovered, kTop);
  return 0;
}
