// Community detection on a social network (paper §III-A: "discovering
// communities by computing the clustering coefficient" and the
// Jarvis–Patrick clustering of Listing 4).
//
// We plant a community structure (dense cliques wired together by sparse
// random edges), then recover it with Jarvis–Patrick clustering, comparing
// the exact pipeline against the ProbGraph-accelerated one, and report
// triangle-based cohesion statistics for the discovered communities.
//
//   $ ./example_community_detection
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "algorithms/clustering.hpp"
#include "algorithms/clustering_coefficient.hpp"
#include "algorithms/triangle_count.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace probgraph;

namespace {

/// `communities` cliques of `size` members plus sparse random bridges.
CsrGraph planted_communities(VertexId communities, VertexId size, int bridges,
                             std::uint64_t seed) {
  std::vector<Edge> edges;
  for (VertexId c = 0; c < communities; ++c) {
    const VertexId base = c * size;
    for (VertexId i = 0; i < size; ++i) {
      for (VertexId j = i + 1; j < size; ++j) edges.emplace_back(base + i, base + j);
    }
  }
  util::Xoshiro256 rng(seed);
  const VertexId n = communities * size;
  for (int b = 0; b < bridges; ++b) {
    edges.emplace_back(static_cast<VertexId>(rng.bounded(n)),
                       static_cast<VertexId>(rng.bounded(n)));
  }
  return GraphBuilder::from_edges(std::move(edges), n);
}

std::size_t large_clusters(const algo::ClusteringResult& result) {
  std::map<VertexId, std::size_t> sizes;
  for (const VertexId label : result.labels) ++sizes[label];
  return static_cast<std::size_t>(
      std::count_if(sizes.begin(), sizes.end(), [](auto& kv) { return kv.second >= 3; }));
}

}  // namespace

int main() {
  // Dense communities: sketch intersections beat merge when neighborhoods
  // are large (Table IV), so size the communities accordingly.
  constexpr VertexId kCommunities = 64, kSize = 96;
  const CsrGraph g = planted_communities(kCommunities, kSize, 3000, 11);
  std::printf("social network: n=%u, m=%llu, %u planted communities of %u members\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              kCommunities, kSize);

  // Bridge edges connect strangers (few common neighbors); intra-community
  // edges share ~kSize-2 neighbors. Threshold on Common Neighbors, placed
  // well above the sketch noise floor and well below kSize-2.
  const double tau = 30.0;

  util::Timer exact_timer;
  const auto exact =
      algo::jarvis_patrick_exact(g, algo::SimilarityMeasure::kCommonNeighbors, tau);
  const double exact_seconds = exact_timer.seconds();

  ProbGraphConfig config;
  config.kind = SketchKind::kBloomFilter;
  config.storage_budget = 0.25;
  config.bf_hashes = 1;  // low b keeps false-positive inflation small (§VIII-G)
  const ProbGraph pg(g, config);
  util::Timer pg_timer;
  const auto approx =
      algo::jarvis_patrick_probgraph(pg, algo::SimilarityMeasure::kCommonNeighbors, tau);
  const double pg_seconds = pg_timer.seconds();

  std::printf("\nJarvis-Patrick (Common Neighbors, tau=%.0f):\n", tau);
  std::printf("  exact:     %zu communities of size>=3 (%zu clusters incl. singletons), %.4fs\n",
              large_clusters(exact), exact.num_clusters, exact_seconds);
  std::printf("  probgraph: %zu communities of size>=3 (%zu clusters incl. singletons), %.4fs  (%.1fx)\n",
              large_clusters(approx), approx.num_clusters, pg_seconds,
              exact_seconds / pg_seconds);

  // §III-A: network cohesion of one recovered community vs the whole graph.
  const auto tc = static_cast<double>(algo::triangle_count_exact(g));
  std::printf("\ncohesion of the whole graph: %.2e\n", algo::cohesion(tc, g.num_vertices()));
  const double community_tc = kSize * (kSize - 1) * (kSize - 2) / 6.0;  // one clique
  std::printf("cohesion of one planted community: %.2f (a perfect clique has 1.0)\n",
              algo::cohesion(community_tc, kSize));
  std::printf("global clustering coefficient: %.3f\n",
              algo::global_clustering_coefficient(g, tc));
  return 0;
}
