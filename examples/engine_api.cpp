// Driving the query engine (src/engine/) as a library, without pgtool.
//
// Build sketches over a graph, hand the graph to an Engine, and run typed
// queries against it: a batched PairEstimate with its deviation bound, a
// triangle count with the Theorem-VII.1 bound, top-k link prediction, and
// graph stats. The same Engine also loads .pgs snapshots
// (Engine::from_snapshot) and answers the identical queries zero-copy —
// that path is what `pgtool serve` wraps in a line protocol.
//
// The closing section saves a MULTI-SUBSTRATE .pgs (BF + KMV sketches in
// both orientations — format v2) and routes queries per substrate through
// one zero-copy mapping, the library shape of
// `pgtool build --kinds bf,kmv --orient both` + `serve`.
//
//   $ ./example_engine_api
#include <cstdio>
#include <filesystem>

#include "engine/engine.hpp"
#include "engine/protocol.hpp"
#include "engine/query.hpp"
#include "graph/generators.hpp"
#include "io/snapshot.hpp"

using namespace probgraph;

int main() {
  // A small-world graph with dense neighborhoods (~20K vertices).
  CsrGraph g = gen::watts_strogatz(/*n=*/20000, /*k=*/24, /*beta=*/0.2, /*seed=*/7);
  std::printf("graph: n=%u, m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // One Engine answers every query type; sketches are built lazily with
  // this configuration (MinHash here, so every estimate carries the
  // Props.-IV.2/IV.3 exponential deviation bound).
  ProbGraphConfig config;
  config.kind = SketchKind::kKHash;
  config.storage_budget = 0.25;
  engine::Engine e(std::move(g), config);

  // --- Batched per-pair estimates, with the union deviation bound. ---
  engine::PairEstimate batch;
  batch.kind = engine::EstimateKind::kIntersection;
  batch.pairs = {{1, 2}, {10, 11}, {100, 250}, {4000, 4001}};
  const engine::QueryResult pairs = e.run(batch);
  std::printf("\nbatched |N_u ∩ N_v| estimates (%s sketches, relmem %.2f):\n",
              to_string(pairs.sketch.kind), pairs.sketch.relative_memory);
  for (const engine::PairValue& p : pairs.pairs) {
    std::printf("  est(%u, %u) = %s\n", p.u, p.v,
                engine::format_estimate(p.value).c_str());
  }
  if (pairs.bound) {
    std::printf("  all within ±%s of the truth except with probability <= %s  [%s]\n",
                engine::format_estimate(pairs.bound->t).c_str(),
                engine::format_estimate(pairs.bound->probability).c_str(),
                pairs.bound->name);
  }

  // --- Triangle count: the engine orients + sketches the DAG lazily. ---
  const engine::QueryResult tc = e.run(engine::TriangleCount{});
  const engine::QueryResult tc_exact = e.run(engine::TriangleCount{.exact = true});
  std::printf("\ntriangle count: estimate %.0f vs exact %.0f (%.4fs vs %.4fs)\n",
              tc.value, tc_exact.value, tc.elapsed_seconds, tc_exact.elapsed_seconds);
  if (tc.bound) {
    std::printf("  P(|TC - est| >= %s) <= %s  [%s]\n",
                engine::format_estimate(tc.bound->t).c_str(),
                engine::format_estimate(tc.bound->probability).c_str(), tc.bound->name);
  }

  // --- Top-k link prediction over the same sketches. ---
  const engine::QueryResult lp =
      e.run(engine::LinkPredict{5, algo::SimilarityMeasure::kCommonNeighbors, false});
  std::printf("\ntop-%zu predicted links by common neighbors:\n", lp.pairs.size());
  for (const engine::PairValue& p : lp.pairs) {
    std::printf("  %u -- %u  score %s\n", p.u, p.v,
                engine::format_estimate(p.value).c_str());
  }

  // --- Graph stats never touch the sketches. ---
  const engine::QueryResult stats = e.run(engine::GraphStats{});
  std::printf("\nstats: dmax=%llu, sum d^2 = %.3e, CSR %.2f MB\n",
              static_cast<unsigned long long>(stats.stats->max_degree),
              stats.stats->degree_moment2,
              static_cast<double>(stats.stats->csr_bytes) / 1e6);

  // --- A multi-substrate snapshot: one file, every query class. ---
  // Pack BF and KMV sketches of BOTH the symmetric graph and its
  // degree-oriented DAG, then route per query: tc answers from a DAG
  // substrate, pair from a symmetric one, and Query::sketch (the serve
  // protocol's kind=) picks the sketch family.
  const std::string path =
      (std::filesystem::temp_directory_path() / "engine_api_multi.pgs").string();
  {
    const CsrGraph base = gen::watts_strogatz(4000, 16, 0.2, 7);
    const SketchKind kinds[] = {SketchKind::kBloomFilter, SketchKind::kKmv};
    const io::SubstrateSet set =
        io::build_substrates(base, kinds, /*symmetric=*/true, /*degree_oriented=*/true);
    io::save_snapshot(path, set.substrates);
  }
  engine::Engine served = engine::Engine::from_snapshot(path);
  std::printf("\nmulti-substrate snapshot serves: %s\n",
              io::describe_substrates(served.snapshot_info()->substrates).c_str());
  const double tc_bf = served.run(engine::TriangleCount{}).value;  // BF/dag (primary kind)
  const double tc_kmv =
      served.run(engine::TriangleCount{.sketch = SketchKind::kKmv}).value;  // KMV/dag
  engine::PairEstimate routed;
  routed.kind = engine::EstimateKind::kJaccard;
  routed.pairs = {{1, 2}};
  routed.sketch = SketchKind::kKmv;  // KMV/sym
  const double jac_kmv = served.run(routed).pairs[0].value;
  std::printf("tc via BF/dag = %.0f, via KMV/dag = %.0f; jaccard(1,2) via KMV/sym = %s\n",
              tc_bf, tc_kmv, engine::format_estimate(jac_kmv).c_str());
  std::filesystem::remove(path);
  return 0;
}
