// Link prediction on an evolving collaboration network (paper Listing 5
// and §III: "predicting whether two non-adjacent vertices can become
// connected in the future").
//
// A fraction of the edges is hidden; every candidate pair is scored by a
// vertex-similarity scheme; the top-scored pairs are the predicted future
// links; effectiveness = |E_predict ∩ E_rndm|. We compare exact scoring
// against ProbGraph scoring across similarity measures and representations.
//
//   $ ./example_link_prediction_demo
#include <cstdio>

#include "algorithms/link_prediction.hpp"
#include "graph/generators.hpp"

using namespace probgraph;

int main() {
  // A small-world collaboration graph: cliquish neighborhoods make hidden
  // intra-cluster edges recoverable from shared neighbors.
  const CsrGraph g = gen::watts_strogatz(6000, 12, 0.15, 3);
  std::printf("collaboration network: n=%u, m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  algo::LinkPredictionConfig lp;
  lp.removal_fraction = 0.05;
  lp.seed = 17;

  std::printf("\n%-22s %-10s | %9s %9s %12s\n", "measure", "scorer", "hits", "removed",
              "scoring time");
  for (const auto measure :
       {algo::SimilarityMeasure::kCommonNeighbors, algo::SimilarityMeasure::kJaccard,
        algo::SimilarityMeasure::kAdamicAdar}) {
    lp.measure = measure;

    const auto exact = algo::link_prediction_exact(g, lp);
    std::printf("%-22s %-10s | %9llu %9llu %11.4fs\n", algo::to_string(measure), "exact",
                static_cast<unsigned long long>(exact.hits),
                static_cast<unsigned long long>(exact.num_removed), exact.scoring_seconds);

    for (const auto kind : {SketchKind::kBloomFilter, SketchKind::kOneHash}) {
      ProbGraphConfig pg_cfg;
      pg_cfg.kind = kind;
      pg_cfg.storage_budget = 0.33;
      pg_cfg.bf_hashes = 2;
      const auto approx = algo::link_prediction_probgraph(g, lp, pg_cfg);
      std::printf("%-22s %-10s | %9llu %9llu %11.4fs\n", algo::to_string(measure),
                  kind == SketchKind::kBloomFilter ? "PG(BF)" : "PG(1H)",
                  static_cast<unsigned long long>(approx.hits),
                  static_cast<unsigned long long>(approx.num_removed),
                  approx.scoring_seconds);
    }
  }
  std::printf("\nEffectiveness = hits / removed; ProbGraph scorers should recover a\n"
              "hit count close to exact scoring at a fraction of the scoring cost on\n"
              "large candidate sets.\n");
  return 0;
}
