// Quickstart: the paper's Listing 6 end to end.
//
// Build a graph, create a ProbGraph representation under a 25% storage
// budget, and compare the exact and approximate set-intersection
// cardinality and Jaccard coefficient of two vertices — then run a full
// approximate triangle count.
//
//   $ ./example_quickstart
#include <cstdio>

#include "algorithms/triangle_count.hpp"
#include "core/intersect.hpp"
#include "core/prob_graph.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"
#include "util/timer.hpp"

using namespace probgraph;

int main() {
  // A small-world graph with dense neighborhoods — the regime where
  // sketch-based intersections shine (~20K vertices, ~480K edges).
  const CsrGraph g = gen::watts_strogatz(/*n=*/20000, /*k=*/24, /*beta=*/0.2, /*seed=*/7);
  std::printf("graph: n=%u, m=%llu, max degree=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(g.max_degree()));

  // --- Listing 6: exact vs approximate |N_u ∩ N_v| and Jaccard. ---
  ProbGraphConfig config;
  config.kind = SketchKind::kBloomFilter;  // try kOneHash / kKHash / kKmv too
  config.storage_budget = 0.25;            // 25% extra memory on top of CSR
  config.bf_hashes = 1;                    // the paper's recommended low-b setting
  const ProbGraph pg(g, config);
  std::printf("sketches: %s, B=%llu bits/vertex, relative memory=%.2f, built in %.3fs\n",
              to_string(pg.kind()), static_cast<unsigned long long>(pg.bf_bits()),
              pg.relative_memory(), pg.construction_seconds());

  const VertexId u = 1, v = g.neighbors(1).empty() ? 2 : g.neighbors(1)[0];
  const auto exact_inter =
      static_cast<double>(intersect_size_merge(g.neighbors(u), g.neighbors(v)));
  const double approx_inter = pg.est_intersection(u, v);
  const double exact_jaccard =
      exact_inter / (static_cast<double>(g.degree(u) + g.degree(v)) - exact_inter);
  std::printf("\n|N_%u ∩ N_%u|: exact=%.0f  probgraph=%.1f\n", u, v, exact_inter,
              approx_inter);
  std::printf("Jaccard(%u, %u): exact=%.4f  probgraph=%.4f\n", u, v, exact_jaccard,
              pg.est_jaccard(u, v));

  // --- Approximate triangle counting (Listing 1 with PG estimators). ---
  const CsrGraph dag = degree_orient(g);
  util::Timer exact_timer;
  const auto tc_exact = algo::triangle_count_exact_oriented(dag);
  const double exact_seconds = exact_timer.seconds();

  ProbGraphConfig dag_config = config;
  dag_config.budget_reference_bytes = g.memory_bytes();
  const ProbGraph pg_dag(dag, dag_config);
  util::Timer approx_timer;
  const double tc_approx = algo::triangle_count_probgraph(pg_dag);
  const double approx_seconds = approx_timer.seconds();

  std::printf("\ntriangle count: exact=%llu (%.4fs)  probgraph=%.0f (%.4fs)\n",
              static_cast<unsigned long long>(tc_exact), exact_seconds, tc_approx,
              approx_seconds);
  std::printf("speedup=%.1fx, accuracy=%.1f%%\n", exact_seconds / approx_seconds,
              100.0 * (1.0 - std::abs(tc_approx - static_cast<double>(tc_exact)) /
                                 static_cast<double>(tc_exact)));
  return 0;
}
