// Fuzz target: live::read_delta_log — the .pgd reader that replays
// staged-edit batches (header, per-batch checksums, truncation handling).
//
// Contract under fuzzing: malformed logs throw std::runtime_error; a
// checksum-valid prefix before a truncated tail must parse up to the
// tail. Anything else — crash, unbounded allocation from a hostile
// num_inserts, non-std escape — is a real bug. The declared batch counts
// are bounded by the actual bytes present (read_pairs fails on short
// reads), so resize() on attacker counts is safe only because truncation
// throws first; the fuzzer hammers exactly that edge.
#include <cstdint>
#include <exception>

#include "fuzz_util.hpp"
#include "live/delta.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  probgraph::fuzz::MemFile file(data, size);
  if (!file.valid()) return 0;
  try {
    const auto batches = probgraph::live::read_delta_log(file.path());
    (void)batches.size();
  } catch (const std::exception&) {
    // Rejection is the expected outcome for malformed bytes.
  }
  return 0;
}
