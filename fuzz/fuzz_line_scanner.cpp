// Fuzz target: net::LineScanner — the newline framer every transport
// (blocking LineReader, epoll reactor sessions) shares.
//
// Input encoding: byte 0 picks max_line_bytes (0, tiny, or moderate);
// the rest is the byte stream, fed in chunks whose sizes are derived from
// the stream itself so the fuzzer controls packetization — split frames,
// many-per-read, one byte at a time, and the overlong-resync path across
// feed boundaries are all reachable.
//
// Checked invariants (abort = finding):
//   * never crashes, never throws;
//   * a delivered kLine never exceeds the bound (when bounded);
//   * buffered() never exceeds bound + 1 slack while bounded (the
//     discard path must drop overlong bytes eagerly, not accumulate);
//   * finish() terminates the stream: a second finish() yields kNeedMore.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "net/line_scanner.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 1) return 0;

  std::size_t max_line = 0;
  switch (data[0] % 3) {
    case 0: max_line = 0; break;  // unbounded
    case 1: max_line = 8; break;  // tiny: overlong path is easy to hit
    case 2: max_line = 64; break;
  }
  probgraph::net::LineScanner scanner(max_line);

  const char* bytes = reinterpret_cast<const char*>(data) + 1;
  std::size_t left = size - 1;
  std::string line;
  std::size_t chunk_seed = data[0];
  while (left > 0) {
    // Chunk size 1..32, stirred by the data so packetization varies.
    chunk_seed = chunk_seed * 1103515245 + 12345;
    std::size_t chunk = 1 + (chunk_seed >> 16) % 32;
    if (chunk > left) chunk = left;
    scanner.feed(std::string_view(bytes, chunk));
    bytes += chunk;
    left -= chunk;

    while (true) {
      const auto status = scanner.next(line);
      if (status == probgraph::net::LineScanner::Next::kNeedMore) break;
      if (status == probgraph::net::LineScanner::Next::kLine && max_line != 0 &&
          line.size() > max_line) {
        std::abort();  // bound violated: a frame longer than the limit leaked
      }
    }
    if (max_line != 0 && scanner.buffered() > max_line + 1) {
      std::abort();  // overlong bytes are accumulating instead of being dropped
    }
  }

  (void)scanner.finish(line);
  if (scanner.finish(line) != probgraph::net::LineScanner::Next::kNeedMore) {
    std::abort();  // finish() must be terminal
  }
  return 0;
}
