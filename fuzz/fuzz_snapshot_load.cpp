// Fuzz target: io::load_snapshot — the .pgs reader that mmaps untrusted
// bytes and validates magic, version, endian tag, section table, substrate
// directory, and the whole-file checksum before serving anything.
//
// Contract under fuzzing: every malformed input is rejected with a
// std::exception (the loader's documented failure mode). Any other escape
// — a crash, an uncaught non-std exception, ASan/UBSan findings on the
// mapped bytes — is a real parser bug. Seeds: the checked-in golden v1/v2
// snapshots, so the fuzzer starts from checksum-valid files and mutates
// inward past the early header checks.
#include <cstdint>
#include <exception>

#include "fuzz_util.hpp"
#include "io/snapshot.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  probgraph::fuzz::MemFile file(data, size);
  if (!file.valid()) return 0;
  try {
    const auto snap = probgraph::io::load_snapshot(file.path());
    (void)snap.info();  // loaded: touch the parsed metadata
  } catch (const std::exception&) {
    // Rejection is the expected outcome for malformed bytes.
  }
  return 0;
}
