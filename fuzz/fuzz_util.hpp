// Shared plumbing for the fuzz harnesses: feed an in-memory byte buffer
// to a PATH-taking parser without touching the filesystem. memfd_create
// gives an anonymous file; /proc/self/fd/<n> is a real openable path to
// it, so load_snapshot/read_delta_log exercise their genuine open/mmap
// code paths at fuzzing speed (no disk I/O, no tmpfile cleanup).
#pragma once

#include <sys/mman.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace probgraph::fuzz {

/// An anonymous in-memory file holding `data`; path() is openable until
/// destruction. Invalid (empty path) if memfd_create fails — skip the run.
class MemFile {
 public:
  MemFile(const std::uint8_t* data, std::size_t size) {
    fd_ = ::memfd_create("probgraph-fuzz", 0);
    if (fd_ < 0) return;
    const auto* p = reinterpret_cast<const char*>(data);
    std::size_t off = 0;
    while (off < size) {
      const ssize_t n = ::write(fd_, p + off, size - off);
      if (n <= 0) {
        ::close(fd_);
        fd_ = -1;
        return;
      }
      off += static_cast<std::size_t>(n);
    }
    path_ = "/proc/self/fd/" + std::to_string(fd_);
  }
  ~MemFile() {
    if (fd_ >= 0) ::close(fd_);
  }
  MemFile(const MemFile&) = delete;
  MemFile& operator=(const MemFile&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace probgraph::fuzz
