// File-replay driver for toolchains without libFuzzer (the GCC-only
// container, plain CI smoke): each argv is read whole and fed to
// LLVMFuzzerTestOneInput once. Exit 0 iff every input was processed
// without crashing — corpus regression mode, not exploration.
#ifdef PROBGRAPH_FUZZ_STANDALONE

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    ++ran;
  }
  std::fprintf(stderr, "replayed %d input(s) clean\n", ran);
  return 0;
}

#endif  // PROBGRAPH_FUZZ_STANDALONE
