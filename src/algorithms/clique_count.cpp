#include "algorithms/clique_count.hpp"

#include <algorithm>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/backends.hpp"
#include "core/estimators.hpp"
#include "core/intersect.hpp"
#include "core/kernels/kernels.hpp"
#include "graph/orientation.hpp"
#include "util/bitvector.hpp"

namespace probgraph::algo {

std::uint64_t four_clique_count_exact_oriented(const CsrGraph& dag) {
  const VertexId n = dag.num_vertices();
  std::uint64_t total = 0;
#pragma omp parallel reduction(+ : total)
  {
    std::vector<VertexId> c3;  // per-thread scratch for C3 = N+u ∩ N+v
#pragma omp for schedule(dynamic, 32)
    for (std::int64_t u = 0; u < static_cast<std::int64_t>(n); ++u) {
      const auto nu = dag.neighbors(static_cast<VertexId>(u));
      for (const VertexId v : nu) {
        c3.clear();
        intersect_into(nu, dag.neighbors(v), c3);
        for (const VertexId w : c3) {
          total += intersect_size_merge(dag.neighbors(w), {c3.data(), c3.size()});
        }
      }
    }
  }
  return total;
}

std::uint64_t four_clique_count_exact(const CsrGraph& g) {
  return four_clique_count_exact_oriented(degree_orient(g));
}

namespace {

template <typename Backend>
double four_clique_bf(const CsrGraph& dag, const Backend be) {
  const VertexId n = dag.num_vertices();
  double total = 0.0;
#pragma omp parallel reduction(+ : total)
  {
    std::vector<VertexId> c3;
    std::vector<std::uint64_t> uv;      // B_u AND B_v, materialized once per (u, v)
    std::vector<std::uint64_t> counts;  // batched and3 popcounts over C3
#pragma omp for schedule(dynamic, 32)
    for (std::int64_t u = 0; u < static_cast<std::int64_t>(n); ++u) {
      const auto bf_u = be.bf(static_cast<VertexId>(u));
      const auto wu = be.words(static_cast<VertexId>(u));
      for (const VertexId v : dag.neighbors(static_cast<VertexId>(u))) {
        // Approximate C3 membership list: elements of N+v inside BF(N+u).
        c3.clear();
        for (const VertexId x : dag.neighbors(v)) {
          if (bf_u.contains(x)) c3.push_back(x);
        }
        if (c3.empty()) continue;
        // popcount(B_u & B_v & B_w) over all w ∈ C3 as one batched sweep:
        // the (u, v) AND is hoisted out of the w loop — it was recomputed
        // |C3| times inside and3_popcount — and the candidate filters
        // stream against the hot uv row. Integer popcounts: bit-identical.
        const auto wv = be.words(v);
        uv.resize(wu.size());
        for (std::size_t i = 0; i < wu.size(); ++i) uv[i] = wu[i] & wv[i];
        counts.resize(c3.size());
        kernels::and_popcount_batch(uv, be.arena, be.words_per_vertex, c3,
                                    counts.data());
        for (const std::uint64_t ones : counts) {
          total += est::bf_intersection_and(ones, be.bits, be.hashes);
        }
      }
    }
  }
  return total;
}

template <typename Backend>
double four_clique_mh(const CsrGraph& dag, const Backend be) {
  const VertexId n = dag.num_vertices();
  double total = 0.0;
#pragma omp parallel reduction(+ : total)
  {
    std::vector<VertexId> c3s;
#pragma omp for schedule(dynamic, 32)
    for (std::int64_t u = 0; u < static_cast<std::int64_t>(n); ++u) {
      for (const VertexId v : dag.neighbors(static_cast<VertexId>(u))) {
        const double est_c3 = be.sampled_intersection(static_cast<VertexId>(u), v, c3s);
        if (c3s.empty() || est_c3 <= 0.0) continue;
        // Inverse sampling fraction; C3s can exceed the estimate on small
        // sets, in which case the sample is effectively exhaustive.
        const double inv_p =
            std::max(1.0, est_c3 / static_cast<double>(c3s.size()));
        double inner = 0.0;
        for (const VertexId w : c3s) {
          inner += static_cast<double>(
              intersect_size_merge(dag.neighbors(w), {c3s.data(), c3s.size()}));
        }
        total += inv_p * inv_p * inner;
      }
    }
  }
  return total;
}

}  // namespace

double four_clique_count_probgraph(const ProbGraph& pg) {
  return pg.visit_backend([&](const auto& be) -> double {
    using Backend = std::decay_t<decltype(be)>;
    if constexpr (Backend::kKind == SketchKind::kBloomFilter) {
      return four_clique_bf(pg.graph(), be);
    } else if constexpr (Backend::kKind == SketchKind::kKHash ||
                         Backend::kKind == SketchKind::kOneHash) {
      return four_clique_mh(pg.graph(), be);
    } else {
      throw std::invalid_argument(
          "four_clique_count_probgraph: KMV sketches cannot enumerate C3 "
          "(store hash values, not elements); use BF or MinHash");
    }
  });
}

}  // namespace probgraph::algo
