#include "algorithms/clique_count.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/estimators.hpp"
#include "core/intersect.hpp"
#include "graph/orientation.hpp"
#include "util/bitvector.hpp"

namespace probgraph::algo {

std::uint64_t four_clique_count_exact_oriented(const CsrGraph& dag) {
  const VertexId n = dag.num_vertices();
  std::uint64_t total = 0;
#pragma omp parallel reduction(+ : total)
  {
    std::vector<VertexId> c3;  // per-thread scratch for C3 = N+u ∩ N+v
#pragma omp for schedule(dynamic, 32)
    for (std::int64_t u = 0; u < static_cast<std::int64_t>(n); ++u) {
      const auto nu = dag.neighbors(static_cast<VertexId>(u));
      for (const VertexId v : nu) {
        c3.clear();
        intersect_into(nu, dag.neighbors(v), c3);
        for (const VertexId w : c3) {
          total += intersect_size_merge(dag.neighbors(w), {c3.data(), c3.size()});
        }
      }
    }
  }
  return total;
}

std::uint64_t four_clique_count_exact(const CsrGraph& g) {
  return four_clique_count_exact_oriented(degree_orient(g));
}

namespace {

double four_clique_bf(const ProbGraph& pg) {
  const CsrGraph& dag = pg.graph();
  const VertexId n = dag.num_vertices();
  const std::uint64_t bits = pg.bf_bits();
  const std::uint32_t b = pg.config().bf_hashes;
  double total = 0.0;
#pragma omp parallel reduction(+ : total)
  {
    std::vector<VertexId> c3;
#pragma omp for schedule(dynamic, 32)
    for (std::int64_t u = 0; u < static_cast<std::int64_t>(n); ++u) {
      const auto bf_u = pg.bf(static_cast<VertexId>(u));
      const auto wu = pg.bf_words(static_cast<VertexId>(u));
      for (const VertexId v : dag.neighbors(static_cast<VertexId>(u))) {
        // Approximate C3 membership list: elements of N+v inside BF(N+u).
        c3.clear();
        for (const VertexId x : dag.neighbors(v)) {
          if (bf_u.contains(x)) c3.push_back(x);
        }
        if (c3.empty()) continue;
        const auto wv = pg.bf_words(v);
        for (const VertexId w : c3) {
          const std::uint64_t ones = util::and3_popcount(wu, wv, pg.bf_words(w));
          total += est::bf_intersection_and(ones, bits, b);
        }
      }
    }
  }
  return total;
}

/// Extract the enumerable sampled common elements of two MinHash sketches
/// plus the Jaccard estimate. Returns the estimate of |N+u ∩ N+v|.
double sampled_common(const ProbGraph& pg, VertexId u, VertexId v,
                      std::vector<VertexId>& out) {
  const CsrGraph& g = pg.graph();
  out.clear();
  double j = 0.0;
  if (pg.kind() == SketchKind::kOneHash) {
    const auto a = pg.onehash_entries(u);
    const auto b = pg.onehash_entries(v);
    OneHashSketch::intersect_elements(a, b, pg.minhash_k(), out);
    j = OneHashSketch::jaccard_from_spans(a, b, pg.minhash_k());
  } else {  // kKHash
    const auto a = pg.khash_signature(u);
    const auto bsig = pg.khash_signature(v);
    std::uint32_t matches = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != kEmptySlot && a[i] == bsig[i]) {
        ++matches;
        out.push_back(static_cast<VertexId>(a[i]));
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    j = static_cast<double>(matches) / static_cast<double>(pg.minhash_k());
  }
  std::sort(out.begin(), out.end());
  return est::mh_intersection(j, static_cast<double>(g.degree(u)),
                              static_cast<double>(g.degree(v)));
}

double four_clique_mh(const ProbGraph& pg) {
  const CsrGraph& dag = pg.graph();
  const VertexId n = dag.num_vertices();
  double total = 0.0;
#pragma omp parallel reduction(+ : total)
  {
    std::vector<VertexId> c3s;
#pragma omp for schedule(dynamic, 32)
    for (std::int64_t u = 0; u < static_cast<std::int64_t>(n); ++u) {
      for (const VertexId v : dag.neighbors(static_cast<VertexId>(u))) {
        const double est_c3 = sampled_common(pg, static_cast<VertexId>(u), v, c3s);
        if (c3s.empty() || est_c3 <= 0.0) continue;
        // Inverse sampling fraction; C3s can exceed the estimate on small
        // sets, in which case the sample is effectively exhaustive.
        const double inv_p =
            std::max(1.0, est_c3 / static_cast<double>(c3s.size()));
        double inner = 0.0;
        for (const VertexId w : c3s) {
          inner += static_cast<double>(
              intersect_size_merge(dag.neighbors(w), {c3s.data(), c3s.size()}));
        }
        total += inv_p * inv_p * inner;
      }
    }
  }
  return total;
}

}  // namespace

double four_clique_count_probgraph(const ProbGraph& pg) {
  switch (pg.kind()) {
    case SketchKind::kBloomFilter:
      return four_clique_bf(pg);
    case SketchKind::kKHash:
    case SketchKind::kOneHash:
      return four_clique_mh(pg);
    case SketchKind::kKmv:
      throw std::invalid_argument(
          "four_clique_count_probgraph: KMV sketches cannot enumerate C3 "
          "(store hash values, not elements); use BF or MinHash");
  }
  return 0.0;
}

}  // namespace probgraph::algo
