// 4-Clique Counting (paper Listing 2).
//
// The reformulated algorithm exposes |X ∩ Y| twice per DAG arc (u, v):
//   C3 = N+_u ∩ N+_v                 // the 3-cliques through (u, v)
//   for w ∈ C3: ck += |N+_w ∩ C3|    // extensions to 4-cliques
//
// Exact: materialize C3 by merge, then merge again per w.
//
// ProbGraph (BF): C3's *membership list* is recovered by querying each
// element of N+_v against BF(N+_u) (false positives possible — BF
// semantics); the inner cardinality is estimated by the chained bitwise
// AND  B_u ∧ B_v ∧ B_w  fed through Eq. (2), which estimates
// |N+_u ∩ N+_v ∩ N+_w| = |N+_w ∩ C3| directly.
//
// ProbGraph (MinHash): C3s = M(N+_u) ∩ M(N+_v) is an enumerable *sample*
// of C3 at effective rate p̂ = |C3s| / est|C3| (est via Eq. (5)). Both the
// w-loop and the inner intersection are subsampled at rate p̂, so the
// contribution of each arc is rescaled by 1/p̂²:
//   ck += (1/p̂²) · Σ_{w∈C3s} |N+_w ∩ C3s|.
// KMV sketches store hash values only, so C3 cannot be enumerated; the
// KMV kind is rejected at runtime.
#pragma once

#include <cstdint>

#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"

namespace probgraph::algo {

/// Exact 4-clique count of an undirected graph (DAG built internally).
[[nodiscard]] std::uint64_t four_clique_count_exact(const CsrGraph& g);

/// Exact 4-clique count over a prebuilt degree-oriented DAG.
[[nodiscard]] std::uint64_t four_clique_count_exact_oriented(const CsrGraph& dag);

/// ProbGraph 4-clique estimate. `pg` must be built over the degree-oriented
/// DAG of the input graph. Throws std::invalid_argument for SketchKind::kKmv.
[[nodiscard]] double four_clique_count_probgraph(const ProbGraph& pg);

}  // namespace probgraph::algo
