#include "algorithms/clustering.hpp"

#include <cstdint>

#include "algorithms/connected_components.hpp"
#include "algorithms/similarity_kernels.hpp"

namespace probgraph::algo {

namespace {

/// Shared driver: evaluate `sim(v, u)` over every undirected edge (v < u),
/// mark keepers in parallel, then union sequentially.
template <typename SimFn>
ClusteringResult cluster_with(const CsrGraph& g, double tau, SimFn&& sim) {
  const VertexId n = g.num_vertices();
  const auto offsets = g.offsets();
  const auto adj = g.adjacency();

  // keep[i] flags the i-th directed edge slot (only v<u slots are used).
  std::vector<std::uint8_t> keep(adj.size(), 0);
  std::uint64_t kept = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : kept)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    for (EdgeId i = offsets[v]; i < offsets[v + 1]; ++i) {
      const VertexId u = adj[i];
      if (u <= static_cast<VertexId>(v)) continue;
      if (sim(static_cast<VertexId>(v), u) > tau) {
        keep[i] = 1;
        ++kept;
      }
    }
  }

  UnionFind uf(n);
  for (VertexId v = 0; v < n; ++v) {
    for (EdgeId i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (keep[i]) uf.unite(v, adj[i]);
    }
  }
  ClusteringResult result;
  result.num_clusters = uf.num_sets();
  result.kept_edges = kept;
  result.labels = uf.labels();
  return result;
}

}  // namespace

ClusteringResult jarvis_patrick_exact(const CsrGraph& g, SimilarityMeasure measure,
                                      double tau) {
  return cluster_with(g, tau, [&](VertexId v, VertexId u) {
    return similarity_exact(g, v, u, measure);
  });
}

ClusteringResult jarvis_patrick_probgraph(const ProbGraph& pg, SimilarityMeasure measure,
                                          double tau) {
  // One dispatch for the whole edge sweep: the per-edge sim() call chain is
  // monomorphic in the concrete backend.
  return pg.visit_backend([&](const auto& be) {
    return cluster_with(pg.graph(), tau, [&](VertexId v, VertexId u) {
      return similarity_backend(be, v, u, measure);
    });
  });
}

}  // namespace probgraph::algo
