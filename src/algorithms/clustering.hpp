// Jarvis–Patrick clustering (paper Listing 4).
//
// For every edge (v, u) ∈ E, the edge is kept iff the similarity of v and
// u exceeds a user threshold τ ("if |Nv ∩ Nu| > τ: C ∪= {e}"); clusters are
// the connected components of (V, C). The evaluation instantiates the
// similarity with Common Neighbors (Listing 4), Jaccard (Fig. 7) and
// Overlap (Fig. 4); we support every Listing-3 measure.
//
// The edge filter is the parallel, |X∩Y|-dominated phase the paper
// accelerates; component extraction is a cheap sequential union-find pass.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/vertex_similarity.hpp"
#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"

namespace probgraph::algo {

struct ClusteringResult {
  std::vector<VertexId> labels;  ///< per-vertex compact cluster label
  std::size_t num_clusters = 0;  ///< #components of (V, C), singletons included
  std::uint64_t kept_edges = 0;  ///< |C|
};

/// Exact Jarvis–Patrick clustering with similarity `measure` and threshold
/// `tau` (kept iff similarity > tau).
[[nodiscard]] ClusteringResult jarvis_patrick_exact(const CsrGraph& g,
                                                    SimilarityMeasure measure, double tau);

/// ProbGraph Jarvis–Patrick clustering: the similarity in the edge filter
/// is replaced by the sketch estimate. `pg` must be built over `g`.
[[nodiscard]] ClusteringResult jarvis_patrick_probgraph(const ProbGraph& pg,
                                                        SimilarityMeasure measure,
                                                        double tau);

}  // namespace probgraph::algo
