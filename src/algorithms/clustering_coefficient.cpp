#include "algorithms/clustering_coefficient.hpp"

#include <algorithm>

#include "core/backends.hpp"
#include "core/intersect.hpp"

namespace probgraph::algo {

double cohesion(double tc, std::uint64_t num_vertices) noexcept {
  if (num_vertices < 3) return 0.0;
  const double n = static_cast<double>(num_vertices);
  const double triples = n * (n - 1.0) * (n - 2.0) / 6.0;
  return tc / triples;
}

double global_clustering_coefficient(const CsrGraph& g, double tc) noexcept {
  double wedges = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double d = static_cast<double>(g.degree(v));
    wedges += d * (d - 1.0) / 2.0;
  }
  return wedges == 0.0 ? 0.0 : 3.0 * tc / wedges;
}

std::vector<double> local_clustering_exact(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<double> cc(n, 0.0);
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    const auto nv = g.neighbors(static_cast<VertexId>(v));
    const double d = static_cast<double>(nv.size());
    if (d < 2.0) continue;
    std::uint64_t closed = 0;  // counts each triangle through v twice
    for (const VertexId u : nv) {
      closed += intersect_size_merge(nv, g.neighbors(u));
    }
    cc[v] = static_cast<double>(closed) / (d * (d - 1.0));
  }
  return cc;
}

namespace {

template <typename Backend>
std::vector<double> local_clustering_loop(const CsrGraph& g, const Backend be) {
  const VertexId n = g.num_vertices();
  std::vector<double> cc(n, 0.0);
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    const auto nv = g.neighbors(static_cast<VertexId>(v));
    const double d = static_cast<double>(nv.size());
    if (d < 2.0) continue;
    double closed = 0.0;
    for (const VertexId u : nv) {
      closed += be.est_intersection(static_cast<VertexId>(v), u);
    }
    cc[v] = std::clamp(closed / (d * (d - 1.0)), 0.0, 1.0);
  }
  return cc;
}

}  // namespace

std::vector<double> local_clustering_probgraph(const ProbGraph& pg) {
  return pg.visit_backend(
      [&](const auto& be) { return local_clustering_loop(pg.graph(), be); });
}

}  // namespace probgraph::algo
