// Triangle-derived network statistics (paper §III-A, "Real-World
// Applications"): network cohesion TC[S]/C(|S|,3), the global clustering
// coefficient 3·TC/#wedges, and per-vertex local clustering coefficients.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"

namespace probgraph::algo {

/// Network cohesion of the whole graph: TC / C(n, 3) (§III-A). `tc` is a
/// triangle count obtained from any of the TC routines.
[[nodiscard]] double cohesion(double tc, std::uint64_t num_vertices) noexcept;

/// Global clustering coefficient 3·TC / #wedges, where
/// #wedges = Σ_v d_v(d_v − 1)/2.
[[nodiscard]] double global_clustering_coefficient(const CsrGraph& g, double tc) noexcept;

/// Exact per-vertex local clustering coefficients:
/// cc(v) = #triangles through v / C(d_v, 2). O(Σ_v d_v · d̄) work.
[[nodiscard]] std::vector<double> local_clustering_exact(const CsrGraph& g);

/// ProbGraph local clustering coefficients: triangles through v are
/// estimated as ½·Σ_{u∈N_v} est|N_v ∩ N_u|. `pg` must be built over `g`.
[[nodiscard]] std::vector<double> local_clustering_probgraph(const ProbGraph& pg);

}  // namespace probgraph::algo
