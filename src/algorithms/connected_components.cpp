#include "algorithms/connected_components.hpp"

#include <numeric>

namespace probgraph::algo {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), VertexId{0});
}

VertexId UnionFind::find(VertexId x) noexcept {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(VertexId a, VertexId b) noexcept {
  VertexId ra = find(a);
  VertexId rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

std::vector<VertexId> UnionFind::labels() {
  std::vector<VertexId> label(parent_.size(), 0);
  std::vector<VertexId> remap(parent_.size(), static_cast<VertexId>(-1));
  VertexId next = 0;
  for (VertexId v = 0; v < parent_.size(); ++v) {
    const VertexId root = find(v);
    if (remap[root] == static_cast<VertexId>(-1)) remap[root] = next++;
    label[v] = remap[root];
  }
  return label;
}

std::vector<VertexId> connected_components(const CsrGraph& g, std::size_t* num_components) {
  UnionFind uf(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u > v) uf.unite(v, u);
    }
  }
  if (num_components != nullptr) *num_components = uf.num_sets();
  return uf.labels();
}

}  // namespace probgraph::algo
