// Union-find and connected components: the substrate of Jarvis–Patrick
// cluster extraction (the kept-edge set C of Listing 4 induces clusters as
// the connected components of (V, C)).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/types.hpp"

namespace probgraph::algo {

/// Union-find with union-by-size and path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set (with path halving).
  [[nodiscard]] VertexId find(VertexId x) noexcept;

  /// Merge the sets of a and b; returns true if they were distinct.
  bool unite(VertexId a, VertexId b) noexcept;

  /// Number of disjoint sets.
  [[nodiscard]] std::size_t num_sets() const noexcept { return num_sets_; }

  /// Compact labels in [0, num_sets): vertices in the same set share a label.
  [[nodiscard]] std::vector<VertexId> labels();

 private:
  std::vector<VertexId> parent_;
  std::vector<VertexId> size_;
  std::size_t num_sets_;
};

/// Connected components of an undirected CSR graph; returns per-vertex
/// compact labels and writes the component count to `num_components`.
[[nodiscard]] std::vector<VertexId> connected_components(const CsrGraph& g,
                                                         std::size_t* num_components = nullptr);

}  // namespace probgraph::algo
