#include "algorithms/kclique.hpp"

#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/backends.hpp"
#include "core/estimators.hpp"
#include "core/intersect.hpp"
#include "graph/orientation.hpp"
#include "util/bitvector.hpp"

namespace probgraph::algo {

namespace {

/// Exact recursion: `cand` holds the common out-neighbors of all chosen
/// vertices; `remaining` counts how many vertices are still to be chosen
/// before the closing cardinality is added.
std::uint64_t exact_rec(const CsrGraph& dag, std::span<const VertexId> cand,
                        unsigned remaining, std::vector<std::vector<VertexId>>& scratch,
                        unsigned depth) {
  if (remaining == 0) return cand.size();
  std::uint64_t total = 0;
  auto& next = scratch[depth];
  for (const VertexId u : cand) {
    next.clear();
    intersect_into(cand, dag.neighbors(u), next);
    // Pruning: completing the clique needs `remaining - 1` further choices
    // plus a non-empty closing candidate set.
    if (next.size() < remaining) continue;
    total += exact_rec(dag, next, remaining - 1, scratch, depth + 1);
  }
  return total;
}

}  // namespace

std::uint64_t kclique_count_exact_oriented(const CsrGraph& dag, unsigned k) {
  if (k < 3) throw std::invalid_argument("kclique_count: k must be at least 3");
  const VertexId n = dag.num_vertices();
  std::uint64_t total = 0;
#pragma omp parallel reduction(+ : total)
  {
    std::vector<std::vector<VertexId>> scratch(k);
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      // v is v1; k-2 more vertices to choose before the closing count.
      total += exact_rec(dag, dag.neighbors(static_cast<VertexId>(v)), k - 2, scratch, 0);
    }
  }
  return total;
}

std::uint64_t kclique_count_exact(const CsrGraph& g, unsigned k) {
  return kclique_count_exact_oriented(degree_orient(g), k);
}

namespace {

/// BF recursion: `cand` is the approximate common-neighbor list (membership
/// filtered), `and_words` the running bitwise AND of the chosen filters.
/// Monomorphic in the bloom backend; the closing estimate is always the AND
/// estimator (the chained popcount *is* the AND statistic — Limit/OR have
/// no chained analogue).
template <typename Backend>
double bf_rec(const Backend& be, std::span<const VertexId> cand,
              std::span<const std::uint64_t> and_words, unsigned remaining,
              std::vector<std::vector<VertexId>>& cand_scratch,
              std::vector<std::vector<std::uint64_t>>& word_scratch, unsigned depth) {
  if (remaining == 0) {
    return est::bf_intersection_and(util::popcount(and_words), be.bits, be.hashes);
  }
  double total = 0.0;
  auto& next_cand = cand_scratch[depth];
  auto& next_words = word_scratch[depth];
  for (const VertexId u : cand) {
    const auto wu = be.words(u);
    // Fold u's filter into the running AND.
    next_words.assign(and_words.begin(), and_words.end());
    for (std::size_t i = 0; i < next_words.size(); ++i) next_words[i] &= wu[i];
    // Approximate candidate refinement via membership in the chain so far:
    // x stays iff its bits are set in the AND (i.e. x "in" every chosen BF).
    const BloomFilterView chain(next_words, be.bits, be.hashes, be.family);
    next_cand.clear();
    for (const VertexId x : cand) {
      if (x != u && chain.contains(x)) next_cand.push_back(x);
    }
    if (next_cand.empty() && remaining > 1) continue;
    total += bf_rec(be, next_cand, next_words, remaining - 1, cand_scratch,
                    word_scratch, depth + 1);
  }
  return total;
}

template <typename Backend>
double kclique_bf(const Backend be, const CsrGraph& dag, unsigned k) {
  const VertexId n = dag.num_vertices();
  double total = 0.0;
#pragma omp parallel reduction(+ : total)
  {
    std::vector<std::vector<VertexId>> cand_scratch(k);
    std::vector<std::vector<std::uint64_t>> word_scratch(k);
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      const auto nv = dag.neighbors(static_cast<VertexId>(v));
      if (nv.empty()) continue;
      total += bf_rec(be, nv, be.words(static_cast<VertexId>(v)), k - 2, cand_scratch,
                      word_scratch, 0);
    }
  }
  return total;
}

}  // namespace

double kclique_count_probgraph(const ProbGraph& pg, unsigned k) {
  if (k < 3) throw std::invalid_argument("kclique_count: k must be at least 3");
  return pg.visit_backend([&](const auto& be) -> double {
    using Backend = std::decay_t<decltype(be)>;
    if constexpr (Backend::kKind == SketchKind::kBloomFilter) {
      return kclique_bf(be, pg.graph(), k);
    } else {
      throw std::invalid_argument(
          "kclique_count_probgraph: only Bloom-filter ProbGraphs support chained "
          "intersection for general k (use four_clique_count_probgraph for MinHash)");
    }
  });
}

}  // namespace probgraph::algo
