// General k-clique counting: the natural extension of Listing 2.
//
// The paper introduces "higher-order Clique Counting, a problem important
// for dense subgraph discovery [68]" and presents the 4-clique case; the
// same reformulation exposes |X ∩ Y| for arbitrary k (the kClist-style
// recursion of Danisch et al. [68] over the degree-oriented DAG):
//
//   choose v1 < v2 < ... < v_{k-1} in rank order, each adjacent to all
//   previous; add |N+(v1) ∩ ... ∩ N+(v_{k-1})| — the number of ways to
//   extend the chosen (k-1)-clique to a k-clique.
//
// k = 3 degenerates to Listing 1 (TC) and k = 4 to Listing 2.
//
// The ProbGraph variant replaces both the candidate filtering (BF
// membership queries) and the final cardinality (chained bitwise AND of
// all chosen filters, fed through Eq. (2)) — the same construction as the
// 4-clique BF scheme, applied recursively. BF only: MinHash/KMV cannot
// chain intersections beyond one level without enumeration.
#pragma once

#include <cstdint>

#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"

namespace probgraph::algo {

/// Exact k-clique count over a prebuilt degree-oriented DAG. k >= 3.
[[nodiscard]] std::uint64_t kclique_count_exact_oriented(const CsrGraph& dag, unsigned k);

/// Exact k-clique count of an undirected graph (DAG built internally).
[[nodiscard]] std::uint64_t kclique_count_exact(const CsrGraph& g, unsigned k);

/// ProbGraph k-clique estimate; `pg` must be a Bloom-filter ProbGraph built
/// over the degree-oriented DAG. Throws std::invalid_argument otherwise.
[[nodiscard]] double kclique_count_probgraph(const ProbGraph& pg, unsigned k);

}  // namespace probgraph::algo
