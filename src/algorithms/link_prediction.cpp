#include "algorithms/link_prediction.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "algorithms/similarity_kernels.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace probgraph::algo {

namespace {

std::uint64_t pack_pair(VertexId a, VertexId b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

struct Split {
  CsrGraph sparse;
  std::unordered_set<std::uint64_t> removed;  // E_rndm as packed pairs
};

/// E_sparse = E \ E_rndm with E_rndm a uniform sample of the edges.
Split split_graph(const CsrGraph& g, double removal_fraction, std::uint64_t seed) {
  std::vector<Edge> all_edges;
  all_edges.reserve(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u > v) all_edges.emplace_back(v, u);
    }
  }
  util::Xoshiro256 rng(seed);
  // Partial Fisher–Yates: move the sampled edges to the back.
  const auto remove_count = static_cast<std::size_t>(
      removal_fraction * static_cast<double>(all_edges.size()));
  Split split;
  for (std::size_t i = 0; i < remove_count; ++i) {
    const std::size_t j = i + rng.bounded(all_edges.size() - i);
    std::swap(all_edges[i], all_edges[j]);
    split.removed.insert(pack_pair(all_edges[i].first, all_edges[i].second));
  }
  std::vector<Edge> kept(all_edges.begin() + static_cast<std::ptrdiff_t>(remove_count),
                         all_edges.end());
  split.sparse = GraphBuilder::from_edges(std::move(kept), g.num_vertices());
  return split;
}

struct ScoredPair {
  std::uint64_t pair;
  double score;
};

/// Enumerate distance-2 non-adjacent candidate pairs of `sparse` and score
/// them with `score_fn`. Returns the result assembled per Listing 5.
template <typename ScoreFn>
LinkPredictionResult run(const CsrGraph& sparse,
                         const std::unordered_set<std::uint64_t>& removed,
                         ScoreFn&& score_fn) {
  LinkPredictionResult result;
  result.num_removed = removed.size();
  if (removed.empty()) return result;

  // Candidate generation: wedges a - v - b with {a,b} not an edge.
  std::unordered_set<std::uint64_t> seen;
  std::vector<ScoredPair> scored;
  util::Timer timer;
  for (VertexId v = 0; v < sparse.num_vertices(); ++v) {
    const auto nv = sparse.neighbors(v);
    for (std::size_t i = 0; i < nv.size(); ++i) {
      for (std::size_t j = i + 1; j < nv.size(); ++j) {
        const VertexId a = nv[i], b = nv[j];
        const std::uint64_t key = pack_pair(a, b);
        if (!seen.insert(key).second) continue;
        if (sparse.has_edge(a, b)) continue;
        scored.push_back({key, score_fn(a, b)});
      }
    }
  }
  result.scoring_seconds = timer.seconds();
  result.num_candidates = scored.size();

  // E_predict: the |E_rndm| top-scored pairs.
  const std::size_t top = std::min<std::size_t>(removed.size(), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(top),
                    scored.end(),
                    [](const ScoredPair& x, const ScoredPair& y) { return x.score > y.score; });
  for (std::size_t i = 0; i < top; ++i) {
    if (removed.contains(scored[i].pair)) ++result.hits;
  }
  result.effectiveness =
      static_cast<double>(result.hits) / static_cast<double>(removed.size());
  return result;
}

}  // namespace

LinkPredictionResult link_prediction_exact(const CsrGraph& g,
                                           const LinkPredictionConfig& config) {
  const Split split = split_graph(g, config.removal_fraction, config.seed);
  return run(split.sparse, split.removed, [&](VertexId a, VertexId b) {
    return similarity_exact(split.sparse, a, b, config.measure);
  });
}

LinkPredictionResult link_prediction_probgraph(const CsrGraph& g,
                                               const LinkPredictionConfig& config,
                                               const ProbGraphConfig& pg_config) {
  const Split split = split_graph(g, config.removal_fraction, config.seed);
  const ProbGraph pg(split.sparse, pg_config);
  // Resolve the sketch backend once for the whole candidate-scoring sweep.
  return pg.visit_backend([&](const auto& be) {
    return run(split.sparse, split.removed, [&](VertexId a, VertexId b) {
      return similarity_backend(be, a, b, config.measure);
    });
  });
}

}  // namespace probgraph::algo
