#include "algorithms/link_prediction.hpp"

#include <algorithm>
#include <span>
#include <unordered_set>
#include <vector>

#include "algorithms/similarity_kernels.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace probgraph::algo {

namespace {

std::uint64_t pack_pair(VertexId a, VertexId b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

struct Split {
  CsrGraph sparse;
  std::unordered_set<std::uint64_t> removed;  // E_rndm as packed pairs
};

/// E_sparse = E \ E_rndm with E_rndm a uniform sample of the edges.
Split split_graph(const CsrGraph& g, double removal_fraction, std::uint64_t seed) {
  std::vector<Edge> all_edges;
  all_edges.reserve(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u > v) all_edges.emplace_back(v, u);
    }
  }
  util::Xoshiro256 rng(seed);
  // Partial Fisher–Yates: move the sampled edges to the back.
  const auto remove_count = static_cast<std::size_t>(
      removal_fraction * static_cast<double>(all_edges.size()));
  Split split;
  for (std::size_t i = 0; i < remove_count; ++i) {
    const std::size_t j = i + rng.bounded(all_edges.size() - i);
    std::swap(all_edges[i], all_edges[j]);
    split.removed.insert(pack_pair(all_edges[i].first, all_edges[i].second));
  }
  std::vector<Edge> kept(all_edges.begin() + static_cast<std::ptrdiff_t>(remove_count),
                         all_edges.end());
  split.sparse = GraphBuilder::from_edges(std::move(kept), g.num_vertices());
  return split;
}

struct ScoredPair {
  std::uint64_t pair;
  double score;
};

/// First element of N_a ∩ N_b (sorted merge); `g.num_vertices()` if none.
VertexId first_common_neighbor(const CsrGraph& g, VertexId a, VertexId b) noexcept {
  const auto na = g.neighbors(a);
  const auto nb = g.neighbors(b);
  std::size_t i = 0, j = 0;
  while (i < na.size() && j < nb.size()) {
    if (na[i] < nb[j]) ++i;
    else if (nb[j] < na[i]) ++j;
    else return na[i];
  }
  return g.num_vertices();
}

/// Enumerate the distance-2 non-adjacent pairs of `g` — wedges a - v - b
/// with {a, b} not an edge, each pair visited once (a < b since
/// neighborhoods are sorted) — and invoke `fn(a, b)` on each. The shared
/// candidate sweep of the Listing-5 harness and the serving-shaped top-k
/// variant.
///
/// Dedup strategy (a pair is reachable through every common neighbor):
///   * kStructuralDedup = false — an O(#candidates) hash set. Right when
///     the caller materializes a score per candidate anyway (Listing 5).
///   * kStructuralDedup = true — emit only from the pair's SMALLEST common
///     neighbor: O(1) extra memory at the cost of a first-common-neighbor
///     merge per wedge. Right for bounded-answer serving sweeps (top-k).
template <bool kStructuralDedup, typename Fn>
void for_each_distance2_candidate(const CsrGraph& g, Fn&& fn) {
  std::unordered_set<std::uint64_t> seen;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nv = g.neighbors(v);
    for (std::size_t i = 0; i < nv.size(); ++i) {
      for (std::size_t j = i + 1; j < nv.size(); ++j) {
        const VertexId a = nv[i], b = nv[j];
        if constexpr (kStructuralDedup) {
          if (first_common_neighbor(g, a, b) != v) continue;  // v is common, so one exists
        } else {
          if (!seen.insert(pack_pair(a, b)).second) continue;
        }
        if (g.has_edge(a, b)) continue;
        fn(a, b);
      }
    }
  }
}

/// Score every distance-2 candidate pair of `sparse` with `score_fn` and
/// assemble the result per Listing 5.
template <typename ScoreFn>
LinkPredictionResult run(const CsrGraph& sparse,
                         const std::unordered_set<std::uint64_t>& removed,
                         ScoreFn&& score_fn) {
  LinkPredictionResult result;
  result.num_removed = removed.size();
  if (removed.empty()) return result;

  std::vector<ScoredPair> scored;
  util::Timer timer;
  for_each_distance2_candidate<false>(sparse, [&](VertexId a, VertexId b) {
    scored.push_back({pack_pair(a, b), score_fn(a, b)});
  });
  result.scoring_seconds = timer.seconds();
  result.num_candidates = scored.size();

  // E_predict: the |E_rndm| top-scored pairs.
  const std::size_t top = std::min<std::size_t>(removed.size(), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(top),
                    scored.end(),
                    [](const ScoredPair& x, const ScoredPair& y) { return x.score > y.score; });
  for (std::size_t i = 0; i < top; ++i) {
    if (removed.contains(scored[i].pair)) ++result.hits;
  }
  result.effectiveness =
      static_cast<double>(result.hits) / static_cast<double>(removed.size());
  return result;
}

}  // namespace

LinkPredictionResult link_prediction_exact(const CsrGraph& g,
                                           const LinkPredictionConfig& config) {
  const Split split = split_graph(g, config.removal_fraction, config.seed);
  return run(split.sparse, split.removed, [&](VertexId a, VertexId b) {
    return similarity_exact(split.sparse, a, b, config.measure);
  });
}

LinkPredictionResult link_prediction_probgraph(const CsrGraph& g,
                                               const LinkPredictionConfig& config,
                                               const ProbGraphConfig& pg_config) {
  const Split split = split_graph(g, config.removal_fraction, config.seed);
  const ProbGraph pg(split.sparse, pg_config);
  // Resolve the sketch backend once for the whole candidate-scoring sweep.
  return pg.visit_backend([&](const auto& be) {
    return run(split.sparse, split.removed, [&](VertexId a, VertexId b) {
      return similarity_backend(be, a, b, config.measure);
    });
  });
}

namespace {

/// Serving-shaped sweep: enumerate the distance-2 candidates with the
/// structural (memory-free) dedup, score them, and keep only the top_k
/// best in a bounded heap — the candidate space is O(Σ_v d_v²), so
/// materializing scores or a dedup set would dwarf the k-element answer on
/// large graphs; this path's memory is O(top_k) + one wedge run. The
/// heap's front is the worst kept link, ties broken by (u, v) so the
/// output is deterministic regardless of enumeration order.
///
/// Scoring is batched: the enumeration emits candidates in runs sharing
/// the left vertex `a` (a fixed wedge center and left endpoint yields all
/// its right endpoints consecutively), and each run is scored through one
/// `batch_score(a, bs, out)` call so sketch backends can use their
/// cache-blocked batched estimators. Runs are flushed in enumeration
/// order and scores consumed in candidate order — the heap sees the exact
/// sequence the old per-pair loop produced.
template <typename BatchScoreFn>
std::vector<ScoredLink> top_k_links(const CsrGraph& g, std::size_t top_k,
                                    BatchScoreFn&& batch_score) {
  const auto better = [](const ScoredLink& x, const ScoredLink& y) {
    if (x.score != y.score) return x.score > y.score;
    if (x.u != y.u) return x.u < y.u;
    return x.v < y.v;
  };
  std::vector<ScoredLink> heap;  // max-heap by "worseness": front = worst kept
  if (top_k == 0) return heap;
  // top_k is a caller-supplied request value (CLI/protocol); don't commit
  // O(top_k) memory before a single candidate justifies it.
  heap.reserve(std::min<std::size_t>(top_k, 1024));
  const auto consider = [&](const ScoredLink& link) {
    if (heap.size() < top_k) {
      heap.push_back(link);
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(link, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = link;
      std::push_heap(heap.begin(), heap.end(), better);
    }
  };
  VertexId run_a = 0;
  std::vector<VertexId> run_bs;
  std::vector<double> run_scores;
  const auto flush = [&] {
    if (run_bs.empty()) return;
    run_scores.resize(run_bs.size());
    batch_score(run_a, {run_bs.data(), run_bs.size()}, run_scores.data());
    for (std::size_t i = 0; i < run_bs.size(); ++i) {
      consider({run_a, run_bs[i], run_scores[i]});
    }
    run_bs.clear();
  };
  for_each_distance2_candidate<true>(g, [&](VertexId a, VertexId b) {
    if (!run_bs.empty() && a != run_a) flush();
    run_a = a;
    run_bs.push_back(b);
  });
  flush();
  std::sort_heap(heap.begin(), heap.end(), better);  // best-first output
  return heap;
}

}  // namespace

std::vector<ScoredLink> top_k_links_exact(const CsrGraph& g, SimilarityMeasure measure,
                                          std::size_t top_k) {
  return top_k_links(g, top_k,
                     [&](VertexId a, std::span<const VertexId> bs, double* out) {
                       for (std::size_t i = 0; i < bs.size(); ++i) {
                         out[i] = similarity_exact(g, a, bs[i], measure);
                       }
                     });
}

std::vector<ScoredLink> top_k_links_probgraph(const ProbGraph& pg,
                                              SimilarityMeasure measure,
                                              std::size_t top_k) {
  return pg.visit_backend([&](const auto& be) {
    return top_k_links(pg.graph(), top_k,
                       [&](VertexId a, std::span<const VertexId> bs, double* out) {
                         similarity_backend_batch(be, a, bs, measure, out);
                       });
  });
}

}  // namespace probgraph::algo
