// Link-prediction testing harness (paper Listing 5).
//
// Starting from a graph with known links, remove a random subset E_rndm
// (the links to predict), score every candidate non-edge of the sparsified
// graph with a vertex-similarity scheme S, pick the |E_rndm| top-scored
// pairs E_predict, and report the effectiveness ef = |E_predict ∩ E_rndm|.
//
// Candidates are the distance-2 non-adjacent pairs of the sparsified graph
// (pairs with no common neighbor score 0 under every Listing-3 measure, so
// restricting to distance 2 loses nothing and keeps the pair space near
// Σ_v d_v² instead of n²).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "algorithms/vertex_similarity.hpp"
#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"

namespace probgraph::algo {

struct LinkPredictionConfig {
  double removal_fraction = 0.1;  ///< fraction of E removed into E_rndm
  SimilarityMeasure measure = SimilarityMeasure::kCommonNeighbors;
  std::uint64_t seed = 42;
};

struct LinkPredictionResult {
  std::uint64_t num_removed = 0;    ///< |E_rndm|
  std::uint64_t num_candidates = 0; ///< scored pair count
  std::uint64_t hits = 0;           ///< ef = |E_predict ∩ E_rndm|
  double effectiveness = 0.0;       ///< hits / |E_rndm| (precision@|E_rndm|)
  double scoring_seconds = 0.0;     ///< wall time of the scoring loop only
};

/// Run the Listing-5 experiment with exact similarity scores.
[[nodiscard]] LinkPredictionResult link_prediction_exact(const CsrGraph& g,
                                                         const LinkPredictionConfig& config);

/// Run the experiment with ProbGraph scores: sketches are built over the
/// *sparsified* graph and score candidate pairs in place of the exact
/// similarity. `pg_config.kind` etc. select the representation.
[[nodiscard]] LinkPredictionResult link_prediction_probgraph(
    const CsrGraph& g, const LinkPredictionConfig& config,
    const ProbGraphConfig& pg_config);

/// A candidate link (u < v) with its similarity score.
struct ScoredLink {
  VertexId u = 0;
  VertexId v = 0;
  double score = 0.0;
};

/// Serving-shaped link prediction (the engine's LinkPredict query): score
/// every distance-2 non-adjacent pair of `g` under `measure` and return
/// the `top_k` highest-scored candidates, ordered by (score desc, u asc,
/// v asc) — deterministic ties for reproducible serving transcripts.
[[nodiscard]] std::vector<ScoredLink> top_k_links_exact(const CsrGraph& g,
                                                        SimilarityMeasure measure,
                                                        std::size_t top_k);

/// Sketch-scored variant: `pg` must be built over `g` itself (full
/// neighborhoods). The backend dispatch is hoisted once for the sweep.
[[nodiscard]] std::vector<ScoredLink> top_k_links_probgraph(const ProbGraph& pg,
                                                            SimilarityMeasure measure,
                                                            std::size_t top_k);

}  // namespace probgraph::algo
