// Backend-templated similarity kernels (paper Listing 3).
//
// similarity_backend(be, u, v, m) is the per-pair scoring primitive the
// similarity-driven algorithms (Jarvis–Patrick clustering, link prediction)
// instantiate once per concrete sketch backend: the callers resolve the
// sketch dispatch a single time via ProbGraph::visit_backend and then score
// millions of pairs through a monomorphic call chain.
//
// The intersection-reducible measures go straight to the backend's derived
// estimators. The weighted measures (Adamic-Adar, Resource Allocation) need
// the *elements* of N_u ∩ N_v, which each representation approximates
// differently: BF filters the smaller exact neighborhood through the other
// side's membership query; MinHash enumerates the sampled common elements
// and rescales by the inverse sampling fraction; KMV stores hash values
// only, so the weighted measures degrade to 0 (documented limitation).
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "algorithms/vertex_similarity.hpp"
#include "core/backends.hpp"

namespace probgraph::algo {

namespace detail {

/// Σ over (approximate) common neighbors w of weight(w), specialized per
/// backend family via if-constexpr on the backend's sketch kind.
template <typename Backend, typename WeightFn>
double weighted_common_backend(const Backend& be, VertexId u, VertexId v,
                               WeightFn&& weight) {
  const CsrGraph& g = *be.graph;
  if constexpr (Backend::kKind == SketchKind::kBloomFilter) {
    // Iterate the smaller exact neighborhood, test against the other BF.
    const VertexId small = g.degree(u) <= g.degree(v) ? u : v;
    const VertexId large = small == u ? v : u;
    const auto bf_large = be.bf(large);
    double acc = 0.0;
    for (const VertexId w : g.neighbors(small)) {
      if (bf_large.contains(w)) acc += weight(w);
    }
    return acc;
  } else if constexpr (Backend::kKind == SketchKind::kKHash ||
                       Backend::kKind == SketchKind::kOneHash) {
    // Reused across the millions of pairs a clustering/link-prediction
    // sweep scores on each OpenMP thread.
    static thread_local std::vector<VertexId> common;
    const double est_inter = be.sampled_intersection(u, v, common);
    if (common.empty()) return 0.0;
    const double inv_p = std::max(1.0, est_inter / static_cast<double>(common.size()));
    double acc = 0.0;
    for (const VertexId w : common) acc += weight(w);
    return inv_p * acc;
  } else {
    // KMV cannot enumerate intersection elements (it stores hash values,
    // not set members); the weighted measures carry no signal.
    return 0.0;
  }
}

}  // namespace detail

/// Per-pair similarity score under a concrete sketch backend. The measure
/// switch is cheap and perfectly predicted (one measure per algorithm run);
/// the expensive dispatch — sketch kind × estimator — is already resolved
/// in the backend type.
template <typename Backend>
double similarity_backend(const Backend& be, VertexId u, VertexId v,
                          SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kJaccard:
      return be.est_jaccard(u, v);
    case SimilarityMeasure::kOverlap:
      return be.est_overlap(u, v);
    case SimilarityMeasure::kCommonNeighbors:
      return be.est_common_neighbors(u, v);
    case SimilarityMeasure::kTotalNeighbors:
      return be.est_total_neighbors(u, v);
    case SimilarityMeasure::kAdamicAdar:
      return detail::weighted_common_backend(be, u, v, [&](VertexId w) {
        const double d = be.degree(w);
        return d > 1.0 ? 1.0 / std::log(d) : 0.0;  // log 1 = 0: no signal
      });
    case SimilarityMeasure::kResourceAllocation:
      return detail::weighted_common_backend(be, u, v, [&](VertexId w) {
        const double d = be.degree(w);
        return d > 0.0 ? 1.0 / d : 0.0;
      });
  }
  return 0.0;
}

/// Batched similarity scoring: out[i] = similarity_backend(be, u, cands[i],
/// measure), bit-identical to the per-pair loop. The intersection-reducible
/// measures run one est_intersection_batch sweep (cache-blocked on the
/// Bloom backends) and derive the measure in place through the backend's
/// *_from_intersection helpers — the same code path the per-pair est_*
/// methods evaluate. Two measure families cannot reduce to the raw batch
/// and fall back to the pair loop: native-Jaccard sketches (MinHash scores
/// Jaccard directly, not via est_intersection) and the weighted measures
/// (need intersection *elements*, not a cardinality).
template <typename Backend>
void similarity_backend_batch(const Backend& be, VertexId u,
                              std::span<const VertexId> cands,
                              SimilarityMeasure measure, double* out) {
  const auto derive_from_raw = [&](auto&& helper) {
    be.est_intersection_batch(u, cands, out);
    for (std::size_t i = 0; i < cands.size(); ++i) {
      out[i] = helper(u, cands[i], out[i]);
    }
  };
  switch (measure) {
    case SimilarityMeasure::kJaccard:
      if constexpr (Backend::kNativeJaccard) {
        for (std::size_t i = 0; i < cands.size(); ++i) {
          out[i] = be.est_jaccard(u, cands[i]);
        }
      } else {
        derive_from_raw([&](VertexId a, VertexId b, double raw) {
          return be.jaccard_from_intersection(a, b, raw);
        });
      }
      return;
    case SimilarityMeasure::kOverlap:
      derive_from_raw([&](VertexId a, VertexId b, double raw) {
        return be.overlap_from_intersection(a, b, raw);
      });
      return;
    case SimilarityMeasure::kCommonNeighbors:
      be.est_intersection_batch(u, cands, out);
      return;
    case SimilarityMeasure::kTotalNeighbors:
      derive_from_raw([&](VertexId a, VertexId b, double raw) {
        return be.total_from_intersection(a, b, raw);
      });
      return;
    case SimilarityMeasure::kAdamicAdar:
    case SimilarityMeasure::kResourceAllocation:
      for (std::size_t i = 0; i < cands.size(); ++i) {
        out[i] = similarity_backend(be, u, cands[i], measure);
      }
      return;
  }
}

}  // namespace probgraph::algo
