#include "algorithms/triangle_count.hpp"

#include "core/backends.hpp"
#include "core/intersect.hpp"
#include "graph/orientation.hpp"

namespace probgraph::algo {

namespace {

template <typename Kernel>
std::uint64_t tc_oriented_loop(const CsrGraph& dag, Kernel&& kernel) {
  const VertexId n = dag.num_vertices();
  std::uint64_t total = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : total)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    const auto nv = dag.neighbors(static_cast<VertexId>(v));
    std::uint64_t local = 0;
    for (const VertexId u : nv) {
      local += kernel(nv, dag.neighbors(u));
    }
    total += local;
  }
  return total;
}

}  // namespace

std::uint64_t triangle_count_exact_oriented(const CsrGraph& dag, ExactIntersect kernel) {
  switch (kernel) {
    case ExactIntersect::kMerge:
      return tc_oriented_loop(dag, [](auto a, auto b) { return intersect_size_merge(a, b); });
    case ExactIntersect::kGallop:
      return tc_oriented_loop(dag, [](auto a, auto b) { return intersect_size_gallop(a, b); });
    case ExactIntersect::kAdaptive:
      return tc_oriented_loop(dag,
                              [](auto a, auto b) { return intersect_size_adaptive(a, b); });
  }
  return 0;
}

std::uint64_t triangle_count_exact(const CsrGraph& g, ExactIntersect kernel) {
  return triangle_count_exact_oriented(degree_orient(g), kernel);
}

namespace {

/// Sketch-estimated node-iterator sum, monomorphized per backend: the inner
/// loop is a direct call into the concrete estimator, no sketch dispatch.
template <typename Backend>
double tc_estimate_loop(const CsrGraph& g, const Backend be, TcMode mode) {
  const VertexId n = g.num_vertices();
  double total = 0.0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : total)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    double local = 0.0;
    for (const VertexId u : g.neighbors(static_cast<VertexId>(v))) {
      if (mode == TcMode::kFull && u <= static_cast<VertexId>(v)) continue;
      local += be.est_intersection(static_cast<VertexId>(v), u);
    }
    total += local;
  }
  return mode == TcMode::kFull ? total / 3.0 : total;
}

}  // namespace

double triangle_count_probgraph(const ProbGraph& pg, TcMode mode) {
  return pg.visit_backend(
      [&](const auto& be) { return tc_estimate_loop(pg.graph(), be, mode); });
}

}  // namespace probgraph::algo
