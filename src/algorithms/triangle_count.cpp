#include "algorithms/triangle_count.hpp"

#include <algorithm>
#include <vector>

#include "core/backends.hpp"
#include "core/intersect.hpp"
#include "graph/orientation.hpp"

namespace probgraph::algo {

namespace {

template <typename Kernel>
std::uint64_t tc_oriented_loop(const CsrGraph& dag, Kernel&& kernel) {
  const VertexId n = dag.num_vertices();
  std::uint64_t total = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : total)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    const auto nv = dag.neighbors(static_cast<VertexId>(v));
    std::uint64_t local = 0;
    for (const VertexId u : nv) {
      local += kernel(nv, dag.neighbors(u));
    }
    total += local;
  }
  return total;
}

}  // namespace

std::uint64_t triangle_count_exact_oriented(const CsrGraph& dag, ExactIntersect kernel) {
  switch (kernel) {
    case ExactIntersect::kMerge:
      return tc_oriented_loop(dag, [](auto a, auto b) { return intersect_size_merge(a, b); });
    case ExactIntersect::kGallop:
      return tc_oriented_loop(dag, [](auto a, auto b) { return intersect_size_gallop(a, b); });
    case ExactIntersect::kAdaptive:
      return tc_oriented_loop(dag,
                              [](auto a, auto b) { return intersect_size_adaptive(a, b); });
  }
  return 0;
}

std::uint64_t triangle_count_exact(const CsrGraph& g, ExactIntersect kernel) {
  return triangle_count_exact_oriented(degree_orient(g), kernel);
}

namespace {

/// Sketch-estimated node-iterator sum, monomorphized per backend: each
/// vertex's qualifying neighbors are scored through one batched
/// est_intersection sweep (candidate rows stream while v's sketch stays
/// hot), then accumulated in neighbor order — bit-identical to the old
/// per-pair loop.
template <typename Backend>
double tc_estimate_loop(const CsrGraph& g, const Backend be, TcMode mode) {
  const VertexId n = g.num_vertices();
  double total = 0.0;
#pragma omp parallel reduction(+ : total)
  {
    std::vector<double> scores;  // per-thread batch output
#pragma omp for schedule(dynamic, 64)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      auto cands = g.neighbors(static_cast<VertexId>(v));
      if (mode == TcMode::kFull) {
        // Sorted neighborhoods: the u > v half is the suffix past v.
        const auto first = std::upper_bound(cands.begin(), cands.end(),
                                            static_cast<VertexId>(v));
        cands = cands.subspan(static_cast<std::size_t>(first - cands.begin()));
      }
      if (cands.empty()) continue;
      scores.resize(cands.size());
      be.est_intersection_batch(static_cast<VertexId>(v), cands, scores.data());
      double local = 0.0;
      for (const double s : scores) local += s;
      total += local;
    }
  }
  return mode == TcMode::kFull ? total / 3.0 : total;
}

}  // namespace

double triangle_count_probgraph(const ProbGraph& pg, TcMode mode) {
  return pg.visit_backend(
      [&](const auto& be) { return tc_estimate_loop(pg.graph(), be, mode); });
}

}  // namespace probgraph::algo
