// Triangle Counting (paper Listing 1 and §VII).
//
// Exact: the node-iterator algorithm over the degree-oriented DAG — for
// every arc (v, u) of the DAG, add |N+_v ∩ N+_u|. This is the tuned
// GAP/GMS-style baseline the paper compares against, with both the merge
// and galloping intersection kernels.
//
// ProbGraph: the same loop with the exact intersection replaced by a sketch
// estimate. Two modes are provided:
//   * kOriented — sketches are built over the N+ DAG; the sum over DAG arcs
//     estimates TC directly (Listing 1 with blue |N+v ∩ N+u| swapped),
//   * kFull     — sketches over the undirected graph; TĈ = ⅓·Σ_{(u,v)∈E}
//     |N̂u ∩ N̂v|, the estimator analyzed in Theorem VII.1.
#pragma once

#include <cstdint>

#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"

namespace probgraph::algo {

/// Which exact intersection kernel the baseline uses (Fig. 1 panel 2).
enum class ExactIntersect : std::uint8_t { kMerge, kGallop, kAdaptive };

/// Exact triangle count. Builds the degree-oriented DAG internally.
[[nodiscard]] std::uint64_t triangle_count_exact(
    const CsrGraph& g, ExactIntersect kernel = ExactIntersect::kAdaptive);

/// Exact triangle count over a prebuilt DAG (benches reuse one DAG across
/// schemes to keep preprocessing out of the measured region).
[[nodiscard]] std::uint64_t triangle_count_exact_oriented(
    const CsrGraph& dag, ExactIntersect kernel = ExactIntersect::kAdaptive);

/// How the ProbGraph estimator maps sketch sums to a triangle count.
enum class TcMode : std::uint8_t {
  kOriented,  ///< pg built over the N+ DAG: TĈ = Σ_{(v,u)∈DAG} est(v,u)
  kFull,      ///< pg built over G itself:  TĈ = ⅓·Σ_{{u,v}∈E} est(u,v)
};

/// ProbGraph triangle-count estimate. `pg` must have been constructed over
/// the graph matching `mode` (the DAG for kOriented, G for kFull).
[[nodiscard]] double triangle_count_probgraph(const ProbGraph& pg,
                                              TcMode mode = TcMode::kOriented);

}  // namespace probgraph::algo
