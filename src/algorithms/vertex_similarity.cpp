#include "algorithms/vertex_similarity.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/intersect.hpp"

namespace probgraph::algo {

const char* to_string(SimilarityMeasure m) noexcept {
  switch (m) {
    case SimilarityMeasure::kJaccard: return "Jaccard";
    case SimilarityMeasure::kOverlap: return "Overlap";
    case SimilarityMeasure::kCommonNeighbors: return "CommonNeighbors";
    case SimilarityMeasure::kTotalNeighbors: return "TotalNeighbors";
    case SimilarityMeasure::kAdamicAdar: return "AdamicAdar";
    case SimilarityMeasure::kResourceAllocation: return "ResourceAllocation";
  }
  return "?";
}

namespace {

/// Σ over common neighbors w of weight(w) — the shared core of Adamic-Adar
/// and Resource Allocation.
template <typename WeightFn>
double weighted_common(const CsrGraph& g, VertexId u, VertexId v, WeightFn&& weight) {
  const auto nu = g.neighbors(u);
  const auto nv = g.neighbors(v);
  double acc = 0.0;
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nv[j] < nu[i]) {
      ++j;
    } else {
      acc += weight(nu[i]);
      ++i;
      ++j;
    }
  }
  return acc;
}

double aa_weight(const CsrGraph& g, VertexId w) {
  const double d = static_cast<double>(g.degree(w));
  return d > 1.0 ? 1.0 / std::log(d) : 0.0;  // log 1 = 0: degree-1 hubs carry no signal
}

double ra_weight(const CsrGraph& g, VertexId w) {
  const double d = static_cast<double>(g.degree(w));
  return d > 0.0 ? 1.0 / d : 0.0;
}

}  // namespace

double similarity_exact(const CsrGraph& g, VertexId u, VertexId v,
                        SimilarityMeasure measure) {
  const double du = static_cast<double>(g.degree(u));
  const double dv = static_cast<double>(g.degree(v));
  switch (measure) {
    case SimilarityMeasure::kJaccard: {
      const auto inter =
          static_cast<double>(intersect_size_merge(g.neighbors(u), g.neighbors(v)));
      const double uni = du + dv - inter;
      return uni <= 0.0 ? 0.0 : inter / uni;
    }
    case SimilarityMeasure::kOverlap: {
      const double denom = std::min(du, dv);
      if (denom == 0.0) return 0.0;
      return static_cast<double>(intersect_size_merge(g.neighbors(u), g.neighbors(v))) /
             denom;
    }
    case SimilarityMeasure::kCommonNeighbors:
      return static_cast<double>(intersect_size_merge(g.neighbors(u), g.neighbors(v)));
    case SimilarityMeasure::kTotalNeighbors:
      return du + dv -
             static_cast<double>(intersect_size_merge(g.neighbors(u), g.neighbors(v)));
    case SimilarityMeasure::kAdamicAdar:
      return weighted_common(g, u, v, [&](VertexId w) { return aa_weight(g, w); });
    case SimilarityMeasure::kResourceAllocation:
      return weighted_common(g, u, v, [&](VertexId w) { return ra_weight(g, w); });
  }
  return 0.0;
}

namespace {

/// Weighted common-neighbor sum under a ProbGraph: BF filters the smaller
/// exact neighborhood through the other side's membership query; MinHash
/// enumerates the sampled common elements and rescales by the inverse
/// sampling fraction.
template <typename WeightFn>
double weighted_common_pg(const ProbGraph& pg, VertexId u, VertexId v, WeightFn&& weight) {
  const CsrGraph& g = pg.graph();
  switch (pg.kind()) {
    case SketchKind::kBloomFilter: {
      // Iterate the smaller exact neighborhood, test against the other BF.
      const VertexId small = g.degree(u) <= g.degree(v) ? u : v;
      const VertexId large = small == u ? v : u;
      const auto bf_large = pg.bf(large);
      double acc = 0.0;
      for (const VertexId w : g.neighbors(small)) {
        if (bf_large.contains(w)) acc += weight(w);
      }
      return acc;
    }
    case SketchKind::kOneHash: {
      std::vector<VertexId> common;
      OneHashSketch::intersect_elements(pg.onehash_entries(u), pg.onehash_entries(v),
                                        pg.minhash_k(), common);
      if (common.empty()) return 0.0;
      const double est_inter = pg.est_intersection(u, v);
      const double inv_p = std::max(1.0, est_inter / static_cast<double>(common.size()));
      double acc = 0.0;
      for (const VertexId w : common) acc += weight(w);
      return inv_p * acc;
    }
    case SketchKind::kKHash: {
      const auto a = pg.khash_signature(u);
      const auto b = pg.khash_signature(v);
      std::vector<VertexId> common;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != kEmptySlot && a[i] == b[i]) common.push_back(static_cast<VertexId>(a[i]));
      }
      std::sort(common.begin(), common.end());
      common.erase(std::unique(common.begin(), common.end()), common.end());
      if (common.empty()) return 0.0;
      const double est_inter = pg.est_intersection(u, v);
      const double inv_p = std::max(1.0, est_inter / static_cast<double>(common.size()));
      double acc = 0.0;
      for (const VertexId w : common) acc += weight(w);
      return inv_p * acc;
    }
    case SketchKind::kKmv:
      // KMV cannot enumerate elements; approximate with the mean weight of
      // the two endpoint neighborhoods times the estimated intersection.
      return pg.est_intersection(u, v) * 0.0;
  }
  return 0.0;
}

}  // namespace

double similarity_probgraph(const ProbGraph& pg, VertexId u, VertexId v,
                            SimilarityMeasure measure) {
  const CsrGraph& g = pg.graph();
  switch (measure) {
    case SimilarityMeasure::kJaccard:
      return pg.est_jaccard(u, v);
    case SimilarityMeasure::kOverlap:
      return pg.est_overlap(u, v);
    case SimilarityMeasure::kCommonNeighbors:
      return pg.est_intersection(u, v);
    case SimilarityMeasure::kTotalNeighbors:
      return pg.est_total_neighbors(u, v);
    case SimilarityMeasure::kAdamicAdar:
      return weighted_common_pg(pg, u, v, [&](VertexId w) {
        const double d = static_cast<double>(g.degree(w));
        return d > 1.0 ? 1.0 / std::log(d) : 0.0;
      });
    case SimilarityMeasure::kResourceAllocation:
      return weighted_common_pg(pg, u, v, [&](VertexId w) {
        const double d = static_cast<double>(g.degree(w));
        return d > 0.0 ? 1.0 / d : 0.0;
      });
  }
  return 0.0;
}

}  // namespace probgraph::algo
