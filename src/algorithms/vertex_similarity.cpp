#include "algorithms/vertex_similarity.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "algorithms/similarity_kernels.hpp"
#include "core/intersect.hpp"
#include "util/ascii.hpp"

namespace probgraph::algo {

const char* to_string(SimilarityMeasure m) noexcept {
  switch (m) {
    case SimilarityMeasure::kJaccard: return "Jaccard";
    case SimilarityMeasure::kOverlap: return "Overlap";
    case SimilarityMeasure::kCommonNeighbors: return "CommonNeighbors";
    case SimilarityMeasure::kTotalNeighbors: return "TotalNeighbors";
    case SimilarityMeasure::kAdamicAdar: return "AdamicAdar";
    case SimilarityMeasure::kResourceAllocation: return "ResourceAllocation";
  }
  return "?";
}

std::optional<SimilarityMeasure> parse_similarity_measure(std::string_view s) noexcept {
  using util::iequals;
  if (iequals(s, "jaccard")) return SimilarityMeasure::kJaccard;
  if (iequals(s, "overlap")) return SimilarityMeasure::kOverlap;
  if (iequals(s, "common") || iequals(s, "commonneighbors") || iequals(s, "cn")) {
    return SimilarityMeasure::kCommonNeighbors;
  }
  if (iequals(s, "total") || iequals(s, "totalneighbors")) {
    return SimilarityMeasure::kTotalNeighbors;
  }
  if (iequals(s, "adamic") || iequals(s, "adamicadar") || iequals(s, "aa")) {
    return SimilarityMeasure::kAdamicAdar;
  }
  if (iequals(s, "resource") || iequals(s, "resourceallocation") || iequals(s, "ra")) {
    return SimilarityMeasure::kResourceAllocation;
  }
  return std::nullopt;
}

namespace {

/// Σ over common neighbors w of weight(w) — the shared core of Adamic-Adar
/// and Resource Allocation.
template <typename WeightFn>
double weighted_common(const CsrGraph& g, VertexId u, VertexId v, WeightFn&& weight) {
  const auto nu = g.neighbors(u);
  const auto nv = g.neighbors(v);
  double acc = 0.0;
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nv[j] < nu[i]) {
      ++j;
    } else {
      acc += weight(nu[i]);
      ++i;
      ++j;
    }
  }
  return acc;
}

double aa_weight(const CsrGraph& g, VertexId w) {
  const double d = static_cast<double>(g.degree(w));
  return d > 1.0 ? 1.0 / std::log(d) : 0.0;  // log 1 = 0: degree-1 hubs carry no signal
}

double ra_weight(const CsrGraph& g, VertexId w) {
  const double d = static_cast<double>(g.degree(w));
  return d > 0.0 ? 1.0 / d : 0.0;
}

}  // namespace

double similarity_exact(const CsrGraph& g, VertexId u, VertexId v,
                        SimilarityMeasure measure) {
  const double du = static_cast<double>(g.degree(u));
  const double dv = static_cast<double>(g.degree(v));
  switch (measure) {
    case SimilarityMeasure::kJaccard: {
      const auto inter =
          static_cast<double>(intersect_size_merge(g.neighbors(u), g.neighbors(v)));
      const double uni = du + dv - inter;
      return uni <= 0.0 ? 0.0 : inter / uni;
    }
    case SimilarityMeasure::kOverlap: {
      const double denom = std::min(du, dv);
      if (denom == 0.0) return 0.0;
      return static_cast<double>(intersect_size_merge(g.neighbors(u), g.neighbors(v))) /
             denom;
    }
    case SimilarityMeasure::kCommonNeighbors:
      return static_cast<double>(intersect_size_merge(g.neighbors(u), g.neighbors(v)));
    case SimilarityMeasure::kTotalNeighbors:
      return du + dv -
             static_cast<double>(intersect_size_merge(g.neighbors(u), g.neighbors(v)));
    case SimilarityMeasure::kAdamicAdar:
      return weighted_common(g, u, v, [&](VertexId w) { return aa_weight(g, w); });
    case SimilarityMeasure::kResourceAllocation:
      return weighted_common(g, u, v, [&](VertexId w) { return ra_weight(g, w); });
  }
  return 0.0;
}

double similarity_probgraph(const ProbGraph& pg, VertexId u, VertexId v,
                            SimilarityMeasure measure) {
  // Per-pair convenience entry point; the pair-loop algorithms (clustering,
  // link prediction) hoist the visit out of their loops instead.
  return pg.visit_backend(
      [&](const auto& be) { return similarity_backend(be, u, v, measure); });
}

}  // namespace probgraph::algo
