// Vertex similarity measures (paper Listing 3).
//
// All measures reduce to the intersection cardinality |N_u ∩ N_v| (Jaccard,
// Overlap, Common Neighbors, Total Neighbors) or to a weighted sum over the
// common neighbors (Adamic-Adar, Resource Allocation). Exact versions use
// merge intersection; ProbGraph versions use the sketch estimators, with
// the weighted measures handled by BF membership filtering or MinHash
// sample rescaling (they need the *elements* of the intersection).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"

namespace probgraph::algo {

enum class SimilarityMeasure : std::uint8_t {
  kJaccard,             ///< |A∩B| / |A∪B|
  kOverlap,             ///< |A∩B| / min(|A|, |B|)
  kCommonNeighbors,     ///< |N_v ∩ N_u|
  kTotalNeighbors,      ///< |N_v ∪ N_u|
  kAdamicAdar,          ///< Σ_{w∈N_v∩N_u} 1 / log|N_w|
  kResourceAllocation,  ///< Σ_{w∈N_v∩N_u} 1 / |N_w|
};

[[nodiscard]] const char* to_string(SimilarityMeasure m) noexcept;

/// Inverse of to_string, also accepting the CLI/protocol spellings used by
/// pgtool ("jaccard", "overlap", "common", "total", "adamic"/"aa",
/// "resource"/"ra"), case-insensitively. nullopt on anything else.
[[nodiscard]] std::optional<SimilarityMeasure> parse_similarity_measure(
    std::string_view s) noexcept;

/// Exact similarity of two vertices under `measure`.
[[nodiscard]] double similarity_exact(const CsrGraph& g, VertexId u, VertexId v,
                                      SimilarityMeasure measure);

/// ProbGraph similarity estimate. `pg` must be built over `g` itself (full
/// neighborhoods, not the DAG).
[[nodiscard]] double similarity_probgraph(const ProbGraph& pg, VertexId u, VertexId v,
                                          SimilarityMeasure measure);

}  // namespace probgraph::algo
