#include "baselines/colorful.hpp"

#include <stdexcept>
#include <vector>

#include "algorithms/triangle_count.hpp"
#include "graph/builder.hpp"
#include "util/hash.hpp"

namespace probgraph::baselines {

ColorfulResult colorful_tc(const CsrGraph& g, std::uint32_t num_colors, std::uint64_t seed) {
  if (num_colors == 0) throw std::invalid_argument("colorful_tc: need at least one color");
  auto color = [&](VertexId v) {
    return util::hash64(v, seed) % num_colors;
  };
  std::vector<Edge> mono;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t cv = color(v);
    for (const VertexId u : g.neighbors(v)) {
      if (u > v && color(u) == cv) mono.emplace_back(v, u);
    }
  }
  ColorfulResult result;
  result.monochromatic_edges = mono.size();
  const CsrGraph sub = GraphBuilder::from_edges(std::move(mono), g.num_vertices());
  const auto tc = algo::triangle_count_exact(sub);
  result.estimate =
      static_cast<double>(tc) * static_cast<double>(num_colors) * static_cast<double>(num_colors);
  return result;
}

}  // namespace probgraph::baselines
