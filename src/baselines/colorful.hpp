// Colorful Triangle Counting (Pagh & Tsourakakis [47]; paper §VIII
// comparison baseline, representing combinatorial-pruning schemes).
//
// Color every vertex uniformly at random with one of N colors; keep only
// monochromatic edges; a triangle survives iff all three vertices share a
// color, which happens with probability 1/N². The exact triangle count of
// the monochromatic subgraph times N² is an unbiased estimator with
// polynomial concentration (Table VII row "Colorful").
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"

namespace probgraph::baselines {

struct ColorfulResult {
  double estimate = 0.0;
  std::uint64_t monochromatic_edges = 0;
};

[[nodiscard]] ColorfulResult colorful_tc(const CsrGraph& g, std::uint32_t num_colors,
                                         std::uint64_t seed);

}  // namespace probgraph::baselines
