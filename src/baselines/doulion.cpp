#include "baselines/doulion.hpp"

#include <stdexcept>
#include <vector>

#include "algorithms/triangle_count.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace probgraph::baselines {

DoulionResult doulion_tc(const CsrGraph& g, double p, std::uint64_t seed) {
  if (p <= 0.0 || p > 1.0) throw std::invalid_argument("doulion_tc: p must be in (0, 1]");
  util::Xoshiro256 rng(seed);
  std::vector<Edge> kept;
  kept.reserve(static_cast<std::size_t>(p * static_cast<double>(g.num_edges())));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u > v && rng.bernoulli(p)) kept.emplace_back(v, u);
    }
  }
  DoulionResult result;
  result.sampled_edges = kept.size();
  const CsrGraph sparse = GraphBuilder::from_edges(std::move(kept), g.num_vertices());
  const auto tc = algo::triangle_count_exact(sparse);
  result.estimate = static_cast<double>(tc) / (p * p * p);
  return result;
}

}  // namespace probgraph::baselines
