// Doulion [46]: triangle counting "with a coin" (paper §VIII comparison
// baseline, representing edge-sampling schemes).
//
// Keep every edge independently with probability p, count triangles in the
// sparsified graph exactly, rescale by 1/p³ (a triangle survives iff all
// three of its edges do). Unbiased, but only polynomial concentration and
// no MLE structure — see Table VII.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"

namespace probgraph::baselines {

struct DoulionResult {
  double estimate = 0.0;       ///< 1/p³-rescaled triangle count
  std::uint64_t sampled_edges = 0;
};

[[nodiscard]] DoulionResult doulion_tc(const CsrGraph& g, double p, std::uint64_t seed);

}  // namespace probgraph::baselines
