#include "baselines/heuristics.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/intersect.hpp"
#include "graph/orientation.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace probgraph::baselines {

double reduced_execution_tc(const CsrGraph& g, std::uint32_t step) {
  if (step == 0) throw std::invalid_argument("reduced_execution_tc: step must be positive");
  const CsrGraph dag = degree_orient(g);
  const VertexId n = dag.num_vertices();
  std::uint64_t total = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : total)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); v += step) {
    const auto nv = dag.neighbors(static_cast<VertexId>(v));
    for (const VertexId u : nv) {
      total += intersect_size_merge(nv, dag.neighbors(u));
    }
  }
  // Loop perforation: no rescaling (the original heuristic reports the
  // partial count as the result).
  (void)step;
  return static_cast<double>(total);
}

double partial_processing_tc(const CsrGraph& g, double fraction, std::uint64_t seed) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("partial_processing_tc: fraction must be in (0, 1]");
  }
  const CsrGraph dag = degree_orient(g);
  const VertexId n = dag.num_vertices();
  // Per-endpoint independent subsampling: neighbor x survives in v's view
  // iff hash(v, x) <= fraction (independently per endpoint).
  // fraction == 1.0 would overflow the uint64 cast (2^64 is unrepresentable,
  // and the out-of-range conversion is UB that lands on 0 here), so saturate.
  const std::uint64_t threshold =
      fraction >= 1.0 ? ~std::uint64_t{0}
                      : static_cast<std::uint64_t>(fraction * 0x1p64);
  auto survives = [&](VertexId owner, VertexId x) {
    return util::hash64((static_cast<std::uint64_t>(owner) << 32) | x, seed) <= threshold;
  };
  double total = 0.0;
#pragma omp parallel reduction(+ : total)
  {
    std::vector<VertexId> sub_v, sub_u;
#pragma omp for schedule(dynamic, 64)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      sub_v.clear();
      for (const VertexId x : dag.neighbors(static_cast<VertexId>(v))) {
        if (survives(static_cast<VertexId>(v), x)) sub_v.push_back(x);
      }
      for (const VertexId u : dag.neighbors(static_cast<VertexId>(v))) {
        sub_u.clear();
        for (const VertexId x : dag.neighbors(u)) {
          if (survives(u, x)) sub_u.push_back(x);
        }
        total += static_cast<double>(
            intersect_size_merge({sub_v.data(), sub_v.size()}, {sub_u.data(), sub_u.size()}));
      }
    }
  }
  return total;  // raw partial count, as in the original heuristic
}

namespace {

/// Vertex-centric message-passing TC with message sampling. Faithful to the
/// abstraction of [113]: superstep 1 materializes one message (a copy of
/// the sender's neighbor list) per surviving DAG edge; superstep 2 has each
/// receiver intersect the payloads against its own list. The materialized
/// buffers are what makes this slower than the direct node iterator.
double vertex_centric_sampled_tc(const CsrGraph& g, double sample_rate, std::uint64_t seed) {
  const CsrGraph dag = degree_orient(g);
  const VertexId n = dag.num_vertices();

  struct Message {
    VertexId receiver;
    std::vector<VertexId> payload;
  };

  // Superstep 1: each vertex v sends N+(v) to every u in N+(v), subject to
  // message sampling.
  std::vector<std::vector<Message>> mailboxes(n);
  util::Xoshiro256 rng(seed);
  std::uint64_t sent = 0, possible = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto nv = dag.neighbors(v);
    for (const VertexId u : nv) {
      ++possible;
      if (!rng.bernoulli(sample_rate)) continue;
      ++sent;
      mailboxes[u].push_back({u, std::vector<VertexId>(nv.begin(), nv.end())});
    }
  }
  if (sent == 0) return 0.0;
  (void)possible;

  // Superstep 2: receivers intersect payloads against their own lists.
  std::uint64_t total = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : total)
  for (std::int64_t u = 0; u < static_cast<std::int64_t>(n); ++u) {
    const auto nu = dag.neighbors(static_cast<VertexId>(u));
    for (const Message& msg : mailboxes[u]) {
      total += intersect_size_merge({msg.payload.data(), msg.payload.size()}, nu);
    }
  }
  return static_cast<double>(total);  // raw sampled count, unrescaled
}

}  // namespace

double auto_approx1_tc(const CsrGraph& g, std::uint64_t seed) {
  return vertex_centric_sampled_tc(g, 0.5, seed);
}

double auto_approx2_tc(const CsrGraph& g, std::uint64_t seed) {
  return vertex_centric_sampled_tc(g, 0.25, seed);
}

}  // namespace probgraph::baselines
