// Heuristic approximate-TC baselines without quality guarantees (paper
// §VIII-D): Reduced Execution and Partial Graph Processing of Singh &
// Nasre [112], and the two Auto-Approximate variants of Shang & Yu [113].
//
// The paper's finding — reproduced by `fig6_tc_bars` — is that these
// heuristics are both less accurate than ProbGraph (by 25–75%) and often
// slower, with the Auto-Approximate schemes slower than the exact tuned
// baseline due to their vertex-centric message-passing abstraction. Our
// AutoApprox implementation honestly emulates that abstraction (materalized
// per-vertex message buffers) rather than strawmanning it.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"

namespace probgraph::baselines {

/// Reduced Execution [112]: run the node-iterator outer loop on every
/// `step`-th vertex only (loop perforation). Faithful to the original, the
/// partial count is returned *without* rescaling — these schemes trade
/// accuracy for time with no statistical correction, which is what the
/// paper's accuracy-gap comparison measures.
[[nodiscard]] double reduced_execution_tc(const CsrGraph& g, std::uint32_t step);

/// Partial Graph Processing [112]: intersect per-vertex *subsampled*
/// neighborhoods (each vertex keeps each neighbor with probability
/// `fraction`, independently per endpoint). Raw partial count, unrescaled.
[[nodiscard]] double partial_processing_tc(const CsrGraph& g, double fraction,
                                           std::uint64_t seed);

/// Auto-Approximate [113], variant 1: vertex-centric TC where each vertex
/// sends its neighbor list to its higher-rank neighbors, which count
/// intersections against their own lists; a fixed fraction of messages is
/// dropped (sample_rate = 0.5). Raw partial count, unrescaled.
[[nodiscard]] double auto_approx1_tc(const CsrGraph& g, std::uint64_t seed);

/// Auto-Approximate variant 2: more aggressive message sampling
/// (sample_rate = 0.25).
[[nodiscard]] double auto_approx2_tc(const CsrGraph& g, std::uint64_t seed);

}  // namespace probgraph::baselines
