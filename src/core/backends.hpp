// Static-dispatch sketch backends: the estimator hot path of every mining
// algorithm, specialized once per (SketchKind × BfEstimator) combination.
//
// ProbGraph::est_intersection used to re-run a nested switch on the sketch
// kind and BF estimator for *every edge* inside every algorithm's parallel
// loop. The backends below hoist that dispatch out of the inner loops: each
// backend is a lightweight POD view over the ProbGraph arenas exposing a
// branch-free `est_intersection(u, v)`, and `ProbGraph::visit_backend(f)`
// performs the kind/estimator switch exactly once before invoking `f` with
// the concrete backend type. Algorithm kernels are templates instantiated
// per backend, so the compiler sees a monomorphic call chain (and can
// inline the popcount/merge kernels) where the old code saw an opaque
// double switch.
//
// The derived measures (Jaccard, overlap, total neighbors) live in the CRTP
// base so every backend shares one definition, and the estimate clamping
// that used to be scattered ad hoc through the call sites (e.g. the
// std::min(est, du + dv) inside est_jaccard) is centralized here in
// `est_intersection_clamped`.
//
// Backends are cheap to copy (a few pointers and scalars); capture them by
// value inside parallel regions.
//
// The arena pointers are memory-source agnostic: they may point into heap
// arenas owned by the ProbGraph or straight into an mmap'ed .pgs snapshot
// (util::ArenaRef / src/io/snapshot.hpp), so every algorithm kernel serves
// zero-copy from either source without change.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "core/bloom_filter.hpp"
#include "core/estimators.hpp"
#include "core/kernels/kernels.hpp"
#include "core/minhash.hpp"
#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"
#include "util/bitvector.hpp"
#include "util/hash.hpp"

namespace probgraph {

/// CRTP base: derived similarity measures shared by every backend, defined
/// over the backend's raw `est_intersection`.
template <typename Derived>
struct SketchBackendBase {
  /// True when est_jaccard is the direct sketch estimate rather than a
  /// function of est_intersection; batch consumers must then score Jaccard
  /// per pair instead of deriving it from the raw intersection batch.
  static constexpr bool kNativeJaccard = false;

  const CsrGraph* graph = nullptr;

  [[nodiscard]] const Derived& derived() const noexcept {
    return static_cast<const Derived&>(*this);
  }

  [[nodiscard]] double degree(VertexId v) const noexcept {
    return static_cast<double>(graph->degree(v));
  }

  /// The centralized clamp: raw estimators can stray outside the feasible
  /// range ([0, du + dv] bounds any |N_u ∩ N_v|) — BF/OR can go negative on
  /// near-saturated filters, BF/AND can overshoot on skewed graphs. Every
  /// derived measure funnels through this one definition so all algorithms
  /// see consistent estimates.
  ///
  /// The *_from_intersection family below is the single source of truth
  /// for the derived measures: the per-pair est_* methods and the batched
  /// sweeps both evaluate through it, so a batch is bit-identical to the
  /// pair loop by construction.
  [[nodiscard]] double clamp_intersection(VertexId u, VertexId v, double raw) const noexcept {
    const double cap = degree(u) + degree(v);
    return std::clamp(raw, 0.0, cap);
  }

  [[nodiscard]] double est_intersection_clamped(VertexId u, VertexId v) const noexcept {
    return clamp_intersection(u, v, derived().est_intersection(u, v));
  }

  /// J = |X∩Y| / (|X| + |Y| − |X∩Y|) (Listing 6) from a raw intersection
  /// estimate.
  [[nodiscard]] double jaccard_from_intersection(VertexId u, VertexId v,
                                                 double raw) const noexcept {
    const double du = degree(u), dv = degree(v);
    if (du + dv == 0.0) return 0.0;
    const double inter = clamp_intersection(u, v, raw);
    const double uni = du + dv - inter;
    return uni <= 0.0 ? 1.0 : inter / uni;
  }

  [[nodiscard]] double overlap_from_intersection(VertexId u, VertexId v,
                                                 double raw) const noexcept {
    const double denom = std::min(degree(u), degree(v));
    if (denom == 0.0) return 0.0;
    return clamp_intersection(u, v, raw) / denom;
  }

  [[nodiscard]] double total_from_intersection(VertexId u, VertexId v,
                                               double raw) const noexcept {
    return degree(u) + degree(v) - clamp_intersection(u, v, raw);
  }

  /// MinHash backends shadow est_jaccard with the direct sketch estimate
  /// (and set kNativeJaccard).
  [[nodiscard]] double est_jaccard(VertexId u, VertexId v) const noexcept {
    return jaccard_from_intersection(u, v, derived().est_intersection(u, v));
  }

  [[nodiscard]] double est_overlap(VertexId u, VertexId v) const noexcept {
    return overlap_from_intersection(u, v, derived().est_intersection(u, v));
  }

  [[nodiscard]] double est_common_neighbors(VertexId u, VertexId v) const noexcept {
    return derived().est_intersection(u, v);
  }

  [[nodiscard]] double est_total_neighbors(VertexId u, VertexId v) const noexcept {
    return total_from_intersection(u, v, derived().est_intersection(u, v));
  }

  /// Batched raw-intersection sweep: out[i] = est_intersection(u, cands[i])
  /// for every candidate, bit-identical to the per-pair loop. Backends with
  /// a batch-friendly memory shape (the Bloom family) shadow this with a
  /// cache-blocked kernel sweep; this generic fallback is the loop itself.
  void est_intersection_batch(VertexId u, std::span<const VertexId> cands,
                              double* out) const {
    for (std::size_t i = 0; i < cands.size(); ++i) {
      out[i] = derived().est_intersection(u, cands[i]);
    }
  }
};

/// Shared state of the three Bloom-filter backends: the filter arena plus
/// the (B, b) parameters, with per-vertex word-span access.
template <typename Derived>
struct BloomBackendBase : SketchBackendBase<Derived> {
  static constexpr SketchKind kKind = SketchKind::kBloomFilter;

  const std::uint64_t* arena = nullptr;
  std::size_t words_per_vertex = 0;
  std::uint64_t bits = 0;
  std::uint32_t hashes = 0;
  util::HashFamily family;

  [[nodiscard]] std::span<const std::uint64_t> words(VertexId v) const noexcept {
    return {arena + static_cast<std::size_t>(v) * words_per_vertex, words_per_vertex};
  }

  /// Membership-query view over vertex v's filter (the family travels with
  /// the backend so kernels needing `contains` are self-sufficient).
  [[nodiscard]] BloomFilterView bf(VertexId v) const noexcept {
    return {words(v), bits, hashes, family};
  }

  /// Per-thread scratch for the batched popcount sweeps (reused across the
  /// millions of batches an algorithm sweep issues on each thread).
  [[nodiscard]] static std::vector<std::uint64_t>& counts_scratch(std::size_t n) {
    static thread_local std::vector<std::uint64_t> counts;
    counts.resize(n);
    return counts;
  }
};

/// Eq. (2): Swamidass on popcount(B_u AND B_v). The paper's default.
struct BloomAndBackend final : BloomBackendBase<BloomAndBackend> {
  static constexpr BfEstimator kEstimator = BfEstimator::kAnd;

  [[nodiscard]] double est_intersection(VertexId u, VertexId v) const noexcept {
    return est::bf_intersection_and(util::and_popcount(words(u), words(v)), bits, hashes);
  }

  /// Cache-blocked sweep: u's filter stays hot while candidate rows
  /// stream; same popcounts, same estimator, bit-identical to the loop.
  void est_intersection_batch(VertexId u, std::span<const VertexId> cands,
                              double* out) const {
    auto& counts = counts_scratch(cands.size());
    kernels::and_popcount_batch(words(u), arena, words_per_vertex, cands, counts.data());
    for (std::size_t i = 0; i < cands.size(); ++i) {
      out[i] = est::bf_intersection_and(counts[i], bits, hashes);
    }
  }
};

/// Eq. (4): the B→∞ limiting estimator B_{X∩Y,1}/b.
struct BloomLimitBackend final : BloomBackendBase<BloomLimitBackend> {
  static constexpr BfEstimator kEstimator = BfEstimator::kLimit;

  [[nodiscard]] double est_intersection(VertexId u, VertexId v) const noexcept {
    return est::bf_intersection_limit(util::and_popcount(words(u), words(v)), hashes);
  }

  void est_intersection_batch(VertexId u, std::span<const VertexId> cands,
                              double* out) const {
    auto& counts = counts_scratch(cands.size());
    kernels::and_popcount_batch(words(u), arena, words_per_vertex, cands, counts.data());
    for (std::size_t i = 0; i < cands.size(); ++i) {
      out[i] = est::bf_intersection_limit(counts[i], hashes);
    }
  }
};

/// Eq. (29): the Swamidass OR baseline (needs exact degrees).
struct BloomOrBackend final : BloomBackendBase<BloomOrBackend> {
  static constexpr BfEstimator kEstimator = BfEstimator::kOr;

  [[nodiscard]] double est_intersection(VertexId u, VertexId v) const noexcept {
    return est::bf_intersection_or(this->degree(u), this->degree(v),
                                   util::or_popcount(words(u), words(v)), bits, hashes);
  }

  void est_intersection_batch(VertexId u, std::span<const VertexId> cands,
                              double* out) const {
    auto& counts = counts_scratch(cands.size());
    kernels::or_popcount_batch(words(u), arena, words_per_vertex, cands, counts.data());
    const double du = this->degree(u);
    for (std::size_t i = 0; i < cands.size(); ++i) {
      out[i] = est::bf_intersection_or(du, this->degree(cands[i]), counts[i], bits, hashes);
    }
  }
};

/// k-hash MinHash: slot-wise signature comparison, Eq. (5).
struct KHashBackend final : SketchBackendBase<KHashBackend> {
  static constexpr SketchKind kKind = SketchKind::kKHash;
  static constexpr bool kNativeJaccard = true;  // direct slot-match estimate

  const std::uint64_t* arena = nullptr;
  std::uint32_t k = 0;

  [[nodiscard]] std::span<const std::uint64_t> signature(VertexId v) const noexcept {
    return {arena + static_cast<std::size_t>(v) * k, k};
  }

  [[nodiscard]] double est_jaccard(VertexId u, VertexId v) const noexcept {
    const double du = degree(u), dv = degree(v);
    if (du + dv == 0.0) return 0.0;
    return static_cast<double>(KHashSketch::matching_slots(signature(u), signature(v))) /
           static_cast<double>(k);
  }

  [[nodiscard]] double est_intersection(VertexId u, VertexId v) const noexcept {
    const std::uint32_t matches = KHashSketch::matching_slots(signature(u), signature(v));
    const double j = static_cast<double>(matches) / static_cast<double>(k);
    return est::mh_intersection(j, degree(u), degree(v));
  }

  /// Single-scan combo for the sampling-based kernels: replaces `out` with
  /// the sampled common elements (matching non-empty slots, sorted
  /// ascending, deduplicated) and returns the |N_u ∩ N_v| estimate derived
  /// from the same matching-slot count — one signature scan, where calling
  /// est_intersection separately would re-scan.
  double sampled_intersection(VertexId u, VertexId v, std::vector<VertexId>& out) const {
    out.clear();
    const auto a = signature(u);
    const auto b = signature(v);
    std::uint32_t matches = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != kEmptySlot && a[i] == b[i]) {
        ++matches;
        out.push_back(static_cast<VertexId>(a[i]));
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    const double j = static_cast<double>(matches) / static_cast<double>(k);
    return est::mh_intersection(j, degree(u), degree(v));
  }
};

/// 1-hash (bottom-k) MinHash: union-restricted sorted merge, §IV-D.
struct OneHashBackend final : SketchBackendBase<OneHashBackend> {
  static constexpr SketchKind kKind = SketchKind::kOneHash;
  static constexpr bool kNativeJaccard = true;  // direct union-merge estimate

  const BottomKEntry* arena = nullptr;
  const std::uint32_t* sizes = nullptr;
  std::uint32_t k = 0;

  [[nodiscard]] std::span<const BottomKEntry> entries(VertexId v) const noexcept {
    return {arena + static_cast<std::size_t>(v) * k, sizes[v]};
  }

  [[nodiscard]] double est_jaccard(VertexId u, VertexId v) const noexcept {
    const double du = degree(u), dv = degree(v);
    if (du + dv == 0.0) return 0.0;
    return OneHashSketch::jaccard_from_spans(entries(u), entries(v), k);
  }

  [[nodiscard]] double est_intersection(VertexId u, VertexId v) const noexcept {
    const double j = OneHashSketch::jaccard_from_spans(entries(u), entries(v), k);
    return est::mh_intersection(j, degree(u), degree(v));
  }

  /// Sampling-kernel combo matching KHashBackend's: replaces `out` with the
  /// common elements within the union bottom-k (sorted ascending; bottom-k
  /// sketches never contain duplicates) and returns the |N_u ∩ N_v|
  /// estimate. Two O(k) merges (elements + Jaccard), same as the owning
  /// OneHashSketch API.
  double sampled_intersection(VertexId u, VertexId v, std::vector<VertexId>& out) const {
    out.clear();
    OneHashSketch::intersect_elements(entries(u), entries(v), k, out);
    std::sort(out.begin(), out.end());
    return est_intersection(u, v);
  }
};

/// K Minimum Values: union cardinality from the k-th smallest union hash
/// (Eq. (41)), intersection by inclusion–exclusion with exact degrees.
struct KmvBackend final : SketchBackendBase<KmvBackend> {
  static constexpr SketchKind kKind = SketchKind::kKmv;

  const double* arena = nullptr;
  const std::uint32_t* sizes = nullptr;
  std::uint32_t k = 0;

  [[nodiscard]] std::span<const double> values(VertexId v) const noexcept {
    return {arena + static_cast<std::size_t>(v) * k, sizes[v]};
  }

  [[nodiscard]] double est_intersection(VertexId u, VertexId v) const noexcept {
    // Union-of-sorted-lists with the k smallest (kernel-layer min_merge,
    // scalar by contract — double compare order is part of the estimator),
    // then Eq. (41).
    const auto [taken, kth] = kernels::min_merge(values(u), values(v), k);
    const double est_union =
        (taken < k) ? static_cast<double>(taken) : static_cast<double>(k - 1) / kth;
    return std::max(0.0, degree(u) + degree(v) - est_union);
  }
};

// --- ProbGraph glue (member templates declared in prob_graph.hpp). ---

template <typename Backend>
Backend ProbGraph::backend() const noexcept {
  Backend be{};
  be.graph = graph_;
  if constexpr (Backend::kKind == SketchKind::kBloomFilter) {
    be.arena = bf_arena_.data();
    be.words_per_vertex = bf_words_per_vertex_;
    be.bits = bf_bits_;
    be.hashes = config_.bf_hashes;
    be.family = family_;
  } else if constexpr (Backend::kKind == SketchKind::kKHash) {
    be.arena = kh_arena_.data();
    be.k = k_;
  } else if constexpr (Backend::kKind == SketchKind::kOneHash) {
    be.arena = oh_arena_.data();
    be.sizes = sketch_sizes_.data();
    be.k = k_;
  } else {
    static_assert(Backend::kKind == SketchKind::kKmv);
    be.arena = kmv_arena_.data();
    be.sizes = sketch_sizes_.data();
    be.k = k_;
  }
  return be;
}

template <typename F>
decltype(auto) ProbGraph::visit_backend(F&& f) const {
  switch (config_.kind) {
    case SketchKind::kBloomFilter:
      switch (config_.bf_estimator) {
        case BfEstimator::kAnd: return f(backend<BloomAndBackend>());
        case BfEstimator::kLimit: return f(backend<BloomLimitBackend>());
        case BfEstimator::kOr: return f(backend<BloomOrBackend>());
      }
      break;
    case SketchKind::kKHash: return f(backend<KHashBackend>());
    case SketchKind::kOneHash: return f(backend<OneHashBackend>());
    case SketchKind::kKmv: return f(backend<KmvBackend>());
  }
  // Unreachable for any config the ProbGraph constructor accepts; the AND
  // backend is the least-surprising fallback for a corrupted enum.
  return f(backend<BloomAndBackend>());
}

}  // namespace probgraph
