#include "core/bloom_filter.hpp"

#include <cmath>
#include <stdexcept>

namespace probgraph {

BloomFilter::BloomFilter(std::uint64_t bits, std::uint32_t num_hashes, std::uint64_t seed)
    : bits_(bits), num_hashes_(num_hashes), family_(seed) {
  if (bits == 0) throw std::invalid_argument("BloomFilter: width must be positive");
  if (num_hashes == 0) throw std::invalid_argument("BloomFilter: need at least one hash");
}

void BloomFilter::insert(std::uint64_t x) noexcept {
  for (std::uint32_t i = 0; i < num_hashes_; ++i) {
    bits_.set(family_(i, x) % bits_.size_bits());
  }
}

void BloomFilter::insert(std::span<const VertexId> xs) noexcept {
  for (const VertexId x : xs) insert(x);
}

double BloomFilter::false_positive_rate() const noexcept {
  const double fill =
      static_cast<double>(count_ones()) / static_cast<double>(bits_.size_bits());
  return std::pow(fill, static_cast<double>(num_hashes_));
}

}  // namespace probgraph
