// Bloom filters (paper §II-D).
//
// A Bloom filter B_X for a set X is an l-bit vector plus b hash functions
// h_1..h_b; inserting x sets bits B_X[h_i(x)], membership tests check that
// all b bits are set (false positives possible, false negatives not).
//
// Two flavors are provided:
//   * BloomFilter      — an owning filter over its own BitVector (public
//                        API, tests, examples),
//   * BloomFilterView  — a non-owning view into the ProbGraph arena, where
//                        all n per-vertex filters share one allocation and
//                        one width (the load-balancing property of Fig. 1
//                        panel 5).
#pragma once

#include <cstdint>
#include <span>

#include "util/bitvector.hpp"
#include "util/hash.hpp"
#include "util/types.hpp"

namespace probgraph {

/// Non-owning Bloom filter over a word span inside a sketch arena.
class BloomFilterView {
 public:
  BloomFilterView(std::span<const std::uint64_t> words, std::uint64_t bits,
                  std::uint32_t num_hashes, util::HashFamily family) noexcept
      : words_(words), bits_(bits), num_hashes_(num_hashes), family_(family) {}

  /// Filter width in bits (the paper's B_X).
  [[nodiscard]] std::uint64_t size_bits() const noexcept { return bits_; }
  /// Number of hash functions b.
  [[nodiscard]] std::uint32_t num_hashes() const noexcept { return num_hashes_; }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Number of set bits B_{X,1}.
  [[nodiscard]] std::uint64_t count_ones() const noexcept { return util::popcount(words_); }

  /// Membership query: true iff all b bit positions for x are set.
  [[nodiscard]] bool contains(std::uint64_t x) const noexcept {
    for (std::uint32_t i = 0; i < num_hashes_; ++i) {
      const std::uint64_t pos = family_(i, x) % bits_;
      if (!((words_[pos / kWordBits] >> (pos % kWordBits)) & 1U)) return false;
    }
    return true;
  }

  /// B_{X∩Y,1} approximated as popcount(B_X AND B_Y) — the practical scheme
  /// of §IV-B ("In practice, we use B_{X∩Y} ≈ B_X AND B_Y").
  [[nodiscard]] std::uint64_t and_ones(const BloomFilterView& other) const noexcept {
    return util::and_popcount(words_, other.words_);
  }

  /// popcount(B_X OR B_Y), the B_{X∪Y,1} of the OR estimator.
  [[nodiscard]] std::uint64_t or_ones(const BloomFilterView& other) const noexcept {
    return util::or_popcount(words_, other.words_);
  }

 private:
  std::span<const std::uint64_t> words_;
  std::uint64_t bits_;
  std::uint32_t num_hashes_;
  util::HashFamily family_;
};

/// Owning Bloom filter.
class BloomFilter {
 public:
  BloomFilter() = default;

  /// An all-zero filter of `bits` bits with `num_hashes` hash functions
  /// drawn from the family seeded by `seed`.
  BloomFilter(std::uint64_t bits, std::uint32_t num_hashes, std::uint64_t seed = 0);

  /// Insert one element.
  void insert(std::uint64_t x) noexcept;

  /// Insert a batch of elements (e.g. a vertex neighborhood).
  void insert(std::span<const VertexId> xs) noexcept;

  [[nodiscard]] bool contains(std::uint64_t x) const noexcept { return view().contains(x); }

  [[nodiscard]] std::uint64_t size_bits() const noexcept { return bits_.size_bits(); }
  [[nodiscard]] std::uint32_t num_hashes() const noexcept { return num_hashes_; }
  [[nodiscard]] std::uint64_t count_ones() const noexcept { return bits_.count_ones(); }

  /// Empirical false-positive probability for the current fill:
  /// p_f = (B_{X,1} / B_X)^b.
  [[nodiscard]] double false_positive_rate() const noexcept;

  [[nodiscard]] BloomFilterView view() const noexcept {
    return {bits_.words(), bits_.size_bits(), num_hashes_, family_};
  }

  [[nodiscard]] const util::BitVector& bits() const noexcept { return bits_; }

 private:
  util::BitVector bits_;
  std::uint32_t num_hashes_ = 1;
  util::HashFamily family_;
};

}  // namespace probgraph
