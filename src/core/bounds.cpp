#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "util/special_functions.hpp"

namespace probgraph::bounds {

namespace {

/// Clamp a probability bound to [0, 1] — any RHS above 1 is vacuous but
/// callers should still get a well-formed probability.
double clamp_prob(double p) noexcept { return std::clamp(p, 0.0, 1.0); }

}  // namespace

bool bf_and_bound_applicable(double inter_size, double bits, double b) noexcept {
  return bits > 1.0 && b * inter_size <= 0.499 * bits * std::log(bits);
}

double bf_and_mse_bound(double inter_size, double bits, double b) noexcept {
  const double w = inter_size;
  return std::exp(w * b / (bits - 1.0)) * bits / (b * b) - bits / (b * b) - w / b;
}

double bf_and_deviation_bound(double inter_size, double bits, double b, double t) noexcept {
  if (t <= 0.0) return 1.0;
  return clamp_prob(bf_and_mse_bound(inter_size, bits, b) / (t * t));
}

double bf_linear_mse_bound(double set_size, double bits, double b, double delta) noexcept {
  const double w = set_size;
  const double rate = w * b / bits;
  const double bias = w - delta * bits * (1.0 - std::exp(-rate));
  const double var =
      delta * delta * bits * (std::exp(-rate) - (1.0 + rate) * std::exp(-2.0 * rate));
  return bias * bias + std::max(0.0, var);
}

double bf_linear_deviation_bound(double set_size, double bits, double b, double delta,
                                 double t) noexcept {
  if (t <= 0.0) return 1.0;
  return clamp_prob(bf_linear_mse_bound(set_size, bits, b, delta) / (t * t));
}

double mh_deviation_bound(double size_x, double size_y, double k, double t) noexcept {
  if (t <= 0.0) return 1.0;
  const double s = size_x + size_y;
  if (s <= 0.0) return 0.0;
  return clamp_prob(2.0 * std::exp(-2.0 * k * t * t / (s * s)));
}

double tc_bf_deviation_bound(double num_edges, double max_degree, double bits, double b,
                             double t) noexcept {
  if (t <= 0.0) return 1.0;
  const double inner = bf_and_mse_bound(max_degree, bits, b);
  return clamp_prob(2.0 * num_edges * num_edges * inner / (9.0 * t * t));
}

double tc_mh_deviation_bound(double sum_deg_sq, double k, double t) noexcept {
  if (t <= 0.0) return 1.0;
  if (sum_deg_sq <= 0.0) return 0.0;
  return clamp_prob(2.0 * std::exp(-18.0 * k * t * t / (sum_deg_sq * sum_deg_sq)));
}

double tc_mh_deviation_bound_chromatic(double sum_deg_cube, double max_degree, double k,
                                       double t) noexcept {
  if (t <= 0.0) return 1.0;
  if (sum_deg_cube <= 0.0) return 0.0;
  return clamp_prob(
      2.0 * std::exp(-9.0 * k * t * t / (4.0 * (max_degree + 1.0) * sum_deg_cube)));
}

double kmv_size_within_prob(double set_size, double k, double t) noexcept {
  // The k-th smallest of |X| iid Uniform(0,1] hashes is Beta(k, |X|-k+1).
  // |est − |X|| <= t  <=>  (k−1)/(|X|+t) <= max(K_X) <= (k−1)/(|X|−t).
  if (set_size < k) return 1.0;  // sketch unsaturated: estimator is exact
  const double a = k;
  const double beta = set_size - k + 1.0;
  const double upper = (set_size - t <= 0.0)
                           ? 1.0
                           : util::reg_inc_beta(a, beta, std::min(1.0, (k - 1.0) / (set_size - t)));
  const double lower = util::reg_inc_beta(a, beta, std::min(1.0, (k - 1.0) / (set_size + t)));
  return std::clamp(upper - lower, 0.0, 1.0);
}

double kmv_intersection_deviation_bound(double size_x, double size_y, double size_union,
                                        double k, double t) noexcept {
  if (t <= 0.0) return 1.0;
  const double px = 1.0 - kmv_size_within_prob(size_x, k, t / 3.0);
  const double py = 1.0 - kmv_size_within_prob(size_y, k, t / 3.0);
  const double pu = 1.0 - kmv_size_within_prob(size_union, k, t / 3.0);
  return clamp_prob(px + py + pu);
}

double kmv_intersection_deviation_exact(double size_union, double k, double t) noexcept {
  if (t <= 0.0) return 1.0;
  return clamp_prob(1.0 - kmv_size_within_prob(size_union, k, t));
}

double mh_k_for_accuracy(double eps, double delta) noexcept {
  // Solve 2 exp(−2k eps²) <= delta  =>  k >= ln(2/delta) / (2 eps²),
  // with t = eps·(|X|+|Y|) absorbed into eps.
  return std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps));
}

}  // namespace probgraph::bounds
