// Quality guarantees: the MSE and concentration bounds of §IV and §VII.
//
// Each function evaluates the *right-hand side* of a bound from the paper,
// i.e. an upper bound on a deviation probability (or on the MSE). They are
// used by the `table7_estimator_properties` bench to confront the bounds
// with empirical deviation rates, and exposed publicly so that users can
// size sketches for a target accuracy.
//
//   bf_and_mse_bound           Prop. IV.1 — MSE of |X∩Y|_AND (the o(1) is dropped)
//   bf_and_deviation_bound     Eq. (3)    — Chebyshev on the MSE
//   bf_linear_mse_bound        Prop. A.2  — MSE of any linear estimator δ·B₁
//   bf_linear_deviation_bound  Appendix C-2 — Chebyshev on Prop. A.2
//   mh_deviation_bound         Props. IV.2/IV.3 — 2·exp(−2kt²/(|X|+|Y|)²),
//                              identical for k-hash and 1-hash
//   tc_bf_deviation_bound      Thm. VII.1 (BF case)
//   tc_mh_deviation_bound      Thm. VII.1 (MinHash, degree-square form)
//   tc_mh_deviation_bound_chromatic  Thm. VII.1 (MinHash, Vizing form)
//   kmv_size_within_prob       Prop. A.7  — exact beta-CDF probability
//   kmv_intersection_deviation_bound Prop. A.8 — union bound over 3 terms
//   kmv_intersection_deviation_exact Prop. A.9 — with exact |X|, |Y|
#pragma once

#include <cstdint>

namespace probgraph::bounds {

/// Prop. IV.1 RHS: e^{wb/(B−1)}·B/b² − B/b² − w/b, where w = |X∩Y|.
/// Valid when b·w <= 0.499·B·log B (checked by `bf_and_bound_applicable`).
[[nodiscard]] double bf_and_mse_bound(double inter_size, double bits, double b) noexcept;

/// Applicability predicate of Prop. IV.1 / Thm. VII.1 (BF case).
[[nodiscard]] bool bf_and_bound_applicable(double inter_size, double bits, double b) noexcept;

/// Eq. (3): P(|est − |X∩Y|| ≥ t) ≤ MSE / t².
[[nodiscard]] double bf_and_deviation_bound(double inter_size, double bits, double b,
                                            double t) noexcept;

/// Prop. A.2 RHS for an estimator δ·B₁ (δ = 1/b recovers |X∩Y|_L):
/// [w − δB(1−e^{−wb/B})]² + δ²B[e^{−wb/B} − (1 + wb/B)e^{−2wb/B}].
[[nodiscard]] double bf_linear_mse_bound(double set_size, double bits, double b,
                                         double delta) noexcept;

/// Chebyshev deviation bound on Prop. A.2.
[[nodiscard]] double bf_linear_deviation_bound(double set_size, double bits, double b,
                                               double delta, double t) noexcept;

/// Props. IV.2 / IV.3: P(|est − |X∩Y|| ≥ t) ≤ 2·exp(−2kt²/(|X|+|Y|)²).
/// The same exponential bound holds for both MinHash variants.
[[nodiscard]] double mh_deviation_bound(double size_x, double size_y, double k,
                                        double t) noexcept;

/// Thm. VII.1, BF case: P(|TC − TĈ_AND| ≥ t) ≤ 2m²·RHS(Δ)/(9t²), valid when
/// b·Δ ≤ 0.499·B·log B.
[[nodiscard]] double tc_bf_deviation_bound(double num_edges, double max_degree, double bits,
                                           double b, double t) noexcept;

/// Thm. VII.1, MinHash: P(|TC − TĈ| ≥ t) ≤ 2·exp(−18kt²/(Σ_v d_v²)²).
[[nodiscard]] double tc_mh_deviation_bound(double sum_deg_sq, double k, double t) noexcept;

/// Thm. VII.1, MinHash with the Vizing/chromatic-index refinement:
/// P ≤ 2·exp(−9kt²/(4(Δ+1)·Σ_v d_v³)).
[[nodiscard]] double tc_mh_deviation_bound_chromatic(double sum_deg_cube, double max_degree,
                                                     double k, double t) noexcept;

/// Prop. A.7: P(||X̂|_KMV − |X|| ≤ t) as a difference of Beta(k, |X|−k+1)
/// CDF values. Returns a probability in [0, 1].
[[nodiscard]] double kmv_size_within_prob(double set_size, double k, double t) noexcept;

/// Prop. A.8: deviation bound for the KMV intersection via the union bound
/// over the three constituent estimators at distance t/3.
[[nodiscard]] double kmv_intersection_deviation_bound(double size_x, double size_y,
                                                      double size_union, double k,
                                                      double t) noexcept;

/// Prop. A.9: deviation probability when |X| and |Y| are known exactly —
/// only the union estimate fluctuates.
[[nodiscard]] double kmv_intersection_deviation_exact(double size_union, double k,
                                                      double t) noexcept;

/// Inversion helper: smallest k such that the MinHash bound guarantees
/// P(deviation ≥ eps·(|X|+|Y|)) ≤ delta. Useful for sizing sketches.
[[nodiscard]] double mh_k_for_accuracy(double eps, double delta) noexcept;

}  // namespace probgraph::bounds
