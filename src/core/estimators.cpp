#include "core/estimators.hpp"

#include <algorithm>
#include <cmath>

namespace probgraph::est {

double bf_size_swamidass(std::uint64_t ones, std::uint64_t bits, std::uint32_t b) noexcept {
  if (bits == 0 || b == 0) return 0.0;
  // Divergence fix (Appendix C-3): B̃₁ = B₁ − 1[B₁ = B].
  const std::uint64_t clamped = (ones == bits) ? ones - 1 : ones;
  const double fill = static_cast<double>(clamped) / static_cast<double>(bits);
  return -static_cast<double>(bits) / static_cast<double>(b) * std::log1p(-fill);
}

double bf_size_papapetrou(std::uint64_t ones, std::uint64_t bits, std::uint32_t b) noexcept {
  if (bits == 0 || b == 0) return 0.0;
  const std::uint64_t clamped = (ones == bits) ? ones - 1 : ones;
  const double fill = static_cast<double>(clamped) / static_cast<double>(bits);
  const double denom =
      static_cast<double>(b) * std::log1p(-1.0 / static_cast<double>(bits));
  return std::log1p(-fill) / denom;
}

double bf_intersection_or(double size_x, double size_y, std::uint64_t or_ones,
                          std::uint64_t bits, std::uint32_t b) noexcept {
  if (bits == 0 || b == 0) return 0.0;
  const std::uint64_t clamped = (or_ones == bits) ? or_ones - 1 : or_ones;
  const double fill = static_cast<double>(clamped) / static_cast<double>(bits);
  const double est_union =
      -static_cast<double>(bits) / static_cast<double>(b) * std::log1p(-fill);
  return std::max(0.0, size_x + size_y - est_union);
}

double intersection(const BloomFilter& x, const BloomFilter& y) noexcept {
  return bf_intersection_and(x.view().and_ones(y.view()), x.size_bits(), x.num_hashes());
}

double intersection(const KHashSketch& x, const KHashSketch& y, double size_x,
                    double size_y) noexcept {
  return mh_intersection(x.jaccard(y), size_x, size_y);
}

double intersection(const OneHashSketch& x, const OneHashSketch& y, double size_x,
                    double size_y) noexcept {
  return mh_intersection(x.jaccard(y), size_x, size_y);
}

}  // namespace probgraph::est
