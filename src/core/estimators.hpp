// Cardinality estimators for |X| and |X ∩ Y| (paper §IV).
//
// All estimators are pure functions of sketch statistics (bit counts,
// matching slots, ...) so that they can be unit-tested against closed
// forms and reused by both the owning sketch classes and the arena-backed
// ProbGraph fast paths.
//
// Implemented estimators and their paper references:
//   bf_size_swamidass      Eq. (1)   — −(B/b)·log(1 − B₁/B)          [59]
//   bf_size_papapetrou     §VIII-A   — −log(1 − B₁/B)/(b·log(1−1/B)) [110]
//   bf_intersection_and    Eq. (2)   — Eq. (1) applied to B_X AND B_Y (new)
//   bf_intersection_limit  Eq. (4)   — B_{X∩Y,1}/b, the B→∞ limit     (new)
//   bf_intersection_or     Eq. (29)  — |X|+|Y| + (B/b)·log(1 − B∪₁/B) [59]
//   mh_intersection        Eq. (5)   — Ĵ/(1+Ĵ)·(|X|+|Y|), Ĵ = matches/k
//   (KMV intersection lives in KmvSketch::estimate_intersection, Eq. (41))
#pragma once

#include <cstdint>

#include "core/bloom_filter.hpp"
#include "core/minhash.hpp"

namespace probgraph::est {

/// Eq. (1), with the divergence fix of Appendix C-3: when every bit is set
/// (B₁ = B) the raw estimator diverges, so B₁ is replaced by B₁ − 1.
[[nodiscard]] double bf_size_swamidass(std::uint64_t ones, std::uint64_t bits,
                                       std::uint32_t b) noexcept;

/// The pre-existing BF cardinality estimator of Papapetrou et al. [110],
/// used as a comparison baseline in §VIII-A.
[[nodiscard]] double bf_size_papapetrou(std::uint64_t ones, std::uint64_t bits,
                                        std::uint32_t b) noexcept;

/// Eq. (2): the AND estimator, i.e. Eq. (1) evaluated on popcount(B_X AND B_Y).
[[nodiscard]] inline double bf_intersection_and(std::uint64_t and_ones, std::uint64_t bits,
                                                std::uint32_t b) noexcept {
  return bf_size_swamidass(and_ones, bits, b);
}

/// Eq. (4): the limiting estimator |X∩Y|_L = B_{X∩Y,1}/b.
[[nodiscard]] inline double bf_intersection_limit(std::uint64_t and_ones,
                                                  std::uint32_t b) noexcept {
  return static_cast<double>(and_ones) / static_cast<double>(b);
}

/// Eq. (29): the OR estimator, which needs the exact input sizes.
[[nodiscard]] double bf_intersection_or(double size_x, double size_y, std::uint64_t or_ones,
                                        std::uint64_t bits, std::uint32_t b) noexcept;

/// Eq. (5) (k-hash) and §IV-D (1-hash): from a Jaccard estimate Ĵ and exact
/// input sizes, |X∩Y| = Ĵ/(1+Ĵ)·(|X|+|Y|). Note that J/(1+J) = |X∩Y|/(|X|+|Y|).
[[nodiscard]] inline double mh_intersection(double jaccard_hat, double size_x,
                                            double size_y) noexcept {
  return jaccard_hat / (1.0 + jaccard_hat) * (size_x + size_y);
}

/// Convenience overloads over owning sketches (used by tests/examples; the
/// ProbGraph hot paths inline the arithmetic over arena spans).
[[nodiscard]] double intersection(const BloomFilter& x, const BloomFilter& y) noexcept;
[[nodiscard]] double intersection(const KHashSketch& x, const KHashSketch& y, double size_x,
                                  double size_y) noexcept;
[[nodiscard]] double intersection(const OneHashSketch& x, const OneHashSketch& y,
                                  double size_x, double size_y) noexcept;

}  // namespace probgraph::est
