#include "core/incremental.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/arena_ref.hpp"
#include "util/bitvector.hpp"

namespace probgraph {

DerivedSketchParams derive_sketch_params(const ProbGraphConfig& config, VertexId n,
                                         std::size_t graph_memory_bytes) {
  if (config.storage_budget <= 0.0 && config.bf_bits == 0 && config.minhash_k == 0) {
    throw std::invalid_argument("derive_sketch_params: storage budget must be positive");
  }
  if (n == 0) throw std::invalid_argument("derive_sketch_params: empty graph");

  // Same double math as the ProbGraph constructor, term for term.
  const double base_bytes = config.budget_reference_bytes != 0
                                ? static_cast<double>(config.budget_reference_bytes)
                                : static_cast<double>(graph_memory_bytes);
  const double budget_bytes = config.storage_budget * base_bytes;

  DerivedSketchParams p;
  switch (config.kind) {
    case SketchKind::kBloomFilter: {
      if (config.bf_hashes == 0) {
        throw std::invalid_argument("derive_sketch_params: bf_hashes must be positive");
      }
      std::uint64_t bits = config.bf_bits;
      if (bits == 0) {
        bits = static_cast<std::uint64_t>(budget_bytes * 8.0 / static_cast<double>(n));
      }
      p.bf_bits = std::max<std::uint64_t>(kWordBits, bits / kWordBits * kWordBits);
      p.bf_words_per_vertex = util::words_for_bits(p.bf_bits);
      break;
    }
    case SketchKind::kKHash:
      p.k = config.minhash_k != 0
                ? config.minhash_k
                : std::max<std::uint32_t>(
                      1, static_cast<std::uint32_t>(
                             budget_bytes / (static_cast<double>(n) * sizeof(std::uint64_t))));
      break;
    case SketchKind::kOneHash:
      p.k = config.minhash_k != 0
                ? config.minhash_k
                : std::max<std::uint32_t>(
                      1, static_cast<std::uint32_t>(
                             budget_bytes / (static_cast<double>(n) * sizeof(BottomKEntry))));
      break;
    case SketchKind::kKmv:
      p.k = config.minhash_k != 0
                ? config.minhash_k
                : std::max<std::uint32_t>(
                      2, static_cast<std::uint32_t>(
                             budget_bytes / (static_cast<double>(n) * sizeof(double))));
      p.k = std::max<std::uint32_t>(2, p.k);
      break;
  }
  return p;
}

DerivedSketchParams sketch_params_of(const ProbGraph& pg) noexcept {
  DerivedSketchParams p;
  p.bf_bits = pg.bf_bits();
  p.bf_words_per_vertex = util::words_for_bits(pg.bf_bits());
  if (pg.kind() != SketchKind::kBloomFilter) p.bf_words_per_vertex = 0;
  p.k = pg.minhash_k();
  return p;
}

SketchUpdater::SketchUpdater(const ProbGraph& base, VertexId new_n)
    : kind_(base.kind()),
      family_(base.config().seed),
      bf_hashes_(base.config().bf_hashes),
      params_(sketch_params_of(base)),
      n_(new_n) {
  const auto old_n = static_cast<std::size_t>(base.graph().num_vertices());
  const auto n = static_cast<std::size_t>(new_n);
  if (n < old_n) {
    throw std::invalid_argument("SketchUpdater: vertex count cannot shrink");
  }
  // Copy the base arenas (possibly mmap-backed) into owned storage, with
  // the tail for new vertices initialized to the empty-sketch state the
  // cold build paths start from.
  switch (kind_) {
    case SketchKind::kBloomFilter: {
      const auto old = base.bf_arena();
      bf_.assign(n * params_.bf_words_per_vertex, 0);
      std::copy(old.begin(), old.end(), bf_.begin());
      break;
    }
    case SketchKind::kKHash: {
      const auto old = base.kh_arena();
      kh_.assign(n * params_.k, kEmptySlot);
      std::copy(old.begin(), old.end(), kh_.begin());
      break;
    }
    case SketchKind::kOneHash: {
      const auto old = base.oh_arena();
      oh_.assign(n * params_.k, BottomKEntry{~std::uint64_t{0}, 0});
      std::copy(old.begin(), old.end(), oh_.begin());
      sizes_.assign(n, 0);
      const auto old_sizes = base.sketch_sizes();
      std::copy(old_sizes.begin(), old_sizes.end(), sizes_.begin());
      break;
    }
    case SketchKind::kKmv: {
      const auto old = base.kmv_arena();
      kmv_.assign(n * params_.k, 2.0);
      std::copy(old.begin(), old.end(), kmv_.begin());
      sizes_.assign(n, 0);
      const auto old_sizes = base.sketch_sizes();
      std::copy(old_sizes.begin(), old_sizes.end(), sizes_.begin());
      break;
    }
  }
}

void SketchUpdater::reset_vertex(VertexId v) {
  assert(v < n_);
  switch (kind_) {
    case SketchKind::kBloomFilter:
      std::fill_n(bf_.begin() + static_cast<std::size_t>(v) * params_.bf_words_per_vertex,
                  params_.bf_words_per_vertex, std::uint64_t{0});
      break;
    case SketchKind::kKHash:
      std::fill_n(kh_.begin() + static_cast<std::size_t>(v) * params_.k, params_.k, kEmptySlot);
      break;
    case SketchKind::kOneHash:
      std::fill_n(oh_.begin() + static_cast<std::size_t>(v) * params_.k, params_.k,
                  BottomKEntry{~std::uint64_t{0}, 0});
      sizes_[v] = 0;
      break;
    case SketchKind::kKmv:
      std::fill_n(kmv_.begin() + static_cast<std::size_t>(v) * params_.k, params_.k, 2.0);
      sizes_[v] = 0;
      break;
  }
}

void SketchUpdater::apply_insert(VertexId v, VertexId x) {
  assert(v < n_);
  switch (kind_) {
    case SketchKind::kBloomFilter: {
      std::uint64_t* words =
          bf_.data() + static_cast<std::size_t>(v) * params_.bf_words_per_vertex;
      for (std::uint32_t i = 0; i < bf_hashes_; ++i) {
        const std::uint64_t pos = family_(i, x) % params_.bf_bits;
        words[pos / kWordBits] |= (std::uint64_t{1} << (pos % kWordBits));
      }
      break;
    }
    case SketchKind::kKHash: {
      // Slot i holds the argmin vertex; the incumbent's hash is recomputed
      // on demand (kEmptySlot never collides with a 32-bit vertex id).
      // Strict < replicates the cold build: an incoming h == ~0 never
      // claims an empty slot there either.
      std::uint64_t* slots = kh_.data() + static_cast<std::size_t>(v) * params_.k;
      for (std::uint32_t i = 0; i < params_.k; ++i) {
        const std::uint64_t h = family_(i, x);
        const std::uint64_t best = slots[i] == kEmptySlot ? ~std::uint64_t{0}
                                                          : family_(i, slots[i]);
        if (h < best) slots[i] = x;
      }
      break;
    }
    case SketchKind::kOneHash: {
      // Maintain the sorted bottom-k directly (the cold build heaps then
      // sorts; the unique set of k smallest entries is order-independent,
      // so sorted insertion lands on the identical arena).
      BottomKEntry* entries = oh_.data() + static_cast<std::size_t>(v) * params_.k;
      const std::uint32_t fill = sizes_[v];
      const BottomKEntry e{family_(0, x), x};
      if (fill < params_.k) {
        BottomKEntry* pos = std::upper_bound(entries, entries + fill, e);
        std::move_backward(pos, entries + fill, entries + fill + 1);
        *pos = e;
        sizes_[v] = fill + 1;
      } else if (e < entries[fill - 1]) {
        BottomKEntry* pos = std::upper_bound(entries, entries + fill - 1, e);
        std::move_backward(pos, entries + fill - 1, entries + fill);
        *pos = e;
      }
      break;
    }
    case SketchKind::kKmv: {
      double* values = kmv_.data() + static_cast<std::size_t>(v) * params_.k;
      const std::uint32_t fill = sizes_[v];
      const double h = util::hash_to_unit(family_(0, x));
      if (fill < params_.k) {
        double* pos = std::upper_bound(values, values + fill, h);
        std::move_backward(pos, values + fill, values + fill + 1);
        *pos = h;
        sizes_[v] = fill + 1;
      } else if (h < values[fill - 1]) {
        // Strict <, like the cold build's heap-max test: at a tie the
        // incumbent stays (equal doubles are interchangeable anyway).
        double* pos = std::upper_bound(values, values + fill - 1, h);
        std::move_backward(pos, values + fill - 1, values + fill);
        *pos = h;
      }
      break;
    }
  }
}

void SketchUpdater::rebuild_vertex(VertexId v, std::span<const VertexId> neighbors) {
  reset_vertex(v);
  for (const VertexId x : neighbors) apply_insert(v, x);
}

ProbGraph SketchUpdater::seal(const CsrGraph& g, ProbGraphConfig config,
                              double construction_seconds) && {
  ProbGraphParts parts;
  parts.config = config;
  parts.construction_seconds = construction_seconds;
  switch (kind_) {
    case SketchKind::kBloomFilter:
      parts.bf_bits = params_.bf_bits;
      parts.bf_words_per_vertex = params_.bf_words_per_vertex;
      parts.bf_arena = util::ArenaRef<std::uint64_t>(std::move(bf_));
      break;
    case SketchKind::kKHash:
      parts.minhash_k = params_.k;
      parts.kh_arena = util::ArenaRef<std::uint64_t>(std::move(kh_));
      break;
    case SketchKind::kOneHash:
      parts.minhash_k = params_.k;
      parts.oh_arena = util::ArenaRef<BottomKEntry>(std::move(oh_));
      parts.sketch_sizes = util::ArenaRef<std::uint32_t>(std::move(sizes_));
      break;
    case SketchKind::kKmv:
      parts.minhash_k = params_.k;
      parts.kmv_arena = util::ArenaRef<double>(std::move(kmv_));
      parts.sketch_sizes = util::ArenaRef<std::uint32_t>(std::move(sizes_));
      break;
  }
  return ProbGraph::from_parts(g, std::move(parts));
}

}  // namespace probgraph
