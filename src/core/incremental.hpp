// Incremental sketch maintenance: the per-kind apply_insert paths that the
// live-update subsystem (src/live/) uses to patch a substrate in place of a
// full rebuild.
//
// Every ProbGraph sketch is monotone-mergeable under edge insertion — the
// property the paper exploits for synchronization-free parallel
// construction (Table V) also makes each per-vertex sketch an
// order-independent fold over its neighbor set:
//
//   * Bloom filter — inserting x ORs b bits; OR is commutative/idempotent.
//   * k-hash MinHash — slot i holds the argmin vertex of h_i over the
//     neighborhood. The hash family is fmix64-based and bijective per
//     member, so distinct vertices never tie and the strict-< min is
//     order-independent.
//   * 1-hash bottom-k — the unique set of k smallest (hash, vertex)
//     entries under the total BottomKEntry order.
//   * KMV — the multiset of k smallest unit-interval hashes; equal doubles
//     are interchangeable, so the sorted arena is order-independent too.
//
// Consequence (pinned by tests/test_live.cpp): starting from any base
// sketch state, apply_insert for each new neighbor — or reset_vertex +
// apply_insert over the full new neighborhood — produces arenas
// BIT-IDENTICAL to a cold ProbGraph build of the updated graph, provided
// the derived parameters (BF width, k) are unchanged. derive_sketch_params
// exposes the cold constructor's parameter derivation so callers can check
// that precondition and fall back to a cold rebuild when the budget-driven
// parameters shift.
//
// SketchUpdater is single-threaded and works on a private copy-on-write
// image of the base arenas; the base ProbGraph (typically mmap-backed,
// being served concurrently) is never touched.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/minhash.hpp"
#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"
#include "util/hash.hpp"
#include "util/types.hpp"

namespace probgraph {

/// The parameters the ProbGraph constructor derives from a config and a
/// graph: per-vertex BF width (bits/words) or MinHash/KMV k.
struct DerivedSketchParams {
  std::uint64_t bf_bits = 0;
  std::size_t bf_words_per_vertex = 0;
  std::uint32_t k = 0;

  friend bool operator==(const DerivedSketchParams&, const DerivedSketchParams&) = default;
};

/// Replicates the cold-constructor derivation exactly (same double math,
/// same rounding) for a graph with `n` vertices and `graph_memory_bytes`
/// CSR bytes. Throws std::invalid_argument on the same invalid configs the
/// constructor rejects (empty graph, non-positive budget, b == 0).
[[nodiscard]] DerivedSketchParams derive_sketch_params(const ProbGraphConfig& config,
                                                       VertexId n,
                                                       std::size_t graph_memory_bytes);

/// The current derived parameters of a built ProbGraph.
[[nodiscard]] DerivedSketchParams sketch_params_of(const ProbGraph& pg) noexcept;

/// A mutable shadow image of one substrate's arenas, supporting per-vertex
/// incremental maintenance. Typical lifecycle:
///
///   SketchUpdater up(base_pg, new_num_vertices);
///   up.apply_insert(v, x);                 // x joined N(v), v untouched otherwise
///   up.rebuild_vertex(v, new_neighbors);   // N(v) changed arbitrarily
///   ProbGraph fresh = std::move(up).seal(new_graph, new_config);
///
/// The caller must not apply_insert a vertex that is already a neighbor
/// (the live layer diffs old vs new sorted adjacency, so it never does);
/// a duplicate insert would double-count a 1-hash/KMV entry.
class SketchUpdater {
 public:
  /// Copy `base`'s arenas into owned storage sized for `new_n` vertices
  /// (new vertices start with empty sketches). new_n >= base vertex count.
  SketchUpdater(const ProbGraph& base, VertexId new_n);

  /// Reset vertex v's sketch to the empty state.
  void reset_vertex(VertexId v);

  /// Fold new neighbor x into vertex v's sketch.
  void apply_insert(VertexId v, VertexId x);

  /// reset_vertex + apply_insert over `neighbors` — the fallback when a
  /// neighborhood shrank or changed non-monotonically.
  void rebuild_vertex(VertexId v, std::span<const VertexId> neighbors);

  /// Finish: hand the patched arenas to ProbGraph::from_parts over the new
  /// graph. `config` is the config the sealed substrate should carry
  /// (budget_reference_bytes may differ from the base for DAG substrates);
  /// it must derive the same parameters this updater was built with, or
  /// from_parts rejects the arenas. construction_seconds records the
  /// caller-measured patch time.
  [[nodiscard]] ProbGraph seal(const CsrGraph& g, ProbGraphConfig config,
                               double construction_seconds) &&;

  [[nodiscard]] SketchKind kind() const noexcept { return kind_; }
  [[nodiscard]] const DerivedSketchParams& params() const noexcept { return params_; }

 private:
  SketchKind kind_;
  util::HashFamily family_;
  std::uint32_t bf_hashes_ = 0;
  DerivedSketchParams params_;
  VertexId n_ = 0;

  // Only the vectors for kind_ are populated (mirroring the cold build,
  // which leaves the other arenas empty).
  std::vector<std::uint64_t> bf_;
  std::vector<std::uint64_t> kh_;
  std::vector<BottomKEntry> oh_;
  std::vector<double> kmv_;
  std::vector<std::uint32_t> sizes_;
};

}  // namespace probgraph
