// Exact set-intersection cardinality primitives (Fig. 1 panel 2) — thin
// facade over the kernel layer (src/core/kernels/), which owns the tuned
// implementations at every SIMD level.
//
// The two classic variants the exact baselines use:
//   * merge     — simultaneous scan of two sorted arrays, O(|X| + |Y|);
//                 best when the sets have similar sizes,
//   * galloping — for each element of the smaller set, exponential +
//                 binary search in the larger, O(|X| log |Y|); best when
//                 the sizes differ by a large factor.
// `intersect_size_adaptive` and `intersect_into` pick between them with
// the standard size-ratio heuristic (what the GMS/GAP baselines do) and
// dispatch to the active SIMD level; `intersect_size_merge` /
// `intersect_size_gallop` name the variants explicitly (also dispatched)
// for the callers and benches that select a kernel by hand.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/kernels/kernels.hpp"
#include "util/types.hpp"

namespace probgraph {

/// Merge-based |X ∩ Y| over sorted spans.
[[nodiscard]] inline std::uint64_t intersect_size_merge(std::span<const VertexId> x,
                                                        std::span<const VertexId> y) noexcept {
  return kernels::intersect_count_merge(x, y);
}

/// Galloping (exponential + binary search) |X ∩ Y|; `x` should be the
/// smaller span.
[[nodiscard]] inline std::uint64_t intersect_size_gallop(std::span<const VertexId> x,
                                                         std::span<const VertexId> y) noexcept {
  return kernels::intersect_count_gallop(x, y);
}

/// Size-ratio dispatch between merge and galloping (galloping wins once
/// |Y| >> |X| log |X|; see kernels::kGallopCrossover).
[[nodiscard]] inline std::uint64_t intersect_size_adaptive(std::span<const VertexId> x,
                                                           std::span<const VertexId> y) noexcept {
  return kernels::intersect_count(x, y);
}

/// Materializing intersection (needed by exact 4-clique counting, which
/// iterates over the elements of C3 = N+u ∩ N+v). Appends to `out`,
/// ascending. Uses the same size-ratio heuristic as
/// `intersect_size_adaptive`, so skewed pairs gallop instead of paying
/// the full O(|X| + |Y|) merge.
inline void intersect_into(std::span<const VertexId> x, std::span<const VertexId> y,
                           std::vector<VertexId>& out) {
  kernels::intersect_into(x, y, out);
}

}  // namespace probgraph
