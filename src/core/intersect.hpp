// Exact set-intersection cardinality kernels (Fig. 1 panel 2).
//
// The tuned exact baselines use the two classic variants:
//   * merge     — simultaneous scan of two sorted arrays, O(|X| + |Y|);
//                 best when the sets have similar sizes,
//   * galloping — for each element of the smaller set, exponential +
//                 binary search in the larger, O(|X| log |Y|); best when
//                 the sizes differ by a large factor.
// `intersect_size_adaptive` picks between them with the standard size-ratio
// heuristic, which is what the GMS/GAP baselines do.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace probgraph {

/// Merge-based |X ∩ Y| over sorted spans.
[[nodiscard]] inline std::uint64_t intersect_size_merge(std::span<const VertexId> x,
                                                        std::span<const VertexId> y) noexcept {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i] < y[j]) {
      ++i;
    } else if (y[j] < x[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Galloping (exponential + binary search) |X ∩ Y|; `x` should be the
/// smaller span.
[[nodiscard]] inline std::uint64_t intersect_size_gallop(std::span<const VertexId> x,
                                                         std::span<const VertexId> y) noexcept {
  if (x.size() > y.size()) return intersect_size_gallop(y, x);
  std::uint64_t count = 0;
  std::size_t lo = 0;
  for (const VertexId v : x) {
    // Exponential probe from the last found position.
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < y.size() && y[hi] < v) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    hi = std::min(hi, y.size());
    const auto it = std::lower_bound(y.begin() + static_cast<std::ptrdiff_t>(lo),
                                     y.begin() + static_cast<std::ptrdiff_t>(hi), v);
    lo = static_cast<std::size_t>(it - y.begin());
    if (lo < y.size() && y[lo] == v) {
      ++count;
      ++lo;
    }
  }
  return count;
}

/// Size-ratio dispatch between merge and galloping. The crossover factor 32
/// is the usual rule of thumb (galloping wins once |Y| >> |X| log |X|).
[[nodiscard]] inline std::uint64_t intersect_size_adaptive(std::span<const VertexId> x,
                                                           std::span<const VertexId> y) noexcept {
  const std::size_t small = std::min(x.size(), y.size());
  const std::size_t large = std::max(x.size(), y.size());
  if (small == 0) return 0;
  return (large / small >= 32) ? intersect_size_gallop(x, y) : intersect_size_merge(x, y);
}

/// Materializing merge intersection (needed by exact 4-clique counting,
/// which iterates over the elements of C3 = N+u ∩ N+v). Appends to `out`.
inline void intersect_into(std::span<const VertexId> x, std::span<const VertexId> y,
                           std::vector<VertexId>& out) {
  std::size_t i = 0, j = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i] < y[j]) {
      ++i;
    } else if (y[j] < x[i]) {
      ++j;
    } else {
      out.push_back(x[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace probgraph
