// Internal: per-ISA kernel tables, one per SIMD translation unit. Each
// accessor is DEFINED only when its TU was compiled with the matching ISA
// flags (the TUs compile to empty otherwise), and REFERENCED only behind
// the PROBGRAPH_HAVE_* macro CMake defines alongside those flags — so a
// build never links against a table it did not compile.
#pragma once

#include "core/kernels/kernels.hpp"

namespace probgraph::kernels::detail {

const KernelTable& avx2_table() noexcept;
const KernelTable& avx512_table() noexcept;
const KernelTable& neon_table() noexcept;

}  // namespace probgraph::kernels::detail
