// Kernel dispatch: assemble the function table for the best SIMD level
// the build compiled in AND the running CPU supports, capped by the
// PROBGRAPH_KERNELS environment variable. Resolved exactly once.
//
// The SIMD TUs (kernels_avx2.cpp, kernels_avx512.cpp, kernels_neon.cpp)
// are compiled with per-file ISA flags and guarded so they compile to
// empty TUs when the flags are absent; this TU references their tables
// only behind the matching PROBGRAPH_HAVE_* macros, which CMake defines
// exactly when it added the flags. Nothing here executes an instruction
// the CPU did not report via cpuid.
#include "core/kernels/kernels.hpp"

#include <cstdlib>
#include <cstring>

#include "core/kernels/kernel_tables.hpp"

namespace probgraph::kernels {

namespace detail {

namespace {

// Raw-pointer adapters over the scalar reference implementations.
std::uint64_t s_icm(const VertexId* x, std::size_t nx, const VertexId* y,
                    std::size_t ny) noexcept {
  return scalar::intersect_count_merge({x, nx}, {y, ny});
}
std::uint64_t s_icg(const VertexId* x, std::size_t nx, const VertexId* y,
                    std::size_t ny) noexcept {
  return scalar::intersect_count_gallop({x, nx}, {y, ny});
}
void s_iim(const VertexId* x, std::size_t nx, const VertexId* y, std::size_t ny,
           std::vector<VertexId>& out) {
  scalar::intersect_into_merge({x, nx}, {y, ny}, out);
}
void s_iig(const VertexId* x, std::size_t nx, const VertexId* y, std::size_t ny,
           std::vector<VertexId>& out) {
  scalar::intersect_into_gallop({x, nx}, {y, ny}, out);
}

constexpr KernelTable kScalarTable = {
    s_icm,
    s_icg,
    s_iim,
    s_iig,
    scalar::and_popcount,
    scalar::or_popcount,
    scalar::and3_popcount,
    scalar::popcount,
    scalar::match_count_u64,
};

/// The PROBGRAPH_KERNELS cap: "scalar" forces the portable path,
/// "avx2"/"avx512"/"neon" cap the auto-detected level at that tier (the
/// CPU check still applies — asking for a level the CPU lacks falls back).
Level level_cap() noexcept {
  const char* env = std::getenv("PROBGRAPH_KERNELS");
  if (env == nullptr || std::strcmp(env, "auto") == 0 || env[0] == '\0') {
    return Level::kAvx512;  // highest tier == no cap
  }
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "neon") == 0) return Level::kNeon;
  if (std::strcmp(env, "avx2") == 0) return Level::kAvx2;
  if (std::strcmp(env, "avx512") == 0) return Level::kAvx512;
  return Level::kAvx512;  // unknown value: ignore, auto-detect
}

struct Resolved {
  KernelTable table;
  Level level;
};

Resolved resolve() noexcept {
  Resolved r{kScalarTable, Level::kScalar};
  // Unused in a scalar-only build (PROBGRAPH_SIMD=OFF compiles no tables
  // to cap).
  [[maybe_unused]] const Level cap = level_cap();
#if defined(PROBGRAPH_HAVE_AVX2)
  if (cap >= Level::kAvx2 && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("popcnt")) {
    // AVX2 overrides: sorted merge intersection + popcount family + slot
    // match. Galloping stays scalar on every level — the vectorized window
    // scan measured slower than the branch-predictable binary search (see
    // kernels_avx2.cpp).
    r.table.intersect_count_merge = avx2_table().intersect_count_merge;
    r.table.intersect_into_merge = avx2_table().intersect_into_merge;
    r.table.and_popcount = avx2_table().and_popcount;
    r.table.or_popcount = avx2_table().or_popcount;
    r.table.and3_popcount = avx2_table().and3_popcount;
    r.table.popcount = avx2_table().popcount;
    r.table.match_count_u64 = avx2_table().match_count_u64;
    r.level = Level::kAvx2;
  }
#endif
#if defined(PROBGRAPH_HAVE_AVX512)
  if (cap >= Level::kAvx512 && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vpopcntdq") && __builtin_cpu_supports("avx512bw")) {
    // AVX512 overrides only the popcount family (VPOPCNTDQ counts eight
    // words per instruction); the shuffle-based intersection stays AVX2.
    r.table.and_popcount = avx512_table().and_popcount;
    r.table.or_popcount = avx512_table().or_popcount;
    r.table.and3_popcount = avx512_table().and3_popcount;
    r.table.popcount = avx512_table().popcount;
    r.level = Level::kAvx512;
  }
#endif
#if defined(PROBGRAPH_HAVE_NEON)
  if (cap >= Level::kNeon) {
    // NEON is baseline on AArch64 — no cpuid gate needed. Popcount family
    // and slot match are vectorized; sorted intersection stays scalar
    // (documented fallback).
    r.table.and_popcount = neon_table().and_popcount;
    r.table.or_popcount = neon_table().or_popcount;
    r.table.and3_popcount = neon_table().and3_popcount;
    r.table.popcount = neon_table().popcount;
    r.table.match_count_u64 = neon_table().match_count_u64;
    r.level = Level::kNeon;
  }
#endif
  return r;
}

const Resolved& resolved() noexcept {
  static const Resolved r = resolve();
  return r;
}

}  // namespace

const KernelTable& table() noexcept { return resolved().table; }

}  // namespace detail

Level active_level() noexcept { return detail::resolved().level; }

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kNeon: return "neon";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "unknown";
}

}  // namespace probgraph::kernels
