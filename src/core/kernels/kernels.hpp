// SISA-style set-operation kernel layer: the vectorized hot core under
// every ProbGraph estimator.
//
// Every estimator and every exact baseline bottoms out in a handful of
// set-centric primitives — SISA's operation taxonomy (intersection /
// membership / cardinality) made concrete for our three representations:
//
//   sorted CSR neighborhoods   intersect_count / intersect_into
//   Bloom-filter bit vectors   and_popcount / or_popcount / and3_popcount
//   MinHash / KMV k-entry rows match_count_u64 / min_merge
//
// plus *batched* variants (`*_batch`) that evaluate one base operand
// against many candidates in a cache-blocked sweep — the shape presented
// by batched PairEstimate, LinkPredict top-k, and the per-vertex neighbor
// loops of the clique kernels, where the base row stays pinned in L1
// while candidates stream.
//
// Dispatch: implementations exist at several SIMD levels — portable
// scalar (this header, `kernels::scalar`), AVX2, AVX512 (popcount family
// via VPOPCNTDQ), and NEON — compiled into separate TUs with per-file
// ISA flags (see CMake option PROBGRAPH_SIMD) and selected ONCE at
// startup from cpuid. The environment variable PROBGRAPH_KERNELS
// (scalar|avx2|avx512|neon|auto) caps the level at runtime, so any
// binary can be forced onto the portable path for debugging or A/B
// measurement without a rebuild.
//
// Bit-identity contract: all dispatched kernels are integer kernels —
// counts of matches or of set bits — so every SIMD level returns results
// bit-identical to scalar. Floating-point kernels (min_merge, used by the
// KMV union merge) are deliberately NOT vectorized: their comparison
// order is part of the estimator definition, and the golden fixtures pin
// it. The dispatch indirection costs one predicted indirect call per
// kernel invocation, the same price as the previous out-of-line calls in
// util/bitvector.cpp.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

// Optional per-kernel observability (PROBGRAPH_OBS, default ON): each
// dispatched wrapper below tallies one invocation plus its input size
// into the lock-free sharded counters of obs/kernel_metrics.hpp, scraped
// by the metrics registry. With PROBGRAPH_OBS=OFF the macros expand to
// nothing and the wrappers compile exactly as before — zero cost, not
// just a cheap branch. The macro is PUBLIC in CMake so every TU agrees
// on the inline wrappers' bodies (ODR).
#if defined(PROBGRAPH_OBS) && PROBGRAPH_OBS
#include "obs/kernel_metrics.hpp"
#define PROBGRAPH_OBS_KERNEL(op, elems) \
  ::probgraph::obs::record_kernel(::probgraph::obs::KernelOp::op, (elems))
#define PROBGRAPH_OBS_KERNEL_BATCH(op, calls, elems)                         \
  ::probgraph::obs::record_kernel_batch(::probgraph::obs::KernelOp::op,      \
                                        (calls), (elems))
#else
#define PROBGRAPH_OBS_KERNEL(op, elems) ((void)0)
#define PROBGRAPH_OBS_KERNEL_BATCH(op, calls, elems) ((void)0)
#endif

namespace probgraph::kernels {

/// SIMD level of a kernel implementation set, in increasing capability
/// order on each architecture. Levels above kScalar exist only when the
/// build compiled them (PROBGRAPH_SIMD=ON + compiler support) AND the
/// running CPU reports the feature.
enum class Level : std::uint8_t { kScalar = 0, kNeon, kAvx2, kAvx512 };

/// The level resolved at startup (cpuid ∧ compiled-in ∧ PROBGRAPH_KERNELS
/// cap). Stable for the lifetime of the process.
[[nodiscard]] Level active_level() noexcept;

/// Human-readable name ("scalar", "avx2", ...), for logs and benches.
[[nodiscard]] const char* level_name(Level level) noexcept;

// ---------------------------------------------------------------------------
// Portable scalar reference implementations. These are the tuned GMS/GAP-
// style baselines (moved verbatim from core/intersect.hpp and
// util/bitvector.cpp); every SIMD level must match them bit for bit, and
// the differential tests in tests/test_kernels.cpp enforce it.
// ---------------------------------------------------------------------------

namespace scalar {

/// Merge-based |X ∩ Y| over sorted duplicate-free spans: O(|X| + |Y|).
[[nodiscard]] inline std::uint64_t intersect_count_merge(
    std::span<const VertexId> x, std::span<const VertexId> y) noexcept {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i] < y[j]) {
      ++i;
    } else if (y[j] < x[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Galloping (exponential + binary search) |X ∩ Y|: O(|X| log |Y|); `x`
/// should be the smaller span (swapped internally if not).
[[nodiscard]] inline std::uint64_t intersect_count_gallop(
    std::span<const VertexId> x, std::span<const VertexId> y) noexcept {
  if (x.size() > y.size()) return intersect_count_gallop(y, x);
  std::uint64_t count = 0;
  std::size_t lo = 0;
  for (const VertexId v : x) {
    // Exponential probe from the last found position.
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < y.size() && y[hi] < v) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    hi = std::min(hi, y.size());
    const auto it = std::lower_bound(y.begin() + static_cast<std::ptrdiff_t>(lo),
                                     y.begin() + static_cast<std::ptrdiff_t>(hi), v);
    lo = static_cast<std::size_t>(it - y.begin());
    if (lo < y.size() && y[lo] == v) {
      ++count;
      ++lo;
    }
  }
  return count;
}

/// Materializing merge intersection: appends X ∩ Y (ascending) to `out`.
inline void intersect_into_merge(std::span<const VertexId> x, std::span<const VertexId> y,
                                 std::vector<VertexId>& out) {
  std::size_t i = 0, j = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i] < y[j]) {
      ++i;
    } else if (y[j] < x[i]) {
      ++j;
    } else {
      out.push_back(x[i]);
      ++i;
      ++j;
    }
  }
}

/// Materializing galloping intersection; `x` should be the smaller span
/// (swapped internally if not — the output is the same ascending X ∩ Y
/// either way).
inline void intersect_into_gallop(std::span<const VertexId> x, std::span<const VertexId> y,
                                  std::vector<VertexId>& out) {
  if (x.size() > y.size()) return intersect_into_gallop(y, x, out);
  std::size_t lo = 0;
  for (const VertexId v : x) {
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < y.size() && y[hi] < v) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    hi = std::min(hi, y.size());
    const auto it = std::lower_bound(y.begin() + static_cast<std::ptrdiff_t>(lo),
                                     y.begin() + static_cast<std::ptrdiff_t>(hi), v);
    lo = static_cast<std::size_t>(it - y.begin());
    if (lo < y.size() && y[lo] == v) {
      out.push_back(v);
      ++lo;
    }
  }
}

/// Popcount of the bitwise AND of two equal-length word spans, 4-way
/// unrolled to keep independent popcnt chains in flight.
[[nodiscard]] inline std::uint64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                                std::size_t n) noexcept {
  std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
    c1 += static_cast<std::uint64_t>(std::popcount(a[i + 1] & b[i + 1]));
    c2 += static_cast<std::uint64_t>(std::popcount(a[i + 2] & b[i + 2]));
    c3 += static_cast<std::uint64_t>(std::popcount(a[i + 3] & b[i + 3]));
  }
  for (; i < n; ++i) c0 += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  return c0 + c1 + c2 + c3;
}

/// Popcount of the bitwise OR of two equal-length word spans.
[[nodiscard]] inline std::uint64_t or_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                               std::size_t n) noexcept {
  std::uint64_t c0 = 0, c1 = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[i] | b[i]));
    c1 += static_cast<std::uint64_t>(std::popcount(a[i + 1] | b[i + 1]));
  }
  for (; i < n; ++i) c0 += static_cast<std::uint64_t>(std::popcount(a[i] | b[i]));
  return c0 + c1;
}

/// Popcount of the three-way AND (the chained BF 4-clique statistic).
[[nodiscard]] inline std::uint64_t and3_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                                 const std::uint64_t* c,
                                                 std::size_t n) noexcept {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::uint64_t>(std::popcount(a[i] & b[i] & c[i]));
  }
  return acc;
}

/// Plain popcount over a word span.
[[nodiscard]] inline std::uint64_t popcount(const std::uint64_t* w, std::size_t n) noexcept {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<std::uint64_t>(std::popcount(w[i]));
  return acc;
}

/// #slot-wise matches between two u64 rows, skipping `empty` slots in `a`
/// — the k-hash MinHash |M_X ∩ M_Y| scan (Eq. (5)); compares the common
/// prefix of the two rows.
[[nodiscard]] inline std::uint32_t match_count_u64(const std::uint64_t* a,
                                                   const std::uint64_t* b, std::size_t n,
                                                   std::uint64_t empty) noexcept {
  std::uint32_t matches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    matches += (a[i] != empty && a[i] == b[i]) ? 1U : 0U;
  }
  return matches;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatched entry points: resolved to the active level's implementation
// through a function table filled once at startup. Use these on hot paths.
// ---------------------------------------------------------------------------

namespace detail {

struct KernelTable {
  std::uint64_t (*intersect_count_merge)(const VertexId*, std::size_t, const VertexId*,
                                         std::size_t) noexcept;
  std::uint64_t (*intersect_count_gallop)(const VertexId*, std::size_t, const VertexId*,
                                          std::size_t) noexcept;
  void (*intersect_into_merge)(const VertexId*, std::size_t, const VertexId*, std::size_t,
                               std::vector<VertexId>&);
  void (*intersect_into_gallop)(const VertexId*, std::size_t, const VertexId*, std::size_t,
                                std::vector<VertexId>&);
  std::uint64_t (*and_popcount)(const std::uint64_t*, const std::uint64_t*,
                                std::size_t) noexcept;
  std::uint64_t (*or_popcount)(const std::uint64_t*, const std::uint64_t*,
                               std::size_t) noexcept;
  std::uint64_t (*and3_popcount)(const std::uint64_t*, const std::uint64_t*,
                                 const std::uint64_t*, std::size_t) noexcept;
  std::uint64_t (*popcount)(const std::uint64_t*, std::size_t) noexcept;
  std::uint32_t (*match_count_u64)(const std::uint64_t*, const std::uint64_t*, std::size_t,
                                   std::uint64_t) noexcept;
};

/// The table for the active level (initialized on first use, before main's
/// first query; thread-safe via static-local init).
[[nodiscard]] const KernelTable& table() noexcept;

}  // namespace detail

/// The size-ratio crossover between merge and galloping: galloping wins
/// once |Y| >> |X| log |X|; 32 is the usual GMS/GAP rule of thumb.
inline constexpr std::size_t kGallopCrossover = 32;

[[nodiscard]] inline bool prefer_gallop(std::size_t nx, std::size_t ny) noexcept {
  const std::size_t small = std::min(nx, ny);
  const std::size_t large = std::max(nx, ny);
  return small != 0 && large / small >= kGallopCrossover;
}

/// |X ∩ Y| over sorted duplicate-free spans, merge variant.
[[nodiscard]] inline std::uint64_t intersect_count_merge(std::span<const VertexId> x,
                                                         std::span<const VertexId> y) noexcept {
  PROBGRAPH_OBS_KERNEL(kIntersectCountMerge, x.size() + y.size());
  return detail::table().intersect_count_merge(x.data(), x.size(), y.data(), y.size());
}

/// |X ∩ Y|, galloping variant.
[[nodiscard]] inline std::uint64_t intersect_count_gallop(std::span<const VertexId> x,
                                                          std::span<const VertexId> y) noexcept {
  PROBGRAPH_OBS_KERNEL(kIntersectCountGallop, x.size() + y.size());
  return detail::table().intersect_count_gallop(x.data(), x.size(), y.data(), y.size());
}

/// |X ∩ Y| with the standard size-ratio dispatch between merge and
/// galloping (SISA "intersection → cardinality").
[[nodiscard]] inline std::uint64_t intersect_count(std::span<const VertexId> x,
                                                   std::span<const VertexId> y) noexcept {
  if (x.empty() || y.empty()) return 0;
  return prefer_gallop(x.size(), y.size()) ? intersect_count_gallop(x, y)
                                           : intersect_count_merge(x, y);
}

/// Materializing X ∩ Y (appended to `out`, ascending), with the same
/// size-ratio heuristic as `intersect_count` — skewed pairs gallop instead
/// of paying the O(|X| + |Y|) merge.
inline void intersect_into(std::span<const VertexId> x, std::span<const VertexId> y,
                           std::vector<VertexId>& out) {
  if (x.empty() || y.empty()) return;
  if (prefer_gallop(x.size(), y.size())) {
    PROBGRAPH_OBS_KERNEL(kIntersectIntoGallop, x.size() + y.size());
    detail::table().intersect_into_gallop(x.data(), x.size(), y.data(), y.size(), out);
  } else {
    PROBGRAPH_OBS_KERNEL(kIntersectIntoMerge, x.size() + y.size());
    detail::table().intersect_into_merge(x.data(), x.size(), y.data(), y.size(), out);
  }
}

/// popcount(A AND B) over equal-length word spans (SISA "intersection +
/// cardinality" on the bit-vector representation).
[[nodiscard]] inline std::uint64_t and_popcount(std::span<const std::uint64_t> a,
                                                std::span<const std::uint64_t> b) noexcept {
  PROBGRAPH_OBS_KERNEL(kAndPopcount, std::min(a.size(), b.size()));
  return detail::table().and_popcount(a.data(), b.data(), std::min(a.size(), b.size()));
}

/// popcount(A OR B) over equal-length word spans.
[[nodiscard]] inline std::uint64_t or_popcount(std::span<const std::uint64_t> a,
                                               std::span<const std::uint64_t> b) noexcept {
  PROBGRAPH_OBS_KERNEL(kOrPopcount, std::min(a.size(), b.size()));
  return detail::table().or_popcount(a.data(), b.data(), std::min(a.size(), b.size()));
}

/// popcount(A AND B AND C).
[[nodiscard]] inline std::uint64_t and3_popcount(std::span<const std::uint64_t> a,
                                                 std::span<const std::uint64_t> b,
                                                 std::span<const std::uint64_t> c) noexcept {
  PROBGRAPH_OBS_KERNEL(kAnd3Popcount, std::min({a.size(), b.size(), c.size()}));
  return detail::table().and3_popcount(a.data(), b.data(), c.data(),
                                       std::min({a.size(), b.size(), c.size()}));
}

/// popcount(A).
[[nodiscard]] inline std::uint64_t popcount(std::span<const std::uint64_t> w) noexcept {
  PROBGRAPH_OBS_KERNEL(kPopcount, w.size());
  return detail::table().popcount(w.data(), w.size());
}

/// Slot-wise match count between two equal-k u64 signature rows, skipping
/// `empty` slots.
[[nodiscard]] inline std::uint32_t match_count_u64(std::span<const std::uint64_t> a,
                                                   std::span<const std::uint64_t> b,
                                                   std::uint64_t empty) noexcept {
  PROBGRAPH_OBS_KERNEL(kMatchCountU64, std::min(a.size(), b.size()));
  return detail::table().match_count_u64(a.data(), b.data(), std::min(a.size(), b.size()),
                                         empty);
}

// ---------------------------------------------------------------------------
// Batched entry points: one base operand against many candidate rows of a
// per-vertex arena. The base row is loaded once and stays cache-hot while
// the candidate rows stream — the memory shape of batched PairEstimate,
// LinkPredict top-k, and the clique per-vertex loops. The per-candidate
// kernel is resolved ONCE per batch (no per-element dispatch).
// ---------------------------------------------------------------------------

/// out[i] = popcount(base AND arena[cands[i]]) for each candidate row,
/// where row v starts at arena + v * words_per_vertex and spans
/// `base.size()` words.
inline void and_popcount_batch(std::span<const std::uint64_t> base,
                               const std::uint64_t* arena, std::size_t words_per_vertex,
                               std::span<const VertexId> cands,
                               std::uint64_t* out) noexcept {
  PROBGRAPH_OBS_KERNEL_BATCH(kAndPopcount, cands.size(), base.size() * cands.size());
  const auto fn = detail::table().and_popcount;
  const std::uint64_t* bw = base.data();
  const std::size_t n = base.size();
  for (std::size_t i = 0; i < cands.size(); ++i) {
    out[i] = fn(bw, arena + static_cast<std::size_t>(cands[i]) * words_per_vertex, n);
  }
}

/// out[i] = popcount(base OR arena[cands[i]]).
inline void or_popcount_batch(std::span<const std::uint64_t> base, const std::uint64_t* arena,
                              std::size_t words_per_vertex, std::span<const VertexId> cands,
                              std::uint64_t* out) noexcept {
  PROBGRAPH_OBS_KERNEL_BATCH(kOrPopcount, cands.size(), base.size() * cands.size());
  const auto fn = detail::table().or_popcount;
  const std::uint64_t* bw = base.data();
  const std::size_t n = base.size();
  for (std::size_t i = 0; i < cands.size(); ++i) {
    out[i] = fn(bw, arena + static_cast<std::size_t>(cands[i]) * words_per_vertex, n);
  }
}

// ---------------------------------------------------------------------------
// MinHash/KMV k-entry scan kernels that stay scalar by contract (their
// comparison order over doubles is part of the estimator definition).
// ---------------------------------------------------------------------------

/// Result of the KMV bottom-k union merge: how many union values were
/// taken (< k iff both inputs exhausted early) and the k-th smallest union
/// value (the last taken).
struct MinMergeResult {
  std::uint32_t taken = 0;
  double kth = 0.0;
};

/// Monotone min-merge of two ascending double rows, stopping after the k
/// smallest distinct union values — the KMV |X ∪ Y| statistic of Eq. (41).
/// Equal values (same hash in both sketches) are consumed from both sides
/// but counted once.
[[nodiscard]] inline MinMergeResult min_merge(std::span<const double> a,
                                              std::span<const double> b,
                                              std::uint32_t k) noexcept {
  PROBGRAPH_OBS_KERNEL(kMinMerge, a.size() + b.size());
  MinMergeResult r;
  std::size_t i = 0, j = 0;
  while (r.taken < k && (i < a.size() || j < b.size())) {
    if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
      r.kth = a[i++];
    } else if (i < a.size() && a[i] == b[j]) {
      r.kth = a[i++];
      ++j;
    } else {
      r.kth = b[j++];
    }
    ++r.taken;
  }
  return r;
}

}  // namespace probgraph::kernels
