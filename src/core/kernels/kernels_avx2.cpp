// AVX2 kernel implementations. Compiled with -mavx2 -mpopcnt (per-file
// CMake flags); guarded so the TU is empty under any other flag set.
//
// Sorted intersection follows the block-broadcast scheme of the
// SIMD-intersection literature (Schlegel et al. / Lemire, mirrored by the
// GMS baselines): load 8 u32 from each side, compare one block against
// all 8 cyclic rotations of the other, popcount the combined match mask,
// then advance whichever block has the smaller maximum. Because
// neighborhoods are duplicate-free, every matching pair is counted in
// exactly one block step: a block only advances past its max element m
// when the other block's max is >= m, so a partner for any skipped
// element would have had to be loaded already.
//
// The popcount family uses the vpshufb nibble-lookup algorithm (Mula):
// 256 bits per step with the AND/OR fused into the same pass, accumulated
// as bytes in a vector and widened via vpsadbw every iteration (word
// counts <= 64 per lane never overflow the byte lanes within one step).
//
// All kernels return bit-identical results to kernels::scalar — integer
// counts only — enforced by tests/test_kernels.cpp.
#if defined(__AVX2__) && defined(__POPCNT__)

#include <immintrin.h>

#include <cstdint>

#include "core/kernels/kernel_tables.hpp"

namespace probgraph::kernels::detail {

namespace {

// --- popcount family -------------------------------------------------------

/// Per-byte popcount of a 256-bit vector via two nibble table lookups.
inline __m256i popcount_bytes(__m256i v) noexcept {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
}

/// Horizontal sum of the four u64 lanes.
inline std::uint64_t hsum_epi64(__m256i v) noexcept {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

struct AndOp {
  __m256i operator()(__m256i x, __m256i y) const noexcept { return _mm256_and_si256(x, y); }
  std::uint64_t scalar(std::uint64_t x, std::uint64_t y) const noexcept { return x & y; }
};
struct OrOp {
  __m256i operator()(__m256i x, __m256i y) const noexcept { return _mm256_or_si256(x, y); }
  std::uint64_t scalar(std::uint64_t x, std::uint64_t y) const noexcept { return x | y; }
};

/// Shared combine-then-popcount loop: Op folds two 256-bit loads into the
/// vector whose bits are counted. n is in 64-bit words.
template <typename Op>
inline std::uint64_t combine_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                      std::size_t n, Op op) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  // 8 words (two vectors) per iteration; vpsadbw folds the byte counts
  // into u64 lanes each step, so no byte-lane saturation is possible.
  for (; i + 8 <= n; i += 8) {
    const __m256i v0 = op(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
                          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i v1 = op(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)),
                          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4)));
    const __m256i bytes = _mm256_add_epi8(popcount_bytes(v0), popcount_bytes(v1));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
  }
  std::uint64_t total = hsum_epi64(acc);
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(op.scalar(a[i], b[i])));
  }
  return total;
}

std::uint64_t and_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) noexcept {
  return combine_popcount(a, b, n, AndOp{});
}

std::uint64_t or_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) noexcept {
  return combine_popcount(a, b, n, OrOp{});
}

std::uint64_t and3_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                 const std::uint64_t* c, std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_and_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
                         _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i)));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256()));
  }
  std::uint64_t total = hsum_epi64(acc);
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i] & b[i] & c[i]));
  }
  return total;
}

std::uint64_t popcount_avx2(const std::uint64_t* w, std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256()));
  }
  std::uint64_t total = hsum_epi64(acc);
  for (; i < n; ++i) total += static_cast<std::uint64_t>(_mm_popcnt_u64(w[i]));
  return total;
}

// --- sorted intersection ----------------------------------------------------

/// Match mask (one bit per u32 lane of `va`) of va against all elements of
/// vb: compare against vb and its 7 cyclic lane rotations.
inline unsigned block_match_mask(__m256i va, __m256i vb) noexcept {
  // Cyclic rotations via vpermd with precomputed index vectors.
  const __m256i r1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  __m256i rot = vb;
  __m256i eq = _mm256_cmpeq_epi32(va, vb);
  for (int r = 1; r < 8; ++r) {
    rot = _mm256_permutevar8x32_epi32(rot, r1);
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, rot));
  }
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}

/// Scalar merge tail over [i, nx) x [j, ny).
inline std::uint64_t merge_tail(const VertexId* x, std::size_t nx, const VertexId* y,
                                std::size_t ny, std::size_t i, std::size_t j) noexcept {
  std::uint64_t count = 0;
  while (i < nx && j < ny) {
    if (x[i] < y[j]) {
      ++i;
    } else if (y[j] < x[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::uint64_t intersect_count_merge_avx2(const VertexId* x, std::size_t nx, const VertexId* y,
                                         std::size_t ny) noexcept {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i + 8 <= nx && j + 8 <= ny) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + j));
    count += static_cast<std::uint64_t>(_mm_popcnt_u32(block_match_mask(va, vb)));
    const VertexId amax = x[i + 7];
    const VertexId bmax = y[j + 7];
    // Advance the block(s) whose max is <= the other's: all its elements
    // have now been compared against every possible partner.
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return count + merge_tail(x, nx, y, ny, i, j);
}

/// Materializing variant of the block merge: extract the matched lanes of
/// each A-block from the match mask (bit r set => x[i + r] is in Y). Each
/// match is emitted at the one block pair where both partners are loaded
/// (block pairs never repeat, and a duplicate-free element has exactly one
/// partner), and emissions stay globally ascending: a block only advances
/// once every element it could still match has streamed past.
void intersect_into_merge_avx2(const VertexId* x, std::size_t nx, const VertexId* y,
                               std::size_t ny, std::vector<VertexId>& out) {
  std::size_t i = 0, j = 0;
  while (i + 8 <= nx && j + 8 <= ny) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + j));
    unsigned mask = block_match_mask(va, vb);
    while (mask != 0) {
      const unsigned r = static_cast<unsigned>(__builtin_ctz(mask));
      out.push_back(x[i + r]);
      mask &= mask - 1;
    }
    const VertexId amax = x[i + 7];
    const VertexId bmax = y[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  // Scalar merge tail; matches between a consumed block and the remaining
  // range of the other side were already emitted above, and the tail sees
  // only the unconsumed suffixes, so nothing repeats.
  while (i < nx && j < ny) {
    if (x[i] < y[j]) {
      ++i;
    } else if (y[j] < x[i]) {
      ++j;
    } else {
      out.push_back(x[i]);
      ++i;
      ++j;
    }
  }
}

// No AVX2 galloping variants: a vectorized window scan after the binary
// narrowing measured ~40% SLOWER than the plain scalar gallop on skewed
// shapes (the branch-predictable binary search beats an 8-lane scan of a
// tiny window), so the gallop table entries stay null and the dispatcher
// keeps the scalar kernels. See bench/table4_intersection_microbench.

// --- MinHash slot match -----------------------------------------------------

std::uint32_t match_count_u64_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                   std::size_t n, std::uint64_t empty) noexcept {
  const __m256i vempty = _mm256_set1_epi64x(static_cast<long long>(empty));
  std::uint32_t matches = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i eq = _mm256_cmpeq_epi64(va, vb);
    const __m256i isempty = _mm256_cmpeq_epi64(va, vempty);
    const __m256i hit = _mm256_andnot_si256(isempty, eq);
    matches += static_cast<std::uint32_t>(_mm_popcnt_u32(static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(hit)))));
  }
  for (; i < n; ++i) matches += (a[i] != empty && a[i] == b[i]) ? 1U : 0U;
  return matches;
}

}  // namespace

const KernelTable& avx2_table() noexcept {
  static constexpr KernelTable t = {
      intersect_count_merge_avx2,
      nullptr,  // gallop: scalar wins (see note above)
      intersect_into_merge_avx2,
      nullptr,  // gallop (materializing): scalar wins
      and_popcount_avx2,
      or_popcount_avx2,
      and3_popcount_avx2,
      popcount_avx2,
      match_count_u64_avx2,
  };
  return t;
}

}  // namespace probgraph::kernels::detail

#endif  // __AVX2__ && __POPCNT__
