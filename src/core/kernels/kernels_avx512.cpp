// AVX512 popcount kernels: VPOPCNTDQ counts all eight 64-bit lanes of a
// 512-bit register in one instruction, turning the BF word-AND+popcount
// into two loads + and + vpopcntq + add per 8 words. Compiled with
// -mavx512f -mavx512vpopcntdq -mavx512bw (per-file CMake flags); the TU
// is empty under any other flag set, and the dispatcher additionally
// checks cpuid before installing these.
//
// Only the popcount family lives here — sorted intersection keeps the
// AVX2 shuffle kernels (no width win for the block-broadcast scheme on
// this data shape). Bit-identical to scalar by construction (integer
// counts).
#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <cstdint>

#include "core/kernels/kernel_tables.hpp"

namespace probgraph::kernels::detail {

namespace {

template <typename Op>
inline std::uint64_t combine_popcount512(const std::uint64_t* a, const std::uint64_t* b,
                                         std::size_t n, Op op) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  // 16 words per iteration: two independent popcount chains.
  __m512i acc2 = _mm512_setzero_si512();
  for (; i + 16 <= n; i += 16) {
    const __m512i v0 = op(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    const __m512i v1 = op(_mm512_loadu_si512(a + i + 8), _mm512_loadu_si512(b + i + 8));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v0));
    acc2 = _mm512_add_epi64(acc2, _mm512_popcnt_epi64(v1));
  }
  for (; i + 8 <= n; i += 8) {
    const __m512i v = op(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::uint64_t total = _mm512_reduce_add_epi64(_mm512_add_epi64(acc, acc2));
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(op.scalar(a[i], b[i])));
  }
  return total;
}

struct AndOp {
  __m512i operator()(__m512i x, __m512i y) const noexcept { return _mm512_and_si512(x, y); }
  std::uint64_t scalar(std::uint64_t x, std::uint64_t y) const noexcept { return x & y; }
};
struct OrOp {
  __m512i operator()(__m512i x, __m512i y) const noexcept { return _mm512_or_si512(x, y); }
  std::uint64_t scalar(std::uint64_t x, std::uint64_t y) const noexcept { return x | y; }
};

std::uint64_t and_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b,
                                  std::size_t n) noexcept {
  return combine_popcount512(a, b, n, AndOp{});
}

std::uint64_t or_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) noexcept {
  return combine_popcount512(a, b, n, OrOp{});
}

std::uint64_t and3_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b,
                                   const std::uint64_t* c, std::size_t n) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_and_si512(
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i)),
        _mm512_loadu_si512(c + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::uint64_t total = _mm512_reduce_add_epi64(acc);
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i] & b[i] & c[i]));
  }
  return total;
}

std::uint64_t popcount_avx512(const std::uint64_t* w, std::size_t n) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(w + i)));
  }
  std::uint64_t total = _mm512_reduce_add_epi64(acc);
  for (; i < n; ++i) total += static_cast<std::uint64_t>(_mm_popcnt_u64(w[i]));
  return total;
}

}  // namespace

const KernelTable& avx512_table() noexcept {
  // Only the popcount entries are installed by the dispatcher; the rest
  // point at null and must never be read.
  static constexpr KernelTable t = {
      nullptr,          nullptr,         nullptr,
      nullptr,          and_popcount_avx512, or_popcount_avx512,
      and3_popcount_avx512, popcount_avx512, nullptr,
  };
  return t;
}

}  // namespace probgraph::kernels::detail

#endif  // AVX512F && AVX512VPOPCNTDQ && AVX512BW
