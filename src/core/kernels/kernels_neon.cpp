// NEON kernel implementations for AArch64, where Advanced SIMD is
// baseline (no runtime feature check needed). vcnt counts bits per byte;
// vpaddl chains widen byte counts to 64-bit lanes. The popcount family
// and the MinHash slot match are vectorized; sorted intersection falls
// back to scalar on this architecture (documented in the README — the
// block-broadcast scheme needs cheap 8-lane 32-bit permutes, which NEON's
// 128-bit registers do not give us; measure before porting).
//
// Bit-identical to kernels::scalar (integer counts only).
#if defined(__ARM_NEON) && (defined(__aarch64__) || defined(_M_ARM64))

#include <arm_neon.h>

#include <cstdint>

#include "core/kernels/kernel_tables.hpp"

namespace probgraph::kernels::detail {

namespace {

/// Popcount of one 128-bit vector as a u64 scalar.
inline std::uint64_t vpopcnt128(uint8x16_t v) noexcept {
  return vaddvq_u64(vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
}

template <typename Op>
inline std::uint64_t combine_popcount_neon(const std::uint64_t* a, const std::uint64_t* b,
                                           std::size_t n, Op op) noexcept {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint8x16_t v0 =
        vreinterpretq_u8_u64(op(vld1q_u64(a + i), vld1q_u64(b + i)));
    const uint8x16_t v1 =
        vreinterpretq_u8_u64(op(vld1q_u64(a + i + 2), vld1q_u64(b + i + 2)));
    total += vpopcnt128(v0) + vpopcnt128(v1);
  }
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(op.scalar(a[i], b[i])));
  }
  return total;
}

struct AndOp {
  uint64x2_t operator()(uint64x2_t x, uint64x2_t y) const noexcept { return vandq_u64(x, y); }
  std::uint64_t scalar(std::uint64_t x, std::uint64_t y) const noexcept { return x & y; }
};
struct OrOp {
  uint64x2_t operator()(uint64x2_t x, uint64x2_t y) const noexcept { return vorrq_u64(x, y); }
  std::uint64_t scalar(std::uint64_t x, std::uint64_t y) const noexcept { return x | y; }
};

std::uint64_t and_popcount_neon(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) noexcept {
  return combine_popcount_neon(a, b, n, AndOp{});
}

std::uint64_t or_popcount_neon(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) noexcept {
  return combine_popcount_neon(a, b, n, OrOp{});
}

std::uint64_t and3_popcount_neon(const std::uint64_t* a, const std::uint64_t* b,
                                 const std::uint64_t* c, std::size_t n) noexcept {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v =
        vandq_u64(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)), vld1q_u64(c + i));
    total += vpopcnt128(vreinterpretq_u8_u64(v));
  }
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i] & c[i]));
  }
  return total;
}

std::uint64_t popcount_neon(const std::uint64_t* w, std::size_t n) noexcept {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += vpopcnt128(vreinterpretq_u8_u64(vld1q_u64(w + i)));
  }
  for (; i < n; ++i) total += static_cast<std::uint64_t>(__builtin_popcountll(w[i]));
  return total;
}

std::uint32_t match_count_u64_neon(const std::uint64_t* a, const std::uint64_t* b,
                                   std::size_t n, std::uint64_t empty) noexcept {
  const uint64x2_t vempty = vdupq_n_u64(empty);
  std::uint64_t matches = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    const uint64x2_t hit = vbicq_u64(vceqq_u64(va, vb), vceqq_u64(va, vempty));
    // Each hit lane is all-ones: shift down to 1 and horizontal-add.
    matches += vaddvq_u64(vshrq_n_u64(hit, 63));
  }
  for (; i < n; ++i) matches += (a[i] != empty && a[i] == b[i]) ? 1U : 0U;
  return static_cast<std::uint32_t>(matches);
}

}  // namespace

const KernelTable& neon_table() noexcept {
  // Sorted-intersection entries are null: the dispatcher keeps scalar for
  // them on NEON and must not read these slots.
  static constexpr KernelTable t = {
      nullptr,          nullptr,         nullptr,        nullptr,
      and_popcount_neon, or_popcount_neon, and3_popcount_neon, popcount_neon,
      match_count_u64_neon,
  };
  return t;
}

}  // namespace probgraph::kernels::detail

#endif  // __ARM_NEON && aarch64
