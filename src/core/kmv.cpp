#include "core/kmv.hpp"

#include <algorithm>
#include <stdexcept>

namespace probgraph {

KmvSketch::KmvSketch(std::uint32_t k, std::uint64_t seed) : k_(k), family_(seed) {
  if (k < 2) throw std::invalid_argument("KmvSketch: k must be at least 2");
}

void KmvSketch::build(std::span<const VertexId> xs) {
  values_.clear();
  values_.reserve(std::min<std::size_t>(k_, xs.size()));
  auto less = std::less<double>{};
  for (const VertexId x : xs) {
    const double h = util::hash_to_unit(family_(0, x));
    if (values_.size() < k_) {
      values_.push_back(h);
      std::push_heap(values_.begin(), values_.end(), less);
    } else if (h < values_.front()) {
      std::pop_heap(values_.begin(), values_.end(), less);
      values_.back() = h;
      std::push_heap(values_.begin(), values_.end(), less);
    }
  }
  std::sort(values_.begin(), values_.end());
}

double KmvSketch::estimate_size() const noexcept {
  if (values_.empty()) return 0.0;
  if (values_.size() < k_) {
    // Sketch not saturated: we saw every element.
    return static_cast<double>(values_.size());
  }
  return static_cast<double>(k_ - 1) / values_.back();
}

KmvSketch KmvSketch::unite(const KmvSketch& x, const KmvSketch& y) {
  KmvSketch u;
  u.k_ = std::min(x.k_, y.k_);
  u.family_ = x.family_;
  u.values_.reserve(u.k_);
  // Merge two sorted lists, keep the smallest k distinct hash values.
  // (Distinctness: the same element hashes identically in both sketches.)
  std::size_t i = 0, j = 0;
  while (u.values_.size() < u.k_ && (i < x.values_.size() || j < y.values_.size())) {
    double next;
    if (j >= y.values_.size() || (i < x.values_.size() && x.values_[i] < y.values_[j])) {
      next = x.values_[i++];
    } else if (i < x.values_.size() && x.values_[i] == y.values_[j]) {
      next = x.values_[i++];
      ++j;
    } else {
      next = y.values_[j++];
    }
    u.values_.push_back(next);
  }
  return u;
}

double KmvSketch::estimate_intersection(const KmvSketch& x, const KmvSketch& y,
                                        double size_x, double size_y) {
  const KmvSketch u = unite(x, y);
  double est_union;
  if (u.values_.size() < u.k_) {
    est_union = static_cast<double>(u.values_.size());
  } else {
    est_union = static_cast<double>(u.k_ - 1) / u.values_.back();
  }
  return std::max(0.0, size_x + size_y - est_union);
}

}  // namespace probgraph
