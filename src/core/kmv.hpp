// K-Minimum-Values sketches (paper §IX, "Beyond Bloom Filter and MinHash").
//
// A KMV sketch K_X keeps the k smallest *hash values* (reals in (0,1]) of
// the elements of X. |X| is estimated as (k-1)/max(K_X); a union sketch
// K_{X∪Y} is the k smallest values of K_X ∪ K_Y; and the intersection is
// estimated by inclusion–exclusion (Eq. (40)/(41)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/hash.hpp"
#include "util/types.hpp"

namespace probgraph {

class KmvSketch {
 public:
  KmvSketch() = default;
  KmvSketch(std::uint32_t k, std::uint64_t seed);

  /// Build from a set: hash every element to (0,1], keep the k smallest.
  void build(std::span<const VertexId> xs);

  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  /// Stored values (sorted ascending); size is min(k, |X|).
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// The estimator |X̂|_KMV = (k-1)/max(K_X) (Eq. (39)). When the sketch is
  /// not full (|X| < k) every hash was kept, so the exact size is returned.
  [[nodiscard]] double estimate_size() const noexcept;

  /// k smallest of K_X ∪ K_Y: the sketch of the union (§IX).
  [[nodiscard]] static KmvSketch unite(const KmvSketch& x, const KmvSketch& y);

  /// Eq. (41): |X ∩ Y| ≈ |X| + |Y| − |X̂∪Y|_KMV with exact input sizes
  /// (degrees are free in graph algorithms, as the paper notes).
  [[nodiscard]] static double estimate_intersection(const KmvSketch& x, const KmvSketch& y,
                                                    double size_x, double size_y);

 private:
  std::uint32_t k_ = 0;
  std::vector<double> values_;  // sorted ascending
  util::HashFamily family_;
};

}  // namespace probgraph
