#include "core/minhash.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/kernels/kernels.hpp"

namespace probgraph {

KHashSketch::KHashSketch(std::uint32_t k, std::uint64_t seed)
    : slots_(k, kEmptySlot), family_(seed) {
  if (k == 0) throw std::invalid_argument("KHashSketch: k must be positive");
}

void KHashSketch::build(std::span<const VertexId> xs) noexcept {
  std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  if (xs.empty()) return;
  const auto k = static_cast<std::uint32_t>(slots_.size());
  std::vector<std::uint64_t> best_hash(k, ~std::uint64_t{0});
  for (const VertexId x : xs) {
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint64_t h = family_(i, x);
      if (h < best_hash[i]) {
        best_hash[i] = h;
        slots_[i] = x;
      }
    }
  }
}

std::uint32_t KHashSketch::matching_slots(std::span<const std::uint64_t> a,
                                          std::span<const std::uint64_t> b) noexcept {
  // The k-entry scan is a kernel-layer primitive (SIMD slot compare).
  return kernels::match_count_u64(a, b, kEmptySlot);
}

double KHashSketch::jaccard(const KHashSketch& other) const noexcept {
  if (slots_.empty()) return 0.0;
  return static_cast<double>(matching_slots(slots_, other.slots_)) /
         static_cast<double>(slots_.size());
}

OneHashSketch::OneHashSketch(std::uint32_t k, std::uint64_t seed) : k_(k), family_(seed) {
  if (k == 0) throw std::invalid_argument("OneHashSketch: k must be positive");
}

void OneHashSketch::build(std::span<const VertexId> xs) {
  entries_.clear();
  entries_.reserve(std::min<std::size_t>(k_, xs.size()));
  // Bounded max-heap on the hash value: keep the k smallest hashes seen.
  auto heap_cmp = [](const BottomKEntry& a, const BottomKEntry& b) { return a < b; };
  for (const VertexId x : xs) {
    const BottomKEntry e{family_(0, x), x};
    if (entries_.size() < k_) {
      entries_.push_back(e);
      std::push_heap(entries_.begin(), entries_.end(), heap_cmp);
    } else if (e < entries_.front()) {
      std::pop_heap(entries_.begin(), entries_.end(), heap_cmp);
      entries_.back() = e;
      std::push_heap(entries_.begin(), entries_.end(), heap_cmp);
    }
  }
  std::sort(entries_.begin(), entries_.end());
}

std::uint32_t OneHashSketch::intersection_size(std::span<const BottomKEntry> a,
                                               std::span<const BottomKEntry> b,
                                               std::uint32_t k) noexcept {
  // Walk the merged union in hash order; only the first k distinct union
  // entries participate (they form the bottom-k sketch of X ∪ Y).
  std::uint32_t count = 0, taken = 0;
  std::size_t i = 0, j = 0;
  while (taken < k && (i < a.size() || j < b.size())) {
    if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
      ++i;
    } else if (i >= a.size() || b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
    ++taken;
  }
  return count;
}

void OneHashSketch::intersect_elements(std::span<const BottomKEntry> a,
                                       std::span<const BottomKEntry> b, std::uint32_t k,
                                       std::vector<VertexId>& out) {
  std::uint32_t taken = 0;
  std::size_t i = 0, j = 0;
  while (taken < k && (i < a.size() || j < b.size())) {
    if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
      ++i;
    } else if (i >= a.size() || b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i].element);
      ++i;
      ++j;
    }
    ++taken;
  }
}

double OneHashSketch::jaccard_from_spans(std::span<const BottomKEntry> a,
                                         std::span<const BottomKEntry> b,
                                         std::uint32_t k) noexcept {
  if (k == 0) return 0.0;
  const std::uint32_t inter = intersection_size(a, b, k);
  // When both sketches are unsaturated the union sample is exhaustive and
  // the denominator is the true union size, not k.
  const std::uint32_t union_seen = static_cast<std::uint32_t>(a.size() + b.size()) - inter;
  if (union_seen == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(std::min(k, union_seen));
}

double OneHashSketch::jaccard(const OneHashSketch& other) const noexcept {
  return jaccard_from_spans(entries_, other.entries_, std::min(k_, other.k_));
}

}  // namespace probgraph
