// MinHash sketches (paper §II-D): the k-hash and 1-hash variants.
//
// k-hash (M_X): k independent hash functions; slot i stores the element of
// X minimizing h_i. The sketch is a length-k *signature*; two signatures
// are compared slot-wise, |M_X ∩ M_Y| = #{i : M_X[i] == M_Y[i]}, which is
// Bin(k, J(X,Y)) distributed (§IV-C).
//
// 1-hash (M¹_X): one hash function; the k elements of X with the smallest
// hashes (bottom-k). Never contains duplicates; |M¹_X ∩ M¹_Y| follows the
// hypergeometric distribution (§IV-D). Entries are stored sorted by hash
// value so that two sketches intersect with an O(k) merge, and the common
// *elements* are enumerable (needed by the MH 4-clique variant).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/hash.hpp"
#include "util/types.hpp"

namespace probgraph {

/// k-hash signature entry: the minimizing element for one hash function.
/// kEmptySlot marks slots of an empty input set.
inline constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

/// Owning k-hash MinHash sketch.
class KHashSketch {
 public:
  KHashSketch() = default;
  KHashSketch(std::uint32_t k, std::uint64_t seed);

  /// Build the signature of a set in O(k * |xs|) work (Table V).
  void build(std::span<const VertexId> xs) noexcept;

  [[nodiscard]] std::uint32_t k() const noexcept { return static_cast<std::uint32_t>(slots_.size()); }
  [[nodiscard]] std::span<const std::uint64_t> slots() const noexcept { return slots_; }

  /// #matching slots — the |M_X ∩ M_Y| of Eq. (5).
  [[nodiscard]] static std::uint32_t matching_slots(std::span<const std::uint64_t> a,
                                                    std::span<const std::uint64_t> b) noexcept;

  /// Jaccard estimate Ĵ = matches / k.
  [[nodiscard]] double jaccard(const KHashSketch& other) const noexcept;

 private:
  std::vector<std::uint64_t> slots_;  // element minimizing h_i, or kEmptySlot
  util::HashFamily family_;
};

/// One 1-hash (bottom-k) entry: hash value + the element it came from.
struct BottomKEntry {
  std::uint64_t hash;
  VertexId element;
  friend bool operator<(const BottomKEntry& a, const BottomKEntry& b) noexcept {
    return a.hash < b.hash || (a.hash == b.hash && a.element < b.element);
  }
  friend bool operator==(const BottomKEntry&, const BottomKEntry&) = default;
};

/// Owning 1-hash (bottom-k) sketch.
class OneHashSketch {
 public:
  OneHashSketch() = default;
  OneHashSketch(std::uint32_t k, std::uint64_t seed);

  /// Build: hash all elements once, keep the k smallest. O(d) work with a
  /// bounded max-heap (Table V row "1-Hash").
  void build(std::span<const VertexId> xs);

  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  /// Number of stored entries: min(k, |X|).
  [[nodiscard]] std::uint32_t size() const noexcept { return static_cast<std::uint32_t>(entries_.size()); }
  /// Entries sorted ascending by hash.
  [[nodiscard]] std::span<const BottomKEntry> entries() const noexcept { return entries_; }

  /// |M¹_X ∩ M¹_Y| restricted to the bottom-k of the union, via a sorted
  /// merge over hash values: O(k).
  ///
  /// The union restriction is what makes the count follow the
  /// Hypergeometric(|X∪Y|, |X∩Y|, k) law of §IV-D: the k smallest union
  /// hashes are a uniform without-replacement sample of X ∪ Y, and each
  /// sampled element lies in both sketches iff it lies in X ∩ Y. The naive
  /// count without the restriction is biased upward (elements compete only
  /// within their own set).
  [[nodiscard]] static std::uint32_t intersection_size(std::span<const BottomKEntry> a,
                                                       std::span<const BottomKEntry> b,
                                                       std::uint32_t k) noexcept;

  /// Enumerate the common elements within the union bottom-k (used by the
  /// MH 4-clique variant and the weighted similarity measures).
  static void intersect_elements(std::span<const BottomKEntry> a,
                                 std::span<const BottomKEntry> b, std::uint32_t k,
                                 std::vector<VertexId>& out);

  /// Jaccard estimate from raw entry spans: Ĵ = intersection_size / k, with
  /// the denominator replaced by the observed union size when both sketches
  /// are unsaturated (the sample is then exhaustive and the ratio exact).
  [[nodiscard]] static double jaccard_from_spans(std::span<const BottomKEntry> a,
                                                 std::span<const BottomKEntry> b,
                                                 std::uint32_t k) noexcept;

  /// Jaccard estimate Ĵ between two sketches.
  [[nodiscard]] double jaccard(const OneHashSketch& other) const noexcept;

 private:
  std::uint32_t k_ = 0;
  std::vector<BottomKEntry> entries_;
  util::HashFamily family_;
};

}  // namespace probgraph
