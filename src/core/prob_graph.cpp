#include "core/prob_graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/backends.hpp"
#include "core/estimators.hpp"
#include "core/kmv.hpp"
#include "util/ascii.hpp"
#include "util/bitvector.hpp"
#include "util/timer.hpp"

namespace probgraph {

const char* to_string(SketchKind kind) noexcept {
  switch (kind) {
    case SketchKind::kBloomFilter: return "BF";
    case SketchKind::kKHash: return "kH";
    case SketchKind::kOneHash: return "1H";
    case SketchKind::kKmv: return "KMV";
  }
  return "invalid(SketchKind)";
}

const char* to_string(BfEstimator e) noexcept {
  switch (e) {
    case BfEstimator::kAnd: return "AND";
    case BfEstimator::kLimit: return "L";
    case BfEstimator::kOr: return "OR";
  }
  return "invalid(BfEstimator)";
}

using util::iequals;

std::optional<SketchKind> parse_sketch_kind(std::string_view s) noexcept {
  for (const SketchKind kind : {SketchKind::kBloomFilter, SketchKind::kKHash,
                                SketchKind::kOneHash, SketchKind::kKmv}) {
    if (iequals(s, to_string(kind))) return kind;
  }
  // Long-form aliases; the short CLI spellings ("bf", "kh", "1h", "kmv")
  // already match the to_string loop above case-insensitively.
  if (iequals(s, "bloom")) return SketchKind::kBloomFilter;
  if (iequals(s, "khash") || iequals(s, "k-hash")) return SketchKind::kKHash;
  if (iequals(s, "onehash") || iequals(s, "1-hash")) return SketchKind::kOneHash;
  return std::nullopt;
}

std::optional<BfEstimator> parse_bf_estimator(std::string_view s) noexcept {
  for (const BfEstimator e : {BfEstimator::kAnd, BfEstimator::kLimit, BfEstimator::kOr}) {
    if (iequals(s, to_string(e))) return e;
  }
  if (iequals(s, "limit")) return BfEstimator::kLimit;
  return std::nullopt;
}

ProbGraph::ProbGraph(const CsrGraph& g, ProbGraphConfig config)
    : graph_(&g), config_(config), family_(config.seed) {
  if (config_.storage_budget <= 0.0 && config_.bf_bits == 0 && config_.minhash_k == 0) {
    throw std::invalid_argument("ProbGraph: storage budget must be positive");
  }
  const VertexId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("ProbGraph: empty graph");

  const double base_bytes = config_.budget_reference_bytes != 0
                                ? static_cast<double>(config_.budget_reference_bytes)
                                : static_cast<double>(g.memory_bytes());
  const double budget_bytes = config_.storage_budget * base_bytes;

  util::Timer timer;
  switch (config_.kind) {
    case SketchKind::kBloomFilter: {
      if (config_.bf_hashes == 0) {
        throw std::invalid_argument("ProbGraph: bf_hashes must be positive");
      }
      std::uint64_t bits = config_.bf_bits;
      if (bits == 0) {
        bits = static_cast<std::uint64_t>(budget_bytes * 8.0 / static_cast<double>(n));
      }
      // Uniform width, multiple of the word size, at least one word.
      bf_bits_ = std::max<std::uint64_t>(kWordBits, bits / kWordBits * kWordBits);
      bf_words_per_vertex_ = util::words_for_bits(bf_bits_);
      build_bloom();
      break;
    }
    case SketchKind::kKHash: {
      k_ = config_.minhash_k != 0
               ? config_.minhash_k
               : std::max<std::uint32_t>(
                     1, static_cast<std::uint32_t>(
                            budget_bytes / (static_cast<double>(n) * sizeof(std::uint64_t))));
      build_khash();
      break;
    }
    case SketchKind::kOneHash: {
      k_ = config_.minhash_k != 0
               ? config_.minhash_k
               : std::max<std::uint32_t>(
                     1, static_cast<std::uint32_t>(
                            budget_bytes / (static_cast<double>(n) * sizeof(BottomKEntry))));
      build_onehash();
      break;
    }
    case SketchKind::kKmv: {
      k_ = config_.minhash_k != 0
               ? config_.minhash_k
               : std::max<std::uint32_t>(
                     2, static_cast<std::uint32_t>(
                            budget_bytes / (static_cast<double>(n) * sizeof(double))));
      k_ = std::max<std::uint32_t>(2, k_);
      build_kmv();
      break;
    }
  }
  construction_seconds_ = timer.seconds();
}

ProbGraph ProbGraph::from_parts(const CsrGraph& g, ProbGraphParts parts) {
  ProbGraph pg;
  pg.graph_ = &g;
  pg.config_ = parts.config;
  pg.family_ = util::HashFamily(parts.config.seed);
  pg.bf_bits_ = parts.bf_bits;
  pg.bf_words_per_vertex_ = parts.bf_words_per_vertex;
  pg.k_ = parts.minhash_k;
  pg.bf_arena_ = std::move(parts.bf_arena);
  pg.kh_arena_ = std::move(parts.kh_arena);
  pg.oh_arena_ = std::move(parts.oh_arena);
  pg.kmv_arena_ = std::move(parts.kmv_arena);
  pg.sketch_sizes_ = std::move(parts.sketch_sizes);
  pg.construction_seconds_ = parts.construction_seconds;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  if (n == 0) throw std::invalid_argument("ProbGraph: empty graph");
  const auto expect = [](std::size_t got, std::size_t want, const char* what) {
    if (got != want) {
      throw std::invalid_argument(std::string("ProbGraph: ") + what +
                                  " arena size mismatch: got " + std::to_string(got) +
                                  ", expected " + std::to_string(want));
    }
  };
  // Per-vertex fills index the arenas as `v * k + sizes[v]`; a fill beyond
  // k would send the span accessors past the arena (or the mapping behind
  // it), so reject it here rather than trusting the producer.
  const auto check_fills = [&] {
    for (std::size_t v = 0; v < n; ++v) {
      if (pg.sketch_sizes_[v] > pg.k_) {
        throw std::invalid_argument("ProbGraph: sketch size exceeds k at vertex " +
                                    std::to_string(v));
      }
    }
  };
  switch (pg.config_.kind) {
    case SketchKind::kBloomFilter:
      if (pg.bf_bits_ == 0 || pg.config_.bf_hashes == 0 ||
          pg.bf_words_per_vertex_ != util::words_for_bits(pg.bf_bits_)) {
        throw std::invalid_argument("ProbGraph: invalid Bloom-filter parameters");
      }
      expect(pg.bf_arena_.size(), n * pg.bf_words_per_vertex_, "Bloom-filter");
      break;
    case SketchKind::kKHash:
      if (pg.k_ == 0) throw std::invalid_argument("ProbGraph: invalid k-hash k");
      expect(pg.kh_arena_.size(), n * pg.k_, "k-hash");
      break;
    case SketchKind::kOneHash:
      if (pg.k_ == 0) throw std::invalid_argument("ProbGraph: invalid 1-hash k");
      expect(pg.oh_arena_.size(), n * pg.k_, "1-hash");
      expect(pg.sketch_sizes_.size(), n, "sketch-size");
      check_fills();
      break;
    case SketchKind::kKmv:
      if (pg.k_ < 2) throw std::invalid_argument("ProbGraph: invalid KMV k");
      expect(pg.kmv_arena_.size(), n * pg.k_, "KMV");
      expect(pg.sketch_sizes_.size(), n, "sketch-size");
      check_fills();
      break;
  }
  return pg;
}

void ProbGraph::build_bloom() {
  const CsrGraph& g = *graph_;
  const VertexId n = g.num_vertices();
  bf_arena_.assign(static_cast<std::size_t>(n) * bf_words_per_vertex_, 0);
  const std::uint32_t b = config_.bf_hashes;
  std::uint64_t* const arena = bf_arena_.mutable_data();
#pragma omp parallel for schedule(dynamic, 128)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    std::uint64_t* words = arena + static_cast<std::size_t>(v) * bf_words_per_vertex_;
    for (const VertexId x : g.neighbors(static_cast<VertexId>(v))) {
      for (std::uint32_t i = 0; i < b; ++i) {
        const std::uint64_t pos = family_(i, x) % bf_bits_;
        words[pos / kWordBits] |= (std::uint64_t{1} << (pos % kWordBits));
      }
    }
  }
}

void ProbGraph::build_khash() {
  const CsrGraph& g = *graph_;
  const VertexId n = g.num_vertices();
  kh_arena_.assign(static_cast<std::size_t>(n) * k_, kEmptySlot);
  std::uint64_t* const arena = kh_arena_.mutable_data();
#pragma omp parallel
  {
    std::vector<std::uint64_t> best(k_);
#pragma omp for schedule(dynamic, 128)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      std::uint64_t* slots = arena + static_cast<std::size_t>(v) * k_;
      std::fill(best.begin(), best.end(), ~std::uint64_t{0});
      for (const VertexId x : g.neighbors(static_cast<VertexId>(v))) {
        for (std::uint32_t i = 0; i < k_; ++i) {
          const std::uint64_t h = family_(i, x);
          if (h < best[i]) {
            best[i] = h;
            slots[i] = x;
          }
        }
      }
    }
  }
}

void ProbGraph::build_onehash() {
  const CsrGraph& g = *graph_;
  const VertexId n = g.num_vertices();
  oh_arena_.assign(static_cast<std::size_t>(n) * k_, BottomKEntry{~std::uint64_t{0}, 0});
  sketch_sizes_.assign(n, 0);
  BottomKEntry* const arena = oh_arena_.mutable_data();
  std::uint32_t* const sizes = sketch_sizes_.mutable_data();
#pragma omp parallel for schedule(dynamic, 128)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    BottomKEntry* entries = arena + static_cast<std::size_t>(v) * k_;
    const auto nv = g.neighbors(static_cast<VertexId>(v));
    std::uint32_t fill = 0;
    auto heap_cmp = [](const BottomKEntry& a, const BottomKEntry& b) { return a < b; };
    for (const VertexId x : nv) {
      const BottomKEntry e{family_(0, x), x};
      if (fill < k_) {
        entries[fill++] = e;
        std::push_heap(entries, entries + fill, heap_cmp);
      } else if (e < entries[0]) {
        std::pop_heap(entries, entries + fill, heap_cmp);
        entries[fill - 1] = e;
        std::push_heap(entries, entries + fill, heap_cmp);
      }
    }
    std::sort(entries, entries + fill);
    sizes[v] = fill;
  }
}

void ProbGraph::build_kmv() {
  const CsrGraph& g = *graph_;
  const VertexId n = g.num_vertices();
  kmv_arena_.assign(static_cast<std::size_t>(n) * k_, 2.0);
  sketch_sizes_.assign(n, 0);
  double* const arena = kmv_arena_.mutable_data();
  std::uint32_t* const sizes = sketch_sizes_.mutable_data();
#pragma omp parallel for schedule(dynamic, 128)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    double* values = arena + static_cast<std::size_t>(v) * k_;
    std::uint32_t fill = 0;
    for (const VertexId x : g.neighbors(static_cast<VertexId>(v))) {
      const double h = util::hash_to_unit(family_(0, x));
      if (fill < k_) {
        values[fill++] = h;
        std::push_heap(values, values + fill);
      } else if (h < values[0]) {
        std::pop_heap(values, values + fill);
        values[fill - 1] = h;
        std::push_heap(values, values + fill);
      }
    }
    std::sort(values, values + fill);
    sizes[v] = fill;
  }
}

// The est_* public API is a thin per-call wrapper over the static-dispatch
// visitor. Each call pays the kind/estimator switch once; hot loops should
// instead visit once and reuse the concrete backend (core/backends.hpp).

double ProbGraph::est_intersection(VertexId u, VertexId v) const noexcept {
  return visit_backend([&](const auto& be) { return be.est_intersection(u, v); });
}

double ProbGraph::est_jaccard(VertexId u, VertexId v) const noexcept {
  // MinHash backends estimate J directly; BF/KMV go through the clamped
  // |X∩Y| and the identity J = |X∩Y| / (|X| + |Y| − |X∩Y|) of Listing 6.
  return visit_backend([&](const auto& be) { return be.est_jaccard(u, v); });
}

double ProbGraph::est_overlap(VertexId u, VertexId v) const noexcept {
  return visit_backend([&](const auto& be) { return be.est_overlap(u, v); });
}

double ProbGraph::est_total_neighbors(VertexId u, VertexId v) const noexcept {
  return visit_backend([&](const auto& be) { return be.est_total_neighbors(u, v); });
}

std::size_t ProbGraph::memory_bytes() const noexcept {
  return bf_arena_.size() * sizeof(std::uint64_t) + kh_arena_.size() * sizeof(std::uint64_t) +
         oh_arena_.size() * sizeof(BottomKEntry) + kmv_arena_.size() * sizeof(double) +
         sketch_sizes_.size() * sizeof(std::uint32_t);
}

double ProbGraph::relative_memory() const noexcept {
  const double base = config_.budget_reference_bytes != 0
                          ? static_cast<double>(config_.budget_reference_bytes)
                          : static_cast<double>(graph_->memory_bytes());
  return static_cast<double>(memory_bytes()) / base;
}

}  // namespace probgraph
