#include "core/prob_graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/estimators.hpp"
#include "core/kmv.hpp"
#include "util/bitvector.hpp"
#include "util/timer.hpp"

namespace probgraph {

const char* to_string(SketchKind kind) noexcept {
  switch (kind) {
    case SketchKind::kBloomFilter: return "BF";
    case SketchKind::kKHash: return "kH";
    case SketchKind::kOneHash: return "1H";
    case SketchKind::kKmv: return "KMV";
  }
  return "?";
}

const char* to_string(BfEstimator e) noexcept {
  switch (e) {
    case BfEstimator::kAnd: return "AND";
    case BfEstimator::kLimit: return "L";
    case BfEstimator::kOr: return "OR";
  }
  return "?";
}

ProbGraph::ProbGraph(const CsrGraph& g, ProbGraphConfig config)
    : graph_(&g), config_(config), family_(config.seed) {
  if (config_.storage_budget <= 0.0 && config_.bf_bits == 0 && config_.minhash_k == 0) {
    throw std::invalid_argument("ProbGraph: storage budget must be positive");
  }
  const VertexId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("ProbGraph: empty graph");

  const double base_bytes = config_.budget_reference_bytes != 0
                                ? static_cast<double>(config_.budget_reference_bytes)
                                : static_cast<double>(g.memory_bytes());
  const double budget_bytes = config_.storage_budget * base_bytes;

  util::Timer timer;
  switch (config_.kind) {
    case SketchKind::kBloomFilter: {
      if (config_.bf_hashes == 0) {
        throw std::invalid_argument("ProbGraph: bf_hashes must be positive");
      }
      std::uint64_t bits = config_.bf_bits;
      if (bits == 0) {
        bits = static_cast<std::uint64_t>(budget_bytes * 8.0 / static_cast<double>(n));
      }
      // Uniform width, multiple of the word size, at least one word.
      bf_bits_ = std::max<std::uint64_t>(kWordBits, bits / kWordBits * kWordBits);
      bf_words_per_vertex_ = util::words_for_bits(bf_bits_);
      build_bloom();
      break;
    }
    case SketchKind::kKHash: {
      k_ = config_.minhash_k != 0
               ? config_.minhash_k
               : std::max<std::uint32_t>(
                     1, static_cast<std::uint32_t>(
                            budget_bytes / (static_cast<double>(n) * sizeof(std::uint64_t))));
      build_khash();
      break;
    }
    case SketchKind::kOneHash: {
      k_ = config_.minhash_k != 0
               ? config_.minhash_k
               : std::max<std::uint32_t>(
                     1, static_cast<std::uint32_t>(
                            budget_bytes / (static_cast<double>(n) * sizeof(BottomKEntry))));
      build_onehash();
      break;
    }
    case SketchKind::kKmv: {
      k_ = config_.minhash_k != 0
               ? config_.minhash_k
               : std::max<std::uint32_t>(
                     2, static_cast<std::uint32_t>(
                            budget_bytes / (static_cast<double>(n) * sizeof(double))));
      k_ = std::max<std::uint32_t>(2, k_);
      build_kmv();
      break;
    }
  }
  construction_seconds_ = timer.seconds();
}

void ProbGraph::build_bloom() {
  const CsrGraph& g = *graph_;
  const VertexId n = g.num_vertices();
  bf_arena_.assign(static_cast<std::size_t>(n) * bf_words_per_vertex_, 0);
  const std::uint32_t b = config_.bf_hashes;
#pragma omp parallel for schedule(dynamic, 128)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    std::uint64_t* words = bf_arena_.data() + static_cast<std::size_t>(v) * bf_words_per_vertex_;
    for (const VertexId x : g.neighbors(static_cast<VertexId>(v))) {
      for (std::uint32_t i = 0; i < b; ++i) {
        const std::uint64_t pos = family_(i, x) % bf_bits_;
        words[pos / kWordBits] |= (std::uint64_t{1} << (pos % kWordBits));
      }
    }
  }
}

void ProbGraph::build_khash() {
  const CsrGraph& g = *graph_;
  const VertexId n = g.num_vertices();
  kh_arena_.assign(static_cast<std::size_t>(n) * k_, kEmptySlot);
#pragma omp parallel
  {
    std::vector<std::uint64_t> best(k_);
#pragma omp for schedule(dynamic, 128)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      std::uint64_t* slots = kh_arena_.data() + static_cast<std::size_t>(v) * k_;
      std::fill(best.begin(), best.end(), ~std::uint64_t{0});
      for (const VertexId x : g.neighbors(static_cast<VertexId>(v))) {
        for (std::uint32_t i = 0; i < k_; ++i) {
          const std::uint64_t h = family_(i, x);
          if (h < best[i]) {
            best[i] = h;
            slots[i] = x;
          }
        }
      }
    }
  }
}

void ProbGraph::build_onehash() {
  const CsrGraph& g = *graph_;
  const VertexId n = g.num_vertices();
  oh_arena_.assign(static_cast<std::size_t>(n) * k_, BottomKEntry{~std::uint64_t{0}, 0});
  sketch_sizes_.assign(n, 0);
#pragma omp parallel for schedule(dynamic, 128)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    BottomKEntry* entries = oh_arena_.data() + static_cast<std::size_t>(v) * k_;
    const auto nv = g.neighbors(static_cast<VertexId>(v));
    std::uint32_t fill = 0;
    auto heap_cmp = [](const BottomKEntry& a, const BottomKEntry& b) { return a < b; };
    for (const VertexId x : nv) {
      const BottomKEntry e{family_(0, x), x};
      if (fill < k_) {
        entries[fill++] = e;
        std::push_heap(entries, entries + fill, heap_cmp);
      } else if (e < entries[0]) {
        std::pop_heap(entries, entries + fill, heap_cmp);
        entries[fill - 1] = e;
        std::push_heap(entries, entries + fill, heap_cmp);
      }
    }
    std::sort(entries, entries + fill);
    sketch_sizes_[v] = fill;
  }
}

void ProbGraph::build_kmv() {
  const CsrGraph& g = *graph_;
  const VertexId n = g.num_vertices();
  kmv_arena_.assign(static_cast<std::size_t>(n) * k_, 2.0);
  sketch_sizes_.assign(n, 0);
#pragma omp parallel for schedule(dynamic, 128)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    double* values = kmv_arena_.data() + static_cast<std::size_t>(v) * k_;
    std::uint32_t fill = 0;
    for (const VertexId x : g.neighbors(static_cast<VertexId>(v))) {
      const double h = util::hash_to_unit(family_(0, x));
      if (fill < k_) {
        values[fill++] = h;
        std::push_heap(values, values + fill);
      } else if (h < values[0]) {
        std::pop_heap(values, values + fill);
        values[fill - 1] = h;
        std::push_heap(values, values + fill);
      }
    }
    std::sort(values, values + fill);
    sketch_sizes_[v] = fill;
  }
}

double ProbGraph::est_intersection(VertexId u, VertexId v) const noexcept {
  const CsrGraph& g = *graph_;
  switch (config_.kind) {
    case SketchKind::kBloomFilter: {
      const auto wu = bf_words(u);
      const auto wv = bf_words(v);
      switch (config_.bf_estimator) {
        case BfEstimator::kAnd:
          return est::bf_intersection_and(util::and_popcount(wu, wv), bf_bits_,
                                          config_.bf_hashes);
        case BfEstimator::kLimit:
          return est::bf_intersection_limit(util::and_popcount(wu, wv), config_.bf_hashes);
        case BfEstimator::kOr:
          return est::bf_intersection_or(static_cast<double>(g.degree(u)),
                                         static_cast<double>(g.degree(v)),
                                         util::or_popcount(wu, wv), bf_bits_,
                                         config_.bf_hashes);
      }
      return 0.0;
    }
    case SketchKind::kKHash: {
      const std::uint32_t matches =
          KHashSketch::matching_slots(khash_signature(u), khash_signature(v));
      const double j = static_cast<double>(matches) / static_cast<double>(k_);
      return est::mh_intersection(j, static_cast<double>(g.degree(u)),
                                  static_cast<double>(g.degree(v)));
    }
    case SketchKind::kOneHash: {
      const double j =
          OneHashSketch::jaccard_from_spans(onehash_entries(u), onehash_entries(v), k_);
      return est::mh_intersection(j, static_cast<double>(g.degree(u)),
                                  static_cast<double>(g.degree(v)));
    }
    case SketchKind::kKmv: {
      const auto vu = kmv_values(u);
      const auto vv = kmv_values(v);
      // Inline union-of-sorted-lists with k smallest, then Eq. (41).
      const std::uint32_t k = k_;
      std::size_t i = 0, j = 0;
      std::uint32_t taken = 0;
      double last = 0.0;
      while (taken < k && (i < vu.size() || j < vv.size())) {
        if (j >= vv.size() || (i < vu.size() && vu[i] < vv[j])) {
          last = vu[i++];
        } else if (i < vu.size() && vu[i] == vv[j]) {
          last = vu[i++];
          ++j;
        } else {
          last = vv[j++];
        }
        ++taken;
      }
      const double est_union =
          (taken < k) ? static_cast<double>(taken) : static_cast<double>(k - 1) / last;
      return std::max(0.0, static_cast<double>(g.degree(u)) +
                               static_cast<double>(g.degree(v)) - est_union);
    }
  }
  return 0.0;
}

double ProbGraph::est_jaccard(VertexId u, VertexId v) const noexcept {
  // MinHash sketches estimate J directly; BF/KMV go through |X∩Y| and the
  // identity J = |X∩Y| / (|X| + |Y| − |X∩Y|) of Listing 6.
  const CsrGraph& g = *graph_;
  const double du = static_cast<double>(g.degree(u));
  const double dv = static_cast<double>(g.degree(v));
  if (du + dv == 0.0) return 0.0;
  switch (config_.kind) {
    case SketchKind::kKHash:
      return static_cast<double>(
                 KHashSketch::matching_slots(khash_signature(u), khash_signature(v))) /
             static_cast<double>(k_);
    case SketchKind::kOneHash:
      return OneHashSketch::jaccard_from_spans(onehash_entries(u), onehash_entries(v), k_);
    default: {
      const double inter = std::min(est_intersection(u, v), du + dv);
      const double uni = du + dv - inter;
      return uni <= 0.0 ? 1.0 : inter / uni;
    }
  }
}

double ProbGraph::est_overlap(VertexId u, VertexId v) const noexcept {
  const CsrGraph& g = *graph_;
  const double denom = static_cast<double>(std::min(g.degree(u), g.degree(v)));
  if (denom == 0.0) return 0.0;
  return est_intersection(u, v) / denom;
}

double ProbGraph::est_total_neighbors(VertexId u, VertexId v) const noexcept {
  const CsrGraph& g = *graph_;
  return static_cast<double>(g.degree(u)) + static_cast<double>(g.degree(v)) -
         est_intersection(u, v);
}

std::size_t ProbGraph::memory_bytes() const noexcept {
  return bf_arena_.size() * sizeof(std::uint64_t) + kh_arena_.size() * sizeof(std::uint64_t) +
         oh_arena_.size() * sizeof(BottomKEntry) + kmv_arena_.size() * sizeof(double) +
         sketch_sizes_.size() * sizeof(std::uint32_t);
}

double ProbGraph::relative_memory() const noexcept {
  const double base = config_.budget_reference_bytes != 0
                          ? static_cast<double>(config_.budget_reference_bytes)
                          : static_cast<double>(graph_->memory_bytes());
  return static_cast<double>(memory_bytes()) / base;
}

}  // namespace probgraph
