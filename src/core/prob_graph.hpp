// ProbGraph: the probabilistic graph representation (paper §V, §VI).
//
// A ProbGraph instance holds one probabilistic sketch per vertex
// neighborhood of a CSR graph, laid out in a single contiguous arena:
//
//   * every vertex gets the *same* sketch size (derived from the storage
//     budget s of §V-A) — the load-balancing property of Fig. 1 panel 5:
//     "all set intersections are conducted over the same size bit vectors,
//     annihilating issues related to intersecting neighborhoods of
//     different sizes";
//   * construction parallelizes over vertices with no synchronization,
//     since each vertex's sketch occupies a private arena slice (Table V);
//   * `est_intersection(u, v)` returns the |N_u ∩ N_v| estimate under the
//     configured representation and estimator — the drop-in replacement for
//     the blue operations in Listings 1–5.
//
// Usage (cf. the paper's Listing 6):
//   CsrGraph g = ...;
//   ProbGraph pg(g, {.kind = SketchKind::BloomFilter, .storage_budget = 0.25});
//   double inter = pg.est_intersection(u, v);
//   double jac   = pg.est_jaccard(u, v);
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/bloom_filter.hpp"
#include "core/minhash.hpp"
#include "graph/csr_graph.hpp"
#include "util/arena_ref.hpp"
#include "util/hash.hpp"
#include "util/types.hpp"

namespace probgraph {

/// Which probabilistic set representation backs the ProbGraph (§II-D, §IX).
enum class SketchKind : std::uint8_t {
  kBloomFilter,  ///< bit vectors + b hash functions
  kKHash,        ///< MinHash, k independent hash functions
  kOneHash,      ///< MinHash bottom-k, single hash function
  kKmv,          ///< K Minimum Values
};

/// Which |X∩Y| estimator to apply on top of a Bloom-filter ProbGraph.
enum class BfEstimator : std::uint8_t {
  kAnd,    ///< Eq. (2), the default
  kLimit,  ///< Eq. (4), the B→∞ limit — better on some dense graphs (§VIII-B)
  kOr,     ///< Eq. (29), the Swamidass OR baseline
};

[[nodiscard]] const char* to_string(SketchKind kind) noexcept;
[[nodiscard]] const char* to_string(BfEstimator e) noexcept;

/// Inverse of to_string, also accepting the CLI spellings used by pgtool
/// ("bf", "1h", "kh", "kmv" / "and", "limit", "or"), case-insensitively.
/// Returns nullopt on anything else — callers decide how to fail.
[[nodiscard]] std::optional<SketchKind> parse_sketch_kind(std::string_view s) noexcept;
[[nodiscard]] std::optional<BfEstimator> parse_bf_estimator(std::string_view s) noexcept;

struct ProbGraphConfig {
  SketchKind kind = SketchKind::kBloomFilter;

  /// The storage budget s ∈ (0, 1]: PG may use up to s × (CSR bytes) of
  /// additional memory (§V-A). Ignored for a parameter fixed explicitly
  /// below. The paper's evaluation never exceeds s = 0.33.
  double storage_budget = 0.25;

  /// Number of BF hash functions b. The evaluation uses b ∈ {1, 2, 4} and
  /// notes PG "benefits from low b ∈ {1, 2}" (§VIII-G).
  std::uint32_t bf_hashes = 2;

  /// Explicit per-vertex BF width in bits (0 = derive from storage_budget;
  /// always rounded up to a multiple of 64).
  std::uint64_t bf_bits = 0;

  /// Explicit MinHash/KMV k (0 = derive from storage_budget).
  std::uint32_t minhash_k = 0;

  /// Base for the storage budget in bytes (0 = the CSR bytes of the graph
  /// being sketched). Set this to the *original* graph's CSR size when
  /// sketching the degree-oriented DAG, so that s keeps its §V-A meaning of
  /// "additional memory on top of the default CSR representation of G".
  std::size_t budget_reference_bytes = 0;

  /// BF estimator selection.
  BfEstimator bf_estimator = BfEstimator::kAnd;

  /// Seed for all hash families (the paper seeds with wall-clock time; we
  /// default to a fixed seed for reproducibility).
  std::uint64_t seed = 42;
};

/// Fully-built ProbGraph state — config, derived parameters, and arenas —
/// as independent pieces. The snapshot layer (src/io/snapshot.cpp)
/// deserializes into this and rebuilds a ProbGraph without re-sketching;
/// the arenas may view an mmap'ed file (zero-copy serving).
struct ProbGraphParts {
  ProbGraphConfig config;
  std::uint64_t bf_bits = 0;
  std::size_t bf_words_per_vertex = 0;
  std::uint32_t minhash_k = 0;
  util::ArenaRef<std::uint64_t> bf_arena;
  util::ArenaRef<std::uint64_t> kh_arena;
  util::ArenaRef<BottomKEntry> oh_arena;
  util::ArenaRef<double> kmv_arena;
  util::ArenaRef<std::uint32_t> sketch_sizes;
  double construction_seconds = 0.0;
};

class ProbGraph {
 public:
  /// Build sketches for every vertex neighborhood of `g`. The graph must
  /// outlive the ProbGraph (sketch estimates use exact degrees).
  ProbGraph(const CsrGraph& g, ProbGraphConfig config);

  /// Adopt prebuilt state (the snapshot load path) — no re-sketching. Arena
  /// sizes are checked against `g` and the derived parameters; throws
  /// std::invalid_argument on mismatch. As above, `g` must outlive the
  /// ProbGraph.
  [[nodiscard]] static ProbGraph from_parts(const CsrGraph& g, ProbGraphParts parts);

  [[nodiscard]] const CsrGraph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const ProbGraphConfig& config() const noexcept { return config_; }
  [[nodiscard]] SketchKind kind() const noexcept { return config_.kind; }

  // --- Derived sketch parameters. ---

  /// Per-vertex BF width in bits (0 unless kind == kBloomFilter).
  [[nodiscard]] std::uint64_t bf_bits() const noexcept { return bf_bits_; }
  /// Per-vertex MinHash/KMV size k (0 for BF).
  [[nodiscard]] std::uint32_t minhash_k() const noexcept { return k_; }

  // --- The |N_u ∩ N_v| estimator (the blue operation of Listings 1–5). ---

  /// Per-call dispatch convenience wrapper over visit_backend. Inside a hot
  /// loop, prefer hoisting the dispatch: visit once, then call the concrete
  /// backend's est_intersection per edge (see core/backends.hpp).
  [[nodiscard]] double est_intersection(VertexId u, VertexId v) const noexcept;

  // --- Static backend dispatch (core/backends.hpp defines these). ---

  /// Resolve (kind, bf_estimator) exactly once and invoke `f` with the
  /// matching concrete backend (BloomAndBackend, ..., KmvBackend). All
  /// algorithm kernels are templates instantiated through this visitor so
  /// their parallel inner loops are free of sketch dispatch.
  template <typename F>
  decltype(auto) visit_backend(F&& f) const;

  /// Construct a specific backend view over this ProbGraph's arenas. The
  /// caller must pick the type matching kind()/config().bf_estimator;
  /// visit_backend does that automatically.
  template <typename Backend>
  [[nodiscard]] Backend backend() const noexcept;

  // --- Derived similarity estimators (Listing 3). ---

  [[nodiscard]] double est_jaccard(VertexId u, VertexId v) const noexcept;
  [[nodiscard]] double est_overlap(VertexId u, VertexId v) const noexcept;
  [[nodiscard]] double est_common_neighbors(VertexId u, VertexId v) const noexcept {
    return est_intersection(u, v);
  }
  [[nodiscard]] double est_total_neighbors(VertexId u, VertexId v) const noexcept;

  // --- Representation-specific accessors (hot paths of the algorithms). ---

  /// Words of vertex v's Bloom filter inside the arena.
  [[nodiscard]] std::span<const std::uint64_t> bf_words(VertexId v) const noexcept {
    return {bf_arena_.data() + static_cast<std::size_t>(v) * bf_words_per_vertex_,
            bf_words_per_vertex_};
  }
  [[nodiscard]] BloomFilterView bf(VertexId v) const noexcept {
    return {bf_words(v), bf_bits_, config_.bf_hashes, family_};
  }

  /// k-hash signature of vertex v.
  [[nodiscard]] std::span<const std::uint64_t> khash_signature(VertexId v) const noexcept {
    return {kh_arena_.data() + static_cast<std::size_t>(v) * k_, k_};
  }

  /// Bottom-k entries of vertex v (sorted by hash; size <= k).
  [[nodiscard]] std::span<const BottomKEntry> onehash_entries(VertexId v) const noexcept {
    return {oh_arena_.data() + static_cast<std::size_t>(v) * k_, sketch_sizes_[v]};
  }

  /// KMV values of vertex v (sorted ascending; size <= k).
  [[nodiscard]] std::span<const double> kmv_values(VertexId v) const noexcept {
    return {kmv_arena_.data() + static_cast<std::size_t>(v) * k_, sketch_sizes_[v]};
  }

  // --- Whole-arena views (the snapshot writer serializes these). ---

  [[nodiscard]] std::span<const std::uint64_t> bf_arena() const noexcept {
    return bf_arena_.span();
  }
  [[nodiscard]] std::span<const std::uint64_t> kh_arena() const noexcept {
    return kh_arena_.span();
  }
  [[nodiscard]] std::span<const BottomKEntry> oh_arena() const noexcept {
    return oh_arena_.span();
  }
  [[nodiscard]] std::span<const double> kmv_arena() const noexcept {
    return kmv_arena_.span();
  }
  [[nodiscard]] std::span<const std::uint32_t> sketch_sizes() const noexcept {
    return sketch_sizes_.span();
  }

  /// True when the sketch arenas view an external mapping (snapshot-served)
  /// rather than owned heap storage.
  [[nodiscard]] bool is_mapped() const noexcept {
    return bf_arena_.is_mapped() || kh_arena_.is_mapped() || oh_arena_.is_mapped() ||
           kmv_arena_.is_mapped() || sketch_sizes_.is_mapped();
  }

  // --- Memory accounting (the relative-memory axis of Figs. 4–7). ---

  /// Bytes of sketch storage (arena + per-vertex sizes).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;
  /// memory_bytes() / CSR bytes — the shade axis of Figs. 4–7; should not
  /// exceed the configured storage budget by more than rounding.
  [[nodiscard]] double relative_memory() const noexcept;

  /// Wall-clock seconds spent building the sketches (§VIII-G).
  [[nodiscard]] double construction_seconds() const noexcept { return construction_seconds_; }

 private:
  ProbGraph() = default;  // from_parts fills every member

  void build_bloom();
  void build_khash();
  void build_onehash();
  void build_kmv();

  const CsrGraph* graph_ = nullptr;
  ProbGraphConfig config_;
  util::HashFamily family_;

  std::uint64_t bf_bits_ = 0;
  std::size_t bf_words_per_vertex_ = 0;
  std::uint32_t k_ = 0;

  // Owned by the build path, mmap-backed views on the snapshot load path.
  util::ArenaRef<std::uint64_t> bf_arena_;      // n * bf_words_per_vertex_
  util::ArenaRef<std::uint64_t> kh_arena_;      // n * k signature slots
  util::ArenaRef<BottomKEntry> oh_arena_;       // n * k entries
  util::ArenaRef<double> kmv_arena_;            // n * k values
  util::ArenaRef<std::uint32_t> sketch_sizes_;  // per-vertex fill (1-hash/KMV)

  double construction_seconds_ = 0.0;
};

}  // namespace probgraph
