// Communication-cost model for the distributed-memory analysis (§VIII-F).
//
// The paper evaluates ProbGraph on Piz Daint (Cray XC50) and reports that
// shipping fixed-size sketches instead of raw neighborhoods reduces overall
// communication time by up to 4×. Offline we have no interconnect, so the
// distributed execution is *simulated*: a simple alpha-beta (latency +
// bandwidth) cost model over the exact per-rank traffic counts produced by
// `DistributedEngine`. The traffic counts are exact; only the wall-clock
// mapping is modeled.
#pragma once

#include <cstdint>

namespace probgraph::dist {

/// Alpha-beta point-to-point model: time = alpha + bytes / beta.
struct CommModel {
  double alpha_s = 1.5e-6;     ///< per-message latency (Cray Aries class)
  double beta_Bps = 10.0e9;    ///< per-link bandwidth, bytes/second

  [[nodiscard]] double transfer_seconds(std::uint64_t messages,
                                        std::uint64_t bytes) const noexcept {
    return static_cast<double>(messages) * alpha_s +
           static_cast<double>(bytes) / beta_Bps;
  }
};

}  // namespace probgraph::dist
