#include "distributed/dist_engine.hpp"

#include <algorithm>
#include <unordered_set>

namespace probgraph::dist {

namespace {

std::uint64_t exact_bytes(std::uint64_t degree, std::uint64_t) {
  return degree * sizeof(VertexId);
}

std::uint64_t fixed_bytes(std::uint64_t, std::uint64_t param) { return param; }

}  // namespace

Representation exact_representation() noexcept {
  return {"Exact CSR", &exact_bytes, 0};
}

Representation bloom_representation(std::uint64_t bits) noexcept {
  return {"ProbGraph(BF)", &fixed_bytes, (bits + 7) / 8};
}

Representation minhash_representation(std::uint64_t k, std::uint64_t entry_bytes) noexcept {
  return {"ProbGraph(MH)", &fixed_bytes, k * entry_bytes};
}

TrafficReport simulate_tc_traffic(const CsrGraph& dag, std::uint32_t ranks,
                                  const Representation& repr, const CommModel& model) {
  const BlockPartition part(dag.num_vertices(), ranks);
  TrafficReport report;
  std::vector<std::uint64_t> rank_bytes(part.num_ranks(), 0);
  std::vector<std::uint64_t> rank_msgs(part.num_ranks(), 0);

#pragma omp parallel for schedule(dynamic)
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(part.num_ranks()); ++r) {
    // Per-rank fetch cache: a remote neighborhood is shipped at most once.
    std::unordered_set<VertexId> fetched;
    std::uint64_t bytes = 0, msgs = 0;
    const auto rank = static_cast<std::uint32_t>(r);
    for (VertexId v = part.block_begin(rank); v < part.block_end(rank); ++v) {
      for (const VertexId u : dag.neighbors(v)) {
        if (part.owner(u) == rank) continue;
        if (!fetched.insert(u).second) continue;
        bytes += repr.payload_bytes(dag.degree(u), repr.param);
        ++msgs;
      }
    }
    rank_bytes[rank] = bytes;
    rank_msgs[rank] = msgs;
  }

  for (std::uint32_t r = 0; r < part.num_ranks(); ++r) {
    report.total_bytes += rank_bytes[r];
    report.total_messages += rank_msgs[r];
    report.max_rank_bytes = std::max(report.max_rank_bytes, rank_bytes[r]);
    report.modeled_seconds = std::max(
        report.modeled_seconds, model.transfer_seconds(rank_msgs[r], rank_bytes[r]));
  }
  return report;
}

}  // namespace probgraph::dist
