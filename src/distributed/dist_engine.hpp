// Simulated distributed-memory triangle counting (§VIII-F).
//
// "ProbGraph is seamlessly applicable to both shared- and distributed-
// memory settings. Due to the small sizes of neighborhood sketches, we
// never have to distribute any sketch across two compute nodes. ... We
// currently employ a straightforward scheme in which sketches are
// transferred across the network using point-to-point message passing ...
// This offers significant reductions in overall communication times,
// compared to standard baselines, of up to 4×."
//
// The simulation executes the node-iterator TC loop under a block vertex
// partition and counts, exactly, the remote traffic each rank generates:
// for every DAG arc (v, u) with owner(v) = r != owner(u), rank r must fetch
// u's neighborhood representation — 4·d⁺(u) bytes of raw CSR adjacency for
// the exact baseline, or one fixed-size sketch for ProbGraph. Fetches are
// cached per rank (each remote neighborhood crosses the wire at most once
// per rank), matching the paper's "conduct intersections on a single node"
// scheme. Wall-clock is then modeled with the alpha-beta CommModel; the
// byte/message counts themselves are exact, not modeled.
#pragma once

#include <cstdint>
#include <vector>

#include "distributed/comm_model.hpp"
#include "distributed/partition.hpp"
#include "graph/csr_graph.hpp"

namespace probgraph::dist {

/// How a neighborhood travels over the wire.
struct Representation {
  const char* label;
  /// Bytes on the wire for a vertex of the given out-degree.
  /// Exact CSR: 4·d bytes; BF: B/8 bytes; MinHash/KMV: k·entry bytes.
  std::uint64_t (*payload_bytes)(std::uint64_t degree, std::uint64_t param);
  std::uint64_t param;  ///< B (bits) for BF, k·entry_bytes for MinHash
};

[[nodiscard]] Representation exact_representation() noexcept;
[[nodiscard]] Representation bloom_representation(std::uint64_t bits) noexcept;
[[nodiscard]] Representation minhash_representation(std::uint64_t k,
                                                    std::uint64_t entry_bytes) noexcept;

struct TrafficReport {
  std::uint64_t total_messages = 0;  ///< remote neighborhood fetches (after caching)
  std::uint64_t total_bytes = 0;     ///< payload bytes over all fetches
  std::uint64_t max_rank_bytes = 0;  ///< heaviest rank (critical path)
  double modeled_seconds = 0.0;      ///< alpha-beta time of the heaviest rank
};

/// Simulate the TC arc loop of Listing 1 over `dag` on `ranks` ranks and
/// account the communication needed to fetch remote neighborhoods under
/// `repr`. Purely analytical: no triangles are actually counted.
[[nodiscard]] TrafficReport simulate_tc_traffic(const CsrGraph& dag, std::uint32_t ranks,
                                                const Representation& repr,
                                                const CommModel& model = {});

}  // namespace probgraph::dist
