// 1D block vertex partitioning for the distributed simulation (§VIII-F).
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace probgraph::dist {

/// Contiguous block partition of {0..n-1} into `ranks` near-equal blocks.
class BlockPartition {
 public:
  BlockPartition(VertexId num_vertices, std::uint32_t ranks) noexcept
      : n_(num_vertices),
        ranks_(ranks == 0 ? 1 : ranks),
        block_((num_vertices + ranks_ - 1) / ranks_) {}

  [[nodiscard]] std::uint32_t num_ranks() const noexcept { return ranks_; }

  /// Owning rank of vertex v.
  [[nodiscard]] std::uint32_t owner(VertexId v) const noexcept {
    return block_ == 0 ? 0 : static_cast<std::uint32_t>(v / block_);
  }

  /// First vertex of rank r's block.
  [[nodiscard]] VertexId block_begin(std::uint32_t r) const noexcept {
    const auto begin = static_cast<std::uint64_t>(r) * block_;
    return begin > n_ ? n_ : static_cast<VertexId>(begin);
  }

  /// One-past-last vertex of rank r's block.
  [[nodiscard]] VertexId block_end(std::uint32_t r) const noexcept {
    const auto end = static_cast<std::uint64_t>(r + 1) * block_;
    return end > n_ ? n_ : static_cast<VertexId>(end);
  }

 private:
  VertexId n_;
  std::uint32_t ranks_;
  VertexId block_;
};

}  // namespace probgraph::dist
