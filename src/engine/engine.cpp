#include "engine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/clique_count.hpp"
#include "algorithms/clustering.hpp"
#include "algorithms/clustering_coefficient.hpp"
#include "algorithms/kclique.hpp"
#include "algorithms/link_prediction.hpp"
#include "algorithms/similarity_kernels.hpp"
#include "algorithms/triangle_count.hpp"
#include "algorithms/vertex_similarity.hpp"
#include "core/backends.hpp"
#include "core/bounds.hpp"
#include "graph/orientation.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace probgraph::engine {

namespace {

// --- Engine instrumentation (see obs/metrics.hpp). All instruments are
// resolved ONCE (registry mutex, first run() in the process) and cached as
// raw pointers, so the per-query cost is a handful of relaxed atomic adds
// — the lock-free hot-path contract of engine.hpp extends to these.

/// Protocol keyword per Query variant index (the variant order in
/// query.hpp is the source of truth; query_name() agrees).
constexpr std::size_t kNumFamilies = std::variant_size_v<Query>;
constexpr const char* kFamilyNames[kNumFamilies] = {
    "tc", "4cc", "kclique", "cc", "cluster", "pair", "lp", "stats"};

/// Routing labels in protocol `kind=` spelling, indexed by SketchKind.
constexpr const char* kKindLabels[4] = {"bf", "kh", "1h", "kmv"};

struct EngineMetrics {
  obs::Counter* queries[kNumFamilies][3];  // [family][mode]
  obs::Counter* errors[kNumFamilies];
  obs::Histogram* latency[kNumFamilies];
  obs::Histogram* bound_width[kNumFamilies];
  obs::Counter* substrate[4][2];  // [SketchKind][degree_oriented]

  static constexpr const char* kModeLabels[3] = {"sketch", "exact", "plain"};

  EngineMetrics() {
    auto& reg = obs::Registry::global();
    for (std::size_t f = 0; f < kNumFamilies; ++f) {
      const std::string type = kFamilyNames[f];
      for (std::size_t m = 0; m < 3; ++m) {
        queries[f][m] = &reg.counter(
            "probgraph_queries_total",
            "Queries answered, by query type and execution mode "
            "(sketch estimator, exact baseline, or plain/no-sketch)",
            {{"type", type}, {"mode", kModeLabels[m]}});
      }
      errors[f] = &reg.counter(
          "probgraph_query_errors_total",
          "Queries that raised (bad arguments, routing failures)",
          {{"type", type}});
      latency[f] = &reg.histogram(
          "probgraph_query_latency_seconds",
          "End-to-end Engine::run latency including lazy substrate builds",
          {{"type", type}});
      bound_width[f] = &reg.histogram(
          "probgraph_bound_rel_width",
          "Relative deviation-bound width 2t/|value| of sketch answers "
          "(the paper's accuracy knob, observed per query)",
          {{"type", type}});
    }
    for (std::size_t k = 0; k < 4; ++k) {
      for (std::size_t o = 0; o < 2; ++o) {
        substrate[k][o] = &reg.counter(
            "probgraph_query_substrate_total",
            "Sketch substrate that answered, by kind and orientation",
            {{"kind", kKindLabels[k]}, {"orientation", o ? "dag" : "sym"}});
      }
    }
  }
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m;
  return m;
}

/// Map an EstimateKind to the SimilarityMeasure computing the same number
/// exactly (kIntersection and kCommonNeighbors coincide).
algo::SimilarityMeasure exact_measure(EstimateKind kind) noexcept {
  switch (kind) {
    case EstimateKind::kIntersection:
    case EstimateKind::kCommonNeighbors: return algo::SimilarityMeasure::kCommonNeighbors;
    case EstimateKind::kJaccard: return algo::SimilarityMeasure::kJaccard;
    case EstimateKind::kOverlap: return algo::SimilarityMeasure::kOverlap;
    case EstimateKind::kTotalNeighbors: return algo::SimilarityMeasure::kTotalNeighbors;
  }
  return algo::SimilarityMeasure::kCommonNeighbors;
}

/// Batched PairEstimate sweep under a concrete backend: consecutive pairs
/// sharing a left vertex are scored through one similarity_backend_batch
/// call (cache-blocked batched estimators on the Bloom backends), so a
/// serving client streaming {u, v1}, {u, v2}, ... gets the batch path
/// automatically. EstimateKind maps onto SimilarityMeasure exactly
/// (exact_measure above), and the batch is bit-identical to the per-pair
/// loop, so replies match ProbGraph::est_* bit for bit.
template <typename Backend>
void pair_sweep_backend(const Backend& be, std::span<const VertexPair> pairs,
                        EstimateKind kind, QueryResult& r) {
  const algo::SimilarityMeasure m = exact_measure(kind);
  std::vector<VertexId> run_vs;
  std::vector<double> run_scores;
  std::size_t i = 0;
  while (i < pairs.size()) {
    const VertexId u = pairs[i].u;
    std::size_t j = i;
    run_vs.clear();
    while (j < pairs.size() && pairs[j].u == u) run_vs.push_back(pairs[j++].v);
    run_scores.resize(run_vs.size());
    algo::similarity_backend_batch(be, u, {run_vs.data(), run_vs.size()}, m,
                                   run_scores.data());
    for (std::size_t t = 0; t < run_vs.size(); ++t) {
      r.pairs.push_back({u, run_vs[t], run_scores[t]});
    }
    i = j;
  }
}

/// Theorem VII.1 deviation bound for a triangle-count estimate, evaluated
/// at t = 10% of the estimate (floored at one triangle). `num_edges` is
/// the m of the estimator's sum (DAG arcs for the oriented mode, |E| for
/// the full mode). nullopt where the paper provides no bound (KMV, the
/// non-AND BF estimators, or outside the BF bound's applicability range).
std::optional<BoundInfo> tc_bound(const ProbGraph& pg, double num_edges, double est) {
  const CsrGraph& g = pg.graph();
  const double t = std::max(1.0, 0.10 * std::abs(est));
  switch (pg.kind()) {
    case SketchKind::kBloomFilter: {
      if (pg.config().bf_estimator != BfEstimator::kAnd) return std::nullopt;
      const double bits = static_cast<double>(pg.bf_bits());
      const double b = pg.config().bf_hashes;
      const double delta = static_cast<double>(g.max_degree());
      if (!bounds::bf_and_bound_applicable(delta, bits, b)) return std::nullopt;
      const double p = bounds::tc_bf_deviation_bound(num_edges, delta, bits, b, t);
      return BoundInfo{"Thm VII.1 (BF-AND)", t, std::min(1.0, p)};
    }
    case SketchKind::kKHash:
    case SketchKind::kOneHash: {
      const double p = bounds::tc_mh_deviation_bound(g.degree_moment(2), pg.minhash_k(), t);
      return BoundInfo{"Thm VII.1 (MinHash)", t, std::min(1.0, p)};
    }
    case SketchKind::kKmv: return std::nullopt;
  }
  return std::nullopt;
}

/// Per-pair intersection deviation bound (§IV / Appendix A) at threshold
/// t = 10% of the estimate, floored at 1.
std::optional<double> pair_bound_probability(const ProbGraph& pg, VertexId u, VertexId v,
                                             double est) {
  const CsrGraph& g = pg.graph();
  const double t = std::max(1.0, 0.10 * std::abs(est));
  const double du = static_cast<double>(g.degree(u));
  const double dv = static_cast<double>(g.degree(v));
  switch (pg.kind()) {
    case SketchKind::kBloomFilter: {
      if (pg.config().bf_estimator != BfEstimator::kAnd) return std::nullopt;
      const double bits = static_cast<double>(pg.bf_bits());
      const double b = pg.config().bf_hashes;
      if (!bounds::bf_and_bound_applicable(est, bits, b)) return std::nullopt;
      return bounds::bf_and_deviation_bound(est, bits, b, t);
    }
    case SketchKind::kKHash:
    case SketchKind::kOneHash:
      return bounds::mh_deviation_bound(du, dv, pg.minhash_k(), t);
    case SketchKind::kKmv:
      return bounds::kmv_intersection_deviation_bound(
          du, dv, std::max(1.0, du + dv - est), pg.minhash_k(), t);
  }
  return std::nullopt;
}

}  // namespace

Engine::Engine(CsrGraph g, ProbGraphConfig config)
    : owned_base_(std::make_unique<const CsrGraph>(std::move(g))),
      base_(owned_base_.get()),
      config_(config) {}

Engine Engine::from_snapshot(const std::string& path) {
  Engine e{CsrGraph{}, ProbGraphConfig{}};
  e.owned_base_.reset();
  e.snap_.emplace(io::load_snapshot(path));
  e.base_ = &e.snap_->graph();
  e.config_ = e.snap_->prob_graph().config();
  return e;
}

const CsrGraph& Engine::symmetric_graph() const {
  if (snap_) {
    if (const CsrGraph* g = snap_->graph_for(/*degree_oriented=*/false)) return *g;
    throw std::runtime_error(
        "snapshot sketches only the degree-oriented DAG (it serves " +
        io::describe_substrates(snap_->info().substrates) +
        "); this query needs the symmetric graph (rebuild without --orient, or "
        "with --orient both)");
  }
  return *base_;
}

const CsrGraph& Engine::dag() {
  if (snap_) {
    if (const CsrGraph* d = snap_->graph_for(/*degree_oriented=*/true)) return *d;
  }
  util::MutexLock lock(*cache_mu_);
  return dag_locked();
}

const CsrGraph& Engine::dag_locked() {
  if (snap_) {
    if (const CsrGraph* d = snap_->graph_for(/*degree_oriented=*/true)) return *d;
  }
  if (!dag_) dag_ = std::make_unique<const CsrGraph>(degree_orient(symmetric_graph()));
  return *dag_;
}

const ProbGraph* Engine::try_snapshot_pg(std::optional<SketchKind> kind,
                                         bool oriented) const {
  if (kind) return snap_->find_substrate(*kind, oriented);
  if (const ProbGraph* pg = snap_->find_substrate(snap_->info().kind, oriented)) {
    return pg;
  }
  return snap_->sole_substrate(oriented);
}

bool Engine::snapshot_carries_orientation(bool oriented) const {
  for (const io::SubstrateInfo& s : snap_->info().substrates) {
    if (s.degree_oriented == oriented) return true;
  }
  return false;
}

void Engine::fail_routing(std::optional<SketchKind> kind, bool oriented) const {
  const std::string carried = io::describe_substrates(snap_->info().substrates);
  const char* orientation =
      oriented ? "the degree-oriented DAG" : "the symmetric graph";
  // Only suggest kind= when a kind can actually work (some substrate of
  // the needed orientation exists); otherwise only a rebuild helps.
  const bool any_of_orientation = snapshot_carries_orientation(oriented);
  std::string msg;
  if (kind) {
    // The actionable rebuild for a missing kind is --kinds (plus the
    // orientation flag only when that whole orientation is absent) — not
    // an --orient change, which would reproduce the same error.
    msg = std::string("snapshot carries no ") + to_string(*kind) +
          (oriented ? "/dag substrate" : "/sym substrate") + " (it serves " + carried +
          "); rebuild with --kinds including " + to_string(*kind);
    if (!any_of_orientation) {
      msg += oriented ? " and --orient (or --orient both)"
                      : " and without --orient (or with --orient both)";
    } else {
      msg += ", or route to a carried kind with kind=";
    }
    throw std::runtime_error(msg);
  }
  // Default route: distinguish "nothing of this orientation" from
  // "several substrates of it, none matching the primary kind" — the
  // latter is an ambiguity the caller resolves with kind=, not a rebuild.
  if (any_of_orientation) {
    msg = std::string("snapshot carries several sketches of ") + orientation +
          " but none of the primary kind (" + to_string(snap_->info().kind) +
          ") — it serves " + carried + "; pick one with kind=";
  } else {
    msg = std::string("snapshot carries no sketches of ") + orientation +
          " (it serves " + carried + "); ";
    msg += oriented ? "rebuild with --orient or --orient both"
                    : "rebuild without --orient, or with --orient both";
  }
  throw std::runtime_error(msg);
}

const ProbGraph& Engine::symmetric_pg(std::optional<SketchKind> kind) {
  if (snap_) {
    if (const ProbGraph* pg = try_snapshot_pg(kind, /*oriented=*/false)) return *pg;
    fail_routing(kind, /*oriented=*/false);
  }
  check_in_memory_kind(kind);
  util::MutexLock lock(*cache_mu_);
  if (!sym_pg_) sym_pg_.emplace(*base_, config_);
  return *sym_pg_;
}

const ProbGraph& Engine::oriented_pg(std::optional<SketchKind> kind) {
  if (snap_) {
    if (const ProbGraph* pg = try_snapshot_pg(kind, /*oriented=*/true)) return *pg;
    fail_routing(kind, /*oriented=*/true);
  }
  check_in_memory_kind(kind);
  util::MutexLock lock(*cache_mu_);
  if (!dag_pg_) {
    // Keep the §V-A budget meaning of "additional memory on top of the CSR
    // of G" when sketching the DAG — same as pgtool build --orient.
    ProbGraphConfig cfg = config_;
    cfg.budget_reference_bytes = base_->memory_bytes();
    dag_pg_.emplace(dag_locked(), cfg);
  }
  return *dag_pg_;
}

void Engine::check_in_memory_kind(std::optional<SketchKind> kind) const {
  if (!kind || *kind == config_.kind) return;
  throw std::runtime_error(
      std::string("engine is configured for ") + to_string(config_.kind) +
      " sketches; kind=" + to_string(*kind) +
      " needs a rebuild with --sketch, or a multi-substrate snapshot carrying it");
}

void Engine::check_vertex(VertexId v) const {
  if (v >= base_->num_vertices()) {
    throw std::invalid_argument("vertex " + std::to_string(v) + " out of range (n = " +
                                std::to_string(base_->num_vertices()) + ")");
  }
}

void Engine::fill_sketch_meta(QueryResult& r, const ProbGraph& pg,
                              bool degree_oriented) const {
  r.sketch.used = true;
  r.sketch.kind = pg.kind();
  r.sketch.bf_estimator = pg.config().bf_estimator;
  r.sketch.bf_bits = pg.bf_bits();
  r.sketch.bf_hashes = pg.config().bf_hashes;
  r.sketch.minhash_k = pg.minhash_k();
  r.sketch.relative_memory = pg.relative_memory();
  r.sketch.construction_seconds = pg.construction_seconds();
  r.sketch.mapped = pg.is_mapped();
  r.sketch.degree_oriented = degree_oriented;
}

QueryResult Engine::run(const Query& query) { return run_with_hint(query, nullptr); }

QueryResult Engine::run_with_hint(const Query& query, const ProbGraph* sym_hint) {
  EngineMetrics& m = engine_metrics();
  const std::size_t fam = query.index();
  util::Timer timer;
  try {
    QueryResult r = std::visit(
        [this, sym_hint](const auto& q) -> QueryResult {
          using T = std::decay_t<decltype(q)>;
          if constexpr (std::is_same_v<T, PairEstimate> ||
                        std::is_same_v<T, LinkPredict>) {
            return exec(q, q.exact ? nullptr : sym_hint);
          } else {
            return exec(q);
          }
        },
        query);
    // r.elapsed_seconds deliberately excludes lazy builds (it is part of
    // the reply); the latency histogram records the full run() wall time,
    // which is what a serving operator sees.
    m.latency[fam]->observe(timer.seconds());
    const std::size_t mode = r.exact ? 1 : (r.sketch.used ? 0 : 2);
    m.queries[fam][mode]->add();
    if (r.sketch.used) {
      m.substrate[static_cast<std::size_t>(r.sketch.kind) & 3u]
                 [r.sketch.degree_oriented ? 1 : 0]
          ->add();
    }
    if (r.bound && std::abs(r.value) > 0) {
      m.bound_width[fam]->observe(2.0 * r.bound->t / std::abs(r.value));
    }
    return r;
  } catch (...) {
    m.errors[fam]->add();
    m.latency[fam]->observe(timer.seconds());
    throw;
  }
}

namespace {

/// True when `q` is a non-exact pair/lp query whose symmetric-substrate
/// route (its `sketch` field) can be hoisted across a batch run; sets
/// `route` to that field.
bool shared_symmetric_route(const Query& q, std::optional<SketchKind>& route) {
  if (const auto* pe = std::get_if<PairEstimate>(&q)) {
    if (pe->exact) return false;
    route = pe->sketch;
    return true;
  }
  if (const auto* lp = std::get_if<LinkPredict>(&q)) {
    if (lp->exact) return false;
    route = lp->sketch;
    return true;
  }
  return false;
}

}  // namespace

BatchItem Engine::run_one(const Query& query, const ProbGraph* sym_hint) {
  BatchItem item;
  util::Timer wall;
  try {
    item.result = run_with_hint(query, sym_hint);
  } catch (const std::invalid_argument& e) {
    item.error = e.what();
    item.invalid_argument = true;
  } catch (const std::exception& e) {
    item.error = e.what();
  }
  item.wall_seconds = wall.seconds();
  return item;
}

std::vector<BatchItem> Engine::run_batch(std::span<const Query> queries) {
  std::vector<BatchItem> out;
  out.reserve(queries.size());
  std::size_t i = 0;
  while (i < queries.size()) {
    std::optional<SketchKind> route;
    if (!shared_symmetric_route(queries[i], route)) {
      out.push_back(run_one(queries[i], nullptr));
      ++i;
      continue;
    }
    // Maximal run of consecutive queries sharing one symmetric route.
    std::size_t j = i + 1;
    for (std::optional<SketchKind> next_route; j < queries.size(); ++j) {
      next_route.reset();
      if (!shared_symmetric_route(queries[j], next_route) || next_route != route) break;
    }
    // Hoist the substrate resolution once for the whole run. If routing
    // fails (snapshot lacks the substrate), fall back to per-query runs so
    // each query reports the identical error run() would have thrown —
    // per-query validation (vertex range checks) still happens first
    // inside exec(), exactly as without the hint.
    const ProbGraph* pg = nullptr;
    if (j - i > 1) {
      try {
        pg = &symmetric_pg(route);
      } catch (...) {
        pg = nullptr;
      }
    }
    for (; i < j; ++i) out.push_back(run_one(queries[i], pg));
  }
  return out;
}

QueryResult Engine::exec(const TriangleCount& q) {
  QueryResult r;
  r.name = "tc";
  r.exact = q.exact;
  if (q.exact) {
    const CsrGraph& d = dag();
    util::Timer timer;
    r.value = static_cast<double>(algo::triangle_count_exact_oriented(d));
    r.elapsed_seconds = timer.seconds();
    return r;
  }
  // Oriented sketches when the source carries or can build them; over a
  // snapshot without a matching DAG substrate, the full-graph Thm-VII.1
  // estimator on the symmetric sketches.
  const ProbGraph* pg = nullptr;
  bool full_mode = false;
  if (snap_) {
    pg = try_snapshot_pg(q.sketch, /*oriented=*/true);
    if (pg == nullptr) {
      // Fall back to the full-mode estimator only when the DAG route is
      // truly absent. A default route that failed because SEVERAL
      // non-primary DAG substrates are carried is an ambiguity — error
      // with "pick one with kind=" rather than silently answering with
      // the weaker full-graph estimator.
      if (!q.sketch && snapshot_carries_orientation(/*oriented=*/true)) {
        fail_routing(q.sketch, /*oriented=*/true);
      }
      pg = try_snapshot_pg(q.sketch, /*oriented=*/false);
      full_mode = true;
    }
    if (pg == nullptr) fail_routing(q.sketch, /*oriented=*/true);
  } else {
    pg = &oriented_pg(q.sketch);
  }
  fill_sketch_meta(r, *pg, !full_mode);
  util::Timer timer;
  r.value = algo::triangle_count_probgraph(
      *pg, full_mode ? algo::TcMode::kFull : algo::TcMode::kOriented);
  r.elapsed_seconds = timer.seconds();
  const double m = full_mode ? static_cast<double>(pg->graph().num_edges())
                             : static_cast<double>(pg->graph().num_directed_edges());
  r.bound = tc_bound(*pg, m, r.value);
  return r;
}

QueryResult Engine::exec(const FourCliqueCount& q) {
  QueryResult r;
  r.name = "4cc";
  r.exact = q.exact;
  if (q.exact) {
    const CsrGraph& d = dag();
    util::Timer timer;
    r.value = static_cast<double>(algo::four_clique_count_exact_oriented(d));
    r.elapsed_seconds = timer.seconds();
    return r;
  }
  const ProbGraph& pg = oriented_pg(q.sketch);
  fill_sketch_meta(r, pg, true);
  util::Timer timer;
  r.value = algo::four_clique_count_probgraph(pg);
  r.elapsed_seconds = timer.seconds();
  return r;
}

QueryResult Engine::exec(const KCliqueCount& q) {
  if (q.k < 3) {
    throw std::invalid_argument("kclique needs k >= 3 (got " + std::to_string(q.k) + ")");
  }
  QueryResult r;
  r.name = "kclique";
  r.exact = q.exact;
  r.value = 0.0;
  if (q.exact) {
    const CsrGraph& d = dag();
    util::Timer timer;
    r.value = static_cast<double>(algo::kclique_count_exact_oriented(d, q.k));
    r.elapsed_seconds = timer.seconds();
    return r;
  }
  const ProbGraph& pg = oriented_pg(q.sketch);
  fill_sketch_meta(r, pg, true);
  util::Timer timer;
  r.value = algo::kclique_count_probgraph(pg, q.k);
  r.elapsed_seconds = timer.seconds();
  return r;
}

QueryResult Engine::exec(const ClusteringCoeff& q) {
  const CsrGraph& g = symmetric_graph();  // wedge counts need true degrees
  QueryResult r;
  r.name = "cc";
  r.exact = q.exact;
  if (q.exact) {
    const CsrGraph& d = dag();
    util::Timer timer;
    const double tc = static_cast<double>(algo::triangle_count_exact_oriented(d));
    r.value = algo::global_clustering_coefficient(g, tc);
    r.elapsed_seconds = timer.seconds();
    return r;
  }
  const ProbGraph& pg = symmetric_pg(q.sketch);
  fill_sketch_meta(r, pg, false);
  util::Timer timer;
  const double tc = algo::triangle_count_probgraph(pg, algo::TcMode::kFull);
  r.value = algo::global_clustering_coefficient(g, tc);
  r.elapsed_seconds = timer.seconds();
  // cc = 3·TC/W is a fixed rescaling of TĈ, so the Thm-VII.1 bound carries
  // over with its threshold mapped onto the coefficient scale.
  const double wedges = (g.degree_moment(2) - static_cast<double>(g.num_directed_edges())) / 2.0;
  if (wedges > 0.0) {
    if (auto b = tc_bound(pg, static_cast<double>(g.num_edges()), tc)) {
      r.bound = BoundInfo{b->name, 3.0 * b->t / wedges, b->probability};
    }
  }
  return r;
}

QueryResult Engine::exec(const Cluster& q) {
  // A non-finite threshold (a protocol "cluster jaccard nan") would make
  // every similarity comparison false and come back as a plausible "ok"
  // reply; reject it at the engine so every front end is covered.
  if (!std::isfinite(q.tau)) {
    throw std::invalid_argument("cluster TAU must be a finite number");
  }
  const CsrGraph& g = symmetric_graph();
  QueryResult r;
  r.name = "cluster";
  r.exact = q.exact;
  if (q.exact) {
    util::Timer timer;
    const auto res = algo::jarvis_patrick_exact(g, q.measure, q.tau);
    r.elapsed_seconds = timer.seconds();
    r.cluster = ClusterInfo{res.num_clusters, res.kept_edges};
    r.value = static_cast<double>(res.num_clusters);
    return r;
  }
  const ProbGraph& pg = symmetric_pg(q.sketch);
  fill_sketch_meta(r, pg, false);
  util::Timer timer;
  const auto res = algo::jarvis_patrick_probgraph(pg, q.measure, q.tau);
  r.elapsed_seconds = timer.seconds();
  r.cluster = ClusterInfo{res.num_clusters, res.kept_edges};
  r.value = static_cast<double>(res.num_clusters);
  return r;
}

QueryResult Engine::exec(const PairEstimate& q, const ProbGraph* sym_hint) {
  if (q.pairs.empty()) {
    throw std::invalid_argument("pair query needs at least one (u, v) pair");
  }
  for (const VertexPair& p : q.pairs) {
    check_vertex(p.u);
    check_vertex(p.v);
  }
  QueryResult r;
  r.name = "pair";
  r.exact = q.exact;
  r.pairs.reserve(q.pairs.size());
  if (q.exact) {
    const CsrGraph& g = symmetric_graph();
    const algo::SimilarityMeasure m = exact_measure(q.kind);
    util::Timer timer;
    for (const VertexPair& p : q.pairs) {
      r.pairs.push_back({p.u, p.v, algo::similarity_exact(g, p.u, p.v, m)});
    }
    r.elapsed_seconds = timer.seconds();
    return r;
  }
  // Pair estimates are defined over full neighborhoods (|N_u ∩ N_v|), so
  // like cc/cluster/lp they refuse an --orient snapshot: N+ intersections
  // are a different quantity and must not come back as an "ok" reply.
  const ProbGraph& pg = sym_hint ? *sym_hint : symmetric_pg(q.sketch);
  fill_sketch_meta(r, pg, false);
  util::Timer timer;
  pg.visit_backend([&](const auto& be) {
    pair_sweep_backend(be, {q.pairs.data(), q.pairs.size()}, q.kind, r);
  });
  r.elapsed_seconds = timer.seconds();
  // Deviation-bound metadata for the cardinality kinds: a union bound over
  // the batch, each pair at 10% of its own estimate.
  if (q.kind == EstimateKind::kIntersection || q.kind == EstimateKind::kCommonNeighbors) {
    double total_p = 0.0;
    double max_t = 0.0;
    bool have_all = true;
    const char* name = nullptr;
    for (const PairValue& pv : r.pairs) {
      const auto p = pair_bound_probability(pg, pv.u, pv.v, pv.value);
      if (!p) {
        have_all = false;
        break;
      }
      total_p += *p;
      max_t = std::max(max_t, std::max(1.0, 0.10 * std::abs(pv.value)));
    }
    switch (pg.kind()) {
      case SketchKind::kBloomFilter: name = "Eq. (3) union bound"; break;
      case SketchKind::kKHash:
      case SketchKind::kOneHash: name = "Prop. IV.2/IV.3 union bound"; break;
      case SketchKind::kKmv: name = "Prop. A.8 union bound"; break;
    }
    if (have_all && name != nullptr) {
      r.bound = BoundInfo{name, max_t, std::min(1.0, total_p)};
    }
  }
  return r;
}

QueryResult Engine::exec(const LinkPredict& q, const ProbGraph* sym_hint) {
  QueryResult r;
  r.name = "lp";
  r.exact = q.exact;
  if (q.exact) {
    const CsrGraph& g = symmetric_graph();
    util::Timer timer;
    const auto links = algo::top_k_links_exact(g, q.measure, q.topk);
    r.elapsed_seconds = timer.seconds();
    for (const auto& l : links) r.pairs.push_back({l.u, l.v, l.score});
    return r;
  }
  const ProbGraph& pg = sym_hint ? *sym_hint : symmetric_pg(q.sketch);
  fill_sketch_meta(r, pg, false);
  util::Timer timer;
  const auto links = algo::top_k_links_probgraph(pg, q.measure, q.topk);
  r.elapsed_seconds = timer.seconds();
  for (const auto& l : links) r.pairs.push_back({l.u, l.v, l.score});
  return r;
}

QueryResult Engine::exec(const GraphStats&) {
  QueryResult r;
  r.name = "stats";
  util::Timer timer;
  // Stats describe the symmetric graph whenever the source carries it —
  // even in a dag-primary multi-substrate file, where base_ is the DAG
  // but the neighborhood queries of the same session answer over the
  // carried symmetric CSR. Only a DAG-only snapshot reports DAG
  // (out-degree) statistics.
  const CsrGraph* src = base_;
  bool dag_stats = snap_ && snap_->info().degree_oriented;
  if (dag_stats) {
    if (const CsrGraph* sym = snap_->graph_for(/*degree_oriented=*/false)) {
      src = sym;
      dag_stats = false;
    }
  }
  GraphStatsInfo s;
  s.num_vertices = src->num_vertices();
  // num_edges() halves the adjacency length, which is only right for a
  // symmetric CSR; in a DAG-only snapshot every DAG arc IS one
  // undirected edge of the original graph.
  s.num_edges = dag_stats ? src->num_directed_edges() : src->num_edges();
  s.num_directed_edges = src->num_directed_edges();
  s.max_degree = src->max_degree();
  s.avg_degree = src->avg_degree();
  s.degree_moment2 = src->degree_moment(2);
  s.degree_moment3 = src->degree_moment(3);
  s.csr_bytes = src->memory_bytes();
  s.mapped = src->is_mapped();
  r.stats = s;
  r.elapsed_seconds = timer.seconds();
  return r;
}

}  // namespace probgraph::engine
