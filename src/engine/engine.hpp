// The query engine: one loaded graph (+ sketches), many typed queries.
//
// An Engine owns a graph source — either an in-memory CsrGraph handed to
// the constructor or an mmap'ed .pgs snapshot — and executes `Query`
// requests against it (query.hpp). It resolves everything a query needs
// exactly once:
//
//   * sketch sets are built lazily and cached: an in-memory Engine can
//     answer both neighborhood queries (sketches over G) and counting
//     queries (sketches over the degree-oriented DAG, budget-referenced to
//     G's CSR as in §V-A) from the same instance, paying each construction
//     at most once;
//   * a snapshot-backed Engine serves the file's prebuilt sketches
//     zero-copy and never re-sketches. A v2 .pgs file can carry MULTIPLE
//     substrates — sketch kinds × orientations — and every query is routed
//     per the rules below; queries whose substrate the file does not carry
//     fail with a descriptive std::runtime_error naming what it serves
//     (triangle counting is the exception: without a DAG substrate it
//     falls back to the Theorem-VII.1 full-graph estimator over the
//     symmetric sketches);
//   * the sketch-kind/estimator dispatch is hoisted per query via
//     ProbGraph::visit_backend, so batched queries (PairEstimate,
//     LinkPredict) score every pair through a monomorphic call chain.
//
// Substrate routing (the `sketch` field of a Query, the protocol's `kind=`
// clause): the query type fixes the orientation it needs — tc/4cc/kclique
// run on DAG sketches, cc/cluster/pair/lp on symmetric ones. Within that
// orientation:
//
//   1. an explicit kind routes to exactly (kind, orientation) — carried or
//      error;
//   2. no kind defaults to the file's PRIMARY substrate's kind at the
//      needed orientation;
//   3. if the primary kind is not carried at that orientation but exactly
//      ONE substrate of it exists, that one answers (the unambiguous
//      fallback that keeps v1 single-substrate files working unchanged);
//   4. otherwise the query fails, naming the carried substrates.
//
// In-memory engines build exactly one configured kind; an explicit kind
// must match it (lazily building arbitrary kinds on demand would make the
// cache an unbounded map — serve a multi-substrate snapshot instead).
//
// This is the substrate of `pgtool serve`: map the snapshot once, run an
// Engine over it, answer arbitrarily many queries with zero per-query
// setup. The one-shot pgtool commands are thin parsers producing a Query
// for the same Engine, so one-shot and served results are bit-identical.
//
// Thread safety (the contract the concurrent serving layer, src/net/,
// relies on — every TCP session shares ONE Engine over one mapping).
//
// The MACHINE-CHECKED source of truth is the annotations on the members
// and methods below (util/thread_annotations.hpp): cache_mu_ is the
// capability, the GUARDED_BY fields are everything it protects, and the
// EXCLUDES/REQUIRES on the accessors are the locking protocol. The CI
// Clang leg compiles all of src/ with -Wthread-safety -Werror, and the
// configure-time negative-compile tests (tests/negative_compile/) prove
// the analysis actually fires — so this comment can explain WHY the
// scheme is safe without being the only thing stopping an unguarded
// access. Where prose and annotations disagree, the annotations win.
//
//   * concurrent run() calls from any number of threads are safe. The
//     graph, the mapped snapshot, and every built ProbGraph are immutable
//     after construction and only read; each call gets its own
//     QueryResult.
//   * the ONLY mutable state is the trio of lazily-built caches — exactly
//     the three GUARDED_BY(*cache_mu_) members below, nothing else.
//     Construction is serialized by that mutex: the first query needing a
//     cache builds it while others wait, every later query takes one
//     uncontended lock to fetch the (stable, unique_ptr-held) pointer and
//     then runs lock-free. Snapshot-backed engines never build sketches,
//     so their hot path takes no lock at all for sketch queries.
//   * construction, moves, and destruction are NOT thread-safe — create
//     the Engine before spawning sessions and destroy it after joining
//     them, exactly what the net:: transports do.
//   * the contract is thread-AGNOSTIC on the caller side: nothing here
//     cares which OS thread issues a run() call. The thread-per-connection
//     transport gives every session its own thread for its whole lifetime;
//     the epoll reactor (net/reactor.hpp) multiplexes MANY sessions over a
//     small fixed worker pool, so consecutive queries of one session may
//     run on different workers and one worker interleaves queries of many
//     sessions. Both are safe for the same reason concurrent run() is: the
//     Engine keeps no per-thread or per-session state, and the reactor's
//     run-queue handoff orders each session's queries (a session is owned
//     by at most one worker at a time). run_batch() is run() called in a
//     loop plus a per-batch hoist of immutable routing state — it adds no
//     new mutable state and inherits the same guarantees.
//   * instrumentation adds no locks to this picture. Every run() records
//     into process-global obs:: instruments (counters and histograms,
//     src/obs/instruments.hpp) whose writes are relaxed atomics on
//     per-thread-sharded cache lines — concurrent run() calls never
//     contend on them, and a concurrent metrics scrape (the `metrics`
//     verb, GET /metrics, or the shutdown summary) only reads those
//     atomics, so it is safe against any number of in-flight queries and
//     never perturbs their results. The instrument registry's mutex is
//     taken once per process (first run() resolves the instrument
//     pointers), not per query.
//
// Generations (the live-update layer, engine/generation.hpp): a live
// server holds MANY Engines over time, one per sealed snapshot
// generation, and swaps between them RCU-style. The contract above
// extends naturally BECAUSE an Engine is never mutated after its first
// queries warm the lazy caches: a generation's Engine — including its
// mutex-guarded dag_/sym_pg_/dag_pg_ caches — is private to that
// generation's snapshot, so a cache built pre-swap can never describe a
// post-swap graph. Staleness is structurally impossible: the swap
// replaces the whole Engine, not any cached piece of one (pinned by
// tests/test_live.cpp). Sessions must pin a generation (ReadPin) for the
// duration of each run() call and must not hold the returned references
// across queries; the writer retires an old generation — destroying its
// Engine and unmapping its file — only after every pinned reader drains.
//
// The algorithms underneath parallelize with OpenMP as before; nested
// parallel regions issued from distinct session threads get independent
// teams.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/prob_graph.hpp"
#include "engine/query.hpp"
#include "graph/csr_graph.hpp"
#include "io/snapshot.hpp"
#include "util/sync.hpp"

namespace probgraph::engine {

/// One query's outcome in Engine::run_batch — exactly what the same
/// run() call would have produced: either its QueryResult or the error it
/// would have thrown, so a serving session can turn a pipelined batch
/// into the identical reply lines (including err replies, in order).
struct BatchItem {
  std::optional<QueryResult> result;  ///< set iff the query succeeded
  std::string error;                  ///< the exception text otherwise
  bool invalid_argument = false;      ///< std::invalid_argument (client bug)
                                      ///< vs anything else (engine/routing)
  double wall_seconds = 0.0;          ///< full wall time incl. lazy builds
};

class Engine {
 public:
  /// Serve from an in-memory graph (edge list, generator, ...). `config`
  /// parameterizes any sketches the queries require; they are built lazily
  /// on first use. The graph is treated as symmetric (undirected).
  explicit Engine(CsrGraph g, ProbGraphConfig config = {});

  /// Serve zero-copy from a .pgs snapshot: the file is mmap'ed and
  /// validated once, its prebuilt sketches answer every query with no
  /// per-query setup. Throws std::runtime_error on a rejected file.
  [[nodiscard]] static Engine from_snapshot(const std::string& path);

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;

  /// Execute one query. Throws std::invalid_argument on malformed requests
  /// (out-of-range vertices, k < 3, empty pair batch) and
  /// std::runtime_error when the source cannot answer the query (e.g. a
  /// counting estimate over a snapshot of the symmetric graph).
  [[nodiscard]] QueryResult run(const Query& query);

  /// Execute a pipelined batch in request order, capturing each query's
  /// outcome instead of throwing (one bad query must not eat the replies
  /// behind it in the pipeline). Results are BIT-IDENTICAL to calling
  /// run() per query — same values, same error text, same instrumentation
  /// — the batch only hoists immutable routing work: a maximal run of
  /// consecutive non-exact PairEstimate/LinkPredict queries naming the
  /// same substrate (the protocol's `kind=` clause) resolves its
  /// symmetric ProbGraph once and feeds every query in the run through
  /// the already-batched est_intersection_batch estimator routing with
  /// that resolution in hand. Thread-safe like run().
  [[nodiscard]] std::vector<BatchItem> run_batch(std::span<const Query> queries);

  /// The source graph: the symmetric graph for in-memory engines and
  /// unoriented snapshots, the degree-oriented DAG for `--orient` ones.
  [[nodiscard]] const CsrGraph& graph() const noexcept { return *base_; }

  /// Snapshot header facts, or nullptr for in-memory engines.
  [[nodiscard]] const io::SnapshotInfo* snapshot_info() const noexcept {
    return snap_ ? &snap_->info() : nullptr;
  }

  /// The backing snapshot, or nullptr for in-memory engines. The live
  /// layer (engine/generation.hpp) applies delta batches against this.
  [[nodiscard]] const io::Snapshot* snapshot() const noexcept {
    return snap_ ? &*snap_ : nullptr;
  }

  /// True when the source carries only the degree-oriented DAG (an
  /// `--orient` snapshot with no symmetric substrate): neighborhood
  /// queries are unanswerable.
  [[nodiscard]] bool source_oriented() const noexcept {
    return snap_ && snap_->graph_for(/*degree_oriented=*/false) == nullptr;
  }

 private:
  QueryResult exec(const TriangleCount& q);
  QueryResult exec(const FourCliqueCount& q);
  QueryResult exec(const KCliqueCount& q);
  QueryResult exec(const ClusteringCoeff& q);
  QueryResult exec(const Cluster& q);
  // sym_hint: the pre-resolved symmetric substrate a batch run hoisted
  // (must equal symmetric_pg(q.sketch)); nullptr resolves per query.
  QueryResult exec(const PairEstimate& q, const ProbGraph* sym_hint = nullptr);
  QueryResult exec(const LinkPredict& q, const ProbGraph* sym_hint = nullptr);
  QueryResult exec(const GraphStats& q);

  /// run() with an optional hoisted substrate for pair/lp queries; the
  /// public run() is run_with_hint(query, nullptr).
  QueryResult run_with_hint(const Query& query, const ProbGraph* sym_hint);
  /// One run_batch element: run_with_hint with the throws captured.
  BatchItem run_one(const Query& query, const ProbGraph* sym_hint);

  /// The symmetric graph; throws when the snapshot carries no symmetric
  /// substrate.
  const CsrGraph& symmetric_graph() const;
  /// The degree-oriented DAG (the snapshot's DAG CSR when it carries one,
  /// else lazily built from the symmetric graph and cached). Thread-safe.
  const CsrGraph& dag() EXCLUDES(*cache_mu_);
  /// dag() with cache_mu_ already held (oriented_pg() composes the two
  /// lazy builds under one lock).
  const CsrGraph& dag_locked() REQUIRES(*cache_mu_);
  /// Snapshot substrate lookup per the routing rules above (explicit kind,
  /// else primary kind, else sole-of-orientation). nullptr when the file
  /// does not carry a match. Requires snap_.
  const ProbGraph* try_snapshot_pg(std::optional<SketchKind> kind, bool oriented) const;
  /// True when the snapshot carries at least one substrate of the given
  /// orientation. Requires snap_.
  bool snapshot_carries_orientation(bool oriented) const;
  /// The routing-failure error: names the missing substrate and what the
  /// file actually serves.
  [[noreturn]] void fail_routing(std::optional<SketchKind> kind, bool oriented) const;
  /// Sketches over the symmetric graph, routed by `kind` (snapshot-served
  /// or lazily built). Thread-safe.
  const ProbGraph& symmetric_pg(std::optional<SketchKind> kind)
      EXCLUDES(*cache_mu_);
  /// Sketches over the DAG, budget-referenced to the symmetric CSR,
  /// routed by `kind` (snapshot-served or lazily built). Throws when the
  /// snapshot carries no matching DAG substrate. Thread-safe.
  const ProbGraph& oriented_pg(std::optional<SketchKind> kind)
      EXCLUDES(*cache_mu_);
  /// In-memory engines build exactly one kind; reject a mismatched route.
  void check_in_memory_kind(std::optional<SketchKind> kind) const;

  void check_vertex(VertexId v) const;
  void fill_sketch_meta(QueryResult& r, const ProbGraph& pg, bool degree_oriented) const;

  // unique_ptr members keep the graphs at stable addresses (the lazily
  // built ProbGraphs hold pointers to them) while the Engine stays movable.
  std::optional<io::Snapshot> snap_;
  std::unique_ptr<const CsrGraph> owned_base_;
  const CsrGraph* base_ = nullptr;
  ProbGraphConfig config_;

  // Serializes the lazy builds below across concurrent run() calls. Held
  // through a pointer so the Engine stays movable (single-threaded moves
  // only, per the contract above). The GUARDED_BY annotations are the
  // machine-checked form of the lazy-cache contract: Clang's
  // -Wthread-safety leg rejects any new access outside the lock.
  std::unique_ptr<util::Mutex> cache_mu_ = std::make_unique<util::Mutex>();
  std::unique_ptr<const CsrGraph> dag_    // in-memory engines, lazily oriented
      GUARDED_BY(*cache_mu_);
  std::optional<ProbGraph> sym_pg_        // lazily built (in-memory engines only)
      GUARDED_BY(*cache_mu_);
  std::optional<ProbGraph> dag_pg_        // lazily built (in-memory engines only)
      GUARDED_BY(*cache_mu_);
};

}  // namespace probgraph::engine
