#include "engine/generation.hpp"

#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "io/snapshot.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace probgraph::engine {

namespace {

/// Live-layer instruments, resolved once per process (the EngineMetrics
/// pattern in engine.cpp).
struct LiveMetrics {
  obs::Gauge* generation;
  obs::Counter* applied_inserts;
  obs::Counter* applied_deletes;
  obs::Histogram* reseal_seconds;
};

LiveMetrics& live_metrics() {
  static LiveMetrics m = [] {
    auto& reg = obs::Registry::global();
    LiveMetrics lm;
    lm.generation = &reg.gauge("probgraph_generation",
                               "Current serving generation (1 = base snapshot)");
    const char* applied_help = "Edge changes applied across all seals, by op";
    lm.applied_inserts = &reg.counter("probgraph_updates_applied_total",
                                      applied_help, {{"op", "insert"}});
    lm.applied_deletes = &reg.counter("probgraph_updates_applied_total",
                                      applied_help, {{"op", "delete"}});
    lm.reseal_seconds = &reg.histogram(
        "probgraph_reseal_latency_seconds",
        "update seal wall time: apply + save + load + swap + reader drain");
    return lm;
  }();
  return m;
}

}  // namespace

LiveEngine::LiveEngine(const std::string& snapshot_path, Options opts)
    : base_path_(snapshot_path) {
  auto gen = std::make_unique<Generation>(
      Generation{1, snapshot_path, /*owns_file=*/false,
                 Engine::from_snapshot(snapshot_path)});
  if (!opts.delta_log_path.empty()) delta_log_.emplace(opts.delta_log_path);
  current_.store(gen.release(), std::memory_order_seq_cst);
  live_metrics().generation->set(1.0);
}

LiveEngine::~LiveEngine() { retire(current_.load(std::memory_order_relaxed)); }

void LiveEngine::retire(Generation* gen) {
  if (gen == nullptr) return;
  const bool unlink = gen->owns_file;
  const std::string path = gen->path;
  delete gen;  // drops the Engine and its mapping before the unlink
  if (unlink) std::remove(path.c_str());
}

detail::ReaderSlot* LiveEngine::acquire_slot() {
  util::MutexLock lock(slots_mu_);
  for (auto& slot : slots_) {
    if (!slot->in_use) {
      slot->in_use = true;
      return slot.get();
    }
  }
  slots_.push_back(std::make_unique<detail::ReaderSlot>());
  slots_.back()->in_use = true;
  return slots_.back().get();
}

void LiveEngine::release_slot(detail::ReaderSlot* slot) {
  util::MutexLock lock(slots_mu_);
  slot->in_use = false;
}

LiveEngine::Reader::Reader(LiveEngine& live)
    : live_(live), slot_(live.acquire_slot()) {}

LiveEngine::Reader::~Reader() { live_.release_slot(slot_); }

LiveEngine::StageResult LiveEngine::stage(bool tombstone, std::span<const Edge> edges) {
  util::MutexLock lock(writer_mu_);
  std::vector<Edge>& staged = tombstone ? staged_deletes_ : staged_inserts_;
  staged.insert(staged.end(), edges.begin(), edges.end());
  pending_inserts_.store(staged_inserts_.size(), std::memory_order_relaxed);
  pending_deletes_.store(staged_deletes_.size(), std::memory_order_relaxed);
  return {edges.size(),
          {static_cast<std::uint64_t>(staged_inserts_.size()),
           static_cast<std::uint64_t>(staged_deletes_.size())}};
}

LiveEngine::SealResult LiveEngine::seal() {
  util::MutexLock lock(writer_mu_);
  if (staged_inserts_.empty() && staged_deletes_.empty()) {
    return {false, generation(), {}};
  }
  util::Timer timer;
  Generation* const old = current_.load(std::memory_order_seq_cst);
  const std::uint64_t next = old->number + 1;

  // Everything that can fail happens BEFORE the swap, with the staged
  // batch intact in the members: a throw leaves the old generation
  // serving and the changes staged for a retry.
  live::DeltaBatch batch{staged_inserts_, staged_deletes_};
  live::UpdatedSnapshot updated = live::apply_batch(*old->engine.snapshot(), batch);
  const std::string path = base_path_ + ".gen" + std::to_string(next);
  io::save_snapshot(path, updated.substrates);
  auto fresh = std::make_unique<Generation>(
      Generation{next, path, /*owns_file=*/true, Engine::from_snapshot(path)});
  if (delta_log_) delta_log_->append(batch);

  staged_inserts_.clear();
  staged_deletes_.clear();
  pending_inserts_.store(0, std::memory_order_relaxed);
  pending_deletes_.store(0, std::memory_order_relaxed);

  // The swap: publish the new generation, bump the epoch, then wait for
  // every reader slot to show an epoch past the retired generation (idle
  // slots pass vacuously). See the header for the seq_cst ordering
  // argument. The spin only waits out queries IN FLIGHT at the swap
  // instant; new queries land on the fresh generation immediately.
  current_.store(fresh.release(), std::memory_order_seq_cst);
  epoch_.store(next, std::memory_order_seq_cst);
  {
    util::MutexLock slots_lock(slots_mu_);
    for (const auto& slot : slots_) {
      while (slot->epoch.load(std::memory_order_seq_cst) <= old->number) {
        std::this_thread::yield();
      }
    }
  }
  retire(old);

  updated.stats.seconds = timer.seconds();
  LiveMetrics& lm = live_metrics();
  lm.generation->set(static_cast<double>(next));
  lm.applied_inserts->add(updated.stats.inserts_applied);
  lm.applied_deletes->add(updated.stats.deletes_applied);
  lm.reseal_seconds->observe(updated.stats.seconds);
  return {true, next, updated.stats};
}

namespace {

/// The live host: queries pin a generation (atomics only — the lock-free
/// hot path), live verbs stage/seal through the shared LiveEngine.
class LiveSessionHost final : public SessionHost {
 public:
  explicit LiveSessionHost(LiveEngine& live) : live_(live), reader_(live) {}

  QueryResult run(const Query& q) override {
    LiveEngine::Reader::Pin pin(reader_);
    return pin.engine().run(q);
  }

  std::vector<BatchItem> run_batch(std::span<const Query> queries) override {
    // ONE pin for the whole pipelined batch: every query in it sees the
    // same generation (a strictly stronger form of the whole-generation
    // guarantee). The pin is bounded by the transports' per-turn fairness
    // limit, so a pipelining hog delays a seal by at most one turn's work.
    LiveEngine::Reader::Pin pin(reader_);
    return pin.engine().run_batch(queries);
  }

  std::string live(const LiveRequest& req) override {
    switch (req.op) {
      case LiveRequest::Op::kInsert:
      case LiveRequest::Op::kDelete: {
        const bool tombstone = req.op == LiveRequest::Op::kDelete;
        const auto r = live_.stage(tombstone, req.edges);
        std::string reply = "ok\tupdate\tstaged=";
        reply += tombstone ? "delete" : "insert";
        reply += "\tedges=" + std::to_string(r.staged);
        reply += "\tpending_inserts=" + std::to_string(r.pending.inserts);
        reply += "\tpending_deletes=" + std::to_string(r.pending.deletes);
        return reply;
      }
      case LiveRequest::Op::kSeal: {
        const auto r = live_.seal();
        if (!r.sealed) {
          return "ok\tupdate\tnoop\tgeneration=" + std::to_string(r.generation);
        }
        std::string reply = "ok\tupdate\tsealed";
        reply += "\tgeneration=" + std::to_string(r.generation);
        reply += "\tapplied_inserts=" + std::to_string(r.stats.inserts_applied);
        reply += "\tapplied_deletes=" + std::to_string(r.stats.deletes_applied);
        reply += "\tpatched=" + std::to_string(r.stats.vertices_patched);
        reply += "\trebuilt=" + std::to_string(r.stats.vertices_rebuilt);
        return reply;
      }
      case LiveRequest::Op::kEpoch: {
        const auto p = live_.pending();
        std::string reply = "ok\tepoch";
        reply += "\tgeneration=" + std::to_string(live_.generation());
        reply += "\tpending_inserts=" + std::to_string(p.inserts);
        reply += "\tpending_deletes=" + std::to_string(p.deletes);
        return reply;
      }
    }
    throw std::runtime_error("unhandled live request op");
  }

 private:
  LiveEngine& live_;
  LiveEngine::Reader reader_;
};

}  // namespace

std::unique_ptr<SessionHost> make_session_host(LiveEngine& live) {
  return std::make_unique<LiveSessionHost>(live);
}

std::size_t serve_session(LiveEngine& live, SessionIo& io, const ServeOptions& opts) {
  LiveSessionHost host(live);
  return serve_session(host, io, opts);
}

std::size_t serve_session(LiveEngine& live, std::istream& in, std::ostream& out,
                          const ServeOptions& opts) {
  LiveSessionHost host(live);
  return serve_session(host, in, out, opts);
}

}  // namespace probgraph::engine
