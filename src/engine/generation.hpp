// Generations: RCU-style epoch-swap serving over a changing graph.
//
// A LiveEngine turns the static snapshot server into a live one. It holds
// the CURRENT generation — a sealed .pgs snapshot plus the Engine serving
// it — and lets any session stage edge inserts/tombstones (the `update`
// protocol verbs) and seal them: the staged batch is applied to a shadow
// copy of the substrate portfolio (src/live/apply.hpp — incremental
// sketch patches, cold-identical by construction), saved as a new .pgs
// generation file, loaded into a fresh Engine, and swapped in atomically.
// Queries racing the swap see either the old generation or the new one,
// whole; never a partial batch.
//
// The swap protocol (quiescent-state-based reclamation):
//
//   * every session registers one cache-line-aligned ReaderSlot (a mutex
//     is taken ONCE at session start/end, never per query);
//   * per query, the reader publishes the epoch it observed into its slot
//     (one seq_cst load + store), loads the current generation pointer,
//     runs the query, and marks the slot idle — the hot path is entirely
//     atomic loads/stores, no mutex, no registry lock, preserving the
//     Engine thread-safety contract (engine.hpp);
//   * the writer (seal) installs the new generation pointer, bumps the
//     global epoch, then waits until every slot shows an epoch NEWER than
//     the retired generation (idle slots pass vacuously). Under the
//     seq_cst total order, a reader that obtained the OLD pointer
//     necessarily published an old epoch BEFORE the writer's scan read
//     it, so the writer waits for that reader to drain; once the scan
//     passes, no reader can hold the old Engine and it is destroyed, its
//     generation file unlinked.
//
// Writers are serialized by a writer mutex; any session may write
// (admission is the server-level --live flag, not per-session). Staged
// changes are process-wide, not per-session: `epoch` reports them, and a
// seal from any session applies them all.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/protocol.hpp"
#include "graph/builder.hpp"
#include "live/apply.hpp"
#include "live/delta.hpp"
#include "util/sync.hpp"

namespace probgraph::engine {

/// One sealed serving state: a snapshot generation and the Engine over it.
struct Generation {
  std::uint64_t number = 1;  ///< 1 = the base snapshot; +1 per seal
  std::string path;          ///< the .pgs file this generation serves
  bool owns_file = false;    ///< sealed generations unlink their file at retire
  Engine engine;
};

namespace detail {

/// Idle marker: no query in flight, every swap passes this slot.
inline constexpr std::uint64_t kIdleEpoch = ~std::uint64_t{0};

/// One session's read-side state, cache-line-aligned so concurrent
/// sessions' pins never share a line.
struct alignas(64) ReaderSlot {
  std::atomic<std::uint64_t> epoch{kIdleEpoch};
  // Guarded by LiveEngine::slots_mu_ — not expressible as a GUARDED_BY
  // here (the capability lives on the owning LiveEngine, and the analysis
  // needs an object expression in this scope); acquire_slot/release_slot
  // are the only accessors and both REQUIRE nothing but take slots_mu_.
  bool in_use = false;
};

}  // namespace detail

class LiveEngine {
 public:
  struct Options {
    /// When non-empty, every sealed batch is appended to this .pgd delta
    /// log (live/delta.hpp) before the swap.
    std::string delta_log_path;
  };

  /// Serve `snapshot_path` as generation 1. Throws what Engine::from_snapshot
  /// and DeltaLogWriter throw.
  explicit LiveEngine(const std::string& snapshot_path, Options opts = {});

  /// Destroys the current generation (unlinking its file if sealed here).
  /// NOT thread-safe: join every session first, like Engine.
  ~LiveEngine();

  LiveEngine(const LiveEngine&) = delete;
  LiveEngine& operator=(const LiveEngine&) = delete;

  /// Current generation number (atomic; any thread).
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }

  struct Pending {
    std::uint64_t inserts = 0;
    std::uint64_t deletes = 0;
  };
  /// Staged-but-unsealed change counts (atomic; any thread).
  [[nodiscard]] Pending pending() const noexcept {
    return {pending_inserts_.load(std::memory_order_relaxed),
            pending_deletes_.load(std::memory_order_relaxed)};
  }

  struct StageResult {
    std::size_t staged = 0;
    Pending pending;
  };
  /// Stage edges for the next seal (tombstone = deletions). Thread-safe;
  /// serialized with seals by the writer mutex.
  StageResult stage(bool tombstone, std::span<const Edge> edges)
      EXCLUDES(writer_mu_);

  struct SealResult {
    bool sealed = false;  ///< false: nothing was staged (no-op)
    std::uint64_t generation = 0;
    live::ApplyStats stats;
  };
  /// Apply everything staged as a new generation and swap it in (the
  /// epoch-swap protocol above). Thread-safe; concurrent seals serialize.
  /// On failure (I/O, bad batch) the staged changes are retained and the
  /// current generation keeps serving. Records probgraph_generation,
  /// probgraph_updates_applied_total, and probgraph_reseal_latency_seconds.
  SealResult seal() EXCLUDES(writer_mu_, slots_mu_);

  /// A registered reader session. Construction/destruction take the slot
  /// mutex once; Pin is the per-query lock-free hot path.
  class Reader {
   public:
    explicit Reader(LiveEngine& live);
    ~Reader();
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    /// Pins the current generation for one query: atomics only. The
    /// BEGIN/END markers fence a tools/lint/check_layout.py region — no
    /// allocation, locking, or container growth may appear inside.
    // PROBGRAPH_HOT_PATH_BEGIN(live-pin)
    class Pin {
     public:
      explicit Pin(Reader& reader) noexcept : reader_(reader) {
        LiveEngine& live = reader.live_;
        const std::uint64_t e = live.epoch_.load(std::memory_order_seq_cst);
        reader.slot_->epoch.store(e, std::memory_order_seq_cst);
        gen_ = live.current_.load(std::memory_order_seq_cst);
      }
      ~Pin() {
        reader_.slot_->epoch.store(detail::kIdleEpoch, std::memory_order_seq_cst);
      }
      Pin(const Pin&) = delete;
      Pin& operator=(const Pin&) = delete;

      [[nodiscard]] Engine& engine() const noexcept { return gen_->engine; }
      [[nodiscard]] std::uint64_t generation() const noexcept { return gen_->number; }

     private:
      Reader& reader_;
      Generation* gen_;
    };
    // PROBGRAPH_HOT_PATH_END(live-pin)

   private:
    friend class Pin;
    LiveEngine& live_;
    detail::ReaderSlot* slot_;
  };

  /// Startup-only peek at the serving Engine (the serve banner). Not safe
  /// concurrently with seal() — pin through a Reader instead.
  [[nodiscard]] const Engine& current_engine_unsynchronized() const noexcept {
    return current_.load(std::memory_order_relaxed)->engine;
  }

 private:
  friend class Reader;

  detail::ReaderSlot* acquire_slot() EXCLUDES(slots_mu_);
  void release_slot(detail::ReaderSlot* slot) EXCLUDES(slots_mu_);
  static void retire(Generation* gen);

  std::atomic<Generation*> current_{nullptr};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> pending_inserts_{0};
  std::atomic<std::uint64_t> pending_deletes_{0};

  // Lock order: writer_mu_ before slots_mu_ (seal() scans the slots for
  // the reader drain while serialized against other writers). The pin hot
  // path takes NEITHER — it is atomics only, and the annotations keep it
  // that way: nothing in Pin can touch a GUARDED_BY field.
  util::Mutex writer_mu_;  // serializes stage() bookkeeping and seal()
  std::vector<Edge> staged_inserts_ GUARDED_BY(writer_mu_);
  std::vector<Edge> staged_deletes_ GUARDED_BY(writer_mu_);

  util::Mutex slots_mu_;  // guards slots_ membership, never the pin path
  std::vector<std::unique_ptr<detail::ReaderSlot>> slots_ GUARDED_BY(slots_mu_);

  std::string base_path_;
  std::optional<live::DeltaLogWriter> delta_log_ GUARDED_BY(writer_mu_);
};

/// A session host over a LiveEngine: queries pin a generation per request
/// (per batch for pipelined batches) through a registered Reader,
/// update/epoch verbs go to the staging/seal API. One host per session —
/// the net:: transports create these through the same factory shape as
/// the static make_session_host(Engine&) (protocol.hpp).
[[nodiscard]] std::unique_ptr<SessionHost> make_session_host(LiveEngine& live);

/// Serve one session against a live engine: queries pin a generation per
/// request (lock-free), update/epoch verbs go to the staging/seal API.
/// Same loop, framing, and metrics as the static overloads (protocol.hpp).
std::size_t serve_session(LiveEngine& live, SessionIo& io,
                          const ServeOptions& opts = {});
std::size_t serve_session(LiveEngine& live, std::istream& in, std::ostream& out,
                          const ServeOptions& opts = {});

}  // namespace probgraph::engine
