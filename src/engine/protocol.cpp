#include "engine/protocol.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <vector>

#include "net/line_scanner.hpp"
#include "obs/metrics.hpp"
#include "util/ascii.hpp"
#include "util/timer.hpp"

namespace probgraph::engine {

namespace {

using util::iequals;

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' && line[i] != '\r') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Strict unsigned parse: the whole token must be digits.
template <typename T>
bool parse_unsigned(std::string_view s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

/// Strict finite parse: std::from_chars happily accepts "nan" and "inf",
/// and a non-finite threshold silently poisons every comparison downstream
/// ("cluster jaccard nan" would reply ok with zero kept edges) — reject it
/// here so the session answers with a descriptive err line instead.
bool parse_double(std::string_view s, double& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size() && std::isfinite(out);
}

/// Pop a trailing "exact" token if present.
bool take_exact(std::vector<std::string_view>& tokens) {
  if (!tokens.empty() && iequals(tokens.back(), "exact")) {
    tokens.pop_back();
    return true;
  }
  return false;
}

/// Extract one `kind=SKETCH` clause from anywhere in the token list.
/// Returns false (with `error` set) on an unknown sketch name or a
/// duplicate clause; `out` stays nullopt when no clause is present.
bool take_sketch_kind(std::vector<std::string_view>& tokens,
                      std::optional<SketchKind>& out, std::string& error) {
  for (auto it = tokens.begin(); it != tokens.end();) {
    const std::string_view t = *it;
    if (t.size() < 5 || !iequals(t.substr(0, 5), "kind=")) {
      ++it;
      continue;
    }
    if (out) {
      error = "duplicate kind= clause";
      return false;
    }
    const std::string_view value = t.substr(5);
    const auto kind = parse_sketch_kind(value);
    if (!kind) {
      error = "unknown sketch kind '" + std::string(value) +
              "' in kind= (expected bf, kh, 1h, or kmv)";
      return false;
    }
    out = *kind;
    it = tokens.erase(it);
  }
  return true;
}

/// Extract one `time` clause from anywhere in the token list. Returns
/// false (with `error` set) on a duplicate.
bool take_time(std::vector<std::string_view>& tokens, bool& out,
               std::string& error) {
  for (auto it = tokens.begin(); it != tokens.end();) {
    if (!iequals(*it, "time")) {
      ++it;
      continue;
    }
    if (out) {
      error = "duplicate time clause";
      return false;
    }
    out = true;
    it = tokens.erase(it);
  }
  return true;
}

ParsedRequest make_error(std::string message) {
  ParsedRequest r;
  r.error = std::move(message);
  return r;
}

ParsedRequest make_query(Query q, bool report_time) {
  ParsedRequest r;
  r.query = std::move(q);
  r.report_time = report_time;
  return r;
}

}  // namespace

ParsedRequest parse_request(std::string_view line) {
  std::vector<std::string_view> tokens = tokenize(line);
  if (tokens.empty() || tokens.front().front() == '#') {
    ParsedRequest r;
    r.ignored = true;
    return r;
  }
  const std::string_view cmd = tokens.front();
  tokens.erase(tokens.begin());

  if (iequals(cmd, "quit") || iequals(cmd, "exit")) {
    if (!tokens.empty()) return make_error("quit takes no arguments");
    ParsedRequest r;
    r.quit = true;
    return r;
  }
  if (iequals(cmd, "help")) {
    ParsedRequest r;
    r.help = true;
    return r;
  }
  if (iequals(cmd, "metrics")) {
    if (!tokens.empty()) return make_error("metrics takes no arguments");
    ParsedRequest r;
    r.metrics = true;
    return r;
  }

  if (iequals(cmd, "epoch")) {
    if (!tokens.empty()) return make_error("epoch takes no arguments");
    ParsedRequest r;
    r.live = LiveRequest{LiveRequest::Op::kEpoch, {}};
    return r;
  }
  if (iequals(cmd, "update")) {
    if (tokens.empty()) {
      return make_error("usage: update insert|delete U V [U V ...] | update seal");
    }
    const std::string_view sub = tokens.front();
    tokens.erase(tokens.begin());
    if (iequals(sub, "seal")) {
      if (!tokens.empty()) return make_error("update seal takes no arguments");
      ParsedRequest r;
      r.live = LiveRequest{LiveRequest::Op::kSeal, {}};
      return r;
    }
    const bool is_insert = iequals(sub, "insert");
    if (!is_insert && !iequals(sub, "delete")) {
      return make_error("unknown update op '" + std::string(sub) +
                        "' (expected insert, delete, or seal)");
    }
    if (tokens.empty() || tokens.size() % 2 != 0) {
      return make_error("update " + std::string(is_insert ? "insert" : "delete") +
                        " needs an even, non-zero number of vertex ids (got " +
                        std::to_string(tokens.size()) + ")");
    }
    LiveRequest lr;
    lr.op = is_insert ? LiveRequest::Op::kInsert : LiveRequest::Op::kDelete;
    for (std::size_t i = 0; i < tokens.size(); i += 2) {
      VertexId u = 0;
      VertexId v = 0;
      if (!parse_unsigned(tokens[i], u) || !parse_unsigned(tokens[i + 1], v)) {
        return make_error("update vertex ids must be non-negative integers (got '" +
                          std::string(tokens[i]) + " " + std::string(tokens[i + 1]) +
                          "')");
      }
      lr.edges.emplace_back(u, v);
    }
    ParsedRequest r;
    r.live = std::move(lr);
    return r;
  }

  std::optional<SketchKind> sketch;
  bool report_time = false;
  {
    std::string clause_error;
    if (!take_sketch_kind(tokens, sketch, clause_error)) {
      return make_error(std::move(clause_error));
    }
    if (!take_time(tokens, report_time, clause_error)) {
      return make_error(std::move(clause_error));
    }
  }
  const bool exact = take_exact(tokens);
  if (exact && sketch) {
    return make_error("kind= does not apply to exact queries (no sketches are used)");
  }

  if (iequals(cmd, "tc") || iequals(cmd, "4cc") || iequals(cmd, "cc") ||
      iequals(cmd, "stats")) {
    if (!tokens.empty()) {
      return make_error(std::string(cmd) + " takes no arguments beyond 'exact' (got '" +
                        std::string(tokens.front()) + "')");
    }
    if (iequals(cmd, "tc")) return make_query(TriangleCount{exact, sketch}, report_time);
    if (iequals(cmd, "4cc")) return make_query(FourCliqueCount{exact, sketch}, report_time);
    if (iequals(cmd, "cc")) return make_query(ClusteringCoeff{exact, sketch}, report_time);
    if (exact) return make_error("stats has no exact/sketch distinction");
    if (sketch) return make_error("stats never touches the sketches (kind= does not apply)");
    return make_query(GraphStats{}, report_time);
  }

  if (iequals(cmd, "kclique")) {
    if (tokens.size() != 1) return make_error("usage: kclique K [kind=SKETCH] [exact]");
    unsigned k = 0;
    if (!parse_unsigned(tokens[0], k) || k < 3) {
      return make_error("kclique K must be an integer >= 3 (got '" +
                        std::string(tokens[0]) + "')");
    }
    return make_query(KCliqueCount{k, exact, sketch}, report_time);
  }

  if (iequals(cmd, "cluster")) {
    if (tokens.size() != 2) {
      return make_error("usage: cluster MEASURE TAU [kind=SKETCH] [exact]");
    }
    const auto measure = algo::parse_similarity_measure(tokens[0]);
    if (!measure) {
      return make_error("unknown measure '" + std::string(tokens[0]) +
                        "' (expected jaccard, overlap, common, total, adamic, or "
                        "resource)");
    }
    double tau = 0.0;
    if (!parse_double(tokens[1], tau)) {
      return make_error("cluster TAU must be a finite number (got '" +
                        std::string(tokens[1]) + "')");
    }
    return make_query(Cluster{*measure, tau, exact, sketch}, report_time);
  }

  if (iequals(cmd, "pair")) {
    if (tokens.empty()) return make_error("usage: pair KIND U V [U V ...] [exact]");
    const auto kind = parse_estimate_kind(tokens[0]);
    if (!kind) {
      return make_error("unknown estimate kind '" + std::string(tokens[0]) +
                        "' (expected intersection, jaccard, overlap, common, or total)");
    }
    tokens.erase(tokens.begin());
    if (tokens.empty() || tokens.size() % 2 != 0) {
      return make_error("pair needs an even, non-zero number of vertex ids (got " +
                        std::to_string(tokens.size()) + ")");
    }
    PairEstimate q;
    q.kind = *kind;
    q.exact = exact;
    q.sketch = sketch;
    for (std::size_t i = 0; i < tokens.size(); i += 2) {
      VertexPair p;
      if (!parse_unsigned(tokens[i], p.u) || !parse_unsigned(tokens[i + 1], p.v)) {
        return make_error("pair vertex ids must be non-negative integers (got '" +
                          std::string(tokens[i]) + " " + std::string(tokens[i + 1]) +
                          "')");
      }
      q.pairs.push_back(p);
    }
    return make_query(std::move(q), report_time);
  }

  if (iequals(cmd, "lp")) {
    if (tokens.empty() || tokens.size() > 2) {
      return make_error("usage: lp K [MEASURE] [exact]");
    }
    LinkPredict q;
    q.exact = exact;
    q.sketch = sketch;
    if (!parse_unsigned(tokens[0], q.topk)) {
      return make_error("lp K must be a non-negative integer (got '" +
                        std::string(tokens[0]) + "')");
    }
    if (tokens.size() == 2) {
      const auto measure = algo::parse_similarity_measure(tokens[1]);
      if (!measure) {
        return make_error("unknown measure '" + std::string(tokens[1]) +
                          "' (expected jaccard, overlap, common, total, adamic, or "
                          "resource)");
      }
      q.measure = *measure;
    }
    return make_query(q, report_time);
  }

  return make_error("unknown query '" + std::string(cmd) + "' (send 'help' for the grammar)");
}

std::string format_estimate(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string format_reply(const QueryResult& r) {
  std::string reply = "ok\t";
  reply += r.name;
  const auto field = [&reply](const char* key, const std::string& value) {
    reply += key;  // "\t<name>=" (or just "\t")
    reply += value;
  };
  if (r.stats) {
    const GraphStatsInfo& s = *r.stats;
    field("\tn=", std::to_string(s.num_vertices));
    field("\tm=", std::to_string(s.num_edges));
    field("\tdmax=", std::to_string(s.max_degree));
    field("\tdavg=", format_estimate(s.avg_degree));
    field("\td2=", format_estimate(s.degree_moment2));
    field("\td3=", format_estimate(s.degree_moment3));
    return reply;
  }
  if (r.cluster) {
    field("\tclusters=", std::to_string(r.cluster->num_clusters));
    field("\tkept_edges=", std::to_string(r.cluster->kept_edges));
    return reply;
  }
  if (std::string_view(r.name) == "pair" || std::string_view(r.name) == "lp") {
    for (const PairValue& p : r.pairs) {
      field("\t", std::to_string(p.u));
      field(":", std::to_string(p.v));
      field("=", format_estimate(p.value));
    }
    return reply;
  }
  field("\t", format_estimate(r.value));
  return reply;
}

std::string format_error(std::string_view message) {
  std::string reply = "err\t";
  // Keep the one-reply-per-line invariant even for multi-line exception text.
  for (const char c : message) reply += (c == '\n' || c == '\t') ? ' ' : c;
  return reply;
}

std::string help_reply() {
  return "ok\thelp\ttc [exact] | 4cc [exact] | kclique K [exact] | cc [exact] | "
         "cluster MEASURE TAU [exact] | pair KIND U V [U V ...] [exact] | "
         "lp K [MEASURE] [exact] | stats | metrics | quit; sketch queries also "
         "take kind=bf|kh|1h|kmv to route to a substrate of a multi-sketch "
         "snapshot, and any query takes a time clause appending elapsed_us= "
         "(non-deterministic) to its reply; live servers (--live) also take "
         "update insert|delete U V [U V ...], update seal, and epoch";
}

namespace {

/// Session-layer instruments, resolved once per process (see the
/// EngineMetrics pattern in engine.cpp). Every transport funnels through
/// serve_session, so these cover stdin REPLs, TCP sessions, and in-memory
/// test/bench sessions alike.
struct SessionMetrics {
  obs::Counter* sessions;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* err_overlong;
  obs::Counter* err_parse;
  obs::Counter* err_bad_argument;
  obs::Counter* err_engine;
  obs::Histogram* queries_per_session;
  obs::Histogram* session_seconds;
};

SessionMetrics& session_metrics() {
  static SessionMetrics m = [] {
    auto& reg = obs::Registry::global();
    const char* err_help =
        "err replies sent, by cause: overlong frame (protocol abuse), "
        "parse failure, bad-argument (client bug), engine (routing or "
        "internal failure)";
    SessionMetrics s;
    s.sessions = &reg.counter("probgraph_sessions_total",
                              "Serve sessions completed (any transport)");
    s.bytes_in = &reg.counter("probgraph_session_bytes_total",
                              "Protocol bytes, by direction (request and "
                              "reply lines incl. newline)",
                              {{"direction", "in"}});
    s.bytes_out = &reg.counter("probgraph_session_bytes_total",
                               "Protocol bytes, by direction (request and "
                               "reply lines incl. newline)",
                               {{"direction", "out"}});
    s.err_overlong = &reg.counter("probgraph_session_errors_total", err_help,
                                  {{"cause", "overlong"}});
    s.err_parse = &reg.counter("probgraph_session_errors_total", err_help,
                               {{"cause", "parse"}});
    s.err_bad_argument = &reg.counter("probgraph_session_errors_total",
                                      err_help, {{"cause", "bad-argument"}});
    s.err_engine = &reg.counter("probgraph_session_errors_total", err_help,
                                {{"cause", "engine"}});
    s.queries_per_session =
        &reg.histogram("probgraph_session_queries",
                       "Queries answered per completed session");
    s.session_seconds = &reg.histogram("probgraph_session_seconds",
                                       "Session lifetime, connect to close");
    return s;
  }();
  return m;
}

/// One structured stderr line per slow query: parse (type + request),
/// route (mode + substrate), timing. Tabs/newlines in the echoed request
/// are flattened so the log line stays one line.
void log_slow_query(std::string_view request, const QueryResult& r,
                    double elapsed_seconds) {
  std::string req;
  req.reserve(request.size());
  for (const char c : request) req += (c == '\n' || c == '\t') ? ' ' : c;
  const char* mode = r.exact ? "exact" : (r.sketch.used ? "sketch" : "plain");
  constexpr const char* kKinds[4] = {"bf", "kh", "1h", "kmv"};
  const char* kind =
      r.sketch.used ? kKinds[static_cast<std::size_t>(r.sketch.kind) & 3u] : "-";
  const char* orientation =
      r.sketch.used ? (r.sketch.degree_oriented ? "dag" : "sym") : "-";
  std::fprintf(stderr,
               "pgtool serve: slow-query type=%s mode=%s substrate=%s/%s "
               "elapsed_us=%lld request=\"%s\"\n",
               r.name, mode, kind, orientation,
               static_cast<long long>(std::llround(elapsed_seconds * 1e6)),
               req.c_str());
}

}  // namespace

std::vector<BatchItem> SessionHost::run_batch(std::span<const Query> queries) {
  // The transport-agnostic fallback: run() per query, throws captured so
  // every query behind a bad one still answers. Engine-backed hosts
  // override this with Engine::run_batch (same outcomes, hoisted routing).
  std::vector<BatchItem> out;
  out.reserve(queries.size());
  for (const Query& q : queries) {
    BatchItem item;
    util::Timer wall;
    try {
      item.result = run(q);
    } catch (const std::invalid_argument& e) {
      item.error = e.what();
      item.invalid_argument = true;
    } catch (const std::exception& e) {
      item.error = e.what();
    }
    item.wall_seconds = wall.seconds();
    out.push_back(std::move(item));
  }
  return out;
}

/// The framing state behind the byte-oriented interface. LineScanner
/// lives in net/ next to its transports; it is implementation detail
/// here, held behind this pimpl so protocol.hpp stays net-free.
class Session::Framer {
 public:
  explicit Framer(std::size_t max_line_bytes) : scanner(max_line_bytes) {}
  net::LineScanner scanner;
};

Session::Session(SessionHost& host, ServeOptions opts, std::size_t max_line_bytes)
    : host_(host),
      opts_(opts),
      framer_(std::make_unique<Framer>(max_line_bytes)) {}

Session::~Session() {
  SessionMetrics& sm = session_metrics();
  sm.sessions->add();
  sm.queries_per_session->observe(static_cast<double>(answered_));
  sm.session_seconds->observe(lifetime_.seconds());
}

void Session::emit(std::string_view reply) {
  // Reply-byte accounting sits on the single append path so no reply
  // misses it; +1 is the newline framing added here.
  session_metrics().bytes_out->add(reply.size() + 1);
  out_.append(reply);
  out_.push_back('\n');
}

void Session::dispatch_control(const ParsedRequest& req) {
  SessionMetrics& sm = session_metrics();
  if (req.quit) {
    emit("bye");
    done_ = true;
    return;
  }
  if (req.help) {
    emit(help_reply());
    return;
  }
  if (req.metrics) {
    // Not counted in answered(): the transports' queries_answered counter
    // and the session histograms track engine queries, not scrapes.
    emit("ok\tmetrics\t" + obs::Registry::global().tab_text());
    return;
  }
  if (req.live) {
    // Live verbs reply through the host (a static host throws the
    // not-enabled error). Not counted in answered(), like `metrics`.
    try {
      emit(host_.live(*req.live));
    } catch (const std::invalid_argument& e) {
      sm.err_bad_argument->add();
      emit(format_error(e.what()));
    } catch (const std::exception& e) {
      sm.err_engine->add();
      emit(format_error(e.what()));
    }
    return;
  }
  sm.err_parse->add();
  emit(format_error(req.error));
}

void Session::flush_batch() {
  if (batch_.empty()) return;
  SessionMetrics& sm = session_metrics();
  std::vector<Query> queries;
  queries.reserve(batch_.size());
  for (PendingQuery& p : batch_) queries.push_back(std::move(p.query));
  const std::vector<BatchItem> items = host_.run_batch(queries);
  for (std::size_t k = 0; k < batch_.size() && k < items.size(); ++k) {
    const BatchItem& item = items[k];
    if (!item.result) {
      // The captured equivalent of run()'s throws: invalid_argument is a
      // client bug (out-of-range vertices, ...), anything else is an
      // engine routing or internal failure. Answer and keep serving.
      (item.invalid_argument ? sm.err_bad_argument : sm.err_engine)->add();
      emit(format_error(item.error));
      continue;
    }
    const QueryResult& r = *item.result;
    std::string reply = format_reply(r);
    if (batch_[k].report_time) {
      // r.elapsed_seconds (execution excluding lazy builds) is the number
      // the reply documents; the slow-query check below uses the full
      // wall time, which is what the session actually waited.
      reply += "\telapsed_us=";
      reply += std::to_string(
          static_cast<long long>(std::llround(r.elapsed_seconds * 1e6)));
    }
    if (opts_.slow_query_seconds > 0 && item.wall_seconds >= opts_.slow_query_seconds) {
      log_slow_query(batch_[k].line, r, item.wall_seconds);
    }
    emit(reply);
    ++answered_;
  }
  batch_.clear();
}

void Session::process_line(std::string_view line) {
  if (done_) return;
  SessionMetrics& sm = session_metrics();
  sm.bytes_in->add(line.size() + 1);
  ParsedRequest req = parse_request(line);
  if (req.ignored) return;
  if (req.query) {
    batch_.push_back({std::move(*req.query), req.report_time, std::string(line)});
    flush_batch();  // line-oriented drivers answer before their next read
    return;
  }
  flush_batch();
  dispatch_control(req);
}

void Session::process_overlong(std::string_view error_text) {
  if (done_) return;
  flush_batch();
  session_metrics().err_overlong->add();
  emit(format_error(error_text));
}

void Session::feed(std::string_view bytes) {
  if (done_) return;
  framer_->scanner.feed(bytes);
}

void Session::feed_eof() noexcept { eof_ = true; }

std::size_t Session::pump(std::size_t max_requests) {
  SessionMetrics& sm = session_metrics();
  std::size_t processed = 0;
  std::string line;
  while (!done_ && processed < max_requests) {
    net::LineScanner::Next st = framer_->scanner.next(line);
    if (st == net::LineScanner::Next::kNeedMore) {
      if (!eof_) break;
      // EOF with nothing complete buffered: serve a final unterminated
      // frame like std::getline, then the session is over.
      st = framer_->scanner.finish(line);
      if (st == net::LineScanner::Next::kNeedMore) {
        flush_batch();
        done_ = true;
        break;
      }
    }
    ++processed;
    if (st == net::LineScanner::Next::kOverlong) {
      flush_batch();
      sm.err_overlong->add();
      emit(format_error(line));
      continue;
    }
    sm.bytes_in->add(line.size() + 1);
    ParsedRequest req = parse_request(line);
    if (req.ignored) continue;
    if (req.query) {
      // Consecutive plain queries batch up and execute together through
      // SessionHost::run_batch when the turn ends (or a control frame /
      // the fairness bound cuts the batch).
      batch_.push_back({std::move(*req.query), req.report_time, std::move(line)});
      line.clear();
      continue;
    }
    flush_batch();
    dispatch_control(req);
  }
  flush_batch();
  return processed;
}

std::size_t serve_session(SessionHost& host, SessionIo& io,
                          const ServeOptions& opts) {
  // The blocking driver over the Session state machine: the SessionIo owns
  // framing (lines in) and flushing (one write per reply line out), the
  // session owns everything else. Byte-for-byte the replies, metrics, and
  // error behavior of the pre-reactor loop this grew out of.
  Session session(host, opts);
  std::string line;
  bool io_ok = true;
  while (io_ok && !session.done()) {
    const SessionIo::Read st = io.read_line(line);
    if (st == SessionIo::Read::kEof) break;
    if (st == SessionIo::Read::kOverlong) {
      session.process_overlong(line);
    } else {
      session.process_line(line);
    }
    // Hand each buffered reply line to the transport (it re-adds framing).
    std::string& out = session.output();
    std::size_t start = 0;
    while (start < out.size()) {
      const std::size_t nl = out.find('\n', start);
      if (!io.write_line(std::string_view(out).substr(start, nl - start))) {
        // Peer gone: end quietly, like any other session ending.
        io_ok = false;
        break;
      }
      start = nl + 1;
    }
    out.clear();
  }
  return session.answered();
}

namespace {

/// The static-Engine host: queries run directly, live verbs are refused.
class EngineSessionHost final : public SessionHost {
 public:
  explicit EngineSessionHost(Engine& engine) : engine_(engine) {}

  QueryResult run(const Query& q) override { return engine_.run(q); }

  std::vector<BatchItem> run_batch(std::span<const Query> queries) override {
    return engine_.run_batch(queries);
  }

  std::string live(const LiveRequest&) override {
    throw std::runtime_error(
        "live updates are not enabled on this server (serve with --live)");
  }

 private:
  Engine& engine_;
};

}  // namespace

std::unique_ptr<SessionHost> make_session_host(Engine& engine) {
  return std::make_unique<EngineSessionHost>(engine);
}

std::size_t serve_session(Engine& engine, SessionIo& io,
                          const ServeOptions& opts) {
  EngineSessionHost host(engine);
  return serve_session(host, io, opts);
}

namespace {

/// The trusted-local-pipe transport: std::getline in, line-flushed out.
class StreamSessionIo final : public SessionIo {
 public:
  StreamSessionIo(std::istream& in, std::ostream& out) : in_(in), out_(out) {}

  Read read_line(std::string& line) override {
    return std::getline(in_, line) ? Read::kLine : Read::kEof;
  }

  bool write_line(std::string_view reply) override {
    out_ << reply << "\n" << std::flush;
    return static_cast<bool>(out_);
  }

 private:
  std::istream& in_;
  std::ostream& out_;
};

}  // namespace

std::size_t serve_session(SessionHost& host, std::istream& in, std::ostream& out,
                          const ServeOptions& opts) {
  StreamSessionIo io(in, out);
  return serve_session(host, io, opts);
}

std::size_t serve_session(Engine& engine, std::istream& in, std::ostream& out,
                          const ServeOptions& opts) {
  StreamSessionIo io(in, out);
  return serve_session(engine, io, opts);
}

}  // namespace probgraph::engine
