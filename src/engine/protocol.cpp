#include "engine/protocol.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <vector>

#include "util/ascii.hpp"

namespace probgraph::engine {

namespace {

using util::iequals;

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' && line[i] != '\r') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Strict unsigned parse: the whole token must be digits.
template <typename T>
bool parse_unsigned(std::string_view s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

/// Strict finite parse: std::from_chars happily accepts "nan" and "inf",
/// and a non-finite threshold silently poisons every comparison downstream
/// ("cluster jaccard nan" would reply ok with zero kept edges) — reject it
/// here so the session answers with a descriptive err line instead.
bool parse_double(std::string_view s, double& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size() && std::isfinite(out);
}

/// Pop a trailing "exact" token if present.
bool take_exact(std::vector<std::string_view>& tokens) {
  if (!tokens.empty() && iequals(tokens.back(), "exact")) {
    tokens.pop_back();
    return true;
  }
  return false;
}

/// Extract one `kind=SKETCH` clause from anywhere in the token list.
/// Returns false (with `error` set) on an unknown sketch name or a
/// duplicate clause; `out` stays nullopt when no clause is present.
bool take_sketch_kind(std::vector<std::string_view>& tokens,
                      std::optional<SketchKind>& out, std::string& error) {
  for (auto it = tokens.begin(); it != tokens.end();) {
    const std::string_view t = *it;
    if (t.size() < 5 || !iequals(t.substr(0, 5), "kind=")) {
      ++it;
      continue;
    }
    if (out) {
      error = "duplicate kind= clause";
      return false;
    }
    const std::string_view value = t.substr(5);
    const auto kind = parse_sketch_kind(value);
    if (!kind) {
      error = "unknown sketch kind '" + std::string(value) +
              "' in kind= (expected bf, kh, 1h, or kmv)";
      return false;
    }
    out = *kind;
    it = tokens.erase(it);
  }
  return true;
}

ParsedRequest make_error(std::string message) {
  ParsedRequest r;
  r.error = std::move(message);
  return r;
}

ParsedRequest make_query(Query q) {
  ParsedRequest r;
  r.query = std::move(q);
  return r;
}

}  // namespace

ParsedRequest parse_request(std::string_view line) {
  std::vector<std::string_view> tokens = tokenize(line);
  if (tokens.empty() || tokens.front().front() == '#') {
    ParsedRequest r;
    r.ignored = true;
    return r;
  }
  const std::string_view cmd = tokens.front();
  tokens.erase(tokens.begin());

  if (iequals(cmd, "quit") || iequals(cmd, "exit")) {
    if (!tokens.empty()) return make_error("quit takes no arguments");
    ParsedRequest r;
    r.quit = true;
    return r;
  }
  if (iequals(cmd, "help")) {
    ParsedRequest r;
    r.help = true;
    return r;
  }

  std::optional<SketchKind> sketch;
  {
    std::string kind_error;
    if (!take_sketch_kind(tokens, sketch, kind_error)) {
      return make_error(std::move(kind_error));
    }
  }
  const bool exact = take_exact(tokens);
  if (exact && sketch) {
    return make_error("kind= does not apply to exact queries (no sketches are used)");
  }

  if (iequals(cmd, "tc") || iequals(cmd, "4cc") || iequals(cmd, "cc") ||
      iequals(cmd, "stats")) {
    if (!tokens.empty()) {
      return make_error(std::string(cmd) + " takes no arguments beyond 'exact' (got '" +
                        std::string(tokens.front()) + "')");
    }
    if (iequals(cmd, "tc")) return make_query(TriangleCount{exact, sketch});
    if (iequals(cmd, "4cc")) return make_query(FourCliqueCount{exact, sketch});
    if (iequals(cmd, "cc")) return make_query(ClusteringCoeff{exact, sketch});
    if (exact) return make_error("stats has no exact/sketch distinction");
    if (sketch) return make_error("stats never touches the sketches (kind= does not apply)");
    return make_query(GraphStats{});
  }

  if (iequals(cmd, "kclique")) {
    if (tokens.size() != 1) return make_error("usage: kclique K [kind=SKETCH] [exact]");
    unsigned k = 0;
    if (!parse_unsigned(tokens[0], k) || k < 3) {
      return make_error("kclique K must be an integer >= 3 (got '" +
                        std::string(tokens[0]) + "')");
    }
    return make_query(KCliqueCount{k, exact, sketch});
  }

  if (iequals(cmd, "cluster")) {
    if (tokens.size() != 2) {
      return make_error("usage: cluster MEASURE TAU [kind=SKETCH] [exact]");
    }
    const auto measure = algo::parse_similarity_measure(tokens[0]);
    if (!measure) {
      return make_error("unknown measure '" + std::string(tokens[0]) +
                        "' (expected jaccard, overlap, common, total, adamic, or "
                        "resource)");
    }
    double tau = 0.0;
    if (!parse_double(tokens[1], tau)) {
      return make_error("cluster TAU must be a finite number (got '" +
                        std::string(tokens[1]) + "')");
    }
    return make_query(Cluster{*measure, tau, exact, sketch});
  }

  if (iequals(cmd, "pair")) {
    if (tokens.empty()) return make_error("usage: pair KIND U V [U V ...] [exact]");
    const auto kind = parse_estimate_kind(tokens[0]);
    if (!kind) {
      return make_error("unknown estimate kind '" + std::string(tokens[0]) +
                        "' (expected intersection, jaccard, overlap, common, or total)");
    }
    tokens.erase(tokens.begin());
    if (tokens.empty() || tokens.size() % 2 != 0) {
      return make_error("pair needs an even, non-zero number of vertex ids (got " +
                        std::to_string(tokens.size()) + ")");
    }
    PairEstimate q;
    q.kind = *kind;
    q.exact = exact;
    q.sketch = sketch;
    for (std::size_t i = 0; i < tokens.size(); i += 2) {
      VertexPair p;
      if (!parse_unsigned(tokens[i], p.u) || !parse_unsigned(tokens[i + 1], p.v)) {
        return make_error("pair vertex ids must be non-negative integers (got '" +
                          std::string(tokens[i]) + " " + std::string(tokens[i + 1]) +
                          "')");
      }
      q.pairs.push_back(p);
    }
    return make_query(std::move(q));
  }

  if (iequals(cmd, "lp")) {
    if (tokens.empty() || tokens.size() > 2) {
      return make_error("usage: lp K [MEASURE] [exact]");
    }
    LinkPredict q;
    q.exact = exact;
    q.sketch = sketch;
    if (!parse_unsigned(tokens[0], q.topk)) {
      return make_error("lp K must be a non-negative integer (got '" +
                        std::string(tokens[0]) + "')");
    }
    if (tokens.size() == 2) {
      const auto measure = algo::parse_similarity_measure(tokens[1]);
      if (!measure) {
        return make_error("unknown measure '" + std::string(tokens[1]) +
                          "' (expected jaccard, overlap, common, total, adamic, or "
                          "resource)");
      }
      q.measure = *measure;
    }
    return make_query(q);
  }

  return make_error("unknown query '" + std::string(cmd) + "' (send 'help' for the grammar)");
}

std::string format_estimate(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string format_reply(const QueryResult& r) {
  std::string reply = "ok\t";
  reply += r.name;
  const auto field = [&reply](const char* key, const std::string& value) {
    reply += key;  // "\t<name>=" (or just "\t")
    reply += value;
  };
  if (r.stats) {
    const GraphStatsInfo& s = *r.stats;
    field("\tn=", std::to_string(s.num_vertices));
    field("\tm=", std::to_string(s.num_edges));
    field("\tdmax=", std::to_string(s.max_degree));
    field("\tdavg=", format_estimate(s.avg_degree));
    field("\td2=", format_estimate(s.degree_moment2));
    field("\td3=", format_estimate(s.degree_moment3));
    return reply;
  }
  if (r.cluster) {
    field("\tclusters=", std::to_string(r.cluster->num_clusters));
    field("\tkept_edges=", std::to_string(r.cluster->kept_edges));
    return reply;
  }
  if (std::string_view(r.name) == "pair" || std::string_view(r.name) == "lp") {
    for (const PairValue& p : r.pairs) {
      field("\t", std::to_string(p.u));
      field(":", std::to_string(p.v));
      field("=", format_estimate(p.value));
    }
    return reply;
  }
  field("\t", format_estimate(r.value));
  return reply;
}

std::string format_error(std::string_view message) {
  std::string reply = "err\t";
  // Keep the one-reply-per-line invariant even for multi-line exception text.
  for (const char c : message) reply += (c == '\n' || c == '\t') ? ' ' : c;
  return reply;
}

std::string help_reply() {
  return "ok\thelp\ttc [exact] | 4cc [exact] | kclique K [exact] | cc [exact] | "
         "cluster MEASURE TAU [exact] | pair KIND U V [U V ...] [exact] | "
         "lp K [MEASURE] [exact] | stats | quit; sketch queries also take "
         "kind=bf|kh|1h|kmv to route to a substrate of a multi-sketch snapshot";
}

std::size_t serve_session(Engine& engine, SessionIo& io) {
  std::string line;
  std::size_t answered = 0;
  for (;;) {
    const SessionIo::Read st = io.read_line(line);
    if (st == SessionIo::Read::kEof) break;
    if (st == SessionIo::Read::kOverlong) {
      if (!io.write_line(format_error(line))) break;
      continue;
    }
    ParsedRequest req = parse_request(line);
    if (req.ignored) continue;
    if (req.quit) {
      (void)io.write_line("bye");
      break;
    }
    if (req.help) {
      if (!io.write_line(help_reply())) break;
      continue;
    }
    if (!req.query) {
      if (!io.write_line(format_error(req.error))) break;
      continue;
    }
    try {
      const QueryResult r = engine.run(*req.query);
      if (!io.write_line(format_reply(r))) break;
      ++answered;
    } catch (const std::exception& e) {
      // Malformed-but-parseable requests (out-of-range vertices, KMV 4cc,
      // wrong snapshot orientation, ...) answer with an error line; the
      // session keeps serving.
      if (!io.write_line(format_error(e.what()))) break;
    }
  }
  return answered;
}

namespace {

/// The trusted-local-pipe transport: std::getline in, line-flushed out.
class StreamSessionIo final : public SessionIo {
 public:
  StreamSessionIo(std::istream& in, std::ostream& out) : in_(in), out_(out) {}

  Read read_line(std::string& line) override {
    return std::getline(in_, line) ? Read::kLine : Read::kEof;
  }

  bool write_line(std::string_view reply) override {
    out_ << reply << "\n" << std::flush;
    return static_cast<bool>(out_);
  }

 private:
  std::istream& in_;
  std::ostream& out_;
};

}  // namespace

std::size_t serve_session(Engine& engine, std::istream& in, std::ostream& out) {
  StreamSessionIo io(in, out);
  return serve_session(engine, io);
}

}  // namespace probgraph::engine
