// The `pgtool serve` line protocol: one query per line, one reply per line.
//
// Request grammar (whitespace-separated tokens, keywords case-insensitive;
// blank lines and lines starting with '#' are ignored):
//
//   tc [exact]                     triangle count
//   4cc [exact]                    4-clique count
//   kclique K [exact]              k-clique count, K >= 3
//   cc [exact]                     global clustering coefficient
//   cluster MEASURE TAU [exact]    Jarvis–Patrick clustering
//   pair KIND U V [U V ...] [exact]  batched per-pair estimates
//   lp K [MEASURE] [exact]         top-K predicted links
//   stats                          graph facts
//   help                           one-line grammar summary
//   quit | exit                    end the session (replies "bye")
//
// KIND    ∈ intersection | jaccard | overlap | common | total
// MEASURE ∈ jaccard | overlap | common | total | adamic | resource
//
// Reply grammar (exactly one line per non-ignored request, tab-separated):
//
//   ok<TAB>tc<TAB><value>                         scalar queries (tc, 4cc,
//                                                 kclique, cc)
//   ok<TAB>cluster<TAB>clusters=N<TAB>kept_edges=M
//   ok<TAB>pair<TAB>U:V=<value><TAB>...           one field per pair, in
//   ok<TAB>lp<TAB>U:V=<score><TAB>...             request/rank order
//   ok<TAB>stats<TAB>n=..<TAB>m=..<TAB>dmax=..<TAB>davg=..<TAB>d2=..<TAB>d3=..
//   err<TAB><message>                             malformed request or a
//                                                 query the source cannot
//                                                 answer — never a crash
//   bye                                           reply to quit/exit
//
// Replies are deterministic for a fixed snapshot and thread count: no
// timing or other run-varying data. Estimates print with 12 significant
// digits — identical strings to the one-shot pgtool commands, which format
// through the same helper, while staying stable across libm versions.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "engine/engine.hpp"
#include "engine/query.hpp"

namespace probgraph::engine {

/// Outcome of parsing one request line.
struct ParsedRequest {
  std::optional<Query> query;  ///< set iff the line is a well-formed query
  std::string error;           ///< set iff malformed (the err reply text)
  bool quit = false;           ///< "quit" / "exit"
  bool help = false;           ///< "help"
  bool ignored = false;        ///< blank line or '#' comment — no reply
};

[[nodiscard]] ParsedRequest parse_request(std::string_view line);

/// The shared estimate formatter (12 significant digits) — one-shot pgtool
/// output and serve replies both go through this, so their values are
/// comparable as strings.
[[nodiscard]] std::string format_estimate(double v);

/// One "ok\t..." reply line for an executed query (no trailing newline).
[[nodiscard]] std::string format_reply(const QueryResult& r);

/// One "err\t..." reply line.
[[nodiscard]] std::string format_error(std::string_view message);

/// The "ok\thelp\t..." grammar summary line.
[[nodiscard]] std::string help_reply();

/// Run a serve session: read request lines from `in` until EOF or quit,
/// write one reply line per request to `out` (flushed per line, so piped
/// sessions interleave correctly). Engine errors become "err" replies, not
/// crashes. Returns the number of successfully answered queries.
std::size_t serve_session(Engine& engine, std::istream& in, std::ostream& out);

}  // namespace probgraph::engine
