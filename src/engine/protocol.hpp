// The `pgtool serve` line protocol: one query per line, one reply per line.
//
// Request grammar (whitespace-separated tokens, keywords case-insensitive;
// blank lines and lines starting with '#' are ignored):
//
//   tc [exact]                     triangle count
//   4cc [exact]                    4-clique count
//   kclique K [exact]              k-clique count, K >= 3
//   cc [exact]                     global clustering coefficient
//   cluster MEASURE TAU [exact]    Jarvis–Patrick clustering
//   pair KIND U V [U V ...] [exact]  batched per-pair estimates
//   lp K [MEASURE] [exact]         top-K predicted links
//   stats                          graph facts
//   metrics                        one-line metrics snapshot (see below)
//   update insert U V [U V ...]    stage edge inserts (live servers only)
//   update delete U V [U V ...]    stage edge tombstones (live servers only)
//   update seal                    apply staged changes as a new generation
//   epoch                          current generation + staged change counts
//   help                           one-line grammar summary
//   quit | exit                    end the session (replies "bye")
//
// KIND    ∈ intersection | jaccard | overlap | common | total
// MEASURE ∈ jaccard | overlap | common | total | adamic | resource
//
// Every sketch query (everything but stats) additionally accepts one
// `kind=SKETCH` clause anywhere after the command, SKETCH ∈ bf | kh | 1h |
// kmv: it routes the query to that sketch substrate of a multi-substrate
// snapshot (engine.hpp documents the routing rules; without the clause the
// file's primary substrate answers). `kind=` does not combine with `exact`
// — an exact run uses no sketches. Numeric arguments must be finite:
// "cluster jaccard nan" is answered with an err line, not a threshold that
// silently compares false everywhere.
//
// Every query (including stats) additionally accepts one `time` clause
// anywhere after the command: the reply gains a final
// `elapsed_us=<integer>` field with the query's execution time. That field
// is run-varying BY DESIGN — `time` (like `metrics`) is opt-in
// observability and is deliberately kept out of every golden transcript
// fixture; requests without the clause reply byte-identically whether or
// not other sessions used it.
//
// `metrics` replies `ok<TAB>metrics<TAB><field>...` where each field is a
// `name{labels}=value` sample of the process-wide obs::Registry (counters,
// histogram count/sum/p50/p90/p99/max, kernel tallies) — one line, tab-
// separated, run-varying, excluded from fixtures.
//
// The live verbs (update/epoch) are parsed for every session but only
// accepted by live servers (engine/generation.hpp); a static server
// answers them with an err line naming the --live flag. `update
// insert`/`update delete` STAGE changes; nothing is visible to queries
// until `update seal` applies every staged change atomically as a new
// snapshot generation — queries see whole generations, never partial
// batches.
//
// Reply grammar (exactly one line per non-ignored request, tab-separated):
//
//   ok<TAB>tc<TAB><value>                         scalar queries (tc, 4cc,
//                                                 kclique, cc)
//   ok<TAB>cluster<TAB>clusters=N<TAB>kept_edges=M
//   ok<TAB>pair<TAB>U:V=<value><TAB>...           one field per pair, in
//   ok<TAB>lp<TAB>U:V=<score><TAB>...             request/rank order
//   ok<TAB>stats<TAB>n=..<TAB>m=..<TAB>dmax=..<TAB>davg=..<TAB>d2=..<TAB>d3=..
//   ok<TAB>update<TAB>staged=insert|delete<TAB>edges=N<TAB>pending_inserts=I<TAB>pending_deletes=D
//   ok<TAB>update<TAB>sealed<TAB>generation=G<TAB>applied_inserts=A<TAB>applied_deletes=B<TAB>patched=P<TAB>rebuilt=R
//   ok<TAB>update<TAB>noop<TAB>generation=G       seal with nothing staged
//   ok<TAB>epoch<TAB>generation=G<TAB>pending_inserts=I<TAB>pending_deletes=D
//   err<TAB><message>                             malformed request or a
//                                                 query the source cannot
//                                                 answer — never a crash
//   bye                                           reply to quit/exit
//
// Replies are deterministic for a fixed snapshot and thread count: no
// timing or other run-varying data. Estimates print with 12 significant
// digits — identical strings to the one-shot pgtool commands, which format
// through the same helper, while staying stable across libm versions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.hpp"
#include "engine/query.hpp"
#include "graph/builder.hpp"
#include "util/timer.hpp"

namespace probgraph::engine {

/// One live-update request (the `update`/`epoch` verbs). Parsed for every
/// transport; only live servers (engine/generation.hpp) accept them.
struct LiveRequest {
  enum class Op : std::uint8_t {
    kInsert,  ///< stage edge inserts
    kDelete,  ///< stage edge tombstones
    kSeal,    ///< apply everything staged as a new generation
    kEpoch,   ///< report generation + staged counts
  };
  Op op = Op::kEpoch;
  std::vector<Edge> edges;  ///< kInsert/kDelete payload
};

/// Outcome of parsing one request line.
struct ParsedRequest {
  std::optional<Query> query;  ///< set iff the line is a well-formed query
  std::optional<LiveRequest> live;  ///< set iff an update/epoch verb
  std::string error;           ///< set iff malformed (the err reply text)
  bool quit = false;           ///< "quit" / "exit"
  bool help = false;           ///< "help"
  bool metrics = false;        ///< "metrics" — registry snapshot reply
  bool ignored = false;        ///< blank line or '#' comment — no reply
  bool report_time = false;    ///< `time` clause: append elapsed_us= to the reply
};

[[nodiscard]] ParsedRequest parse_request(std::string_view line);

/// The shared estimate formatter (12 significant digits) — one-shot pgtool
/// output and serve replies both go through this, so their values are
/// comparable as strings.
[[nodiscard]] std::string format_estimate(double v);

/// One "ok\t..." reply line for an executed query (no trailing newline).
[[nodiscard]] std::string format_reply(const QueryResult& r);

/// One "err\t..." reply line.
[[nodiscard]] std::string format_error(std::string_view message);

/// The "ok\thelp\t..." grammar summary line.
[[nodiscard]] std::string help_reply();

/// Transport abstraction for a serve session. One implementation per
/// transport — stdin/stdout streams (the REPL), a TCP connection
/// (src/net/server.cpp) — so every transport runs the SAME session loop
/// with the same malformed-frame behavior: err line + continue, never a
/// crash or a silent drop.
class SessionIo {
 public:
  enum class Read {
    kLine,      ///< `line` holds one complete request line (no newline)
    kEof,       ///< no more requests; end the session
    kOverlong,  ///< a frame exceeded the transport's line limit and was
                ///< discarded up to the next boundary; `line` holds the
                ///< error text the session answers with
  };

  virtual ~SessionIo() = default;

  /// Pull the next request line. Blocking; transports map their own error
  /// conditions (closed socket, stream failure) onto kEof.
  [[nodiscard]] virtual Read read_line(std::string& line) = 0;

  /// Push one reply line (the transport appends framing and flushes, so
  /// piped/streamed sessions interleave correctly). Returns false when the
  /// peer is gone — the session then ends quietly instead of crashing on a
  /// broken pipe.
  [[nodiscard]] virtual bool write_line(std::string_view reply) = 0;
};

/// Per-session serving knobs (pgtool serve flags map onto these).
struct ServeOptions {
  /// When > 0, any answered query whose execution time meets the threshold
  /// is logged to stderr as one structured `slow-query` line (type, mode,
  /// substrate route, elapsed_us, sanitized request). 0 disables.
  double slow_query_seconds = 0.0;
};

/// What a serve session runs against. One implementation per engine
/// flavor — a static Engine (below) or a live, generation-swapping
/// LiveEngine (engine/generation.hpp) — so every flavor shares ONE session
/// loop with identical framing, error, and metrics behavior.
class SessionHost {
 public:
  virtual ~SessionHost() = default;

  /// Execute one query (Engine::run semantics, including its throws).
  [[nodiscard]] virtual QueryResult run(const Query& q) = 0;

  /// Execute a pipelined batch in request order, capturing each query's
  /// outcome — the result or the error run() would have thrown — so one
  /// bad query never eats the replies behind it. The base implementation
  /// loops run(); engine-backed hosts forward to Engine::run_batch (which
  /// hoists the substrate route of consecutive same-route pair/lp
  /// queries), and the live host pins ONE generation for the whole batch.
  /// Replies MUST be bit-identical to per-query run().
  [[nodiscard]] virtual std::vector<BatchItem> run_batch(std::span<const Query> queries);

  /// Answer one live request with a complete reply line ("ok\t...").
  /// Hosts that do not accept live updates throw std::runtime_error (the
  /// session answers with the err line and keeps serving).
  [[nodiscard]] virtual std::string live(const LiveRequest& req) = 0;
};

/// A session host over a static Engine: queries run directly, update/epoch
/// verbs answer an err line naming --live. Transports create one host per
/// session through this factory (and its LiveEngine counterpart in
/// engine/generation.hpp), so adding a transport never grows a ctor
/// matrix over engine flavors again.
[[nodiscard]] std::unique_ptr<SessionHost> make_session_host(Engine& engine);

/// The buffer-oriented session state machine — the core every transport
/// drives. Raw transport bytes go in through feed(), complete reply bytes
/// come out through output(); the session neither reads nor writes any
/// I/O itself, so the SAME machine serves blocking loops (serve_session
/// below wraps it around a SessionIo) and the epoll reactor (which feeds
/// nonblocking reads and drains output() through writev).
///
/// Pipelining falls out of the split: feed() may deliver any number of
/// newline-framed requests in one call (or a fraction of one), and pump()
/// answers every complete buffered request — consecutive plain queries are
/// executed through SessionHost::run_batch as ONE batch — appending all
/// replies to output() in request order. A transport that drains output()
/// once per pump() therefore answers N pipelined requests with one
/// gathered write. `max_requests` bounds one pump() call (reactor
/// fairness: a pipelining hog yields the worker between turns).
///
/// Framing, error behavior (err line + keep serving), per-session obs
/// metrics, and reply bytes are identical across transports and identical
/// to the blocking loop this class was extracted from. Not thread-safe:
/// one session is driven by one thread at a time (the reactor's run-queue
/// handoff guarantees this).
class Session {
 public:
  /// The host must outlive the session. Destruction records the
  /// per-session metrics (sessions/queries/lifetime) exactly once.
  /// `max_line_bytes` bounds request lines for byte-fed transports; 0 =
  /// unbounded (the line-fed drivers below bound their own framing).
  explicit Session(SessionHost& host, ServeOptions opts = {},
                   std::size_t max_line_bytes = 0);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- Byte-oriented interface (event-driven transports). ---

  /// Buffer raw transport bytes (any framing fragmentation).
  void feed(std::string_view bytes);
  /// The peer sent EOF: after the buffered requests are pumped, a final
  /// unterminated frame is served like std::getline, then done() holds.
  void feed_eof() noexcept;
  /// Answer up to `max_requests` complete buffered requests, appending
  /// replies to output(). Returns the number of frames consumed (answered
  /// queries, err replies, and ignored comment/blank lines alike — the
  /// bound is a bound on work per scheduling turn). Stops early at quit.
  std::size_t pump(std::size_t max_requests = static_cast<std::size_t>(-1));
  /// True once the session is over (quit answered, or EOF fully drained):
  /// no further input will be consumed. The transport closes after also
  /// draining output().
  [[nodiscard]] bool done() const noexcept { return done_; }
  /// Pending reply bytes, every reply newline-terminated, in request
  /// order. The transport owns draining: write what it can and erase the
  /// written prefix (or move the whole string out and clear).
  [[nodiscard]] std::string& output() noexcept { return out_; }
  /// Successfully answered queries so far (err replies, metrics scrapes,
  /// and live verbs not counted) — the transport's queries_answered.
  [[nodiscard]] std::size_t answered() const noexcept { return answered_; }

  // --- Line-oriented interface (transports that frame themselves: the
  // --- SessionIo drivers below). Each call answers immediately into
  // --- output().

  /// Process one complete request line (no newline).
  void process_line(std::string_view line);
  /// A frame exceeded the transport's limit and was discarded; answer the
  /// err line (`error_text` is the transport's message).
  void process_overlong(std::string_view error_text);

 private:
  struct PendingQuery {
    Query query;
    bool report_time = false;
    std::string line;  // original request text (slow-query log)
  };
  class Framer;  // LineScanner behind a pointer (net/ stays out of this header)

  void dispatch_control(const ParsedRequest& req);
  void flush_batch();
  void emit(std::string_view reply);

  SessionHost& host_;
  ServeOptions opts_;
  std::unique_ptr<Framer> framer_;
  std::vector<PendingQuery> batch_;
  std::string out_;
  std::size_t answered_ = 0;
  bool eof_ = false;
  bool done_ = false;
  util::Timer lifetime_;  // connect-to-close, recorded at destruction
};

/// Run a serve session over any transport: read request lines until EOF or
/// quit, answer exactly one reply line per non-ignored request. Malformed
/// or overlong frames and engine errors become "err" replies and the
/// session keeps serving. Returns the number of successfully answered
/// queries (live verbs and metrics scrapes are not counted).
///
/// Observability: every session records into obs::Registry::global() —
/// sessions/bytes/err-reply counters (err causes: "overlong" frames,
/// "parse" failures, "bad-argument" client errors, "engine" routing or
/// internal failures) and per-session query-count/lifetime histograms.
/// Recording is lock-free on the session path (see obs/instruments.hpp)
/// and never changes reply bytes.
std::size_t serve_session(SessionHost& host, SessionIo& io,
                          const ServeOptions& opts = {});

/// Session over a static Engine: queries only; update/epoch answer an err
/// line naming --live.
std::size_t serve_session(Engine& engine, SessionIo& io,
                          const ServeOptions& opts = {});

/// Stream adapter over the shared loop — the stdin REPL and the in-memory
/// tests/benches. Lines are unbounded (the transport is a trusted local
/// pipe); socket transports bound them instead (src/net/line_reader.hpp).
std::size_t serve_session(SessionHost& host, std::istream& in, std::ostream& out,
                          const ServeOptions& opts = {});
std::size_t serve_session(Engine& engine, std::istream& in, std::ostream& out,
                          const ServeOptions& opts = {});

}  // namespace probgraph::engine
