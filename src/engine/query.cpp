#include "engine/query.hpp"

#include "util/ascii.hpp"

namespace probgraph::engine {

using util::iequals;

const char* to_string(EstimateKind kind) noexcept {
  switch (kind) {
    case EstimateKind::kIntersection: return "intersection";
    case EstimateKind::kJaccard: return "jaccard";
    case EstimateKind::kOverlap: return "overlap";
    case EstimateKind::kCommonNeighbors: return "common";
    case EstimateKind::kTotalNeighbors: return "total";
  }
  return "invalid(EstimateKind)";
}

std::optional<EstimateKind> parse_estimate_kind(std::string_view s) noexcept {
  for (const EstimateKind kind :
       {EstimateKind::kIntersection, EstimateKind::kJaccard, EstimateKind::kOverlap,
        EstimateKind::kCommonNeighbors, EstimateKind::kTotalNeighbors}) {
    if (iequals(s, to_string(kind))) return kind;
  }
  if (iequals(s, "inter")) return EstimateKind::kIntersection;
  if (iequals(s, "cn")) return EstimateKind::kCommonNeighbors;
  return std::nullopt;
}

const char* query_name(const Query& q) noexcept {
  struct Namer {
    const char* operator()(const TriangleCount&) const noexcept { return "tc"; }
    const char* operator()(const FourCliqueCount&) const noexcept { return "4cc"; }
    const char* operator()(const KCliqueCount&) const noexcept { return "kclique"; }
    const char* operator()(const ClusteringCoeff&) const noexcept { return "cc"; }
    const char* operator()(const Cluster&) const noexcept { return "cluster"; }
    const char* operator()(const PairEstimate&) const noexcept { return "pair"; }
    const char* operator()(const LinkPredict&) const noexcept { return "lp"; }
    const char* operator()(const GraphStats&) const noexcept { return "stats"; }
  };
  return std::visit(Namer{}, q);
}

}  // namespace probgraph::engine
