// The typed query surface of the serving engine (src/engine/).
//
// ProbGraph's public API used to be a scatter of free functions — one per
// algorithm family, each with its own argument conventions — which every
// front end (pgtool, benches, examples) re-plumbed by hand. A `Query` is a
// tagged request covering all of them; a `QueryResult` carries the
// estimate value(s) together with everything a serving layer wants to
// report alongside: a deviation bound where core/bounds provides one, the
// query's wall time, and the sketch/backend metadata that produced it.
//
// Queries are plain data: front ends (the pgtool command registry, the
// `pgtool serve` line protocol, library callers) construct them, the
// Engine (engine.hpp) executes them. Adding a query type means adding a
// struct here, a runner in engine.cpp, and (optionally) a parser clause in
// protocol.cpp — no new argv plumbing.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <variant>
#include <vector>

#include "algorithms/vertex_similarity.hpp"
#include "core/prob_graph.hpp"
#include "util/types.hpp"

namespace probgraph::engine {

/// Which per-pair estimate a PairEstimate query asks for. Mirrors the
/// `ProbGraph::est_*` wrapper family one-to-one (kIntersection and
/// kCommonNeighbors are the same number; both spellings are kept because
/// both wrappers exist).
enum class EstimateKind : std::uint8_t {
  kIntersection,     ///< est_intersection — |N_u ∩ N_v|
  kJaccard,          ///< est_jaccard
  kOverlap,          ///< est_overlap
  kCommonNeighbors,  ///< est_common_neighbors
  kTotalNeighbors,   ///< est_total_neighbors
};

[[nodiscard]] const char* to_string(EstimateKind kind) noexcept;
/// Accepts the protocol spellings ("intersection", "jaccard", "overlap",
/// "common", "total"), case-insensitively. nullopt on anything else.
[[nodiscard]] std::optional<EstimateKind> parse_estimate_kind(std::string_view s) noexcept;

struct VertexPair {
  VertexId u = 0;
  VertexId v = 0;
};

// --- The query variants. `exact = true` bypasses the sketches and runs the
// --- exact baseline (pgtool's `--sketch exact`); it needs no ProbGraph.
// --- `sketch` routes the query to a specific sketch substrate (the
// --- protocol's `kind=` clause): a multi-substrate .pgs snapshot can carry
// --- several sketch kinds per orientation, and nullopt means "the file's
// --- primary substrate" (see engine.hpp for the full routing rules).

/// Triangle count. Sketch-based runs use the degree-oriented estimator
/// (Listing 1) when oriented sketches are available or buildable, and fall
/// back to the Theorem-VII.1 full-graph estimator TĈ = ⅓·Σ_E est(u,v) when
/// serving a snapshot without a DAG substrate of the routed kind.
struct TriangleCount {
  bool exact = false;
  std::optional<SketchKind> sketch;
};

/// 4-clique count (Listing 2). Sketch-based runs need oriented sketches.
struct FourCliqueCount {
  bool exact = false;
  std::optional<SketchKind> sketch;
};

/// k-clique count, k ≥ 3. Sketch-based runs need oriented BF sketches.
struct KCliqueCount {
  unsigned k = 5;
  bool exact = false;
  std::optional<SketchKind> sketch;
};

/// Global clustering coefficient 3·TC/#wedges over the symmetric graph.
struct ClusteringCoeff {
  bool exact = false;
  std::optional<SketchKind> sketch;
};

/// Jarvis–Patrick clustering (Listing 4) over the symmetric graph.
struct Cluster {
  algo::SimilarityMeasure measure = algo::SimilarityMeasure::kJaccard;
  double tau = 0.1;
  bool exact = false;
  std::optional<SketchKind> sketch;
};

/// Batched per-pair estimates over the symmetric graph's neighborhoods:
/// one value per requested (u, v).
struct PairEstimate {
  EstimateKind kind = EstimateKind::kIntersection;
  std::vector<VertexPair> pairs;
  bool exact = false;
  std::optional<SketchKind> sketch;
};

/// Serving-shaped link prediction: score every distance-2 non-adjacent
/// pair of the symmetric graph under `measure`, return the `topk`
/// highest-scored candidate links.
struct LinkPredict {
  std::uint32_t topk = 10;
  algo::SimilarityMeasure measure = algo::SimilarityMeasure::kCommonNeighbors;
  bool exact = false;
  std::optional<SketchKind> sketch;
};

/// Basic facts about the loaded graph; never touches the sketches.
struct GraphStats {};

using Query = std::variant<TriangleCount, FourCliqueCount, KCliqueCount, ClusteringCoeff,
                           Cluster, PairEstimate, LinkPredict, GraphStats>;

/// Stable short tag of a query variant ("tc", "4cc", "kclique", "cc",
/// "cluster", "pair", "lp", "stats") — the protocol's request keyword and
/// the first reply field.
[[nodiscard]] const char* query_name(const Query& q) noexcept;

// --- Result payloads. ---

/// A deviation bound from core/bounds evaluated for this query:
/// P(|estimate − truth| ≥ t) ≤ probability. For batched PairEstimate the
/// probability is a union bound over the batch (per-pair threshold 10% of
/// each estimate, floored at 1) and `t` is the largest per-pair threshold.
struct BoundInfo {
  const char* name = "";       ///< which paper bound ("Thm VII.1 (BF-AND)", ...)
  double t = 0.0;              ///< deviation threshold the bound is evaluated at
  double probability = 0.0;    ///< RHS of the bound, capped at 1
};

struct PairValue {
  VertexId u = 0;
  VertexId v = 0;
  double value = 0.0;
};

struct ClusterInfo {
  std::size_t num_clusters = 0;
  std::uint64_t kept_edges = 0;
};

/// Stats describe the symmetric graph whenever the source carries it.
/// Only for a DAG-only (--orient) snapshot is the stored graph the DAG:
/// num_edges then counts its arcs (= the original m), and the degree
/// fields are out-degrees.
struct GraphStatsInfo {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;           ///< undirected m
  EdgeId num_directed_edges = 0;
  EdgeId max_degree = 0;
  double avg_degree = 0.0;
  double degree_moment2 = 0.0;    ///< Σ_v d_v²
  double degree_moment3 = 0.0;    ///< Σ_v d_v³
  std::size_t csr_bytes = 0;
  bool mapped = false;            ///< served out of an mmap'ed snapshot
};

/// Which sketches answered the query (meaningless when `used` is false,
/// i.e. for exact runs and GraphStats).
struct SketchMeta {
  bool used = false;
  SketchKind kind = SketchKind::kBloomFilter;
  BfEstimator bf_estimator = BfEstimator::kAnd;
  std::uint64_t bf_bits = 0;
  std::uint32_t bf_hashes = 0;
  std::uint32_t minhash_k = 0;
  double relative_memory = 0.0;
  double construction_seconds = 0.0;  ///< 0 when served from a snapshot's arenas
  bool mapped = false;                ///< arenas view an mmap'ed snapshot
  bool degree_oriented = false;       ///< sketches cover N+ (the counting DAG)
};

struct QueryResult {
  const char* name = "";            ///< query_name of the executed query
  bool exact = false;               ///< ran the exact baseline, not sketches
  double value = 0.0;               ///< scalar payload (tc, 4cc, kclique, cc)
  std::vector<PairValue> pairs;     ///< PairEstimate / LinkPredict payload
  std::optional<ClusterInfo> cluster;
  std::optional<GraphStatsInfo> stats;
  std::optional<BoundInfo> bound;
  double elapsed_seconds = 0.0;     ///< query execution, excluding lazy sketch builds
  SketchMeta sketch;
};

}  // namespace probgraph::engine
