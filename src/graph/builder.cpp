#include "graph/builder.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

namespace probgraph {

namespace {

VertexId infer_num_vertices(const std::vector<Edge>& edges, VertexId requested) {
  VertexId n = requested;
  for (const auto& [u, v] : edges) {
    n = std::max({n, static_cast<VertexId>(u + 1), static_cast<VertexId>(v + 1)});
  }
  return n;
}

/// Shared tail of both build paths: arcs must already contain every directed
/// arc exactly as it should appear; we bucket, sort, and deduplicate.
CsrGraph build_from_directed(std::vector<Edge>& arcs, VertexId n) {
  std::vector<EdgeId> counts(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : arcs) {
    (void)v;
    ++counts[u + 1];
  }
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];

  std::vector<VertexId> adj(arcs.size());
  std::vector<EdgeId> cursor(counts.begin(), counts.end() - 1);
  for (const auto& [u, v] : arcs) adj[cursor[u]++] = v;

  // Sort and deduplicate each neighborhood, then compact in place.
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  EdgeId write = 0;
#pragma omp parallel for schedule(dynamic, 256)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(counts[v]),
              adj.begin() + static_cast<std::ptrdiff_t>(counts[v + 1]));
  }
  std::vector<VertexId> compact;
  compact.reserve(adj.size());
  for (VertexId v = 0; v < n; ++v) {
    VertexId prev = std::numeric_limits<VertexId>::max();
    for (EdgeId i = counts[v]; i < counts[v + 1]; ++i) {
      if (adj[i] != prev) {
        compact.push_back(adj[i]);
        prev = adj[i];
        ++write;
      }
    }
    offsets[v + 1] = write;
  }
  return CsrGraph(std::move(offsets), std::move(compact));
}

}  // namespace

CsrGraph GraphBuilder::from_edges(std::vector<Edge> edges, VertexId num_vertices) {
  const VertexId n = infer_num_vertices(edges, num_vertices);
  std::vector<Edge> arcs;
  arcs.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;  // drop self-loops (simple-graph semantics)
    arcs.emplace_back(u, v);
    arcs.emplace_back(v, u);
  }
  return build_from_directed(arcs, n);
}

CsrGraph GraphBuilder::from_arcs(std::vector<Edge> arcs, VertexId num_vertices) {
  const VertexId n = infer_num_vertices(arcs, num_vertices);
  std::erase_if(arcs, [](const Edge& e) { return e.first == e.second; });
  return build_from_directed(arcs, n);
}

}  // namespace probgraph
