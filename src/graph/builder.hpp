// Edge-list → CSR construction.
//
// Mirrors the loading pipeline the paper takes from the GAP Benchmark
// Suite [105]: symmetrize, drop self-loops, deduplicate parallel edges,
// sort neighborhoods, and emit CSR. Construction is parallelized with a
// counting pass + prefix sum (work O(n + m), depth O(log n)).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/types.hpp"

namespace probgraph {

/// An undirected edge as an unordered pair of endpoints.
using Edge = std::pair<VertexId, VertexId>;

class GraphBuilder {
 public:
  /// Build a simple undirected CSR graph (symmetric adjacency, no
  /// self-loops, no duplicates) from an arbitrary edge list.
  /// `num_vertices` of 0 means "infer from the maximum endpoint + 1".
  static CsrGraph from_edges(std::vector<Edge> edges, VertexId num_vertices = 0);

  /// Build a *directed* CSR from directed arcs (used for the N+ DAG and by
  /// tests); sorts and deduplicates per source, keeps the arcs as given.
  static CsrGraph from_arcs(std::vector<Edge> arcs, VertexId num_vertices = 0);
};

}  // namespace probgraph
