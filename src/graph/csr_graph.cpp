#include "graph/csr_graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace probgraph {

CsrGraph::CsrGraph(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors)
    : offsets_(offsets.empty() ? std::vector<EdgeId>{0} : std::move(offsets)),
      neighbors_(std::move(neighbors)) {}

CsrGraph::CsrGraph(util::ArenaRef<EdgeId> offsets, util::ArenaRef<VertexId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  if (offsets_.empty()) {
    throw std::invalid_argument("CsrGraph: arena offsets must have at least one entry");
  }
}

bool CsrGraph::has_edge(VertexId v, VertexId u) const noexcept {
  const auto nv = neighbors(v);
  return std::binary_search(nv.begin(), nv.end(), u);
}

EdgeId CsrGraph::max_degree() const noexcept {
  EdgeId d = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) d = std::max(d, degree(v));
  return d;
}

double CsrGraph::degree_moment(int power) const noexcept {
  double acc = 0.0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    acc += std::pow(static_cast<double>(degree(v)), power);
  }
  return acc;
}

void CsrGraph::validate() const {
  if (offsets_.empty() || offsets_.front() != 0) {
    throw std::invalid_argument("CsrGraph: offsets must start at 0");
  }
  if (offsets_.back() != neighbors_.size()) {
    throw std::invalid_argument("CsrGraph: offsets.back() must equal adjacency size");
  }
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (offsets_[v] > offsets_[v + 1]) {
      throw std::invalid_argument("CsrGraph: offsets not monotone at vertex " +
                                  std::to_string(v));
    }
    const auto nv = neighbors(v);
    for (std::size_t i = 0; i < nv.size(); ++i) {
      if (nv[i] >= n) {
        throw std::invalid_argument("CsrGraph: neighbor id out of range at vertex " +
                                    std::to_string(v));
      }
      if (i > 0 && nv[i - 1] >= nv[i]) {
        throw std::invalid_argument(
            "CsrGraph: neighborhood not strictly sorted at vertex " + std::to_string(v));
      }
    }
  }
}

}  // namespace probgraph
