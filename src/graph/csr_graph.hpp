// Compressed Sparse Row graph: the exact substrate of ProbGraph.
//
// The paper (§II-A) stores the input graph in "the standard Compressed
// Sparse Row (CSR) format, in which all neighborhoods Nv form a contiguous
// array (2m words if G is undirected) ... Each Nv is stored as a contiguous
// sorted array of vertex IDs".
//
// This class is the canonical representation for both undirected graphs
// (where each edge {u,v} appears as (u,v) and (v,u)) and directed graphs
// such as the degree-ordered DAG used by triangle/clique counting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/arena_ref.hpp"
#include "util/types.hpp"

namespace probgraph {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Construct from prebuilt offset/adjacency arrays. `offsets` must have
  /// n+1 entries with offsets[0] == 0 and offsets[n] == neighbors.size();
  /// every neighborhood must be sorted ascending. GraphBuilder guarantees
  /// these invariants; `validate()` checks them.
  CsrGraph(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors);

  /// Construct over owned-or-mapped arenas — the snapshot load path
  /// (src/io/snapshot.cpp) serves graphs zero-copy out of an mmap'ed file
  /// through this. Same invariants as the vector constructor; `offsets`
  /// must be non-empty.
  CsrGraph(util::ArenaRef<EdgeId> offsets, util::ArenaRef<VertexId> neighbors);

  /// Number of vertices n.
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of *directed* edges, i.e. the adjacency-array length. For an
  /// undirected graph this is 2m in the paper's notation.
  [[nodiscard]] EdgeId num_directed_edges() const noexcept { return neighbors_.size(); }

  /// Number of undirected edges m (assumes a symmetric graph).
  [[nodiscard]] EdgeId num_edges() const noexcept { return neighbors_.size() / 2; }

  /// The degree d_v.
  [[nodiscard]] EdgeId degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// The sorted neighborhood N_v.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {neighbors_.data() + offsets_[v], neighbors_.data() + offsets_[v + 1]};
  }

  /// Membership query u ∈ N_v via binary search: O(log d_v).
  [[nodiscard]] bool has_edge(VertexId v, VertexId u) const noexcept;

  /// Maximum degree d (the paper's Δ in §VII).
  [[nodiscard]] EdgeId max_degree() const noexcept;

  /// Average degree d̄ = 2m/n for symmetric graphs.
  [[nodiscard]] double avg_degree() const noexcept {
    const VertexId n = num_vertices();
    return n == 0 ? 0.0 : static_cast<double>(num_directed_edges()) / n;
  }

  /// Σ_v d_v^2 and Σ_v d_v^3 — the degree moments appearing in the MinHash
  /// triangle-count bounds of Theorem VII.1.
  [[nodiscard]] double degree_moment(int power) const noexcept;

  /// Memory footprint of the CSR arrays in bytes (offsets + adjacency).
  /// This is the denominator of the paper's relative-memory metric and the
  /// base of the storage budget s (§V-A).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return offsets_.size() * sizeof(EdgeId) + neighbors_.size() * sizeof(VertexId);
  }

  [[nodiscard]] std::span<const EdgeId> offsets() const noexcept { return offsets_.span(); }
  [[nodiscard]] std::span<const VertexId> adjacency() const noexcept {
    return neighbors_.span();
  }

  /// True when the arrays view an external mapping (snapshot-served graph)
  /// rather than owned heap storage.
  [[nodiscard]] bool is_mapped() const noexcept {
    return offsets_.is_mapped() || neighbors_.is_mapped();
  }

  /// Check structural invariants (monotone offsets, sorted neighborhoods,
  /// in-range IDs). Throws std::invalid_argument on violation.
  void validate() const;

 private:
  util::ArenaRef<EdgeId> offsets_;      // n+1 entries
  util::ArenaRef<VertexId> neighbors_;  // offsets_[n] entries, sorted per vertex
};

}  // namespace probgraph
