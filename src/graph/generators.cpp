#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

namespace probgraph::gen {

using util::Xoshiro256;

CsrGraph kronecker(unsigned scale, double edge_factor, std::uint64_t seed,
                   double a, double b, double c) {
  if (scale > 30) throw std::invalid_argument("kronecker: scale too large");
  const double d = 1.0 - a - b - c;
  if (d < 0.0) throw std::invalid_argument("kronecker: partition must sum to <= 1");
  const VertexId n = VertexId{1} << scale;
  const auto target = static_cast<EdgeId>(edge_factor * static_cast<double>(n));

  std::vector<Edge> edges(target);
#pragma omp parallel
  {
    // Each thread owns a disjoint slice with its own seeded stream.
    Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (util::thread_id() + 1)));
#pragma omp for schedule(static)
    for (std::int64_t e = 0; e < static_cast<std::int64_t>(target); ++e) {
      VertexId u = 0, v = 0;
      for (unsigned level = 0; level < scale; ++level) {
        const double r = rng.uniform();
        u <<= 1;
        v <<= 1;
        if (r < a) {
          // top-left quadrant: no bits set
        } else if (r < a + b) {
          v |= 1;
        } else if (r < a + b + c) {
          u |= 1;
        } else {
          u |= 1;
          v |= 1;
        }
      }
      edges[e] = {u, v};
    }
  }
  return GraphBuilder::from_edges(std::move(edges), n);
}

CsrGraph erdos_renyi(VertexId n, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("erdos_renyi: p must be in [0,1]");
  std::vector<Edge> edges;
  Xoshiro256 rng(seed);
  if (p > 0.0) {
    // Geometric skipping: visit each candidate pair with probability p
    // without testing all C(n,2) pairs individually when p is small.
    const double log1mp = std::log1p(-p);
    const auto total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t idx = 0;
    auto skip = [&]() -> std::uint64_t {
      if (p >= 1.0) return 1;
      const double u = std::max(rng.uniform(), 1e-300);
      return 1 + static_cast<std::uint64_t>(std::floor(std::log(u) / log1mp));
    };
    for (idx = skip() - 1; idx < total; idx += skip()) {
      // Map linear pair index -> (u, v), u < v, row-major over the strict
      // upper triangle.
      const double nd = static_cast<double>(n);
      const double i = std::floor(nd - 0.5 - std::sqrt((nd - 0.5) * (nd - 0.5) -
                                                       2.0 * static_cast<double>(idx)));
      auto u = static_cast<VertexId>(i);
      auto row_start = static_cast<std::uint64_t>(u) * n - static_cast<std::uint64_t>(u) * (u + 1) / 2;
      while (row_start > idx) {  // guard against float rounding
        --u;
        row_start = static_cast<std::uint64_t>(u) * n - static_cast<std::uint64_t>(u) * (u + 1) / 2;
      }
      while (row_start + (n - u - 1) <= idx) {
        row_start += n - u - 1;
        ++u;
      }
      const auto v = static_cast<VertexId>(u + 1 + (idx - row_start));
      edges.emplace_back(u, v);
    }
  }
  return GraphBuilder::from_edges(std::move(edges), n);
}

CsrGraph erdos_renyi_m(VertexId n, EdgeId m, std::uint64_t seed) {
  std::vector<Edge> edges;
  edges.reserve(m);
  Xoshiro256 rng(seed);
  for (EdgeId i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(rng.bounded(n));
    const auto v = static_cast<VertexId>(rng.bounded(n));
    edges.emplace_back(u, v);  // self-loops/dups removed by the builder
  }
  return GraphBuilder::from_edges(std::move(edges), n);
}

CsrGraph barabasi_albert(VertexId n, VertexId attach, std::uint64_t seed) {
  if (n < attach + 1) throw std::invalid_argument("barabasi_albert: n must exceed attach");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  // Repeated-endpoints list: sampling a uniform entry is sampling
  // proportionally to degree.
  std::vector<VertexId> endpoints;
  // Seed with a small clique on `attach + 1` vertices.
  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (VertexId v = attach + 1; v < n; ++v) {
    for (VertexId j = 0; j < attach; ++j) {
      const VertexId target = endpoints[rng.bounded(endpoints.size())];
      edges.emplace_back(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return GraphBuilder::from_edges(std::move(edges), n);
}

CsrGraph watts_strogatz(VertexId n, VertexId k, double beta, std::uint64_t seed) {
  if (n < 2 * k + 1) throw std::invalid_argument("watts_strogatz: n must exceed 2k");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * k);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId j = 1; j <= k; ++j) {
      VertexId v = (u + j) % n;
      if (rng.bernoulli(beta)) {
        v = static_cast<VertexId>(rng.bounded(n));
      }
      edges.emplace_back(u, v);
    }
  }
  return GraphBuilder::from_edges(std::move(edges), n);
}

CsrGraph complete(VertexId n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return GraphBuilder::from_edges(std::move(edges), n);
}

CsrGraph star(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return GraphBuilder::from_edges(std::move(edges), n);
}

CsrGraph path(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return GraphBuilder::from_edges(std::move(edges), n);
}

CsrGraph cycle(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  if (n > 2) edges.emplace_back(n - 1, 0);
  return GraphBuilder::from_edges(std::move(edges), n);
}

CsrGraph complete_bipartite(VertexId a, VertexId b) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) edges.emplace_back(u, a + v);
  }
  return GraphBuilder::from_edges(std::move(edges), a + b);
}

CsrGraph clique_chain(VertexId groups, VertexId clique_size) {
  std::vector<Edge> edges;
  for (VertexId g = 0; g < groups; ++g) {
    const VertexId base = g * clique_size;
    for (VertexId u = 0; u < clique_size; ++u) {
      for (VertexId v = u + 1; v < clique_size; ++v) {
        edges.emplace_back(base + u, base + v);
      }
    }
  }
  return GraphBuilder::from_edges(std::move(edges), groups * clique_size);
}

}  // namespace probgraph::gen
