// Synthetic graph generators.
//
// The paper's synthetic workloads are Kronecker graphs [119] "with
// power-law degree distribution", used for the tradeoff panels (Fig. 4/5
// bottom) and the scaling studies (Fig. 8/9) because they allow changing a
// single property (n, m, m/n) at a time. Since the offline environment has
// no access to SNAP/KONECT downloads, the remaining generators provide
// density/skew-matched proxies for the real-graph categories of Table VIII
// (see DESIGN.md §2) plus structured graphs with closed-form pattern counts
// for tests.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "util/types.hpp"

namespace probgraph::gen {

/// R-MAT/Kronecker generator (the recursive-matrix formulation of [119]).
/// Produces an undirected simple graph with 2^scale vertices and about
/// edge_factor * 2^scale edges (duplicates/self-loops removed).
/// Defaults follow the Graph500 partition (a,b,c) = (.57,.19,.19).
CsrGraph kronecker(unsigned scale, double edge_factor, std::uint64_t seed,
                   double a = 0.57, double b = 0.19, double c = 0.19);

/// Erdős–Rényi G(n, p).
CsrGraph erdos_renyi(VertexId n, double p, std::uint64_t seed);

/// Erdős–Rényi with a target edge count, G(n, m).
CsrGraph erdos_renyi_m(VertexId n, EdgeId m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices. Heavy-tailed degrees, high clustering of
/// early vertices — a proxy for citation/interaction networks.
CsrGraph barabasi_albert(VertexId n, VertexId attach, std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with 2*k neighbors, rewiring
/// probability beta. High clustering coefficient — a proxy for the dense
/// biological/chemistry graphs of Table VIII.
CsrGraph watts_strogatz(VertexId n, VertexId k, double beta, std::uint64_t seed);

// --- Structured graphs with closed-form counts (test oracles). ---

/// Complete graph K_n: TC = C(n,3), 4-cliques = C(n,4).
CsrGraph complete(VertexId n);

/// Star S_n (one hub, n-1 leaves): triangle-free.
CsrGraph star(VertexId n);

/// Simple path P_n: triangle-free, n-1 edges.
CsrGraph path(VertexId n);

/// Cycle C_n: triangle-free for n > 3.
CsrGraph cycle(VertexId n);

/// Complete bipartite K_{a,b}: triangle-free, a*b edges.
CsrGraph complete_bipartite(VertexId a, VertexId b);

/// Disjoint union of `groups` cliques of size `clique_size` — a planted
/// clustering with a known component structure.
CsrGraph clique_chain(VertexId groups, VertexId clique_size);

}  // namespace probgraph::gen
