#include "graph/io.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace probgraph::io {

namespace {

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return in;
}

}  // namespace

CsrGraph read_edge_list(const std::string& path) {
  std::ifstream in = open_or_throw(path);
  std::vector<Edge> edges;
  std::string line;
  VertexId declared_n = 0;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      // Honor vertex counts declared in comments so that trailing isolated
      // vertices survive a round trip. Recognized: our own "n=<count>"
      // header and the SNAP convention "# Nodes: <count> Edges: ...".
      for (const std::string& tag : {std::string("n="), std::string("Nodes: ")}) {
        const auto pos = line.find(tag);
        if (pos != std::string::npos) {
          declared_n = std::max(
              declared_n, static_cast<VertexId>(std::strtoull(
                              line.c_str() + pos + tag.size(), nullptr, 10)));
        }
      }
      continue;
    }
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("malformed edge-list line at " + path + ":" +
                               std::to_string(lineno) + ": " + line);
    }
    edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return GraphBuilder::from_edges(std::move(edges), declared_n);
}

void write_edge_list(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  out << "# probgraph edge list: n=" << g.num_vertices() << " m=" << g.num_edges() << "\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

CsrGraph read_matrix_market(const std::string& path) {
  std::ifstream in = open_or_throw(path);
  std::string line;
  std::size_t lineno = 1;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    throw std::runtime_error("not a MatrixMarket file: " + path);
  }
  // Skip comment lines, then read the size line.
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream hs(line);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  if (!(hs >> rows >> cols >> nnz)) {
    throw std::runtime_error("malformed MatrixMarket size line at " + path + ":" +
                             std::to_string(lineno));
  }
  std::vector<Edge> edges;
  edges.reserve(nnz);
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t r = 0, c = 0;
    if (!(ls >> r >> c)) {
      throw std::runtime_error("malformed MatrixMarket entry at " + path + ":" +
                               std::to_string(lineno) + ": " + line);
    }
    if (r == 0 || c == 0) {
      throw std::runtime_error("MatrixMarket indices must be 1-based at " + path + ":" +
                               std::to_string(lineno) + ": " + line);
    }
    edges.emplace_back(static_cast<VertexId>(r - 1), static_cast<VertexId>(c - 1));
  }
  return GraphBuilder::from_edges(std::move(edges),
                                  static_cast<VertexId>(std::max(rows, cols)));
}

}  // namespace probgraph::io
