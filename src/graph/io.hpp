// Graph file I/O.
//
// Supports the two formats the paper's dataset sources ship in:
//   * whitespace-separated edge lists ("u v" per line, '#'/'%' comments) —
//     the SNAP [114] and KONECT [115] convention,
//   * MatrixMarket coordinate files (DIMACS/SuiteSparse convention).
// Graphs are symmetrized/simplified on load via GraphBuilder.
#pragma once

#include <string>

#include "graph/csr_graph.hpp"

namespace probgraph::io {

/// Read a SNAP-style edge list. Lines starting with '#' or '%' are skipped.
/// Vertex IDs may be arbitrary non-negative integers; they are used as-is
/// (no compaction), so files with ID gaps produce isolated vertices.
CsrGraph read_edge_list(const std::string& path);

/// Write an undirected graph as an edge list with one "u v" line per
/// undirected edge (u < v).
void write_edge_list(const CsrGraph& g, const std::string& path);

/// Read a MatrixMarket coordinate file (the header line is validated;
/// values on data lines beyond the two indices are ignored). 1-based
/// indices are converted to 0-based.
CsrGraph read_matrix_market(const std::string& path);

}  // namespace probgraph::io
