#include "graph/orientation.hpp"

#include <cstdint>
#include <vector>

namespace probgraph {

CsrGraph degree_orient(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  // rank(v) < rank(u) iff (d_v, v) < (d_u, u); we orient toward the higher
  // rank without materializing R: the comparison is done inline.
  auto precedes = [&](VertexId v, VertexId u) {
    const EdgeId dv = g.degree(v), du = g.degree(u);
    return dv < du || (dv == du && v < u);
  };

  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
#pragma omp parallel for schedule(dynamic, 256)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    EdgeId out = 0;
    for (const VertexId u : g.neighbors(static_cast<VertexId>(v))) {
      if (precedes(static_cast<VertexId>(v), u)) ++out;
    }
    offsets[v + 1] = out;
  }
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<VertexId> adj(offsets[n]);
#pragma omp parallel for schedule(dynamic, 256)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    EdgeId cursor = offsets[v];
    for (const VertexId u : g.neighbors(static_cast<VertexId>(v))) {
      if (precedes(static_cast<VertexId>(v), u)) adj[cursor++] = u;
    }
    // Neighborhoods of g are sorted by ID; the filtered subsequence stays
    // sorted by ID, which is what the merge intersections require.
  }
  return CsrGraph(std::move(offsets), std::move(adj));
}

}  // namespace probgraph
