// Degree orientation: the N+ DAG of Listings 1 and 2.
//
// "Derive a vertex order R s.t. if R(v) < R(u) then dv <= du" — each
// undirected edge {u, v} is kept only as the arc from the lower-ranked to
// the higher-ranked endpoint. The resulting DAG has exactly m arcs and its
// per-vertex out-degree is bounded by O(sqrt(m)) on simple graphs, which is
// what makes the node-iterator triangle count work-efficient.
#pragma once

#include "graph/csr_graph.hpp"

namespace probgraph {

/// Build the degree-ordered DAG: arc u -> v iff {u,v} in E and
/// (d_u, u) < (d_v, v) lexicographically (degree ties broken by ID).
/// The output is a directed CsrGraph over the same vertex set with m arcs.
CsrGraph degree_orient(const CsrGraph& g);

}  // namespace probgraph
