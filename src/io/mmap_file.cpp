#include "io/mmap_file.hpp"

#include <stdexcept>

#if defined(_WIN32)
#include <cstdio>
#include <filesystem>
#include <system_error>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace probgraph::io {

#if !defined(_WIN32)

std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("cannot open snapshot file: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot stat snapshot file: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw std::runtime_error("snapshot file is empty: " + path);
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the file
  if (base == MAP_FAILED) {
    throw std::runtime_error("cannot mmap snapshot file: " + path);
  }
  return std::shared_ptr<const MappedFile>(
      new MappedFile(static_cast<const std::byte*>(base), size, /*mapped=*/true));
}

MappedFile::~MappedFile() {
  if (data_ == nullptr) return;
  if (mapped_) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  } else {
    delete[] data_;
  }
}

#else  // _WIN32 fallback: read the whole file into an owned buffer.

std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path) {
  // 64-bit size via std::filesystem — ftell's long is 32-bit here and would
  // misreport snapshots over 2 GiB.
  std::error_code ec;
  const auto fs_size = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("cannot stat snapshot file: " + path);
  if (fs_size == 0) throw std::runtime_error("snapshot file is empty: " + path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open snapshot file: " + path);
  const auto size = static_cast<std::size_t>(fs_size);
  auto* buf = new std::byte[size];
  const std::size_t got = std::fread(buf, 1, size, f);
  std::fclose(f);
  if (got != size) {
    delete[] buf;
    throw std::runtime_error("short read on snapshot file: " + path);
  }
  return std::shared_ptr<const MappedFile>(new MappedFile(buf, size, /*mapped=*/false));
}

MappedFile::~MappedFile() {
  if (!mapped_) delete[] data_;
}

#endif

}  // namespace probgraph::io
