// Read-only memory-mapped file.
//
// The substrate of the zero-copy snapshot serving path: load_snapshot maps
// a .pgs file once and hands out ArenaRef views into the mapping, so sketch
// estimates are served directly from the page cache with no deserialization
// copy (the build-once / map-many model of far-memory graph systems).
//
// On POSIX this is mmap(PROT_READ, MAP_PRIVATE); elsewhere it degrades to
// reading the file into an owned buffer (same interface, one copy).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace probgraph::io {

class MappedFile {
 public:
  /// Map `path` read-only. Throws std::runtime_error on open/map failure
  /// (including empty files, which can never be a valid snapshot).
  static std::shared_ptr<const MappedFile> open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  MappedFile(const std::byte* data, std::size_t size, bool mapped) noexcept
      : data_(data), size_(size), mapped_(mapped) {}

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  // false: heap fallback buffer (non-POSIX)
};

}  // namespace probgraph::io
