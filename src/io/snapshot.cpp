#include "io/snapshot.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "graph/orientation.hpp"
#include "io/mmap_file.hpp"
#include "io/snapshot_format.hpp"
#include "util/hash.hpp"

namespace probgraph::io {

// The on-disk structs and format constants live in snapshot_format.hpp,
// where their layout is pinned byte-by-byte; this file is only the
// reader/writer logic over them.
using namespace snapshot_format;

namespace {

constexpr std::size_t align_up(std::size_t x) {
  return (x + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

// --- File checksum: block-parallel word-wise mixing. ---
//
// Loads must checksum the whole file before serving, so the checksum IS
// the load critical path — a byte-at-a-time FNV would cap loading at under
// a GB/s and erase the mmap win. Version 1 therefore fixes the checksum to:
// hash each 1 MiB block independently (8 bytes per fmix64 step, so the
// blocks parallelize across cores and saturate memory bandwidth), then mix
// the block digests together in order. The hashed stream is the file with
// the header's file_checksum field read as zero, so every header bit is
// covered as well. Any flipped bit changes its block's digest and thus the
// total. Not cryptographic — this guards against truncation and bit rot,
// not adversaries. Version 2 keeps the same checksum (it covers the
// substrate directory and every extra section for free: the hashed stream
// is simply the whole file).

constexpr std::size_t kChecksumBlock = std::size_t{1} << 20;

std::uint64_t hash_block(const std::byte* p, std::size_t n) noexcept {
  // Four independent lanes, 32 bytes per step: a single xor-multiply chain
  // is serially dependent on the multiply latency and caps out near 2 GB/s
  // on one core, while independent lanes pipeline to memory bandwidth.
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;  // the FNV-1a prime
  std::uint64_t lane[4] = {0x9e3779b97f4a7c15ULL ^ n, 0xbf58476d1ce4e5b9ULL,
                           0x94d049bb133111ebULL, 0x2545f4914f6cdd1dULL};
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t w[4];
    std::memcpy(w, p + i, 32);
    lane[0] = (lane[0] ^ w[0]) * kPrime;
    lane[1] = (lane[1] ^ w[1]) * kPrime;
    lane[2] = (lane[2] ^ w[2]) * kPrime;
    lane[3] = (lane[3] ^ w[3]) * kPrime;
  }
  std::uint64_t h = util::murmur3_fmix64(lane[0]) ^ util::murmur3_fmix64(lane[1]) ^
                    util::murmur3_fmix64(lane[2]) ^ util::murmur3_fmix64(lane[3]);
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = util::murmur3_fmix64(h ^ w);
  }
  if (i < n) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + i, n - i);
    h = util::murmur3_fmix64(h ^ w);
  }
  return h;
}

std::uint64_t combine_digests(const std::vector<std::uint64_t>& digests, std::size_t n) {
  std::uint64_t h = 0x27d4eb2f165667c5ULL ^ n;
  for (const std::uint64_t d : digests) h = util::murmur3_fmix64(h ^ d);
  return h;
}

/// Load-side checksum: hash a mapped file whose first sizeof(FileHeader)
/// bytes are replaced by `patched` (the header with file_checksum zeroed).
/// Only block 0 needs staging for the patch; every later block hashes
/// straight from the mapping, in parallel.
std::uint64_t checksum_mapped_file(const FileHeader& patched, const std::byte* base,
                                   std::size_t size) {
  const std::size_t blocks = (size + kChecksumBlock - 1) / kChecksumBlock;
  std::vector<std::uint64_t> digests(blocks);
  {
    const std::size_t len = std::min(kChecksumBlock, size);
    std::vector<std::byte> staged(len);
    std::memcpy(staged.data(), base, len);
    std::memcpy(staged.data(), &patched, sizeof patched);
    digests[0] = hash_block(staged.data(), len);
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t b = 1; b < static_cast<std::int64_t>(blocks); ++b) {
    const std::size_t off = static_cast<std::size_t>(b) * kChecksumBlock;
    digests[static_cast<std::size_t>(b)] =
        hash_block(base + off, std::min(kChecksumBlock, size - off));
  }
  return combine_digests(digests, size);
}

/// Save-side incremental producer of the same checksum over the bytes fed
/// to update(). Full aligned blocks hash straight from the source; only
/// chunks straddling a block boundary go through the 1 MiB staging buffer,
/// so streaming arbitrarily large payloads needs no second copy.
class BlockChecksum {
 public:
  void update(const std::byte* p, std::size_t n) {
    total_ += n;
    while (n > 0) {
      if (fill_ == 0 && n >= kChecksumBlock) {
        digests_.push_back(hash_block(p, kChecksumBlock));
        p += kChecksumBlock;
        n -= kChecksumBlock;
        continue;
      }
      const std::size_t take = std::min(n, kChecksumBlock - fill_);
      std::memcpy(buf_.data() + fill_, p, take);
      fill_ += take;
      p += take;
      n -= take;
      if (fill_ == kChecksumBlock) {
        digests_.push_back(hash_block(buf_.data(), kChecksumBlock));
        fill_ = 0;
      }
    }
  }

  [[nodiscard]] std::uint64_t finish() {
    if (fill_ > 0) digests_.push_back(hash_block(buf_.data(), fill_));
    fill_ = 0;
    return combine_digests(digests_, total_);
  }

 private:
  std::vector<std::byte> buf_ = std::vector<std::byte>(kChecksumBlock);
  std::size_t fill_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> digests_;
};

struct SectionSource {
  std::uint32_t id;
  std::uint32_t elem_bytes;
  const std::byte* data;  // null for the re-packed 1-hash sections
  std::uint64_t bytes;
  const ProbGraph* oh_source = nullptr;  // set for 1-hash sections
};

/// Stream the 1-hash arena re-serialized with its struct padding zeroed
/// (layout: hash u64, element u32, zero pad — so written bytes, and thus
/// checksums and golden fixtures, are deterministic) in bounded chunks,
/// never materializing a packed copy of the whole arena.
template <typename Sink>
void emit_packed_oh(std::span<const BottomKEntry> entries, Sink&& sink) {
  constexpr std::size_t kChunkEntries = 4096;
  // The pad bytes stay zero across chunk reuses: entry writes below touch
  // only the hash and element fields.
  std::vector<std::byte> chunk(
      std::min(kChunkEntries, entries.size()) * sizeof(BottomKEntry), std::byte{0});
  for (std::size_t i = 0; i < entries.size();) {
    const std::size_t take = std::min(kChunkEntries, entries.size() - i);
    std::byte* p = chunk.data();
    for (std::size_t j = 0; j < take; ++j, p += sizeof(BottomKEntry)) {
      const BottomKEntry& e = entries[i + j];
      std::memcpy(p, &e.hash, sizeof e.hash);
      std::memcpy(p + sizeof e.hash, &e.element, sizeof e.element);
    }
    sink(chunk.data(), take * sizeof(BottomKEntry));
    i += take;
  }
}

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw std::runtime_error("snapshot " + path + ": " + why);
}

const char* orient_tag(bool degree_oriented) noexcept {
  return degree_oriented ? "dag" : "sym";
}

}  // namespace

std::string describe_substrates(std::span<const SubstrateInfo> subs) {
  std::string out;
  for (const SubstrateInfo& s : subs) {
    if (!out.empty()) out += ", ";
    out += to_string(s.kind);
    out += '/';
    out += orient_tag(s.degree_oriented);
  }
  return out;
}

const ProbGraph* Snapshot::find_substrate(SketchKind kind,
                                          bool degree_oriented) const noexcept {
  for (const Substrate& s : subs_) {
    if (s.kind == kind && s.degree_oriented == degree_oriented) return s.pg.get();
  }
  return nullptr;
}

const ProbGraph* Snapshot::sole_substrate(bool degree_oriented) const noexcept {
  const ProbGraph* found = nullptr;
  for (const Substrate& s : subs_) {
    if (s.degree_oriented != degree_oriented) continue;
    if (found != nullptr) return nullptr;  // ambiguous
    found = s.pg.get();
  }
  return found;
}

void save_snapshot(const std::string& path, const ProbGraph& pg, SnapshotMeta meta) {
  const SnapshotSubstrate sub{&pg, meta.degree_oriented};
  save_snapshot(path, std::span<const SnapshotSubstrate>(&sub, 1));
}

void save_snapshot(const std::string& path,
                   std::span<const SnapshotSubstrate> substrates) {
  if (substrates.empty()) {
    throw std::invalid_argument("snapshot: at least one substrate is required");
  }
  // One CSR per orientation: every substrate of an orientation must have
  // been built over the same graph instance, and (kind, orientation) must
  // be unique or later directory lookups would be ambiguous.
  const CsrGraph* csr_of[2] = {nullptr, nullptr};
  for (std::size_t i = 0; i < substrates.size(); ++i) {
    const SnapshotSubstrate& s = substrates[i];
    if (s.pg == nullptr) throw std::invalid_argument("snapshot: null substrate");
    const CsrGraph*& slot = csr_of[s.degree_oriented ? 1 : 0];
    if (slot == nullptr) {
      slot = &s.pg->graph();
    } else if (slot != &s.pg->graph()) {
      throw std::invalid_argument(
          "snapshot: substrates of the same orientation must sketch the same graph");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (substrates[j].pg->kind() == s.pg->kind() &&
          substrates[j].degree_oriented == s.degree_oriented) {
        throw std::invalid_argument(
            std::string("snapshot: duplicate substrate ") + to_string(s.pg->kind()) +
            "/" + orient_tag(s.degree_oriented));
      }
    }
  }
  // The DAG must be an orientation of the SAME graph the symmetric
  // substrates sketch: any orientation of G keeps its vertex set and has
  // exactly one arc per undirected edge. Violations would either write a
  // file the loader rejects (different n) or, worse, serve exact counts
  // of an unrelated graph (same n, different edges) — fail at the API
  // boundary instead.
  if (csr_of[0] != nullptr && csr_of[1] != nullptr &&
      (csr_of[0]->num_vertices() != csr_of[1]->num_vertices() ||
       csr_of[0]->num_directed_edges() != 2 * csr_of[1]->num_directed_edges())) {
    throw std::invalid_argument(
        "snapshot: the degree-oriented substrates do not orient the graph the "
        "symmetric substrates sketch (vertex/edge counts disagree)");
  }

  const auto bytes_of = [](const auto& span) {
    return reinterpret_cast<const std::byte*>(span.data());
  };
  std::vector<SectionSource> sections;
  const auto add = [&sections](std::uint32_t id, std::uint32_t elem_bytes,
                               const std::byte* data, std::uint64_t bytes,
                               const ProbGraph* oh = nullptr) {
    sections.push_back({id, elem_bytes, data, bytes, oh});
    return static_cast<std::uint32_t>(sections.size() - 1);
  };
  const auto add_csr = [&](const CsrGraph& g) -> std::array<std::uint32_t, 2> {
    return {add(kSecCsrOffsets, sizeof(EdgeId), bytes_of(g.offsets()),
                g.offsets().size_bytes()),
            add(kSecCsrAdjacency, sizeof(VertexId), bytes_of(g.adjacency()),
                g.adjacency().size_bytes())};
  };
  const auto add_arenas = [&](const ProbGraph& pg) -> std::array<std::uint32_t, 5> {
    return {add(kSecBfArena, sizeof(std::uint64_t), bytes_of(pg.bf_arena()),
                pg.bf_arena().size_bytes()),
            add(kSecKhArena, sizeof(std::uint64_t), bytes_of(pg.kh_arena()),
                pg.kh_arena().size_bytes()),
            add(kSecOhArena, sizeof(BottomKEntry), nullptr, pg.oh_arena().size_bytes(),
                &pg),
            add(kSecKmvArena, sizeof(double), bytes_of(pg.kmv_arena()),
                pg.kmv_arena().size_bytes()),
            add(kSecSketchSizes, sizeof(std::uint32_t), bytes_of(pg.sketch_sizes()),
                pg.sketch_sizes().size_bytes())};
  };
  const auto fill_entry = [](const SnapshotSubstrate& s,
                             const std::array<std::uint32_t, 2>& csr_idx,
                             const std::array<std::uint32_t, 5>& arena_idx) {
    const ProbGraph& pg = *s.pg;
    const ProbGraphConfig& cfg = pg.config();
    SubstrateEntry e;
    std::memset(&e, 0, sizeof e);  // deterministic bytes incl. reserved fields
    e.kind = static_cast<std::uint8_t>(cfg.kind);
    e.bf_estimator = static_cast<std::uint8_t>(cfg.bf_estimator);
    e.degree_oriented = s.degree_oriented ? 1 : 0;
    e.bf_hashes = cfg.bf_hashes;
    e.storage_budget = cfg.storage_budget;
    e.cfg_bf_bits = cfg.bf_bits;
    e.budget_reference_bytes = cfg.budget_reference_bytes;
    e.seed = cfg.seed;
    e.cfg_minhash_k = cfg.minhash_k;
    e.minhash_k = pg.minhash_k();
    e.bf_bits = pg.bf_bits();
    e.bf_words_per_vertex =
        pg.bf_bits() == 0 ? 0 : pg.bf_arena().size() / pg.graph().num_vertices();
    e.construction_seconds = pg.construction_seconds();
    e.sec[0] = csr_idx[0];
    e.sec[1] = csr_idx[1];
    for (std::size_t i = 0; i < arena_idx.size(); ++i) e.sec[2 + i] = arena_idx[i];
    return e;
  };

  // The primary substrate occupies sections 0–6 in the v1 role order; the
  // substrate directory is section 7; the second orientation's CSR (if
  // any) and the extra substrates' arenas follow.
  const SnapshotSubstrate& primary = substrates[0];
  const CsrGraph& g = primary.pg->graph();
  std::array<std::uint32_t, 2> csr_idx[2];
  csr_idx[primary.degree_oriented ? 1 : 0] = add_csr(g);
  std::vector<std::array<std::uint32_t, 5>> arena_idx(substrates.size());
  arena_idx[0] = add_arenas(*primary.pg);
  std::vector<SubstrateEntry> directory(substrates.size());
  const std::uint32_t dir_index =
      add(kSecSubstrateDir, sizeof(SubstrateEntry), nullptr,
          substrates.size() * sizeof(SubstrateEntry));
  const int other = primary.degree_oriented ? 0 : 1;
  if (csr_of[other] != nullptr) csr_idx[other] = add_csr(*csr_of[other]);
  for (std::size_t i = 1; i < substrates.size(); ++i) {
    arena_idx[i] = add_arenas(*substrates[i].pg);
  }
  for (std::size_t i = 0; i < substrates.size(); ++i) {
    directory[i] = fill_entry(substrates[i], csr_idx[substrates[i].degree_oriented ? 1 : 0],
                              arena_idx[i]);
  }
  sections[dir_index].data = reinterpret_cast<const std::byte*>(directory.data());

  // Lay out the payload: every section starts kSectionAlign-aligned and is
  // followed by zero padding up to the next boundary (EOF included, so the
  // checksummed range is exactly [payload_offset, file_bytes)).
  const std::uint32_t section_count = static_cast<std::uint32_t>(sections.size());
  const std::uint64_t payload_offset =
      align_up(sizeof(FileHeader) + section_count * sizeof(SectionEntry));
  std::vector<SectionEntry> table(section_count);
  std::uint64_t cursor = payload_offset;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    table[i] = {sections[i].id, sections[i].elem_bytes, cursor, sections[i].bytes};
    cursor = align_up(cursor + sections[i].bytes);
  }
  const std::uint64_t file_bytes = cursor;

  const ProbGraphConfig& cfg = primary.pg->config();
  FileHeader h;
  std::memset(&h, 0, sizeof h);  // deterministic bytes incl. struct padding
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.version = kSnapshotVersion;
  h.endian_tag = kEndianTag;
  h.file_bytes = file_bytes;
  h.payload_offset = payload_offset;
  h.section_count = section_count;
  h.flags = primary.degree_oriented ? kFlagDegreeOriented : 0;
  h.num_vertices = g.num_vertices();
  h.bf_hashes = cfg.bf_hashes;
  h.num_directed_edges = g.num_directed_edges();
  h.kind = static_cast<std::uint8_t>(cfg.kind);
  h.bf_estimator = static_cast<std::uint8_t>(cfg.bf_estimator);
  h.storage_budget = cfg.storage_budget;
  h.cfg_bf_bits = cfg.bf_bits;
  h.budget_reference_bytes = cfg.budget_reference_bytes;
  h.seed = cfg.seed;
  h.cfg_minhash_k = cfg.minhash_k;
  h.minhash_k = primary.pg->minhash_k();
  h.bf_bits = primary.pg->bf_bits();
  h.bf_words_per_vertex =
      primary.pg->bf_bits() == 0 ? 0 : primary.pg->bf_arena().size() / g.num_vertices();
  h.construction_seconds = primary.pg->construction_seconds();

  // Stream header + table + payload twice — once into the checksum (with
  // h.file_checksum still zero, matching how loads re-hash the file), once
  // into the file — so saving never materializes a second arena-sized
  // buffer. Padding is zeros (deterministic bytes, included in the
  // checksum).
  static constexpr std::byte kZeros[kSectionAlign] = {};
  const auto emit_file = [&](auto&& sink) {
    sink(reinterpret_cast<const std::byte*>(&h), sizeof h);
    sink(reinterpret_cast<const std::byte*>(table.data()),
         table.size() * sizeof(SectionEntry));
    sink(kZeros, payload_offset - sizeof h - table.size() * sizeof(SectionEntry));
    for (std::uint32_t i = 0; i < section_count; ++i) {
      if (sections[i].oh_source != nullptr) {
        emit_packed_oh(sections[i].oh_source->oh_arena(), sink);
      } else if (sections[i].bytes > 0) {  // unused arenas have no data pointer
        sink(sections[i].data, sections[i].bytes);
      }
      const std::uint64_t end = table[i].offset + table[i].bytes;
      sink(kZeros, align_up(end) - end);
    }
  };
  BlockChecksum streamed;
  emit_file([&](const std::byte* p, std::size_t n) { streamed.update(p, n); });
  h.file_checksum = streamed.finish();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(path, "cannot open for writing");
  emit_file([&](const std::byte* p, std::size_t n) {
    out.write(reinterpret_cast<const char*>(p), static_cast<std::streamsize>(n));
  });
  if (!out) fail(path, "write failed");
}

SubstrateSet build_substrates(const CsrGraph& g, std::span<const SketchKind> kinds,
                              bool symmetric, bool degree_oriented,
                              ProbGraphConfig base_config) {
  if (kinds.empty()) throw std::invalid_argument("snapshot: at least one sketch kind");
  if (!symmetric && !degree_oriented) {
    throw std::invalid_argument("snapshot: at least one orientation");
  }
  SubstrateSet set;
  if (degree_oriented) set.dag = std::make_unique<const CsrGraph>(degree_orient(g));
  set.sketches.reserve(kinds.size() * (static_cast<std::size_t>(symmetric) +
                                       static_cast<std::size_t>(degree_oriented)));
  for (const SketchKind kind : kinds) {
    if (symmetric) {
      ProbGraphConfig cfg = base_config;
      cfg.kind = kind;
      set.sketches.emplace_back(g, cfg);
      set.substrates.push_back({&set.sketches.back(), false});
    }
    if (degree_oriented) {
      ProbGraphConfig cfg = base_config;
      cfg.kind = kind;
      cfg.budget_reference_bytes = g.memory_bytes();
      set.sketches.emplace_back(*set.dag, cfg);
      set.substrates.push_back({&set.sketches.back(), true});
    }
  }
  return set;
}

Snapshot load_snapshot(const std::string& path) {
  std::shared_ptr<const MappedFile> file = MappedFile::open(path);
  const std::byte* base = file->data();
  const std::size_t size = file->size();

  if (size < sizeof(FileHeader)) fail(path, "truncated (smaller than the header)");
  FileHeader h;
  std::memcpy(&h, base, sizeof h);
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    fail(path, "bad magic (not a .pgs snapshot)");
  }
  if (h.endian_tag != kEndianTag) fail(path, "endianness mismatch");
  if (h.version != 1 && h.version != kSnapshotVersion) {
    fail(path, "unsupported format version " + std::to_string(h.version) +
                   " (expected 1 or " + std::to_string(kSnapshotVersion) + ")");
  }
  if (h.file_bytes != size) {
    fail(path, "size mismatch: header says " + std::to_string(h.file_bytes) +
                   " bytes, file has " + std::to_string(size) + " (truncated?)");
  }
  if (h.version == 1 ? h.section_count != kPrimarySectionCount
                     : h.section_count < kPrimarySectionCount + 1) {
    fail(path, "unexpected section count");
  }
  const std::uint64_t table_end =
      sizeof(FileHeader) + std::uint64_t{h.section_count} * sizeof(SectionEntry);
  if (table_end > size || h.payload_offset < table_end || h.payload_offset > size ||
      h.payload_offset % kSectionAlign != 0) {
    fail(path, "invalid payload offset");
  }

  FileHeader patched = h;
  patched.file_checksum = 0;
  if (checksum_mapped_file(patched, base, size) != h.file_checksum) {
    fail(path, "checksum mismatch (corrupted file)");
  }

  // Sections: validated offsets, typed zero-copy views resolved by table
  // index with an expected role id.
  std::vector<SectionEntry> table(h.section_count);
  std::memcpy(table.data(), base + sizeof(FileHeader),
              table.size() * sizeof(SectionEntry));
  const auto section = [&](std::uint32_t index, SectionId id,
                           std::uint32_t elem_bytes) -> std::span<const std::byte> {
    if (index >= table.size()) {
      fail(path, "section index " + std::to_string(index) + " out of range");
    }
    const SectionEntry& e = table[index];
    if (e.id != id) {
      fail(path, "section role mismatch at index " + std::to_string(index) +
                     " (id " + std::to_string(e.id) + ", expected " + std::to_string(id) +
                     ")");
    }
    if (e.elem_bytes != elem_bytes) {
      fail(path, "section element size mismatch (id " + std::to_string(id) + ")");
    }
    if (e.offset % kSectionAlign != 0 || e.offset < h.payload_offset || e.offset > size ||
        e.bytes > size - e.offset || e.bytes % elem_bytes != 0) {
      fail(path, "section out of bounds (id " + std::to_string(id) + ")");
    }
    return {base + e.offset, e.bytes};
  };
  const auto typed = [&]<typename T>(std::span<const std::byte> raw,
                                     std::type_identity<T>) -> std::span<const T> {
    return {reinterpret_cast<const T*>(raw.data()), raw.size() / sizeof(T)};
  };

  // The substrate list: synthesized from the header for a v1 file, read
  // from the directory section for v2 (entry 0 must restate the header).
  std::vector<SubstrateEntry> entries;
  if (h.version == 1) {
    SubstrateEntry e;
    std::memset(&e, 0, sizeof e);
    e.kind = h.kind;
    e.bf_estimator = h.bf_estimator;
    e.degree_oriented = (h.flags & kFlagDegreeOriented) != 0 ? 1 : 0;
    e.bf_hashes = h.bf_hashes;
    e.storage_budget = h.storage_budget;
    e.cfg_bf_bits = h.cfg_bf_bits;
    e.budget_reference_bytes = h.budget_reference_bytes;
    e.seed = h.seed;
    e.cfg_minhash_k = h.cfg_minhash_k;
    e.minhash_k = h.minhash_k;
    e.bf_bits = h.bf_bits;
    e.bf_words_per_vertex = h.bf_words_per_vertex;
    e.construction_seconds = h.construction_seconds;
    for (std::uint32_t i = 0; i < kPrimarySectionCount; ++i) e.sec[i] = i;
    entries.push_back(e);
  } else {
    const auto raw =
        section(kPrimarySectionCount, kSecSubstrateDir, sizeof(SubstrateEntry));
    const std::size_t count = raw.size() / sizeof(SubstrateEntry);
    if (count == 0) fail(path, "empty substrate directory");
    entries.resize(count);
    std::memcpy(entries.data(), raw.data(), raw.size());
    bool primary_matches = entries[0].kind == h.kind &&
                           entries[0].bf_estimator == h.bf_estimator &&
                           (entries[0].degree_oriented != 0) ==
                               ((h.flags & kFlagDegreeOriented) != 0);
    for (std::uint32_t i = 0; i < kPrimarySectionCount; ++i) {
      primary_matches = primary_matches && entries[0].sec[i] == i;
    }
    if (!primary_matches) fail(path, "substrate directory disagrees with the header");
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SubstrateEntry& e = entries[i];
    if (e.kind > static_cast<std::uint8_t>(SketchKind::kKmv)) {
      fail(path, "invalid sketch kind " + std::to_string(e.kind));
    }
    if (e.bf_estimator > static_cast<std::uint8_t>(BfEstimator::kOr)) {
      fail(path, "invalid BF estimator " + std::to_string(e.bf_estimator));
    }
    if (e.degree_oriented > 1) fail(path, "invalid substrate orientation");
    for (std::size_t j = 0; j < i; ++j) {
      if (entries[j].kind == e.kind && entries[j].degree_oriented == e.degree_oriented) {
        fail(path, std::string("duplicate substrate ") +
                       to_string(static_cast<SketchKind>(e.kind)) + "/" +
                       orient_tag(e.degree_oriented != 0));
      }
    }
  }

  // Every substrate of one orientation must reference the SAME CSR
  // sections (one graph per orientation, like the writer emits).
  std::array<std::uint32_t, 2> csr_sec[2];
  bool have_csr[2] = {false, false};
  for (const SubstrateEntry& e : entries) {
    const int o = e.degree_oriented != 0 ? 1 : 0;
    if (!have_csr[o]) {
      csr_sec[o] = {e.sec[0], e.sec[1]};
      have_csr[o] = true;
    } else if (csr_sec[o][0] != e.sec[0] || csr_sec[o][1] != e.sec[1]) {
      fail(path, "substrates of one orientation reference different CSR sections");
    }
  }

  Snapshot snap;
  snap.file_ = file;

  // Graph shape checks — cheap O(n + m) guards so a consistent-but-wrong
  // header cannot send algorithm kernels out of an adjacency section. The
  // primary CSR must additionally match the header's shape fields.
  const auto load_csr = [&](const std::array<std::uint32_t, 2>& idx,
                            bool is_primary) -> std::unique_ptr<const CsrGraph> {
    const auto offsets = typed(section(idx[0], kSecCsrOffsets, sizeof(EdgeId)),
                               std::type_identity<EdgeId>{});
    const auto adjacency = typed(section(idx[1], kSecCsrAdjacency, sizeof(VertexId)),
                                 std::type_identity<VertexId>{});
    if (offsets.size() != static_cast<std::size_t>(h.num_vertices) + 1) {
      fail(path, "offset section does not match the vertex count");
    }
    if (is_primary && adjacency.size() != h.num_directed_edges) {
      fail(path, "adjacency section does not match the edge count");
    }
    if (offsets.front() != 0 || offsets.back() != adjacency.size()) {
      fail(path, "CSR offsets do not span the adjacency section");
    }
    for (std::size_t v = 1; v < offsets.size(); ++v) {
      if (offsets[v - 1] > offsets[v]) fail(path, "CSR offsets not monotone");
    }
    if (!adjacency.empty()) {
      // Branch-free max-reduction in four independent accumulators: a
      // single max chain is serially dependent and this scan covers most
      // of the file a second time, so it must run at memory bandwidth like
      // the checksum.
      VertexId m0 = 0, m1 = 0, m2 = 0, m3 = 0;
      std::size_t i = 0;
      for (; i + 4 <= adjacency.size(); i += 4) {
        m0 = std::max(m0, adjacency[i]);
        m1 = std::max(m1, adjacency[i + 1]);
        m2 = std::max(m2, adjacency[i + 2]);
        m3 = std::max(m3, adjacency[i + 3]);
      }
      for (; i < adjacency.size(); ++i) m0 = std::max(m0, adjacency[i]);
      if (std::max(std::max(m0, m1), std::max(m2, m3)) >= h.num_vertices) {
        fail(path, "adjacency entry out of vertex range");
      }
    }
    return std::make_unique<const CsrGraph>(util::ArenaRef<EdgeId>(offsets, file),
                                            util::ArenaRef<VertexId>(adjacency, file));
  };
  const bool primary_oriented = entries[0].degree_oriented != 0;
  if (have_csr[0]) snap.sym_graph_ = load_csr(csr_sec[0], !primary_oriented);
  if (have_csr[1]) snap.dag_graph_ = load_csr(csr_sec[1], primary_oriented);
  // When both orientations are present, the DAG must have exactly one arc
  // per undirected edge of the symmetric graph (any orientation does).
  if (snap.sym_graph_ && snap.dag_graph_ &&
      snap.sym_graph_->num_directed_edges() != 2 * snap.dag_graph_->num_directed_edges()) {
    fail(path, "symmetric and DAG sections disagree on the edge count");
  }

  for (const SubstrateEntry& e : entries) {
    const bool oriented = e.degree_oriented != 0;
    const CsrGraph* g = oriented ? snap.dag_graph_.get() : snap.sym_graph_.get();
    const auto bf = typed(section(e.sec[2], kSecBfArena, sizeof(std::uint64_t)),
                          std::type_identity<std::uint64_t>{});
    const auto kh = typed(section(e.sec[3], kSecKhArena, sizeof(std::uint64_t)),
                          std::type_identity<std::uint64_t>{});
    const auto oh = typed(section(e.sec[4], kSecOhArena, sizeof(BottomKEntry)),
                          std::type_identity<BottomKEntry>{});
    const auto kmv = typed(section(e.sec[5], kSecKmvArena, sizeof(double)),
                           std::type_identity<double>{});
    const auto sizes = typed(section(e.sec[6], kSecSketchSizes, sizeof(std::uint32_t)),
                             std::type_identity<std::uint32_t>{});
    ProbGraphParts parts;
    parts.config.kind = static_cast<SketchKind>(e.kind);
    parts.config.bf_estimator = static_cast<BfEstimator>(e.bf_estimator);
    parts.config.storage_budget = e.storage_budget;
    parts.config.bf_hashes = e.bf_hashes;
    parts.config.bf_bits = e.cfg_bf_bits;
    parts.config.minhash_k = e.cfg_minhash_k;
    parts.config.budget_reference_bytes = e.budget_reference_bytes;
    parts.config.seed = e.seed;
    parts.bf_bits = e.bf_bits;
    parts.bf_words_per_vertex = e.bf_words_per_vertex;
    parts.minhash_k = e.minhash_k;
    parts.bf_arena = util::ArenaRef<std::uint64_t>(bf, file);
    parts.kh_arena = util::ArenaRef<std::uint64_t>(kh, file);
    parts.oh_arena = util::ArenaRef<BottomKEntry>(oh, file);
    parts.kmv_arena = util::ArenaRef<double>(kmv, file);
    parts.sketch_sizes = util::ArenaRef<std::uint32_t>(sizes, file);
    parts.construction_seconds = e.construction_seconds;
    Snapshot::Substrate sub;
    sub.kind = static_cast<SketchKind>(e.kind);
    sub.degree_oriented = oriented;
    sub.graph = g;
    try {
      sub.pg = std::make_unique<const ProbGraph>(ProbGraph::from_parts(*g, std::move(parts)));
    } catch (const std::invalid_argument& ex) {
      fail(path, ex.what());
    }
    snap.subs_.push_back(std::move(sub));
    snap.info_.substrates.push_back({static_cast<SketchKind>(e.kind), oriented,
                                     e.construction_seconds});
  }

  snap.info_.version = h.version;
  snap.info_.degree_oriented = (h.flags & kFlagDegreeOriented) != 0;
  snap.info_.num_vertices = h.num_vertices;
  snap.info_.num_directed_edges = h.num_directed_edges;
  snap.info_.kind = static_cast<SketchKind>(h.kind);
  snap.info_.construction_seconds = h.construction_seconds;
  snap.info_.file_bytes = size;
  return snap;
}

}  // namespace probgraph::io
