#include "io/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "io/mmap_file.hpp"
#include "util/hash.hpp"

namespace probgraph::io {

namespace {

constexpr char kMagic[8] = {'P', 'G', 'S', 'N', 'A', 'P', '0', '1'};
constexpr std::uint32_t kEndianTag = 0x01020304;  // reads back swapped on BE
constexpr std::size_t kSectionAlign = 64;
constexpr std::uint32_t kFlagDegreeOriented = 1u << 0;

/// Payload section ids, in file order.
enum SectionId : std::uint32_t {
  kSecCsrOffsets = 1,
  kSecCsrAdjacency = 2,
  kSecBfArena = 3,
  kSecKhArena = 4,
  kSecOhArena = 5,
  kSecKmvArena = 6,
  kSecSketchSizes = 7,
};
constexpr std::uint32_t kSectionCount = 7;

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::uint64_t file_bytes;
  std::uint64_t payload_offset;
  /// Over the ENTIRE file with this field read as zero — header corruption
  /// (a flipped flags bit, a changed seed) must be rejected, not served.
  std::uint64_t file_checksum;
  std::uint32_t section_count;
  std::uint32_t flags;
  // Graph shape.
  std::uint32_t num_vertices;
  std::uint32_t bf_hashes;
  std::uint64_t num_directed_edges;
  // ProbGraphConfig (field-by-field, never a struct memcpy, so the file
  // layout survives config evolution).
  std::uint8_t kind;
  std::uint8_t bf_estimator;
  std::uint8_t reserved[6];
  double storage_budget;
  std::uint64_t cfg_bf_bits;
  std::uint64_t budget_reference_bytes;
  std::uint64_t seed;
  std::uint32_t cfg_minhash_k;
  // Derived parameters (what the build computed from the budget).
  std::uint32_t minhash_k;
  std::uint64_t bf_bits;
  std::uint64_t bf_words_per_vertex;
  double construction_seconds;
};
static_assert(std::is_trivially_copyable_v<FileHeader>);
static_assert(sizeof(FileHeader) == 136, ".pgs header layout is frozen at version 1");

struct SectionEntry {
  std::uint32_t id;
  std::uint32_t elem_bytes;
  std::uint64_t offset;  // absolute, kSectionAlign-aligned
  std::uint64_t bytes;
};
static_assert(std::is_trivially_copyable_v<SectionEntry>);
static_assert(sizeof(SectionEntry) == 24);

// BottomKEntry has 4 tail-padding bytes; the writer zeroes them (see
// packed_oh_bytes) so files are byte-deterministic, and the reader serves
// the mapped array directly.
static_assert(std::is_trivially_copyable_v<BottomKEntry>);
static_assert(sizeof(BottomKEntry) == 16, ".pgs 1-hash section layout is frozen");

constexpr std::size_t align_up(std::size_t x) {
  return (x + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

// --- File checksum: block-parallel word-wise mixing. ---
//
// Loads must checksum the whole file before serving, so the checksum IS
// the load critical path — a byte-at-a-time FNV would cap loading at under
// a GB/s and erase the mmap win. Version 1 therefore fixes the checksum to:
// hash each 1 MiB block independently (8 bytes per fmix64 step, so the
// blocks parallelize across cores and saturate memory bandwidth), then mix
// the block digests together in order. The hashed stream is the file with
// the header's file_checksum field read as zero, so every header bit is
// covered as well. Any flipped bit changes its block's digest and thus the
// total. Not cryptographic — this guards against truncation and bit rot,
// not adversaries.

constexpr std::size_t kChecksumBlock = std::size_t{1} << 20;

std::uint64_t hash_block(const std::byte* p, std::size_t n) noexcept {
  // Four independent lanes, 32 bytes per step: a single xor-multiply chain
  // is serially dependent on the multiply latency and caps out near 2 GB/s
  // on one core, while independent lanes pipeline to memory bandwidth.
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;  // the FNV-1a prime
  std::uint64_t lane[4] = {0x9e3779b97f4a7c15ULL ^ n, 0xbf58476d1ce4e5b9ULL,
                           0x94d049bb133111ebULL, 0x2545f4914f6cdd1dULL};
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t w[4];
    std::memcpy(w, p + i, 32);
    lane[0] = (lane[0] ^ w[0]) * kPrime;
    lane[1] = (lane[1] ^ w[1]) * kPrime;
    lane[2] = (lane[2] ^ w[2]) * kPrime;
    lane[3] = (lane[3] ^ w[3]) * kPrime;
  }
  std::uint64_t h = util::murmur3_fmix64(lane[0]) ^ util::murmur3_fmix64(lane[1]) ^
                    util::murmur3_fmix64(lane[2]) ^ util::murmur3_fmix64(lane[3]);
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = util::murmur3_fmix64(h ^ w);
  }
  if (i < n) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + i, n - i);
    h = util::murmur3_fmix64(h ^ w);
  }
  return h;
}

std::uint64_t combine_digests(const std::vector<std::uint64_t>& digests, std::size_t n) {
  std::uint64_t h = 0x27d4eb2f165667c5ULL ^ n;
  for (const std::uint64_t d : digests) h = util::murmur3_fmix64(h ^ d);
  return h;
}

/// Load-side checksum: hash a mapped file whose first sizeof(FileHeader)
/// bytes are replaced by `patched` (the header with file_checksum zeroed).
/// Only block 0 needs staging for the patch; every later block hashes
/// straight from the mapping, in parallel.
std::uint64_t checksum_mapped_file(const FileHeader& patched, const std::byte* base,
                                   std::size_t size) {
  const std::size_t blocks = (size + kChecksumBlock - 1) / kChecksumBlock;
  std::vector<std::uint64_t> digests(blocks);
  {
    const std::size_t len = std::min(kChecksumBlock, size);
    std::vector<std::byte> staged(len);
    std::memcpy(staged.data(), base, len);
    std::memcpy(staged.data(), &patched, sizeof patched);
    digests[0] = hash_block(staged.data(), len);
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t b = 1; b < static_cast<std::int64_t>(blocks); ++b) {
    const std::size_t off = static_cast<std::size_t>(b) * kChecksumBlock;
    digests[static_cast<std::size_t>(b)] =
        hash_block(base + off, std::min(kChecksumBlock, size - off));
  }
  return combine_digests(digests, size);
}

/// Save-side incremental producer of the same checksum over the bytes fed
/// to update(). Full aligned blocks hash straight from the source; only
/// chunks straddling a block boundary go through the 1 MiB staging buffer,
/// so streaming arbitrarily large payloads needs no second copy.
class BlockChecksum {
 public:
  void update(const std::byte* p, std::size_t n) {
    total_ += n;
    while (n > 0) {
      if (fill_ == 0 && n >= kChecksumBlock) {
        digests_.push_back(hash_block(p, kChecksumBlock));
        p += kChecksumBlock;
        n -= kChecksumBlock;
        continue;
      }
      const std::size_t take = std::min(n, kChecksumBlock - fill_);
      std::memcpy(buf_.data() + fill_, p, take);
      fill_ += take;
      p += take;
      n -= take;
      if (fill_ == kChecksumBlock) {
        digests_.push_back(hash_block(buf_.data(), kChecksumBlock));
        fill_ = 0;
      }
    }
  }

  [[nodiscard]] std::uint64_t finish() {
    if (fill_ > 0) digests_.push_back(hash_block(buf_.data(), fill_));
    fill_ = 0;
    return combine_digests(digests_, total_);
  }

 private:
  std::vector<std::byte> buf_ = std::vector<std::byte>(kChecksumBlock);
  std::size_t fill_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> digests_;
};

struct SectionDesc {
  std::uint32_t id;
  std::uint32_t elem_bytes;
  const std::byte* data;  // null for the re-packed 1-hash section
  std::uint64_t bytes;
};

/// Stream the 1-hash arena re-serialized with its struct padding zeroed
/// (layout: hash u64, element u32, zero pad — so written bytes, and thus
/// checksums and golden fixtures, are deterministic) in bounded chunks,
/// never materializing a packed copy of the whole arena.
template <typename Sink>
void emit_packed_oh(std::span<const BottomKEntry> entries, Sink&& sink) {
  constexpr std::size_t kChunkEntries = 4096;
  // The pad bytes stay zero across chunk reuses: entry writes below touch
  // only the hash and element fields.
  std::vector<std::byte> chunk(
      std::min(kChunkEntries, entries.size()) * sizeof(BottomKEntry), std::byte{0});
  for (std::size_t i = 0; i < entries.size();) {
    const std::size_t take = std::min(kChunkEntries, entries.size() - i);
    std::byte* p = chunk.data();
    for (std::size_t j = 0; j < take; ++j, p += sizeof(BottomKEntry)) {
      const BottomKEntry& e = entries[i + j];
      std::memcpy(p, &e.hash, sizeof e.hash);
      std::memcpy(p + sizeof e.hash, &e.element, sizeof e.element);
    }
    sink(chunk.data(), take * sizeof(BottomKEntry));
    i += take;
  }
}

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw std::runtime_error("snapshot " + path + ": " + why);
}

}  // namespace

void save_snapshot(const std::string& path, const ProbGraph& pg, SnapshotMeta meta) {
  const CsrGraph& g = pg.graph();
  const ProbGraphConfig& cfg = pg.config();

  const auto bytes_of = [](const auto& span) {
    return std::span<const std::byte>{reinterpret_cast<const std::byte*>(span.data()),
                                      span.size_bytes()};
  };
  const SectionDesc sections[kSectionCount] = {
      {kSecCsrOffsets, sizeof(EdgeId), bytes_of(g.offsets()).data(),
       g.offsets().size_bytes()},
      {kSecCsrAdjacency, sizeof(VertexId), bytes_of(g.adjacency()).data(),
       g.adjacency().size_bytes()},
      {kSecBfArena, sizeof(std::uint64_t), bytes_of(pg.bf_arena()).data(),
       pg.bf_arena().size_bytes()},
      {kSecKhArena, sizeof(std::uint64_t), bytes_of(pg.kh_arena()).data(),
       pg.kh_arena().size_bytes()},
      {kSecOhArena, sizeof(BottomKEntry), nullptr, pg.oh_arena().size_bytes()},
      {kSecKmvArena, sizeof(double), bytes_of(pg.kmv_arena()).data(),
       pg.kmv_arena().size_bytes()},
      {kSecSketchSizes, sizeof(std::uint32_t), bytes_of(pg.sketch_sizes()).data(),
       pg.sketch_sizes().size_bytes()},
  };

  // Lay out the payload: every section starts kSectionAlign-aligned and is
  // followed by zero padding up to the next boundary (EOF included, so the
  // checksummed range is exactly [payload_offset, file_bytes)).
  const std::uint64_t payload_offset =
      align_up(sizeof(FileHeader) + kSectionCount * sizeof(SectionEntry));
  SectionEntry table[kSectionCount];
  std::uint64_t cursor = payload_offset;
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    table[i] = {sections[i].id, sections[i].elem_bytes, cursor, sections[i].bytes};
    cursor = align_up(cursor + sections[i].bytes);
  }
  const std::uint64_t file_bytes = cursor;

  FileHeader h;
  std::memset(&h, 0, sizeof h);  // deterministic bytes incl. struct padding
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.version = kSnapshotVersion;
  h.endian_tag = kEndianTag;
  h.file_bytes = file_bytes;
  h.payload_offset = payload_offset;
  h.section_count = kSectionCount;
  h.flags = meta.degree_oriented ? kFlagDegreeOriented : 0;
  h.num_vertices = g.num_vertices();
  h.bf_hashes = cfg.bf_hashes;
  h.num_directed_edges = g.num_directed_edges();
  h.kind = static_cast<std::uint8_t>(cfg.kind);
  h.bf_estimator = static_cast<std::uint8_t>(cfg.bf_estimator);
  h.storage_budget = cfg.storage_budget;
  h.cfg_bf_bits = cfg.bf_bits;
  h.budget_reference_bytes = cfg.budget_reference_bytes;
  h.seed = cfg.seed;
  h.cfg_minhash_k = cfg.minhash_k;
  h.minhash_k = pg.minhash_k();
  h.bf_bits = pg.bf_bits();
  h.bf_words_per_vertex =
      pg.bf_bits() == 0 ? 0 : pg.bf_arena().size() / g.num_vertices();
  h.construction_seconds = pg.construction_seconds();

  // Stream header + table + payload twice — once into the checksum (with
  // h.file_checksum still zero, matching how loads re-hash the file), once
  // into the file — so saving never materializes a second arena-sized
  // buffer. Padding is zeros (deterministic bytes, included in the
  // checksum).
  static constexpr std::byte kZeros[kSectionAlign] = {};
  const auto emit_file = [&](auto&& sink) {
    sink(reinterpret_cast<const std::byte*>(&h), sizeof h);
    sink(reinterpret_cast<const std::byte*>(table), sizeof table);
    sink(kZeros, payload_offset - sizeof h - sizeof table);
    for (std::uint32_t i = 0; i < kSectionCount; ++i) {
      if (sections[i].id == kSecOhArena) {
        emit_packed_oh(pg.oh_arena(), sink);
      } else if (sections[i].bytes > 0) {  // unused arenas have no data pointer
        sink(sections[i].data, sections[i].bytes);
      }
      const std::uint64_t end = table[i].offset + table[i].bytes;
      sink(kZeros, align_up(end) - end);
    }
  };
  BlockChecksum streamed;
  emit_file([&](const std::byte* p, std::size_t n) { streamed.update(p, n); });
  h.file_checksum = streamed.finish();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(path, "cannot open for writing");
  emit_file([&](const std::byte* p, std::size_t n) {
    out.write(reinterpret_cast<const char*>(p), static_cast<std::streamsize>(n));
  });
  if (!out) fail(path, "write failed");
}

Snapshot load_snapshot(const std::string& path) {
  std::shared_ptr<const MappedFile> file = MappedFile::open(path);
  const std::byte* base = file->data();
  const std::size_t size = file->size();

  if (size < sizeof(FileHeader)) fail(path, "truncated (smaller than the header)");
  FileHeader h;
  std::memcpy(&h, base, sizeof h);
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    fail(path, "bad magic (not a .pgs snapshot)");
  }
  if (h.endian_tag != kEndianTag) fail(path, "endianness mismatch");
  if (h.version != kSnapshotVersion) {
    fail(path, "unsupported format version " + std::to_string(h.version) + " (expected " +
                   std::to_string(kSnapshotVersion) + ")");
  }
  if (h.file_bytes != size) {
    fail(path, "size mismatch: header says " + std::to_string(h.file_bytes) +
                   " bytes, file has " + std::to_string(size) + " (truncated?)");
  }
  if (h.section_count != kSectionCount) fail(path, "unexpected section count");
  const std::uint64_t table_end =
      sizeof(FileHeader) + h.section_count * sizeof(SectionEntry);
  if (h.payload_offset < table_end || h.payload_offset > size ||
      h.payload_offset % kSectionAlign != 0) {
    fail(path, "invalid payload offset");
  }

  FileHeader patched = h;
  patched.file_checksum = 0;
  if (checksum_mapped_file(patched, base, size) != h.file_checksum) {
    fail(path, "checksum mismatch (corrupted file)");
  }

  // Sections: fixed order, validated offsets, typed zero-copy views.
  SectionEntry table[kSectionCount];
  std::memcpy(table, base + sizeof(FileHeader), sizeof table);
  const auto section = [&](std::uint32_t index, SectionId id,
                           std::uint32_t elem_bytes) -> std::span<const std::byte> {
    const SectionEntry& e = table[index];
    if (e.id != id) fail(path, "section table order mismatch");
    if (e.elem_bytes != elem_bytes) {
      fail(path, "section element size mismatch (id " + std::to_string(id) + ")");
    }
    if (e.offset % kSectionAlign != 0 || e.offset < h.payload_offset || e.offset > size ||
        e.bytes > size - e.offset || e.bytes % elem_bytes != 0) {
      fail(path, "section out of bounds (id " + std::to_string(id) + ")");
    }
    return {base + e.offset, e.bytes};
  };
  const auto typed = [&]<typename T>(std::span<const std::byte> raw,
                                     std::type_identity<T>) -> std::span<const T> {
    return {reinterpret_cast<const T*>(raw.data()), raw.size() / sizeof(T)};
  };
  const auto offsets =
      typed(section(0, kSecCsrOffsets, sizeof(EdgeId)), std::type_identity<EdgeId>{});
  const auto adjacency = typed(section(1, kSecCsrAdjacency, sizeof(VertexId)),
                               std::type_identity<VertexId>{});
  const auto bf = typed(section(2, kSecBfArena, sizeof(std::uint64_t)),
                        std::type_identity<std::uint64_t>{});
  const auto kh = typed(section(3, kSecKhArena, sizeof(std::uint64_t)),
                        std::type_identity<std::uint64_t>{});
  const auto oh = typed(section(4, kSecOhArena, sizeof(BottomKEntry)),
                        std::type_identity<BottomKEntry>{});
  const auto kmv =
      typed(section(5, kSecKmvArena, sizeof(double)), std::type_identity<double>{});
  const auto sizes = typed(section(6, kSecSketchSizes, sizeof(std::uint32_t)),
                           std::type_identity<std::uint32_t>{});

  // Graph shape checks — cheap O(n) guards so a consistent-but-wrong header
  // cannot send algorithm kernels out of the adjacency section.
  if (offsets.size() != static_cast<std::size_t>(h.num_vertices) + 1) {
    fail(path, "offset section does not match the vertex count");
  }
  if (adjacency.size() != h.num_directed_edges) {
    fail(path, "adjacency section does not match the edge count");
  }
  if (offsets.front() != 0 || offsets.back() != adjacency.size()) {
    fail(path, "CSR offsets do not span the adjacency section");
  }
  for (std::size_t v = 1; v < offsets.size(); ++v) {
    if (offsets[v - 1] > offsets[v]) fail(path, "CSR offsets not monotone");
  }
  if (!adjacency.empty()) {
    // Branch-free max-reduction in four independent accumulators: a single
    // max chain is serially dependent and this scan covers most of the file
    // a second time, so it must run at memory bandwidth like the checksum.
    VertexId m0 = 0, m1 = 0, m2 = 0, m3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= adjacency.size(); i += 4) {
      m0 = std::max(m0, adjacency[i]);
      m1 = std::max(m1, adjacency[i + 1]);
      m2 = std::max(m2, adjacency[i + 2]);
      m3 = std::max(m3, adjacency[i + 3]);
    }
    for (; i < adjacency.size(); ++i) m0 = std::max(m0, adjacency[i]);
    if (std::max(std::max(m0, m1), std::max(m2, m3)) >= h.num_vertices) {
      fail(path, "adjacency entry out of vertex range");
    }
  }
  if (h.kind > static_cast<std::uint8_t>(SketchKind::kKmv)) {
    fail(path, "invalid sketch kind " + std::to_string(h.kind));
  }
  if (h.bf_estimator > static_cast<std::uint8_t>(BfEstimator::kOr)) {
    fail(path, "invalid BF estimator " + std::to_string(h.bf_estimator));
  }

  Snapshot snap;
  snap.file_ = file;
  snap.graph_ = std::make_unique<const CsrGraph>(
      util::ArenaRef<EdgeId>(offsets, file), util::ArenaRef<VertexId>(adjacency, file));

  ProbGraphParts parts;
  parts.config.kind = static_cast<SketchKind>(h.kind);
  parts.config.bf_estimator = static_cast<BfEstimator>(h.bf_estimator);
  parts.config.storage_budget = h.storage_budget;
  parts.config.bf_hashes = h.bf_hashes;
  parts.config.bf_bits = h.cfg_bf_bits;
  parts.config.minhash_k = h.cfg_minhash_k;
  parts.config.budget_reference_bytes = h.budget_reference_bytes;
  parts.config.seed = h.seed;
  parts.bf_bits = h.bf_bits;
  parts.bf_words_per_vertex = h.bf_words_per_vertex;
  parts.minhash_k = h.minhash_k;
  parts.bf_arena = util::ArenaRef<std::uint64_t>(bf, file);
  parts.kh_arena = util::ArenaRef<std::uint64_t>(kh, file);
  parts.oh_arena = util::ArenaRef<BottomKEntry>(oh, file);
  parts.kmv_arena = util::ArenaRef<double>(kmv, file);
  parts.sketch_sizes = util::ArenaRef<std::uint32_t>(sizes, file);
  parts.construction_seconds = h.construction_seconds;
  try {
    snap.pg_ = std::make_unique<const ProbGraph>(
        ProbGraph::from_parts(*snap.graph_, std::move(parts)));
  } catch (const std::invalid_argument& e) {
    fail(path, e.what());
  }

  snap.info_.version = h.version;
  snap.info_.degree_oriented = (h.flags & kFlagDegreeOriented) != 0;
  snap.info_.num_vertices = h.num_vertices;
  snap.info_.num_directed_edges = h.num_directed_edges;
  snap.info_.kind = static_cast<SketchKind>(h.kind);
  snap.info_.construction_seconds = h.construction_seconds;
  snap.info_.file_bytes = size;
  return snap;
}

}  // namespace probgraph::io
