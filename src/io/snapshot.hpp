// Sketch snapshot persistence: the .pgs format.
//
// ProbGraph's premise is cheap queries over non-trivially-built sketches
// (Table V), yet a fresh process had to re-read the edge list and re-hash
// every neighborhood before answering its first query. A .pgs snapshot
// persists a fully-built ProbGraph — the CSR graph, the configuration, the
// derived parameters, and every sketch arena — in one versioned,
// checksummed binary file whose payload sections are 64-byte aligned, so
// that:
//
//   * save_snapshot writes the file once after an expensive build, and
//   * load_snapshot mmaps it and serves estimates **zero-copy**: the
//     returned CsrGraph and ProbGraph hold ArenaRef views straight into
//     the mapping, no deserialization pass, warm-up limited to page faults.
//
// Format (all integers little-endian, native IEEE-754 doubles):
//
//   [FileHeader]      fixed-size POD: magic "PGSNAP01", version, endianness
//                     tag, total size, file checksum (a block-parallel
//                     word-wise hash over the ENTIRE file with the checksum
//                     field read as zero, padding included, so header
//                     corruption is rejected too — see snapshot.cpp;
//                     verifying it is the load critical path, so it is
//                     built to saturate memory bandwidth), flags, graph
//                     shape, full ProbGraphConfig, derived parameters
//   [SectionEntry×7]  id, element size, absolute offset, byte length —
//                     CSR offsets, CSR adjacency, and the four sketch
//                     arenas + per-vertex fill sizes (unused arenas have
//                     zero length)
//   [payload]         the section bytes, each section 64-byte aligned,
//                     zero padding between sections
//
// Loads reject wrong magic/version/endianness, size mismatches (truncation)
// and checksum mismatches (corruption) with descriptive std::runtime_error.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"

namespace probgraph::io {

/// Current .pgs format version. Bumped on any layout change; loaders refuse
/// other versions outright (no migration shims at this stage).
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Caller-provided provenance recorded in the header.
struct SnapshotMeta {
  /// True when the sketched graph is the degree-oriented DAG (the counting
  /// algorithms' substrate) rather than the symmetric input graph. pgtool
  /// refuses to run a command over a snapshot of the wrong orientation.
  bool degree_oriented = false;
};

/// Header facts surfaced to callers (pgtool prints these; tests pin them).
struct SnapshotInfo {
  std::uint32_t version = 0;
  bool degree_oriented = false;
  VertexId num_vertices = 0;
  EdgeId num_directed_edges = 0;
  SketchKind kind = SketchKind::kBloomFilter;
  double construction_seconds = 0.0;  // of the original sketch build
  std::size_t file_bytes = 0;
};

/// Serialize `pg` (and the graph it was built over) to `path`. Throws
/// std::runtime_error on I/O failure.
void save_snapshot(const std::string& path, const ProbGraph& pg, SnapshotMeta meta = {});

/// A loaded snapshot: owns the mapping plus the graph/ProbGraph views over
/// it. Movable; keep it alive as long as estimates are being served.
class Snapshot {
 public:
  [[nodiscard]] const CsrGraph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const ProbGraph& prob_graph() const noexcept { return *pg_; }
  [[nodiscard]] const SnapshotInfo& info() const noexcept { return info_; }

 private:
  friend Snapshot load_snapshot(const std::string& path);
  Snapshot() = default;

  SnapshotInfo info_{};
  std::shared_ptr<const void> file_;  // the MappedFile keepalive
  // unique_ptr members give the graph a stable address (the ProbGraph holds
  // a pointer to it) while keeping Snapshot movable.
  std::unique_ptr<const CsrGraph> graph_;
  std::unique_ptr<const ProbGraph> pg_;
};

/// Map `path` and validate magic, version, endianness, size, and payload
/// checksum. Throws std::runtime_error naming the failed check.
[[nodiscard]] Snapshot load_snapshot(const std::string& path);

}  // namespace probgraph::io
