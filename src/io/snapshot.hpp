// Sketch snapshot persistence: the .pgs format.
//
// ProbGraph's premise is cheap queries over non-trivially-built sketches
// (Table V), yet a fresh process had to re-read the edge list and re-hash
// every neighborhood before answering its first query. A .pgs snapshot
// persists fully-built ProbGraphs — CSR graph(s), configuration, derived
// parameters, and every sketch arena — in one versioned, checksummed
// binary file whose payload sections are 64-byte aligned, so that:
//
//   * save_snapshot writes the file once after an expensive build, and
//   * load_snapshot mmaps it and serves estimates **zero-copy**: the
//     returned CsrGraphs and ProbGraphs hold ArenaRef views straight into
//     the mapping, no deserialization pass, warm-up limited to page faults.
//
// A version-2 file can pack MULTIPLE sketch substrates — any subset of
// {BF, k-hash, 1-hash, KMV} × {symmetric, degree-oriented DAG} — so one
// served mapping answers counting queries from the DAG sketches and
// neighborhood queries from the symmetric ones (the paper's central §IV–§V
// trade-off, chosen per query instead of per file). The serving-layer
// analogue of sketch-portfolio stores like Apache DataSketches: one stored
// summary family, many query classes.
//
// Format (all integers little-endian, native IEEE-754 doubles):
//
//   [FileHeader]      fixed-size POD: magic "PGSNAP01", version, endianness
//                     tag, total size, file checksum (a block-parallel
//                     word-wise hash over the ENTIRE file with the checksum
//                     field read as zero, padding included, so header
//                     corruption is rejected too — see snapshot.cpp;
//                     verifying it is the load critical path, so it is
//                     built to saturate memory bandwidth), flags, graph
//                     shape, the PRIMARY substrate's full ProbGraphConfig
//                     and derived parameters
//   [SectionEntry×N]  id, element size, absolute offset, byte length
//   [payload]         the section bytes, each section 64-byte aligned,
//                     zero padding between sections
//
// Version 1 (N = 7): CSR offsets, CSR adjacency, the four sketch arenas +
// per-vertex fill sizes (unused arenas have zero length) — exactly one
// substrate, described by the header.
//
// Version 2 (N >= 8): the same 7 sections describe the primary substrate,
// section index 7 is the SUBSTRATE DIRECTORY — an array of SubstrateEntry
// PODs, one per carried substrate (the primary included as entry 0), each
// holding that substrate's config/derived parameters plus the section-table
// indices of its CSR and arena sections. Substrates of one orientation
// share one CSR; the second orientation (if present) adds its own
// offsets/adjacency sections after the directory, followed by each extra
// substrate's arena sections. The v1 read path is a strict subset: a
// version-1 file keeps loading unchanged.
//
// Loads reject wrong magic/version/endianness, size mismatches (truncation)
// and checksum mismatches (corruption) with descriptive std::runtime_error.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"

namespace probgraph::io {

/// Current .pgs format version — what save_snapshot writes. The loader
/// additionally accepts version 1 (single-substrate) files and refuses
/// anything else outright.
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Caller-provided provenance recorded for a substrate.
struct SnapshotMeta {
  /// True when the sketched graph is the degree-oriented DAG (the counting
  /// algorithms' substrate) rather than the symmetric input graph.
  bool degree_oriented = false;
};

/// One sketch substrate to persist: a fully-built ProbGraph plus its
/// orientation. All substrates of the same orientation must have been
/// built over the SAME CsrGraph instance (they share one CSR section).
struct SnapshotSubstrate {
  const ProbGraph* pg = nullptr;
  bool degree_oriented = false;
};

/// One carried substrate as surfaced to callers (banners, stats, errors).
struct SubstrateInfo {
  SketchKind kind = SketchKind::kBloomFilter;
  bool degree_oriented = false;
  double construction_seconds = 0.0;
};

/// Header facts surfaced to callers (pgtool prints these; tests pin them).
/// The scalar fields describe the PRIMARY substrate (entry 0);
/// `substrates` enumerates everything the file carries, primary first.
struct SnapshotInfo {
  std::uint32_t version = 0;
  bool degree_oriented = false;
  VertexId num_vertices = 0;
  EdgeId num_directed_edges = 0;
  SketchKind kind = SketchKind::kBloomFilter;
  double construction_seconds = 0.0;  // of the primary's sketch build
  std::size_t file_bytes = 0;
  std::vector<SubstrateInfo> substrates;
};

/// "BF/sym, BF/dag, KMV/sym" — the human-readable substrate list used by
/// serve banners, `stats`, and routing error messages, so what a file
/// actually serves is always named explicitly.
[[nodiscard]] std::string describe_substrates(std::span<const SubstrateInfo> subs);

/// Serialize one substrate (and the graph it was built over) to `path`.
/// Throws std::runtime_error on I/O failure.
void save_snapshot(const std::string& path, const ProbGraph& pg, SnapshotMeta meta = {});

/// Serialize a multi-substrate snapshot. `substrates[0]` is the primary
/// (the default routing target when a query names no sketch kind). Throws
/// std::invalid_argument on an empty list, a duplicate (kind, orientation)
/// pair, same-orientation substrates built over different graphs, or a
/// DAG graph whose shape cannot be an orientation of the symmetric one,
/// and std::runtime_error on I/O failure.
void save_snapshot(const std::string& path, std::span<const SnapshotSubstrate> substrates);

/// A built substrate portfolio: the sketches `build_substrates` produced
/// plus the SnapshotSubstrate views over them, ready for save_snapshot.
/// Movable (the DAG lives behind a stable heap pointer); the input graph
/// must outlive it.
struct SubstrateSet {
  std::unique_ptr<const CsrGraph> dag;  // null when no DAG substrate was asked for
  std::vector<ProbGraph> sketches;
  std::vector<SnapshotSubstrate> substrates;  // views into `sketches`, primary first
};

/// Build one substrate per requested (kind, orientation) over `g` —
/// kind-major, symmetric before DAG, so `kinds[0]`'s first orientation is
/// the primary. DAG substrates are budget-referenced to g's CSR bytes
/// (the §V-A meaning of "additional memory on top of the CSR of G"),
/// which is the invariant that keeps every substrate bit-identical to the
/// equivalent single-substrate `pgtool build`. `base_config`'s kind field
/// is ignored; its other parameters apply to every substrate.
[[nodiscard]] SubstrateSet build_substrates(const CsrGraph& g,
                                            std::span<const SketchKind> kinds,
                                            bool symmetric, bool degree_oriented,
                                            ProbGraphConfig base_config = {});

/// A loaded snapshot: owns the mapping plus the graph/ProbGraph views over
/// it. Movable; keep it alive as long as estimates are being served.
class Snapshot {
 public:
  /// The primary substrate's graph / sketches (entry 0 — for a v1 file,
  /// the only substrate).
  [[nodiscard]] const CsrGraph& graph() const noexcept { return *subs_.front().graph; }
  [[nodiscard]] const ProbGraph& prob_graph() const noexcept { return *subs_.front().pg; }
  [[nodiscard]] const SnapshotInfo& info() const noexcept { return info_; }

  [[nodiscard]] std::size_t num_substrates() const noexcept { return subs_.size(); }

  /// The substrate of exactly (kind, orientation), or nullptr when the
  /// file does not carry it.
  [[nodiscard]] const ProbGraph* find_substrate(SketchKind kind,
                                                bool degree_oriented) const noexcept;

  /// The file's single substrate of `degree_oriented` orientation, or
  /// nullptr when it carries zero or several — the unambiguous-fallback
  /// rule of the Engine's default routing.
  [[nodiscard]] const ProbGraph* sole_substrate(bool degree_oriented) const noexcept;

  /// The CSR of the given orientation (shared by every substrate of that
  /// orientation), or nullptr when no carried substrate covers it.
  [[nodiscard]] const CsrGraph* graph_for(bool degree_oriented) const noexcept {
    return degree_oriented ? dag_graph_.get() : sym_graph_.get();
  }

 private:
  friend Snapshot load_snapshot(const std::string& path);
  Snapshot() = default;

  struct Substrate {
    SketchKind kind = SketchKind::kBloomFilter;
    bool degree_oriented = false;
    const CsrGraph* graph = nullptr;  // sym_graph_ or dag_graph_
    // unique_ptr members give each ProbGraph a stable address while
    // keeping Snapshot movable.
    std::unique_ptr<const ProbGraph> pg;
  };

  SnapshotInfo info_{};
  std::shared_ptr<const void> file_;  // the MappedFile keepalive
  // At most one CSR per orientation; unique_ptr for address stability (the
  // ProbGraphs hold pointers to them).
  std::unique_ptr<const CsrGraph> sym_graph_;
  std::unique_ptr<const CsrGraph> dag_graph_;
  std::vector<Substrate> subs_;  // primary first
};

/// Map `path` and validate magic, version, endianness, size, and payload
/// checksum. Throws std::runtime_error naming the failed check.
[[nodiscard]] Snapshot load_snapshot(const std::string& path);

}  // namespace probgraph::io
