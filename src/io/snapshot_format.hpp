// The frozen .pgs on-disk layout, version 1 and 2.
//
// Every struct here is written to and read from disk by memcpy/mmap, so
// its layout IS the file format: field order, widths, padding, and the
// struct sizes are frozen since the version that introduced them. The
// static_asserts below pin every byte — sizeof, every offsetof, and
// trivial copyability — so an accidental edit (a reordered field, a
// changed width, a compiler-visible #pragma pack leaking in) is a build
// break on every compiler, not a silently incompatible file. The same
// numbers live in tools/lint/layout_manifest.json, which
// tools/lint/check_layout.py checks against this header so the manifest,
// the header, and the asserts can never drift apart unnoticed.
//
// The reader/writer logic stays in io/snapshot.cpp; this header holds
// only the layout and the format constants shared with the lint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "core/minhash.hpp"

namespace probgraph::io::snapshot_format {

inline constexpr char kMagic[8] = {'P', 'G', 'S', 'N', 'A', 'P', '0', '1'};
inline constexpr std::uint32_t kEndianTag = 0x01020304;  // reads back swapped on BE
inline constexpr std::size_t kSectionAlign = 64;
inline constexpr std::uint32_t kFlagDegreeOriented = 1u << 0;

/// Payload section ids. Indices 0–6 of the section table always describe
/// the PRIMARY substrate in this fixed role order (the whole v1 format);
/// a v2 file adds the substrate directory at index 7 and repeats the CSR/
/// arena ids for the extra substrates' sections, which are referenced by
/// table index from the directory rather than by position.
enum SectionId : std::uint32_t {
  kSecCsrOffsets = 1,
  kSecCsrAdjacency = 2,
  kSecBfArena = 3,
  kSecKhArena = 4,
  kSecOhArena = 5,
  kSecKmvArena = 6,
  kSecSketchSizes = 7,
  kSecSubstrateDir = 8,
};
/// The v1 section count; also the count of primary sections in a v2 file.
inline constexpr std::uint32_t kPrimarySectionCount = 7;

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::uint64_t file_bytes;
  std::uint64_t payload_offset;
  /// Over the ENTIRE file with this field read as zero — header corruption
  /// (a flipped flags bit, a changed seed) must be rejected, not served.
  std::uint64_t file_checksum;
  std::uint32_t section_count;
  std::uint32_t flags;
  // Graph shape (of the primary substrate's CSR).
  std::uint32_t num_vertices;
  std::uint32_t bf_hashes;
  std::uint64_t num_directed_edges;
  // The primary substrate's ProbGraphConfig (field-by-field, never a
  // struct memcpy, so the file layout survives config evolution).
  std::uint8_t kind;
  std::uint8_t bf_estimator;
  std::uint8_t reserved[6];
  double storage_budget;
  std::uint64_t cfg_bf_bits;
  std::uint64_t budget_reference_bytes;
  std::uint64_t seed;
  std::uint32_t cfg_minhash_k;
  // Derived parameters (what the build computed from the budget).
  std::uint32_t minhash_k;
  std::uint64_t bf_bits;
  std::uint64_t bf_words_per_vertex;
  double construction_seconds;
#if defined(PROBGRAPH_LAYOUT_DRIFT_CANARY)
  // Never in a real build: the negative-compile layout test defines the
  // canary macro and proves the pins below turn drift into a build break.
  std::uint32_t drift_canary;
#endif
};
static_assert(std::is_trivially_copyable_v<FileHeader>);
static_assert(std::is_standard_layout_v<FileHeader>);
static_assert(sizeof(FileHeader) == 136, ".pgs header layout is frozen since version 1");
static_assert(offsetof(FileHeader, magic) == 0);
static_assert(offsetof(FileHeader, version) == 8);
static_assert(offsetof(FileHeader, endian_tag) == 12);
static_assert(offsetof(FileHeader, file_bytes) == 16);
static_assert(offsetof(FileHeader, payload_offset) == 24);
static_assert(offsetof(FileHeader, file_checksum) == 32);
static_assert(offsetof(FileHeader, section_count) == 40);
static_assert(offsetof(FileHeader, flags) == 44);
static_assert(offsetof(FileHeader, num_vertices) == 48);
static_assert(offsetof(FileHeader, bf_hashes) == 52);
static_assert(offsetof(FileHeader, num_directed_edges) == 56);
static_assert(offsetof(FileHeader, kind) == 64);
static_assert(offsetof(FileHeader, bf_estimator) == 65);
static_assert(offsetof(FileHeader, reserved) == 66);
static_assert(offsetof(FileHeader, storage_budget) == 72);
static_assert(offsetof(FileHeader, cfg_bf_bits) == 80);
static_assert(offsetof(FileHeader, budget_reference_bytes) == 88);
static_assert(offsetof(FileHeader, seed) == 96);
static_assert(offsetof(FileHeader, cfg_minhash_k) == 104);
static_assert(offsetof(FileHeader, minhash_k) == 108);
static_assert(offsetof(FileHeader, bf_bits) == 112);
static_assert(offsetof(FileHeader, bf_words_per_vertex) == 120);
static_assert(offsetof(FileHeader, construction_seconds) == 128);

struct SectionEntry {
  std::uint32_t id;
  std::uint32_t elem_bytes;
  std::uint64_t offset;  // absolute, kSectionAlign-aligned
  std::uint64_t bytes;
};
static_assert(std::is_trivially_copyable_v<SectionEntry>);
static_assert(std::is_standard_layout_v<SectionEntry>);
static_assert(sizeof(SectionEntry) == 24, ".pgs section table layout is frozen");
static_assert(offsetof(SectionEntry, id) == 0);
static_assert(offsetof(SectionEntry, elem_bytes) == 4);
static_assert(offsetof(SectionEntry, offset) == 8);
static_assert(offsetof(SectionEntry, bytes) == 16);

/// One row of the v2 substrate directory: a substrate's full config and
/// derived parameters plus the section-table indices of its sections.
/// Entry 0 is the primary and must agree with the FileHeader (its sections
/// are table indices 0–6, the v1 layout).
struct SubstrateEntry {
  std::uint8_t kind;
  std::uint8_t bf_estimator;
  std::uint8_t degree_oriented;
  std::uint8_t reserved0;
  std::uint32_t bf_hashes;
  double storage_budget;
  std::uint64_t cfg_bf_bits;
  std::uint64_t budget_reference_bytes;
  std::uint64_t seed;
  std::uint32_t cfg_minhash_k;
  std::uint32_t minhash_k;
  std::uint64_t bf_bits;
  std::uint64_t bf_words_per_vertex;
  double construction_seconds;
  /// Section-table indices in the fixed role order: CSR offsets, CSR
  /// adjacency, BF arena, k-hash arena, 1-hash arena, KMV arena, sketch
  /// sizes. Substrates of one orientation share the CSR indices.
  std::uint32_t sec[7];
  std::uint32_t reserved1;
};
static_assert(std::is_trivially_copyable_v<SubstrateEntry>);
static_assert(std::is_standard_layout_v<SubstrateEntry>);
static_assert(sizeof(SubstrateEntry) == 104, ".pgs substrate directory layout is frozen");
static_assert(offsetof(SubstrateEntry, kind) == 0);
static_assert(offsetof(SubstrateEntry, bf_estimator) == 1);
static_assert(offsetof(SubstrateEntry, degree_oriented) == 2);
static_assert(offsetof(SubstrateEntry, reserved0) == 3);
static_assert(offsetof(SubstrateEntry, bf_hashes) == 4);
static_assert(offsetof(SubstrateEntry, storage_budget) == 8);
static_assert(offsetof(SubstrateEntry, cfg_bf_bits) == 16);
static_assert(offsetof(SubstrateEntry, budget_reference_bytes) == 24);
static_assert(offsetof(SubstrateEntry, seed) == 32);
static_assert(offsetof(SubstrateEntry, cfg_minhash_k) == 40);
static_assert(offsetof(SubstrateEntry, minhash_k) == 44);
static_assert(offsetof(SubstrateEntry, bf_bits) == 48);
static_assert(offsetof(SubstrateEntry, bf_words_per_vertex) == 56);
static_assert(offsetof(SubstrateEntry, construction_seconds) == 64);
static_assert(offsetof(SubstrateEntry, sec) == 72);
static_assert(offsetof(SubstrateEntry, reserved1) == 100);

// The 1-hash (bottom-k) arena stores core::BottomKEntry verbatim: it is an
// on-disk type even though it lives with the sketches. It has 4 tail-
// padding bytes; the writer zeroes them (see packed_oh_bytes in
// io/snapshot.cpp) so files are byte-deterministic, and the reader serves
// the mapped array directly.
static_assert(std::is_trivially_copyable_v<BottomKEntry>);
static_assert(std::is_standard_layout_v<BottomKEntry>);
static_assert(sizeof(BottomKEntry) == 16, ".pgs 1-hash section layout is frozen");
static_assert(offsetof(BottomKEntry, hash) == 0);
static_assert(offsetof(BottomKEntry, element) == 8);

}  // namespace probgraph::io::snapshot_format
