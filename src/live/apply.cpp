#include "live/apply.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "core/incremental.hpp"
#include "graph/builder.hpp"
#include "graph/orientation.hpp"
#include "util/timer.hpp"

namespace probgraph::live {

namespace {

/// The canonical undirected edge set of a symmetric CSR: (u, v) with
/// u < v, lexicographically sorted (free, since neighborhoods are sorted
/// and vertices are walked ascending).
std::vector<Edge> edge_set_of(const CsrGraph& g) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (v > u) edges.emplace_back(u, v);
    }
  }
  return edges;
}

/// A DAG-only snapshot carries no symmetric CSR, but the DAG's arcs ARE
/// the edge set (degree orientation keeps exactly one arc per edge), so
/// the symmetric graph is recoverable.
std::vector<Edge> edge_set_of_dag(const CsrGraph& dag) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(dag.num_directed_edges()));
  for (VertexId u = 0; u < dag.num_vertices(); ++u) {
    for (const VertexId v : dag.neighbors(u)) {
      edges.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Normalize a batch edge list to canonical form: (min, max) endpoints,
/// self-loops dropped, duplicates collapsed, sorted.
std::vector<Edge> normalize(const std::vector<Edge>& raw) {
  std::vector<Edge> edges;
  edges.reserve(raw.size());
  for (const auto& [a, b] : raw) {
    if (a == b) continue;
    edges.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

/// Patch one substrate from its old image to the new graph, or fall back
/// to a cold rebuild when the derived parameters shifted.
ProbGraph update_substrate(const ProbGraph& old_pg, const CsrGraph& new_g,
                           ProbGraphConfig cfg, ApplyStats& stats) {
  util::Timer timer;
  const DerivedSketchParams want =
      derive_sketch_params(cfg, new_g.num_vertices(), new_g.memory_bytes());
  if (want != sketch_params_of(old_pg)) {
    ++stats.substrates_rebuilt;
    return ProbGraph(new_g, cfg);
  }

  const CsrGraph& old_g = old_pg.graph();
  const VertexId old_n = old_g.num_vertices();
  const VertexId new_n = new_g.num_vertices();
  SketchUpdater up(old_pg, new_n);
  std::vector<VertexId> added;
  for (VertexId v = 0; v < new_n; ++v) {
    const std::span<const VertexId> old_nb =
        v < old_n ? old_g.neighbors(v) : std::span<const VertexId>{};
    const std::span<const VertexId> new_nb = new_g.neighbors(v);
    if (old_nb.size() == new_nb.size() &&
        std::equal(old_nb.begin(), old_nb.end(), new_nb.begin())) {
      continue;
    }
    if (std::includes(new_nb.begin(), new_nb.end(), old_nb.begin(), old_nb.end())) {
      added.clear();
      std::set_difference(new_nb.begin(), new_nb.end(), old_nb.begin(), old_nb.end(),
                          std::back_inserter(added));
      for (const VertexId x : added) up.apply_insert(v, x);
      ++stats.vertices_patched;
    } else {
      up.rebuild_vertex(v, new_nb);
      ++stats.vertices_rebuilt;
    }
  }
  return std::move(up).seal(new_g, cfg, timer.seconds());
}

}  // namespace

UpdatedSnapshot apply_batch(const io::Snapshot& snap, const DeltaBatch& batch) {
  util::Timer timer;

  // --- The updated edge set: (old ∪ inserts) ∖ deletes, canonical form. ---
  const CsrGraph* old_sym = snap.graph_for(/*degree_oriented=*/false);
  const CsrGraph* old_dag = snap.graph_for(/*degree_oriented=*/true);
  const std::vector<Edge> old_edges =
      old_sym != nullptr ? edge_set_of(*old_sym) : edge_set_of_dag(*old_dag);
  const VertexId old_n =
      old_sym != nullptr ? old_sym->num_vertices() : old_dag->num_vertices();

  const std::vector<Edge> inserts = normalize(batch.inserts);
  const std::vector<Edge> deletes = normalize(batch.deletes);

  std::vector<Edge> with_inserts;
  with_inserts.reserve(old_edges.size() + inserts.size());
  std::set_union(old_edges.begin(), old_edges.end(), inserts.begin(), inserts.end(),
                 std::back_inserter(with_inserts));
  std::vector<Edge> new_edges;
  new_edges.reserve(with_inserts.size());
  std::set_difference(with_inserts.begin(), with_inserts.end(), deletes.begin(),
                      deletes.end(), std::back_inserter(new_edges));

  UpdatedSnapshot out;
  // Exact applied counts: symmetric differences against the old set.
  {
    std::vector<Edge> gained;
    std::set_difference(new_edges.begin(), new_edges.end(), old_edges.begin(),
                        old_edges.end(), std::back_inserter(gained));
    std::vector<Edge> lost;
    std::set_difference(old_edges.begin(), old_edges.end(), new_edges.begin(),
                        new_edges.end(), std::back_inserter(lost));
    out.stats.inserts_applied = gained.size();
    out.stats.deletes_applied = lost.size();
  }

  // Vertices never disappear (sketch slots for isolated vertices stay
  // empty); the count can only grow, via inserted endpoints.
  VertexId new_n = old_n;
  for (const auto& [u, v] : inserts) {
    new_n = std::max<VertexId>(new_n, std::max(u, v) + 1);
  }
  if (new_n == 0) throw std::invalid_argument("apply_batch: empty graph");

  // --- New graphs. ---
  out.sym = std::make_unique<const CsrGraph>(
      GraphBuilder::from_edges(std::move(new_edges), new_n));
  if (old_dag != nullptr) {
    out.dag = std::make_unique<const CsrGraph>(degree_orient(*out.sym));
  }
  out.stats.num_vertices = out.sym->num_vertices();
  out.stats.num_edges = out.sym->num_edges();

  // --- New substrates, in the source file's order (primary first). ---
  const auto& infos = snap.info().substrates;
  out.sketches.reserve(infos.size());  // ProbGraphs hold graph pointers; no reallocation
  for (const auto& info : infos) {
    const ProbGraph* old_pg = snap.find_substrate(info.kind, info.degree_oriented);
    const CsrGraph& new_g = info.degree_oriented ? *out.dag : *out.sym;
    ProbGraphConfig cfg = old_pg->config();
    if (info.degree_oriented) {
      // The DAG budget references the SYMMETRIC CSR bytes (§V-A), exactly
      // as build_substrates sets it on a cold build of the updated graph.
      cfg.budget_reference_bytes = out.sym->memory_bytes();
    }
    out.sketches.push_back(update_substrate(*old_pg, new_g, cfg, out.stats));
  }
  for (std::size_t i = 0; i < infos.size(); ++i) {
    out.substrates.push_back({&out.sketches[i], infos[i].degree_oriented});
  }

  out.stats.seconds = timer.seconds();
  return out;
}

}  // namespace probgraph::live
