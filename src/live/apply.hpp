// Applying a delta batch to a loaded snapshot: the shadow copy-on-write
// substrate rebuild behind every reseal.
//
// apply_batch takes the snapshot a server is currently serving plus one
// DeltaBatch and produces a complete NEW substrate portfolio over the
// updated edge set — same substrate list (kinds × orientations, primary
// first), new graphs, new sketches — ready for io::save_snapshot. The
// source snapshot is never mutated: readers keep serving it until the
// epoch swap (src/engine/generation.hpp) retires it.
//
// Identity guarantee (the acceptance bar, pinned by tests/test_live.cpp):
// every produced substrate is BIT-IDENTICAL — arenas, derived parameters,
// stored config — to what a cold `pgtool build` of the updated edge list
// would produce. Two paths get there:
//
//   * incremental patch: when the budget-derived parameters (BF width, k)
//     are unchanged by the update, each vertex whose neighborhood grew
//     monotonically gets per-neighbor apply_insert folds, and each vertex
//     whose neighborhood shrank or churned is re-folded from its new
//     adjacency (core/incremental.hpp proves both replicate a cold build);
//   * cold fallback: when the parameters shift (the budget tracks CSR
//     bytes, which the update changed enough to move a rounding boundary),
//     the substrate is rebuilt from scratch — still cold-identical, by
//     construction.
//
// Degree orientation note: an edge insert changes two degrees, which can
// flip DAG arcs at vertices far from the inserted edge (the (degree, id)
// order is global). The patcher therefore diffs EVERY vertex's old vs new
// adjacency per orientation rather than trusting the batch's endpoint
// list.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/prob_graph.hpp"
#include "graph/csr_graph.hpp"
#include "io/snapshot.hpp"
#include "live/delta.hpp"

namespace probgraph::live {

/// What one apply did — surfaced in `update seal` replies, obs counters,
/// and bench tables.
struct ApplyStats {
  std::uint64_t inserts_applied = 0;   ///< edges present after, absent before
  std::uint64_t deletes_applied = 0;   ///< edges present before, absent after
  std::uint64_t vertices_patched = 0;  ///< per-neighbor apply_insert folds
  std::uint64_t vertices_rebuilt = 0;  ///< reset + full re-fold
  std::uint64_t substrates_rebuilt = 0;  ///< cold fallbacks (parameter shift)
  double seconds = 0.0;
  VertexId num_vertices = 0;  ///< of the updated graph
  EdgeId num_edges = 0;       ///< undirected edges of the updated graph
};

/// The output portfolio: graphs behind stable pointers, sketches in the
/// source file's substrate order, SnapshotSubstrate views ready for
/// io::save_snapshot. Movable; self-contained (sketches point at the owned
/// graphs).
struct UpdatedSnapshot {
  std::unique_ptr<const CsrGraph> sym;  ///< always built (reconstructed from DAG arcs for DAG-only files)
  std::unique_ptr<const CsrGraph> dag;  ///< null when the file carries no DAG substrate
  std::vector<ProbGraph> sketches;
  std::vector<io::SnapshotSubstrate> substrates;
  ApplyStats stats;
};

/// Apply one batch to `snap`'s edge set and rebuild its substrate
/// portfolio per the identity guarantee above. Normalization: endpoints
/// are unordered, self-loops dropped, duplicates collapsed, and a delete
/// of an edge inserted in the SAME batch wins (the edge ends up absent).
/// Inserts may name vertices past the current count (the graph grows);
/// deletes of absent edges are no-ops. Throws std::invalid_argument only
/// for an update that would leave the graph empty of vertices.
[[nodiscard]] UpdatedSnapshot apply_batch(const io::Snapshot& snap, const DeltaBatch& batch);

}  // namespace probgraph::live
