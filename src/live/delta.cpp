#include "live/delta.hpp"

#include <cstring>
#include <stdexcept>

#include "live/delta_format.hpp"
#include "util/hash.hpp"

namespace probgraph::live {

// The on-disk structs and format constants live in delta_format.hpp,
// where their layout is pinned byte-by-byte; this file is only the
// reader/writer logic over them.
using namespace delta_format;

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t x) noexcept {
  return util::murmur3_fmix64(h ^ (x + 0x9e3779b97f4a7c15ULL));
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("delta log: " + what);
}

}  // namespace

std::uint64_t delta_batch_checksum(const DeltaBatch& batch) noexcept {
  std::uint64_t h = 0x50474445'4c544131ULL;  // "PGDELTA1" as a seed
  h = mix(h, batch.inserts.size());
  h = mix(h, batch.deletes.size());
  for (const auto& [u, v] : batch.inserts) h = mix(h, (std::uint64_t{u} << 32) | v);
  for (const auto& [u, v] : batch.deletes) h = mix(h, (std::uint64_t{u} << 32) | v);
  return h;
}

DeltaLogWriter::DeltaLogWriter(std::string path) : path_(std::move(path)) {
  bool need_header = true;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      FileHeader hdr{};
      if (in.read(reinterpret_cast<char*>(&hdr), sizeof hdr)) {
        if (std::memcmp(hdr.magic, kMagic, sizeof kMagic) != 0) {
          fail("'" + path_ + "' exists but is not a .pgd delta log");
        }
        if (hdr.version != kVersion) {
          fail("'" + path_ + "' has unsupported version " + std::to_string(hdr.version));
        }
        need_header = false;
      } else if (in.gcount() != 0) {
        fail("'" + path_ + "' is truncated mid-header");
      }
    }
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) fail("cannot open '" + path_ + "' for append");
  if (need_header) {
    FileHeader hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof kMagic);
    hdr.version = kVersion;
    hdr.reserved = 0;
    out_.write(reinterpret_cast<const char*>(&hdr), sizeof hdr);
    out_.flush();
    if (!out_) fail("write failed on '" + path_ + "'");
  }
}

void DeltaLogWriter::append(const DeltaBatch& batch) {
  if (batch.empty()) return;
  BatchHeader hdr{};
  hdr.checksum = delta_batch_checksum(batch);
  hdr.num_inserts = static_cast<std::uint32_t>(batch.inserts.size());
  hdr.num_deletes = static_cast<std::uint32_t>(batch.deletes.size());
  // One contiguous buffer per record: a crash mid-append leaves at most
  // one trailing record whose checksum cannot pass.
  std::vector<std::uint32_t> payload;
  payload.reserve(2 * (batch.inserts.size() + batch.deletes.size()));
  for (const auto& [u, v] : batch.inserts) {
    payload.push_back(u);
    payload.push_back(v);
  }
  for (const auto& [u, v] : batch.deletes) {
    payload.push_back(u);
    payload.push_back(v);
  }
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof hdr);
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size() * sizeof(std::uint32_t)));
  out_.flush();
  if (!out_) fail("write failed on '" + path_ + "'");
}

std::vector<DeltaBatch> read_delta_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open '" + path + "'");
  FileHeader hdr{};
  if (!in.read(reinterpret_cast<char*>(&hdr), sizeof hdr)) {
    fail("'" + path + "' is too short to hold a header");
  }
  if (std::memcmp(hdr.magic, kMagic, sizeof kMagic) != 0) {
    fail("'" + path + "' has wrong magic (not a .pgd delta log)");
  }
  if (hdr.version != kVersion) {
    fail("'" + path + "' has unsupported version " + std::to_string(hdr.version));
  }

  std::vector<DeltaBatch> batches;
  for (std::size_t index = 0;; ++index) {
    BatchHeader bh{};
    in.read(reinterpret_cast<char*>(&bh), sizeof bh);
    if (in.gcount() == 0 && in.eof()) break;
    if (!in) fail("batch " + std::to_string(index) + " of '" + path + "' is truncated");

    DeltaBatch batch;
    batch.inserts.resize(bh.num_inserts);
    batch.deletes.resize(bh.num_deletes);
    const auto read_pairs = [&](std::vector<Edge>& edges) {
      for (auto& [u, v] : edges) {
        std::uint32_t pair[2];
        in.read(reinterpret_cast<char*>(pair), sizeof pair);
        if (!in) {
          fail("batch " + std::to_string(index) + " of '" + path + "' is truncated");
        }
        u = pair[0];
        v = pair[1];
      }
    };
    read_pairs(batch.inserts);
    read_pairs(batch.deletes);
    if (delta_batch_checksum(batch) != bh.checksum) {
      fail("batch " + std::to_string(index) + " of '" + path + "' fails its checksum");
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace probgraph::live
