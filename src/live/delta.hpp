// The delta log: an append-only, checksummed record of edge changes.
//
// A live server tracks a changing graph as a sequence of BATCHES — each a
// set of edge inserts plus a set of tombstoned deletions — applied
// atomically at a reseal (src/live/apply.hpp): queries see whole
// generations, never a partial batch. The delta log is the durable form of
// that sequence: `pgtool update --delta-log` appends every applied batch,
// and replaying the log over the base snapshot's edge list reproduces the
// current generation exactly.
//
// Format (.pgd, all integers native little-endian like .pgs):
//
//   [FileHeader]   magic "PGDELTA1", version, reserved
//   [BatchRecord]* each: { checksum, num_inserts, num_deletes } followed by
//                  num_inserts then num_deletes (u, v) pairs of u32
//                  endpoints. The checksum is an fmix64 chain over the
//                  counts and every endpoint, so truncated or corrupted
//                  batches are rejected at read time.
//
// Batches are appended with a single write per batch; a reader never sees
// a half batch pass its checksum, so a crashed writer leaves at worst one
// rejectable trailing record.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "util/types.hpp"

namespace probgraph::live {

/// One atomic unit of graph change. Endpoints are unordered (the graph is
/// undirected); self-loops and duplicates are tolerated and normalized
/// away at apply time. A delete wins over an insert of the same edge in
/// the same batch.
struct DeltaBatch {
  std::vector<Edge> inserts;
  std::vector<Edge> deletes;

  [[nodiscard]] bool empty() const noexcept { return inserts.empty() && deletes.empty(); }
};

/// The checksum a batch record carries: an fmix64 chain over the two
/// counts and every endpoint in record order.
[[nodiscard]] std::uint64_t delta_batch_checksum(const DeltaBatch& batch) noexcept;

/// Appends batches to a .pgd file. Creates the file (writing the header)
/// when missing or empty; otherwise validates the existing header and
/// appends after the last record. Throws std::runtime_error on I/O failure
/// or a foreign/corrupt header.
class DeltaLogWriter {
 public:
  explicit DeltaLogWriter(std::string path);

  /// Append one batch (no-op for an empty one). The record is written and
  /// flushed in one piece. Throws std::runtime_error on I/O failure.
  void append(const DeltaBatch& batch);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

/// Read every batch of a .pgd file, validating magic, version, record
/// shape, and per-batch checksums. Throws std::runtime_error naming the
/// failed check (including a batch index for corrupt records).
[[nodiscard]] std::vector<DeltaBatch> read_delta_log(const std::string& path);

}  // namespace probgraph::live
