// The frozen .pgd delta-log on-disk layout, version 1.
//
// A .pgd file is one FileHeader followed by zero or more records, each a
// BatchHeader and then num_inserts + num_deletes little-endian
// (u32 src, u32 dst) pairs — inserts first. Both structs are written and
// read by memcpy, so their layout IS the format; the asserts pin every
// byte the same way io/snapshot_format.hpp pins the .pgs layout, and
// tools/lint/check_layout.py cross-checks the numbers against
// tools/lint/layout_manifest.json.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace probgraph::live::delta_format {

inline constexpr char kMagic[8] = {'P', 'G', 'D', 'E', 'L', 'T', 'A', '1'};
inline constexpr std::uint32_t kVersion = 1;

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
};
static_assert(std::is_trivially_copyable_v<FileHeader>);
static_assert(std::is_standard_layout_v<FileHeader>);
static_assert(sizeof(FileHeader) == 16, ".pgd header layout is frozen since version 1");
static_assert(offsetof(FileHeader, magic) == 0);
static_assert(offsetof(FileHeader, version) == 8);
static_assert(offsetof(FileHeader, reserved) == 12);

struct BatchHeader {
  /// live::delta_batch_checksum over the decoded batch; a crash mid-append
  /// leaves at most one trailing record whose checksum cannot pass.
  std::uint64_t checksum;
  std::uint32_t num_inserts;
  std::uint32_t num_deletes;
};
static_assert(std::is_trivially_copyable_v<BatchHeader>);
static_assert(std::is_standard_layout_v<BatchHeader>);
static_assert(sizeof(BatchHeader) == 16, ".pgd record layout is frozen since version 1");
static_assert(offsetof(BatchHeader, checksum) == 0);
static_assert(offsetof(BatchHeader, num_inserts) == 8);
static_assert(offsetof(BatchHeader, num_deletes) == 12);

}  // namespace probgraph::live::delta_format
