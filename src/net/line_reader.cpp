#include "net/line_reader.hpp"

namespace probgraph::net {

namespace {
constexpr std::size_t kReadChunk = 16 * 1024;
}

LineReader::Status LineReader::next(std::string& line) {
  for (;;) {
    switch (scanner_.next(line)) {
      case LineScanner::Next::kLine: return Status::kLine;
      case LineScanner::Next::kOverlong: return Status::kOverlong;
      case LineScanner::Next::kNeedMore: break;
    }
    if (eof_) return Status::kEof;
    char tmp[kReadChunk];
    const long got = sock_.read_some(tmp, sizeof tmp);
    if (got <= 0) {
      eof_ = true;
      // Orderly close mid-frame: hand out the unterminated tail (or
      // swallow a discarded overlong tail) before reporting EOF.
      return scanner_.finish(line) == LineScanner::Next::kLine ? Status::kLine
                                                               : Status::kEof;
    }
    scanner_.feed(tmp, static_cast<std::size_t>(got));
  }
}

}  // namespace probgraph::net
