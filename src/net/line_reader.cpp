#include "net/line_reader.hpp"

#include <cstring>

namespace probgraph::net {

namespace {
constexpr std::size_t kReadChunk = 16 * 1024;
}

bool LineReader::fill() {
  if (pos_ > 0) {
    // Compact once per refill: every received byte moves at most once.
    buf_.erase(0, pos_);
    scanned_ -= pos_;
    pos_ = 0;
  }
  char tmp[kReadChunk];
  const long got = sock_.read_some(tmp, sizeof tmp);
  if (got <= 0) return false;
  buf_.append(tmp, static_cast<std::size_t>(got));
  return true;
}

LineReader::Status LineReader::next(std::string& line) {
  for (;;) {
    const std::size_t nl = buf_.find('\n', scanned_);
    if (nl != std::string::npos) {
      const std::size_t len = nl - pos_;
      line.assign(buf_, pos_, len);
      pos_ = nl + 1;
      scanned_ = pos_;
      if (len > max_line_) {
        line = "request line exceeds the " + std::to_string(max_line_) +
               "-byte limit; ignored";
        return Status::kOverlong;
      }
      return Status::kLine;
    }
    scanned_ = buf_.size();

    if (buf_.size() - pos_ > max_line_) {
      // The frame is already too long and its newline has not arrived:
      // stop accumulating and skip the stream to the next boundary.
      buf_.clear();
      pos_ = 0;
      scanned_ = 0;
      for (;;) {
        char tmp[kReadChunk];
        const long got = sock_.read_some(tmp, sizeof tmp);
        if (got <= 0) break;  // report the overlong frame; next() then sees EOF
        const auto* found =
            static_cast<const char*>(std::memchr(tmp, '\n', static_cast<std::size_t>(got)));
        if (found != nullptr) {
          buf_.assign(found + 1, tmp + got - (found + 1));
          break;
        }
      }
      line = "request line exceeds the " + std::to_string(max_line_) +
             "-byte limit; ignored";
      return Status::kOverlong;
    }

    if (!fill()) {
      if (pos_ >= buf_.size()) return Status::kEof;
      // Final unterminated frame: deliver it, like std::getline.
      line.assign(buf_, pos_, std::string::npos);
      buf_.clear();
      pos_ = 0;
      scanned_ = 0;
      return Status::kLine;
    }
  }
}

}  // namespace probgraph::net
