// Buffered line framing over a blocking Socket, with a bounded length.
//
// LineReader is the blocking-transport wrapper over LineScanner
// (line_scanner.hpp): next() pulls socket bytes into the scanner until a
// complete frame (or an overlong report) comes out. All framing state —
// including the overlong-frame resync — lives in the scanner, so it
// survives partial reads: a peer that trickles an overlong frame one byte
// per segment still gets exactly ONE err reply and a clean resync at the
// next newline. The event-driven transport (net/reactor.cpp) skips this
// wrapper and feeds its nonblocking reads into a LineScanner directly.
#pragma once

#include <cstddef>
#include <string>

#include "net/line_scanner.hpp"
#include "net/socket.hpp"

namespace probgraph::net {

class LineReader {
 public:
  enum class Status {
    kLine,      ///< `line` holds one complete frame (newline stripped)
    kEof,       ///< orderly close or read error; the session is over
    kOverlong,  ///< frame exceeded max_line_bytes; discarded to the next
                ///< newline (or EOF) and the stream is positioned after it
  };

  /// Reads from `sock` (not owned; must outlive the reader).
  LineReader(Socket& sock, std::size_t max_line_bytes)
      : sock_(sock), scanner_(max_line_bytes) {}

  [[nodiscard]] std::size_t max_line_bytes() const noexcept {
    return scanner_.max_line_bytes();
  }

  /// Pull the next frame. A trailing '\r' is left in place — the protocol
  /// tokenizer treats it as whitespace, so CRLF clients (telnet, netcat on
  /// some platforms) work unmodified. A final unterminated frame before
  /// EOF is delivered as a line, matching std::getline.
  [[nodiscard]] Status next(std::string& line);

 private:
  Socket& sock_;
  LineScanner scanner_;
  bool eof_ = false;
};

}  // namespace probgraph::net
