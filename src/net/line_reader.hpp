// Buffered line framing over a Socket, with a bounded line length.
//
// The serve protocol is newline-framed, and a TCP stream delivers frames
// in arbitrary pieces: a request may arrive split across reads ("sta" then
// "ts\n") or many-per-read ("tc\nstats\nquit\n"). LineReader reassembles
// exactly one request per next() call.
//
// The length bound is the transport's only defense against a client that
// streams bytes without ever sending a newline: instead of growing the
// buffer without limit, the reader discards the frame up to the next
// boundary and reports kOverlong ONCE — the session answers with an err
// line and keeps serving, identical to any other malformed frame.
#pragma once

#include <cstddef>
#include <string>

#include "net/socket.hpp"

namespace probgraph::net {

class LineReader {
 public:
  enum class Status {
    kLine,      ///< `line` holds one complete frame (newline stripped)
    kEof,       ///< orderly close or read error; the session is over
    kOverlong,  ///< frame exceeded max_line_bytes; discarded to the next
                ///< newline (or EOF) and the stream is positioned after it
  };

  /// Reads from `sock` (not owned; must outlive the reader).
  LineReader(Socket& sock, std::size_t max_line_bytes)
      : sock_(sock), max_line_(max_line_bytes) {}

  [[nodiscard]] std::size_t max_line_bytes() const noexcept { return max_line_; }

  /// Pull the next frame. A trailing '\r' is left in place — the protocol
  /// tokenizer treats it as whitespace, so CRLF clients (telnet, netcat on
  /// some platforms) work unmodified. A final unterminated frame before
  /// EOF is delivered as a line, matching std::getline.
  [[nodiscard]] Status next(std::string& line);

 private:
  /// Refill buf_ from the socket. False on EOF/error.
  bool fill();

  Socket& sock_;
  std::size_t max_line_ = 0;
  // Consumed bytes stay in buf_ until the next refill compacts them away
  // (one amortized move per received byte, instead of an O(remaining)
  // front-erase per delivered line).
  std::string buf_;          // receive buffer; [pos_, size) is unconsumed
  std::size_t pos_ = 0;      // start of the unconsumed region
  std::size_t scanned_ = 0;  // buf_ prefix known to contain no newline (>= pos_)
};

}  // namespace probgraph::net
