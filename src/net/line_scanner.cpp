#include "net/line_scanner.hpp"

namespace probgraph::net {

std::string LineScanner::overlong_text() const {
  return "request line exceeds the " + std::to_string(max_line_) +
         "-byte limit; ignored";
}

void LineScanner::feed(std::string_view bytes) {
  if (pos_ > 0) {
    // Compact once per feed: every received byte moves at most once.
    buf_.erase(0, pos_);
    scanned_ -= pos_;
    pos_ = 0;
  }
  buf_.append(bytes);
}

LineScanner::Next LineScanner::next(std::string& line) {
  if (discarding_) {
    // Resync after an already-reported overlong frame: drop everything up
    // to and including its newline. This state survives arbitrarily many
    // feeds — a nonblocking transport may deliver the tail a byte at a
    // time (the bug the blocking LineReader used to have).
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl == std::string::npos) {
      buf_.clear();
      pos_ = 0;
      scanned_ = 0;
      return Next::kNeedMore;
    }
    pos_ = nl + 1;
    scanned_ = pos_;
    discarding_ = false;
  }
  const std::size_t nl = buf_.find('\n', scanned_);
  if (nl != std::string::npos) {
    const std::size_t len = nl - pos_;
    line.assign(buf_, pos_, len);
    pos_ = nl + 1;
    scanned_ = pos_;
    if (max_line_ > 0 && len > max_line_) {
      line = overlong_text();
      return Next::kOverlong;
    }
    return Next::kLine;
  }
  scanned_ = buf_.size();
  if (max_line_ > 0 && buf_.size() - pos_ > max_line_) {
    // The frame is already too long and its newline has not arrived:
    // report it once, stop accumulating, and discard to the boundary.
    buf_.clear();
    pos_ = 0;
    scanned_ = 0;
    discarding_ = true;
    line = overlong_text();
    return Next::kOverlong;
  }
  return Next::kNeedMore;
}

LineScanner::Next LineScanner::finish(std::string& line) {
  if (discarding_) {
    // The unterminated tail belongs to a frame already answered with an
    // err line; swallow it.
    discarding_ = false;
    buf_.clear();
    pos_ = 0;
    scanned_ = 0;
    return Next::kNeedMore;
  }
  if (pos_ >= buf_.size()) return Next::kNeedMore;
  // Final unterminated frame: deliver it, like std::getline. It cannot
  // exceed the bound — that would have entered the discard path above.
  line.assign(buf_, pos_, std::string::npos);
  buf_.clear();
  pos_ = 0;
  scanned_ = 0;
  return Next::kLine;
}

}  // namespace probgraph::net
