// Incremental newline framing over a byte buffer, with a bounded line
// length — the socket-independent core of the serve transports' framing.
//
// A TCP stream delivers frames in arbitrary pieces: a request may arrive
// split across reads ("sta" then "ts\n"), many-per-read ("tc\nstats\n"),
// or one byte at a time. LineScanner reassembles exactly one frame per
// next() call from whatever feed() has buffered so far, and — crucially
// for nonblocking transports — keeps ALL of its state across feeds,
// including the overlong-frame resync below. The blocking LineReader
// (line_reader.hpp) and the reactor's per-session input path
// (net/reactor.cpp) are both thin wrappers over this class, so bounded
// framing behaves identically on every transport.
//
// The length bound is the transport's only defense against a client that
// streams bytes without ever sending a newline: instead of growing the
// buffer without limit, the scanner reports kOverlong ONCE the moment the
// bound is exceeded (or when an already-complete line turns out too long)
// and then silently discards up to the next newline, however many feeds
// that takes. The session answers the kOverlong with an err line and
// keeps serving, identical to any other malformed frame.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace probgraph::net {

class LineScanner {
 public:
  enum class Next {
    kLine,      ///< `line` holds one complete frame (newline stripped)
    kOverlong,  ///< a frame exceeded max_line_bytes; `line` holds the
                ///< error text; the stream resyncs at the next newline
    kNeedMore,  ///< no complete frame buffered — feed() more bytes
  };

  /// `max_line_bytes` == 0 means unbounded (trusted local transports).
  explicit LineScanner(std::size_t max_line_bytes = 0) noexcept
      : max_line_(max_line_bytes) {}

  [[nodiscard]] std::size_t max_line_bytes() const noexcept { return max_line_; }

  /// Append received bytes. Cheap: one amortized copy per byte.
  void feed(std::string_view bytes);
  void feed(const char* data, std::size_t n) { feed(std::string_view(data, n)); }

  /// Extract the next frame from the buffered bytes.
  [[nodiscard]] Next next(std::string& line);

  /// End-of-stream: deliver a final unterminated frame as a line (matching
  /// std::getline), or kNeedMore when nothing is pending. A tail that
  /// belongs to an already-reported overlong frame is swallowed. Resets
  /// the scanner; call once, after the transport saw EOF.
  [[nodiscard]] Next finish(std::string& line);

  /// Bytes buffered but not yet delivered (discarded overlong bytes are
  /// dropped eagerly and never counted).
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  [[nodiscard]] std::string overlong_text() const;

  std::size_t max_line_ = 0;
  // Consumed bytes stay in buf_ until the next feed compacts them away
  // (one amortized move per received byte, instead of an O(remaining)
  // front-erase per delivered line).
  std::string buf_;          // receive buffer; [pos_, size) is unconsumed
  std::size_t pos_ = 0;      // start of the unconsumed region
  std::size_t scanned_ = 0;  // buf_ prefix known to contain no newline (>= pos_)
  // True while skipping the tail of an overlong frame whose kOverlong was
  // already reported: everything up to and including the next newline is
  // discarded, across however many feed() calls it trickles in.
  bool discarding_ = false;
};

}  // namespace probgraph::net
