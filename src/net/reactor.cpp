#include "net/reactor.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <system_error>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/generation.hpp"
#include "engine/protocol.hpp"
#include "obs/metrics.hpp"

namespace probgraph::net {

namespace {

/// Reactor instruments, resolved once per process (the EngineMetrics
/// pattern in engine.cpp). The turns counter is delta-able, so tests can
/// assert fairness (N pipelined requests at bound L take >= N/L turns)
/// without depending on what ran before them.
struct ReactorMetrics {
  obs::Counter* turns;
  obs::Gauge* ready_depth;
  obs::Histogram* batch_size;
};

ReactorMetrics& reactor_metrics() {
  static ReactorMetrics m = [] {
    auto& reg = obs::Registry::global();
    ReactorMetrics rm;
    rm.turns = &reg.counter("probgraph_reactor_turns_total",
                            "Reactor scheduling turns executed by workers");
    rm.ready_depth =
        &reg.gauge("probgraph_reactor_ready_queue_depth",
                   "Sessions on the reactor run queue awaiting a worker");
    rm.batch_size = &reg.histogram(
        "probgraph_reactor_pipeline_batch_size",
        "Requests answered per reactor scheduling turn (pipelining depth)");
    return rm;
  }();
  return m;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

constexpr int kMaxIov = 64;

}  // namespace

/// One connection: the socket, its session state machine, and the
/// scheduling bookkeeping. `state` is guarded by EpollServer::mu_; all
/// other fields are owned by whichever worker holds the connection in
/// kRunning (the ONESHOT protocol guarantees at most one).
struct EpollServer::Conn {
  enum class State : std::uint8_t { kIdle, kQueued, kRunning };

  Conn(std::unique_ptr<engine::SessionHost> h, const ServeOptions& opts)
      : host(std::move(h)), session(*host, opts.session, opts.max_line_bytes) {}

  Socket sock;
  std::unique_ptr<engine::SessionHost> host;
  engine::Session session;

  State state = State::kIdle;       // guarded by mu_
  bool read_pending = false;        // an epoll event queued this turn: drain the fd
  bool peer_eof = false;
  std::deque<std::string> outq;     // flushed chunks, front partially written
  std::size_t out_off = 0;          // bytes of outq.front() already written
  std::size_t answered_tallied = 0; // Session::answered() already counted
};

EpollServer::EpollServer(const ServeOptions& opts)
    : opts_(opts), listener_(opts.port, opts.backlog) {
  if ((opts_.engine != nullptr) == (opts_.live != nullptr)) {
    throw std::runtime_error(
        "EpollServer: exactly one of ServeOptions::engine / ::live must be set");
  }
  if (opts_.max_conns < 1) {
    throw std::runtime_error("EpollServer: max_conns must be at least 1");
  }
  if (opts_.max_requests_per_turn < 1) {
    throw std::runtime_error(
        "EpollServer: max_requests_per_turn must be at least 1");
  }
  // Resolve the reactor instruments before any worker exists: later calls
  // under mu_ are then plain pointer reads, never the registry creation
  // lock (metrics.hpp forbids resolving while holding a serving-layer
  // mutex).
  (void)reactor_metrics();
  workers_ = opts_.workers;
  if (workers_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers_ = static_cast<int>(hw < 2 ? 2 : hw);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("EpollServer: epoll_create1 failed: " +
                             std::system_category().message(errno));
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw std::runtime_error("EpollServer: cannot create wake pipe");
  }
  set_cloexec(wake_pipe_[0]);
  set_cloexec(wake_pipe_[1]);
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(listener_.fd());

  // Listener and wake pipe are level-triggered and never re-armed: the
  // dispatcher is the only thread that sees them. data.ptr nullptr tags
  // the listener, `this` tags the pipe; a Conn* is anything else.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    throw std::runtime_error("EpollServer: cannot register listener");
  }
  ev.data.ptr = this;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev) != 0) {
    throw std::runtime_error("EpollServer: cannot register wake pipe");
  }
}

EpollServer::~EpollServer() {
  for (Conn* conn : conns_) delete conn;  // safety net if run() never ran
  conns_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void EpollServer::request_stop() noexcept {
  stop_.store(true);
  const char byte = 's';
  [[maybe_unused]] const auto rc = ::write(wake_pipe_[1], &byte, 1);
}

void EpollServer::accept_ready() {
  while (true) {
    Socket sock = listener_.accept();  // nonblocking: invalid on EAGAIN
    if (!sock.valid()) return;

    Conn* conn = nullptr;
    {
      util::MutexLock lock(mu_);
      if (conns_.size() < static_cast<std::size_t>(opts_.max_conns)) {
        ++accepted_;
        auto host = opts_.live != nullptr
                        ? engine::make_session_host(*opts_.live)
                        : engine::make_session_host(*opts_.engine);
        conn = new Conn(std::move(host), opts_);
        conn->sock = std::move(sock);
        conns_.insert(conn);
      }
    }
    if (conn == nullptr) {
      ++rejected_;
      // Registry resolution and the blocking reject write both happen
      // outside mu_ (metrics.hpp contract; never block under the lock).
      obs::Registry::global()
          .counter("probgraph_connections_rejected_total",
                   "Connections answered 'server at capacity' and closed")
          .add();
      // The accepted fd is still blocking (O_NONBLOCK is not inherited),
      // so the in-band reject line goes out whole, same as threads.
      (void)sock.write_all("err\tserver at capacity (" +
                           std::to_string(opts_.max_conns) +
                           " live sessions); retry later\n");
      continue;  // Socket destructor closes the rejected connection
    }

    set_nonblocking(conn->sock.fd());
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
    ev.data.ptr = conn;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->sock.fd(), &ev) != 0) {
      {
        util::MutexLock relock(mu_);
        conns_.erase(conn);
      }
      delete conn;
    }
  }
}

void EpollServer::enqueue_event(Conn* conn) {
  util::MutexLock lock(mu_);
  // ONESHOT: events arrive only while armed (kIdle). A stale pointer is
  // impossible — a connection is only destroyed from kRunning, after its
  // one outstanding event was consumed.
  if (conn->state != Conn::State::kIdle) return;
  conn->state = Conn::State::kQueued;
  conn->read_pending = true;
  ready_.push_back(conn);
  reactor_metrics().ready_depth->set(static_cast<double>(ready_.size()));
  cv_.notify_one();
}

EpollServer::Turn EpollServer::run_turn(Conn& conn) {
  ReactorMetrics& metrics = reactor_metrics();
  metrics.turns->add();
  bool io_error = false;

  // 1. Drain the socket — only on turns queued by a readiness event.
  // Fairness re-queues skip the read: the scanner buffer drains at
  // max_requests_per_turn per turn while the kernel receive buffer
  // backpressures the sender, so memory stays bounded under a flood.
  if (conn.read_pending && !conn.peer_eof) {
    conn.read_pending = false;
    char buf[16 * 1024];
    while (true) {
      const ssize_t got = ::recv(conn.sock.fd(), buf, sizeof buf, 0);
      if (got > 0) {
        conn.session.feed({buf, static_cast<std::size_t>(got)});
        continue;
      }
      if (got == 0) {
        conn.peer_eof = true;
        conn.session.feed_eof();
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      io_error = true;  // reset etc.: end the session, never the server
      break;
    }
  }

  // 2. Answer up to one turn's worth of buffered requests.
  const std::size_t processed = conn.session.pump(opts_.max_requests_per_turn);
  if (processed > 0) {
    metrics.batch_size->observe(static_cast<double>(processed));
  }
  const std::size_t answered = conn.session.answered();
  queries_answered_ += answered - conn.answered_tallied;
  conn.answered_tallied = answered;

  // 3. Flush: the turn's replies leave as ONE gathered write.
  if (!conn.session.output().empty()) {
    conn.outq.push_back(std::move(conn.session.output()));
    conn.session.output().clear();
  }
  while (!io_error && !conn.outq.empty()) {
    iovec iov[kMaxIov];
    int niov = 0;
    std::size_t off = conn.out_off;
    for (auto it = conn.outq.begin(); it != conn.outq.end() && niov < kMaxIov;
         ++it, ++niov) {
      iov[niov].iov_base = it->data() + off;
      iov[niov].iov_len = it->size() - off;
      off = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(niov);
    const ssize_t wrote = ::sendmsg(conn.sock.fd(), &msg, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // backpressure
      io_error = true;  // peer gone mid-flush: drop the rest, like threads
      break;
    }
    std::size_t left = static_cast<std::size_t>(wrote);
    while (left > 0) {
      const std::size_t avail = conn.outq.front().size() - conn.out_off;
      if (left >= avail) {
        left -= avail;
        conn.outq.pop_front();
        conn.out_off = 0;
      } else {
        conn.out_off += left;
        left = 0;
      }
    }
  }

  // 4. Schedule the next step.
  if (io_error) return Turn::kClose;
  if (conn.session.done() && conn.outq.empty()) return Turn::kClose;
  if (!conn.outq.empty()) return Turn::kArm;  // park on EPOLLOUT
  if (processed >= opts_.max_requests_per_turn && !conn.session.done()) {
    return Turn::kRequeue;  // fairness: more buffered work, go to the tail
  }
  return Turn::kArm;
}

bool EpollServer::rearm(Conn& conn) noexcept {
  std::uint32_t events = EPOLLONESHOT | EPOLLRDHUP;
  if (!conn.outq.empty()) {
    // Backpressure: input stays paused until the peer drains our output.
    events |= EPOLLOUT;
  } else if (!conn.peer_eof && !conn.session.done()) {
    events |= EPOLLIN;
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = &conn;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev) == 0;
}

void EpollServer::close_conn(Conn* conn) {
  // FIN first (parity with threads: a quit with the peer's end held open
  // still sees EOF); the Socket destructor closes the fd, which also
  // removes it from the epoll set. Session destructor records the
  // per-session metrics.
  conn->sock.shutdown_both();
  {
    util::MutexLock lock(mu_);
    conns_.erase(conn);
  }
  delete conn;
}

void EpollServer::worker_main() {
  while (true) {
    Conn* conn = nullptr;
    {
      util::MutexLock lock(mu_);
      cv_.wait(mu_, [this]() REQUIRES(mu_) {
        return stopping_ || !ready_.empty();
      });
      if (stopping_) return;
      conn = ready_.front();
      ready_.pop_front();
      reactor_metrics().ready_depth->set(static_cast<double>(ready_.size()));
      conn->state = Conn::State::kRunning;
    }

    const Turn turn = run_turn(*conn);
    switch (turn) {
      case Turn::kClose:
        close_conn(conn);
        break;
      case Turn::kRequeue: {
        util::MutexLock lock(mu_);
        conn->state = Conn::State::kQueued;
        ready_.push_back(conn);
        reactor_metrics().ready_depth->set(static_cast<double>(ready_.size()));
        cv_.notify_one();
        break;
      }
      case Turn::kArm: {
        {
          // kIdle BEFORE the MOD: the next event can fire the instant the
          // kernel re-arms, and the dispatcher must find the connection
          // idle then — the no-lost-wakeup ordering.
          util::MutexLock state_lock(mu_);
          conn->state = Conn::State::kIdle;
        }
        if (!rearm(*conn)) close_conn(conn);
        break;
      }
    }
  }
}

void EpollServer::run() {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    pool.emplace_back(&EpollServer::worker_main, this);
  }

  std::vector<epoll_event> events(256);
  while (!stop_.load()) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      void* tag = events[static_cast<std::size_t>(i)].data.ptr;
      if (tag == nullptr) {
        accept_ready();
      } else if (tag == this) {
        char drain[64];
        while (::read(wake_pipe_[0], drain, sizeof drain) > 0) {
        }
      } else {
        enqueue_event(static_cast<Conn*>(tag));
      }
    }
  }

  // Stop path: no new events get queued (this thread was the only
  // dispatcher); workers finish their current turn and exit.
  {
    util::MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : pool) t.join();

  // Every remaining session dies here — counters tallied, Session
  // destructors record the per-session metrics, fds close.
  std::unordered_set<Conn*> leftovers;
  {
    util::MutexLock lock(mu_);
    leftovers.swap(conns_);
    ready_.clear();
    reactor_metrics().ready_depth->set(0.0);
  }
  for (Conn* conn : leftovers) {
    queries_answered_ += conn->session.answered() - conn->answered_tallied;
    conn->sock.shutdown_both();
    delete conn;
  }
}

}  // namespace probgraph::net
