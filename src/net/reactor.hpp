// Event-driven transport: an epoll reactor multiplexing every session over
// a small fixed worker pool.
//
// Where net/server.hpp spends one blocking thread per connection, the
// reactor spends one file descriptor: every accepted socket is nonblocking
// and registered EPOLLONESHOT in one epoll set. The run() thread is the
// dispatcher — it accepts, and turns readiness events into entries on a
// run queue of ready sessions; a fixed pool of workers drains the queue,
// giving each session one bounded SCHEDULING TURN at a time:
//
//   turn = read everything available (to EAGAIN)
//        → Session::pump(max_requests_per_turn)   // the fairness bound
//        → flush the output queue with one gathered write (sendmsg/iovec)
//
// Pipelining falls out of the Session state machine (engine/protocol.hpp):
// N newline-framed requests arriving in one segment are answered as N
// replies in ONE gathered write. A session with more buffered requests
// than the per-turn bound re-queues at the TAIL of the run queue — a
// pipelining hog shares the workers instead of starving other sessions. A
// session whose peer stops reading parks on EPOLLOUT (input paused) until
// the kernel drains its output queue.
//
// Concurrency protocol (one mutex, three states): a connection is kIdle
// (armed in epoll, ONESHOT — at most one event outstanding), kQueued (on
// the run queue), or kRunning (owned by exactly one worker). Events only
// arrive for kIdle connections; a worker re-arms by setting kIdle BEFORE
// the epoll_ctl MOD, so a readiness edge can never be lost. One session is
// therefore always driven by at most one thread — exactly the Session
// contract — while different sessions run on different workers against
// the ONE shared engine (engine.hpp "Thread safety").
//
// Capacity, reject text, shutdown semantics, counters, and reply bytes
// are identical to the threads transport (net/transport.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <unordered_set>

#include "net/socket.hpp"
#include "net/transport.hpp"
#include "util/sync.hpp"

namespace probgraph::net {

class EpollServer final : public Transport {
 public:
  /// Binds, listens, and creates the epoll set immediately (throws
  /// std::runtime_error on failure); connections queue in the backlog
  /// until run() starts accepting. Exactly one of opts.engine / opts.live
  /// must be non-null.
  explicit EpollServer(const ServeOptions& opts);

  /// The owner must ensure run() has returned before destroying.
  ~EpollServer() override;

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept override {
    return listener_.port();
  }

  /// Dispatch until request_stop(): spawns the worker pool, accepts, and
  /// routes readiness events. Joins every worker and destroys every live
  /// session before returning.
  void run() override;

  /// Stop from any thread or a signal handler: sets the stop flag and
  /// wakes the dispatcher through the self-pipe.
  void request_stop() noexcept override;

  [[nodiscard]] Counters counters() const noexcept override {
    return {accepted_.load(), rejected_.load(), queries_answered_.load()};
  }

 private:
  struct Conn;
  enum class Turn : std::uint8_t { kClose, kRequeue, kArm };

  void accept_ready() EXCLUDES(mu_);
  void enqueue_event(Conn* conn) EXCLUDES(mu_);
  void worker_main() EXCLUDES(mu_);
  Turn run_turn(Conn& conn);
  [[nodiscard]] bool rearm(Conn& conn) noexcept;
  void close_conn(Conn* conn) EXCLUDES(mu_);

  ServeOptions opts_;
  TcpListener listener_;
  int epoll_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int workers_ = 2;
  std::atomic<bool> stop_{false};

  util::Mutex mu_;  // run queue + conn states + conns_ membership
  util::CondVar cv_;
  std::deque<Conn*> ready_ GUARDED_BY(mu_);
  std::unordered_set<Conn*> conns_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;  // workers exit when set

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> queries_answered_{0};
};

}  // namespace probgraph::net
