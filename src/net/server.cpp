#include "net/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "engine/generation.hpp"
#include "engine/protocol.hpp"
#include "net/line_reader.hpp"
#include "obs/metrics.hpp"

namespace probgraph::net {

namespace {

/// The socket transport for the shared session loop: bounded framed reads
/// in, one write per reply out (TCP does the buffering; a reply is small).
class SocketSessionIo final : public engine::SessionIo {
 public:
  SocketSessionIo(Socket& sock, std::size_t max_line_bytes)
      : sock_(sock), reader_(sock, max_line_bytes) {}

  Read read_line(std::string& line) override {
    switch (reader_.next(line)) {
      case LineReader::Status::kLine: return Read::kLine;
      case LineReader::Status::kOverlong: return Read::kOverlong;
      case LineReader::Status::kEof: break;
    }
    return Read::kEof;
  }

  bool write_line(std::string_view reply) override {
    std::string framed;
    framed.reserve(reply.size() + 1);
    framed.append(reply);
    framed.push_back('\n');
    return sock_.write_all(framed);
  }

 private:
  Socket& sock_;
  LineReader reader_;
};

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

Server::Server(const ServeOptions& opts)
    : opts_(opts), listener_(opts.port, opts.backlog) {
  if ((opts_.engine != nullptr) == (opts_.live != nullptr)) {
    throw std::runtime_error(
        "Server: exactly one of ServeOptions::engine / ::live must be set");
  }
  if (opts_.max_conns < 1) {
    throw std::runtime_error("Server: max_conns must be at least 1");
  }
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("Server: cannot create wake pipe");
  }
  set_cloexec(wake_pipe_[0]);
  set_cloexec(wake_pipe_[1]);
}

Server::~Server() {
  reap(/*all=*/true);  // no-op after run(); safety net if run() never ran
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void Server::request_stop() noexcept {
  stop_.store(true);
  // write() is async-signal-safe; one byte wakes the poll in run(). If the
  // pipe is full a previous wake-up is still pending, which is just as good.
  const char byte = 's';
  [[maybe_unused]] const auto rc = ::write(wake_pipe_[1], &byte, 1);
}

void Server::handle(Conn* conn) {
  SocketSessionIo io(conn->sock, opts_.max_line_bytes);
  try {
    auto host = opts_.live != nullptr ? engine::make_session_host(*opts_.live)
                                      : engine::make_session_host(*opts_.engine);
    queries_answered_ += engine::serve_session(*host, io, opts_.session);
  } catch (...) {
    // serve_session answers engine errors in-band; anything escaping here
    // (e.g. bad_alloc) ends this session only, never the server.
  }
  // Flush a FIN so a client that sent `quit` but holds its end open sees
  // EOF. The fd itself stays open until reap() joins this thread — the
  // stop path may concurrently shutdown() it, which is safe; close() here
  // would race that.
  conn->sock.shutdown_both();
  conn->done.store(true);
}

void Server::reap(bool all) {
  std::vector<std::unique_ptr<Conn>> finished;
  {
    util::MutexLock lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock; for `all` this blocks until the sessions see
  // the shutdown() from the stop path and wind down.
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void Server::run() {
  while (!stop_.load()) {
    pollfd fds[2] = {{listener_.fd(), POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || stop_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    Socket sock = listener_.accept();
    if (!sock.valid()) {
      if (stop_.load()) break;
      continue;
    }
    reap(/*all=*/false);

    bool at_capacity = false;
    {
      util::MutexLock lock(conns_mu_);
      if (conns_.size() >= static_cast<std::size_t>(opts_.max_conns)) {
        at_capacity = true;
      } else {
        ++accepted_;
        auto conn = std::make_unique<Conn>();
        conn->sock = std::move(sock);
        Conn* raw = conn.get();
        conns_.push_back(std::move(conn));
        // Spawn under the lock: once the Conn is in conns_, a concurrent
        // reap(all) may join-and-free it, so `thread` must be set first.
        raw->thread = std::thread([this, raw] { handle(raw); });
      }
    }
    if (at_capacity) {
      ++rejected_;
      // Registry mirror of the capacity counter, so a scrape sees
      // rejections without asking the Server object. Resolved outside
      // conns_mu_: the registry takes its creation lock, and no
      // serving-layer mutex may be held across it (metrics.hpp contract) —
      // nor across the blocking reject write below.
      obs::Registry::global()
          .counter("probgraph_connections_rejected_total",
                   "Connections answered 'server at capacity' and closed")
          .add();
      (void)sock.write_all("err\tserver at capacity (" +
                           std::to_string(opts_.max_conns) +
                           " live sessions); retry later\n");
      // Socket destructor closes the rejected connection.
    }
  }

  // Stop path: no new sessions; wake every live one out of its read.
  {
    util::MutexLock lock(conns_mu_);
    for (auto& conn : conns_) conn->sock.shutdown_both();
  }
  reap(/*all=*/true);
}

}  // namespace probgraph::net
