// Thread-per-connection transport: many TCP sessions, ONE shared mapping.
//
// A Server wraps one engine (static Engine or LiveEngine, fixed by the
// ServeOptions) — typically snapshot-backed, so the whole working set is a
// single read-only mmap — and answers the src/engine/ line protocol to any
// number of concurrent clients:
//
//   * thread-per-connection: each accepted socket gets a std::thread
//     running the SAME serve_session loop as the stdin REPL, over a
//     bounded LineReader (overlong/malformed frames answer an err line and
//     the session continues — never a crash or a silent drop);
//   * one engine, shared: queries hoist their backend dispatch per call
//     and read the mapping concurrently; the Engine's lazily-built caches
//     are guarded internally (see engine.hpp "Thread safety"), so sessions
//     need no per-connection state at all;
//   * bounded concurrency: past --max-conns live sessions, a new client is
//     answered "err\tserver at capacity ..." and closed, which a scripted
//     client can distinguish from a refused connection;
//   * graceful shutdown: request_stop() is async-signal-safe (pgtool wires
//     it to SIGINT/SIGTERM). The accept loop wakes via a self-pipe, stops
//     accepting, half-closes every live session's socket (their reads
//     return EOF and the session loops wind down), joins all threads, and
//     run() returns with the counters intact.
//
// The event-driven sibling is net/reactor.hpp; both implement
// net::Transport and answer byte-identical replies (net/transport.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <thread>

#include "net/socket.hpp"
#include "net/transport.hpp"
#include "util/sync.hpp"

namespace probgraph::net {

class Server final : public Transport {
 public:
  /// Binds and listens immediately (throws std::runtime_error on failure);
  /// connections queue in the backlog until run() starts accepting.
  /// Exactly one of opts.engine / opts.live must be non-null.
  explicit Server(const ServeOptions& opts);

  /// The owner must ensure run() has returned before destroying.
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept override {
    return listener_.port();
  }

  /// Accept-and-serve until request_stop(). Joins every session thread
  /// before returning.
  void run() override;

  /// Stop the server from any thread or a signal handler: sets the stop
  /// flag and wakes the accept loop through the self-pipe.
  void request_stop() noexcept override;

  /// Exact after run() returns; a live snapshot while serving.
  [[nodiscard]] Counters counters() const noexcept override {
    return {accepted_.load(), rejected_.load(), queries_answered_.load()};
  }

 private:
  struct Conn {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void handle(Conn* conn);
  /// Join and free finished sessions; with `all`, every session (stop path).
  void reap(bool all) EXCLUDES(conns_mu_);

  ServeOptions opts_;
  TcpListener listener_;
  // Stop path: request_stop() touches only stop_ and the self-pipe write
  // end — both async-signal-safe, neither guarded, which is exactly why a
  // signal handler may call it (no mutex may appear here; the annotations
  // keep the session table out of its reach).
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_{false};

  util::Mutex conns_mu_;  // guards the session table, never session I/O
  std::list<std::unique_ptr<Conn>> conns_ GUARDED_BY(conns_mu_);

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> queries_answered_{0};
};

}  // namespace probgraph::net
