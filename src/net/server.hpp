// The concurrent serving layer: many TCP sessions, ONE shared mapping.
//
// A Server wraps one engine::Engine — typically snapshot-backed, so the
// whole working set is a single read-only mmap — and answers the
// src/engine/ line protocol to any number of concurrent clients:
//
//   * thread-per-connection: each accepted socket gets a std::thread
//     running the SAME serve_session loop as the stdin REPL, over a
//     bounded LineReader (overlong/malformed frames answer an err line and
//     the session continues — never a crash or a silent drop);
//   * one Engine, shared: queries hoist their backend dispatch per call
//     and read the mapping concurrently; the Engine's lazily-built caches
//     are guarded internally (see engine.hpp "Thread safety"), so sessions
//     need no per-connection state at all;
//   * bounded concurrency: past --max-conns live sessions, a new client is
//     answered "err\tserver at capacity ..." and closed, which a scripted
//     client can distinguish from a refused connection;
//   * graceful shutdown: request_stop() is async-signal-safe (pgtool wires
//     it to SIGINT/SIGTERM). The accept loop wakes via a self-pipe, stops
//     accepting, half-closes every live session's socket (their reads
//     return EOF and the session loops wind down), joins all threads, and
//     run() returns with the counters intact.
//
// The Server does not own the Engine: tests and pgtool construct the
// engine once (mapping the snapshot once) and may keep using it after the
// server stops.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "engine/engine.hpp"
#include "engine/protocol.hpp"
#include "net/socket.hpp"

namespace probgraph::engine {
class LiveEngine;  // engine/generation.hpp
}

namespace probgraph::net {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral; Server::port() has the bound one
  int max_conns = 16;      ///< live sessions beyond this answer an err line
  std::size_t max_line_bytes = 64 * 1024;  ///< per-session request-line bound
  int backlog = 64;
  engine::ServeOptions session;  ///< per-session knobs (slow-query log, ...)
};

class Server {
 public:
  /// Binds and listens immediately (throws std::runtime_error on failure);
  /// connections queue in the backlog until run() starts accepting.
  Server(engine::Engine& engine, ServerOptions opts = {});

  /// Live-serving flavor: every session runs against the LiveEngine —
  /// queries pin the current generation lock-free, update/epoch verbs are
  /// accepted (engine/generation.hpp). Same lifecycle as above.
  Server(engine::LiveEngine& live, ServerOptions opts = {});

  /// The owner must ensure run() has returned before destroying.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Accept-and-serve until request_stop(). Joins every session thread
  /// before returning.
  void run();

  /// Stop the server from any thread or a signal handler: sets the stop
  /// flag and wakes the accept loop through the self-pipe.
  void request_stop() noexcept;

  struct Counters {
    std::uint64_t accepted = 0;          ///< sessions served (threads spawned)
    std::uint64_t rejected = 0;          ///< connections refused at capacity
    std::uint64_t queries_answered = 0;  ///< successful replies, all sessions
  };
  /// Exact after run() returns; a live snapshot while serving.
  [[nodiscard]] Counters counters() const noexcept {
    return {accepted_.load(), rejected_.load(), queries_answered_.load()};
  }

 private:
  struct Conn {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void handle(Conn* conn);
  /// Join and free finished sessions; with `all`, every session (stop path).
  void reap(bool all);

  // Exactly one is non-null, fixed at construction.
  engine::Engine* engine_ = nullptr;
  engine::LiveEngine* live_ = nullptr;
  ServerOptions opts_;
  TcpListener listener_;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_{false};

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> queries_answered_{0};
};

}  // namespace probgraph::net
