#include "net/socket.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace probgraph::net {

namespace {

// system_category().message() instead of strerror(): same text, but
// thread-safe (strerror writes a shared static buffer, and sockets fail
// on session threads concurrently).
[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::system_category().message(errno));
}

// MSG_NOSIGNAL suppresses SIGPIPE per send on Linux/BSD; where it does not
// exist the caller must ignore SIGPIPE process-wide (Server's run path and
// pgtool client both do, so either guard is sufficient).
#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

// The serve protocol is write-write-read: a pipelined burst crossing the
// fairness bound answers in several sendmsg/write calls with no request
// bytes flowing back in between, and Nagle holding the second small
// segment until the peer's delayed ACK turns a microsecond turn into a
// ~40ms stall. Sessions are interactive RPC — disable Nagle on both ends.
// Best effort: a non-TCP fd (e.g. a test socketpair) just ignores it.
void set_nodelay(int fd) noexcept {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

long Socket::read_some(void* buf, std::size_t n) noexcept {
  if (fd_ < 0) return 0;
  for (;;) {
    const ssize_t got = ::recv(fd_, buf, n, 0);
    if (got >= 0) return static_cast<long>(got);
    if (errno == EINTR) continue;
    return -1;
  }
}

bool Socket::write_all(const void* buf, std::size_t n) noexcept {
  if (fd_ < 0) return false;
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, kSendFlags);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

void Socket::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  sock_ = Socket(fd);

  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0) {
    fail_errno("setsockopt(SO_REUSEADDR)");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    fail_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, backlog) != 0) fail_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Socket TcpListener::accept() noexcept {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return Socket{};
  }
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve " + host + ": " + ::gai_strerror(rc));
  }

  int last_errno = 0;
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      set_nodelay(fd);
      return Socket(fd);
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(res);
  errno = last_errno;
  fail_errno("connect to " + host + ":" + service);
}

}  // namespace probgraph::net
