// Portable POSIX TCP primitives for the serving layer.
//
// Three small pieces, no event framework:
//
//   * Socket      — RAII over a connected file descriptor with EINTR-safe
//                   read/write helpers. Writes never raise SIGPIPE (the
//                   session loop turns a gone peer into a quiet end, not a
//                   crash).
//   * TcpListener — bind + listen with SO_REUSEADDR; port 0 picks an
//                   ephemeral port and port() reports the bound one, which
//                   is what the loopback tests and benches use.
//   * connect_to  — getaddrinfo-based client connect (pgtool client, CI).
//
// Everything throws std::runtime_error with the errno text on setup
// failures; steady-state I/O reports EOF/peer-gone through return values
// because those are normal session endings, not errors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace probgraph::net {

/// RAII TCP socket (movable, non-copyable). A default-constructed Socket
/// is invalid; read/write on it behave as EOF/peer-gone.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Read up to `n` bytes. Returns the count, 0 on orderly EOF, and -1 on
  /// a hard error (the caller treats both endings the same way). Retries
  /// EINTR; a peer reset (ECONNRESET) is reported as -1.
  [[nodiscard]] long read_some(void* buf, std::size_t n) noexcept;

  /// Write all `n` bytes, retrying short writes and EINTR. Returns false
  /// when the peer is gone (EPIPE/ECONNRESET) or on any other error —
  /// never raises SIGPIPE.
  [[nodiscard]] bool write_all(const void* buf, std::size_t n) noexcept;
  [[nodiscard]] bool write_all(std::string_view s) noexcept {
    return write_all(s.data(), s.size());
  }

  /// Half-close the write side (client EOF signal: "no more requests").
  void shutdown_write() noexcept;
  /// Shut down both directions — unblocks a thread parked in read_some on
  /// this socket (the server's stop path), without racing the fd's close.
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening TCP socket on 127.0.0.1 (the serving layer is a loopback /
/// behind-a-proxy service; it never binds a public interface by default).
class TcpListener {
 public:
  /// Binds and listens. `port` 0 means "pick an ephemeral port" — read the
  /// chosen one back with port(). Throws std::runtime_error on failure
  /// (address in use, out of fds, ...).
  explicit TcpListener(std::uint16_t port, int backlog = 64);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int fd() const noexcept { return sock_.fd(); }

  /// Accept one connection. Returns an invalid Socket on error (e.g. the
  /// listener was shut down); retries EINTR and transient per-connection
  /// failures (ECONNABORTED).
  [[nodiscard]] Socket accept() noexcept;

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Client-side connect. `host` is a name or numeric address. Throws
/// std::runtime_error when resolution or every candidate connect fails.
[[nodiscard]] Socket connect_to(const std::string& host, std::uint16_t port);

}  // namespace probgraph::net
