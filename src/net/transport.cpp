#include "net/transport.hpp"

#include <stdexcept>

#include "net/reactor.hpp"
#include "net/server.hpp"

namespace probgraph::net {

std::optional<TransportKind> parse_transport_kind(std::string_view name) {
  if (name == "threads") return TransportKind::kThreads;
  if (name == "epoll") return TransportKind::kEpoll;
  return std::nullopt;
}

const char* transport_kind_name(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kThreads: return "threads";
    case TransportKind::kEpoll: return "epoll";
  }
  return "?";
}

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          const ServeOptions& opts) {
  switch (kind) {
    case TransportKind::kThreads: return std::make_unique<Server>(opts);
    case TransportKind::kEpoll: return std::make_unique<EpollServer>(opts);
  }
  throw std::runtime_error("make_transport: unknown transport kind");
}

}  // namespace probgraph::net
