// The transport seam: one serving configuration, interchangeable engines
// underneath it.
//
// Both TCP transports — the thread-per-connection Server (net/server.hpp)
// and the epoll reactor (net/reactor.hpp) — consume the SAME ServeOptions
// and implement the SAME Transport interface, so pgtool (and every test)
// picks a transport with one enum instead of a ctor matrix:
//
//   net::ServeOptions opts;
//   opts.engine = &eng;            // or opts.live = &live_engine
//   opts.port = 9999;
//   auto t = net::make_transport(net::TransportKind::kEpoll, opts);
//   t->run();                      // until t->request_stop()
//
// The contract every transport honors:
//
//   * reply bytes are identical across transports — the golden serve
//     transcripts pass unchanged on either one, static or --live;
//   * capacity rejects answer the same in-band err line and close;
//   * request_stop() is async-signal-safe and run() returns with the
//     Counters intact after joining/draining every session.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "engine/protocol.hpp"

namespace probgraph::engine {
class Engine;      // engine/engine.hpp
class LiveEngine;  // engine/generation.hpp
}  // namespace probgraph::engine

namespace probgraph::net {

enum class TransportKind : std::uint8_t {
  kThreads,  ///< thread-per-connection, blocking I/O (net/server.hpp)
  kEpoll,    ///< event-driven reactor, nonblocking I/O (net/reactor.hpp)
};

/// "threads" / "epoll" → the kind; anything else → nullopt (the caller
/// owns the usage error).
[[nodiscard]] std::optional<TransportKind> parse_transport_kind(
    std::string_view name);

/// The flag-value spelling of a kind ("threads" / "epoll").
[[nodiscard]] const char* transport_kind_name(TransportKind kind) noexcept;

/// One serving configuration, consumed by both transports. Exactly one of
/// `engine` / `live` must be non-null; neither is owned — construct the
/// engine once (mapping the snapshot once) and keep using it after the
/// transport stops.
struct ServeOptions {
  engine::Engine* engine = nullptr;    ///< static snapshot serving
  engine::LiveEngine* live = nullptr;  ///< generation-swapping live serving
  std::uint16_t port = 0;  ///< 0 = ephemeral; Transport::port() has the bound one
  int max_conns = 16;      ///< live sessions beyond this answer an err line
  std::size_t max_line_bytes = 64 * 1024;  ///< per-session request-line bound
  int backlog = 64;
  /// Reactor worker threads draining the ready queue; 0 = auto (hardware
  /// concurrency, min 2). Ignored by the threads transport.
  int workers = 0;
  /// Reactor fairness: one scheduling turn answers at most this many
  /// buffered requests before the session re-queues behind other ready
  /// sessions. Ignored by the threads transport (each session owns a
  /// thread). Must be >= 1.
  std::size_t max_requests_per_turn = 32;
  engine::ServeOptions session;  ///< per-session knobs (slow-query log, ...)
};

/// The lifecycle every TCP transport implements. port() is valid from
/// construction (binding happens in the ctor, which throws
/// std::runtime_error on failure); run() serves until request_stop() and
/// joins/drains every session before returning; the owner must ensure
/// run() has returned before destroying.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual std::uint16_t port() const noexcept = 0;

  /// Accept-and-serve until request_stop().
  virtual void run() = 0;

  /// Stop from any thread or a signal handler: async-signal-safe.
  virtual void request_stop() noexcept = 0;

  struct Counters {
    std::uint64_t accepted = 0;          ///< sessions served
    std::uint64_t rejected = 0;          ///< connections refused at capacity
    std::uint64_t queries_answered = 0;  ///< successful replies, all sessions
  };
  /// Exact after run() returns; a live snapshot while serving.
  [[nodiscard]] virtual Counters counters() const noexcept = 0;
};

/// Construct the chosen transport (bound and listening; throws
/// std::runtime_error on bind failure or a malformed ServeOptions).
[[nodiscard]] std::unique_ptr<Transport> make_transport(TransportKind kind,
                                                        const ServeOptions& opts);

}  // namespace probgraph::net
