// Lock-free hot-path instruments: sharded counters, gauges, and
// log-bucketed histograms.
//
// Design: every instrument is a small array of cache-line-aligned shards
// of relaxed atomics. Writers pick a shard once per thread (a round-robin
// thread_local index) and touch only that shard, so concurrent writers on
// different threads never contend on one cache line and never take a
// lock. Aggregation across shards happens only at scrape time, on the
// reader's thread. Relaxed ordering is sufficient: the values are
// monotonic event tallies, not synchronization edges — a scrape sees some
// recent prefix of each shard, which is exactly the semantics a metrics
// snapshot needs, and TSan is clean because every access is atomic.
//
// This header is intentionally light (atomic/array/cstdint only) so the
// kernel layer can include it without dragging in strings or containers.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace probgraph::obs {

/// Shards per instrument. More shards = less write contention, more
/// memory and slower scrapes. Serving runs at most --max-conns (default
/// 16) session threads, so 16 counter shards make same-counter collisions
/// rare even under full load.
inline constexpr std::size_t kCounterShards = 16;
inline constexpr std::size_t kHistogramShards = 4;

/// Round-robin shard assignment: each thread draws one index on first use
/// and keeps it for life. fetch_add on a process-global is fine — it runs
/// once per thread, not per event.
inline std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

/// Monotonic counter. add() is wait-free (one relaxed fetch_add on the
/// caller's shard); value() sums the shards. Because fetch_add never
/// loses increments, concurrent-writer totals are EXACT, not approximate
/// — only the point in time a scrape observes is fuzzy.
class Counter {
 public:
  constexpr Counter() noexcept = default;

  // PROBGRAPH_HOT_PATH_BEGIN(counter-add)
  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index() % kCounterShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  // PROBGRAPH_HOT_PATH_END(counter-add)

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kCounterShards> shards_{};
};

/// Last-write-wins double gauge (dispatch level, config knobs, build
/// info). Not sharded: gauges are set rarely and read at scrape.
class Gauge {
 public:
  constexpr Gauge() noexcept = default;

  // PROBGRAPH_HOT_PATH_BEGIN(gauge-set)
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  // PROBGRAPH_HOT_PATH_END(gauge-set)

  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Log-linear histogram over non-negative doubles (HDR-style).
///
/// Values are recorded in fixed point ("units" = value * 1e9, so seconds
/// become nanoseconds) and bucketed log-linearly: buckets 0..15 are exact
/// for units < 16, and above that each power of two is split into 4
/// sub-buckets, giving a worst-case relative quantile error of 25% (one
/// sub-bucket width) across the full 64-bit range in 256 buckets. count
/// and sum are exact; p50/p90/p99 are interpolated within the bucket;
/// max is tracked exactly via CAS.
///
/// observe() touches one shard: a relaxed fetch_add on the bucket, the
/// unit sum, and the sample count, plus a relaxed CAS loop on the shard
/// max. snapshot() merges shards on the reader's thread.
class Histogram {
 public:
  static constexpr int kBuckets = 256;
  static constexpr double kUnitsPerValue = 1e9;

  constexpr Histogram() noexcept = default;

  /// Map units to a bucket index. Exposed (with the bounds below) so
  /// tests can pin the bucket math independently of observe().
  [[nodiscard]] static constexpr int bucket_index(std::uint64_t u) noexcept {
    if (u < 16) return static_cast<int>(u);
    const int e = std::bit_width(u) - 1;  // 4..63
    const auto sub = static_cast<int>((u >> (e - 2)) & 3u);
    return 16 + (e - 4) * 4 + sub;  // 16..255
  }

  /// Inclusive lower bound of bucket b, in units.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(int b) noexcept {
    if (b < 16) return static_cast<std::uint64_t>(b);
    const int e = 4 + (b - 16) / 4;
    const auto sub = static_cast<std::uint64_t>((b - 16) % 4);
    return (4u + sub) << (e - 2);
  }

  /// Exclusive upper bound of bucket b, in units.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(int b) noexcept {
    if (b >= kBuckets - 1) return ~std::uint64_t{0};
    return bucket_lower(b + 1);
  }

  // PROBGRAPH_HOT_PATH_BEGIN(histogram-observe)
  void observe(double value) noexcept {
    if (value < 0) value = 0;
    double scaled = value * kUnitsPerValue + 0.5;
    constexpr auto kMax = static_cast<double>(~std::uint64_t{0});
    observe_units(scaled >= kMax ? ~std::uint64_t{0}
                                 : static_cast<std::uint64_t>(scaled));
  }

  void observe_units(std::uint64_t u) noexcept {
    Shard& s = shards_[shard_index() % kHistogramShards];
    s.buckets[static_cast<std::size_t>(bucket_index(u))].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(u, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t cur = s.max.load(std::memory_order_relaxed);
    while (u > cur && !s.max.compare_exchange_weak(
                          cur, u, std::memory_order_relaxed)) {
    }
  }
  // PROBGRAPH_HOT_PATH_END(histogram-observe)

  /// A merged, immutable view taken at scrape time.
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;  // in value units (e.g. seconds)
    double max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Quantile estimate by rank walk + linear interpolation inside the
    /// bucket; exact max for q at or beyond the last recorded sample.
    [[nodiscard]] double quantile(double q) const noexcept {
      if (count == 0) return 0;
      if (q <= 0) q = 0;
      if (q >= 1) return max;
      auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
      if (rank >= count) rank = count - 1;  // 0-based rank of the sample
      std::uint64_t cum = 0;
      for (int b = 0; b < kBuckets; ++b) {
        const std::uint64_t n = buckets[static_cast<std::size_t>(b)];
        if (rank < cum + n) {
          const double lo = static_cast<double>(bucket_lower(b));
          const double hi = b >= kBuckets - 1
                                ? max * kUnitsPerValue
                                : static_cast<double>(bucket_upper(b));
          const double frac =
              n > 1 ? static_cast<double>(rank - cum) / static_cast<double>(n)
                    : 0.0;
          double est = (lo + (hi - lo) * frac) / kUnitsPerValue;
          return est > max ? max : est;
        }
        cum += n;
      }
      return max;
    }
  };

  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot out;
    std::uint64_t sum_units = 0;
    std::uint64_t max_units = 0;
    for (const Shard& s : shards_) {
      out.count += s.count.load(std::memory_order_relaxed);
      sum_units += s.sum.load(std::memory_order_relaxed);
      const std::uint64_t m = s.max.load(std::memory_order_relaxed);
      if (m > max_units) max_units = m;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
      }
    }
    out.sum = static_cast<double>(sum_units) / kUnitsPerValue;
    out.max = static_cast<double>(max_units) / kUnitsPerValue;
    return out;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};  // units
    std::atomic<std::uint64_t> max{0};  // units
  };
  std::array<Shard, kHistogramShards> shards_{};
};

}  // namespace probgraph::obs
