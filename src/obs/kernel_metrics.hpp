// Per-kernel invocation/element tallies for the dispatched set-operation
// layer (core/kernels). SISA's unit of account is the set operation, so
// these counters make the estimator mix visible at scrape time: how many
// merge vs gallop intersections ran, how many bitvector words were
// popcounted, how many MinHash slots were matched.
//
// The counters live here unconditionally (so the exposition code always
// compiles and links); the *increments* in kernels.hpp are compiled in
// only under PROBGRAPH_OBS, making the OFF build bit-for-bit free of
// instrumentation in the per-element hot loops' callers.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/instruments.hpp"

namespace probgraph::obs {

/// One entry per dispatched kernel wrapper in core/kernels/kernels.hpp.
enum class KernelOp : std::uint8_t {
  kIntersectCountMerge,
  kIntersectCountGallop,
  kIntersectIntoMerge,
  kIntersectIntoGallop,
  kAndPopcount,
  kOrPopcount,
  kAnd3Popcount,
  kPopcount,
  kMatchCountU64,
  kMinMerge,
  kCount_,  // sentinel
};

inline constexpr std::size_t kNumKernelOps =
    static_cast<std::size_t>(KernelOp::kCount_);

inline constexpr const char* kKernelOpNames[kNumKernelOps] = {
    "intersect_count_merge", "intersect_count_gallop", "intersect_into_merge",
    "intersect_into_gallop", "and_popcount",           "or_popcount",
    "and3_popcount",         "popcount",               "match_count_u64",
    "min_merge",
};

/// Process-global tallies. constinit: usable from any static initializer
/// and free of guard checks on the hot path. "elements" is the op's input
/// size — list lengths for intersections, words for popcounts, slots for
/// match/min-merge — i.e. the work metric, not the result.
struct KernelCounters {
  Counter invocations[kNumKernelOps];
  Counter elements[kNumKernelOps];
};

inline constinit KernelCounters g_kernel_counters{};

inline void record_kernel(KernelOp op, std::uint64_t elems) noexcept {
  const auto i = static_cast<std::size_t>(op);
  g_kernel_counters.invocations[i].add(1);
  g_kernel_counters.elements[i].add(elems);
}

/// Batched call sites (est_intersection_batch) fold a whole batch into
/// one pair of adds instead of one per candidate.
inline void record_kernel_batch(KernelOp op, std::uint64_t calls,
                                std::uint64_t elems) noexcept {
  const auto i = static_cast<std::size_t>(op);
  g_kernel_counters.invocations[i].add(calls);
  g_kernel_counters.elements[i].add(elems);
}

}  // namespace probgraph::obs
