#include "obs/metrics.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/kernels/kernels.hpp"
#include "obs/kernel_metrics.hpp"

namespace probgraph::obs {

namespace {

constexpr double kQuantiles[] = {0.5, 0.9, 0.99};
constexpr const char* kQuantileLabels[] = {"0.5", "0.9", "0.99"};

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char ch : v) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += ch;
    }
  }
  return out;
}

std::string format_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// Like format_labels but with one extra label appended (quantile=...).
std::string format_labels_plus(const Labels& labels, const char* key,
                               const char* value) {
  Labels with = labels;
  with.emplace_back(key, value);
  return format_labels(with);
}

std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string format_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

}  // namespace

Registry& Registry::global() {
  static Registry r;
  return r;
}

Registry::Entry& Registry::get_or_create(std::string_view name,
                                         std::string_view help, Labels labels,
                                         Kind kind) {
  util::MutexLock lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      if (e->kind != kind) {
        throw std::logic_error("obs::Registry: instrument '" +
                               std::string(name) +
                               "' already registered with a different type");
      }
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->help = std::string(help);
  e->labels = std::move(labels);
  e->kind = kind;
  switch (kind) {
    case Kind::kCounter: e->c = std::make_unique<Counter>(); break;
    case Kind::kGauge: e->g = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: e->h = std::make_unique<Histogram>(); break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  return *get_or_create(name, help, std::move(labels), Kind::kCounter).c;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels) {
  return *get_or_create(name, help, std::move(labels), Kind::kGauge).g;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               Labels labels) {
  return *get_or_create(name, help, std::move(labels), Kind::kHistogram).h;
}

const Counter* Registry::find_counter(std::string_view name,
                                      const Labels& labels) const {
  util::MutexLock lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels && e->kind == Kind::kCounter) {
      return e->c.get();
    }
  }
  return nullptr;
}

std::string Registry::prometheus_text() const {
  std::string out;
  out.reserve(8192);
  util::MutexLock lock(mu_);
  // Families are emitted grouped by name, HELP/TYPE once per family, in
  // first-registration order. entries_ is append-only, so a linear
  // "first time this name appears" scan preserves that order.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = *entries_[i];
    bool first_of_family = true;
    for (std::size_t j = 0; j < i; ++j) {
      if (entries_[j]->name == e.name) {
        first_of_family = false;
        break;
      }
    }
    if (!first_of_family) continue;
    const char* type = e.kind == Kind::kCounter  ? "counter"
                       : e.kind == Kind::kGauge ? "gauge"
                                                : "summary";
    out += "# HELP " + e.name + " " + e.help + "\n";
    out += "# TYPE " + e.name + " " + type + "\n";
    // All members of the family (same name, any labels), then for
    // histograms a companion <name>_max gauge family.
    std::string max_block;
    for (std::size_t j = i; j < entries_.size(); ++j) {
      const Entry& m = *entries_[j];
      if (m.name != e.name) continue;
      const std::string labels = format_labels(m.labels);
      switch (m.kind) {
        case Kind::kCounter:
          out += m.name + labels + " " + format_u64(m.c->value()) + "\n";
          break;
        case Kind::kGauge:
          out += m.name + labels + " " + format_double(m.g->value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot s = m.h->snapshot();
          for (std::size_t q = 0; q < 3; ++q) {
            const double v = s.count == 0 ? std::nan("") : s.quantile(kQuantiles[q]);
            out += m.name +
                   format_labels_plus(m.labels, "quantile", kQuantileLabels[q]) +
                   " " + format_double(v) + "\n";
          }
          out += m.name + "_sum" + labels + " " + format_double(s.sum) + "\n";
          out += m.name + "_count" + labels + " " + format_u64(s.count) + "\n";
          max_block += m.name + "_max" + labels + " " + format_double(s.max) + "\n";
          break;
        }
      }
    }
    if (!max_block.empty()) {
      out += "# HELP " + e.name + "_max Maximum observed value of " + e.name +
             "\n";
      out += "# TYPE " + e.name + "_max gauge\n";
      out += max_block;
    }
  }
  // Kernel layer: dispatch level chosen at startup plus per-kernel
  // tallies (zero unless built with PROBGRAPH_OBS).
  out += "# HELP probgraph_kernel_dispatch_level Kernel SIMD dispatch level "
         "resolved at startup (value is always 1; the level is the label)\n";
  out += "# TYPE probgraph_kernel_dispatch_level gauge\n";
  out += std::string("probgraph_kernel_dispatch_level{level=\"") +
         kernels::level_name(kernels::active_level()) + "\"} 1\n";
#if defined(PROBGRAPH_OBS) && PROBGRAPH_OBS
  constexpr int obs_on = 1;
#else
  constexpr int obs_on = 0;
#endif
  out += "# HELP probgraph_kernel_counters_enabled 1 when built with "
         "PROBGRAPH_OBS=ON (per-kernel tallies below are live)\n";
  out += "# TYPE probgraph_kernel_counters_enabled gauge\n";
  out += "probgraph_kernel_counters_enabled " + format_u64(obs_on) + "\n";
  out += "# HELP probgraph_kernel_invocations_total Dispatched set-operation "
         "kernel invocations\n";
  out += "# TYPE probgraph_kernel_invocations_total counter\n";
  for (std::size_t k = 0; k < kNumKernelOps; ++k) {
    out += std::string("probgraph_kernel_invocations_total{op=\"") +
           kKernelOpNames[k] + "\"} " +
           format_u64(g_kernel_counters.invocations[k].value()) + "\n";
  }
  out += "# HELP probgraph_kernel_elements_total Elements processed per "
         "kernel (list entries, bitvector words, or sketch slots)\n";
  out += "# TYPE probgraph_kernel_elements_total counter\n";
  for (std::size_t k = 0; k < kNumKernelOps; ++k) {
    out += std::string("probgraph_kernel_elements_total{op=\"") +
           kKernelOpNames[k] + "\"} " +
           format_u64(g_kernel_counters.elements[k].value()) + "\n";
  }
  return out;
}

std::string Registry::tab_text() const {
  std::string out;
  out.reserve(2048);
  const auto emit = [&out](const std::string& field) {
    if (!out.empty()) out += '\t';
    out += field;
  };
  {
    util::MutexLock lock(mu_);
    for (const auto& ep : entries_) {
      const Entry& e = *ep;
      const std::string labels = format_labels(e.labels);
      switch (e.kind) {
        case Kind::kCounter:
          emit(e.name + labels + "=" + format_u64(e.c->value()));
          break;
        case Kind::kGauge:
          emit(e.name + labels + "=" + format_double(e.g->value()));
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot s = e.h->snapshot();
          emit(e.name + "_count" + labels + "=" + format_u64(s.count));
          emit(e.name + "_sum" + labels + "=" + format_double(s.sum));
          if (s.count > 0) {
            emit(e.name + "_p50" + labels + "=" + format_double(s.quantile(0.5)));
            emit(e.name + "_p90" + labels + "=" + format_double(s.quantile(0.9)));
            emit(e.name + "_p99" + labels + "=" + format_double(s.quantile(0.99)));
            emit(e.name + "_max" + labels + "=" + format_double(s.max));
          }
          break;
        }
      }
    }
  }
  emit(std::string("probgraph_kernel_dispatch_level{level=\"") +
       kernels::level_name(kernels::active_level()) + "\"}=1");
  for (std::size_t k = 0; k < kNumKernelOps; ++k) {
    const std::uint64_t inv = g_kernel_counters.invocations[k].value();
    if (inv == 0) continue;  // one line: skip idle kernels
    emit(std::string("probgraph_kernel_invocations_total{op=\"") +
         kKernelOpNames[k] + "\"}=" + format_u64(inv));
    emit(std::string("probgraph_kernel_elements_total{op=\"") +
         kKernelOpNames[k] +
         "\"}=" + format_u64(g_kernel_counters.elements[k].value()));
  }
  return out;
}

std::string Registry::summary_text() const {
  std::string out;
  {
    util::MutexLock lock(mu_);
    for (const auto& ep : entries_) {
      const Entry& e = *ep;
      const std::string labels = format_labels(e.labels);
      switch (e.kind) {
        case Kind::kCounter: {
          const std::uint64_t v = e.c->value();
          if (v == 0) continue;
          out += "  " + e.name + labels + " = " + format_u64(v) + "\n";
          break;
        }
        case Kind::kGauge: {
          const double v = e.g->value();
          if (v == 0) continue;
          out += "  " + e.name + labels + " = " + format_double(v) + "\n";
          break;
        }
        case Kind::kHistogram: {
          const Histogram::Snapshot s = e.h->snapshot();
          if (s.count == 0) continue;
          out += "  " + e.name + labels + ": count=" + format_u64(s.count) +
                 " p50=" + format_double(s.quantile(0.5)) +
                 " p90=" + format_double(s.quantile(0.9)) +
                 " p99=" + format_double(s.quantile(0.99)) +
                 " max=" + format_double(s.max) +
                 " sum=" + format_double(s.sum) + "\n";
          break;
        }
      }
    }
  }
  out += std::string("  probgraph_kernel_dispatch_level = ") +
         kernels::level_name(kernels::active_level()) + "\n";
  for (std::size_t k = 0; k < kNumKernelOps; ++k) {
    const std::uint64_t inv = g_kernel_counters.invocations[k].value();
    if (inv == 0) continue;
    out += std::string("  kernel ") + kKernelOpNames[k] +
           ": invocations=" + format_u64(inv) +
           " elements=" + format_u64(g_kernel_counters.elements[k].value()) +
           "\n";
  }
  return out;
}

}  // namespace probgraph::obs
