// Metrics registry + exposition.
//
// The registry owns named, labeled instruments with stable addresses.
// Creation (get-or-create by name + label set) takes a mutex — it is a
// cold path, run once per instrument at first use; call sites cache the
// returned reference. Recording on an instrument never touches the
// registry again, so the query hot path stays lock-free (see
// instruments.hpp). Scrapes lock only the registry's instrument list
// (append-only), never any writer.
//
// Three exposition formats, one catalog:
//   prometheus_text()  — text format 0.0.4 for GET /metrics (histograms
//                        rendered summary-style with quantile labels).
//   tab_text()         — single-line, tab-separated name{labels}=value
//                        pairs for the `metrics` protocol verb.
//   summary_text()     — human-oriented multi-line digest (non-zero
//                        instruments only) for the shutdown report.
// All three also fold in the kernel counters (obs/kernel_metrics.hpp)
// and the kernel dispatch level.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/instruments.hpp"
#include "util/sync.hpp"

namespace probgraph::obs {

/// Label set, e.g. {{"type","tc"},{"mode","sketch"}}. Order is
/// preserved in exposition; identity comparison is order-sensitive, so
/// call sites should pass labels in one canonical order.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry {
 public:
  /// The process-wide registry every layer records into.
  static Registry& global();

  /// Get-or-create. Returned references stay valid for the registry's
  /// lifetime. Throws std::logic_error if the name+labels pair already
  /// exists as a different instrument type. Takes the creation lock —
  /// resolve instruments once and cache the reference; never call these
  /// on a hot path or while holding another serving-layer mutex.
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {}) EXCLUDES(mu_);
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {}) EXCLUDES(mu_);
  Histogram& histogram(std::string_view name, std::string_view help,
                       Labels labels = {}) EXCLUDES(mu_);

  /// Look up an existing counter without creating; nullptr if absent.
  /// (Tests use this to read deltas without guessing help strings.)
  [[nodiscard]] const Counter* find_counter(std::string_view name,
                                            const Labels& labels) const
      EXCLUDES(mu_);

  [[nodiscard]] std::string prometheus_text() const EXCLUDES(mu_);
  [[nodiscard]] std::string tab_text() const EXCLUDES(mu_);
  [[nodiscard]] std::string summary_text() const EXCLUDES(mu_);

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    Kind kind;
    // Exactly one is non-null, matching `kind`. unique_ptr keeps the
    // instrument address stable across entries_ reallocation.
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Entry& get_or_create(std::string_view name, std::string_view help,
                       Labels labels, Kind kind) EXCLUDES(mu_);

  /// The creation lock: guards the instrument LIST only. The instruments
  /// themselves are lock-free (instruments.hpp) and recorded into without
  /// ever touching mu_ — that split is the whole hot-path contract.
  mutable util::Mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
};

}  // namespace probgraph::obs
