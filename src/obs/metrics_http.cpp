#include "obs/metrics_http.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace probgraph::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8 * 1024;
constexpr int kClientPollTimeoutMs = 2000;

std::string http_response(int code, const char* reason,
                          const std::string& body, bool include_body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\n"
                    "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) +
                    "\r\n"
                    "Connection: close\r\n\r\n";
  if (include_body) out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(std::uint16_t port)
    : listener_(port, /*backlog=*/16) {
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("MetricsHttpServer: cannot create wake pipe");
  }
  ::fcntl(wake_pipe_[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(wake_pipe_[1], F_SETFD, FD_CLOEXEC);
}

MetricsHttpServer::~MetricsHttpServer() {
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void MetricsHttpServer::request_stop() noexcept {
  stop_.store(true);
  const char byte = 's';
  [[maybe_unused]] const auto rc = ::write(wake_pipe_[1], &byte, 1);
}

void MetricsHttpServer::handle(net::Socket& sock) {
  // Read until the end of the request head (CRLFCRLF), bounded in bytes
  // and in time — a stalled client gets dropped, not waited on.
  std::string req;
  while (req.find("\r\n\r\n") == std::string::npos &&
         req.find("\n\n") == std::string::npos &&
         req.size() < kMaxRequestBytes) {
    pollfd pfd{sock.fd(), POLLIN, 0};
    const int prc = ::poll(&pfd, 1, kClientPollTimeoutMs);
    if (prc <= 0) return;  // timeout or error: drop the connection
    char buf[2048];
    const long n = sock.read_some(buf, sizeof buf);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
    // A bare "GET /metrics\n" from a line-mode client (nc, /dev/tcp) is
    // accepted too once we have a full first line.
    if (req.find('\n') != std::string::npos) break;
  }
  const std::size_t eol = req.find_first_of("\r\n");
  if (eol == std::string::npos) return;
  const std::string line = req.substr(0, eol);

  const bool is_get = line.rfind("GET ", 0) == 0;
  const bool is_head = line.rfind("HEAD ", 0) == 0;
  if (!is_get && !is_head) {
    (void)sock.write_all(
        http_response(405, "Method Not Allowed", "method not allowed\n", true));
    return;
  }
  const std::size_t path_start = line.find(' ') + 1;
  const std::size_t path_end = line.find(' ', path_start);
  const std::string path = line.substr(
      path_start,
      path_end == std::string::npos ? std::string::npos : path_end - path_start);

  if (path == "/metrics" || path == "/") {
    const std::string body = Registry::global().prometheus_text();
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    (void)sock.write_all(http_response(200, "OK", body, is_get));
  } else {
    (void)sock.write_all(http_response(404, "Not Found", "not found\n", is_get));
  }
}

void MetricsHttpServer::run() {
  while (!stop_.load()) {
    pollfd fds[2] = {{listener_.fd(), POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || stop_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    net::Socket sock = listener_.accept();
    if (!sock.valid()) {
      if (stop_.load()) break;
      continue;
    }
    handle(sock);
    sock.shutdown_both();
  }
}

}  // namespace probgraph::obs
