// Minimal HTTP/1.0 scrape endpoint: GET /metrics returns the registry's
// Prometheus text exposition. Runs on its own thread next to the line-
// protocol server, over the same net:: socket primitives — the query
// protocol itself stays timing-free and byte-deterministic because the
// scrape surface is a different port entirely.
//
// Deliberately tiny: HTTP/1.0, Connection: close, one request per
// connection, connections handled sequentially (a scrape is a few
// hundred microseconds of formatting; Prometheus polls on the order of
// seconds). A client that connects and stalls is cut off by a short
// poll timeout so it cannot wedge the scrape loop.
#pragma once

#include <atomic>
#include <cstdint>

#include "net/socket.hpp"

namespace probgraph::obs {

class MetricsHttpServer {
 public:
  /// Binds immediately (port 0 = ephemeral; read back with port()).
  /// Throws std::runtime_error on bind failure.
  explicit MetricsHttpServer(std::uint16_t port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }

  /// Serve until request_stop(). Run on a dedicated thread.
  void run();

  /// Signal-safe stop: sets the flag and wakes the poll via a self-pipe.
  void request_stop() noexcept;

  [[nodiscard]] std::uint64_t scrapes_served() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void handle(net::Socket& sock);

  net::TcpListener listener_;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> scrapes_{0};
};

}  // namespace probgraph::obs
