// ArenaRef: an owned-or-mapped contiguous arena.
//
// The sketch arenas of ProbGraph and the offset/adjacency arrays of
// CsrGraph used to be plain std::vector members, which forced every load
// path to copy data into fresh heap allocations. The snapshot subsystem
// (src/io/) instead serves estimates straight out of an mmap'ed .pgs file,
// so the storage layer needs one type that can be either:
//
//   * owned   — a std::vector filled by the normal build path, or
//   * mapped  — a read-only view into externally owned memory (an mmap
//               region), kept alive by a type-erased shared handle.
//
// Reads go through the same data()/size()/operator[] regardless of source,
// so the backend structs in core/backends.hpp and all algorithm kernels are
// oblivious to where the bytes live. Mutation (assign / mutable_data) is
// only meaningful for owned arenas; the build paths reset to owned storage
// before writing.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace probgraph::util {

template <typename T>
class ArenaRef {
 public:
  ArenaRef() = default;

  /// Take ownership of a prebuilt vector.
  explicit ArenaRef(std::vector<T> v) noexcept : owned_(std::move(v)) {}

  /// View externally owned memory. `keepalive` (typically the
  /// shared_ptr<MappedFile> of the snapshot the view points into) is held
  /// for the lifetime of this ArenaRef and every copy of it.
  ArenaRef(std::span<const T> view, std::shared_ptr<const void> keepalive) noexcept
      : mapped_data_(view.data()),
        mapped_size_(view.size()),
        keepalive_(std::move(keepalive)) {}

  /// True when the arena views external (e.g. mmap'ed) memory.
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_data_ != nullptr; }

  [[nodiscard]] const T* data() const noexcept {
    return is_mapped() ? mapped_data_ : owned_.data();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return is_mapped() ? mapped_size_ : owned_.size();
  }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return size() * sizeof(T); }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data()[i]; }
  [[nodiscard]] const T& front() const noexcept { return data()[0]; }
  [[nodiscard]] const T& back() const noexcept { return data()[size() - 1]; }

  [[nodiscard]] std::span<const T> span() const noexcept { return {data(), size()}; }
  [[nodiscard]] const T* begin() const noexcept { return data(); }
  [[nodiscard]] const T* end() const noexcept { return data() + size(); }

  /// Reset to an owned arena of n copies of `value` (drops any mapping).
  void assign(std::size_t n, const T& value) {
    mapped_data_ = nullptr;
    mapped_size_ = 0;
    keepalive_.reset();
    owned_.assign(n, value);
  }

  /// Writable pointer into the owned storage. Calling this on a mapped
  /// arena is a programming error (the build paths always assign() first).
  [[nodiscard]] T* mutable_data() noexcept {
    assert(!is_mapped() && "ArenaRef: cannot mutate a mapped arena");
    return owned_.data();
  }

 private:
  // Exactly one source is active: owned_ when mapped_data_ is null, the
  // (mapped_data_, mapped_size_, keepalive_) view otherwise. Keeping the
  // discriminant implicit in mapped_data_ lets the defaulted copy/move
  // special members do the right thing for both states.
  std::vector<T> owned_;
  const T* mapped_data_ = nullptr;
  std::size_t mapped_size_ = 0;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace probgraph::util
