// Small ASCII string helpers shared by the CLI/protocol token parsers.
#pragma once

#include <string_view>

namespace probgraph::util {

/// ASCII-case-insensitive comparison (flag values and protocol keywords
/// are short ASCII tokens; no locale or UTF-8 semantics intended).
[[nodiscard]] inline bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto lower = [](char c) {
      return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
    };
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

}  // namespace probgraph::util
