#include "util/bitvector.hpp"

#include <bit>
#include <cassert>

namespace probgraph::util {

std::uint64_t and_popcount(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b) noexcept {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  // 4-way unroll: keeps four independent popcnt chains in flight.
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
    c1 += static_cast<std::uint64_t>(std::popcount(a[i + 1] & b[i + 1]));
    c2 += static_cast<std::uint64_t>(std::popcount(a[i + 2] & b[i + 2]));
    c3 += static_cast<std::uint64_t>(std::popcount(a[i + 3] & b[i + 3]));
  }
  for (; i < n; ++i) c0 += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  return c0 + c1 + c2 + c3;
}

std::uint64_t and3_popcount(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> c) noexcept {
  assert(a.size() == b.size() && b.size() == c.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<std::uint64_t>(std::popcount(a[i] & b[i] & c[i]));
  }
  return acc;
}

std::uint64_t or_popcount(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b) noexcept {
  assert(a.size() == b.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<std::uint64_t>(std::popcount(a[i] | b[i]));
  }
  return acc;
}

std::uint64_t popcount(std::span<const std::uint64_t> words) noexcept {
  std::uint64_t acc = 0;
  for (const std::uint64_t w : words) acc += static_cast<std::uint64_t>(std::popcount(w));
  return acc;
}

std::uint64_t BitVector::count_ones() const noexcept { return popcount(words_); }

BitVector& BitVector::operator&=(const BitVector& other) noexcept {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) noexcept {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

}  // namespace probgraph::util
