#include "util/bitvector.hpp"

#include <cassert>

#include "core/kernels/kernels.hpp"

// The word-combine + popcount reductions forward to the kernel layer
// (src/core/kernels/), which selects scalar/AVX2/AVX512/NEON once at
// startup. Counts are bit-identical across levels.

namespace probgraph::util {

std::uint64_t and_popcount(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b) noexcept {
  assert(a.size() == b.size());
  return kernels::and_popcount(a, b);
}

std::uint64_t and3_popcount(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> c) noexcept {
  assert(a.size() == b.size() && b.size() == c.size());
  return kernels::and3_popcount(a, b, c);
}

std::uint64_t or_popcount(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b) noexcept {
  assert(a.size() == b.size());
  return kernels::or_popcount(a, b);
}

std::uint64_t popcount(std::span<const std::uint64_t> words) noexcept {
  return kernels::popcount(words);
}

std::uint64_t BitVector::count_ones() const noexcept { return popcount(words_); }

BitVector& BitVector::operator&=(const BitVector& other) noexcept {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) noexcept {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

}  // namespace probgraph::util
