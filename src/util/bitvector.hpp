// Word-parallel bit vector: the storage backing Bloom filters.
//
// The paper's performance argument (§VI) is that BF intersection reduces to
// a bitwise AND over fixed-size bit vectors followed by a popcount
// reduction: "popcnt counts the number of 1-bits in one memory word in one
// CPU cycle". The kernels below operate on raw uint64_t word spans so that
// ProbGraph can lay all per-vertex filters out in a single arena and
// intersect any pair without materializing a result vector.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace probgraph::util {

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t words_for_bits(std::uint64_t bits) noexcept {
  return static_cast<std::size_t>((bits + kWordBits - 1) / kWordBits);
}

/// Popcount of the bitwise AND of two equal-length word spans.
/// This is the |X AND Y| primitive of Fig. 1 panel 3: O(B/W) work.
[[nodiscard]] std::uint64_t and_popcount(std::span<const std::uint64_t> a,
                                         std::span<const std::uint64_t> b) noexcept;

/// Popcount of the bitwise AND of three word spans (used by the BF variant
/// of 4-clique counting, which chains B_u AND B_v AND B_w).
[[nodiscard]] std::uint64_t and3_popcount(std::span<const std::uint64_t> a,
                                          std::span<const std::uint64_t> b,
                                          std::span<const std::uint64_t> c) noexcept;

/// Popcount of the bitwise OR of two equal-length word spans (used by the
/// OR-based estimator of [59], Eq. (29) of the paper's appendix).
[[nodiscard]] std::uint64_t or_popcount(std::span<const std::uint64_t> a,
                                        std::span<const std::uint64_t> b) noexcept;

/// Popcount over a word span.
[[nodiscard]] std::uint64_t popcount(std::span<const std::uint64_t> words) noexcept;

/// Owning fixed-width bit vector.
class BitVector {
 public:
  BitVector() = default;

  /// Create an all-zeros vector of exactly `bits` bits.
  explicit BitVector(std::uint64_t bits)
      : num_bits_(bits), words_(words_for_bits(bits), 0) {}

  [[nodiscard]] std::uint64_t size_bits() const noexcept { return num_bits_; }
  [[nodiscard]] std::size_t size_words() const noexcept { return words_.size(); }
  [[nodiscard]] bool empty() const noexcept { return num_bits_ == 0; }

  void set(std::uint64_t i) noexcept {
    words_[i / kWordBits] |= (std::uint64_t{1} << (i % kWordBits));
  }
  void reset(std::uint64_t i) noexcept {
    words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
  }
  [[nodiscard]] bool test(std::uint64_t i) const noexcept {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1U;
  }

  /// Number of set bits (the paper's B_{X,1}).
  [[nodiscard]] std::uint64_t count_ones() const noexcept;
  /// Number of zero bits (the paper's B_{X,0}).
  [[nodiscard]] std::uint64_t count_zeros() const noexcept {
    return num_bits_ - count_ones();
  }

  void clear() noexcept { std::fill(words_.begin(), words_.end(), 0); }

  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }
  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }

  /// In-place AND with another vector of the same width.
  BitVector& operator&=(const BitVector& other) noexcept;
  /// In-place OR with another vector of the same width.
  BitVector& operator|=(const BitVector& other) noexcept;

  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  std::uint64_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace probgraph::util
