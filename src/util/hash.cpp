#include "util/hash.hpp"

#include <bit>
#include <cstring>

namespace probgraph::util {

namespace {

constexpr std::uint32_t fmix32(std::uint32_t h) noexcept {
  h ^= h >> 16;
  h *= 0x85ebca6bU;
  h ^= h >> 13;
  h *= 0xc2b2ae35U;
  h ^= h >> 16;
  return h;
}

}  // namespace

std::uint32_t murmur3_x86_32(const void* key, std::size_t len, std::uint32_t seed) noexcept {
  const auto* data = static_cast<const std::uint8_t*>(key);
  const std::size_t nblocks = len / 4;

  std::uint32_t h1 = seed;
  constexpr std::uint32_t c1 = 0xcc9e2d51U;
  constexpr std::uint32_t c2 = 0x1b873593U;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint32_t k1;
    std::memcpy(&k1, data + i * 4, 4);
    k1 *= c1;
    k1 = std::rotl(k1, 15);
    k1 *= c2;
    h1 ^= k1;
    h1 = std::rotl(h1, 13);
    h1 = h1 * 5 + 0xe6546b64U;
  }

  const std::uint8_t* tail = data + nblocks * 4;
  std::uint32_t k1 = 0;
  switch (len & 3U) {
    case 3:
      k1 ^= static_cast<std::uint32_t>(tail[2]) << 16;
      [[fallthrough]];
    case 2:
      k1 ^= static_cast<std::uint32_t>(tail[1]) << 8;
      [[fallthrough]];
    case 1:
      k1 ^= tail[0];
      k1 *= c1;
      k1 = std::rotl(k1, 15);
      k1 *= c2;
      h1 ^= k1;
      break;
    default:
      break;
  }

  h1 ^= static_cast<std::uint32_t>(len);
  return fmix32(h1);
}

}  // namespace probgraph::util
