// Seeded hash functions used by every sketch in ProbGraph.
//
// The paper (§VI-C) uses MurmurHash3 [106] "well-known for its speed and
// simplicity". We provide:
//   * murmur3_x86_32  — the reference 32-bit MurmurHash3 over byte buffers,
//   * murmur3_fmix64  — the 64-bit finalizer (a high-quality bijective
//                       mixer), which is what the sketch hot paths use to
//                       hash a (vertex, seed) pair in a handful of cycles,
//   * HashFamily      — an indexed family h_1..h_b of independent-seeming
//                       hash functions derived from one 64-bit seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace probgraph::util {

/// Reference MurmurHash3 x86_32 over an arbitrary byte buffer.
std::uint32_t murmur3_x86_32(const void* key, std::size_t len, std::uint32_t seed) noexcept;

/// MurmurHash3 64-bit finalizer (fmix64). Bijective on 64-bit integers.
constexpr std::uint64_t murmur3_fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Hash a 64-bit value under a 64-bit seed. This is the workhorse of all
/// sketches: one multiply-xor chain, no memory traffic.
constexpr std::uint64_t hash64(std::uint64_t x, std::uint64_t seed) noexcept {
  return murmur3_fmix64(x + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// Map a 64-bit hash to the real interval (0, 1]. Used by KMV sketches,
/// whose estimator (k-1)/max needs hashes "uniform at random in (0,1]".
constexpr double hash_to_unit(std::uint64_t h) noexcept {
  // 2^-64 * (h + 1): h = 0 maps to 2^-64 > 0 and h = 2^64-1 maps to 1.
  return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

/// An indexed family of hash functions h_i, i in [0, count). Each member is
/// hash64 under a distinct derived seed, which is the standard practical
/// stand-in for the paper's "b independent hash functions" assumption.
class HashFamily {
 public:
  HashFamily() = default;
  explicit HashFamily(std::uint64_t seed) noexcept : seed_(seed) {}

  /// Evaluate member i on x.
  [[nodiscard]] std::uint64_t operator()(std::uint32_t i, std::uint64_t x) const noexcept {
    return hash64(x, murmur3_fmix64(seed_ ^ (0xa0761d6478bd642fULL * (i + 1))));
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_ = 0x5eed'c0de'd00d'f00dULL;
};

}  // namespace probgraph::util
