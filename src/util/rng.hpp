// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (graph generators, edge
// sampling baselines, link-prediction sparsification, bootstrap CIs) draws
// from these generators under an explicit 64-bit seed, so that every
// experiment in EXPERIMENTS.md is exactly reproducible.
#pragma once

#include <bit>
#include <cstdint>

namespace probgraph::util {

/// SplitMix64: used to seed Xoshiro and as a cheap stateless stream.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality generator for bulk sampling.
/// Satisfies the UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    const std::uint64_t x = (*this)();
    __extension__ using Uint128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<Uint128>(x) * bound) >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  std::uint64_t state_[4];
};

}  // namespace probgraph::util
