#include "util/special_functions.hpp"

#include <cmath>
#include <limits>

namespace probgraph::util {

double log_beta(double a, double b) noexcept {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

namespace {

// Continued-fraction for the incomplete beta (Numerical Recipes `betacf`,
// modified Lentz's method).
double betacf(double a, double b, double x) noexcept {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  const double tiny = std::numeric_limits<double>::min() * 1e10;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < tiny) d = tiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const auto dm = static_cast<double>(m);
    const double m2 = 2.0 * dm;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < tiny) d = tiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < tiny) d = tiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double reg_inc_beta(double a, double b, double x) noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = a * std::log(x) + b * std::log1p(-x) - log_beta(a, b);
  const double front = std::exp(ln_front);
  // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to keep the continued
  // fraction in its fast-converging regime.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double binomial_cdf(double k, double n, double p) noexcept {
  if (k < 0.0) return 0.0;
  const double kf = std::floor(k);
  if (kf >= n) return 1.0;
  // P[X <= k] = I_{1-p}(n - k, k + 1).
  return reg_inc_beta(n - kf, kf + 1.0, 1.0 - p);
}

}  // namespace probgraph::util
