// Special functions needed by the KMV concentration bounds.
//
// Proposition A.7 of the paper expresses the deviation probability of the
// KMV size estimator through the regularized incomplete beta function
// I_x(a, b) (the k-th smallest of |X| uniform hashes is Beta(k, |X|-k+1)
// distributed). We implement I_x via the standard continued-fraction
// expansion (Lentz's algorithm), accurate to ~1e-14 over the full domain.
#pragma once

namespace probgraph::util {

/// Natural log of the beta function B(a, b) = Γ(a)Γ(b)/Γ(a+b).
[[nodiscard]] double log_beta(double a, double b) noexcept;

/// Regularized incomplete beta function I_x(a, b) for a, b > 0, x in [0, 1].
[[nodiscard]] double reg_inc_beta(double a, double b, double x) noexcept;

/// CDF of the Beta(a, b) distribution at x (alias of reg_inc_beta).
[[nodiscard]] inline double beta_cdf(double x, double a, double b) noexcept {
  return reg_inc_beta(a, b, x);
}

/// CDF of the Binomial(n, p) distribution at k (P[X <= k]), computed through
/// the incomplete-beta identity. Used by tests validating the k-hash model
/// |M_X ∩ M_Y| ~ Bin(k, J).
[[nodiscard]] double binomial_cdf(double k, double n, double p) noexcept;

}  // namespace probgraph::util
