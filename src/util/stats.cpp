#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace probgraph::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

BoxStats box_stats(std::vector<double> xs) {
  BoxStats s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  auto interp = [&](double q) {
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
  };
  s.q1 = interp(0.25);
  s.median = interp(0.5);
  s.q3 = interp(0.75);
  return s;
}

MeanCi bootstrap_mean_ci(std::span<const double> xs, int resamples, std::uint64_t seed) {
  MeanCi ci;
  ci.mean = mean(xs);
  if (xs.size() < 2) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }
  Xoshiro256 rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      acc += xs[rng.bounded(xs.size())];
    }
    means.push_back(acc / static_cast<double>(xs.size()));
  }
  std::sort(means.begin(), means.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(means.size() - 1));
    return means[idx];
  };
  ci.lo = at(0.025);
  ci.hi = at(0.975);
  return ci;
}

}  // namespace probgraph::util
