// Descriptive statistics and nonparametric confidence intervals.
//
// The evaluation methodology (§VIII-A) follows Hoefler & Belli [109]:
// report means with 95% *nonparametric* confidence intervals and summarize
// relative-error distributions with boxplots (Fig. 3). This module provides
// exactly those summaries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace probgraph::util {

/// Five-number boxplot summary plus mean (Fig. 3 uses boxplots of relative
/// differences over all adjacent vertex pairs).
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
  std::size_t count = 0;
};

/// 95% confidence interval on the mean.
struct MeanCi {
  double mean = 0;
  double lo = 0;
  double hi = 0;
};

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double variance(std::span<const double> xs) noexcept;  // sample variance
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Quantile via linear interpolation of the order statistics (type-7,
/// the same convention as numpy's default). q must be in [0, 1].
[[nodiscard]] double quantile(std::vector<double> xs, double q);

[[nodiscard]] BoxStats box_stats(std::vector<double> xs);

/// Percentile-bootstrap 95% CI on the mean (the "nonparametric confidence
/// intervals" of the benchmarking methodology). Deterministic under `seed`.
[[nodiscard]] MeanCi bootstrap_mean_ci(std::span<const double> xs,
                                       int resamples = 1000,
                                       std::uint64_t seed = 42);

}  // namespace probgraph::util
