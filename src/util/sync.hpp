// Annotated synchronization primitives: std::mutex semantics, visible to
// Clang's thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so `GUARDED_BY(some_std_mutex)` checks nothing. These thin wrappers are
// the project's lockable types: every mutex-protected structure (Engine's
// lazy caches, LiveEngine's writer/slot state, the transports' run-queue
// and session tables, obs::Registry's instrument list) declares a
// util::Mutex and annotates the fields it guards, and the CI Clang leg
// compiles src/ with -Wthread-safety -Werror so an unguarded access is a
// build break. Zero-cost: both types compile to exactly the std::mutex /
// std::lock_guard code they wrap.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace probgraph::util {

/// std::mutex with the CAPABILITY attribute: the object named by
/// GUARDED_BY/REQUIRES annotations. Not recursive, not timed — exactly
/// the subset the serving stack uses.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::lock_guard over a Mutex, visible to the analysis as a scoped
/// capability: construction acquires, destruction releases, and the
/// guarded fields are accessible exactly within the scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with util::Mutex. wait() REQUIRES the mutex
/// — the analysis checks the caller holds it — and internally adopts the
/// already-held native handle so the std wait/relock machinery runs
/// unannotated (the lock state on return is the same as on entry, which
/// is exactly what the analysis assumes).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();  // still held; MutexLock/caller owns the unlock
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace probgraph::util
