// Clang thread-safety-analysis attribute macros.
//
// These turn the prose concurrency contracts (engine.hpp "Thread safety",
// the QSBR protocol in engine/generation.hpp, the reactor's one-mutex
// state machine in net/reactor.hpp, obs::Registry's creation lock) into
// machine-checked invariants: under Clang with -Wthread-safety (the CI
// `clang-thread-safety` job compiles all of src/ with -Werror), reading a
// GUARDED_BY field without its mutex, calling a REQUIRES function
// unlocked, or forgetting a RELEASE path is a COMPILE ERROR, not a TSan
// roll of the dice. On every other compiler the macros expand to nothing.
//
// Annotate with the wrapper types in util/sync.hpp (util::Mutex,
// util::MutexLock) — std::mutex carries no capability attributes on
// libstdc++, so the analysis cannot see through it.
//
// Negative-compile tests (tests/negative_compile/, wired through CMake
// try_compile) pin that these annotations are live, not decorative: a
// seeded guarded-field misuse must FAIL the Clang leg.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define PROBGRAPH_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PROBGRAPH_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC have no analysis
#endif

/// A type that is a lock/capability (util::Mutex).
#define CAPABILITY(x) PROBGRAPH_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires a capability at construction and releases it
/// at destruction (util::MutexLock).
#define SCOPED_CAPABILITY PROBGRAPH_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the named mutex held.
#define GUARDED_BY(x) PROBGRAPH_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose POINTEE is guarded by the named mutex.
#define PT_GUARDED_BY(x) PROBGRAPH_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only with the named mutex(es) already held.
#define REQUIRES(...) \
  PROBGRAPH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the named mutex(es) and returns holding them.
#define ACQUIRE(...) PROBGRAPH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the named mutex(es).
#define RELEASE(...) PROBGRAPH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the mutex iff it returns `ret`.
#define TRY_ACQUIRE(ret, ...) \
  PROBGRAPH_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called with the named mutex(es) held
/// (deadlock guard for self-locking entry points).
#define EXCLUDES(...) PROBGRAPH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define ASSERT_CAPABILITY(x) PROBGRAPH_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the named capability.
#define RETURN_CAPABILITY(x) PROBGRAPH_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch — every use needs a comment saying WHY the analysis is
/// wrong or out of scope (tools/lint/check_layout.py does not police this,
/// but reviewers do).
#define NO_THREAD_SAFETY_ANALYSIS \
  PROBGRAPH_THREAD_ANNOTATION(no_thread_safety_analysis)
