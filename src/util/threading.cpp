#include "util/threading.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace probgraph::util {

#ifdef _OPENMP

int max_threads() noexcept { return omp_get_max_threads(); }

void set_threads(int n) noexcept {
  if (n > 0) omp_set_num_threads(n);
}

int thread_id() noexcept { return omp_get_thread_num(); }

#else  // serial fallbacks for -DPROBGRAPH_OPENMP=OFF (e.g. the TSan build)

int max_threads() noexcept { return 1; }

void set_threads(int) noexcept {}

int thread_id() noexcept { return 0; }

#endif

}  // namespace probgraph::util
