#include "util/threading.hpp"

#include <omp.h>

namespace probgraph::util {

int max_threads() noexcept { return omp_get_max_threads(); }

void set_threads(int n) noexcept {
  if (n > 0) omp_set_num_threads(n);
}

int thread_id() noexcept { return omp_get_thread_num(); }

}  // namespace probgraph::util
