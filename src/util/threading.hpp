// Thin wrapper over the OpenMP runtime.
//
// Keeping the #include <omp.h> in one translation unit lets the rest of the
// library stay header-clean and makes thread-count plumbing (the scaling
// benches sweep 1..2^k threads) explicit and testable.
#pragma once

namespace probgraph::util {

/// Maximum number of threads OpenMP will use for the next parallel region.
int max_threads() noexcept;

/// Set the number of threads for subsequent parallel regions.
void set_threads(int n) noexcept;

/// Thread id inside a parallel region (0 outside of one).
int thread_id() noexcept;

/// RAII guard that sets the OpenMP thread count and restores the previous
/// value on scope exit. Used by the scaling benches.
class ThreadScope {
 public:
  explicit ThreadScope(int n) noexcept : saved_(max_threads()) { set_threads(n); }
  ~ThreadScope() { set_threads(saved_); }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_;
};

}  // namespace probgraph::util
