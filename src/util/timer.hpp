// Wall-clock timing for benchmark harnesses.
#pragma once

#include <chrono>

namespace probgraph::util {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace probgraph::util
