// Fundamental integer types shared across the ProbGraph library.
#pragma once

#include <cstdint>

namespace probgraph {

/// Vertex identifier. Graphs are modeled as V = {0, ..., n-1} (the paper
/// uses 1-based IDs; we use 0-based throughout).
using VertexId = std::uint32_t;

/// Index into the CSR adjacency array; also used for (directed) edge counts.
/// 64-bit so that graphs with more than 2^32 directed edges are supported.
using EdgeId = std::uint64_t;

/// Size of a memory word in bits (the paper's W). All bit-vector kernels
/// operate on 64-bit words; SIMD widening is left to the auto-vectorizer.
inline constexpr unsigned kWordBits = 64;

}  // namespace probgraph
