// Positive control for guarded_misuse.cpp: the identical guarded access,
// done correctly under a scoped MutexLock. This TU must compile under
// every compiler and flag set the negative test uses — if it does not,
// the negative test's failure proves nothing (the toolchain is broken,
// not the misuse caught), and CMake aborts the configure saying so.
#include "util/sync.hpp"

namespace {

struct Account {
  probgraph::util::Mutex mu;
  int balance GUARDED_BY(mu) = 0;
};

int read_locked(Account& account) {
  probgraph::util::MutexLock lock(account.mu);
  return account.balance;
}

}  // namespace

int main() {
  Account account;
  return read_locked(account);
}
