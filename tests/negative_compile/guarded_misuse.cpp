// MUST NOT COMPILE under Clang -Wthread-safety -Werror.
//
// This TU reads a GUARDED_BY field without holding its mutex — the exact
// bug class the annotations in src/ exist to catch. CMake try_compile runs
// it at configure time (tests/negative_compile/CMakeLists snippet in the
// top-level CMakeLists.txt) and FAILS THE CONFIGURE if this file builds,
// which is the liveness proof for the whole annotation scheme: if the
// analysis ever stops firing (a broken macro, a compiler flag typo, a
// wrapper regression), the seeded misuse compiles and the build breaks
// loudly instead of the checks rotting silently.
//
// guarded_control.cpp is the matching positive control: the same access
// under a MutexLock, which must ALWAYS compile — so a failure here is
// attributable to the analysis, not to some unrelated breakage.
#include "util/sync.hpp"

namespace {

struct Account {
  probgraph::util::Mutex mu;
  int balance GUARDED_BY(mu) = 0;
};

int read_unlocked(Account& account) {
  return account.balance;  // unguarded read: -Wthread-safety error
}

}  // namespace

int main() {
  Account account;
  return read_unlocked(account);
}
