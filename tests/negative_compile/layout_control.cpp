// Positive control for layout_drift.cpp: the format headers as shipped
// must compile cleanly (all layout pins hold on this target). A failure
// here means the real layout drifted — the exact condition the pins
// guard — or the target ABI disagrees with the frozen LP64 little-endian
// layout; either way the configure stops.
#include "io/snapshot_format.hpp"
#include "live/delta_format.hpp"

int main() {
  return static_cast<int>(sizeof(probgraph::io::snapshot_format::FileHeader) +
                          sizeof(probgraph::live::delta_format::FileHeader));
}
