// MUST NOT COMPILE under ANY compiler.
//
// PROBGRAPH_LAYOUT_DRIFT_CANARY injects one extra field into the frozen
// .pgs FileHeader (io/snapshot_format.hpp), simulating exactly the kind
// of accidental layout drift the static_assert pins exist to stop. CMake
// try_compile runs this at configure time and fails the configure if it
// BUILDS — proving the sizeof/offsetof pins are live, firing asserts, not
// decorative comments. layout_control.cpp compiles the same header
// without the canary and must always pass.
#define PROBGRAPH_LAYOUT_DRIFT_CANARY 1
#include "io/snapshot_format.hpp"

int main() {
  return static_cast<int>(sizeof(probgraph::io::snapshot_format::FileHeader));
}
