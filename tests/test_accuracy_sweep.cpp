// Cross-cutting accuracy properties of the ProbGraph estimators: sweeps
// over (representation × budget × graph family) asserting the qualitative
// laws the paper's evaluation rests on — consistency in the budget, the
// ≤ budget memory envelope, and sane aggregate accuracy on both regular
// (Watts–Strogatz) and skewed (Kronecker) inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/intersect.hpp"
#include "core/prob_graph.hpp"
#include "graph/generators.hpp"

namespace probgraph {
namespace {

double aggregate_relative_estimate(const CsrGraph& g, const ProbGraph& pg) {
  double exact = 0.0, est = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u <= v) continue;
      exact += static_cast<double>(intersect_size_merge(g.neighbors(v), g.neighbors(u)));
      est += pg.est_intersection(v, u);
    }
  }
  return exact == 0.0 ? 1.0 : est / exact;
}

using SweepParam = std::tuple<SketchKind, double>;  // (kind, budget)

class AccuracySweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static ProbGraphConfig config(SketchKind kind, double budget, std::uint64_t seed) {
    ProbGraphConfig cfg;
    cfg.kind = kind;
    cfg.storage_budget = budget;
    cfg.bf_hashes = 1;
    cfg.seed = seed;
    return cfg;
  }
};

TEST_P(AccuracySweep, MemoryEnvelopeHolds) {
  const auto [kind, budget] = GetParam();
  const CsrGraph g = gen::watts_strogatz(3000, 20, 0.2, 5);
  const ProbGraph pg(g, config(kind, budget, 1));
  // Word/entry rounding can exceed tiny budgets; allow one word per vertex
  // of slack on top of 15%.
  const double slack =
      1.15 * budget + 16.0 * g.num_vertices() / static_cast<double>(g.memory_bytes());
  EXPECT_LE(pg.relative_memory(), slack) << to_string(kind) << " s=" << budget;
}

TEST_P(AccuracySweep, AggregateEstimateIsCalibratedOnRegularGraphs) {
  const auto [kind, budget] = GetParam();
  if (budget < 0.2) GTEST_SKIP() << "below the paper's evaluated budget range";
  const CsrGraph g = gen::watts_strogatz(3000, 20, 0.2, 5);
  // Average across builds: single-hash representations correlate errors
  // within one build (see test_triangle_count.cpp).
  double rel = 0.0;
  constexpr int kSeeds = 3;
  for (int s = 0; s < kSeeds; ++s) {
    const ProbGraph pg(g, config(kind, budget, 10 + s));
    rel += aggregate_relative_estimate(g, pg);
  }
  rel /= kSeeds;
  EXPECT_GT(rel, 0.55) << to_string(kind) << " s=" << budget;
  EXPECT_LT(rel, 1.45) << to_string(kind) << " s=" << budget;
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndBudgets, AccuracySweep,
    ::testing::Combine(::testing::Values(SketchKind::kBloomFilter, SketchKind::kKHash,
                                         SketchKind::kOneHash, SketchKind::kKmv),
                       ::testing::Values(0.1, 0.25, 0.33, 0.5)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_s" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

class BudgetMonotonicity : public ::testing::TestWithParam<SketchKind> {};

TEST_P(BudgetMonotonicity, ErrorShrinksWithBudget) {
  // Consistency (§II-F): larger sketches → estimates closer to the truth.
  // Checked on the aggregate across three builds per budget.
  const CsrGraph g = gen::kronecker(10, 16.0, 9);
  auto mean_abs_error = [&](double budget) {
    double err = 0.0;
    constexpr int kSeeds = 3;
    for (int s = 0; s < kSeeds; ++s) {
      ProbGraphConfig cfg;
      cfg.kind = GetParam();
      cfg.storage_budget = budget;
      cfg.bf_hashes = 1;
      cfg.seed = 20 + s;
      const ProbGraph pg(g, cfg);
      err += std::abs(aggregate_relative_estimate(g, pg) - 1.0);
    }
    return err / kSeeds;
  };
  EXPECT_LT(mean_abs_error(1.5), mean_abs_error(0.08) + 1e-9) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BudgetMonotonicity,
                         ::testing::Values(SketchKind::kBloomFilter, SketchKind::kKHash,
                                           SketchKind::kOneHash, SketchKind::kKmv),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace probgraph
