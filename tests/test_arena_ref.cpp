// util::ArenaRef — the owned-or-mapped arena underneath CsrGraph and the
// ProbGraph sketch storage. The properties that matter: reads are identical
// for both memory sources, mapped views keep their backing memory alive
// through the type-erased keepalive, and copies of owned arenas are
// independent (a copy must never alias the source vector's heap buffer).
#include "util/arena_ref.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

namespace probgraph::util {
namespace {

TEST(ArenaRef, DefaultConstructedIsEmptyAndOwned) {
  const ArenaRef<std::uint64_t> a;
  EXPECT_FALSE(a.is_mapped());
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.size_bytes(), 0u);
}

TEST(ArenaRef, OwnedVectorReads) {
  ArenaRef<int> a(std::vector<int>{3, 1, 4, 1, 5});
  EXPECT_FALSE(a.is_mapped());
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a[0], 3);
  EXPECT_EQ(a.front(), 3);
  EXPECT_EQ(a.back(), 5);
  EXPECT_EQ(a.span().size(), 5u);
  int sum = 0;
  for (const int x : a) sum += x;
  EXPECT_EQ(sum, 14);
}

TEST(ArenaRef, AssignProducesWritableOwnedStorage) {
  ArenaRef<int> a;
  a.assign(4, 7);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[2], 7);
  a.mutable_data()[2] = 9;
  EXPECT_EQ(a[2], 9);
}

TEST(ArenaRef, MappedViewKeepsBackingMemoryAlive) {
  auto backing = std::make_shared<std::vector<int>>(std::vector<int>{10, 20, 30});
  ArenaRef<int> a(std::span<const int>(backing->data(), backing->size()), backing);
  EXPECT_TRUE(a.is_mapped());
  EXPECT_EQ(backing.use_count(), 2);

  ArenaRef<int> copy = a;  // copies share the keepalive, not the data
  EXPECT_EQ(backing.use_count(), 3);
  EXPECT_EQ(copy.data(), a.data());

  backing.reset();  // the views alone must keep the buffer alive
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], 10);
  EXPECT_EQ(copy[2], 30);
}

TEST(ArenaRef, AssignDropsMapping) {
  auto backing = std::make_shared<std::vector<int>>(std::vector<int>{1, 2});
  ArenaRef<int> a(std::span<const int>(backing->data(), backing->size()), backing);
  a.assign(1, 42);
  EXPECT_FALSE(a.is_mapped());
  EXPECT_EQ(backing.use_count(), 1);  // keepalive released
  EXPECT_EQ(a[0], 42);
}

TEST(ArenaRef, CopiesOfOwnedArenasAreIndependent) {
  ArenaRef<int> a(std::vector<int>{1, 2, 3});
  ArenaRef<int> b = a;
  ASSERT_NE(a.data(), b.data());
  a.mutable_data()[1] = 99;
  EXPECT_EQ(a[1], 99);
  EXPECT_EQ(b[1], 2);
}

TEST(ArenaRef, MoveTransfersOwnedStorageWithoutCopying) {
  ArenaRef<int> a(std::vector<int>{5, 6, 7});
  const int* const before = a.data();
  const ArenaRef<int> b = std::move(a);
  EXPECT_EQ(b.data(), before);  // vector move: same heap buffer
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[2], 7);
}

}  // namespace
}  // namespace probgraph::util
