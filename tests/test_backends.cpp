// The static-dispatch backend layer (core/backends.hpp).
//
// The load-bearing guarantee: hoisting the sketch dispatch out of the inner
// loops must not change a single bit of any estimate. Golden values below
// were captured from the pre-refactor ProbGraph::est_intersection (the
// per-call nested switch) on a fixed-seed Kronecker graph and are asserted
// bit-identically against the visit_backend path for every SketchKind ×
// BfEstimator combination.
#include "core/backends.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"

namespace probgraph {
namespace {

struct Combo {
  SketchKind kind;
  BfEstimator estimator;  // only meaningful for kBloomFilter
};

std::vector<Combo> all_combos() {
  return {{SketchKind::kBloomFilter, BfEstimator::kAnd},
          {SketchKind::kBloomFilter, BfEstimator::kLimit},
          {SketchKind::kBloomFilter, BfEstimator::kOr},
          {SketchKind::kKHash, BfEstimator::kAnd},
          {SketchKind::kOneHash, BfEstimator::kAnd},
          {SketchKind::kKmv, BfEstimator::kAnd}};
}

std::string combo_name(const Combo& c) {
  std::string name = to_string(c.kind);
  if (c.kind == SketchKind::kBloomFilter) {
    name += "_";
    name += to_string(c.estimator);
  }
  return name;
}

// The golden fixture: gen::kronecker(9, 24.0, 123), storage budget 0.75,
// bf_hashes 2, sketch seed 7; pairs are the first 8 (v < u) edges.
CsrGraph golden_graph() { return gen::kronecker(9, 24.0, 123); }

ProbGraphConfig golden_config(const Combo& c) {
  ProbGraphConfig cfg;
  cfg.kind = c.kind;
  cfg.bf_estimator = c.estimator;
  cfg.storage_budget = 0.75;
  cfg.bf_hashes = 2;
  cfg.seed = 7;
  return cfg;
}

constexpr std::pair<VertexId, VertexId> kGoldenPairs[] = {
    {0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}};

struct GoldenRow {
  Combo combo;
  double values[8];
};

// Captured from the pre-refactor per-call-switch est_intersection.
const GoldenRow kGolden[] = {
    {{SketchKind::kBloomFilter, BfEstimator::kAnd},
     {0x1.6767c37b79befp+7, 0x1.606e061b4ef34p+7, 0x1.8de8607a19c9cp+6,
      0x1.63e875f8dbd34p+7, 0x1.830983df5563bp+6, 0x1.961f24b84e78fp+6,
      0x1.5effe4fbeae2fp+5, 0x1.5101e18971ad9p+7}},
    {{SketchKind::kBloomFilter, BfEstimator::kLimit},
     {0x1.13p+7, 0x1.0fp+7, 0x1.56p+6, 0x1.11p+7, 0x1.4ep+6, 0x1.5cp+6, 0x1.48p+5,
      0x1.06p+7}},
    {{SketchKind::kBloomFilter, BfEstimator::kOr},
     {0x1.80ee2efe66102p+7, 0x1.6b07f7cc3d12cp+7, 0x1.9e8270841ac28p+6,
      0x1.7210dd9323948p+7, 0x1.8aee65fdc919p+6, 0x1.b025254a6a338p+6,
      0x1.abcd0ddbbdbbp+5, 0x1.5107f7cc3d12cp+7}},
    {{SketchKind::kKHash, BfEstimator::kAnd},
     {0x1.7abffffffffffp+7, 0x1.22db6db6db6dcp+7, 0x1.77b13b13b13b1p+6,
      0x1.7c3ffffffffffp+7, 0x1.0eaaaaaaaaaabp+6, 0x1.1400000000001p+6,
      0x1.d6aaaaaaaaaacp+5, 0x1.1b6db6db6db6ep+7}},
    {{SketchKind::kOneHash, BfEstimator::kAnd},
     {0x1.7abffffffffffp+7, 0x1.7dbffffffffffp+7, 0x1.d124924924926p+6,
      0x1.c2aaaaaaaaaabp+7, 0x1.0eaaaaaaaaaabp+6, 0x1.7p+7, 0x0p+0,
      0x1.73fffffffffffp+7}},
    {{SketchKind::kKmv, BfEstimator::kAnd},
     {0x1.b00e8e2c3034p+5, 0x1.d00e8e2c3034p+5, 0x0p+0, 0x1.c00e8e2c3034p+5, 0x0p+0,
      0x0p+0, 0x0p+0, 0x1.680e8e2c3034p+5}},
};

TEST(Backends, GoldenValuesMatchPreRefactorDispatch) {
  const CsrGraph g = golden_graph();
  for (const GoldenRow& row : kGolden) {
    const ProbGraph pg(g, golden_config(row.combo));
    for (std::size_t i = 0; i < std::size(kGoldenPairs); ++i) {
      const auto [u, v] = kGoldenPairs[i];
      // Bit-identical: the refactor relocated the arithmetic, it must not
      // have changed it.
      EXPECT_EQ(pg.est_intersection(u, v), row.values[i])
          << combo_name(row.combo) << " pair (" << u << ", " << v << ")";
    }
  }
}

TEST(Backends, VisitorMatchesWrapperOnEveryEdge) {
  const CsrGraph g = golden_graph();
  for (const Combo& c : all_combos()) {
    const ProbGraph pg(g, golden_config(c));
    pg.visit_backend([&](const auto& be) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        for (const VertexId u : g.neighbors(v)) {
          if (u <= v) continue;
          ASSERT_EQ(be.est_intersection(v, u), pg.est_intersection(v, u))
              << combo_name(c) << " edge (" << v << ", " << u << ")";
        }
      }
    });
  }
}

TEST(Backends, VisitorSelectsMatchingBackendType) {
  const CsrGraph g = gen::complete(16);
  for (const Combo& c : all_combos()) {
    const ProbGraph pg(g, golden_config(c));
    pg.visit_backend([&](const auto& be) {
      using Backend = std::decay_t<decltype(be)>;
      EXPECT_EQ(Backend::kKind, c.kind);
      if constexpr (Backend::kKind == SketchKind::kBloomFilter) {
        EXPECT_EQ(Backend::kEstimator, c.estimator);
      }
    });
  }
}

TEST(Backends, TypedAccessorMatchesVisitor) {
  const CsrGraph g = gen::complete(32);
  ProbGraphConfig cfg;
  cfg.storage_budget = 0.5;
  const ProbGraph pg(g, cfg);
  const auto be = pg.backend<BloomAndBackend>();
  EXPECT_EQ(be.est_intersection(0, 1), pg.est_intersection(0, 1));
  EXPECT_EQ(be.bits, pg.bf_bits());
}

TEST(Backends, ClampedEstimateStaysFeasible) {
  const CsrGraph g = golden_graph();
  for (const Combo& c : all_combos()) {
    ProbGraphConfig cfg = golden_config(c);
    cfg.storage_budget = 0.1;  // tight budget: raw estimates stray the most
    const ProbGraph pg(g, cfg);
    pg.visit_backend([&](const auto& be) {
      for (VertexId v = 0; v < std::min<VertexId>(g.num_vertices(), 64); ++v) {
        for (const VertexId u : g.neighbors(v)) {
          const double clamped = be.est_intersection_clamped(v, u);
          EXPECT_GE(clamped, 0.0) << combo_name(c);
          EXPECT_LE(clamped, be.degree(v) + be.degree(u)) << combo_name(c);
          const double j = be.est_jaccard(v, u);
          EXPECT_GE(j, 0.0) << combo_name(c);
          // Direct MinHash Jaccard is a ratio in [0, 1]; the BF/KMV route
          // through |X∩Y| can overshoot 1 when the estimator overshoots.
          if (c.kind == SketchKind::kKHash || c.kind == SketchKind::kOneHash) {
            EXPECT_LE(j, 1.0) << combo_name(c);
          }
        }
      }
    });
  }
}

TEST(Backends, RelativeMemoryStaysWithinBudgetForEveryKind) {
  const CsrGraph g = gen::kronecker(11, 16.0, 42);
  for (const Combo& c : all_combos()) {
    ProbGraphConfig cfg;
    cfg.kind = c.kind;
    cfg.bf_estimator = c.estimator;
    cfg.storage_budget = 0.25;
    const ProbGraph pg(g, cfg);
    // Rounding (word-size floor for BF, k >= 1 or 2 floor for MH/KMV) may
    // push slightly past the budget on small graphs; 30% slack covers it.
    EXPECT_LE(pg.relative_memory(), 0.25 * 1.3) << combo_name(c);
    EXPECT_GT(pg.memory_bytes(), 0u) << combo_name(c);
  }
}

}  // namespace
}  // namespace probgraph
