#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/triangle_count.hpp"
#include "baselines/colorful.hpp"
#include "baselines/doulion.hpp"
#include "baselines/heuristics.hpp"
#include "graph/generators.hpp"

namespace probgraph::baselines {
namespace {

TEST(Doulion, FullProbabilityIsExact) {
  const CsrGraph g = gen::kronecker(9, 10.0, 3);
  const auto exact = static_cast<double>(algo::triangle_count_exact(g));
  const DoulionResult r = doulion_tc(g, 1.0, 42);
  EXPECT_DOUBLE_EQ(r.estimate, exact);
  EXPECT_EQ(r.sampled_edges, g.num_edges());
}

TEST(Doulion, RejectsBadProbability) {
  const CsrGraph g = gen::complete(5);
  EXPECT_THROW((void)doulion_tc(g, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)doulion_tc(g, 1.5, 1), std::invalid_argument);
}

TEST(Doulion, MeanOverSeedsIsUnbiased) {
  const CsrGraph g = gen::kronecker(10, 16.0, 7);
  const auto exact = static_cast<double>(algo::triangle_count_exact(g));
  double acc = 0.0;
  constexpr int kTrials = 24;
  for (int t = 0; t < kTrials; ++t) acc += doulion_tc(g, 0.5, 100 + t).estimate;
  EXPECT_NEAR(acc / kTrials / exact, 1.0, 0.15);
}

TEST(Colorful, SingleColorIsExact) {
  const CsrGraph g = gen::kronecker(9, 10.0, 5);
  const auto exact = static_cast<double>(algo::triangle_count_exact(g));
  const ColorfulResult r = colorful_tc(g, 1, 42);
  EXPECT_DOUBLE_EQ(r.estimate, exact);
  EXPECT_EQ(r.monochromatic_edges, g.num_edges());
}

TEST(Colorful, RejectsZeroColors) {
  EXPECT_THROW((void)colorful_tc(gen::complete(4), 0, 1), std::invalid_argument);
}

TEST(Colorful, MeanOverSeedsIsUnbiased) {
  const CsrGraph g = gen::kronecker(10, 16.0, 9);
  const auto exact = static_cast<double>(algo::triangle_count_exact(g));
  double acc = 0.0;
  constexpr int kTrials = 32;
  for (int t = 0; t < kTrials; ++t) acc += colorful_tc(g, 2, 500 + t).estimate;
  EXPECT_NEAR(acc / kTrials / exact, 1.0, 0.2);
}

TEST(ReducedExecution, StepOneIsExact) {
  const CsrGraph g = gen::kronecker(9, 12.0, 11);
  const auto exact = static_cast<double>(algo::triangle_count_exact(g));
  EXPECT_DOUBLE_EQ(reduced_execution_tc(g, 1), exact);
  EXPECT_THROW((void)reduced_execution_tc(g, 0), std::invalid_argument);
}

TEST(ReducedExecution, PartialCountUndershootsExact) {
  // Loop perforation without rescaling: the reported count is a fraction
  // of the true one (that is the accuracy loss the paper measures).
  const CsrGraph g = gen::kronecker(11, 16.0, 13);
  const auto exact = static_cast<double>(algo::triangle_count_exact(g));
  const double est = reduced_execution_tc(g, 4);
  EXPECT_LT(est, exact);
  EXPECT_GT(est, 0.0);
}

TEST(PartialProcessing, FullFractionIsExact) {
  const CsrGraph g = gen::kronecker(9, 12.0, 15);
  const auto exact = static_cast<double>(algo::triangle_count_exact(g));
  EXPECT_DOUBLE_EQ(partial_processing_tc(g, 1.0, 42), exact);
  EXPECT_THROW((void)partial_processing_tc(g, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)partial_processing_tc(g, 1.2, 1), std::invalid_argument);
}

TEST(PartialProcessing, SubsamplingUndershootsPredictably) {
  // Each triangle survives with probability fraction² (both endpoints of
  // the inner intersection must keep the common neighbor), so the raw
  // partial count concentrates near fraction² · TC.
  const CsrGraph g = gen::kronecker(11, 16.0, 17);
  const auto exact = static_cast<double>(algo::triangle_count_exact(g));
  double acc = 0.0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) acc += partial_processing_tc(g, 0.5, 700 + t);
  EXPECT_NEAR(acc / kTrials / exact, 0.25, 0.1);
}

TEST(AutoApprox, SampledCountsTrackTheSampleRate) {
  // Each triangle is found iff the (v -> u) message survives: the raw count
  // concentrates near sample_rate · TC (0.5 and 0.25 for the two variants).
  const CsrGraph g = gen::kronecker(10, 12.0, 19);
  const auto exact = static_cast<double>(algo::triangle_count_exact(g));
  const double v1 = auto_approx1_tc(g, 42);
  const double v2 = auto_approx2_tc(g, 42);
  EXPECT_TRUE(std::isfinite(v1));
  EXPECT_TRUE(std::isfinite(v2));
  EXPECT_NEAR(v1 / exact, 0.5, 0.15);
  EXPECT_NEAR(v2 / exact, 0.25, 0.15);
  // The more aggressive variant drops more triangles.
  EXPECT_LT(v2, v1);
}

TEST(AutoApprox, EmptyGraphYieldsZero) {
  const CsrGraph g = gen::path(2);  // single edge: no DAG messages survive intersect
  EXPECT_DOUBLE_EQ(auto_approx1_tc(g, 1), 0.0);
}

}  // namespace
}  // namespace probgraph::baselines
