#include "util/bitvector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace probgraph::util {
namespace {

TEST(WordsForBits, RoundsUp) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
  EXPECT_EQ(words_for_bits(129), 3u);
}

TEST(BitVector, StartsAllZero) {
  const BitVector bv(256);
  EXPECT_EQ(bv.size_bits(), 256u);
  EXPECT_EQ(bv.size_words(), 4u);
  EXPECT_EQ(bv.count_ones(), 0u);
  EXPECT_EQ(bv.count_zeros(), 256u);
  for (std::uint64_t i = 0; i < 256; ++i) EXPECT_FALSE(bv.test(i));
}

TEST(BitVector, SetTestReset) {
  BitVector bv(130);
  bv.set(0);
  bv.set(63);
  bv.set(64);
  bv.set(129);
  EXPECT_TRUE(bv.test(0));
  EXPECT_TRUE(bv.test(63));
  EXPECT_TRUE(bv.test(64));
  EXPECT_TRUE(bv.test(129));
  EXPECT_FALSE(bv.test(1));
  EXPECT_EQ(bv.count_ones(), 4u);
  bv.reset(63);
  EXPECT_FALSE(bv.test(63));
  EXPECT_EQ(bv.count_ones(), 3u);
}

TEST(BitVector, SetIsIdempotent) {
  BitVector bv(64);
  bv.set(10);
  bv.set(10);
  EXPECT_EQ(bv.count_ones(), 1u);
}

TEST(BitVector, ClearResetsEverything) {
  BitVector bv(100);
  for (std::uint64_t i = 0; i < 100; i += 3) bv.set(i);
  bv.clear();
  EXPECT_EQ(bv.count_ones(), 0u);
}

TEST(BitVector, AndOrOperators) {
  BitVector a(128), b(128);
  a.set(1);
  a.set(2);
  a.set(100);
  b.set(2);
  b.set(3);
  b.set(100);

  BitVector both = a;
  both &= b;
  EXPECT_TRUE(both.test(2));
  EXPECT_TRUE(both.test(100));
  EXPECT_FALSE(both.test(1));
  EXPECT_FALSE(both.test(3));
  EXPECT_EQ(both.count_ones(), 2u);

  BitVector any = a;
  any |= b;
  EXPECT_EQ(any.count_ones(), 4u);
}

TEST(BitVector, EqualityComparesContent) {
  BitVector a(64), b(64);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

TEST(AndPopcount, MatchesNaive) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t words = 1 + rng.bounded(9);  // exercise the unrolled + tail paths
    std::vector<std::uint64_t> a(words), b(words);
    for (auto& w : a) w = rng();
    for (auto& w : b) w = rng();
    std::uint64_t naive = 0;
    for (std::size_t i = 0; i < words; ++i) {
      naive += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
    }
    EXPECT_EQ(and_popcount(a, b), naive);
  }
}

TEST(And3Popcount, MatchesNaive) {
  Xoshiro256 rng(11);
  std::vector<std::uint64_t> a(5), b(5), c(5);
  for (auto& w : a) w = rng();
  for (auto& w : b) w = rng();
  for (auto& w : c) w = rng();
  std::uint64_t naive = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    naive += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i] & c[i]));
  }
  EXPECT_EQ(and3_popcount(a, b, c), naive);
}

TEST(OrPopcount, MatchesNaive) {
  Xoshiro256 rng(13);
  std::vector<std::uint64_t> a(6), b(6);
  for (auto& w : a) w = rng();
  for (auto& w : b) w = rng();
  std::uint64_t naive = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    naive += static_cast<std::uint64_t>(__builtin_popcountll(a[i] | b[i]));
  }
  EXPECT_EQ(or_popcount(a, b), naive);
}

TEST(AndPopcount, EmptySpansYieldZero) {
  const std::vector<std::uint64_t> empty;
  EXPECT_EQ(and_popcount(empty, empty), 0u);
  EXPECT_EQ(popcount(empty), 0u);
}

// Property sweep: for disjoint, identical, and nested bit sets the AND
// popcount equals the intersection size of the underlying index sets.
class AndPopcountProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AndPopcountProperty, AgreesWithSetIntersection) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const std::uint64_t bits = 512;
  BitVector a(bits), b(bits);
  std::uint64_t expected = 0;
  std::vector<bool> in_a(bits, false), in_b(bits, false);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t pos = rng.bounded(bits);
    if (rng.bernoulli(0.5)) {
      a.set(pos);
      in_a[pos] = true;
    } else {
      b.set(pos);
      in_b[pos] = true;
    }
  }
  for (std::uint64_t i = 0; i < bits; ++i) {
    if (in_a[i] && in_b[i]) ++expected;
  }
  EXPECT_EQ(and_popcount(a.words(), b.words()), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AndPopcountProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace probgraph::util
