#include "core/bloom_filter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace probgraph {
namespace {

TEST(BloomFilter, RejectsDegenerateParameters) {
  EXPECT_THROW(BloomFilter(0, 1), std::invalid_argument);
  EXPECT_THROW(BloomFilter(64, 0), std::invalid_argument);
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(1024, 3, 7);
  std::vector<VertexId> elements;
  for (VertexId x = 0; x < 100; ++x) elements.push_back(x * 13 + 1);
  bf.insert(elements);
  for (const VertexId x : elements) {
    EXPECT_TRUE(bf.contains(x)) << x;
  }
}

TEST(BloomFilter, EmptyFilterContainsNothing) {
  const BloomFilter bf(256, 2);
  EXPECT_EQ(bf.count_ones(), 0u);
  for (VertexId x = 0; x < 100; ++x) EXPECT_FALSE(bf.contains(x));
  EXPECT_DOUBLE_EQ(bf.false_positive_rate(), 0.0);
}

TEST(BloomFilter, OnesCountBoundedByInsertions) {
  BloomFilter bf(4096, 4, 3);
  for (VertexId x = 0; x < 50; ++x) bf.insert(x);
  EXPECT_LE(bf.count_ones(), 50u * 4u);  // at most b bits per element
  EXPECT_GT(bf.count_ones(), 0u);
}

TEST(BloomFilter, FalsePositiveRateTracksTheoryOnSparseFilter) {
  // Insert few elements into a large filter: the empirical FP rate over a
  // probe set must be near (fill)^b and small.
  BloomFilter bf(1 << 14, 2, 11);
  for (VertexId x = 0; x < 200; ++x) bf.insert(x);
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    const VertexId probe = static_cast<VertexId>(1000000 + i);  // disjoint from inserts
    if (bf.contains(probe)) ++fp;
  }
  const double empirical = static_cast<double>(fp) / probes;
  const double predicted = bf.false_positive_rate();
  EXPECT_LT(empirical, 0.01);
  EXPECT_NEAR(empirical, predicted, 0.005);
}

TEST(BloomFilter, AndOnesCountsSharedStructure) {
  BloomFilter x(2048, 2, 5), y(2048, 2, 5);
  for (VertexId e = 0; e < 64; ++e) x.insert(e);
  for (VertexId e = 32; e < 96; ++e) y.insert(e);
  // Identical seeds: shared elements set identical bits, so the AND carries
  // at least the bits of the 32 common elements (minus collisions).
  const std::uint64_t and_ones = x.view().and_ones(y.view());
  EXPECT_GT(and_ones, 0u);
  EXPECT_LE(and_ones, std::min(x.count_ones(), y.count_ones()));
}

TEST(BloomFilter, OrOnesIsAtLeastMaxSide) {
  BloomFilter x(512, 1, 5), y(512, 1, 5);
  for (VertexId e = 0; e < 20; ++e) x.insert(e);
  for (VertexId e = 50; e < 90; ++e) y.insert(e);
  EXPECT_GE(x.view().or_ones(y.view()), std::max(x.count_ones(), y.count_ones()));
}

TEST(BloomFilter, DisjointSetsShareFewBits) {
  BloomFilter x(1 << 13, 1, 9), y(1 << 13, 1, 9);
  for (VertexId e = 0; e < 100; ++e) x.insert(e);
  for (VertexId e = 100000; e < 100100; ++e) y.insert(e);
  // AND of filters of disjoint sets: only hash collisions.
  EXPECT_LT(x.view().and_ones(y.view()), 15u);
}

TEST(BloomFilter, ViewMatchesOwner) {
  BloomFilter bf(512, 3, 21);
  for (VertexId e = 0; e < 30; ++e) bf.insert(e * 7);
  const BloomFilterView view = bf.view();
  EXPECT_EQ(view.size_bits(), bf.size_bits());
  EXPECT_EQ(view.num_hashes(), bf.num_hashes());
  EXPECT_EQ(view.count_ones(), bf.count_ones());
  for (VertexId e = 0; e < 30; ++e) EXPECT_TRUE(view.contains(e * 7));
}

TEST(BloomFilter, DifferentSeedsProduceDifferentLayouts) {
  BloomFilter a(512, 2, 1), b(512, 2, 2);
  for (VertexId e = 0; e < 40; ++e) {
    a.insert(e);
    b.insert(e);
  }
  EXPECT_NE(a.bits(), b.bits());
}

// Property sweep over b: saturation grows with more hash functions, and
// membership of inserted elements always holds.
class BloomHashSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BloomHashSweep, InsertContainsInvariant) {
  const std::uint32_t b = GetParam();
  BloomFilter bf(2048, b, 31);
  util::Xoshiro256 rng(b);
  std::vector<VertexId> elements;
  for (int i = 0; i < 150; ++i) elements.push_back(static_cast<VertexId>(rng.bounded(1 << 20)));
  bf.insert(elements);
  for (const VertexId x : elements) EXPECT_TRUE(bf.contains(x));
  EXPECT_LE(bf.count_ones(), static_cast<std::uint64_t>(150) * b);
}

INSTANTIATE_TEST_SUITE_P(HashCounts, BloomHashSweep, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace probgraph
