#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/estimators.hpp"
#include "core/minhash.hpp"

namespace probgraph::bounds {
namespace {

TEST(BfAndBound, ApplicabilityPredicate) {
  // b·w <= 0.499·B·log B.
  EXPECT_TRUE(bf_and_bound_applicable(10, 1024, 2));
  EXPECT_FALSE(bf_and_bound_applicable(1e9, 1024, 2));
}

TEST(BfAndBound, MseIsNonNegativeAndGrowsWithIntersection) {
  const double b1 = bf_and_mse_bound(10, 4096, 2);
  const double b2 = bf_and_mse_bound(100, 4096, 2);
  EXPECT_GE(b1, 0.0);
  EXPECT_GT(b2, b1);
}

TEST(BfAndBound, DeviationDecaysAsTSquared) {
  const double p1 = bf_and_deviation_bound(50, 4096, 2, 10);
  const double p2 = bf_and_deviation_bound(50, 4096, 2, 20);
  EXPECT_LE(p2, p1);
  if (p1 < 1.0 && p1 > 0.0) {
    EXPECT_NEAR(p2 / p1, 0.25, 1e-9);  // Chebyshev: 1/t² scaling
  }
  EXPECT_DOUBLE_EQ(bf_and_deviation_bound(50, 4096, 2, 0), 1.0);
}

TEST(BfLinearBound, ZeroAtPerfectCalibration) {
  // With w elements, rate = wb/B and δ chosen to cancel the bias exactly,
  // the squared-bias term vanishes and only the variance term remains.
  const double w = 100, bits = 8192, b = 2;
  const double delta = w / (bits * (1.0 - std::exp(-w * b / bits)));
  const double mse = bf_linear_mse_bound(w, bits, b, delta);
  const double var_only = mse;  // bias² == 0 by construction
  EXPECT_GE(var_only, 0.0);
  EXPECT_LT(var_only, bf_linear_mse_bound(w, bits, b, delta * 2.0));
}

TEST(MhBound, MatchesClosedForm) {
  // 2·exp(−2kt²/(|X|+|Y|)²) with k = 128, t = 30, sizes 100+100.
  const double expected = 2.0 * std::exp(-2.0 * 128 * 900 / (200.0 * 200.0));
  EXPECT_NEAR(mh_deviation_bound(100, 100, 128, 30), expected, 1e-12);
}

TEST(MhBound, IsMonotone) {
  // Decreasing in t and k; vacuous (==1 after clamping) at t = 0.
  EXPECT_DOUBLE_EQ(mh_deviation_bound(100, 100, 64, 0), 1.0);
  EXPECT_GT(mh_deviation_bound(100, 100, 64, 10), mh_deviation_bound(100, 100, 64, 50));
  EXPECT_GT(mh_deviation_bound(100, 100, 64, 50), mh_deviation_bound(100, 100, 256, 50));
}

TEST(MhBound, EmpiricalViolationRateIsBelowBound) {
  // Property check of Prop. IV.3: run many independent 1-hash estimates and
  // verify the deviation probability at t is at most the bound.
  std::vector<VertexId> xs, ys;
  for (VertexId i = 0; i < 400; ++i) xs.push_back(i);
  for (VertexId i = 200; i < 600; ++i) ys.push_back(i);
  const double true_inter = 200.0;
  constexpr std::uint32_t kK = 64;
  constexpr int kTrials = 400;
  const double t = 120.0;

  int violations = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    OneHashSketch a(kK, 1000 + trial), b(kK, 1000 + trial);
    a.build(xs);
    b.build(ys);
    const double est = est::mh_intersection(a.jaccard(b), 400, 400);
    if (std::abs(est - true_inter) >= t) ++violations;
  }
  const double empirical = static_cast<double>(violations) / kTrials;
  const double bound = mh_deviation_bound(400, 400, kK, t);
  EXPECT_LE(empirical, bound + 0.02);
}

TEST(TcBfBound, ScalesWithEdgesSquared) {
  const double b1 = tc_bf_deviation_bound(100, 10, 1 << 16, 2, 1000);
  const double b2 = tc_bf_deviation_bound(200, 10, 1 << 16, 2, 1000);
  if (b1 < 1.0 && b2 < 1.0 && b1 > 0.0) {
    EXPECT_NEAR(b2 / b1, 4.0, 1e-6);
  }
}

TEST(TcMhBound, ClosedFormAndMonotonicity) {
  const double sum_d2 = 5000.0;
  const double expected = 2.0 * std::exp(-18.0 * 64 * 1e6 / (sum_d2 * sum_d2));
  EXPECT_NEAR(tc_mh_deviation_bound(sum_d2, 64, 1000), std::min(1.0, expected), 1e-12);
  EXPECT_GE(tc_mh_deviation_bound(sum_d2, 64, 10), tc_mh_deviation_bound(sum_d2, 64, 100));
}

TEST(TcMhChromaticBound, TighterForLowDegreeGraphs) {
  // For a d-regular graph Σd² = n·d², Σd³ = n·d³. With small Δ the Vizing
  // form must beat (be ≤) the generic form for large t.
  const double n = 1000, d = 8;
  const double generic = tc_mh_deviation_bound(n * d * d, 64, 500);
  const double vizing = tc_mh_deviation_bound_chromatic(n * d * d * d, d, 64, 500);
  EXPECT_LE(vizing, generic + 1e-12);
}

TEST(KmvWithinProb, UnsaturatedIsCertain) {
  EXPECT_DOUBLE_EQ(kmv_size_within_prob(10, 64, 1), 1.0);
}

TEST(KmvWithinProb, IncreasesWithTolerance) {
  const double p1 = kmv_size_within_prob(10000, 256, 100);
  const double p2 = kmv_size_within_prob(10000, 256, 500);
  const double p3 = kmv_size_within_prob(10000, 256, 2000);
  EXPECT_LE(p1, p2);
  EXPECT_LE(p2, p3);
  EXPECT_GE(p1, 0.0);
  EXPECT_LE(p3, 1.0);
}

TEST(KmvWithinProb, LargerSketchConcentrates) {
  const double loose = kmv_size_within_prob(10000, 64, 500);
  const double tight = kmv_size_within_prob(10000, 1024, 500);
  EXPECT_GE(tight, loose);
}

TEST(KmvIntersectionBounds, UnionBoundDominatesExact) {
  // The three-way union bound (Prop. A.8) is weaker (larger) than the
  // exact-sizes bound (Prop. A.9) at matched t.
  const double t = 300.0;
  const double ub = kmv_intersection_deviation_bound(5000, 5000, 8000, 256, t);
  const double ex = kmv_intersection_deviation_exact(8000, 256, t);
  EXPECT_GE(ub + 1e-12, ex);
  EXPECT_GE(ub, 0.0);
  EXPECT_LE(ub, 1.0);
}

TEST(MhKForAccuracy, InvertsTheBound) {
  const double eps = 0.05, delta = 0.01;
  const double k = mh_k_for_accuracy(eps, delta);
  // Plugging k back: bound at t = eps·(|X|+|Y|) must be ≤ delta.
  const double s = 1000.0;  // any |X|+|Y|
  EXPECT_LE(mh_deviation_bound(s / 2, s / 2, k, eps * s), delta * 1.0001);
}

// Sweep: the exponential MinHash bound is never vacuous for reasonable k
// at 25% relative error, and tightens exponentially in k.
class MhBoundSweep : public ::testing::TestWithParam<int> {};

TEST_P(MhBoundSweep, ExponentialDecayInK) {
  const int k = GetParam();
  const double s = 200.0;  // |X| + |Y|
  const double t = 0.25 * s;
  const double bound = mh_deviation_bound(s / 2, s / 2, k, t);
  const double expected = 2.0 * std::exp(-2.0 * k * 0.0625);
  EXPECT_NEAR(bound, std::min(1.0, expected), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ks, MhBoundSweep, ::testing::Values(8, 16, 32, 64, 128, 256));

}  // namespace
}  // namespace probgraph::bounds
