#include "graph/builder.hpp"

#include <gtest/gtest.h>

namespace probgraph {
namespace {

TEST(GraphBuilder, SymmetrizesEdges) {
  const CsrGraph g = GraphBuilder::from_edges({{0, 1}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, RemovesSelfLoops) {
  const CsrGraph g = GraphBuilder::from_edges({{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  const CsrGraph g = GraphBuilder::from_edges({{0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphBuilder, NeighborhoodsAreSorted) {
  const CsrGraph g = GraphBuilder::from_edges({{0, 5}, {0, 2}, {0, 9}, {0, 1}});
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 4u);
  EXPECT_TRUE(std::is_sorted(n0.begin(), n0.end()));
  EXPECT_NO_THROW(g.validate());
}

TEST(GraphBuilder, InfersVertexCount) {
  const CsrGraph g = GraphBuilder::from_edges({{3, 7}});
  EXPECT_EQ(g.num_vertices(), 8u);
}

TEST(GraphBuilder, RespectsExplicitVertexCount) {
  const CsrGraph g = GraphBuilder::from_edges({{0, 1}}, 10);
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(GraphBuilder, EmptyEdgeList) {
  const CsrGraph g = GraphBuilder::from_edges({}, 4);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, FromArcsKeepsDirection) {
  const CsrGraph dag = GraphBuilder::from_arcs({{0, 1}, {1, 2}});
  EXPECT_EQ(dag.degree(0), 1u);
  EXPECT_EQ(dag.degree(1), 1u);
  EXPECT_EQ(dag.degree(2), 0u);
  EXPECT_TRUE(dag.has_edge(0, 1));
  EXPECT_FALSE(dag.has_edge(1, 0));
}

TEST(GraphBuilder, FromArcsDeduplicatesAndDropsLoops) {
  const CsrGraph dag = GraphBuilder::from_arcs({{0, 1}, {0, 1}, {2, 2}});
  EXPECT_EQ(dag.num_directed_edges(), 1u);
}

TEST(GraphBuilder, LargeRandomGraphIsValid) {
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 3000; ++i) {
    edges.emplace_back(i % 97, (i * 31 + 7) % 101);
  }
  const CsrGraph g = GraphBuilder::from_edges(std::move(edges));
  EXPECT_NO_THROW(g.validate());
  // Symmetry: u in N(v) iff v in N(u).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(u, v));
    }
  }
}

}  // namespace
}  // namespace probgraph
