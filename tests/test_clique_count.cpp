#include "algorithms/clique_count.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"

namespace probgraph::algo {
namespace {

/// O(n⁴) oracle for small graphs.
std::uint64_t brute_force_4cc(const CsrGraph& g) {
  std::uint64_t count = 0;
  const VertexId n = g.num_vertices();
  for (VertexId a = 0; a < n; ++a)
    for (VertexId b = a + 1; b < n; ++b) {
      if (!g.has_edge(a, b)) continue;
      for (VertexId c = b + 1; c < n; ++c) {
        if (!g.has_edge(a, c) || !g.has_edge(b, c)) continue;
        for (VertexId d = c + 1; d < n; ++d) {
          if (g.has_edge(a, d) && g.has_edge(b, d) && g.has_edge(c, d)) ++count;
        }
      }
    }
  return count;
}

TEST(FourCliqueExact, ClosedFormOracles) {
  EXPECT_EQ(four_clique_count_exact(gen::complete(6)), 15u);   // C(6,4)
  EXPECT_EQ(four_clique_count_exact(gen::complete(10)), 210u); // C(10,4)
  EXPECT_EQ(four_clique_count_exact(gen::complete(4)), 1u);
  EXPECT_EQ(four_clique_count_exact(gen::complete(3)), 0u);
  EXPECT_EQ(four_clique_count_exact(gen::star(30)), 0u);
  EXPECT_EQ(four_clique_count_exact(gen::complete_bipartite(8, 8)), 0u);
  // 4 disjoint K_5s: 4 · C(5,4) = 20.
  EXPECT_EQ(four_clique_count_exact(gen::clique_chain(4, 5)), 20u);
}

TEST(FourCliqueExact, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const CsrGraph g = gen::erdos_renyi(40, 0.25, seed);
    EXPECT_EQ(four_clique_count_exact(g), brute_force_4cc(g)) << "seed " << seed;
  }
}

TEST(FourCliqueExact, OrientedEntryPointMatches) {
  const CsrGraph g = gen::kronecker(8, 10.0, 3);
  EXPECT_EQ(four_clique_count_exact(g),
            four_clique_count_exact_oriented(degree_orient(g)));
}

TEST(FourCliqueProbGraph, RejectsKmv) {
  const CsrGraph dag = degree_orient(gen::complete(8));
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kKmv;
  const ProbGraph pg(dag, cfg);
  EXPECT_THROW((void)four_clique_count_probgraph(pg), std::invalid_argument);
}

TEST(FourCliqueProbGraph, BloomTracksExactOnDenseGraph) {
  const CsrGraph g = gen::kronecker(10, 24.0, 5);
  const auto exact = static_cast<double>(four_clique_count_exact(g));
  ASSERT_GT(exact, 0.0);
  const CsrGraph dag = degree_orient(g);
  ProbGraphConfig cfg;
  cfg.storage_budget = 0.33;
  cfg.budget_reference_bytes = g.memory_bytes();
  cfg.bf_hashes = 1;
  cfg.seed = 11;
  const ProbGraph pg(dag, cfg);
  const double est = four_clique_count_probgraph(pg);
  // 4CC compounds three approximations (C3 membership, chained AND, and the
  // w-loop), so the band is wide; Fig. 5 similarly scatters up to ~1.5×.
  EXPECT_NEAR(est / exact, 1.0, 1.0);
}

TEST(FourCliqueProbGraph, OneHashIsFiniteAndPositiveOnCliques) {
  const CsrGraph dag = degree_orient(gen::clique_chain(6, 8));
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  cfg.minhash_k = 16;
  const ProbGraph pg(dag, cfg);
  const double est = four_clique_count_probgraph(pg);
  EXPECT_GT(est, 0.0);
  EXPECT_TRUE(std::isfinite(est));
}

TEST(FourCliqueProbGraph, SaturatedOneHashIsNearExact) {
  // k larger than every out-degree: sketches hold whole neighborhoods.
  const CsrGraph g = gen::complete(16);
  const CsrGraph dag = degree_orient(g);
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  cfg.minhash_k = 32;
  const ProbGraph pg(dag, cfg);
  EXPECT_NEAR(four_clique_count_probgraph(pg), 1820.0, 1820.0 * 0.05);  // C(16,4)
}

TEST(FourCliqueProbGraph, KHashRunsOnRandomGraph) {
  const CsrGraph dag = degree_orient(gen::kronecker(9, 10.0, 9));
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kKHash;
  cfg.minhash_k = 16;
  const ProbGraph pg(dag, cfg);
  const double est = four_clique_count_probgraph(pg);
  EXPECT_GE(est, 0.0);
  EXPECT_TRUE(std::isfinite(est));
}

TEST(FourCliqueProbGraph, ZeroOnTriangleFreeGraphs) {
  const CsrGraph dag = degree_orient(gen::cycle(64));
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  cfg.minhash_k = 8;
  const ProbGraph pg(dag, cfg);
  EXPECT_DOUBLE_EQ(four_clique_count_probgraph(pg), 0.0);
}

}  // namespace
}  // namespace probgraph::algo
