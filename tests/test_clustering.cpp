#include "algorithms/clustering.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace probgraph::algo {
namespace {

TEST(JarvisPatrickExact, CliquesSurviveCommonNeighborThreshold) {
  // 5 disjoint K_6s: inside a clique every edge has 4 common neighbors.
  const CsrGraph g = gen::clique_chain(5, 6);
  const ClusteringResult r =
      jarvis_patrick_exact(g, SimilarityMeasure::kCommonNeighbors, 3.0);
  EXPECT_EQ(r.num_clusters, 5u);
  EXPECT_EQ(r.kept_edges, g.num_edges());
}

TEST(JarvisPatrickExact, HighThresholdShattersEverything) {
  const CsrGraph g = gen::clique_chain(5, 6);
  const ClusteringResult r =
      jarvis_patrick_exact(g, SimilarityMeasure::kCommonNeighbors, 100.0);
  EXPECT_EQ(r.kept_edges, 0u);
  EXPECT_EQ(r.num_clusters, g.num_vertices());  // all singletons
}

TEST(JarvisPatrickExact, TriangleFreeGraphKeepsNothing) {
  // In a star, adjacent vertices share no neighbors.
  const CsrGraph g = gen::star(20);
  const ClusteringResult r =
      jarvis_patrick_exact(g, SimilarityMeasure::kCommonNeighbors, 0.5);
  EXPECT_EQ(r.kept_edges, 0u);
  EXPECT_EQ(r.num_clusters, 20u);
}

TEST(JarvisPatrickExact, JaccardVariantSeparatesWeakBridges) {
  // Two K_5s joined by a single bridge edge: the bridge endpoints share no
  // neighbors, so the bridge is dropped and two clusters remain.
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) edges.emplace_back(u, v);
  for (VertexId u = 5; u < 10; ++u)
    for (VertexId v = u + 1; v < 10; ++v) edges.emplace_back(u, v);
  edges.emplace_back(4, 5);  // bridge
  const CsrGraph g = GraphBuilder::from_edges(std::move(edges));
  const ClusteringResult r = jarvis_patrick_exact(g, SimilarityMeasure::kJaccard, 0.2);
  EXPECT_EQ(r.num_clusters, 2u);
}

TEST(JarvisPatrickExact, LabelsAreConsistentWithClusters) {
  const CsrGraph g = gen::clique_chain(3, 4);
  const ClusteringResult r =
      jarvis_patrick_exact(g, SimilarityMeasure::kCommonNeighbors, 1.0);
  ASSERT_EQ(r.labels.size(), g.num_vertices());
  std::set<VertexId> distinct(r.labels.begin(), r.labels.end());
  EXPECT_EQ(distinct.size(), r.num_clusters);
  // Vertices of the same planted clique share a label.
  for (VertexId base = 0; base < 12; base += 4) {
    for (VertexId i = 1; i < 4; ++i) EXPECT_EQ(r.labels[base], r.labels[base + i]);
  }
}

TEST(JarvisPatrickExact, OverlapVariantOnCliqueChain) {
  // Inside K_6, overlap(u,v) = 4/5 > 0.5.
  const CsrGraph g = gen::clique_chain(4, 6);
  const ClusteringResult r = jarvis_patrick_exact(g, SimilarityMeasure::kOverlap, 0.5);
  EXPECT_EQ(r.num_clusters, 4u);
}

class ClusteringPgSweep : public ::testing::TestWithParam<SketchKind> {};

TEST_P(ClusteringPgSweep, RecoversPlantedClustersWithGenerousSketch) {
  const CsrGraph g = gen::clique_chain(6, 8);
  ProbGraphConfig cfg;
  cfg.kind = GetParam();
  cfg.storage_budget = 2.0;  // generous: estimation noise must not matter
  cfg.seed = 3;
  const ProbGraph pg(g, cfg);
  const ClusteringResult r =
      jarvis_patrick_probgraph(pg, SimilarityMeasure::kCommonNeighbors, 3.0);
  EXPECT_EQ(r.num_clusters, 6u) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ClusteringPgSweep,
                         ::testing::Values(SketchKind::kBloomFilter, SketchKind::kKHash,
                                           SketchKind::kOneHash, SketchKind::kKmv),
                         [](const auto& info) { return to_string(info.param); });

TEST(ClusteringPg, ClusterCountTracksExactOnKronecker) {
  const CsrGraph g = gen::kronecker(10, 16.0, 23);
  const ClusteringResult exact =
      jarvis_patrick_exact(g, SimilarityMeasure::kCommonNeighbors, 2.0);
  ProbGraphConfig cfg;
  cfg.storage_budget = 0.33;
  cfg.bf_hashes = 2;
  cfg.seed = 29;
  const ProbGraph pg(g, cfg);
  const ClusteringResult approx =
      jarvis_patrick_probgraph(pg, SimilarityMeasure::kCommonNeighbors, 2.0);
  const double rel = static_cast<double>(approx.num_clusters) /
                     static_cast<double>(exact.num_clusters);
  EXPECT_GT(rel, 0.5);
  EXPECT_LT(rel, 2.0);
}

}  // namespace
}  // namespace probgraph::algo
