#include "algorithms/clustering_coefficient.hpp"

#include <gtest/gtest.h>

#include "algorithms/triangle_count.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace probgraph::algo {
namespace {

TEST(Cohesion, CompleteGraphIsOne) {
  const CsrGraph g = gen::complete(10);
  const auto tc = static_cast<double>(triangle_count_exact(g));
  EXPECT_DOUBLE_EQ(cohesion(tc, 10), 1.0);
}

TEST(Cohesion, TriangleFreeIsZeroAndTinyGraphsAreSafe) {
  EXPECT_DOUBLE_EQ(cohesion(0.0, 50), 0.0);
  EXPECT_DOUBLE_EQ(cohesion(0.0, 2), 0.0);
}

TEST(GlobalClusteringCoefficient, ClosedForms) {
  // K_n: every wedge closes → 1. Star: no wedge closes → 0.
  const CsrGraph k = gen::complete(8);
  EXPECT_DOUBLE_EQ(
      global_clustering_coefficient(k, static_cast<double>(triangle_count_exact(k))), 1.0);
  const CsrGraph s = gen::star(8);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(s, 0.0), 0.0);
}

TEST(LocalClusteringExact, CompleteAndStar) {
  const auto cc_complete = local_clustering_exact(gen::complete(8));
  for (const double c : cc_complete) EXPECT_DOUBLE_EQ(c, 1.0);
  const auto cc_star = local_clustering_exact(gen::star(8));
  for (const double c : cc_star) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(LocalClusteringExact, HandComputedDiamond) {
  // 0-1, 0-2, 1-2, 1-3, 2-3: cc(0) = 1 (N={1,2} adjacent), cc(3) = 1,
  // cc(1) = cc(2) = 2 triangles... degree 3 → 2/(3·2/2) = 2/3.
  const CsrGraph g = GraphBuilder::from_edges({{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  const auto cc = local_clustering_exact(g);
  EXPECT_DOUBLE_EQ(cc[0], 1.0);
  EXPECT_DOUBLE_EQ(cc[3], 1.0);
  EXPECT_NEAR(cc[1], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cc[2], 2.0 / 3.0, 1e-12);
}

TEST(LocalClusteringProbGraph, TracksExactOnDenseGraph) {
  const CsrGraph g = gen::complete(32);
  ProbGraphConfig cfg;
  cfg.bf_bits = 4096;
  cfg.seed = 7;
  const ProbGraph pg(g, cfg);
  const auto cc = local_clustering_probgraph(pg);
  for (const double c : cc) {
    EXPECT_GT(c, 0.8);
    EXPECT_LE(c, 1.0);
  }
}

TEST(LocalClusteringProbGraph, ZeroOnSaturatedTriangleFree) {
  const CsrGraph g = gen::star(32);
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  cfg.minhash_k = 64;
  const ProbGraph pg(g, cfg);
  for (const double c : local_clustering_probgraph(pg)) EXPECT_DOUBLE_EQ(c, 0.0);
}

}  // namespace
}  // namespace probgraph::algo
