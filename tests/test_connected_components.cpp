#include "algorithms/connected_components.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace probgraph::algo {
namespace {

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(uf.find(v), v);
}

TEST(UnionFind, UniteMergesAndReportsNovelty) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already merged
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_sets(), 2u);
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.find(0), uf.find(2));
}

TEST(UnionFind, LabelsAreCompact) {
  UnionFind uf(6);
  uf.unite(0, 5);
  uf.unite(1, 2);
  const auto labels = uf.labels();
  EXPECT_EQ(labels[0], labels[5]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[1]);
  std::set<VertexId> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 4u);
  for (const VertexId l : labels) EXPECT_LT(l, 4u);
}

TEST(ConnectedComponents, PathIsOneComponent) {
  std::size_t count = 0;
  (void)connected_components(gen::path(10), &count);
  EXPECT_EQ(count, 1u);
}

TEST(ConnectedComponents, CliqueChainHasOnePerClique) {
  std::size_t count = 0;
  const auto labels = connected_components(gen::clique_chain(7, 3), &count);
  EXPECT_EQ(count, 7u);
  EXPECT_EQ(labels.size(), 21u);
}

TEST(ConnectedComponents, IsolatedVerticesCount) {
  const CsrGraph g = GraphBuilder::from_edges({{0, 1}}, 5);
  std::size_t count = 0;
  (void)connected_components(g, &count);
  EXPECT_EQ(count, 4u);  // {0,1} plus three singletons
}

TEST(ConnectedComponents, NullCountPointerIsAllowed) {
  EXPECT_NO_THROW((void)connected_components(gen::cycle(8)));
}

}  // namespace
}  // namespace probgraph::algo
