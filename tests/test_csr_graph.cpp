#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace probgraph {
namespace {

CsrGraph triangle_graph() {
  // 0-1, 1-2, 0-2: a single triangle.
  return GraphBuilder::from_edges({{0, 1}, {1, 2}, {0, 2}});
}

TEST(CsrGraph, BasicCounts) {
  const CsrGraph g = triangle_graph();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 6u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(CsrGraph, DegreesAndNeighbors) {
  const CsrGraph g = triangle_graph();
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
}

TEST(CsrGraph, HasEdge) {
  const CsrGraph g = GraphBuilder::from_edges({{0, 1}, {1, 2}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(CsrGraph, MaxAndAvgDegree) {
  const CsrGraph g = GraphBuilder::from_edges({{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 6.0 / 4.0);
}

TEST(CsrGraph, DegreeMoments) {
  const CsrGraph g = GraphBuilder::from_edges({{0, 1}, {0, 2}, {0, 3}});
  // degrees: 3, 1, 1, 1 → Σd² = 12, Σd³ = 30.
  EXPECT_DOUBLE_EQ(g.degree_moment(2), 12.0);
  EXPECT_DOUBLE_EQ(g.degree_moment(3), 30.0);
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_directed_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 0.0);
}

TEST(CsrGraph, IsolatedVerticesAllowed) {
  const CsrGraph g = GraphBuilder::from_edges({{0, 1}}, 5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_TRUE(g.neighbors(4).empty());
}

TEST(CsrGraph, MemoryBytesAccountsArrays) {
  const CsrGraph g = triangle_graph();
  EXPECT_EQ(g.memory_bytes(), 4 * sizeof(EdgeId) + 6 * sizeof(VertexId));
}

TEST(CsrGraph, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(triangle_graph().validate());
}

TEST(CsrGraph, ValidateRejectsBadOffsets) {
  // offsets.back() disagrees with adjacency size.
  CsrGraph g({0, 1, 2}, {1});
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(CsrGraph, ValidateRejectsUnsortedNeighborhood) {
  CsrGraph g({0, 2, 3, 4}, {2, 1, 0, 0});
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(CsrGraph, ValidateRejectsOutOfRangeNeighbor) {
  CsrGraph g({0, 1, 2}, {5, 0});
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace probgraph
