#include "distributed/dist_engine.hpp"

#include <gtest/gtest.h>

#include "distributed/partition.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"

namespace probgraph::dist {
namespace {

TEST(BlockPartition, CoversAllVerticesExactlyOnce) {
  const BlockPartition part(103, 8);
  EXPECT_EQ(part.num_ranks(), 8u);
  VertexId covered = 0;
  for (std::uint32_t r = 0; r < 8; ++r) {
    for (VertexId v = part.block_begin(r); v < part.block_end(r); ++v) {
      EXPECT_EQ(part.owner(v), r);
      ++covered;
    }
  }
  EXPECT_EQ(covered, 103u);
}

TEST(BlockPartition, SingleRankOwnsEverything) {
  const BlockPartition part(50, 1);
  for (VertexId v = 0; v < 50; ++v) EXPECT_EQ(part.owner(v), 0u);
}

TEST(BlockPartition, ZeroRanksClampsToOne) {
  const BlockPartition part(10, 0);
  EXPECT_EQ(part.num_ranks(), 1u);
}

TEST(CommModel, AlphaBetaArithmetic) {
  CommModel model;
  model.alpha_s = 1e-6;
  model.beta_Bps = 1e9;
  EXPECT_DOUBLE_EQ(model.transfer_seconds(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.transfer_seconds(1000, 1'000'000), 1e-3 + 1e-3);
}

TEST(Representations, PayloadSizes) {
  const auto exact = exact_representation();
  EXPECT_EQ(exact.payload_bytes(100, exact.param), 400u);
  const auto bf = bloom_representation(1024);
  EXPECT_EQ(bf.payload_bytes(100, bf.param), 128u);
  EXPECT_EQ(bf.payload_bytes(100000, bf.param), 128u);  // degree-independent
  const auto mh = minhash_representation(16, 8);
  EXPECT_EQ(mh.payload_bytes(5, mh.param), 128u);
}

TEST(SimulateTcTraffic, SingleRankHasNoTraffic) {
  const CsrGraph dag = degree_orient(gen::kronecker(9, 8.0, 3));
  const auto report = simulate_tc_traffic(dag, 1, exact_representation());
  EXPECT_EQ(report.total_bytes, 0u);
  EXPECT_EQ(report.total_messages, 0u);
  EXPECT_DOUBLE_EQ(report.modeled_seconds, 0.0);
}

TEST(SimulateTcTraffic, ExactBytesOnStarAreClosedForm) {
  // Star S_n oriented: every leaf has the arc leaf -> hub (hub has max
  // degree). With 2 ranks, every leaf in the non-hub block fetches the
  // hub's (empty) neighborhood once per rank: d+(hub) = 0 → 0 bytes but
  // 1 message from the second rank.
  const CsrGraph dag = degree_orient(gen::star(10));
  const auto report = simulate_tc_traffic(dag, 2, exact_representation());
  EXPECT_EQ(report.total_messages, 1u);
  EXPECT_EQ(report.total_bytes, 0u);
}

TEST(SimulateTcTraffic, CachingDeduplicatesFetches) {
  // Complete graph K_8 on 2 ranks: rank 0 owns {0..3}. Oriented adjacency
  // of v is {v+1..7}, so rank 0 fetches each of vertices 4..7 exactly once
  // even though they appear in all four of its adjacency lists.
  const CsrGraph dag = degree_orient(gen::complete(8));
  const auto report = simulate_tc_traffic(dag, 2, exact_representation());
  // rank 0 fetches {4,5,6,7}; rank 1 fetches nothing (its arcs stay local).
  EXPECT_EQ(report.total_messages, 4u);
  // payload: d+(4)=3, d+(5)=2, d+(6)=1, d+(7)=0 → 6 ids = 24 bytes.
  EXPECT_EQ(report.total_bytes, 24u);
}

TEST(SimulateTcTraffic, SketchesReduceVolumeOnSkewedGraphs) {
  // The §VIII-F claim: fixed-size sketches cut communication volume by a
  // large factor when neighborhoods are big.
  const CsrGraph dag = degree_orient(gen::kronecker(12, 32.0, 7));
  const auto exact = simulate_tc_traffic(dag, 8, exact_representation());
  const auto bf = simulate_tc_traffic(dag, 8, bloom_representation(512));
  const auto mh = simulate_tc_traffic(dag, 8, minhash_representation(16, 4));
  ASSERT_GT(exact.total_bytes, 0u);
  EXPECT_LT(bf.total_bytes, exact.total_bytes);
  EXPECT_LT(mh.total_bytes, exact.total_bytes);
  // Message counts are identical — only payloads shrink.
  EXPECT_EQ(bf.total_messages, exact.total_messages);
  EXPECT_EQ(mh.total_messages, exact.total_messages);
}

TEST(SimulateTcTraffic, ModeledTimeTracksHeaviestRank) {
  const CsrGraph dag = degree_orient(gen::kronecker(10, 16.0, 9));
  CommModel slow;
  slow.alpha_s = 0.0;
  slow.beta_Bps = 1e6;
  const auto report = simulate_tc_traffic(dag, 4, exact_representation(), slow);
  EXPECT_DOUBLE_EQ(report.modeled_seconds,
                   static_cast<double>(report.max_rank_bytes) / 1e6);
}

TEST(SimulateTcTraffic, MoreRanksMoreTotalTraffic) {
  // Finer partitions cut more edges, so total traffic grows with ranks.
  const CsrGraph dag = degree_orient(gen::kronecker(11, 16.0, 11));
  const auto p2 = simulate_tc_traffic(dag, 2, exact_representation());
  const auto p8 = simulate_tc_traffic(dag, 8, exact_representation());
  EXPECT_GE(p8.total_bytes, p2.total_bytes);
}

}  // namespace
}  // namespace probgraph::dist
