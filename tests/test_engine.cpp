// The query-engine layer (src/engine/).
//
// Three guarantees under test:
//   1. Equivalence: every Query variant executed by an Engine returns
//      results BIT-IDENTICAL to the pre-engine free-function pipeline it
//      replaced (same sketches, same algorithm calls), over both in-memory
//      graphs and snapshots — the acceptance bar of the API redesign.
//   2. Robustness: malformed serve-protocol lines and unanswerable queries
//      produce "err" replies and keep the session alive — never a crash.
//   3. Transcript stability: the checked-in scripted session
//      (tests/data/serve_session.txt) replayed over the golden snapshot
//      reproduces tests/data/serve_session.expected byte for byte — the
//      same fixture the CI smoke step pipes through a real `pgtool serve`
//      process.
//
// The double-reduction kernels (TC, 4CC, kclique, cc) use
// schedule(dynamic), so bitwise determinism across invocations needs a
// fixed thread count: the suite pins OpenMP to one thread.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/clique_count.hpp"
#include "algorithms/clustering.hpp"
#include "algorithms/clustering_coefficient.hpp"
#include "algorithms/kclique.hpp"
#include "algorithms/link_prediction.hpp"
#include "algorithms/triangle_count.hpp"
#include "algorithms/vertex_similarity.hpp"
#include "engine/protocol.hpp"
#include "graph/io.hpp"
#include "graph/orientation.hpp"
#include "io/snapshot.hpp"
#include "util/threading.hpp"

namespace probgraph {
namespace {

namespace fs = std::filesystem;

class PinThreads : public ::testing::Environment {
 public:
  void SetUp() override { util::set_threads(1); }
};
const auto* const kPin =
    ::testing::AddGlobalTestEnvironment(new PinThreads);  // NOLINT(cert-err58-cpp)

std::string data_path(const char* name) {
  return std::string(PROBGRAPH_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Self-deleting temp file path, unique per test.
struct TempFile {
  explicit TempFile(const std::string& tag)
      : path((fs::temp_directory_path() / ("probgraph_test_" + tag + ".pgs")).string()) {}
  ~TempFile() { std::error_code ec; fs::remove(path, ec); }
  std::string path;
};

CsrGraph golden_graph() { return io::read_edge_list(data_path("golden.el")); }

/// The pre-engine counting pipeline: sketches over the degree-oriented DAG
/// with the budget referenced to G's CSR (what pgtool has always done).
struct LegacyCounting {
  explicit LegacyCounting(const CsrGraph& g, ProbGraphConfig cfg = {})
      : dag(degree_orient(g)) {
    cfg.budget_reference_bytes = g.memory_bytes();
    pg.emplace(dag, cfg);
  }
  CsrGraph dag;
  std::optional<ProbGraph> pg;
};

// --- 1. Equivalence with the pre-engine free functions. ---

TEST(EngineEquivalence, TriangleCount) {
  const CsrGraph g = golden_graph();
  const LegacyCounting legacy(g);
  engine::Engine e(golden_graph());
  const auto r = e.run(engine::TriangleCount{});
  EXPECT_EQ(r.value, algo::triangle_count_probgraph(*legacy.pg));
  EXPECT_STREQ(r.name, "tc");
  EXPECT_TRUE(r.sketch.used);
  EXPECT_TRUE(r.sketch.degree_oriented);

  const auto rx = e.run(engine::TriangleCount{.exact = true});
  EXPECT_EQ(rx.value, static_cast<double>(algo::triangle_count_exact(g)));
  EXPECT_TRUE(rx.exact);
  EXPECT_FALSE(rx.sketch.used);
}

TEST(EngineEquivalence, FourCliqueCount) {
  const CsrGraph g = golden_graph();
  const LegacyCounting legacy(g);
  engine::Engine e(golden_graph());
  EXPECT_EQ(e.run(engine::FourCliqueCount{}).value,
            algo::four_clique_count_probgraph(*legacy.pg));
  EXPECT_EQ(e.run(engine::FourCliqueCount{.exact = true}).value,
            static_cast<double>(algo::four_clique_count_exact(g)));
}

TEST(EngineEquivalence, KCliqueCount) {
  const CsrGraph g = golden_graph();
  const LegacyCounting legacy(g);
  engine::Engine e(golden_graph());
  EXPECT_EQ(e.run(engine::KCliqueCount{.k = 4}).value,
            algo::kclique_count_probgraph(*legacy.pg, 4));
  EXPECT_EQ(e.run(engine::KCliqueCount{.k = 4, .exact = true}).value,
            static_cast<double>(algo::kclique_count_exact(g, 4)));
}

TEST(EngineEquivalence, ClusteringCoeff) {
  const CsrGraph g = golden_graph();
  const ProbGraph pg(g, ProbGraphConfig{});
  engine::Engine e(golden_graph());
  const double tc = algo::triangle_count_probgraph(pg, algo::TcMode::kFull);
  EXPECT_EQ(e.run(engine::ClusteringCoeff{}).value,
            algo::global_clustering_coefficient(g, tc));
  const double tc_exact = static_cast<double>(algo::triangle_count_exact(g));
  EXPECT_EQ(e.run(engine::ClusteringCoeff{.exact = true}).value,
            algo::global_clustering_coefficient(g, tc_exact));
}

TEST(EngineEquivalence, Cluster) {
  const CsrGraph g = golden_graph();
  const ProbGraph pg(g, ProbGraphConfig{});
  engine::Engine e(golden_graph());
  const auto want =
      algo::jarvis_patrick_probgraph(pg, algo::SimilarityMeasure::kJaccard, 0.1);
  const auto r = e.run(engine::Cluster{algo::SimilarityMeasure::kJaccard, 0.1, false});
  ASSERT_TRUE(r.cluster.has_value());
  EXPECT_EQ(r.cluster->num_clusters, want.num_clusters);
  EXPECT_EQ(r.cluster->kept_edges, want.kept_edges);

  const auto want_x = algo::jarvis_patrick_exact(g, algo::SimilarityMeasure::kJaccard, 0.1);
  const auto rx = e.run(engine::Cluster{algo::SimilarityMeasure::kJaccard, 0.1, true});
  EXPECT_EQ(rx.cluster->num_clusters, want_x.num_clusters);
  EXPECT_EQ(rx.cluster->kept_edges, want_x.kept_edges);
}

TEST(EngineEquivalence, PairEstimateAllKindsMatchEstWrappers) {
  const CsrGraph g = golden_graph();
  const ProbGraph pg(g, ProbGraphConfig{});
  engine::Engine e(golden_graph());
  std::vector<engine::VertexPair> pairs;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) pairs.push_back({u, v});
  }
  for (const engine::EstimateKind kind :
       {engine::EstimateKind::kIntersection, engine::EstimateKind::kJaccard,
        engine::EstimateKind::kOverlap, engine::EstimateKind::kCommonNeighbors,
        engine::EstimateKind::kTotalNeighbors}) {
    const auto r = e.run(engine::PairEstimate{kind, pairs, false});
    ASSERT_EQ(r.pairs.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const VertexId u = pairs[i].u, v = pairs[i].v;
      double want = 0.0;
      switch (kind) {
        case engine::EstimateKind::kIntersection: want = pg.est_intersection(u, v); break;
        case engine::EstimateKind::kJaccard: want = pg.est_jaccard(u, v); break;
        case engine::EstimateKind::kOverlap: want = pg.est_overlap(u, v); break;
        case engine::EstimateKind::kCommonNeighbors:
          want = pg.est_common_neighbors(u, v);
          break;
        case engine::EstimateKind::kTotalNeighbors:
          want = pg.est_total_neighbors(u, v);
          break;
      }
      ASSERT_EQ(r.pairs[i].value, want)
          << to_string(kind) << " diverges at (" << u << ", " << v << ")";
    }
  }
}

TEST(EngineEquivalence, PairEstimateExact) {
  const CsrGraph g = golden_graph();
  engine::Engine e(golden_graph());
  const auto r = e.run(
      engine::PairEstimate{engine::EstimateKind::kJaccard, {{0, 1}, {2, 3}}, true});
  ASSERT_EQ(r.pairs.size(), 2u);
  EXPECT_EQ(r.pairs[0].value,
            algo::similarity_exact(g, 0, 1, algo::SimilarityMeasure::kJaccard));
  EXPECT_EQ(r.pairs[1].value,
            algo::similarity_exact(g, 2, 3, algo::SimilarityMeasure::kJaccard));
}

TEST(EngineEquivalence, LinkPredict) {
  const CsrGraph g = golden_graph();
  const ProbGraph pg(g, ProbGraphConfig{});
  engine::Engine e(golden_graph());
  const auto want =
      algo::top_k_links_probgraph(pg, algo::SimilarityMeasure::kCommonNeighbors, 5);
  const auto r =
      e.run(engine::LinkPredict{5, algo::SimilarityMeasure::kCommonNeighbors, false});
  ASSERT_EQ(r.pairs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(r.pairs[i].u, want[i].u);
    EXPECT_EQ(r.pairs[i].v, want[i].v);
    EXPECT_EQ(r.pairs[i].value, want[i].score);
  }
  // Deterministic ordering: score desc, ties by (u, v) asc, u < v everywhere.
  for (std::size_t i = 0; i < r.pairs.size(); ++i) {
    EXPECT_LT(r.pairs[i].u, r.pairs[i].v);
    if (i > 0) {
      EXPECT_TRUE(r.pairs[i - 1].value > r.pairs[i].value ||
                  (r.pairs[i - 1].value == r.pairs[i].value &&
                   (r.pairs[i - 1].u < r.pairs[i].u ||
                    (r.pairs[i - 1].u == r.pairs[i].u && r.pairs[i - 1].v < r.pairs[i].v))));
    }
  }
}

TEST(EngineEquivalence, LinkPredictExactFindsRemovedStructure) {
  const CsrGraph g = golden_graph();
  engine::Engine e(golden_graph());
  const auto want = algo::top_k_links_exact(g, algo::SimilarityMeasure::kJaccard, 3);
  const auto r = e.run(engine::LinkPredict{3, algo::SimilarityMeasure::kJaccard, true});
  ASSERT_EQ(r.pairs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(r.pairs[i].u, want[i].u);
    EXPECT_EQ(r.pairs[i].v, want[i].v);
    EXPECT_EQ(r.pairs[i].value, want[i].score);
  }
}

TEST(EngineEquivalence, GraphStats) {
  const CsrGraph g = golden_graph();
  engine::Engine e(golden_graph());
  const auto r = e.run(engine::GraphStats{});
  ASSERT_TRUE(r.stats.has_value());
  EXPECT_EQ(r.stats->num_vertices, g.num_vertices());
  EXPECT_EQ(r.stats->num_edges, g.num_edges());
  EXPECT_EQ(r.stats->num_directed_edges, g.num_directed_edges());
  EXPECT_EQ(r.stats->max_degree, g.max_degree());
  EXPECT_EQ(r.stats->avg_degree, g.avg_degree());
  EXPECT_EQ(r.stats->degree_moment2, g.degree_moment(2));
  EXPECT_EQ(r.stats->degree_moment3, g.degree_moment(3));
  EXPECT_EQ(r.stats->csr_bytes, g.memory_bytes());
  EXPECT_FALSE(r.stats->mapped);
  EXPECT_FALSE(r.sketch.used);
}

// --- Snapshot-backed engines. ---

TEST(EngineSnapshot, ServesGoldenPairEstimatesBitIdentical) {
  const CsrGraph g = golden_graph();
  const ProbGraph fresh(g, ProbGraphConfig{});
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden.pgs"));
  ASSERT_NE(e.snapshot_info(), nullptr);
  EXPECT_FALSE(e.source_oriented());

  std::vector<engine::VertexPair> pairs;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) pairs.push_back({u, v});
  }
  const auto r = e.run(engine::PairEstimate{engine::EstimateKind::kIntersection, pairs, false});
  ASSERT_EQ(r.pairs.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(r.pairs[i].value, fresh.est_intersection(pairs[i].u, pairs[i].v));
  }
  EXPECT_TRUE(r.sketch.mapped);
}

TEST(EngineSnapshot, SymmetricSnapshotTcUsesFullModeEstimator) {
  const CsrGraph g = golden_graph();
  const ProbGraph fresh(g, ProbGraphConfig{});
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden.pgs"));
  const auto r = e.run(engine::TriangleCount{});
  EXPECT_EQ(r.value, algo::triangle_count_probgraph(fresh, algo::TcMode::kFull));
  EXPECT_FALSE(r.sketch.degree_oriented);
}

TEST(EngineSnapshot, SymmetricSnapshotRejectsOrientedEstimates) {
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden.pgs"));
  try {
    (void)e.run(engine::FourCliqueCount{});
    FAIL() << "expected 4cc over a symmetric snapshot to throw";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("--orient"), std::string::npos);
  }
}

TEST(EngineSnapshot, OrientedSnapshotCountsAndRejectsNeighborhoodQueries) {
  const CsrGraph g = golden_graph();
  const LegacyCounting legacy(g);
  TempFile file("engine_oriented");
  io::save_snapshot(file.path, *legacy.pg, {.degree_oriented = true});

  engine::Engine e = engine::Engine::from_snapshot(file.path);
  EXPECT_TRUE(e.source_oriented());
  EXPECT_EQ(e.run(engine::TriangleCount{}).value,
            algo::triangle_count_probgraph(*legacy.pg));
  EXPECT_EQ(e.run(engine::FourCliqueCount{}).value,
            algo::four_clique_count_probgraph(*legacy.pg));
  // Exact counting still works: the snapshot's graph IS the DAG.
  EXPECT_EQ(e.run(engine::TriangleCount{.exact = true}).value,
            static_cast<double>(algo::triangle_count_exact_oriented(legacy.dag)));
  EXPECT_THROW((void)e.run(engine::Cluster{}), std::runtime_error);
  EXPECT_THROW((void)e.run(engine::ClusteringCoeff{}), std::runtime_error);
  EXPECT_THROW((void)e.run(engine::LinkPredict{}), std::runtime_error);
  // Pair estimates are |N_u ∩ N_v| over full neighborhoods: a DAG sketch
  // answers a different question, so this must be an error, not an "ok".
  EXPECT_THROW(
      (void)e.run(engine::PairEstimate{engine::EstimateKind::kIntersection, {{0, 1}}, false}),
      std::runtime_error);
}

// --- Multi-substrate snapshots: per-query kind routing. ---
// golden_v2.pgs packs BF/sym (primary), BF/dag, KMV/sym, KMV/dag over the
// golden graph — one mapping, every query class, routed per engine.hpp.

TEST(EngineMultiSubstrate, RoutesTcToTheDagAndPairToTheSymmetricSubstrate) {
  const CsrGraph g = golden_graph();
  const LegacyCounting legacy_bf(g);
  const ProbGraph fresh_sym(g, ProbGraphConfig{});
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden_v2.pgs"));
  EXPECT_FALSE(e.source_oriented());

  // tc defaults to the primary kind (BF) on the DAG substrate — the
  // oriented estimator, bit-identical to a single `--orient` build.
  const auto tc = e.run(engine::TriangleCount{});
  EXPECT_EQ(tc.value, algo::triangle_count_probgraph(*legacy_bf.pg));
  EXPECT_TRUE(tc.sketch.degree_oriented);
  EXPECT_EQ(tc.sketch.kind, SketchKind::kBloomFilter);
  EXPECT_TRUE(tc.sketch.mapped);

  // pair defaults to BF/sym — bit-identical to the unoriented build.
  const auto pair = e.run(
      engine::PairEstimate{engine::EstimateKind::kJaccard, {{0, 1}, {2, 3}}, false});
  EXPECT_EQ(pair.pairs[0].value, fresh_sym.est_jaccard(0, 1));
  EXPECT_EQ(pair.pairs[1].value, fresh_sym.est_jaccard(2, 3));
  EXPECT_FALSE(pair.sketch.degree_oriented);
}

TEST(EngineMultiSubstrate, ExplicitKindRoutesToThatSubstrate) {
  const CsrGraph g = golden_graph();
  ProbGraphConfig kmv_cfg;
  kmv_cfg.kind = SketchKind::kKmv;
  const ProbGraph fresh_kmv_sym(g, kmv_cfg);
  const LegacyCounting legacy_kmv(g, kmv_cfg);
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden_v2.pgs"));

  const auto tc = e.run(engine::TriangleCount{.sketch = SketchKind::kKmv});
  EXPECT_EQ(tc.value, algo::triangle_count_probgraph(*legacy_kmv.pg));
  EXPECT_EQ(tc.sketch.kind, SketchKind::kKmv);
  EXPECT_TRUE(tc.sketch.degree_oriented);

  engine::PairEstimate pq{engine::EstimateKind::kJaccard, {{0, 1}}, false};
  pq.sketch = SketchKind::kKmv;
  const auto pair = e.run(pq);
  EXPECT_EQ(pair.pairs[0].value, fresh_kmv_sym.est_jaccard(0, 1));
  EXPECT_EQ(pair.sketch.kind, SketchKind::kKmv);
}

TEST(EngineMultiSubstrate, MissingSubstrateErrorsNameWhatTheFileServes) {
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden_v2.pgs"));
  try {
    (void)e.run(engine::TriangleCount{.sketch = SketchKind::kOneHash});
    FAIL() << "expected a routing error for an uncarried kind";
  } catch (const std::runtime_error& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("1H/dag"), std::string::npos) << what;
    EXPECT_NE(what.find("BF/sym, BF/dag, KMV/sym, KMV/dag"), std::string::npos) << what;
  }
}

TEST(EngineMultiSubstrate, TcWithoutADagSubstrateOfTheKindFallsBackToFullMode) {
  // The v1 golden file carries only BF/sym: an explicit kind=bf tc must
  // still answer through the Thm-VII.1 full-graph estimator.
  const CsrGraph g = golden_graph();
  const ProbGraph fresh(g, ProbGraphConfig{});
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden.pgs"));
  const auto r = e.run(engine::TriangleCount{.sketch = SketchKind::kBloomFilter});
  EXPECT_EQ(r.value, algo::triangle_count_probgraph(fresh, algo::TcMode::kFull));
  EXPECT_FALSE(r.sketch.degree_oriented);
  // ...but a kind the file does not carry at all is an error.
  EXPECT_THROW((void)e.run(engine::TriangleCount{.sketch = SketchKind::kKmv}),
               std::runtime_error);
}

TEST(EngineMultiSubstrate, AmbiguousDefaultRouteSaysPickAKind) {
  // Several DAG substrates, none of the primary kind: the default route is
  // ambiguous — the error must say so (not "carries no DAG sketches") and
  // point at kind=, and an explicit kind= must work.
  const CsrGraph g = golden_graph();
  const CsrGraph dag = degree_orient(g);  // ONE dag shared by both substrates
  const ProbGraph sym_bf(g, ProbGraphConfig{});
  ProbGraphConfig dag_cfg;
  dag_cfg.budget_reference_bytes = g.memory_bytes();
  dag_cfg.kind = SketchKind::kKmv;
  const ProbGraph dag_kmv(dag, dag_cfg);
  dag_cfg.kind = SketchKind::kKHash;
  const ProbGraph dag_kh(dag, dag_cfg);
  const io::SnapshotSubstrate subs[] = {{&sym_bf, false}, {&dag_kmv, true}, {&dag_kh, true}};
  TempFile file("engine_ambiguous");
  io::save_snapshot(file.path, subs);

  engine::Engine e = engine::Engine::from_snapshot(file.path);
  try {
    (void)e.run(engine::FourCliqueCount{});
    FAIL() << "expected an ambiguous-routing error";
  } catch (const std::runtime_error& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("several"), std::string::npos) << what;
    EXPECT_NE(what.find("kind="), std::string::npos) << what;
  }
  EXPECT_EQ(e.run(engine::FourCliqueCount{.sketch = SketchKind::kKHash}).value,
            algo::four_clique_count_probgraph(dag_kh));
  // tc must surface the same ambiguity, NOT silently degrade to the
  // full-graph estimator while two usable DAG substrates sit mapped.
  try {
    (void)e.run(engine::TriangleCount{});
    FAIL() << "expected tc to error on the ambiguous DAG route";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("several"), std::string::npos) << err.what();
  }
  EXPECT_EQ(e.run(engine::TriangleCount{.sketch = SketchKind::kKmv}).value,
            algo::triangle_count_probgraph(dag_kmv));
}

TEST(EngineMultiSubstrate, StatsPreferTheCarriedSymmetricGraph) {
  // A dag-primary file that still carries the symmetric CSR: stats must
  // describe the symmetric graph (what pair/cc/lp answer over), not the
  // primary DAG's out-degrees.
  const CsrGraph g = golden_graph();
  const CsrGraph dag = degree_orient(g);
  ProbGraphConfig dag_cfg;
  dag_cfg.budget_reference_bytes = g.memory_bytes();
  const ProbGraph dag_bf(dag, dag_cfg);
  ProbGraphConfig kmv_cfg;
  kmv_cfg.kind = SketchKind::kKmv;
  const ProbGraph sym_kmv(g, kmv_cfg);
  const io::SnapshotSubstrate subs[] = {{&dag_bf, true}, {&sym_kmv, false}};
  TempFile file("engine_dag_primary_stats");
  io::save_snapshot(file.path, subs);

  engine::Engine e = engine::Engine::from_snapshot(file.path);
  const auto r = e.run(engine::GraphStats{});
  EXPECT_EQ(r.stats->num_edges, g.num_edges());
  EXPECT_EQ(r.stats->num_directed_edges, g.num_directed_edges());
  EXPECT_EQ(r.stats->max_degree, g.max_degree());
  EXPECT_EQ(r.stats->avg_degree, g.avg_degree());
}

TEST(EngineMultiSubstrate, ExactQueriesUseTheMappedDagCsr) {
  // golden_v2.pgs carries the DAG CSR, so exact counting needs no
  // in-memory re-orientation and still matches the exact free function.
  const CsrGraph g = golden_graph();
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden_v2.pgs"));
  EXPECT_EQ(e.run(engine::TriangleCount{.exact = true}).value,
            static_cast<double>(algo::triangle_count_exact(g)));
  EXPECT_EQ(e.run(engine::FourCliqueCount{.exact = true}).value,
            static_cast<double>(algo::four_clique_count_exact(g)));
}

TEST(EngineMultiSubstrate, InMemoryEngineRejectsMismatchedKind) {
  engine::Engine e(golden_graph());  // configured for BF
  EXPECT_NO_THROW((void)e.run(engine::TriangleCount{.sketch = SketchKind::kBloomFilter}));
  try {
    (void)e.run(engine::TriangleCount{.sketch = SketchKind::kKmv});
    FAIL() << "expected a kind mismatch error";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("configured for BF"), std::string::npos)
        << err.what();
  }
}

// --- Request validation. ---

TEST(EngineValidation, RejectsMalformedQueries) {
  engine::Engine e(golden_graph());
  EXPECT_THROW((void)e.run(engine::PairEstimate{}), std::invalid_argument);  // empty batch
  EXPECT_THROW(
      (void)e.run(engine::PairEstimate{engine::EstimateKind::kJaccard, {{0, 999}}, false}),
      std::invalid_argument);
  EXPECT_THROW((void)e.run(engine::KCliqueCount{.k = 2}), std::invalid_argument);
  // A non-finite threshold would silently make every comparison false.
  EXPECT_THROW((void)e.run(engine::Cluster{algo::SimilarityMeasure::kJaccard,
                                           std::nan(""), false}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)e.run(engine::Cluster{algo::SimilarityMeasure::kJaccard,
                                  std::numeric_limits<double>::infinity(), false}),
      std::invalid_argument);
}

TEST(EngineBounds, MinHashBoundsAccompanyEstimates) {
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kKHash;
  engine::Engine e(golden_graph(), cfg);
  const auto tc = e.run(engine::TriangleCount{});
  ASSERT_TRUE(tc.bound.has_value());
  EXPECT_GT(tc.bound->probability, 0.0);
  EXPECT_LE(tc.bound->probability, 1.0);
  EXPECT_GT(tc.bound->t, 0.0);

  const auto pair = e.run(
      engine::PairEstimate{engine::EstimateKind::kIntersection, {{0, 1}, {2, 3}}, false});
  ASSERT_TRUE(pair.bound.has_value());
  EXPECT_GT(pair.bound->probability, 0.0);
  EXPECT_LE(pair.bound->probability, 1.0);
}

// --- Protocol parsing and serve-session robustness. ---

TEST(Protocol, ParsesWellFormedRequests) {
  EXPECT_TRUE(std::holds_alternative<engine::TriangleCount>(
      *engine::parse_request("tc").query));
  EXPECT_TRUE(std::get<engine::TriangleCount>(*engine::parse_request("TC exact").query).exact);
  EXPECT_EQ(std::get<engine::KCliqueCount>(*engine::parse_request("kclique 5").query).k, 5u);
  const auto cluster = std::get<engine::Cluster>(
      *engine::parse_request("cluster jaccard 0.25").query);
  EXPECT_EQ(cluster.measure, algo::SimilarityMeasure::kJaccard);
  EXPECT_EQ(cluster.tau, 0.25);
  const auto pair = std::get<engine::PairEstimate>(
      *engine::parse_request("pair overlap 3 4 5 6").query);
  EXPECT_EQ(pair.kind, engine::EstimateKind::kOverlap);
  ASSERT_EQ(pair.pairs.size(), 2u);
  EXPECT_EQ(pair.pairs[1].u, 5u);
  const auto lp = std::get<engine::LinkPredict>(*engine::parse_request("lp 7 adamic").query);
  EXPECT_EQ(lp.topk, 7u);
  EXPECT_EQ(lp.measure, algo::SimilarityMeasure::kAdamicAdar);
  EXPECT_TRUE(engine::parse_request("quit").quit);
  EXPECT_TRUE(engine::parse_request("exit").quit);
  EXPECT_TRUE(engine::parse_request("help").help);
  EXPECT_TRUE(engine::parse_request("").ignored);
  EXPECT_TRUE(engine::parse_request("   ").ignored);
  EXPECT_TRUE(engine::parse_request("# a comment").ignored);
}

TEST(Protocol, ParsesKindClauses) {
  // kind= routes to a sketch substrate, anywhere after the command.
  const auto tc = std::get<engine::TriangleCount>(*engine::parse_request("tc kind=kmv").query);
  EXPECT_EQ(tc.sketch, SketchKind::kKmv);
  EXPECT_FALSE(tc.exact);
  EXPECT_EQ(std::get<engine::TriangleCount>(*engine::parse_request("tc").query).sketch,
            std::nullopt);
  const auto pair = std::get<engine::PairEstimate>(
      *engine::parse_request("pair kind=bf jaccard 0 1").query);
  EXPECT_EQ(pair.sketch, SketchKind::kBloomFilter);
  EXPECT_EQ(pair.kind, engine::EstimateKind::kJaccard);
  const auto cluster = std::get<engine::Cluster>(
      *engine::parse_request("cluster jaccard 0.25 kind=1h").query);
  EXPECT_EQ(cluster.sketch, SketchKind::kOneHash);
  const auto lp = std::get<engine::LinkPredict>(
      *engine::parse_request("lp 5 common KIND=KH").query);  // case-insensitive
  EXPECT_EQ(lp.sketch, SketchKind::kKHash);
  const auto kc = std::get<engine::KCliqueCount>(
      *engine::parse_request("kclique 4 kind=bf").query);
  EXPECT_EQ(kc.sketch, SketchKind::kBloomFilter);
  EXPECT_EQ(kc.k, 4u);
}

TEST(Protocol, MalformedLinesReportErrorsWithoutQueries) {
  for (const char* line :
       {"bogus", "tc extra", "kclique", "kclique two", "kclique 2", "cluster jaccard",
        "cluster nope 0.1", "cluster jaccard abc", "pair", "pair nope 0 1",
        "pair jaccard 0", "pair jaccard a b", "lp", "lp -3", "lp 5 nope", "quit now",
        // Non-finite numerics: from_chars accepts these spellings, the
        // protocol must not ("cluster jaccard nan" would reply ok with a
        // threshold for which every comparison is false).
        "cluster jaccard nan", "cluster jaccard inf", "cluster jaccard -inf",
        "cluster jaccard NaN",
        // kind= clause misuse.
        "tc kind=", "tc kind=bogus", "tc kind=bf kind=kmv", "tc kind=bf exact",
        "stats kind=bf", "pair kind=exact jaccard 0 1"}) {
    const auto req = engine::parse_request(line);
    EXPECT_FALSE(req.query.has_value()) << "line '" << line << "' parsed unexpectedly";
    EXPECT_FALSE(req.error.empty()) << "line '" << line << "' produced no error";
  }
}

TEST(Protocol, ServeSessionAnswersErrLinesAndKeepsServing) {
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden.pgs"));
  std::istringstream in(
      "bogus\n"
      "pair intersection 0\n"
      "pair intersection 0 99999\n"
      "4cc\n"
      "kclique 2\n"
      "stats\n"
      "quit\n"
      "stats\n");  // after quit: must not be answered
  std::ostringstream out;
  const std::size_t answered = engine::serve_session(e, in, out);
  EXPECT_EQ(answered, 1u);  // only the first stats

  std::vector<std::string> lines;
  std::istringstream replies(out.str());
  for (std::string l; std::getline(replies, l);) lines.push_back(l);
  ASSERT_EQ(lines.size(), 7u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(lines[i].rfind("err\t", 0), 0u) << "line " << i << ": " << lines[i];
  }
  EXPECT_EQ(lines[5].rfind("ok\tstats\t", 0), 0u);
  EXPECT_EQ(lines[6], "bye");
}

TEST(Protocol, GoldenTranscriptIsStable) {
  // The same fixture CI pipes through a real `pgtool serve` process:
  //   pgtool serve tests/data/golden.pgs --threads 1 < serve_session.txt
  // Regenerate serve_session.expected deliberately via that command after
  // any intentional protocol/estimator change.
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden.pgs"));
  std::istringstream in(read_file(data_path("serve_session.txt")));
  std::ostringstream out;
  (void)engine::serve_session(e, in, out);
  EXPECT_EQ(out.str(), read_file(data_path("serve_session.expected")));
}

TEST(Protocol, MultiSubstrateSessionRoutesPerQuery) {
  // One mapping answers DAG-substrate counting AND symmetric-substrate
  // neighborhood queries in a single session, with kind= switching the
  // sketch family per query.
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden_v2.pgs"));
  std::istringstream in(
      "tc\n"
      "tc kind=kmv\n"
      "pair jaccard 0 1\n"
      "pair jaccard 0 1 kind=kmv\n"
      "4cc\n"
      "cluster jaccard 0.1 kind=kmv\n"
      "tc kind=1h\n"
      "quit\n");
  std::ostringstream out;
  const std::size_t answered = engine::serve_session(e, in, out);
  EXPECT_EQ(answered, 6u);

  std::vector<std::string> lines;
  std::istringstream replies(out.str());
  for (std::string l; std::getline(replies, l);) lines.push_back(l);
  ASSERT_EQ(lines.size(), 8u);
  EXPECT_EQ(lines[0].rfind("ok\ttc\t", 0), 0u);
  EXPECT_EQ(lines[1].rfind("ok\ttc\t", 0), 0u);
  EXPECT_NE(lines[0], lines[1]) << "BF and KMV TC estimates should differ";
  EXPECT_EQ(lines[2].rfind("ok\tpair\t0:1=", 0), 0u);
  EXPECT_EQ(lines[3].rfind("ok\tpair\t0:1=", 0), 0u);
  EXPECT_NE(lines[2], lines[3]) << "BF and KMV pair estimates should differ";
  EXPECT_EQ(lines[4].rfind("ok\t4cc\t", 0), 0u);
  EXPECT_EQ(lines[5].rfind("ok\tcluster\t", 0), 0u);
  EXPECT_EQ(lines[6].rfind("err\t", 0), 0u);  // 1h is not carried
  EXPECT_EQ(lines[7], "bye");
}

TEST(Protocol, MultiGoldenTranscriptsAreStable) {
  // The same fixtures CI's multi-substrate e2e drives through two real
  // concurrent `pgtool client` processes against one serve --listen.
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden_v2.pgs"));
  for (const auto& [script, expected] :
       {std::pair{"serve_multi_tc.txt", "serve_multi_tc.expected"},
        std::pair{"serve_multi_pair.txt", "serve_multi_pair.expected"}}) {
    std::istringstream in(read_file(data_path(script)));
    std::ostringstream out;
    (void)engine::serve_session(e, in, out);
    EXPECT_EQ(out.str(), read_file(data_path(expected))) << script;
  }
}

TEST(Protocol, FormatReplyShapes) {
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden.pgs"));
  const auto pair_reply = engine::format_reply(
      e.run(engine::PairEstimate{engine::EstimateKind::kIntersection, {{0, 1}}, false}));
  EXPECT_EQ(pair_reply.rfind("ok\tpair\t0:1=", 0), 0u) << pair_reply;
  const auto stats_reply = engine::format_reply(e.run(engine::GraphStats{}));
  EXPECT_NE(stats_reply.find("\tn=32\t"), std::string::npos) << stats_reply;
  EXPECT_EQ(engine::format_error("multi\nline\tmessage"), "err\tmulti line message");
}

TEST(EngineBatch, RunBatchIsBitIdenticalToPerQueryRun) {
  // The pipelined-batch contract: run_batch may hoist the substrate route
  // of consecutive same-route pair/lp queries, but every captured outcome
  // — result bytes, error text, error kind — must equal what a per-query
  // run() sequence produces. The mix below exercises every grouping edge:
  // a same-route run (pair, pair, lp), an invalid query inside it, a
  // run-breaking scalar query, an explicit kind= run, and an exact query
  // (never grouped).
  engine::Engine e = engine::Engine::from_snapshot(data_path("golden_v2.pgs"));
  const char* lines[] = {
      "pair intersection 0 1",
      "pair jaccard 2 3",
      "lp 5 common",
      "pair intersection 0 999",
      "tc",
      "pair intersection 4 5 kind=kmv",
      "pair jaccard 6 7 kind=kmv",
      "pair jaccard 0 1 exact",
      "stats",
      "pair total 8 9",
  };
  std::vector<engine::Query> queries;
  for (const char* line : lines) {
    const auto parsed = engine::parse_request(line);
    ASSERT_TRUE(parsed.query.has_value()) << line << ": " << parsed.error;
    queries.push_back(*parsed.query);
  }

  const std::vector<engine::BatchItem> batch = e.run_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    try {
      const engine::QueryResult direct = e.run(queries[i]);
      ASSERT_TRUE(batch[i].result.has_value())
          << lines[i] << " failed in the batch: " << batch[i].error;
      EXPECT_EQ(engine::format_reply(*batch[i].result),
                engine::format_reply(direct))
          << lines[i];
      EXPECT_TRUE(batch[i].error.empty()) << lines[i];
      EXPECT_FALSE(batch[i].invalid_argument) << lines[i];
    } catch (const std::invalid_argument& ex) {
      EXPECT_FALSE(batch[i].result.has_value()) << lines[i];
      EXPECT_TRUE(batch[i].invalid_argument) << lines[i];
      EXPECT_EQ(batch[i].error, ex.what()) << lines[i];
    } catch (const std::exception& ex) {
      EXPECT_FALSE(batch[i].result.has_value()) << lines[i];
      EXPECT_FALSE(batch[i].invalid_argument) << lines[i];
      EXPECT_EQ(batch[i].error, ex.what()) << lines[i];
    }
  }

  EXPECT_TRUE(e.run_batch({}).empty());
}

}  // namespace
}  // namespace probgraph
