#include "core/estimators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace probgraph::est {
namespace {

std::vector<VertexId> range_set(VertexId lo, VertexId hi) {
  std::vector<VertexId> v;
  for (VertexId x = lo; x < hi; ++x) v.push_back(x);
  return v;
}

TEST(BfSizeSwamidass, ZeroOnesMeansEmpty) {
  EXPECT_DOUBLE_EQ(bf_size_swamidass(0, 1024, 2), 0.0);
}

TEST(BfSizeSwamidass, FullFilterStaysFinite) {
  // The raw estimator diverges at B₁ = B; the fixed variant must not.
  const double est = bf_size_swamidass(1024, 1024, 1);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_GT(est, 0.0);
}

TEST(BfSizeSwamidass, RecoverseSizeOnSparseFilter) {
  // Mean over seeds: the estimator tracks |X| when the filter is sparse.
  constexpr std::uint64_t kBits = 1 << 14;
  constexpr std::uint32_t kB = 2;
  const auto xs = range_set(0, 500);
  double acc = 0.0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    BloomFilter bf(kBits, kB, 100 + t);
    bf.insert(xs);
    acc += bf_size_swamidass(bf.count_ones(), kBits, kB);
  }
  EXPECT_NEAR(acc / kTrials, 500.0, 25.0);
}

TEST(BfSizePapapetrou, AgreesWithSwamidassOnLargeFilters) {
  // For large B the two estimators coincide: log(1−1/B) ≈ −1/B.
  constexpr std::uint64_t kBits = 1 << 16;
  BloomFilter bf(kBits, 2, 3);
  bf.insert(range_set(0, 1000));
  const double a = bf_size_swamidass(bf.count_ones(), kBits, 2);
  const double b = bf_size_papapetrou(bf.count_ones(), kBits, 2);
  EXPECT_NEAR(a, b, a * 0.001);
}

TEST(BfIntersectionAnd, TracksTrueIntersection) {
  // |X ∩ Y| = 300 with |X| = |Y| = 600.
  constexpr std::uint64_t kBits = 1 << 14;
  constexpr std::uint32_t kB = 2;
  double acc = 0.0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    BloomFilter x(kBits, kB, 200 + t), y(kBits, kB, 200 + t);
    x.insert(range_set(0, 600));
    y.insert(range_set(300, 900));
    acc += bf_intersection_and(x.view().and_ones(y.view()), kBits, kB);
  }
  EXPECT_NEAR(acc / kTrials, 300.0, 45.0);
}

TEST(BfIntersectionLimit, IsOnesOverB) {
  EXPECT_DOUBLE_EQ(bf_intersection_limit(128, 2), 64.0);
  EXPECT_DOUBLE_EQ(bf_intersection_limit(0, 4), 0.0);
}

TEST(BfIntersectionLimit, ApproachesAndEstimatorOnHugeFilters) {
  // Eq. (4) is the B→∞ limit of Eq. (2): on a very sparse filter the two
  // must agree closely.
  constexpr std::uint64_t kBits = 1 << 20;
  BloomFilter x(kBits, 2, 5), y(kBits, 2, 5);
  x.insert(range_set(0, 400));
  y.insert(range_set(200, 600));
  const std::uint64_t and_ones = x.view().and_ones(y.view());
  const double and_est = bf_intersection_and(and_ones, kBits, 2);
  const double limit_est = bf_intersection_limit(and_ones, 2);
  EXPECT_NEAR(and_est, limit_est, limit_est * 0.01 + 1.0);
}

TEST(BfIntersectionOr, TracksTrueIntersection) {
  constexpr std::uint64_t kBits = 1 << 14;
  constexpr std::uint32_t kB = 2;
  double acc = 0.0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    BloomFilter x(kBits, kB, 300 + t), y(kBits, kB, 300 + t);
    x.insert(range_set(0, 600));
    y.insert(range_set(300, 900));
    acc += bf_intersection_or(600.0, 600.0, x.view().or_ones(y.view()), kBits, kB);
  }
  EXPECT_NEAR(acc / kTrials, 300.0, 45.0);
}

TEST(MhIntersection, ClosedFormIdentity) {
  // With the exact J, Ĵ/(1+Ĵ)(|X|+|Y|) returns |X∩Y| exactly:
  // J/(1+J) = |∩|/(|∪|+|∩|) = |∩|/(|X|+|Y|).
  const double inter = 30.0, sx = 100.0, sy = 80.0;
  const double uni = sx + sy - inter;
  EXPECT_NEAR(mh_intersection(inter / uni, sx, sy), inter, 1e-10);
  EXPECT_DOUBLE_EQ(mh_intersection(0.0, sx, sy), 0.0);
  // J = 1 (identical sets of size s): estimate is s.
  EXPECT_DOUBLE_EQ(mh_intersection(1.0, 50.0, 50.0), 50.0);
}

TEST(SketchOverloads, AgreeWithRawFormulas) {
  BloomFilter bx(4096, 2, 7), by(4096, 2, 7);
  bx.insert(range_set(0, 100));
  by.insert(range_set(50, 150));
  EXPECT_DOUBLE_EQ(intersection(bx, by),
                   bf_intersection_and(bx.view().and_ones(by.view()), 4096, 2));

  KHashSketch kx(64, 9), ky(64, 9);
  kx.build(range_set(0, 100));
  ky.build(range_set(50, 150));
  EXPECT_DOUBLE_EQ(intersection(kx, ky, 100, 100),
                   mh_intersection(kx.jaccard(ky), 100, 100));

  OneHashSketch ox(64, 9), oy(64, 9);
  ox.build(range_set(0, 100));
  oy.build(range_set(50, 150));
  EXPECT_DOUBLE_EQ(intersection(ox, oy, 100, 100),
                   mh_intersection(ox.jaccard(oy), 100, 100));
}

// Parameterized sweep: the AND estimator is consistent — error shrinks as
// the filter grows (§II-F "consistency", checked at three widths).
class BfConsistencySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfConsistencySweep, ErrorShrinksWithFilterSize) {
  const std::uint64_t bits = GetParam();
  double acc = 0.0;
  constexpr int kTrials = 16;
  for (int t = 0; t < kTrials; ++t) {
    BloomFilter x(bits, 2, 400 + t), y(bits, 2, 400 + t);
    x.insert(range_set(0, 200));
    y.insert(range_set(100, 300));
    acc += bf_intersection_and(x.view().and_ones(y.view()), bits, 2);
  }
  const double rel_err = std::abs(acc / kTrials - 100.0) / 100.0;
  // Tolerance tightens with size: 2^12 → 20%, 2^14 → 10%, 2^16 → 5%.
  const double tolerance = bits >= (1u << 16) ? 0.05 : bits >= (1u << 14) ? 0.10 : 0.20;
  EXPECT_LT(rel_err, tolerance) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Widths, BfConsistencySweep,
                         ::testing::Values(1u << 12, 1u << 14, 1u << 16));

}  // namespace
}  // namespace probgraph::est
