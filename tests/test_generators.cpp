#include "graph/generators.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "algorithms/connected_components.hpp"

namespace probgraph::gen {
namespace {

TEST(Complete, EdgeAndDegreeCounts) {
  const CsrGraph g = complete(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 15u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Star, HubAndLeaves) {
  const CsrGraph g = star(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 9u);
  for (VertexId v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(PathAndCycle, EdgeCounts) {
  EXPECT_EQ(path(10).num_edges(), 9u);
  EXPECT_EQ(cycle(10).num_edges(), 10u);
  EXPECT_EQ(cycle(10).degree(0), 2u);
}

TEST(CompleteBipartite, Structure) {
  const CsrGraph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 4u);
  for (VertexId v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3u);
  // No intra-side edges.
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(3, 4));
}

TEST(CliqueChain, ComponentStructure) {
  const CsrGraph g = clique_chain(5, 4);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 5u * 6u);
  std::size_t num_components = 0;
  (void)algo::connected_components(g, &num_components);
  EXPECT_EQ(num_components, 5u);
}

TEST(Kronecker, SizeAndSimplicity) {
  const CsrGraph g = kronecker(10, 8.0, 42);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_GT(g.num_edges(), 1000u);      // duplicates removed, so below target
  EXPECT_LE(g.num_edges(), 8192u);
  EXPECT_NO_THROW(g.validate());
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Kronecker, DeterministicUnderSeed) {
  const CsrGraph a = kronecker(8, 4.0, 7);
  const CsrGraph b = kronecker(8, 4.0, 7);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v));
  }
}

TEST(Kronecker, SkewedPartitionProducesSkewedDegrees) {
  const CsrGraph g = kronecker(12, 16.0, 3);
  // A power-law-ish graph has max degree well above the average.
  EXPECT_GT(static_cast<double>(g.max_degree()), 4.0 * g.avg_degree());
}

TEST(Kronecker, RejectsBadParameters) {
  EXPECT_THROW(kronecker(31, 4.0, 1), std::invalid_argument);
  EXPECT_THROW(kronecker(8, 4.0, 1, 0.5, 0.4, 0.3), std::invalid_argument);
}

TEST(ErdosRenyi, EdgeCountMatchesExpectation) {
  const VertexId n = 300;
  const double p = 0.1;
  const CsrGraph g = erdos_renyi(n, p, 11);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 5.0 * std::sqrt(expected));
  EXPECT_NO_THROW(g.validate());
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  EXPECT_EQ(erdos_renyi(20, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(20, 1.0, 1).num_edges(), 190u);
  EXPECT_THROW(erdos_renyi(10, 1.5, 1), std::invalid_argument);
}

TEST(ErdosRenyiM, ApproximatesTargetEdges) {
  const CsrGraph g = erdos_renyi_m(1000, 5000, 13);
  // Collisions/self-loops lose a few edges.
  EXPECT_GT(g.num_edges(), 4800u);
  EXPECT_LE(g.num_edges(), 5000u);
}

TEST(BarabasiAlbert, DegreesAndSkew) {
  const CsrGraph g = barabasi_albert(2000, 4, 17);
  EXPECT_EQ(g.num_vertices(), 2000u);
  EXPECT_NO_THROW(g.validate());
  // Preferential attachment: max degree far above attach count.
  EXPECT_GT(g.max_degree(), 40u);
  EXPECT_THROW(barabasi_albert(3, 4, 1), std::invalid_argument);
}

TEST(WattsStrogatz, RegularWhenNoRewiring) {
  const CsrGraph g = watts_strogatz(100, 3, 0.0, 19);
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(g.degree(v), 6u);
  EXPECT_THROW(watts_strogatz(5, 3, 0.0, 1), std::invalid_argument);
}

TEST(WattsStrogatz, RewiringKeepsValidity) {
  const CsrGraph g = watts_strogatz(200, 4, 0.3, 23);
  EXPECT_NO_THROW(g.validate());
  EXPECT_GT(g.num_edges(), 600u);  // some rewires collide and are dropped
}

}  // namespace
}  // namespace probgraph::gen
