#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace probgraph::util {
namespace {

TEST(Murmur3X86_32, MatchesReferenceVectors) {
  // Reference vectors from the canonical smhasher implementation.
  EXPECT_EQ(murmur3_x86_32("", 0, 0), 0u);
  EXPECT_EQ(murmur3_x86_32("", 0, 1), 0x514E28B7u);
  EXPECT_EQ(murmur3_x86_32("", 0, 0xffffffff), 0x81F16F39u);
  EXPECT_EQ(murmur3_x86_32("test", 4, 0x9747b28c), 0x704b81dcu);
  EXPECT_EQ(murmur3_x86_32("Hello, world!", 13, 0x9747b28c), 0x24884CBAu);
}

TEST(Murmur3X86_32, SeedChangesOutput) {
  const std::string key = "probgraph";
  EXPECT_NE(murmur3_x86_32(key.data(), key.size(), 1),
            murmur3_x86_32(key.data(), key.size(), 2));
}

TEST(Murmur3X86_32, HandlesAllTailLengths) {
  const char buf[8] = {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'};
  std::set<std::uint32_t> outputs;
  for (std::size_t len = 0; len <= 8; ++len) {
    outputs.insert(murmur3_x86_32(buf, len, 7));
  }
  EXPECT_EQ(outputs.size(), 9u);  // every prefix hashes differently
}

TEST(Fmix64, IsBijectiveOnSamples) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 10000; ++x) {
    seen.insert(murmur3_fmix64(x));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Fmix64, ZeroMapsToZero) {
  // fmix64(0) == 0 is a known fixed point of the finalizer.
  EXPECT_EQ(murmur3_fmix64(0), 0u);
}

TEST(Hash64, SeedSeparatesStreams) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    seen.insert(hash64(12345, seed));
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(HashToUnit, StaysInHalfOpenUnitInterval) {
  for (std::uint64_t x = 0; x < 1000; ++x) {
    const double u = hash_to_unit(murmur3_fmix64(x));
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  EXPECT_GT(hash_to_unit(0), 0.0);
  EXPECT_LE(hash_to_unit(~std::uint64_t{0}), 1.0);
}

TEST(HashToUnit, IsApproximatelyUniform) {
  int below_half = 0;
  constexpr int kSamples = 20000;
  for (int x = 0; x < kSamples; ++x) {
    if (hash_to_unit(hash64(static_cast<std::uint64_t>(x), 99)) < 0.5) ++below_half;
  }
  EXPECT_NEAR(static_cast<double>(below_half) / kSamples, 0.5, 0.02);
}

TEST(HashFamily, MembersAreDeterministic) {
  const HashFamily f(123);
  EXPECT_EQ(f(0, 42), f(0, 42));
  EXPECT_EQ(f(3, 42), f(3, 42));
}

TEST(HashFamily, MembersDiffer) {
  const HashFamily f(123);
  EXPECT_NE(f(0, 42), f(1, 42));
  EXPECT_NE(f(1, 42), f(2, 42));
}

TEST(HashFamily, SeedsSeparateFamilies) {
  const HashFamily f1(1), f2(2);
  EXPECT_NE(f1(0, 42), f2(0, 42));
}

TEST(HashFamily, MembersLookIndependent) {
  // Count collisions of (h0 mod 2, h1 mod 2) over many inputs: all four
  // quadrants should be roughly equally likely if members are independent.
  const HashFamily f(7);
  int quad[4] = {0, 0, 0, 0};
  constexpr int kSamples = 40000;
  for (int x = 0; x < kSamples; ++x) {
    const int q = static_cast<int>((f(0, x) & 1) << 1 | (f(1, x) & 1));
    ++quad[q];
  }
  for (const int count : quad) {
    EXPECT_NEAR(static_cast<double>(count) / kSamples, 0.25, 0.02);
  }
}

}  // namespace
}  // namespace probgraph::util
