// End-to-end integration tests: the full paper pipeline on one graph —
// build, sketch under a storage budget, run every mining algorithm with
// every representation, and check accuracy/memory envelopes jointly.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/clique_count.hpp"
#include "algorithms/clustering.hpp"
#include "algorithms/link_prediction.hpp"
#include "algorithms/triangle_count.hpp"
#include "baselines/colorful.hpp"
#include "baselines/doulion.hpp"
#include "core/bounds.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"
#include "util/threading.hpp"

namespace probgraph {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new CsrGraph(gen::kronecker(11, 16.0, 2024));
    dag_ = new CsrGraph(degree_orient(*graph_));
    exact_tc_ = algo::triangle_count_exact_oriented(*dag_);
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete dag_;
    graph_ = nullptr;
    dag_ = nullptr;
  }

  static const CsrGraph* graph_;
  static const CsrGraph* dag_;
  static std::uint64_t exact_tc_;
};

const CsrGraph* PipelineTest::graph_ = nullptr;
const CsrGraph* PipelineTest::dag_ = nullptr;
std::uint64_t PipelineTest::exact_tc_ = 0;

TEST_F(PipelineTest, EveryRepresentationReproducesTcWithinBand) {
  for (const SketchKind kind : {SketchKind::kBloomFilter, SketchKind::kKHash,
                                SketchKind::kOneHash, SketchKind::kKmv}) {
    ProbGraphConfig cfg;
    cfg.kind = kind;
    cfg.storage_budget = 0.33;
    cfg.budget_reference_bytes = graph_->memory_bytes();
    cfg.bf_hashes = 1;
    if (kind != SketchKind::kBloomFilter) cfg.minhash_k = 16;
    // KMV's difference-of-sizes estimator needs a larger k for comparable
    // variance (est = du + dv − est_union amplifies union noise).
    if (kind == SketchKind::kKmv) cfg.minhash_k = 64;
    // Average a few sketch builds: single-hash representations correlate
    // errors across edges within one build (see test_triangle_count.cpp).
    double est = 0.0;
    constexpr int kSeeds = 5;
    for (int s = 0; s < kSeeds; ++s) {
      cfg.seed = 7 + s;
      const ProbGraph pg(*dag_, cfg);
      est += algo::triangle_count_probgraph(pg, algo::TcMode::kOriented);
    }
    const double rel = est / kSeeds / static_cast<double>(exact_tc_);
    EXPECT_GT(rel, 0.6) << to_string(kind);
    EXPECT_LT(rel, 1.4) << to_string(kind);
  }
}

TEST_F(PipelineTest, AccuracyImprovesWithBudget) {
  double err_small = 0.0, err_large = 0.0;
  for (int t = 0; t < 3; ++t) {
    ProbGraphConfig small, large;
    small.storage_budget = 0.05;
    large.storage_budget = 0.8;
    small.bf_hashes = large.bf_hashes = 1;
    small.seed = large.seed = 40 + t;
    const ProbGraph pg_small(*dag_, small), pg_large(*dag_, large);
    err_small += std::abs(algo::triangle_count_probgraph(pg_small) -
                          static_cast<double>(exact_tc_));
    err_large += std::abs(algo::triangle_count_probgraph(pg_large) -
                          static_cast<double>(exact_tc_));
  }
  EXPECT_LT(err_large, err_small);
}

TEST_F(PipelineTest, MinHashTcRespectsItsConcentrationBound) {
  // Thm. VII.1: estimate the violation rate of the 1H bound at a generous t
  // over independent seeds — it must not exceed the bound.
  constexpr int kTrials = 10;
  const double sum_d2 = graph_->degree_moment(2);
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  cfg.minhash_k = 32;
  const double t = 0.5 * static_cast<double>(exact_tc_);
  const double bound = bounds::tc_mh_deviation_bound(sum_d2, cfg.minhash_k, t);
  int violations = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    cfg.seed = 900 + trial;
    const ProbGraph pg(*graph_, cfg);
    const double est = algo::triangle_count_probgraph(pg, algo::TcMode::kFull);
    if (std::abs(est - static_cast<double>(exact_tc_)) >= t) ++violations;
  }
  EXPECT_LE(static_cast<double>(violations) / kTrials, std::min(1.0, bound + 0.2));
}

TEST_F(PipelineTest, ParallelAndSequentialAgreeExactly) {
  // Exact kernels must be invariant under thread count (no data races).
  std::uint64_t seq_tc = 0;
  {
    util::ThreadScope scope(1);
    seq_tc = algo::triangle_count_exact_oriented(*dag_);
  }
  EXPECT_EQ(seq_tc, exact_tc_);

  ProbGraphConfig cfg;
  cfg.seed = 3;
  double par_est = 0.0, seq_est = 0.0;
  {
    const ProbGraph pg(*dag_, cfg);
    par_est = algo::triangle_count_probgraph(pg);
  }
  {
    util::ThreadScope scope(1);
    const ProbGraph pg(*dag_, cfg);
    seq_est = algo::triangle_count_probgraph(pg);
  }
  // Double reduction order may differ: allow tiny FP slack.
  EXPECT_NEAR(par_est, seq_est, std::abs(seq_est) * 1e-9 + 1e-6);
}

TEST_F(PipelineTest, CliquePipelineRuns) {
  const auto exact_ck = algo::four_clique_count_exact_oriented(*dag_);
  ProbGraphConfig cfg;
  cfg.storage_budget = 0.33;
  cfg.budget_reference_bytes = graph_->memory_bytes();
  cfg.bf_hashes = 1;
  cfg.seed = 8;
  const ProbGraph pg(*dag_, cfg);
  const double est = algo::four_clique_count_probgraph(pg);
  if (exact_ck > 0) {
    EXPECT_GT(est, 0.0);
    EXPECT_NEAR(est / static_cast<double>(exact_ck), 1.0, 1.0);
  }
}

TEST_F(PipelineTest, ClusteringPipelineAcrossMeasures) {
  ProbGraphConfig cfg;
  cfg.storage_budget = 0.33;
  cfg.bf_hashes = 2;
  cfg.seed = 9;
  const ProbGraph pg(*graph_, cfg);
  for (const auto m : {algo::SimilarityMeasure::kJaccard, algo::SimilarityMeasure::kOverlap,
                       algo::SimilarityMeasure::kCommonNeighbors}) {
    const double tau = (m == algo::SimilarityMeasure::kCommonNeighbors) ? 2.0 : 0.05;
    const auto exact = algo::jarvis_patrick_exact(*graph_, m, tau);
    const auto approx = algo::jarvis_patrick_probgraph(pg, m, tau);
    ASSERT_GT(exact.num_clusters, 0u);
    const double rel = static_cast<double>(approx.num_clusters) /
                       static_cast<double>(exact.num_clusters);
    EXPECT_GT(rel, 0.4) << to_string(m);
    EXPECT_LT(rel, 2.5) << to_string(m);
  }
}

TEST_F(PipelineTest, BaselinesAndProbGraphRankAsInPaper) {
  // Fig. 6 shape: a well-provisioned PG(1H) beats aggressive edge sampling
  // (Doulion p = 0.05) on accuracy, in expectation over seeds.
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  cfg.minhash_k = 32;
  double pg_err = 0.0, doulion_err = 0.0;
  constexpr int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    cfg.seed = 60 + t;
    const ProbGraph pg(*dag_, cfg);
    pg_err += std::abs(algo::triangle_count_probgraph(pg) -
                       static_cast<double>(exact_tc_));
    doulion_err += std::abs(baselines::doulion_tc(*graph_, 0.05, 60 + t).estimate -
                            static_cast<double>(exact_tc_));
  }
  EXPECT_LT(pg_err / kTrials, doulion_err / kTrials);
}

TEST_F(PipelineTest, LinkPredictionEndToEnd) {
  algo::LinkPredictionConfig cfg;
  cfg.removal_fraction = 0.05;
  cfg.seed = 77;
  const auto exact = algo::link_prediction_exact(*graph_, cfg);
  ProbGraphConfig pg_cfg;
  pg_cfg.storage_budget = 0.5;
  pg_cfg.bf_hashes = 2;
  const auto approx = algo::link_prediction_probgraph(*graph_, cfg, pg_cfg);
  EXPECT_EQ(exact.num_removed, approx.num_removed);
  // Sketch scores should not collapse the predictor: within 30 points.
  EXPECT_NEAR(approx.effectiveness, exact.effectiveness, 0.3);
}

}  // namespace
}  // namespace probgraph
