#include "core/intersect.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace probgraph {
namespace {

std::vector<VertexId> sorted_random_set(util::Xoshiro256& rng, std::size_t size,
                                        VertexId universe) {
  std::set<VertexId> s;
  while (s.size() < size) s.insert(static_cast<VertexId>(rng.bounded(universe)));
  return {s.begin(), s.end()};
}

std::uint64_t brute_force(const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
  std::uint64_t count = 0;
  for (const VertexId x : a) {
    count += std::count(b.begin(), b.end(), x);
  }
  return count;
}

TEST(IntersectMerge, HandCases) {
  const std::vector<VertexId> a{1, 3, 5, 7};
  const std::vector<VertexId> b{3, 4, 5, 8};
  EXPECT_EQ(intersect_size_merge(a, b), 2u);
  EXPECT_EQ(intersect_size_merge(a, a), 4u);
  EXPECT_EQ(intersect_size_merge(a, {}), 0u);
  EXPECT_EQ(intersect_size_merge({}, {}), 0u);
}

TEST(IntersectGallop, HandCases) {
  const std::vector<VertexId> small{5, 100};
  std::vector<VertexId> large;
  for (VertexId i = 0; i < 200; ++i) large.push_back(i);
  EXPECT_EQ(intersect_size_gallop(small, large), 2u);
  EXPECT_EQ(intersect_size_gallop(large, small), 2u);  // auto-swaps
  EXPECT_EQ(intersect_size_gallop(small, {}), 0u);
}

TEST(IntersectInto, MaterializesCommonElements) {
  const std::vector<VertexId> a{1, 2, 3, 9};
  const std::vector<VertexId> b{2, 3, 4};
  std::vector<VertexId> out;
  intersect_into(a, b, out);
  EXPECT_EQ(out, (std::vector<VertexId>{2, 3}));
}

// Property sweep: all three kernels agree with brute force on random set
// pairs of widely varying size ratios.
struct IntersectCase {
  std::size_t size_a;
  std::size_t size_b;
  VertexId universe;
};

class IntersectProperty : public ::testing::TestWithParam<IntersectCase> {};

TEST_P(IntersectProperty, KernelsAgreeWithBruteForce) {
  const auto& param = GetParam();
  util::Xoshiro256 rng(1234 + param.size_a * 31 + param.size_b);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = sorted_random_set(rng, param.size_a, param.universe);
    const auto b = sorted_random_set(rng, param.size_b, param.universe);
    const std::uint64_t expected = brute_force(a, b);
    EXPECT_EQ(intersect_size_merge(a, b), expected);
    EXPECT_EQ(intersect_size_gallop(a, b), expected);
    EXPECT_EQ(intersect_size_adaptive(a, b), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeRatios, IntersectProperty,
    ::testing::Values(IntersectCase{1, 1, 50}, IntersectCase{10, 10, 100},
                      IntersectCase{5, 500, 2000}, IntersectCase{500, 5, 2000},
                      IntersectCase{100, 3000, 10000}, IntersectCase{256, 256, 512},
                      IntersectCase{50, 50, 55}));  // dense overlap

}  // namespace
}  // namespace probgraph
