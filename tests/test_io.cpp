#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"

namespace probgraph::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "probgraph_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  void write_file(const std::string& name, const std::string& content) const {
    std::ofstream out(path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  const CsrGraph g = gen::kronecker(8, 4.0, 42);
  write_edge_list(g, path("g.el"));
  const CsrGraph h = read_edge_list(path("g.el"));
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST_F(IoTest, EdgeListSkipsComments) {
  write_file("c.el", "# comment\n% other comment\n0 1\n1 2\n");
  const CsrGraph g = read_edge_list(path("c.el"));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, EdgeListRejectsGarbage) {
  write_file("bad.el", "0 1\nnot numbers\n");
  EXPECT_THROW(read_edge_list(path("bad.el")), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list(path("nope.el")), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketBasic) {
  write_file("m.mtx",
             "%%MatrixMarket matrix coordinate pattern symmetric\n"
             "% a comment\n"
             "3 3 2\n"
             "1 2\n"
             "2 3\n");
  const CsrGraph g = read_matrix_market(path("m.mtx"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST_F(IoTest, MatrixMarketIgnoresValues) {
  write_file("w.mtx",
             "%%MatrixMarket matrix coordinate real general\n"
             "2 2 1\n"
             "1 2 3.75\n");
  const CsrGraph g = read_matrix_market(path("w.mtx"));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST_F(IoTest, MatrixMarketRejectsBadHeader) {
  write_file("h.mtx", "not a matrix market file\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(path("h.mtx")), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketRejectsZeroBasedIndices) {
  write_file("z.mtx",
             "%%MatrixMarket matrix coordinate pattern general\n"
             "2 2 1\n"
             "0 1\n");
  EXPECT_THROW(read_matrix_market(path("z.mtx")), std::runtime_error);
}

}  // namespace
}  // namespace probgraph::io
