#include "algorithms/kclique.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/clique_count.hpp"
#include "algorithms/triangle_count.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"

namespace probgraph::algo {
namespace {

std::uint64_t choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  std::uint64_t result = 1;
  for (std::uint64_t i = 0; i < k; ++i) result = result * (n - i) / (i + 1);
  return result;
}

TEST(KCliqueExact, RejectsSmallK) {
  const CsrGraph g = gen::complete(5);
  EXPECT_THROW((void)kclique_count_exact(g, 2), std::invalid_argument);
}

TEST(KCliqueExact, CompleteGraphClosedForms) {
  const CsrGraph g = gen::complete(12);
  for (unsigned k = 3; k <= 7; ++k) {
    EXPECT_EQ(kclique_count_exact(g, k), choose(12, k)) << "k=" << k;
  }
}

TEST(KCliqueExact, DegeneratesToTriangleAndFourCliqueCounting) {
  const CsrGraph g = gen::kronecker(10, 16.0, 3);
  EXPECT_EQ(kclique_count_exact(g, 3), triangle_count_exact(g));
  EXPECT_EQ(kclique_count_exact(g, 4), four_clique_count_exact(g));
}

TEST(KCliqueExact, CliqueChainClosedForm) {
  // 6 disjoint K_7s: 6·C(7,5) five-cliques.
  const CsrGraph g = gen::clique_chain(6, 7);
  EXPECT_EQ(kclique_count_exact(g, 5), 6 * choose(7, 5));
  EXPECT_EQ(kclique_count_exact(g, 7), 6u);
  EXPECT_EQ(kclique_count_exact(g, 8), 0u);
}

TEST(KCliqueExact, TriangleFreeGraphsHaveNoCliques) {
  for (unsigned k = 3; k <= 5; ++k) {
    EXPECT_EQ(kclique_count_exact(gen::complete_bipartite(10, 10), k), 0u);
    EXPECT_EQ(kclique_count_exact(gen::cycle(30), k), 0u);
  }
}

TEST(KCliqueProbGraph, RejectsNonBloom) {
  const CsrGraph dag = degree_orient(gen::complete(8));
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  const ProbGraph pg(dag, cfg);
  EXPECT_THROW((void)kclique_count_probgraph(pg, 4), std::invalid_argument);
}

TEST(KCliqueProbGraph, MatchesTriangleEstimatorAtK3) {
  const CsrGraph dag = degree_orient(gen::kronecker(9, 12.0, 7));
  ProbGraphConfig cfg;
  cfg.bf_bits = 2048;
  cfg.bf_hashes = 2;
  cfg.seed = 5;
  const ProbGraph pg(dag, cfg);
  const double via_kclique = kclique_count_probgraph(pg, 3);
  const double via_tc = triangle_count_probgraph(pg, TcMode::kOriented);
  EXPECT_NEAR(via_kclique, via_tc, std::abs(via_tc) * 1e-9 + 1e-6);
}

class KCliqueSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(KCliqueSweep, BloomEstimateTracksExactOnDenseGraph) {
  const unsigned k = GetParam();
  const CsrGraph g = gen::clique_chain(8, 12);  // plenty of k-cliques, k <= 12
  const CsrGraph dag = degree_orient(g);
  const auto exact = static_cast<double>(kclique_count_exact_oriented(dag, k));
  ASSERT_GT(exact, 0.0);
  ProbGraphConfig cfg;
  cfg.bf_bits = 4096;  // generous width: chained ANDs compound FP noise
  cfg.bf_hashes = 2;
  cfg.seed = 3;
  const ProbGraph pg(dag, cfg);
  const double est = kclique_count_probgraph(pg, k);
  EXPECT_NEAR(est / exact, 1.0, 0.35) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, KCliqueSweep, ::testing::Values(3u, 4u, 5u));

}  // namespace
}  // namespace probgraph::algo
