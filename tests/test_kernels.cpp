// Differential tests for the SIMD kernel layer (src/core/kernels/): the
// dispatched kernels (whatever level cpuid selected — AVX2/AVX512/NEON on
// capable hosts, scalar otherwise) must match the portable scalar
// reference bit for bit on sorted sets and bitvectors across the edge
// cases that break vector code: empty spans, single elements, sizes
// straddling the 8/16-lane block boundaries, odd tail words, and the
// duplicate-free invariant. Plus the backend-level guarantee: the batched
// est_intersection sweep equals the per-pair loop bitwise.
//
// On a host without SIMD support (or with PROBGRAPH_SIMD=OFF) the
// dispatched kernels ARE the scalar ones and these tests degenerate to
// self-comparison — still useful as API coverage, and the CI matrix runs
// at least one leg where the levels differ.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/backends.hpp"
#include "core/intersect.hpp"
#include "core/kernels/kernels.hpp"
#include "core/prob_graph.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace pb = probgraph;
namespace pk = probgraph::kernels;

namespace {

std::vector<pb::VertexId> random_sorted_set(std::size_t size, pb::VertexId universe,
                                            pb::util::Xoshiro256& rng) {
  std::unordered_set<pb::VertexId> used;
  while (used.size() < size) {
    used.insert(static_cast<pb::VertexId>(rng.bounded(universe)));
  }
  std::vector<pb::VertexId> out(used.begin(), used.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> random_words(std::size_t n, pb::util::Xoshiro256& rng) {
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) x = rng();
  return w;
}

// Sizes straddling the AVX2 8-lane / AVX512 8-word / unroll-16 boundaries.
constexpr std::size_t kBoundarySizes[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65};

TEST(Kernels, ActiveLevelIsNamed) {
  const char* name = pk::level_name(pk::active_level());
  EXPECT_TRUE(name != nullptr && name[0] != '\0');
}

TEST(Kernels, IntersectCountMatchesScalarOnBoundarySizes) {
  pb::util::Xoshiro256 rng(7);
  for (const std::size_t na : kBoundarySizes) {
    for (const std::size_t nb : kBoundarySizes) {
      // Small universe forces overlaps; loop a few draws per shape.
      for (int rep = 0; rep < 4; ++rep) {
        const auto a = random_sorted_set(na, 200, rng);
        const auto b = random_sorted_set(nb, 200, rng);
        const auto expected = pk::scalar::intersect_count_merge(a, b);
        EXPECT_EQ(pk::intersect_count_merge(a, b), expected)
            << "merge na=" << na << " nb=" << nb;
        EXPECT_EQ(pk::intersect_count_gallop(a, b), expected)
            << "gallop na=" << na << " nb=" << nb;
        EXPECT_EQ(pk::intersect_count(a, b), expected)
            << "adaptive na=" << na << " nb=" << nb;
      }
    }
  }
}

TEST(Kernels, IntersectCountRandomizedLargeAndSkewed) {
  pb::util::Xoshiro256 rng(11);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t na = 1 + rng.bounded(2000);
    const std::size_t nb = 1 + rng.bounded(2000) * (rep % 5 == 0 ? 8 : 1);
    const auto universe = static_cast<pb::VertexId>(2 * (na + nb) + 1);
    const auto a = random_sorted_set(na, universe, rng);
    const auto b = random_sorted_set(nb, universe, rng);
    const auto expected = pk::scalar::intersect_count_merge(a, b);
    EXPECT_EQ(pk::intersect_count_merge(a, b), expected);
    EXPECT_EQ(pk::intersect_count_gallop(a, b), expected);
    EXPECT_EQ(pk::scalar::intersect_count_gallop(a, b), expected);
    EXPECT_EQ(pk::intersect_count(a, b), expected);
  }
}

TEST(Kernels, IntersectIntoMatchesScalarAndStaysSorted) {
  pb::util::Xoshiro256 rng(13);
  for (int rep = 0; rep < 60; ++rep) {
    const std::size_t na = rng.bounded(300);
    const std::size_t nb = rng.bounded(300) * (rep % 4 == 0 ? 40 : 1);
    const auto universe = static_cast<pb::VertexId>(na + nb + 50);
    const auto a = random_sorted_set(na, universe, rng);
    const auto b = random_sorted_set(nb, universe, rng);

    std::vector<pb::VertexId> expected;
    pk::scalar::intersect_into_merge(a, b, expected);

    std::vector<pb::VertexId> got;
    pk::intersect_into(a, b, got);  // adaptive + dispatched
    EXPECT_EQ(got, expected);

    got.clear();
    pk::scalar::intersect_into_gallop(a, b, got);
    EXPECT_EQ(got, expected);
  }
}

TEST(Kernels, IntersectIntoAppendsWithoutClearing) {
  const std::vector<pb::VertexId> a{1, 3, 5};
  const std::vector<pb::VertexId> b{3, 5, 9};
  std::vector<pb::VertexId> out{42};
  pk::intersect_into(a, b, out);
  EXPECT_EQ(out, (std::vector<pb::VertexId>{42, 3, 5}));
}

TEST(Kernels, PopcountFamilyMatchesScalarOnOddTails) {
  pb::util::Xoshiro256 rng(17);
  for (const std::size_t n : kBoundarySizes) {
    for (int rep = 0; rep < 4; ++rep) {
      const auto a = random_words(n, rng);
      const auto b = random_words(n, rng);
      const auto c = random_words(n, rng);
      EXPECT_EQ(pk::and_popcount(a, b), pk::scalar::and_popcount(a.data(), b.data(), n))
          << "and n=" << n;
      EXPECT_EQ(pk::or_popcount(a, b), pk::scalar::or_popcount(a.data(), b.data(), n))
          << "or n=" << n;
      EXPECT_EQ(pk::and3_popcount(a, b, c),
                pk::scalar::and3_popcount(a.data(), b.data(), c.data(), n))
          << "and3 n=" << n;
      EXPECT_EQ(pk::popcount(a), pk::scalar::popcount(a.data(), n)) << "pop n=" << n;
    }
  }
}

TEST(Kernels, PopcountExtremes) {
  const std::vector<std::uint64_t> zeros(33, 0);
  const std::vector<std::uint64_t> ones(33, ~std::uint64_t{0});
  EXPECT_EQ(pk::popcount(zeros), 0u);
  EXPECT_EQ(pk::popcount(ones), 33u * 64u);
  EXPECT_EQ(pk::and_popcount(zeros, ones), 0u);
  EXPECT_EQ(pk::or_popcount(zeros, ones), 33u * 64u);
  EXPECT_EQ(pk::and3_popcount(ones, ones, ones), 33u * 64u);
}

TEST(Kernels, MatchCountSkipsEmptySlots) {
  pb::util::Xoshiro256 rng(23);
  for (const std::size_t n : kBoundarySizes) {
    for (int rep = 0; rep < 4; ++rep) {
      auto a = random_words(n, rng);
      auto b = random_words(n, rng);
      // Force matches, empty-slot collisions, and empty-vs-empty pairs.
      for (std::size_t i = 0; i < n; ++i) {
        const auto r = rng.bounded(4);
        if (r == 0) b[i] = a[i];
        if (r == 1) a[i] = pb::kEmptySlot;
        if (r == 2) {
          a[i] = pb::kEmptySlot;
          b[i] = pb::kEmptySlot;
        }
      }
      EXPECT_EQ(pk::match_count_u64(a, b, pb::kEmptySlot),
                pk::scalar::match_count_u64(a.data(), b.data(), n, pb::kEmptySlot))
          << "n=" << n;
    }
  }
}

TEST(Kernels, MinMergeMatchesKmvSemantics) {
  // Distinct interleaved values plus shared values consumed from both
  // sides but counted once.
  const std::vector<double> a{0.1, 0.3, 0.5};
  const std::vector<double> b{0.2, 0.3, 0.6};
  const auto r = pk::min_merge(a, b, 4);
  EXPECT_EQ(r.taken, 4u);
  EXPECT_DOUBLE_EQ(r.kth, 0.5);
  // Exhaustion before k.
  const auto r2 = pk::min_merge(a, b, 10);
  EXPECT_EQ(r2.taken, 5u);  // {0.1, 0.2, 0.3, 0.5, 0.6}
  EXPECT_DOUBLE_EQ(r2.kth, 0.6);
  const auto r3 = pk::min_merge({}, {}, 5);
  EXPECT_EQ(r3.taken, 0u);
}

// Backend-level guarantee: batched sweep == per-pair loop, bitwise, for
// every sketch kind (Bloom overrides the batch with the cache-blocked
// kernel; the others exercise the generic fallback).
TEST(Kernels, BackendBatchMatchesPairLoopBitwise) {
  const pb::CsrGraph g = pb::gen::kronecker(9, 8.0, 99);
  for (const pb::SketchKind kind :
       {pb::SketchKind::kBloomFilter, pb::SketchKind::kKHash, pb::SketchKind::kOneHash,
        pb::SketchKind::kKmv}) {
    for (const pb::BfEstimator est :
         {pb::BfEstimator::kAnd, pb::BfEstimator::kLimit, pb::BfEstimator::kOr}) {
      if (kind != pb::SketchKind::kBloomFilter && est != pb::BfEstimator::kAnd) continue;
      pb::ProbGraphConfig cfg;
      cfg.kind = kind;
      cfg.bf_estimator = est;
      cfg.storage_budget = 0.25;
      const pb::ProbGraph pg(g, cfg);
      pg.visit_backend([&](const auto& be) {
        std::vector<double> batch;
        for (pb::VertexId u = 0; u < g.num_vertices(); u += 7) {
          const auto cands = g.neighbors(u);
          if (cands.empty()) continue;
          batch.assign(cands.size(), -1.0);
          be.est_intersection_batch(u, cands, batch.data());
          for (std::size_t i = 0; i < cands.size(); ++i) {
            const double expected = be.est_intersection(u, cands[i]);
            // Bitwise identity, not tolerance: the batch must be the same
            // computation.
            EXPECT_EQ(batch[i], expected)
                << "kind=" << static_cast<int>(kind) << " u=" << u << " i=" << i;
          }
        }
      });
    }
  }
}

// The derived-measure helpers must agree with the per-pair estimators
// (they are the same code path; this pins the refactor).
TEST(Kernels, DerivedMeasuresAgreeWithHelpers) {
  const pb::CsrGraph g = pb::gen::kronecker(8, 8.0, 5);
  pb::ProbGraphConfig cfg;
  cfg.kind = pb::SketchKind::kBloomFilter;
  cfg.storage_budget = 0.25;
  const pb::ProbGraph pg(g, cfg);
  pg.visit_backend([&](const auto& be) {
    for (pb::VertexId u = 0; u < g.num_vertices(); u += 11) {
      for (const pb::VertexId v : g.neighbors(u)) {
        const double raw = be.est_intersection(u, v);
        EXPECT_EQ(be.est_jaccard(u, v), be.jaccard_from_intersection(u, v, raw));
        EXPECT_EQ(be.est_overlap(u, v), be.overlap_from_intersection(u, v, raw));
        EXPECT_EQ(be.est_total_neighbors(u, v), be.total_from_intersection(u, v, raw));
      }
    }
  });
}

}  // namespace
