#include "core/kmv.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace probgraph {
namespace {

std::vector<VertexId> range_set(VertexId lo, VertexId hi) {
  std::vector<VertexId> v;
  for (VertexId x = lo; x < hi; ++x) v.push_back(x);
  return v;
}

TEST(KmvSketch, RejectsTinyK) {
  EXPECT_THROW(KmvSketch(0, 1), std::invalid_argument);
  EXPECT_THROW(KmvSketch(1, 1), std::invalid_argument);
}

TEST(KmvSketch, UnsaturatedSketchIsExact) {
  KmvSketch s(64, 3);
  s.build(range_set(0, 20));
  EXPECT_DOUBLE_EQ(s.estimate_size(), 20.0);
}

TEST(KmvSketch, EmptySetEstimatesZero) {
  KmvSketch s(8, 3);
  s.build({});
  EXPECT_DOUBLE_EQ(s.estimate_size(), 0.0);
}

TEST(KmvSketch, ValuesSortedAndInUnitInterval) {
  KmvSketch s(32, 5);
  s.build(range_set(0, 500));
  const auto vals = s.values();
  EXPECT_EQ(vals.size(), 32u);
  EXPECT_TRUE(std::is_sorted(vals.begin(), vals.end()));
  for (const double v : vals) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(KmvSketch, SizeEstimateConcentrates) {
  // Mean over seeds: (k-1)/max is approximately unbiased for |X|.
  const auto xs = range_set(0, 5000);
  double acc = 0.0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    KmvSketch s(256, 100 + t);
    s.build(xs);
    acc += s.estimate_size();
  }
  EXPECT_NEAR(acc / kTrials, 5000.0, 5000.0 * 0.05);
}

TEST(KmvSketch, UniteKeepsSmallestOfBoth) {
  KmvSketch a(16, 7), b(16, 7);
  a.build(range_set(0, 100));
  b.build(range_set(100, 200));
  const KmvSketch u = KmvSketch::unite(a, b);
  EXPECT_EQ(u.values().size(), 16u);
  // Union values are the 16 smallest of the 32 inputs.
  std::vector<double> all(a.values().begin(), a.values().end());
  all.insert(all.end(), b.values().begin(), b.values().end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(u.values()[i], all[i]);
  }
}

TEST(KmvSketch, UniteDeduplicatesSharedElements) {
  // The same underlying set in both sketches: the union sketch must equal
  // the individual sketch, not double-count hashes.
  KmvSketch a(16, 9), b(16, 9);
  const auto xs = range_set(0, 300);
  a.build(xs);
  b.build(xs);
  const KmvSketch u = KmvSketch::unite(a, b);
  ASSERT_EQ(u.values().size(), a.values().size());
  for (std::size_t i = 0; i < u.values().size(); ++i) {
    EXPECT_DOUBLE_EQ(u.values()[i], a.values()[i]);
  }
}

TEST(KmvSketch, IntersectionViaInclusionExclusion) {
  // |X| = |Y| = 1000, overlap 400 → union 1600, intersection 400.
  const auto xs = range_set(0, 1000);
  const auto ys = range_set(600, 1600);
  double acc = 0.0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    KmvSketch a(256, 500 + t), b(256, 500 + t);
    a.build(xs);
    b.build(ys);
    acc += KmvSketch::estimate_intersection(a, b, 1000.0, 1000.0);
  }
  EXPECT_NEAR(acc / kTrials, 400.0, 80.0);
}

TEST(KmvSketch, IntersectionClampedAtZero) {
  // Disjoint sets: inclusion-exclusion may go negative; must clamp.
  KmvSketch a(32, 11), b(32, 11);
  a.build(range_set(0, 500));
  b.build(range_set(10000, 10500));
  EXPECT_GE(KmvSketch::estimate_intersection(a, b, 500.0, 500.0), 0.0);
}

}  // namespace
}  // namespace probgraph
