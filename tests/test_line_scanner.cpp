// net::LineScanner — the socket-independent incremental framer behind both
// transports' request framing.
//
// The regression this file exists for: the old blocking LineReader's
// overlong-frame resync assumed it could keep reading until the next
// newline INSIDE one call. Feeding the same bytes a byte at a time (what a
// nonblocking socket legitimately delivers) lost the discard state and
// either re-reported the same oversized frame or served its tail as a
// request. The scanner's discard state must survive any number of feeds.
#include "net/line_scanner.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

namespace probgraph::net {
namespace {

using Next = LineScanner::Next;

TEST(LineScanner, DeliversFramesAcrossArbitrarySplits) {
  LineScanner scanner(64);
  std::string line;
  EXPECT_EQ(scanner.next(line), Next::kNeedMore);

  scanner.feed("sta");
  EXPECT_EQ(scanner.next(line), Next::kNeedMore);
  scanner.feed("ts\npair 0");
  EXPECT_EQ(scanner.next(line), Next::kLine);
  EXPECT_EQ(line, "stats");
  EXPECT_EQ(scanner.next(line), Next::kNeedMore);
  scanner.feed(" 1\n");
  EXPECT_EQ(scanner.next(line), Next::kLine);
  EXPECT_EQ(line, "pair 0 1");
}

TEST(LineScanner, OneByteAtATimeMatchesWholeFeeds) {
  const std::string input = "tc\nstats\n\npair 0 1\n";
  LineScanner scanner(64);
  std::string line;
  std::vector<std::string> frames;
  for (const char byte : input) {
    scanner.feed({&byte, 1});
    while (scanner.next(line) == Next::kLine) frames.push_back(line);
  }
  EXPECT_EQ(frames,
            (std::vector<std::string>{"tc", "stats", "", "pair 0 1"}));
}

TEST(LineScanner, CompleteOverlongLineAnswersOnceAndResyncs) {
  LineScanner scanner(8);
  std::string line;
  scanner.feed("123456789\nok\n");  // 9 > 8, newline already present
  EXPECT_EQ(scanner.next(line), Next::kOverlong);
  EXPECT_NE(line.find("8-byte limit"), std::string::npos) << line;
  EXPECT_EQ(scanner.next(line), Next::kLine);
  EXPECT_EQ(line, "ok");
}

TEST(LineScanner, OverlongResyncStateSurvivesOneByteFeeds) {
  // THE regression: the frame crosses the bound long before its newline
  // arrives, and everything — the report, the discard, the resync, the
  // next valid frame — happens one byte at a time.
  LineScanner scanner(8);
  std::string line;
  int overlong_reports = 0;
  std::vector<std::string> frames;

  const std::string input = std::string(100, 'x') + "\nstats\n";
  for (const char byte : input) {
    scanner.feed({&byte, 1});
    for (;;) {
      const Next r = scanner.next(line);
      if (r == Next::kNeedMore) break;
      if (r == Next::kOverlong) {
        ++overlong_reports;
      } else {
        frames.push_back(line);
      }
    }
  }
  EXPECT_EQ(overlong_reports, 1) << "the oversized frame must answer exactly once";
  EXPECT_EQ(frames, (std::vector<std::string>{"stats"}));
  EXPECT_EQ(scanner.buffered(), 0u);
}

TEST(LineScanner, BackToBackOverlongFramesEachReportOnce) {
  LineScanner scanner(8);
  std::string line;
  int overlong_reports = 0;
  std::vector<std::string> frames;
  const std::string input =
      std::string(50, 'a') + "\n" + std::string(50, 'b') + "\nok\n";
  for (std::size_t i = 0; i < input.size(); i += 3) {  // ragged 3-byte feeds
    scanner.feed(input.substr(i, 3));
    for (;;) {
      const Next r = scanner.next(line);
      if (r == Next::kNeedMore) break;
      if (r == Next::kOverlong) {
        ++overlong_reports;
      } else {
        frames.push_back(line);
      }
    }
  }
  EXPECT_EQ(overlong_reports, 2);
  EXPECT_EQ(frames, (std::vector<std::string>{"ok"}));
}

TEST(LineScanner, FinishDeliversTheUnterminatedTail) {
  // getline semantics at EOF: a final frame without a newline still counts.
  LineScanner scanner(64);
  std::string line;
  scanner.feed("stats");
  EXPECT_EQ(scanner.next(line), Next::kNeedMore);
  EXPECT_EQ(scanner.finish(line), Next::kLine);
  EXPECT_EQ(line, "stats");
  EXPECT_EQ(scanner.finish(line), Next::kNeedMore);  // nothing left
}

TEST(LineScanner, FinishSwallowsADiscardedTail) {
  // EOF lands mid-discard: the oversized frame was already answered when
  // it crossed the bound; its unterminated tail must NOT become a frame.
  LineScanner scanner(8);
  std::string line;
  scanner.feed(std::string(20, 'x'));
  EXPECT_EQ(scanner.next(line), Next::kOverlong);
  scanner.feed("yyy");  // still the same monster frame, newline never comes
  EXPECT_EQ(scanner.next(line), Next::kNeedMore);
  EXPECT_EQ(scanner.finish(line), Next::kNeedMore);
}

TEST(LineScanner, ZeroBoundMeansUnbounded) {
  LineScanner scanner(0);
  std::string line;
  const std::string big(1 << 20, 'z');
  scanner.feed(big);
  EXPECT_EQ(scanner.next(line), Next::kNeedMore);
  scanner.feed("\n");
  EXPECT_EQ(scanner.next(line), Next::kLine);
  EXPECT_EQ(line, big);
}

TEST(LineScanner, ExactBoundLengthIsNotOverlong) {
  LineScanner scanner(5);
  std::string line;
  scanner.feed("12345\n123456\n");
  EXPECT_EQ(scanner.next(line), Next::kLine);  // len == bound: allowed
  EXPECT_EQ(line, "12345");
  EXPECT_EQ(scanner.next(line), Next::kOverlong);  // len == bound+1: not
}

}  // namespace
}  // namespace probgraph::net
