#include "algorithms/link_prediction.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace probgraph::algo {
namespace {

TEST(LinkPredictionExact, ZeroRemovalIsNoOp) {
  const CsrGraph g = gen::clique_chain(4, 6);
  LinkPredictionConfig cfg;
  cfg.removal_fraction = 0.0;
  const LinkPredictionResult r = link_prediction_exact(g, cfg);
  EXPECT_EQ(r.num_removed, 0u);
  EXPECT_EQ(r.hits, 0u);
}

TEST(LinkPredictionExact, EffectivenessIsAValidPrecision) {
  const CsrGraph g = gen::kronecker(9, 10.0, 7);
  LinkPredictionConfig cfg;
  cfg.removal_fraction = 0.1;
  cfg.seed = 5;
  const LinkPredictionResult r = link_prediction_exact(g, cfg);
  EXPECT_GT(r.num_removed, 0u);
  EXPECT_LE(r.hits, r.num_removed);
  EXPECT_GE(r.effectiveness, 0.0);
  EXPECT_LE(r.effectiveness, 1.0);
  EXPECT_GT(r.num_candidates, 0u);
}

TEST(LinkPredictionExact, RecoverssIntraCliqueEdges) {
  // Removing edges inside dense cliques: common-neighbor scores of the
  // removed pairs dominate all true non-edges (which connect cliques never
  // share neighbors), so effectiveness should be high.
  const CsrGraph g = gen::clique_chain(6, 10);
  LinkPredictionConfig cfg;
  cfg.removal_fraction = 0.05;
  cfg.seed = 11;
  const LinkPredictionResult r = link_prediction_exact(g, cfg);
  EXPECT_GT(r.effectiveness, 0.9);
}

TEST(LinkPredictionExact, DeterministicUnderSeed) {
  const CsrGraph g = gen::kronecker(8, 8.0, 9);
  LinkPredictionConfig cfg;
  cfg.seed = 21;
  const LinkPredictionResult a = link_prediction_exact(g, cfg);
  const LinkPredictionResult b = link_prediction_exact(g, cfg);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.num_candidates, b.num_candidates);
}

TEST(LinkPredictionExact, MeasureSelectionChangesScores) {
  const CsrGraph g = gen::kronecker(9, 12.0, 13);
  LinkPredictionConfig cn, ja;
  cn.measure = SimilarityMeasure::kCommonNeighbors;
  ja.measure = SimilarityMeasure::kJaccard;
  cn.seed = ja.seed = 31;
  // Both must run; hit counts may differ but are valid.
  const auto r1 = link_prediction_exact(g, cn);
  const auto r2 = link_prediction_exact(g, ja);
  EXPECT_LE(r1.hits, r1.num_removed);
  EXPECT_LE(r2.hits, r2.num_removed);
}

class LinkPredictionPgSweep : public ::testing::TestWithParam<SketchKind> {};

TEST_P(LinkPredictionPgSweep, SketchScoresRecoverPlantedEdges) {
  const CsrGraph g = gen::clique_chain(6, 10);
  LinkPredictionConfig cfg;
  cfg.removal_fraction = 0.05;
  cfg.seed = 17;
  ProbGraphConfig pg_cfg;
  pg_cfg.kind = GetParam();
  pg_cfg.storage_budget = 1.0;
  pg_cfg.seed = 3;
  const LinkPredictionResult r = link_prediction_probgraph(g, cfg, pg_cfg);
  EXPECT_GT(r.effectiveness, 0.6) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LinkPredictionPgSweep,
                         ::testing::Values(SketchKind::kBloomFilter, SketchKind::kKHash,
                                           SketchKind::kOneHash, SketchKind::kKmv),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace probgraph::algo
