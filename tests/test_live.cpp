// The live-update subsystem: delta log, incremental sketch maintenance,
// batch application, and the LiveEngine epoch swap.
//
// The load-bearing assertions are BIT-IDENTITY ones: after any update, the
// resealed substrates — arenas, derived parameters, served estimates —
// must equal what a cold build of the updated edge list produces, for all
// four sketch kinds in both orientations (the apply layer's acceptance
// bar, src/live/apply.hpp). Estimates are bitwise deterministic only at
// one OpenMP thread, so the suite pins util::set_threads(1) like
// tests/test_engine.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/incremental.hpp"
#include "core/prob_graph.hpp"
#include "engine/engine.hpp"
#include "engine/generation.hpp"
#include "engine/protocol.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/orientation.hpp"
#include "io/snapshot.hpp"
#include "live/apply.hpp"
#include "live/delta.hpp"
#include "obs/metrics.hpp"
#include "util/threading.hpp"

namespace probgraph {
namespace {

class PinThreads : public ::testing::Environment {
 public:
  void SetUp() override { util::set_threads(1); }
};
const auto* const kPin =
    ::testing::AddGlobalTestEnvironment(new PinThreads);  // NOLINT(cert-err58-cpp)

std::string data_path(const char* name) {
  return std::string(PROBGRAPH_TEST_DATA_DIR) + "/" + name;
}

/// A unique scratch path under the build tree, removed on destruction.
class TempPath {
 public:
  explicit TempPath(const std::string& suffix) {
    static int counter = 0;
    path_ = ::testing::TempDir() + "probgraph_live_" + std::to_string(++counter) +
            suffix;
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  TempPath(const TempPath&) = delete;
  TempPath& operator=(const TempPath&) = delete;

  [[nodiscard]] const std::string& str() const noexcept { return path_; }

 private:
  std::string path_;
};

/// The golden 32-vertex circulant graph's edges (chords 1, 2, 5).
std::vector<Edge> golden_edges() {
  const CsrGraph g = io::read_edge_list(data_path("golden.el"));
  std::vector<Edge> edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  return edges;
}

/// The updated edge set: base ∪ inserts − deletes (normalized u < v).
std::vector<Edge> edit_edges(std::vector<Edge> edges, const live::DeltaBatch& batch) {
  const auto norm = [](Edge e) {
    if (e.first > e.second) std::swap(e.first, e.second);
    return e;
  };
  std::set<Edge> set;
  for (const Edge& e : edges) set.insert(norm(e));
  for (const Edge& e : batch.inserts) {
    if (e.first != e.second) set.insert(norm(e));
  }
  for (const Edge& e : batch.deletes) set.erase(norm(e));
  return {set.begin(), set.end()};
}

/// Every arena byte plus the derived parameters and stored config of two
/// substrates must agree.
void expect_bit_identical(const ProbGraph& got, const ProbGraph& want,
                          const std::string& what) {
  ASSERT_EQ(got.kind(), want.kind()) << what;
  EXPECT_EQ(sketch_params_of(got), sketch_params_of(want)) << what;
  EXPECT_EQ(got.config().seed, want.config().seed) << what;
  const auto eq_span = [&](const auto& a, const auto& b, const char* arena) {
    ASSERT_EQ(a.size(), b.size()) << what << " " << arena << " size";
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << what << " " << arena << "[" << i << "]";
    }
  };
  eq_span(got.bf_arena(), want.bf_arena(), "bf");
  eq_span(got.kh_arena(), want.kh_arena(), "kh");
  eq_span(got.kmv_arena(), want.kmv_arena(), "kmv");
  eq_span(got.sketch_sizes(), want.sketch_sizes(), "sizes");
  const auto oh_got = got.oh_arena();
  const auto oh_want = want.oh_arena();
  ASSERT_EQ(oh_got.size(), oh_want.size()) << what << " oh size";
  for (std::size_t i = 0; i < oh_got.size(); ++i) {
    ASSERT_EQ(oh_got[i].hash, oh_want[i].hash) << what << " oh[" << i << "]";
    ASSERT_EQ(oh_got[i].element, oh_want[i].element) << what << " oh[" << i << "]";
  }
}

// --- Delta log. ---

TEST(DeltaLog, RoundTripAndAppend) {
  TempPath path(".pgd");
  const live::DeltaBatch b1{{{0, 9}, {3, 17}}, {{0, 1}}};
  const live::DeltaBatch b2{{{5, 6}}, {}};
  {
    live::DeltaLogWriter writer(path.str());
    writer.append(b1);
    writer.append({});  // empty batches are not recorded
  }
  {
    // Reopening validates the header and appends after the last record.
    live::DeltaLogWriter writer(path.str());
    writer.append(b2);
  }
  const std::vector<live::DeltaBatch> read = live::read_delta_log(path.str());
  ASSERT_EQ(read.size(), 2u);
  EXPECT_EQ(read[0].inserts, b1.inserts);
  EXPECT_EQ(read[0].deletes, b1.deletes);
  EXPECT_EQ(read[1].inserts, b2.inserts);
  EXPECT_TRUE(read[1].deletes.empty());
}

TEST(DeltaLog, CorruptionAndForeignFilesRejected) {
  TempPath path(".pgd");
  {
    live::DeltaLogWriter writer(path.str());
    writer.append({{{0, 9}}, {}});
  }
  // Flip one endpoint byte: the batch checksum must catch it.
  {
    std::fstream f(path.str(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\x7f');
  }
  EXPECT_THROW((void)live::read_delta_log(path.str()), std::runtime_error);

  // A truncated record (half an endpoint missing) is rejected too.
  {
    std::remove(path.str().c_str());
    live::DeltaLogWriter writer(path.str());
    writer.append({{{0, 9}}, {}});
  }
  std::ifstream in(path.str(), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path.str(), std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 3));
  EXPECT_THROW((void)live::read_delta_log(path.str()), std::runtime_error);

  // A foreign file never opens as a log — neither for reading nor append.
  std::ofstream(path.str(), std::ios::binary | std::ios::trunc)
      << "not a delta log at all";
  EXPECT_THROW((void)live::read_delta_log(path.str()), std::runtime_error);
  EXPECT_THROW(live::DeltaLogWriter{path.str()}, std::runtime_error);
}

// --- Incremental sketch maintenance. ---

TEST(Incremental, DerivedParamsMatchColdConstructor) {
  const CsrGraph g = io::read_edge_list(data_path("golden.el"));
  for (const SketchKind kind : {SketchKind::kBloomFilter, SketchKind::kKHash,
                                SketchKind::kOneHash, SketchKind::kKmv}) {
    ProbGraphConfig cfg;
    cfg.kind = kind;
    const ProbGraph pg(g, cfg);
    EXPECT_EQ(derive_sketch_params(cfg, g.num_vertices(), g.memory_bytes()),
              sketch_params_of(pg))
        << to_string(kind);
  }
}

TEST(Incremental, ApplyInsertReplicatesColdBuildPerKind) {
  // Fold golden's edges into updaters seeded from a cold build over a
  // PREFIX graph (same vertex set, two-thirds of the edges): the patched
  // arenas must be bit-identical to a cold build of the full graph.
  // Explicit bf_bits/minhash_k keep the derived parameters independent of
  // the edge count, which is the incremental path's precondition.
  const std::vector<Edge> all = golden_edges();
  const std::vector<Edge> prefix(all.begin(), all.begin() + 2 * all.size() / 3);
  const CsrGraph g_old = GraphBuilder::from_edges(prefix, 32);
  const CsrGraph g_new = GraphBuilder::from_edges(all, 32);

  for (const SketchKind kind : {SketchKind::kBloomFilter, SketchKind::kKHash,
                                SketchKind::kOneHash, SketchKind::kKmv}) {
    ProbGraphConfig cfg;
    cfg.kind = kind;
    cfg.bf_bits = 256;
    cfg.minhash_k = 6;
    const ProbGraph base(g_old, cfg);
    const ProbGraph cold(g_new, cfg);
    ASSERT_EQ(sketch_params_of(base), sketch_params_of(cold)) << to_string(kind);

    SketchUpdater up(base, g_new.num_vertices());
    for (VertexId v = 0; v < g_new.num_vertices(); ++v) {
      // Per-vertex diff: old and new adjacency are sorted; fold only the
      // genuinely new neighbors.
      const auto old_n = g_old.neighbors(v);
      const auto new_n = g_new.neighbors(v);
      std::size_t i = 0;
      for (const VertexId x : new_n) {
        if (i < old_n.size() && old_n[i] == x) {
          ++i;
        } else {
          up.apply_insert(v, x);
        }
      }
      ASSERT_EQ(i, old_n.size()) << "old adjacency not a subset at v=" << v;
    }
    const ProbGraph patched = std::move(up).seal(g_new, cfg, 0.0);
    expect_bit_identical(patched, cold, std::string("patched ") + to_string(kind));
  }
}

TEST(Incremental, RebuildVertexReplicatesColdBuildPerKind) {
  // The churn fallback: reset + re-fold EVERY vertex from the new
  // adjacency must also land exactly on the cold build (this is the path
  // deletions and DAG arc flips take).
  const std::vector<Edge> all = golden_edges();
  std::vector<Edge> edited(all.begin(), all.end() - 4);  // drop 4 edges
  edited.push_back({0, 9});
  const CsrGraph g_old = GraphBuilder::from_edges(all, 32);
  const CsrGraph g_new = GraphBuilder::from_edges(edited, 32);

  for (const SketchKind kind : {SketchKind::kBloomFilter, SketchKind::kKHash,
                                SketchKind::kOneHash, SketchKind::kKmv}) {
    ProbGraphConfig cfg;
    cfg.kind = kind;
    cfg.bf_bits = 192;
    cfg.minhash_k = 5;
    const ProbGraph base(g_old, cfg);
    const ProbGraph cold(g_new, cfg);

    SketchUpdater up(base, g_new.num_vertices());
    for (VertexId v = 0; v < g_new.num_vertices(); ++v) {
      up.rebuild_vertex(v, g_new.neighbors(v));
    }
    const ProbGraph rebuilt = std::move(up).seal(g_new, cfg, 0.0);
    expect_bit_identical(rebuilt, cold, std::string("rebuilt ") + to_string(kind));
  }
}

// --- apply_batch: the full-portfolio reseal. ---

/// Build the 4-kind × both-orientations golden snapshot at `path`.
void build_full_snapshot(const std::string& path) {
  const CsrGraph g = io::read_edge_list(data_path("golden.el"));
  const std::vector<SketchKind> kinds{SketchKind::kBloomFilter, SketchKind::kKHash,
                                      SketchKind::kOneHash,
                                      SketchKind::kKmv};
  const io::SubstrateSet set =
      io::build_substrates(g, kinds, /*symmetric=*/true, /*degree_oriented=*/true);
  io::save_snapshot(path, set.substrates);
}

/// The acceptance comparison: every substrate apply_batch produced must be
/// bit-identical to a cold build_substrates over the updated edge list.
void expect_apply_matches_cold(const live::UpdatedSnapshot& updated,
                               const std::vector<Edge>& new_edges, VertexId new_n) {
  const CsrGraph cold_g = GraphBuilder::from_edges(new_edges, new_n);
  const std::vector<SketchKind> kinds{SketchKind::kBloomFilter, SketchKind::kKHash,
                                      SketchKind::kOneHash,
                                      SketchKind::kKmv};
  const io::SubstrateSet cold = io::build_substrates(
      cold_g, kinds, /*symmetric=*/true, /*degree_oriented=*/true);
  ASSERT_EQ(updated.substrates.size(), cold.substrates.size());
  for (std::size_t i = 0; i < cold.substrates.size(); ++i) {
    const io::SnapshotSubstrate& want = cold.substrates[i];
    // The applied portfolio keeps the FILE's substrate order; find the
    // matching cold substrate by (kind, orientation).
    const io::SnapshotSubstrate* got = nullptr;
    for (const io::SnapshotSubstrate& s : updated.substrates) {
      if (s.pg->kind() == want.pg->kind() &&
          s.degree_oriented == want.degree_oriented) {
        got = &s;
      }
    }
    ASSERT_NE(got, nullptr);
    expect_bit_identical(*got->pg, *want.pg,
                         std::string(to_string(want.pg->kind())) +
                             (want.degree_oriented ? "/dag" : "/sym"));
  }
}

TEST(ApplyBatch, AllKindsBothOrientationsBitIdenticalToColdBuild) {
  TempPath snap_path(".pgs");
  build_full_snapshot(snap_path.str());
  const io::Snapshot snap = io::load_snapshot(snap_path.str());

  // Inserts, deletes, a duplicate, unordered endpoints, a self-loop, and a
  // same-batch insert+delete (the delete wins) — the whole normalization
  // contract in one batch.
  live::DeltaBatch batch;
  batch.inserts = {{0, 9}, {9, 0}, {17, 3}, {4, 4}, {6, 9}, {7, 10}};
  batch.deletes = {{1, 0}, {7, 10}, {20, 24}};  // (20,24) was never present
  const live::UpdatedSnapshot updated = live::apply_batch(snap, batch);

  EXPECT_EQ(updated.stats.inserts_applied, 3u);  // (0,9) (3,17) (6,9)
  EXPECT_EQ(updated.stats.deletes_applied, 1u);  // (0,1)
  EXPECT_EQ(updated.stats.substrates_rebuilt, 0u);
  EXPECT_GT(updated.stats.vertices_patched + updated.stats.vertices_rebuilt, 0u);

  const std::vector<Edge> new_edges = edit_edges(golden_edges(), batch);
  EXPECT_EQ(updated.stats.num_edges, new_edges.size());
  expect_apply_matches_cold(updated, new_edges, 32);
}

TEST(ApplyBatch, InsertsGrowTheVertexSet) {
  TempPath snap_path(".pgs");
  build_full_snapshot(snap_path.str());
  const io::Snapshot snap = io::load_snapshot(snap_path.str());

  live::DeltaBatch batch;
  batch.inserts = {{0, 40}, {40, 41}};  // two vertices past n=32
  const live::UpdatedSnapshot updated = live::apply_batch(snap, batch);
  EXPECT_EQ(updated.stats.num_vertices, 42u);
  EXPECT_EQ(updated.sym->num_vertices(), 42u);

  expect_apply_matches_cold(updated, edit_edges(golden_edges(), batch), 42);
}

TEST(ApplyBatch, ParameterShiftFallsBackColdAndStaysIdentical) {
  // Densify to the complete graph (~5.6× the edges): the budget-derived
  // parameters track the sym CSR bytes, so they shift past their rounding
  // granularity, the incremental precondition fails, and every substrate
  // takes the cold-fallback path — which must STILL match the cold build
  // exactly.
  TempPath snap_path(".pgs");
  build_full_snapshot(snap_path.str());
  const io::Snapshot snap = io::load_snapshot(snap_path.str());

  live::DeltaBatch batch;
  for (VertexId u = 0; u < 32; ++u) {
    for (VertexId v = u + 1; v < 32; ++v) batch.inserts.push_back({u, v});
  }
  const live::UpdatedSnapshot updated = live::apply_batch(snap, batch);
  EXPECT_GT(updated.stats.substrates_rebuilt, 0u);
  expect_apply_matches_cold(updated, edit_edges(golden_edges(), batch), 32);
}

TEST(ApplyBatch, ResealedFileRoundTripsThroughSaveLoad) {
  // The generation pipeline: apply → save → load must serve the same
  // estimates as a cold-built-and-saved snapshot of the updated graph.
  TempPath snap_path(".pgs");
  TempPath sealed_path(".pgs");
  TempPath cold_path(".pgs");
  build_full_snapshot(snap_path.str());
  const io::Snapshot snap = io::load_snapshot(snap_path.str());

  live::DeltaBatch batch{{{0, 9}, {3, 17}}, {{0, 1}}};
  const live::UpdatedSnapshot updated = live::apply_batch(snap, batch);
  io::save_snapshot(sealed_path.str(), updated.substrates);

  const std::vector<Edge> new_edges = edit_edges(golden_edges(), batch);
  const CsrGraph cold_g = GraphBuilder::from_edges(new_edges, 32);
  const std::vector<SketchKind> kinds{SketchKind::kBloomFilter, SketchKind::kKHash,
                                      SketchKind::kOneHash,
                                      SketchKind::kKmv};
  const io::SubstrateSet cold = io::build_substrates(
      cold_g, kinds, /*symmetric=*/true, /*degree_oriented=*/true);
  io::save_snapshot(cold_path.str(), cold.substrates);

  // Byte-identical protocol transcripts across every kind and both
  // orientations — the full serving surface.
  const std::string script =
      "tc\ntc kind=kmv\ntc kind=kh\ntc kind=1h\n4cc\ncc\ncc kind=kmv\n"
      "cc kind=kh\ncc kind=1h\ncluster jaccard 0.1\npair jaccard 0 9 3 17\n"
      "lp 5 common\nstats\nquit\n";
  const auto transcript_of = [&](const std::string& path) {
    engine::Engine e = engine::Engine::from_snapshot(path);
    std::istringstream in(script);
    std::ostringstream out;
    engine::serve_session(e, in, out);
    return out.str();
  };
  const std::string sealed_replies = transcript_of(sealed_path.str());
  EXPECT_EQ(sealed_replies, transcript_of(cold_path.str()));
  EXPECT_EQ(sealed_replies.rfind("ok\ttc\t", 0), 0u) << sealed_replies;
}

// --- LiveEngine: the epoch swap. ---

TEST(LiveEngine, SealSwapsGenerationsAndCachesCannotServeStale) {
  TempPath snap_path(".pgs");
  TempPath log_path(".pgd");
  build_full_snapshot(snap_path.str());

  engine::LiveEngine::Options opts;
  opts.delta_log_path = log_path.str();
  engine::LiveEngine live(snap_path.str(), opts);
  EXPECT_EQ(live.generation(), 1u);

  const std::string script =
      "tc\ntc kind=kmv\ncc\ncc kind=kh\npair jaccard 0 9\nquit\n";
  const auto serve_script = [&] {
    std::istringstream in(script);
    std::ostringstream out;
    engine::serve_session(live, in, out);
    return out.str();
  };

  // Pre-swap queries WARM the generation's lazily-built caches — the exact
  // state a stale-cache bug would leak across the swap.
  const std::string before = serve_script();

  live.stage(/*tombstone=*/false, std::vector<Edge>{{0, 9}, {3, 17}});
  live.stage(/*tombstone=*/true, std::vector<Edge>{{0, 1}});
  EXPECT_EQ(live.pending().inserts, 2u);
  EXPECT_EQ(live.pending().deletes, 1u);
  const engine::LiveEngine::SealResult sealed = live.seal();
  ASSERT_TRUE(sealed.sealed);
  EXPECT_EQ(sealed.generation, 2u);
  EXPECT_EQ(live.generation(), 2u);
  EXPECT_EQ(live.pending().inserts, 0u);
  EXPECT_EQ(live.pending().deletes, 0u);

  // Post-swap replies must be the UPDATED graph's — byte-identical to a
  // cold build served fresh, and different from the warmed pre-swap ones.
  TempPath cold_path(".pgs");
  const live::DeltaBatch batch{{{0, 9}, {3, 17}}, {{0, 1}}};
  const CsrGraph cold_g = GraphBuilder::from_edges(edit_edges(golden_edges(), batch), 32);
  const std::vector<SketchKind> kinds{SketchKind::kBloomFilter, SketchKind::kKHash,
                                      SketchKind::kOneHash,
                                      SketchKind::kKmv};
  const io::SubstrateSet cold = io::build_substrates(
      cold_g, kinds, /*symmetric=*/true, /*degree_oriented=*/true);
  io::save_snapshot(cold_path.str(), cold.substrates);
  engine::Engine cold_engine = engine::Engine::from_snapshot(cold_path.str());
  std::istringstream cold_in(script);
  std::ostringstream cold_out;
  engine::serve_session(cold_engine, cold_in, cold_out);

  const std::string after = serve_script();
  EXPECT_EQ(after, cold_out.str());
  EXPECT_NE(after, before);

  // A second seal with nothing staged is a no-op.
  EXPECT_FALSE(live.seal().sealed);
  EXPECT_EQ(live.generation(), 2u);

  // The sealed batch was logged; replaying it reproduces the generation.
  const std::vector<live::DeltaBatch> log = live::read_delta_log(log_path.str());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].inserts, batch.inserts);
  EXPECT_EQ(log[0].deletes, batch.deletes);
}

TEST(LiveEngine, SealRecordsObservabilityInstruments) {
  TempPath snap_path(".pgs");
  build_full_snapshot(snap_path.str());

  auto& reg = obs::Registry::global();
  const obs::Counter* ins_before =
      reg.find_counter("probgraph_updates_applied_total", {{"op", "insert"}});
  const obs::Counter* del_before =
      reg.find_counter("probgraph_updates_applied_total", {{"op", "delete"}});
  const std::uint64_t ins0 = ins_before == nullptr ? 0 : ins_before->value();
  const std::uint64_t del0 = del_before == nullptr ? 0 : del_before->value();

  engine::LiveEngine live(snap_path.str());
  live.stage(/*tombstone=*/false, std::vector<Edge>{{0, 9}, {3, 17}});
  live.stage(/*tombstone=*/true, std::vector<Edge>{{0, 1}});
  ASSERT_TRUE(live.seal().sealed);

  EXPECT_EQ(reg.gauge("probgraph_generation", "").value(), 2.0);
  EXPECT_EQ(reg.find_counter("probgraph_updates_applied_total", {{"op", "insert"}})
                    ->value() -
                ins0,
            2u);
  EXPECT_EQ(reg.find_counter("probgraph_updates_applied_total", {{"op", "delete"}})
                    ->value() -
                del0,
            1u);
}

}  // namespace
}  // namespace probgraph
