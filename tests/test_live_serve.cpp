// Live serving over real sockets: concurrent query sessions racing a
// writer that stages batches and reseals generations (the TSan CI
// workload for src/engine/generation.hpp's epoch-swap protocol).
//
// The correctness bar mirrors tests/test_live.cpp, observed end to end
// over the wire: every reply a racing client sees belongs to some WHOLE
// generation (never a partial batch), and once the final seal lands the
// served estimates are byte-identical to a from-scratch cold build of the
// final edge list. Replies are bitwise deterministic only at one OpenMP
// thread, so the suite pins util::set_threads(1).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "engine/generation.hpp"
#include "engine/protocol.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "io/snapshot.hpp"
#include "live/delta.hpp"
#include "net/line_reader.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "util/threading.hpp"

namespace probgraph {
namespace {

class PinThreads : public ::testing::Environment {
 public:
  void SetUp() override { util::set_threads(1); }
};
const auto* const kPin =
    ::testing::AddGlobalTestEnvironment(new PinThreads);  // NOLINT(cert-err58-cpp)

std::string data_path(const char* name) {
  return std::string(PROBGRAPH_TEST_DATA_DIR) + "/" + name;
}

class TempPath {
 public:
  explicit TempPath(const std::string& suffix) {
    static int counter = 0;
    path_ = ::testing::TempDir() + "probgraph_live_serve_" +
            std::to_string(++counter) + suffix;
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  TempPath(const TempPath&) = delete;
  TempPath& operator=(const TempPath&) = delete;

  [[nodiscard]] const std::string& str() const noexcept { return path_; }

 private:
  std::string path_;
};

const std::vector<SketchKind> kAllKinds{SketchKind::kBloomFilter, SketchKind::kKHash,
                                        SketchKind::kOneHash,
                                        SketchKind::kKmv};

std::vector<Edge> golden_edges() {
  const CsrGraph g = io::read_edge_list(data_path("golden.el"));
  std::vector<Edge> edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  return edges;
}

std::vector<Edge> edit_edges(std::vector<Edge> edges, const live::DeltaBatch& batch) {
  const auto norm = [](Edge e) {
    if (e.first > e.second) std::swap(e.first, e.second);
    return e;
  };
  std::set<Edge> set;
  for (const Edge& e : edges) set.insert(norm(e));
  for (const Edge& e : batch.inserts) set.insert(norm(e));
  for (const Edge& e : batch.deletes) set.erase(norm(e));
  return {set.begin(), set.end()};
}

/// Build the 4-kind × both-orientations snapshot of `edges` and return the
/// serve_session transcript of `script` against it — the cold-build
/// reference every live reply is compared to.
std::string cold_transcript(const std::vector<Edge>& edges, VertexId n,
                            const std::string& script) {
  TempPath path(".pgs");
  const CsrGraph g = GraphBuilder::from_edges(edges, n);
  const io::SubstrateSet set =
      io::build_substrates(g, kAllKinds, /*symmetric=*/true, /*degree_oriented=*/true);
  io::save_snapshot(path.str(), set.substrates);
  engine::Engine e = engine::Engine::from_snapshot(path.str());
  std::istringstream in(script);
  std::ostringstream out;
  engine::serve_session(e, in, out);
  return out.str();
}

/// One live server over a fresh golden snapshot, run()ning on a background
/// thread for the duration of a test.
struct LiveServerFixture {
  explicit LiveServerFixture(
      net::TransportKind kind = net::TransportKind::kThreads)
      : snap_path(".pgs"), live(build_snapshot(snap_path.str())) {
    net::ServeOptions opts;
    opts.live = &live;
    server = net::make_transport(kind, opts);
    thread = std::thread([this] { server->run(); });
  }

  ~LiveServerFixture() {
    server->request_stop();
    if (thread.joinable()) thread.join();
  }

  /// Builds the snapshot file and hands the path through to LiveEngine.
  static const std::string& build_snapshot(const std::string& path) {
    const CsrGraph g = io::read_edge_list(data_path("golden.el"));
    const io::SubstrateSet set = io::build_substrates(
        g, kAllKinds, /*symmetric=*/true, /*degree_oriented=*/true);
    io::save_snapshot(path, set.substrates);
    return path;
  }

  TempPath snap_path;
  engine::LiveEngine live;
  std::unique_ptr<net::Transport> server;
  std::thread thread;
};

std::string drain(net::Socket& sock) {
  std::string out;
  char buf[4096];
  for (;;) {
    const long got = sock.read_some(buf, sizeof buf);
    if (got <= 0) break;
    out.append(buf, static_cast<std::size_t>(got));
  }
  return out;
}

std::string run_scripted_session(std::uint16_t port, const std::string& script) {
  net::Socket sock = net::connect_to("127.0.0.1", port);
  EXPECT_TRUE(sock.write_all(script));
  sock.shutdown_write();
  return drain(sock);
}

std::string read_reply_line(net::LineReader& reader) {
  std::string line;
  EXPECT_EQ(reader.next(line), net::LineReader::Status::kLine);
  return line;
}

TEST(LiveServe, UpdateVerbsStageAndSealOverTheWire) {
  LiveServerFixture f;
  net::Socket sock = net::connect_to("127.0.0.1", f.server->port());
  net::LineReader reader(sock, 1 << 16);

  ASSERT_TRUE(sock.write_all("epoch\n"));
  EXPECT_EQ(read_reply_line(reader),
            "ok\tepoch\tgeneration=1\tpending_inserts=0\tpending_deletes=0");

  ASSERT_TRUE(sock.write_all("update insert 0 9 3 17\n"));
  EXPECT_EQ(read_reply_line(reader),
            "ok\tupdate\tstaged=insert\tedges=2\tpending_inserts=2\t"
            "pending_deletes=0");
  ASSERT_TRUE(sock.write_all("update delete 0 1\n"));
  EXPECT_EQ(read_reply_line(reader),
            "ok\tupdate\tstaged=delete\tedges=1\tpending_inserts=2\t"
            "pending_deletes=1");

  // Staged changes are INVISIBLE until sealed: still generation 1 replies.
  const std::string pre_seal = cold_transcript(golden_edges(), 32, "tc\nquit\n");
  ASSERT_TRUE(sock.write_all("tc\n"));
  EXPECT_EQ(read_reply_line(reader) + "\n",
            pre_seal.substr(0, pre_seal.find("bye")));

  ASSERT_TRUE(sock.write_all("update seal\n"));
  const std::string sealed = read_reply_line(reader);
  EXPECT_EQ(sealed.rfind("ok\tupdate\tsealed\tgeneration=2\tapplied_inserts=2\t"
                         "applied_deletes=1",
                         0),
            0u)
      << sealed;

  ASSERT_TRUE(sock.write_all("epoch\nupdate seal\nquit\n"));
  EXPECT_EQ(read_reply_line(reader),
            "ok\tepoch\tgeneration=2\tpending_inserts=0\tpending_deletes=0");
  EXPECT_EQ(read_reply_line(reader), "ok\tupdate\tnoop\tgeneration=2");
  EXPECT_EQ(read_reply_line(reader), "bye");

  // Post-swap, a full multi-kind session must be byte-identical to the
  // cold build of the updated edge list.
  const live::DeltaBatch batch{{{0, 9}, {3, 17}}, {{0, 1}}};
  const std::string script =
      "tc\ntc kind=kmv\ntc kind=kh\ntc kind=1h\n4cc\ncc\ncc kind=kmv\n"
      "cluster jaccard 0.1\npair jaccard 0 9\nlp 5 common\nstats\nquit\n";
  EXPECT_EQ(run_scripted_session(f.server->port(), script),
            cold_transcript(edit_edges(golden_edges(), batch), 32, script));
}

TEST(LiveServe, UpdateVerbsStageAndSealOverTheEpollTransport) {
  // The same stage → seal → query flow over the reactor, with the whole
  // session PIPELINED into one segment: the epoll transport must accept
  // the live verbs, order them against the queries, and answer the final
  // multi-kind script byte-identical to the cold build — exactly like the
  // thread-per-connection transport above.
  LiveServerFixture f(net::TransportKind::kEpoll);

  const std::string flow =
      "epoch\nupdate insert 0 9 3 17\nupdate delete 0 1\nupdate seal\n"
      "epoch\nquit\n";
  const std::string transcript = run_scripted_session(f.server->port(), flow);
  std::istringstream lines(transcript);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "ok\tepoch\tgeneration=1\tpending_inserts=0\tpending_deletes=0");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            "ok\tupdate\tstaged=insert\tedges=2\tpending_inserts=2\t"
            "pending_deletes=0");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            "ok\tupdate\tstaged=delete\tedges=1\tpending_inserts=2\t"
            "pending_deletes=1");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("ok\tupdate\tsealed\tgeneration=2\tapplied_inserts=2\t"
                       "applied_deletes=1",
                       0),
            0u)
      << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "ok\tepoch\tgeneration=2\tpending_inserts=0\tpending_deletes=0");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "bye");

  const live::DeltaBatch batch{{{0, 9}, {3, 17}}, {{0, 1}}};
  const std::string script =
      "tc\ntc kind=kmv\ntc kind=kh\ntc kind=1h\n4cc\ncc\ncc kind=kmv\n"
      "cluster jaccard 0.1\npair jaccard 0 9\nlp 5 common\nstats\nquit\n";
  EXPECT_EQ(run_scripted_session(f.server->port(), script),
            cold_transcript(edit_edges(golden_edges(), batch), 32, script));
}

TEST(LiveServe, StaticServerRejectsUpdateVerbs) {
  engine::Engine eng = engine::Engine::from_snapshot(data_path("golden.pgs"));
  net::ServeOptions opts;
  opts.engine = &eng;
  auto server = net::make_transport(net::TransportKind::kThreads, opts);
  std::thread runner([&] { server->run(); });

  const std::string transcript = run_scripted_session(
      server->port(), "update insert 0 9\nepoch\nstats\nquit\n");
  server->request_stop();
  runner.join();

  std::istringstream lines(transcript);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("err\t", 0), 0u) << line;
  EXPECT_NE(line.find("--live"), std::string::npos) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("err\t", 0), 0u) << line;
  // The session recovers: plain queries keep working.
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("ok\tstats\t", 0), 0u) << line;
}

TEST(LiveServe, ConcurrentSessionsAcrossResealsSeeOnlyWholeGenerations) {
  // The acceptance workload: 4 query clients hammering one live server
  // while a writer session stages three batches and reseals after each.
  // Consistency is per QUERY (each reply pins one generation), not per
  // session: a seal landing between a session's tc and cc legitimately
  // answers them from consecutive generations. What must hold for every
  // reply is that it matches SOME generation's cold build — a reply
  // matching none (a torn batch, a stale cache, a half-swapped pointer)
  // is the bug — and that the generations a session observes never move
  // backwards. Runs under the TSan CI job, where the sanitizer's ~10x
  // slowdown widens the between-queries window until swaps actually land
  // there.
  LiveServerFixture f;

  const std::vector<live::DeltaBatch> batches{
      {{{0, 3}, {1, 4}}, {}},
      {{{2, 5}, {6, 9}}, {}},
      {{{7, 10}}, {{0, 1}}},
  };
  const std::string probe = "tc\ncc\nquit\n";

  // Each generation's expected probe reply lines: {tc line, cc line}.
  std::vector<std::array<std::string, 2>> expected;
  std::vector<Edge> edges = golden_edges();
  const auto probe_lines = [&](const std::vector<Edge>& es) {
    std::istringstream t(cold_transcript(es, 32, probe));
    std::array<std::string, 2> lines;
    EXPECT_TRUE(std::getline(t, lines[0]));
    EXPECT_TRUE(std::getline(t, lines[1]));
    return lines;
  };
  expected.push_back(probe_lines(edges));
  for (const live::DeltaBatch& b : batches) {
    edges = edit_edges(std::move(edges), b);
    expected.push_back(probe_lines(edges));
  }

  std::atomic<bool> stop{false};
  constexpr int kClients = 4;
  std::vector<std::vector<std::string>> transcripts(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto& mine = transcripts[static_cast<std::size_t>(i)];
      while (!stop.load()) {
        mine.push_back(run_scripted_session(f.server->port(), probe));
      }
    });
  }

  // The writer: one session, three stage+seal rounds, each acknowledged
  // before the next so generations advance 1 → 2 → 3 → 4.
  {
    net::Socket sock = net::connect_to("127.0.0.1", f.server->port());
    net::LineReader reader(sock, 1 << 16);
    for (const live::DeltaBatch& b : batches) {
      std::string req = "update insert";
      for (const Edge& e : b.inserts) {
        req += " " + std::to_string(e.first) + " " + std::to_string(e.second);
      }
      req += "\n";
      ASSERT_TRUE(sock.write_all(req));
      EXPECT_EQ(read_reply_line(reader).rfind("ok\tupdate\tstaged=insert", 0), 0u);
      if (!b.deletes.empty()) {
        req = "update delete";
        for (const Edge& e : b.deletes) {
          req += " " + std::to_string(e.first) + " " + std::to_string(e.second);
        }
        req += "\n";
        ASSERT_TRUE(sock.write_all(req));
        EXPECT_EQ(read_reply_line(reader).rfind("ok\tupdate\tstaged=delete", 0), 0u);
      }
      ASSERT_TRUE(sock.write_all("update seal\n"));
      EXPECT_EQ(read_reply_line(reader).rfind("ok\tupdate\tsealed\t", 0), 0u);
      // Let the clients observe this generation before the next seal.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_TRUE(sock.write_all("quit\n"));
    EXPECT_EQ(read_reply_line(reader), "bye");
  }
  stop.store(true);
  for (auto& t : clients) t.join();

  // Every racing reply is EXACTLY one generation's, and the generations a
  // session sees are non-decreasing (the epoch only advances).
  std::size_t total = 0;
  for (int i = 0; i < kClients; ++i) {
    for (const std::string& t : transcripts[static_cast<std::size_t>(i)]) {
      ++total;
      std::istringstream lines(t);
      std::string tc_line, cc_line, bye;
      ASSERT_TRUE(std::getline(lines, tc_line) && std::getline(lines, cc_line) &&
                  std::getline(lines, bye))
          << "client " << i << " got a short transcript:\n" << t;
      EXPECT_EQ(bye, "bye");
      bool known = false;
      for (std::size_t g = 0; g < expected.size(); ++g) {
        if (tc_line != expected[g][0]) continue;
        // The cc reply may come from the tc's generation or any LATER one
        // (a seal between the two queries), never an earlier one.
        for (std::size_t h = g; h < expected.size(); ++h) {
          known = known || cc_line == expected[h][1];
        }
      }
      EXPECT_TRUE(known) << "client " << i
                         << " saw a reply matching no generation (or a "
                            "generation moving backwards):\n"
                         << t;
    }
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(f.live.generation(), 4u);

  // After the last seal the server must serve generation 4 exactly.
  EXPECT_EQ(run_scripted_session(f.server->port(), probe),
            expected.back()[0] + "\n" + expected.back()[1] + "\nbye\n");
}

TEST(LiveServe, LongSessionPinsAcrossSwapsReplyByReply) {
  // One session issuing queries one at a time while seals land between
  // them: each reply individually matches some whole generation (the
  // per-query Pin), and replies after the seal match the NEW one.
  LiveServerFixture f;
  const std::string tc_gen1 = cold_transcript(golden_edges(), 32, "tc\nquit\n");
  const live::DeltaBatch batch{{{0, 3}, {1, 4}}, {}};
  const std::string tc_gen2 =
      cold_transcript(edit_edges(golden_edges(), batch), 32, "tc\nquit\n");
  const auto tc_line = [](const std::string& transcript) {
    return transcript.substr(0, transcript.find('\n'));
  };

  net::Socket sock = net::connect_to("127.0.0.1", f.server->port());
  net::LineReader reader(sock, 1 << 16);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sock.write_all("tc\n"));
    EXPECT_EQ(read_reply_line(reader), tc_line(tc_gen1));
  }
  f.live.stage(/*tombstone=*/false, batch.inserts);
  ASSERT_TRUE(f.live.seal().sealed);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sock.write_all("tc\n"));
    EXPECT_EQ(read_reply_line(reader), tc_line(tc_gen2));
  }
  ASSERT_TRUE(sock.write_all("quit\n"));
  EXPECT_EQ(read_reply_line(reader), "bye");
}

}  // namespace
}  // namespace probgraph
