#include "core/minhash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace probgraph {
namespace {

std::vector<VertexId> range_set(VertexId lo, VertexId hi) {
  std::vector<VertexId> v;
  for (VertexId x = lo; x < hi; ++x) v.push_back(x);
  return v;
}

TEST(KHashSketch, RejectsZeroK) {
  EXPECT_THROW(KHashSketch(0, 1), std::invalid_argument);
}

TEST(KHashSketch, IdenticalSetsHaveJaccardOne) {
  KHashSketch a(64, 5), b(64, 5);
  const auto xs = range_set(0, 100);
  a.build(xs);
  b.build(xs);
  EXPECT_DOUBLE_EQ(a.jaccard(b), 1.0);
}

TEST(KHashSketch, DisjointSetsHaveJaccardZero) {
  KHashSketch a(64, 5), b(64, 5);
  a.build(range_set(0, 100));
  b.build(range_set(1000, 1100));
  EXPECT_DOUBLE_EQ(a.jaccard(b), 0.0);
}

TEST(KHashSketch, EmptySetMatchesNothing) {
  KHashSketch a(16, 5), b(16, 5);
  a.build({});
  b.build(range_set(0, 10));
  EXPECT_DOUBLE_EQ(a.jaccard(b), 0.0);
  // All slots of an empty sketch are the sentinel.
  for (const auto slot : a.slots()) EXPECT_EQ(slot, kEmptySlot);
}

TEST(KHashSketch, SlotsHoldInputElements) {
  KHashSketch a(32, 7);
  const auto xs = range_set(10, 20);
  a.build(xs);
  for (const auto slot : a.slots()) {
    EXPECT_GE(slot, 10u);
    EXPECT_LT(slot, 20u);
  }
}

TEST(KHashSketch, JaccardEstimateConcentrates) {
  // J = 50/150 = 1/3; with k = 512 the estimate should be within ±0.08.
  KHashSketch a(512, 13), b(512, 13);
  a.build(range_set(0, 100));
  b.build(range_set(50, 150));
  EXPECT_NEAR(a.jaccard(b), 1.0 / 3.0, 0.08);
}

TEST(OneHashSketch, RejectsZeroK) {
  EXPECT_THROW(OneHashSketch(0, 1), std::invalid_argument);
}

TEST(OneHashSketch, KeepsAllWhenSetSmallerThanK) {
  OneHashSketch s(64, 3);
  s.build(range_set(0, 10));
  EXPECT_EQ(s.size(), 10u);
  // The sketch of a small set contains exactly the set.
  std::set<VertexId> kept;
  for (const auto& e : s.entries()) kept.insert(e.element);
  EXPECT_EQ(kept.size(), 10u);
}

TEST(OneHashSketch, EntriesSortedByHashWithoutDuplicates) {
  OneHashSketch s(32, 9);
  s.build(range_set(0, 500));
  EXPECT_EQ(s.size(), 32u);
  const auto entries = s.entries();
  EXPECT_TRUE(std::is_sorted(entries.begin(), entries.end()));
  std::set<VertexId> elems;
  for (const auto& e : entries) elems.insert(e.element);
  EXPECT_EQ(elems.size(), entries.size());
}

TEST(OneHashSketch, BottomKIsTrulyMinimal) {
  // Rebuild with a big k to get all hashes, compare the smallest 8.
  OneHashSketch small(8, 17), big(1000, 17);
  const auto xs = range_set(0, 200);
  small.build(xs);
  big.build(xs);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(small.entries()[i], big.entries()[i]);
  }
}

TEST(OneHashSketch, IntersectionSizeOnSharedElements) {
  OneHashSketch a(64, 21), b(64, 21);
  a.build(range_set(0, 64));
  b.build(range_set(0, 64));
  EXPECT_EQ(OneHashSketch::intersection_size(a.entries(), b.entries(), 64), 64u);
}

TEST(OneHashSketch, IntersectElementsEnumeratesCommon) {
  OneHashSketch a(128, 23), b(128, 23);
  a.build(range_set(0, 80));
  b.build(range_set(40, 120));
  std::vector<VertexId> common;
  OneHashSketch::intersect_elements(a.entries(), b.entries(), 128, common);
  for (const VertexId x : common) {
    EXPECT_GE(x, 40u);
    EXPECT_LT(x, 80u);
  }
  EXPECT_FALSE(common.empty());
}

TEST(OneHashSketch, JaccardEstimateConcentrates) {
  OneHashSketch a(512, 29), b(512, 29);
  a.build(range_set(0, 1000));
  b.build(range_set(500, 1500));  // J = 500/1500 = 1/3
  EXPECT_NEAR(a.jaccard(b), 1.0 / 3.0, 0.08);
}

// Property sweep: both variants' Jaccard estimates are unbiased across
// overlap levels (checked via the mean over independent seeds).
class MinHashJaccardSweep : public ::testing::TestWithParam<double> {};

TEST_P(MinHashJaccardSweep, MeanEstimateMatchesTrueJaccard) {
  const double overlap = GetParam();  // fraction of 1000-element sets shared
  const auto shared = static_cast<VertexId>(1000.0 * overlap);
  const auto xs = range_set(0, 1000);
  const auto ys = range_set(1000 - shared, 2000 - shared);
  const double true_j = static_cast<double>(shared) / static_cast<double>(2000 - shared);

  double kh_acc = 0.0, oh_acc = 0.0;
  constexpr int kTrials = 24;
  for (int t = 0; t < kTrials; ++t) {
    KHashSketch ka(128, 100 + t), kb(128, 100 + t);
    ka.build(xs);
    kb.build(ys);
    kh_acc += ka.jaccard(kb);
    OneHashSketch oa(128, 200 + t), ob(128, 200 + t);
    oa.build(xs);
    ob.build(ys);
    oh_acc += oa.jaccard(ob);
  }
  EXPECT_NEAR(kh_acc / kTrials, true_j, 0.03) << "k-hash";
  EXPECT_NEAR(oh_acc / kTrials, true_j, 0.03) << "1-hash";
}

INSTANTIATE_TEST_SUITE_P(Overlaps, MinHashJaccardSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace probgraph
