// The observability core (src/obs/): histogram bucket math, merge-at-
// scrape correctness, concurrent-writer exactness, registry identity, and
// the three exposition formats — plus the protocol surfaces (`metrics`
// verb, `time` clause, err-cause counters) over an in-memory session.
//
// The registry is process-global, so counter assertions here read deltas
// (value after − value before), never absolute values: other tests in
// this binary may have recorded into the same instruments.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "core/kernels/kernels.hpp"
#include "engine/engine.hpp"
#include "engine/protocol.hpp"
#include "graph/generators.hpp"
#include "obs/instruments.hpp"
#include "obs/kernel_metrics.hpp"
#include "util/threading.hpp"

namespace probgraph {
namespace {

class PinThreads : public ::testing::Environment {
 public:
  void SetUp() override { util::set_threads(1); }
};
const auto* const kPin =
    ::testing::AddGlobalTestEnvironment(new PinThreads);  // NOLINT(cert-err58-cpp)

using obs::Counter;
using obs::Histogram;

// --- Bucket math. ---

TEST(ObsHistogram, BucketBoundsContainTheirValues) {
  // Every unit value lands in a bucket whose [lower, upper) brackets it.
  const auto check = [](std::uint64_t u) {
    const int b = Histogram::bucket_index(u);
    ASSERT_GE(b, 0) << u;
    ASSERT_LT(b, Histogram::kBuckets) << u;
    EXPECT_GE(u, Histogram::bucket_lower(b)) << "bucket " << b;
    // Buckets are [lower, upper) except the last, whose upper saturates at
    // UINT64_MAX and is therefore inclusive.
    if (b < Histogram::kBuckets - 1) {
      EXPECT_LT(u, Histogram::bucket_upper(b)) << "bucket " << b;
    } else {
      EXPECT_LE(u, Histogram::bucket_upper(b)) << "bucket " << b;
    }
  };
  for (std::uint64_t u = 0; u < 4096; ++u) check(u);
  for (int shift = 12; shift < 64; ++shift) {
    const std::uint64_t base = std::uint64_t{1} << shift;
    for (const std::uint64_t u :
         {base - 1, base, base + 1, base + base / 2, base + base - 1}) {
      check(u);
    }
  }
  check(~std::uint64_t{0});
}

TEST(ObsHistogram, BucketIndexIsMonotoneAndBoundsTile) {
  // Indices never decrease with the value, and bucket bounds tile the
  // range exactly (upper of b == lower of b+1).
  int prev = -1;
  for (std::uint64_t u = 0; u < 100000; ++u) {
    const int b = Histogram::bucket_index(u);
    EXPECT_GE(b, prev) << u;
    prev = b;
  }
  for (int b = 0; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_upper(b), Histogram::bucket_lower(b + 1)) << b;
  }
}

TEST(ObsHistogram, RelativeBucketErrorIsAtMostAQuarter) {
  // The log-linear scheme's guarantee: bucket width / lower bound <= 1/4
  // for every non-exact bucket (buckets 0..15 are exact).
  for (int b = 16; b + 1 < Histogram::kBuckets; ++b) {
    const double lo = static_cast<double>(Histogram::bucket_lower(b));
    const double hi = static_cast<double>(Histogram::bucket_upper(b));
    EXPECT_LE((hi - lo) / lo, 0.25 + 1e-12) << "bucket " << b;
  }
}

// --- Observation semantics. ---

TEST(ObsHistogram, CountSumMaxAreExactAndQuantilesBracketed) {
  Histogram h;
  // 100 samples at 1ms..100ms.
  for (int i = 1; i <= 100; ++i) h.observe(i * 1e-3);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.sum, 5.050, 1e-6);   // Σ i/1000
  EXPECT_NEAR(s.max, 0.100, 1e-9);   // max is exact (CAS-tracked)
  // Quantiles are bucketed: within 25% relative error of the true order
  // statistic, and never above the recorded max.
  EXPECT_NEAR(s.quantile(0.5), 0.050, 0.050 * 0.25);
  EXPECT_NEAR(s.quantile(0.9), 0.090, 0.090 * 0.25);
  EXPECT_NEAR(s.quantile(0.99), 0.099, 0.099 * 0.25);
  EXPECT_LE(s.quantile(0.999), s.max + 1e-12);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), s.max);
}

TEST(ObsHistogram, EmptySnapshotIsAllZero) {
  Histogram h;
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(ObsHistogram, MergeAtScrapeSeesEveryShardsObservations) {
  // 4 writer threads × disjoint value ranges: the scrape-side merge must
  // account for every observation exactly once regardless of which shard
  // each thread landed on.
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe_units(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& w : writers) w.join();
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  // Σ 0..N-1 in units.
  const std::uint64_t n = kThreads * kPerThread;
  EXPECT_DOUBLE_EQ(s.sum * Histogram::kUnitsPerValue,
                   static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
  EXPECT_DOUBLE_EQ(s.max * Histogram::kUnitsPerValue,
                   static_cast<double>(n - 1));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, n);
}

TEST(ObsCounter, ConcurrentWritersAreExact) {
  // fetch_add never loses increments: 8 threads × 100k adds == 800k, not
  // approximately 800k. This is the counter's contract, and the reason
  // the scrape path may read relaxed.
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

// --- Registry. ---

TEST(ObsRegistry, GetOrCreateReturnsStableIdentity) {
  auto& reg = obs::Registry::global();
  Counter& a = reg.counter("probgraph_test_identity_total", "test",
                           {{"which", "a"}});
  Counter& a2 = reg.counter("probgraph_test_identity_total", "test",
                            {{"which", "a"}});
  Counter& b = reg.counter("probgraph_test_identity_total", "test",
                           {{"which", "b"}});
  EXPECT_EQ(&a, &a2);
  EXPECT_NE(&a, &b);
  // Type mismatch on an existing name+labels is a logic error, not a
  // silent second instrument.
  EXPECT_THROW(reg.histogram("probgraph_test_identity_total", "test",
                             {{"which", "a"}}),
               std::logic_error);
}

TEST(ObsRegistry, PrometheusTextCarriesFamiliesQuantilesAndEscapes) {
  auto& reg = obs::Registry::global();
  reg.counter("probgraph_test_scrape_total", "scrape test counter",
              {{"label", "with\"quote\\and\nnewline"}})
      .add(7);
  reg.histogram("probgraph_test_scrape_seconds", "scrape test histogram")
      .observe(0.25);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP probgraph_test_scrape_total scrape test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE probgraph_test_scrape_total counter"),
            std::string::npos);
  // Label escaping: quote, backslash, newline.
  EXPECT_NE(text.find("label=\"with\\\"quote\\\\and\\nnewline\""),
            std::string::npos);
  // Histograms expose summary quantiles + _sum/_count + a _max gauge.
  EXPECT_NE(text.find("probgraph_test_scrape_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("probgraph_test_scrape_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("probgraph_test_scrape_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("probgraph_test_scrape_seconds_max"), std::string::npos);
  // The kernel section is always present (dispatch level + tallies).
  EXPECT_NE(text.find("probgraph_kernel_dispatch_level{level=\""),
            std::string::npos);
  EXPECT_NE(text.find("probgraph_kernel_invocations_total{op=\"min_merge\"}"),
            std::string::npos);
}

TEST(ObsRegistry, TabTextIsOneLine) {
  auto& reg = obs::Registry::global();
  reg.counter("probgraph_test_tab_total", "tab test").add();
  const std::string text = reg.tab_text();
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_NE(text.find("probgraph_test_tab_total="), std::string::npos);
}

// --- Kernel counters (compiled in iff PROBGRAPH_OBS). ---

TEST(ObsKernels, DispatchedWrappersTallyInvocationsAndElements) {
  const std::size_t op =
      static_cast<std::size_t>(obs::KernelOp::kIntersectCountMerge);
  const std::uint64_t inv_before =
      obs::g_kernel_counters.invocations[op].value();
  const std::uint64_t elem_before = obs::g_kernel_counters.elements[op].value();

  const std::vector<VertexId> x = {1, 2, 3, 5, 8};
  const std::vector<VertexId> y = {2, 3, 5, 7};
  EXPECT_EQ(kernels::intersect_count_merge(x, y), 3u);

  const std::uint64_t inv_delta =
      obs::g_kernel_counters.invocations[op].value() - inv_before;
  const std::uint64_t elem_delta =
      obs::g_kernel_counters.elements[op].value() - elem_before;
#if defined(PROBGRAPH_OBS) && PROBGRAPH_OBS
  EXPECT_EQ(inv_delta, 1u);
  EXPECT_EQ(elem_delta, x.size() + y.size());
#else
  EXPECT_EQ(inv_delta, 0u);
  EXPECT_EQ(elem_delta, 0u);
#endif
}

// --- Protocol surfaces over an in-memory session. ---

engine::Engine make_engine() {
  return engine::Engine(gen::kronecker(8, 8, /*seed=*/42));
}

std::vector<std::string> serve_lines(engine::Engine& eng,
                                     const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  engine::serve_session(eng, in, out);
  std::vector<std::string> lines;
  std::istringstream replies(out.str());
  std::string line;
  while (std::getline(replies, line)) lines.push_back(line);
  return lines;
}

std::uint64_t counter_value(const char* name, const obs::Labels& labels) {
  const obs::Counter* c = obs::Registry::global().find_counter(name, labels);
  return c == nullptr ? 0 : c->value();
}

TEST(ObsProtocol, MetricsVerbRepliesOneTabSeparatedLine) {
  engine::Engine eng = make_engine();
  const auto lines = serve_lines(eng, "stats\nmetrics\nquit\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("ok\tstats\t", 0), 0u);
  EXPECT_EQ(lines[1].rfind("ok\tmetrics\t", 0), 0u);
  // The snapshot names at least the query counter and the dispatch level.
  EXPECT_NE(lines[1].find("probgraph_queries_total"), std::string::npos);
  EXPECT_NE(lines[1].find("probgraph_kernel_dispatch_level"),
            std::string::npos);
  EXPECT_EQ(lines[2], "bye");
}

TEST(ObsProtocol, TimeClauseAppendsElapsedAndLeavesPlainRepliesAlone) {
  engine::Engine eng = make_engine();
  const auto plain = serve_lines(eng, "stats\nquit\n");
  const auto timed = serve_lines(eng, "stats time\nquit\n");
  ASSERT_EQ(plain.size(), 2u);
  ASSERT_EQ(timed.size(), 2u);
  // The timed reply is the plain reply plus exactly one appended field —
  // this is the determinism story: `time` changes only its own reply.
  const std::size_t pos = timed[0].find("\telapsed_us=");
  ASSERT_NE(pos, std::string::npos) << timed[0];
  EXPECT_EQ(timed[0].substr(0, pos), plain[0]);
  // The clause composes anywhere; duplicates are rejected.
  const auto dup = serve_lines(eng, "stats time time\nquit\n");
  EXPECT_EQ(dup[0].rfind("err\t", 0), 0u) << dup[0];
  EXPECT_NE(dup[0].find("duplicate time clause"), std::string::npos);
}

TEST(ObsProtocol, ErrCausesAreCountedDistinctly) {
  engine::Engine eng = make_engine();
  const obs::Labels parse{{"cause", "parse"}};
  const obs::Labels bad{{"cause", "bad-argument"}};
  const obs::Labels engine_cause{{"cause", "engine"}};
  const char* name = "probgraph_session_errors_total";

  const std::uint64_t parse_before = counter_value(name, parse);
  const std::uint64_t bad_before = counter_value(name, bad);
  const std::uint64_t engine_before = counter_value(name, engine_cause);

  // One parse failure (unknown verb), one client bug (vertex out of
  // range), plus a healthy query so the mix is realistic.
  const auto lines =
      serve_lines(eng, "definitely-not-a-verb\npair intersection 0 999999\nstats\nquit\n");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].rfind("err\t", 0), 0u);
  EXPECT_EQ(lines[1].rfind("err\t", 0), 0u);
  EXPECT_EQ(lines[2].rfind("ok\tstats\t", 0), 0u);

  EXPECT_EQ(counter_value(name, parse) - parse_before, 1u);
  EXPECT_EQ(counter_value(name, bad) - bad_before, 1u);
  EXPECT_EQ(counter_value(name, engine_cause) - engine_before, 0u);
}

TEST(ObsProtocol, OverlongFramesCountAsTheirOwnCause) {
  // A fake transport that yields one overlong frame then EOF: the session
  // must answer an err line AND tally the "overlong" cause — protocol
  // abuse stays distinguishable from client bugs in the scrape output.
  class OverlongOnce final : public engine::SessionIo {
   public:
    Read read_line(std::string& line) override {
      if (served_) return Read::kEof;
      served_ = true;
      line = "line exceeds the 128-byte limit";
      return Read::kOverlong;
    }
    bool write_line(std::string_view reply) override {
      replies.emplace_back(reply);
      return true;
    }
    std::vector<std::string> replies;

   private:
    bool served_ = false;
  };

  const obs::Labels overlong{{"cause", "overlong"}};
  const std::uint64_t before =
      counter_value("probgraph_session_errors_total", overlong);
  engine::Engine eng = make_engine();
  OverlongOnce io;
  EXPECT_EQ(engine::serve_session(eng, io), 0u);
  ASSERT_EQ(io.replies.size(), 1u);
  EXPECT_EQ(io.replies[0].rfind("err\t", 0), 0u);
  EXPECT_EQ(counter_value("probgraph_session_errors_total", overlong) - before,
            1u);
}

TEST(ObsEngine, QueriesLatencyAndSubstrateRoutingAreRecorded) {
  auto& reg = obs::Registry::global();
  const char* qname = "probgraph_queries_total";
  const obs::Labels tc_sketch{{"type", "tc"}, {"mode", "sketch"}};
  const obs::Labels tc_exact{{"type", "tc"}, {"mode", "exact"}};
  const std::uint64_t sketch_before = counter_value(qname, tc_sketch);
  const std::uint64_t exact_before = counter_value(qname, tc_exact);

  engine::Engine eng = make_engine();
  (void)eng.run(engine::TriangleCount{});
  (void)eng.run(engine::TriangleCount{/*exact=*/true});

  EXPECT_EQ(counter_value(qname, tc_sketch) - sketch_before, 1u);
  EXPECT_EQ(counter_value(qname, tc_exact) - exact_before, 1u);
  // The latency histogram and substrate counter exist and show up in the
  // exposition with the expected label sets.
  const std::string text = reg.prometheus_text();
  EXPECT_NE(
      text.find("probgraph_query_latency_seconds{type=\"tc\",quantile=\"0.5\"}"),
      std::string::npos);
  EXPECT_NE(text.find("probgraph_query_substrate_total{kind=\"bf\","
                      "orientation=\"dag\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace probgraph
