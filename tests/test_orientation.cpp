#include "graph/orientation.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace probgraph {
namespace {

TEST(DegreeOrient, ArcCountEqualsEdgeCount) {
  const CsrGraph g = gen::kronecker(10, 8.0, 5);
  const CsrGraph dag = degree_orient(g);
  EXPECT_EQ(dag.num_directed_edges(), g.num_edges());
  EXPECT_EQ(dag.num_vertices(), g.num_vertices());
}

TEST(DegreeOrient, ArcsPointTowardHigherRank) {
  const CsrGraph g = gen::kronecker(9, 6.0, 7);
  const CsrGraph dag = degree_orient(g);
  for (VertexId v = 0; v < dag.num_vertices(); ++v) {
    for (const VertexId u : dag.neighbors(v)) {
      const bool rank_ok =
          g.degree(v) < g.degree(u) || (g.degree(v) == g.degree(u) && v < u);
      EXPECT_TRUE(rank_ok) << "arc " << v << "->" << u;
    }
  }
}

TEST(DegreeOrient, EveryEdgeAppearsExactlyOnce) {
  const CsrGraph g = GraphBuilder::from_edges({{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const CsrGraph dag = degree_orient(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u < v) continue;
      EXPECT_TRUE(dag.has_edge(v, u) != dag.has_edge(u, v))
          << "edge {" << v << "," << u << "} must be oriented exactly one way";
    }
  }
}

TEST(DegreeOrient, NeighborhoodsStaySorted) {
  const CsrGraph dag = degree_orient(gen::kronecker(9, 8.0, 3));
  EXPECT_NO_THROW(dag.validate());
}

TEST(DegreeOrient, StarOrientsLeavesToHub) {
  const CsrGraph dag = degree_orient(gen::star(8));
  // Leaves (degree 1) rank below the hub (degree 7): every arc is leaf->hub.
  EXPECT_EQ(dag.degree(0), 0u);
  for (VertexId v = 1; v < 8; ++v) {
    ASSERT_EQ(dag.degree(v), 1u);
    EXPECT_EQ(dag.neighbors(v)[0], 0u);
  }
}

TEST(DegreeOrient, OutDegreeIsBoundedOnComplete) {
  // On K_n ranks are IDs, so out-degree of vertex i is n-1-i.
  const CsrGraph dag = degree_orient(gen::complete(10));
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_EQ(dag.degree(v), 9u - v);
  }
}

}  // namespace
}  // namespace probgraph
