#include "core/prob_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/intersect.hpp"
#include "graph/generators.hpp"

namespace probgraph {
namespace {

TEST(ProbGraph, RejectsDegenerateInputs) {
  const CsrGraph g = gen::complete(8);
  ProbGraphConfig cfg;
  cfg.storage_budget = 0.0;
  EXPECT_THROW(ProbGraph(g, cfg), std::invalid_argument);

  ProbGraphConfig bad_b;
  bad_b.bf_hashes = 0;
  EXPECT_THROW(ProbGraph(g, bad_b), std::invalid_argument);
}

TEST(ProbGraph, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(SketchKind::kBloomFilter), "BF");
  EXPECT_STREQ(to_string(SketchKind::kKHash), "kH");
  EXPECT_STREQ(to_string(SketchKind::kOneHash), "1H");
  EXPECT_STREQ(to_string(SketchKind::kKmv), "KMV");
  EXPECT_STREQ(to_string(BfEstimator::kAnd), "AND");
  EXPECT_STREQ(to_string(BfEstimator::kLimit), "L");
  EXPECT_STREQ(to_string(BfEstimator::kOr), "OR");
}

TEST(ProbGraph, EnumsRoundTripThroughToStringAndParse) {
  for (const SketchKind kind : {SketchKind::kBloomFilter, SketchKind::kKHash,
                                SketchKind::kOneHash, SketchKind::kKmv}) {
    const auto parsed = parse_sketch_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  for (const BfEstimator e : {BfEstimator::kAnd, BfEstimator::kLimit, BfEstimator::kOr}) {
    const auto parsed = parse_bf_estimator(to_string(e));
    ASSERT_TRUE(parsed.has_value()) << to_string(e);
    EXPECT_EQ(*parsed, e);
  }
}

TEST(ProbGraph, ParseAcceptsCliSpellingsAndRejectsJunk) {
  EXPECT_EQ(parse_sketch_kind("bf"), SketchKind::kBloomFilter);
  EXPECT_EQ(parse_sketch_kind("1h"), SketchKind::kOneHash);
  EXPECT_EQ(parse_sketch_kind("kh"), SketchKind::kKHash);
  EXPECT_EQ(parse_sketch_kind("kmv"), SketchKind::kKmv);
  EXPECT_EQ(parse_sketch_kind("KMV"), SketchKind::kKmv);
  EXPECT_EQ(parse_bf_estimator("and"), BfEstimator::kAnd);
  EXPECT_EQ(parse_bf_estimator("limit"), BfEstimator::kLimit);
  EXPECT_EQ(parse_bf_estimator("or"), BfEstimator::kOr);
  EXPECT_FALSE(parse_sketch_kind("").has_value());
  EXPECT_FALSE(parse_sketch_kind("exact").has_value());
  EXPECT_FALSE(parse_sketch_kind("bloomy").has_value());
  EXPECT_FALSE(parse_bf_estimator("xor").has_value());
  EXPECT_FALSE(parse_bf_estimator("").has_value());
}

class ProbGraphKindTest : public ::testing::TestWithParam<SketchKind> {};

TEST_P(ProbGraphKindTest, RespectsStorageBudget) {
  const CsrGraph g = gen::kronecker(11, 16.0, 42);
  ProbGraphConfig cfg;
  cfg.kind = GetParam();
  cfg.storage_budget = 0.25;
  const ProbGraph pg(g, cfg);
  // Rounding (word-size floor for BF, k >= 1 or 2 floor for MH/KMV) may
  // push slightly past the budget on tiny graphs; 30% slack covers it.
  EXPECT_LE(pg.relative_memory(), 0.25 * 1.3);
  EXPECT_GT(pg.memory_bytes(), 0u);
}

TEST_P(ProbGraphKindTest, EstimatesIntersectionsOnDenseOverlap) {
  // Complete graph: |N_u ∩ N_v| = n − 2 for every pair of adjacent u, v.
  const CsrGraph g = gen::complete(64);
  ProbGraphConfig cfg;
  cfg.kind = GetParam();
  cfg.storage_budget = 2.0;  // generous budget: estimates should be tight
  cfg.seed = 9;
  const ProbGraph pg(g, cfg);
  double worst = 0.0;
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) {
      const double est = pg.est_intersection(u, v);
      worst = std::max(worst, std::abs(est - 62.0) / 62.0);
    }
  }
  EXPECT_LT(worst, 0.35) << to_string(GetParam());
}

TEST_P(ProbGraphKindTest, DeterministicUnderSeed) {
  const CsrGraph g = gen::kronecker(9, 8.0, 17);
  ProbGraphConfig cfg;
  cfg.kind = GetParam();
  cfg.seed = 123;
  const ProbGraph a(g, cfg), b(g, cfg);
  for (VertexId v = 0; v + 1 < std::min<VertexId>(g.num_vertices(), 50); ++v) {
    EXPECT_DOUBLE_EQ(a.est_intersection(v, v + 1), b.est_intersection(v, v + 1));
  }
}

TEST_P(ProbGraphKindTest, JaccardIsInUnitRangeForMinHash) {
  const CsrGraph g = gen::kronecker(9, 8.0, 21);
  ProbGraphConfig cfg;
  cfg.kind = GetParam();
  const ProbGraph pg(g, cfg);
  for (VertexId v = 0; v < std::min<VertexId>(g.num_vertices(), 100); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      const double j = pg.est_jaccard(v, u);
      EXPECT_GE(j, 0.0);
      if (cfg.kind == SketchKind::kKHash || cfg.kind == SketchKind::kOneHash) {
        EXPECT_LE(j, 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ProbGraphKindTest,
                         ::testing::Values(SketchKind::kBloomFilter, SketchKind::kKHash,
                                           SketchKind::kOneHash, SketchKind::kKmv),
                         [](const auto& info) { return to_string(info.param); });

TEST(ProbGraphBloom, ExplicitBitsOverrideBudget) {
  const CsrGraph g = gen::complete(16);
  ProbGraphConfig cfg;
  cfg.bf_bits = 512;
  const ProbGraph pg(g, cfg);
  EXPECT_EQ(pg.bf_bits(), 512u);
  EXPECT_EQ(pg.bf_words(0).size(), 8u);
}

TEST(ProbGraphBloom, WidthIsWordMultiple) {
  const CsrGraph g = gen::kronecker(8, 8.0, 3);
  ProbGraphConfig cfg;
  cfg.storage_budget = 0.21;
  const ProbGraph pg(g, cfg);
  EXPECT_EQ(pg.bf_bits() % kWordBits, 0u);
  EXPECT_GE(pg.bf_bits(), kWordBits);
}

TEST(ProbGraphBloom, BfViewContainsNeighbors) {
  const CsrGraph g = gen::complete(32);
  ProbGraphConfig cfg;
  cfg.bf_bits = 2048;
  const ProbGraph pg(g, cfg);
  for (const VertexId u : g.neighbors(5)) {
    EXPECT_TRUE(pg.bf(5).contains(u));
  }
}

TEST(ProbGraphBloom, EstimatorVariantsAllTrack) {
  const CsrGraph g = gen::complete(64);
  for (const BfEstimator e : {BfEstimator::kAnd, BfEstimator::kLimit, BfEstimator::kOr}) {
    ProbGraphConfig cfg;
    cfg.bf_bits = 1 << 13;
    cfg.bf_estimator = e;
    cfg.seed = 5;
    const ProbGraph pg(g, cfg);
    EXPECT_NEAR(pg.est_intersection(0, 1), 62.0, 62.0 * 0.25) << to_string(e);
  }
}

TEST(ProbGraphMinHash, ExplicitKOverridesBudget) {
  const CsrGraph g = gen::complete(16);
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  cfg.minhash_k = 11;
  const ProbGraph pg(g, cfg);
  EXPECT_EQ(pg.minhash_k(), 11u);
  EXPECT_LE(pg.onehash_entries(0).size(), 11u);
}

TEST(ProbGraphMinHash, OneHashEntriesAreNeighbors) {
  const CsrGraph g = gen::complete(32);
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kOneHash;
  cfg.minhash_k = 8;
  const ProbGraph pg(g, cfg);
  const auto n0 = g.neighbors(0);
  for (const auto& entry : pg.onehash_entries(0)) {
    EXPECT_TRUE(std::binary_search(n0.begin(), n0.end(), entry.element));
  }
}

TEST(ProbGraphMinHash, KHashSignatureSlotsAreNeighborsOrEmpty) {
  const CsrGraph g = gen::star(16);
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kKHash;
  cfg.minhash_k = 4;
  const ProbGraph pg(g, cfg);
  // Leaves have the hub as their only neighbor: every slot holds vertex 0.
  for (const auto slot : pg.khash_signature(3)) EXPECT_EQ(slot, 0u);
}

TEST(ProbGraphKmv, ValuesSortedPerVertex) {
  const CsrGraph g = gen::complete(64);
  ProbGraphConfig cfg;
  cfg.kind = SketchKind::kKmv;
  cfg.minhash_k = 16;
  const ProbGraph pg(g, cfg);
  const auto vals = pg.kmv_values(0);
  EXPECT_TRUE(std::is_sorted(vals.begin(), vals.end()));
  EXPECT_EQ(vals.size(), 16u);
}

TEST(ProbGraph, ConstructionTimeIsRecorded) {
  const CsrGraph g = gen::kronecker(10, 8.0, 5);
  const ProbGraph pg(g, {});
  EXPECT_GE(pg.construction_seconds(), 0.0);
}

TEST(ProbGraph, AccuracyAgainstExactOnKronecker) {
  // Per-edge relative error medians should be moderate at a 33% budget
  // (Fig. 3: medians below ≈25% for most graph/estimator combinations).
  const CsrGraph g = gen::kronecker(10, 16.0, 77);
  ProbGraphConfig cfg;
  cfg.storage_budget = 0.33;
  cfg.bf_hashes = 1;
  cfg.seed = 3;
  const ProbGraph pg(g, cfg);

  double total_exact = 0.0, total_est = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u <= v) continue;
      total_exact += static_cast<double>(intersect_size_merge(g.neighbors(v), g.neighbors(u)));
      total_est += pg.est_intersection(v, u);
    }
  }
  ASSERT_GT(total_exact, 0.0);
  // The *aggregate* estimate (what TC consumes) must be within 40%. The BF
  // AND estimator overestimates on skewed graphs at tight budgets (Fig. 3
  // shows outliers up to 200%); the aggregate stays much closer.
  EXPECT_NEAR(total_est / total_exact, 1.0, 0.40);
}

}  // namespace
}  // namespace probgraph
