#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace probgraph::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, UniformStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformMeanIsHalf) {
  Xoshiro256 rng(11);
  double acc = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / kSamples, 0.5, 0.01);
}

TEST(Xoshiro256, BoundedStaysBelowBound) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Xoshiro256, BoundedCoversAllResidues) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, BernoulliTracksProbability) {
  Xoshiro256 rng(19);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(1);
  (void)rng();
}

}  // namespace
}  // namespace probgraph::util
